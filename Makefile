# Mirrors .github/workflows/ci.yml so local and CI invocations stay
# identical: `make build test race bench` is exactly what CI runs.

GO ?= go

.PHONY: all build fmt vet lint test race bench bench-sketch repro

all: build fmt vet test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet; the pinned version matches CI's install so
# local and CI lint results stay identical.
lint:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; run: go install honnef.co/go/tools/cmd/staticcheck@2025.1"; \
		exit 1; \
	}
	staticcheck ./...

test:
	$(GO) test ./...

# The experiments package guards its full sweeps behind -short so the
# race pass stays within CI's time budget.
race:
	$(GO) test -race -short ./...

# Benchmark smoke: every benchmark once, no measurement repetition.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Sketch-substrate benchmark trajectory: CI uploads BENCH_sketch.json so
# future PRs can compare the approximate-counting hot path.
bench-sketch:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -json ./internal/sketch > BENCH_sketch.json

# Full reproduction of the paper's tables and figures at default scale,
# all cores, shared result cache.
repro:
	$(GO) run ./cmd/experiments
