# Mirrors .github/workflows/ci.yml so local and CI invocations stay
# identical: `make build test race bench` is exactly what CI runs.

GO ?= go

.PHONY: all build fmt vet lint test race race-shard bench bench-sketch bench-engine bench-shard bench-server bench-sweep bench-gate-files bench-diff bench-accept repro golden golden-check replay-check serve server-check

all: build fmt vet test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet; the pinned version matches CI's install so
# local and CI lint results stay identical.
lint:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; run: go install honnef.co/go/tools/cmd/staticcheck@2025.1"; \
		exit 1; \
	}
	staticcheck ./...

test:
	$(GO) test ./...

# The experiments package guards its full sweeps behind -short so the
# race pass stays within CI's time budget.
race: race-shard
	$(GO) test -race -short ./...

# The sharded engine's goroutines + epoch barrier under the race
# detector: the engine/sim shard suites, then an 8-shard catsim run on
# the 8-channel DDR5 geometry end to end.
race-shard:
	$(GO) test -race -run 'Shard|Affine' ./internal/engine ./internal/sim
	$(GO) run -race ./cmd/catsim -geometry ddr5 -cores 8 -affine -shards 8 -workload black -scheme DRCAT -scale 0.02

# Benchmark smoke: every benchmark once, no measurement repetition.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Sketch-substrate benchmark trajectory: CI uploads BENCH_sketch.json so
# future PRs can compare the approximate-counting hot path. The stamp step
# prepends commit SHA, CPU model and Go version so cross-run diffs stay
# attributable.
BENCH_SKETCH_TIME ?= 1x
BENCH_COUNT ?= 1
bench-sketch:
	$(GO) test -run='^$$' -bench=. -benchtime=$(BENCH_SKETCH_TIME) -count=$(BENCH_COUNT) -json ./internal/sketch > BENCH_sketch.json
	$(GO) run ./cmd/benchdiff -stamp BENCH_sketch.json

# Engine hot-path benchmark trajectory: ns/request and allocs/request for
# the epoch engine and its schedulers at 2–256 cores. CI uploads
# BENCH_engine.json; the steady-state alloc *gate* is
# TestSteadyStateZeroAllocs in `make test`, which fails the build on any
# per-request allocation. Raise BENCH_ENGINE_TIME (e.g. 100x) for stable
# local numbers.
BENCH_ENGINE_TIME ?= 1x
bench-engine:
	$(GO) test -run='^$$' -bench=. -benchtime=$(BENCH_ENGINE_TIME) -count=$(BENCH_COUNT) -json ./internal/engine > BENCH_engine.json
	$(GO) run ./cmd/benchdiff -stamp BENCH_engine.json

# Sharded-engine trajectory: the sequential reference vs the partitioned
# engine at shards=1 (partitioning overhead) and shards=8 (scaling) on
# the 8-channel DDR5 geometry. All three return byte-identical Results,
# so seq/shards=8 is a pure wall-clock speedup — ~parity (barrier
# overhead) on one hardware core, approaching the channel count on >=8.
BENCH_SHARD_TIME ?= 1x
bench-shard:
	$(GO) test -run='^$$' -bench=BenchmarkShard -benchtime=$(BENCH_SHARD_TIME) -count=$(BENCH_COUNT) -json ./internal/sim > BENCH_shard.json
	$(GO) run ./cmd/benchdiff -stamp BENCH_shard.json

# Streaming-encoder trajectory: ns/sample and allocs/sample of the
# server's per-epoch NDJSON/SSE encoders — the cost every attached stream
# pays per epoch. The allocation *gate* is TestNDJSONEncoderAllocs in
# `make test`; this trajectory tracks the wall-clock trend.
BENCH_SERVER_TIME ?= 1x
bench-server:
	$(GO) test -run='^$$' -bench=BenchmarkServerStream -benchtime=$(BENCH_SERVER_TIME) -count=$(BENCH_COUNT) -json ./internal/server > BENCH_server.json
	$(GO) run ./cmd/benchdiff -stamp BENCH_server.json

# Sweep-throughput trajectory: runs/sec and allocs/run of a 256-seed
# single-cell sweep, fresh component stacks vs a reused run context (the
# sweep fast path internal/runner pools). Both paths return byte-identical
# Results; the benchdiff gate holds ns/op AND B/op/allocs-per-op, so a
# reuse-path change that reintroduces steady-state allocations fails CI.
BENCH_SWEEP_TIME ?= 1x
bench-sweep:
	$(GO) test -run='^$$' -bench=BenchmarkSweep -benchtime=$(BENCH_SWEEP_TIME) -count=$(BENCH_COUNT) -json ./internal/sim > BENCH_sweep.json
	$(GO) run ./cmd/benchdiff -stamp BENCH_sweep.json

# Gate-stable regeneration of both trajectories: time-based benchtime so
# micro- and macro-benchmarks alike get real measurement windows, and
# -count=3 because benchdiff keeps the per-benchmark minimum across
# repetitions (the noise-robust summary).
BENCH_GATE_ENGINE_TIME ?= 200ms
BENCH_GATE_SKETCH_TIME ?= 50ms
BENCH_GATE_SHARD_TIME ?= 200ms
BENCH_GATE_SERVER_TIME ?= 50ms
BENCH_GATE_SWEEP_TIME ?= 2x
bench-gate-files:
	$(MAKE) bench-engine BENCH_ENGINE_TIME=$(BENCH_GATE_ENGINE_TIME) BENCH_COUNT=3
	$(MAKE) bench-sketch BENCH_SKETCH_TIME=$(BENCH_GATE_SKETCH_TIME) BENCH_COUNT=3
	$(MAKE) bench-shard BENCH_SHARD_TIME=$(BENCH_GATE_SHARD_TIME) BENCH_COUNT=3
	$(MAKE) bench-server BENCH_SERVER_TIME=$(BENCH_GATE_SERVER_TIME) BENCH_COUNT=3
	$(MAKE) bench-sweep BENCH_SWEEP_TIME=$(BENCH_GATE_SWEEP_TIME) BENCH_COUNT=3

# The bench-regression gate, exactly as the CI job runs it: regenerate the
# trajectories at gate-stable settings and fail on any >10% ns/op
# regression (noise floor 50 ns) against the blessed baselines.
bench-diff: bench-gate-files
	$(GO) run ./cmd/benchdiff BENCH_engine.json BENCH_sketch.json BENCH_shard.json BENCH_server.json BENCH_sweep.json

# Rebless the baselines after an *intentional* perf change; eyeball the
# diff of bench/baseline/*.json before committing. The re-stamp keeps
# every blessed file attributed to the same (current) commit — the per-
# target stamps ride along from whenever each trajectory last regenerated,
# which historically left the baselines pointing at a mix of commits.
bench-accept: bench-gate-files
	mkdir -p bench/baseline
	cp BENCH_engine.json BENCH_sketch.json BENCH_shard.json BENCH_server.json BENCH_sweep.json bench/baseline/
	$(GO) run ./cmd/benchdiff -stamp bench/baseline/BENCH_engine.json bench/baseline/BENCH_sketch.json bench/baseline/BENCH_shard.json bench/baseline/BENCH_server.json bench/baseline/BENCH_sweep.json

# Full reproduction of the paper's tables and figures at default scale,
# all cores, shared result cache.
repro:
	$(GO) run ./cmd/experiments

# The pinned options behind the golden files: every text byte of the CLI
# output at this configuration is locked by golden-check (and the
# per-generator goldens under internal/experiments/testdata/golden by
# TestGoldenText).
GOLDEN_FLAGS = -scale 0.05 -seed 1 -workloads black,comm1 -lfsr-trials 50 -q

# Regenerate the golden files after an *intentional* output change;
# eyeball the diff before committing.
golden:
	$(GO) test ./internal/experiments -run TestGoldenText -update
	$(GO) run ./cmd/experiments $(GOLDEN_FLAGS) > cmd/experiments/testdata/golden-scale005.txt

# CI's golden gate: text output must match the checked-in golden byte for
# byte, and the JSON output must decode as []Report.
golden-check:
	$(GO) build -o /tmp/catsim-experiments ./cmd/experiments
	/tmp/catsim-experiments $(GOLDEN_FLAGS) > /tmp/catsim-golden.txt
	diff -u cmd/experiments/testdata/golden-scale005.txt /tmp/catsim-golden.txt
	/tmp/catsim-experiments $(GOLDEN_FLAGS) -format json > /tmp/catsim-golden.json
	/tmp/catsim-experiments -validate-json /tmp/catsim-golden.json

# The capture/replay determinism gate: a live open-loop run and a replay
# of the same configuration's captured v1 trace must print byte-identical
# Result JSON (the trace pipeline's core contract, also test-enforced in
# internal/sim and cmd/replay).
REPLAY_FLAGS = -workload ol-bursty -requests 4000 -attacker 0.25 -threshold 1600 -seed 7
replay-check:
	$(GO) build -o /tmp/catsim-replay ./cmd/replay
	/tmp/catsim-replay $(REPLAY_FLAGS) -json > /tmp/catsim-live.json
	/tmp/catsim-replay $(REPLAY_FLAGS) -capture -o /tmp/catsim-trace.v1
	/tmp/catsim-replay $(REPLAY_FLAGS) -trace /tmp/catsim-trace.v1 -json > /tmp/catsim-replay.json
	diff /tmp/catsim-live.json /tmp/catsim-replay.json
	/tmp/catsim-replay $(REPLAY_FLAGS) -trace /tmp/catsim-trace.v1 -scheme sca:counters=128 > /dev/null

# Run the simulation service locally (ctrl-C drains and snapshots).
SERVE_FLAGS ?= -addr 127.0.0.1:8321 -snapshot /tmp/catsim-server.snap
serve:
	$(GO) run ./cmd/catsim-server $(SERVE_FLAGS)

# End-to-end smoke of the simulation service, exactly as the CI job runs
# it: boot the server, submit a job describing the replay-check
# configuration, and require (1) the served result to match a direct
# cmd/replay run of the same parameters (jq -S canonicalises the
# indentation difference), (2) a repeat POST to be a cache hit with zero
# new engine runs, (3) the stream to terminate with that same result, and
# (4) a restart from the snapshot to re-serve the stream byte-identically
# without recomputation. The Go test suites lock the byte-level contracts
# under -race; this target proves the shipped binary wires them together.
SERVER_CHECK_ADDR = 127.0.0.1:18321
SERVER_CHECK_JOB = {"scheme":"drcat:counters=64,levels=11","workload":"ol-bursty","requests":4000,"attacker":0.25,"threshold":1600,"seed":7}
server-check:
	$(GO) build -o /tmp/catsim-server ./cmd/catsim-server
	$(GO) build -o /tmp/catsim-replay ./cmd/replay
	rm -f /tmp/catsim-server.snap /tmp/catsim-server.log
	set -e; \
	/tmp/catsim-server -addr $(SERVER_CHECK_ADDR) -workers 1 -snapshot /tmp/catsim-server.snap > /tmp/catsim-server.log 2>&1 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do curl -fs http://$(SERVER_CHECK_ADDR)/healthz > /dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fs -X POST -H 'Content-Type: application/json' -d '$(SERVER_CHECK_JOB)' http://$(SERVER_CHECK_ADDR)/v1/jobs > /tmp/catsim-server-post.json; \
	id=$$(jq -r .id /tmp/catsim-server-post.json); \
	curl -fs http://$(SERVER_CHECK_ADDR)/v1/jobs/$$id/result | jq -S . > /tmp/catsim-server-result.json; \
	/tmp/catsim-replay $(REPLAY_FLAGS) -json | jq -S . > /tmp/catsim-server-direct.json; \
	diff /tmp/catsim-server-direct.json /tmp/catsim-server-result.json; \
	curl -fs -X POST -H 'Content-Type: application/json' -d '$(SERVER_CHECK_JOB)' http://$(SERVER_CHECK_ADDR)/v1/jobs | jq -e '.cached == true' > /dev/null; \
	curl -fs http://$(SERVER_CHECK_ADDR)/v1/stats | jq -e '.engine_runs == 1' > /dev/null; \
	curl -fs http://$(SERVER_CHECK_ADDR)/v1/jobs/$$id/stream > /tmp/catsim-server-stream1.ndjson; \
	tail -n 1 /tmp/catsim-server-stream1.ndjson | jq -S .result > /tmp/catsim-server-streamres.json; \
	diff /tmp/catsim-server-direct.json /tmp/catsim-server-streamres.json; \
	kill -TERM $$pid; wait $$pid; \
	/tmp/catsim-server -addr $(SERVER_CHECK_ADDR) -workers 1 -snapshot /tmp/catsim-server.snap >> /tmp/catsim-server.log 2>&1 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do curl -fs http://$(SERVER_CHECK_ADDR)/healthz > /dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fs http://$(SERVER_CHECK_ADDR)/v1/jobs/$$id/stream > /tmp/catsim-server-stream2.ndjson; \
	diff /tmp/catsim-server-stream1.ndjson /tmp/catsim-server-stream2.ndjson; \
	curl -fs http://$(SERVER_CHECK_ADDR)/v1/stats | jq -e '.engine_runs == 0' > /dev/null; \
	kill -TERM $$pid; wait $$pid; trap - EXIT; \
	echo "server-check: OK"
