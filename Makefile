# Mirrors .github/workflows/ci.yml so local and CI invocations stay
# identical: `make build test race bench` is exactly what CI runs.

GO ?= go

.PHONY: all build fmt vet test race bench repro

all: build fmt vet test

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiments package guards its full sweeps behind -short so the
# race pass stays within CI's time budget.
race:
	$(GO) test -race -short ./...

# Benchmark smoke: every benchmark once, no measurement repetition.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Full reproduction of the paper's tables and figures at default scale,
# all cores, shared result cache.
repro:
	$(GO) run ./cmd/experiments
