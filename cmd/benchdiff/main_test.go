package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stream fabricates a go test -json benchmark stream with the given
// name -> ns/op results.
func stream(results map[string]float64) string {
	var b strings.Builder
	for name, ns := range results {
		line, _ := json.Marshal(event{
			Action: "output",
			Output: fmt.Sprintf("%s-8   \t     100\t  %.1f ns/op\t       0 B/op\n", name, ns),
		})
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// writeBench writes a fabricated stream under dir.
func writeBench(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// runCLI drives the same entry point main uses.
func runCLI(t *testing.T, args ...string) (failures int, out string, err error) {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	failures, err = run(args, w)
	w.Flush()
	return failures, buf.String(), err
}

// TestInjectedRegressionFailsGate is the acceptance demonstration: a >10%
// ns/op regression injected into the current stream must fail the gate
// exactly as the CI job would (nonzero failure count -> exit 1).
func TestInjectedRegressionFailsGate(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeBench(t, baseDir, "BENCH_engine.json", stream(map[string]float64{
		"BenchmarkEngineRun/default/64cores": 40_000_000,
		"BenchmarkScheduler/tournament":      60,
	}))
	// 15% regression on the engine benchmark, well past both threshold and
	// floor; the scheduler benchmark stays put.
	cur := writeBench(t, curDir, "BENCH_engine.json", stream(map[string]float64{
		"BenchmarkEngineRun/default/64cores": 46_000_000,
		"BenchmarkScheduler/tournament":      60,
	}))
	failures, out, err := runCLI(t, "-baseline", baseDir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("want exactly 1 gate failure, got %d\n%s", failures, out)
	}
	if !strings.Contains(out, "REGRESS") || !strings.Contains(out, "BenchmarkEngineRun/default/64cores") {
		t.Fatalf("report does not name the regressed benchmark:\n%s", out)
	}
}

// TestWithinThresholdPasses locks the other side of the gate: a 9% drift
// passes a 10% threshold.
func TestWithinThresholdPasses(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeBench(t, baseDir, "BENCH_engine.json", stream(map[string]float64{"BenchmarkX": 1000}))
	cur := writeBench(t, curDir, "BENCH_engine.json", stream(map[string]float64{"BenchmarkX": 1090}))
	failures, out, err := runCLI(t, "-baseline", baseDir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("9%% drift must pass the 10%% gate:\n%s", out)
	}
}

// TestNoiseFloorSuppressesTinyBenchmarks: a 50% blowup on a 10 ns
// benchmark is jitter, not a regression — the absolute floor absorbs it.
func TestNoiseFloorSuppressesTinyBenchmarks(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeBench(t, baseDir, "BENCH_sketch.json", stream(map[string]float64{"BenchmarkTiny": 10}))
	cur := writeBench(t, curDir, "BENCH_sketch.json", stream(map[string]float64{"BenchmarkTiny": 15}))
	failures, out, err := runCLI(t, "-baseline", baseDir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("sub-floor delta must not fail the gate:\n%s", out)
	}
	// The same relative regression above the floor does fail.
	writeBench(t, baseDir, "BENCH_sketch.json", stream(map[string]float64{"BenchmarkTiny": 1000}))
	writeBench(t, curDir, "BENCH_sketch.json", stream(map[string]float64{"BenchmarkTiny": 1500}))
	failures, _, err = runCLI(t, "-baseline", baseDir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatal("above-floor regression must fail the gate")
	}
}

// TestMissingBenchmarkFailsAddedDoesNot: losing a benchmark fails (stale
// baseline), gaining one is fine.
func TestMissingBenchmarkFailsAddedDoesNot(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeBench(t, baseDir, "BENCH_engine.json", stream(map[string]float64{"BenchmarkOld": 500}))
	cur := writeBench(t, curDir, "BENCH_engine.json", stream(map[string]float64{"BenchmarkNew": 500}))
	failures, out, err := runCLI(t, "-baseline", baseDir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 || !strings.Contains(out, "MISSING") {
		t.Fatalf("dropped benchmark must fail the gate once:\n%s", out)
	}
	if !strings.Contains(out, "new") {
		t.Fatalf("added benchmark should be reported as new:\n%s", out)
	}
}

// TestStampIdempotent: stamping twice leaves one metadata line, and diff
// mode surfaces it.
func TestStampIdempotent(t *testing.T) {
	dir := t.TempDir()
	p := writeBench(t, dir, "BENCH_engine.json", stream(map[string]float64{"BenchmarkX": 100}))
	for i := 0; i < 2; i++ {
		if _, _, err := runCLI(t, "-stamp", p); err != nil {
			t.Fatal(err)
		}
	}
	body, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(body), `"bench-meta"`); n != 1 {
		t.Fatalf("want exactly one bench-meta line after re-stamping, got %d", n)
	}
	results, m, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.GoVersion == "" || m.CPU == "" {
		t.Fatalf("stamp metadata incomplete: %+v", m)
	}
	if results["BenchmarkX"].ns != 100 {
		t.Fatalf("stamping corrupted the stream: %v", results)
	}
}

// TestParseRealStreamShape parses the exact line shapes test2json emits,
// including multiple -count repetitions (minimum wins) and secondary
// metrics.
func TestParseRealStreamShape(t *testing.T) {
	dir := t.TempDir()
	// test2json flushes the benchmark name as a partial-line event ending
	// in \t, with the timing numbers in the following event — the parser
	// must reassemble them (and still take the min across -count repeats).
	body := `{"Time":"2026-01-01T00:00:00Z","Action":"run","Package":"catsim/internal/engine"}
{"Action":"output","Package":"catsim/internal/engine","Output":"goos: linux\n"}
{"Action":"output","Package":"catsim/internal/engine","Output":"=== RUN   BenchmarkEngineRun/default/64cores\n"}
{"Action":"output","Package":"catsim/internal/engine","Output":"BenchmarkEngineRun/default/64cores\n"}
{"Action":"output","Package":"catsim/internal/engine","Output":"BenchmarkEngineRun/default/64cores-64         \t"}
{"Action":"output","Package":"catsim/internal/engine","Output":"      20\t  31415926 ns/op\t       245.0 ns/request\t    1952 B/op\t       6 allocs/op\n"}
{"Action":"output","Package":"catsim/internal/engine","Output":"BenchmarkEngineRun/default/64cores-64         \t"}
{"Action":"output","Package":"catsim/internal/engine","Output":"      20\t  29000000 ns/op\t       230.0 ns/request\t    1952 B/op\t       6 allocs/op\n"}
{"Action":"pass","Package":"catsim/internal/engine"}
`
	p := writeBench(t, dir, "BENCH_engine.json", body)
	results, _, err := parseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := results["BenchmarkEngineRun/default/64cores"]
	if !ok || got.ns != 29000000 {
		t.Fatalf("parse failed: %v", results)
	}
	if !got.hasMem || got.bytes != 1952 || got.allocs != 6 {
		t.Fatalf("allocation metrics not parsed: %+v", got)
	}
}

// memStream fabricates a stream whose lines carry allocation metrics.
func memStream(results map[string][3]float64) string {
	var b strings.Builder
	for name, v := range results {
		line, _ := json.Marshal(event{
			Action: "output",
			Output: fmt.Sprintf("%s-8   \t     100\t  %.1f ns/op\t    %.0f B/op\t      %.0f allocs/op\n",
				name, v[0], v[1], v[2]),
		})
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestInjectedAllocRegressionFailsGate: the allocation gate. A benchmark
// whose ns/op holds steady but whose B/op and allocs/op blow past the
// threshold and floors must fail the gate — once per regressed metric.
func TestInjectedAllocRegressionFailsGate(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeBench(t, baseDir, "BENCH_sweep.json", memStream(map[string][3]float64{
		"BenchmarkSweep/reuse": {2_000_000, 128, 2},
	}))
	// Same wall clock, 16x the bytes, 50 extra allocations: exactly the
	// regression shape a broken context-reuse path produces.
	cur := writeBench(t, curDir, "BENCH_sweep.json", memStream(map[string][3]float64{
		"BenchmarkSweep/reuse": {2_000_000, 2048, 52},
	}))
	failures, out, err := runCLI(t, "-baseline", baseDir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 2 {
		t.Fatalf("want 2 gate failures (B/op + allocs/op), got %d\n%s", failures, out)
	}
	if !strings.Contains(out, "B/op") || !strings.Contains(out, "allocs/op") {
		t.Fatalf("report does not name the regressed metrics:\n%s", out)
	}
}

// TestAllocFloorsSuppressNoise: one stray allocation and a few dozen
// bytes on a near-zero baseline are measurement jitter, not regressions —
// the absolute floors (64 B/op, 2 allocs/op) absorb them even though the
// relative blowup is huge.
func TestAllocFloorsSuppressNoise(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeBench(t, baseDir, "BENCH_sweep.json", memStream(map[string][3]float64{
		"BenchmarkSweep/reuse": {2_000_000, 16, 1},
	}))
	cur := writeBench(t, curDir, "BENCH_sweep.json", memStream(map[string][3]float64{
		"BenchmarkSweep/reuse": {2_000_000, 64, 3},
	}))
	failures, out, err := runCLI(t, "-baseline", baseDir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("sub-floor allocation drift must not fail the gate:\n%s", out)
	}
}

// TestMemGateSkippedWithoutMetrics: a stream without -benchmem metrics
// diffs cleanly against one that has them — the memory gate only engages
// when both sides report.
func TestMemGateSkippedWithoutMetrics(t *testing.T) {
	baseDir, curDir := t.TempDir(), t.TempDir()
	writeBench(t, baseDir, "BENCH_engine.json", stream(map[string]float64{"BenchmarkX": 1000}))
	cur := writeBench(t, curDir, "BENCH_engine.json", memStream(map[string][3]float64{
		"BenchmarkX": {1000, 1 << 20, 999},
	}))
	failures, out, err := runCLI(t, "-baseline", baseDir, cur)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("memory gate must not engage when the baseline has no metrics:\n%s", out)
	}
}
