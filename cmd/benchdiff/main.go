// Command benchdiff is the bench-regression gate: it compares `go test
// -json` benchmark streams (the BENCH_*.json trajectory artifacts CI
// uploads) against the blessed baselines under bench/baseline/ and fails
// when any benchmark's ns/op, B/op or allocs/op regresses beyond the
// threshold.
//
// Diff mode (the CI job and `make bench-diff`):
//
//	benchdiff [-baseline DIR] [-threshold F] [-floor NS] [-bfloor B] [-allocfloor N] FILE...
//
// Every FILE is compared against DIR/<basename>. A metric regresses when
// its current value exceeds baseline×(1+threshold) AND the absolute delta
// exceeds that metric's floor — the floors keep sub-noise benchmarks
// (a few ns of jitter easily tops 10%, as does one stray allocation on an
// alloc-free path measured with tiny -benchtime) from flapping the gate.
// B/op and allocs/op are gated only when both sides report them (-benchmem
// or b.ReportAllocs). Benchmarks added since the baseline are reported but
// never fail; benchmarks that disappeared fail the gate so a baseline
// can't silently go stale. Rebless intentional changes with `make
// bench-accept`.
//
// Stamp mode (`make bench-accept` and the CI upload steps):
//
//	benchdiff -stamp FILE...
//
// prepends a {"Action":"bench-meta",...} line carrying the commit SHA, CPU
// model and Go version, so cross-run diffs stay attributable. Diff mode
// prints both sides' metadata when present.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// meta is the attribution line stamp mode prepends. Action distinguishes
// it from real test2json events (whose Actions are run/output/pass/...),
// so tooling that consumes the stream can skip it by shape.
type meta struct {
	Action    string `json:"Action"` // always "bench-meta"
	Commit    string `json:"Commit"`
	GoVersion string `json:"GoVersion"`
	CPU       string `json:"CPU"`
	Time      string `json:"Time"`
}

// event is the subset of a test2json line the parser needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result in test output: name (with the
// -GOMAXPROCS suffix to strip), iteration count, ns/op. The allocation
// metrics ride further down the same line when -benchmem/ReportAllocs is
// on; custom secondary metrics (ns/request) are reported but not gated.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	bytesOp   = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsOp  = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// bench is one benchmark's parsed metrics. hasMem records whether the
// line carried allocation metrics at all (B/op and allocs/op always
// appear together).
type bench struct {
	ns, bytes, allocs float64
	hasMem            bool
}

// parseFile extracts benchmark name -> metrics from a go test -json
// stream, plus the bench-meta line when present. Duplicate benchmark
// names (e.g. -count > 1) keep the per-metric minimum, the noise-robust
// summary of repeats.
func parseFile(path string) (map[string]bench, *meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	results := make(map[string]bench)
	var m *meta
	// test2json flushes the benchmark name (which go test prints before
	// running) as its own partial-line event ending in "\t"; the timing
	// numbers arrive in the next event. Reassemble complete lines per
	// package before matching.
	pending := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if ev.Action == "bench-meta" {
			m = &meta{}
			if err := json.Unmarshal(line, m); err != nil {
				m = nil
			}
			continue
		}
		if ev.Action != "output" {
			continue
		}
		buf := pending[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			full := buf[:nl]
			buf = buf[nl+1:]
			trimmed := strings.TrimSpace(full)
			sub := benchLine.FindStringSubmatch(trimmed)
			if sub == nil {
				continue
			}
			ns, err := strconv.ParseFloat(sub[3], 64)
			if err != nil {
				continue
			}
			cur := bench{ns: ns}
			if bm := bytesOp.FindStringSubmatch(trimmed); bm != nil {
				if am := allocsOp.FindStringSubmatch(trimmed); am != nil {
					cur.bytes, _ = strconv.ParseFloat(bm[1], 64)
					cur.allocs, _ = strconv.ParseFloat(am[1], 64)
					cur.hasMem = true
				}
			}
			old, ok := results[sub[1]]
			if !ok {
				results[sub[1]] = cur
				continue
			}
			if cur.ns < old.ns {
				old.ns = cur.ns
			}
			if cur.hasMem && (!old.hasMem || cur.bytes < old.bytes) {
				old.bytes = cur.bytes
			}
			if cur.hasMem && (!old.hasMem || cur.allocs < old.allocs) {
				old.allocs = cur.allocs
			}
			old.hasMem = old.hasMem || cur.hasMem
			results[sub[1]] = old
		}
		pending[ev.Package] = buf
	}
	return results, m, sc.Err()
}

// finding is one benchmark's comparison outcome.
type finding struct {
	name      string
	base, cur bench
	// regression flags per gated metric (ns/op, B/op, allocs/op).
	regNS, regBytes, regAllocs bool
	missing                    bool // present in baseline, absent in current
	added                      bool // present in current, absent in baseline
}

// floors holds the per-metric absolute noise floors: a relative
// regression below its metric's floor is jitter, not a failure.
type floors struct {
	ns, bytes, allocs float64
}

// regressed applies the shared gate rule: past the relative threshold AND
// past the metric's absolute floor.
func regressed(base, cur, threshold, floor float64) bool {
	return cur > base*(1+threshold) && cur-base > floor
}

// diff compares current against baseline under the threshold/floor rule.
func diff(baseline, current map[string]bench, threshold float64, fl floors) []finding {
	names := make([]string, 0, len(baseline)+len(current))
	for n := range baseline {
		names = append(names, n)
	}
	for n := range current {
		if _, ok := baseline[n]; !ok {
			names = append(names, n)
		}
	}
	sortStrings(names)

	var out []finding
	for _, n := range names {
		b, inBase := baseline[n]
		c, inCur := current[n]
		f := finding{name: n, base: b, cur: c}
		switch {
		case !inCur:
			f.missing = true
		case !inBase:
			f.added = true
		default:
			f.regNS = regressed(b.ns, c.ns, threshold, fl.ns)
			if b.hasMem && c.hasMem {
				f.regBytes = regressed(b.bytes, c.bytes, threshold, fl.bytes)
				f.regAllocs = regressed(b.allocs, c.allocs, threshold, fl.allocs)
			}
		}
		out = append(out, f)
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// report prints the comparison and returns the number of gate failures
// (regressions plus benchmarks missing from the current run).
func report(w *bufio.Writer, file string, findings []finding, baseMeta, curMeta *meta) int {
	fmt.Fprintf(w, "== %s\n", file)
	if baseMeta != nil {
		fmt.Fprintf(w, "   baseline: commit %s, %s, %s\n", baseMeta.Commit, baseMeta.GoVersion, baseMeta.CPU)
	}
	if curMeta != nil {
		fmt.Fprintf(w, "   current:  commit %s, %s, %s\n", curMeta.Commit, curMeta.GoVersion, curMeta.CPU)
	}
	if baseMeta != nil && curMeta != nil && baseMeta.CPU != curMeta.CPU {
		fmt.Fprintf(w, "   WARNING: baseline was blessed on different hardware — expect noise; rebless with make bench-accept on this machine\n")
	}
	bad := 0
	for _, f := range findings {
		switch {
		case f.missing:
			bad++
			fmt.Fprintf(w, "   MISSING  %-60s baseline %12.1f ns/op (rebless with make bench-accept if removed intentionally)\n", f.name, f.base.ns)
			continue
		case f.added:
			fmt.Fprintf(w, "   new      %-60s %12.1f ns/op\n", f.name, f.cur.ns)
			continue
		case f.regNS:
			bad++
			fmt.Fprintf(w, "   REGRESS  %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n", f.name, f.base.ns, f.cur.ns, 100*(f.cur.ns/f.base.ns-1))
		default:
			fmt.Fprintf(w, "   ok       %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n", f.name, f.base.ns, f.cur.ns, 100*(f.cur.ns/f.base.ns-1))
		}
		if f.regBytes {
			bad++
			fmt.Fprintf(w, "   REGRESS  %-60s %12.1f -> %12.1f B/op (%+.1f%%)\n", f.name, f.base.bytes, f.cur.bytes, 100*(f.cur.bytes/f.base.bytes-1))
		}
		if f.regAllocs {
			bad++
			fmt.Fprintf(w, "   REGRESS  %-60s %12.1f -> %12.1f allocs/op (%+.1f%%)\n", f.name, f.base.allocs, f.cur.allocs, 100*(f.cur.allocs/f.base.allocs-1))
		}
	}
	return bad
}

// hostMeta collects the attribution fields for stamp mode.
func hostMeta() meta {
	m := meta{
		Action:    "bench-meta",
		GoVersion: runtime.Version(),
		Time:      time.Now().UTC().Format(time.RFC3339),
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		m.Commit = sha
	} else if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.Commit = strings.TrimSpace(string(out))
	}
	if cpuinfo, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(cpuinfo), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				m.CPU = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
				break
			}
		}
	}
	if m.CPU == "" {
		m.CPU = runtime.GOARCH
	}
	return m
}

// stamp prepends the bench-meta line to each file (replacing any stamp
// already present, so re-stamping is idempotent).
func stamp(paths []string) error {
	line, err := json.Marshal(hostMeta())
	if err != nil {
		return err
	}
	for _, p := range paths {
		body, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if i := bytes.IndexByte(body, '\n'); i >= 0 && bytes.Contains(body[:i], []byte(`"bench-meta"`)) {
			body = body[i+1:]
		}
		out := append(append(line, '\n'), body...)
		if err := os.WriteFile(p, out, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// run is the CLI body; split from main so the regression-injection test
// can drive it end to end and assert the failure exit.
func run(args []string, stdout *bufio.Writer) (failures int, err error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baselineDir := fs.String("baseline", "bench/baseline", "directory holding blessed baseline BENCH_*.json files")
	threshold := fs.Float64("threshold", 0.10, "relative regression (any gated metric) that fails the gate")
	floor := fs.Float64("floor", 50, "absolute ns/op delta below which a regression is noise, not a failure")
	bfloor := fs.Float64("bfloor", 64, "absolute B/op delta below which a regression is noise, not a failure")
	allocfloor := fs.Float64("allocfloor", 2, "absolute allocs/op delta below which a regression is noise, not a failure")
	doStamp := fs.Bool("stamp", false, "prepend run metadata (commit, CPU, Go version) to the files instead of diffing")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	files := fs.Args()
	if len(files) == 0 {
		return 0, fmt.Errorf("benchdiff: no BENCH_*.json files given")
	}
	if *doStamp {
		return 0, stamp(files)
	}
	for _, f := range files {
		cur, curMeta, err := parseFile(f)
		if err != nil {
			return failures, fmt.Errorf("benchdiff: %s: %w", f, err)
		}
		basePath := filepath.Join(*baselineDir, filepath.Base(f))
		base, baseMeta, err := parseFile(basePath)
		if err != nil {
			return failures, fmt.Errorf("benchdiff: baseline %s: %w (run make bench-accept to bless one)", basePath, err)
		}
		failures += report(stdout, f, diff(base, cur, *threshold, floors{ns: *floor, bytes: *bfloor, allocs: *allocfloor}), baseMeta, curMeta)
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d metric(s) regressed past %.0f%% — if intentional, rebless with make bench-accept\n",
			failures, 100**threshold)
	}
	return failures, nil
}

func main() {
	w := bufio.NewWriter(os.Stdout)
	failures, err := run(os.Args[1:], w)
	w.Flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if failures > 0 {
		os.Exit(1)
	}
}
