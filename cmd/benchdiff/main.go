// Command benchdiff is the bench-regression gate: it compares `go test
// -json` benchmark streams (the BENCH_*.json trajectory artifacts CI
// uploads) against the blessed baselines under bench/baseline/ and fails
// when any benchmark's ns/op regresses beyond the threshold.
//
// Diff mode (the CI job and `make bench-diff`):
//
//	benchdiff [-baseline DIR] [-threshold F] [-floor NS] FILE...
//
// Every FILE is compared against DIR/<basename>. A benchmark regresses
// when its current ns/op exceeds baseline×(1+threshold) AND the absolute
// delta exceeds the floor — the floor keeps sub-noise micro-benchmarks
// (a few ns of jitter easily tops 10%) from flapping the gate. Benchmarks
// added since the baseline are reported but never fail; benchmarks that
// disappeared fail the gate so a baseline can't silently go stale.
// Rebless intentional changes with `make bench-accept`.
//
// Stamp mode (`make bench-accept` and the CI upload steps):
//
//	benchdiff -stamp FILE...
//
// prepends a {"Action":"bench-meta",...} line carrying the commit SHA, CPU
// model and Go version, so cross-run diffs stay attributable. Diff mode
// prints both sides' metadata when present.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// meta is the attribution line stamp mode prepends. Action distinguishes
// it from real test2json events (whose Actions are run/output/pass/...),
// so tooling that consumes the stream can skip it by shape.
type meta struct {
	Action    string `json:"Action"` // always "bench-meta"
	Commit    string `json:"Commit"`
	GoVersion string `json:"GoVersion"`
	CPU       string `json:"CPU"`
	Time      string `json:"Time"`
}

// event is the subset of a test2json line the parser needs.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result in test output: name (with the
// -GOMAXPROCS suffix to strip), iteration count, ns/op. Secondary metrics
// (ns/request, B/op) ride on the same line but the gate is ns/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseFile extracts benchmark name -> ns/op from a go test -json stream,
// plus the bench-meta line when present. Duplicate benchmark names (e.g.
// -count > 1) keep the minimum, the noise-robust summary of repeats.
func parseFile(path string) (map[string]float64, *meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	results := make(map[string]float64)
	var m *meta
	// test2json flushes the benchmark name (which go test prints before
	// running) as its own partial-line event ending in "\t"; the timing
	// numbers arrive in the next event. Reassemble complete lines per
	// package before matching.
	pending := make(map[string]string)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if ev.Action == "bench-meta" {
			m = &meta{}
			if err := json.Unmarshal(line, m); err != nil {
				m = nil
			}
			continue
		}
		if ev.Action != "output" {
			continue
		}
		buf := pending[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			full := buf[:nl]
			buf = buf[nl+1:]
			sub := benchLine.FindStringSubmatch(strings.TrimSpace(full))
			if sub == nil {
				continue
			}
			ns, err := strconv.ParseFloat(sub[3], 64)
			if err != nil {
				continue
			}
			if old, ok := results[sub[1]]; !ok || ns < old {
				results[sub[1]] = ns
			}
		}
		pending[ev.Package] = buf
	}
	return results, m, sc.Err()
}

// finding is one benchmark's comparison outcome.
type finding struct {
	name       string
	base, cur  float64
	regression bool
	missing    bool // present in baseline, absent in current
	added      bool // present in current, absent in baseline
}

// diff compares current against baseline under the threshold/floor rule.
func diff(baseline, current map[string]float64, threshold, floorNS float64) []finding {
	names := make([]string, 0, len(baseline)+len(current))
	for n := range baseline {
		names = append(names, n)
	}
	for n := range current {
		if _, ok := baseline[n]; !ok {
			names = append(names, n)
		}
	}
	sortStrings(names)

	var out []finding
	for _, n := range names {
		b, inBase := baseline[n]
		c, inCur := current[n]
		f := finding{name: n, base: b, cur: c}
		switch {
		case !inCur:
			f.missing = true
		case !inBase:
			f.added = true
		default:
			f.regression = c > b*(1+threshold) && c-b > floorNS
		}
		out = append(out, f)
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// report prints the comparison and returns the number of gate failures
// (regressions plus benchmarks missing from the current run).
func report(w *bufio.Writer, file string, findings []finding, baseMeta, curMeta *meta) int {
	fmt.Fprintf(w, "== %s\n", file)
	if baseMeta != nil {
		fmt.Fprintf(w, "   baseline: commit %s, %s, %s\n", baseMeta.Commit, baseMeta.GoVersion, baseMeta.CPU)
	}
	if curMeta != nil {
		fmt.Fprintf(w, "   current:  commit %s, %s, %s\n", curMeta.Commit, curMeta.GoVersion, curMeta.CPU)
	}
	if baseMeta != nil && curMeta != nil && baseMeta.CPU != curMeta.CPU {
		fmt.Fprintf(w, "   WARNING: baseline was blessed on different hardware — expect noise; rebless with make bench-accept on this machine\n")
	}
	bad := 0
	for _, f := range findings {
		switch {
		case f.missing:
			bad++
			fmt.Fprintf(w, "   MISSING  %-60s baseline %12.1f ns/op (rebless with make bench-accept if removed intentionally)\n", f.name, f.base)
		case f.added:
			fmt.Fprintf(w, "   new      %-60s %12.1f ns/op\n", f.name, f.cur)
		case f.regression:
			bad++
			fmt.Fprintf(w, "   REGRESS  %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n", f.name, f.base, f.cur, 100*(f.cur/f.base-1))
		default:
			fmt.Fprintf(w, "   ok       %-60s %12.1f -> %12.1f ns/op (%+.1f%%)\n", f.name, f.base, f.cur, 100*(f.cur/f.base-1))
		}
	}
	return bad
}

// hostMeta collects the attribution fields for stamp mode.
func hostMeta() meta {
	m := meta{
		Action:    "bench-meta",
		GoVersion: runtime.Version(),
		Time:      time.Now().UTC().Format(time.RFC3339),
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		m.Commit = sha
	} else if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		m.Commit = strings.TrimSpace(string(out))
	}
	if cpuinfo, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(cpuinfo), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				m.CPU = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
				break
			}
		}
	}
	if m.CPU == "" {
		m.CPU = runtime.GOARCH
	}
	return m
}

// stamp prepends the bench-meta line to each file (replacing any stamp
// already present, so re-stamping is idempotent).
func stamp(paths []string) error {
	line, err := json.Marshal(hostMeta())
	if err != nil {
		return err
	}
	for _, p := range paths {
		body, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		if i := bytes.IndexByte(body, '\n'); i >= 0 && bytes.Contains(body[:i], []byte(`"bench-meta"`)) {
			body = body[i+1:]
		}
		out := append(append(line, '\n'), body...)
		if err := os.WriteFile(p, out, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// run is the CLI body; split from main so the regression-injection test
// can drive it end to end and assert the failure exit.
func run(args []string, stdout *bufio.Writer) (failures int, err error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baselineDir := fs.String("baseline", "bench/baseline", "directory holding blessed baseline BENCH_*.json files")
	threshold := fs.Float64("threshold", 0.10, "relative ns/op regression that fails the gate")
	floor := fs.Float64("floor", 50, "absolute ns/op delta below which a regression is noise, not a failure")
	doStamp := fs.Bool("stamp", false, "prepend run metadata (commit, CPU, Go version) to the files instead of diffing")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	files := fs.Args()
	if len(files) == 0 {
		return 0, fmt.Errorf("benchdiff: no BENCH_*.json files given")
	}
	if *doStamp {
		return 0, stamp(files)
	}
	for _, f := range files {
		cur, curMeta, err := parseFile(f)
		if err != nil {
			return failures, fmt.Errorf("benchdiff: %s: %w", f, err)
		}
		basePath := filepath.Join(*baselineDir, filepath.Base(f))
		base, baseMeta, err := parseFile(basePath)
		if err != nil {
			return failures, fmt.Errorf("benchdiff: baseline %s: %w (run make bench-accept to bless one)", basePath, err)
		}
		failures += report(stdout, f, diff(base, cur, *threshold, *floor), baseMeta, curMeta)
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "benchdiff: %d benchmark(s) regressed past %.0f%% — if intentional, rebless with make bench-accept\n",
			failures, 100**threshold)
	}
	return failures, nil
}

func main() {
	w := bufio.NewWriter(os.Stdout)
	failures, err := run(os.Args[1:], w)
	w.Flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if failures > 0 {
		os.Exit(1)
	}
}
