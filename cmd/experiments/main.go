// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [targets...]
//
// Targets come from the experiment registry (experiments -list prints
// them with descriptions); "all" or no targets runs everything in
// canonical order. Unknown targets exit with status 2 and print the
// registry. Scale 1 reproduces full 64 ms intervals; smaller scales
// shrink interval, threshold and traffic together (rates stay
// representative, see internal/experiments).
//
// Output is pluggable: -format text (default, the paper-shaped tables,
// byte-identical to the historical output and locked by golden tests),
// -format json (one JSON array of structured Reports) or -format csv.
// With json/csv, progress lines go to stderr so stdout stays parseable.
//
// The figx protection study sweeps arbitrary user-defined scheme configs
// via the repeatable -scheme flag, e.g.
//
//	experiments -scheme comet:counters=512,depth=4 -scheme drcat:counters=64 figx
//
// Simulation cells run on a deterministic worker pool: -parallel caps the
// concurrency (0 = GOMAXPROCS, 1 = sequential) and the emitted tables are
// byte-identical at every setting. One result cache is shared across all
// requested targets (-cache=false disables it), so fig9 reuses fig8's
// paired runs and each no-mitigation baseline runs exactly once.
//
// -cpuprofile and -memprofile write pprof profiles (CPU during the run,
// heap at exit), making the engine hot path measurable:
//
//	experiments -cpuprofile cpu.pprof -q fig8 && go tool pprof cpu.pprof
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"catsim/internal/dram"
	"catsim/internal/experiments"
	"catsim/internal/mitigation"
	"catsim/internal/runner"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable CLI body; it returns the process exit code (named
// so the deferred -memprofile writer can fail the run).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale       = fs.Float64("scale", 0.25, "experiment scale (1 = paper scale)")
		seed        = fs.Uint64("seed", 1, "random seed")
		workloads   = fs.String("workloads", "", "comma-separated workload subset")
		intervals   = fs.Int("intervals", 1, "auto-refresh intervals per run")
		trials      = fs.Int("lfsr-trials", 200, "Monte-Carlo trials for the LFSR study")
		quiet       = fs.Bool("q", false, "suppress progress lines and timings")
		parallel    = fs.Int("parallel", 0, "concurrent simulation cells (0 = GOMAXPROCS, 1 = sequential)")
		cache       = fs.Bool("cache", true, "memoize shared runs (baselines) across figures")
		format      = fs.String("format", "text", "output format: text, json or csv")
		list        = fs.Bool("list", false, "list registered experiments and exit")
		checkReport = fs.String("validate-json", "", "decode a -format json output `file` as []Report and exit")
		cpuprofile  = fs.String("cpuprofile", "", "write a pprof CPU profile to `file`")
		memprofile  = fs.String("memprofile", "", "write a pprof heap profile to `file` on exit")
		schemes     mitigation.SpecList
		geo         dram.GeometrySpec
	)
	fs.Var(&schemes, "scheme",
		"scheme spec for the figx sweep, e.g. comet:counters=512,depth=4 (repeatable)")
	fs.Var(&geo, "geometry",
		"geometry spec overriding the baseline system in workload-grid figures, e.g. ddr5:channels=8,rows=128Ki")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// Profiling hooks: the engine hot path is measured by running e.g.
	//
	//	experiments -cpuprofile cpu.pprof -q fig8
	//
	// and inspecting with `go tool pprof`. Stops/writes fire on every
	// return path via defer.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			err := writeHeapProfile(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "experiments:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	if *list {
		for _, e := range experiments.Experiments() {
			fmt.Fprintf(stdout, "%-10s %s\n", e.Name, e.Description)
		}
		return 0
	}
	if *checkReport != "" {
		return validateJSON(*checkReport, stdout, stderr)
	}

	o := experiments.Options{
		Scale: *scale, Seed: *seed, Quiet: *quiet, Intervals: *intervals,
		LFSRTrials: *trials, Parallel: *parallel, NoCache: !*cache,
		Schemes: schemes, Context: ctx,
	}
	if geo.Base != "" {
		o.Geometry = &geo
	}
	if *cache {
		o.Cache = runner.NewCache()
	}
	if *workloads != "" {
		o.Workloads = strings.Split(*workloads, ",")
	}

	targets := fs.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = experiments.Names()
	}
	// Validate every target up front: an unknown one exits 2 with the
	// registry, before any simulation time is spent.
	for _, target := range targets {
		if _, ok := experiments.Lookup(target); !ok {
			fmt.Fprintf(stderr, "experiments: unknown target %q; registered experiments:\n", target)
			for _, e := range experiments.Experiments() {
				fmt.Fprintf(stderr, "  %-10s %s\n", e.Name, e.Description)
			}
			return 2
		}
	}

	var renderer experiments.Renderer
	text := false
	switch *format {
	case "text":
		renderer = experiments.NewTextRenderer(stdout)
		text = true
		if !*quiet {
			o.Progress = stdout
		}
	case "json":
		renderer = experiments.NewJSONRenderer(stdout)
		if !*quiet {
			o.Progress = stderr
		}
	case "csv":
		renderer = experiments.NewCSVRenderer(stdout)
		if !*quiet {
			o.Progress = stderr
		}
	default:
		fmt.Fprintf(stderr, "experiments: unknown format %q (text, json or csv)\n", *format)
		return 2
	}

	for _, target := range targets {
		start := time.Now()
		if text {
			fmt.Fprintf(stdout, "==== %s (scale %.2f) ====\n", target, *scale)
		}
		if err := experiments.RunExperiment(target, o, renderer); err != nil {
			fmt.Fprintln(stderr, "experiments:", strings.TrimPrefix(err.Error(), "experiments: "))
			return 1
		}
		if text {
			if *quiet {
				fmt.Fprintf(stdout, "---- %s done ----\n\n", target)
			} else {
				fmt.Fprintf(stdout, "---- %s done in %v ----\n\n", target, time.Since(start).Round(time.Millisecond))
			}
		}
	}
	if err := renderer.Flush(); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	if text && o.Cache != nil && !*quiet {
		fmt.Fprintf(stdout, "result cache: %d simulations run, %d served from cache\n",
			len(o.Cache.Runs()), o.Cache.Hits())
	}
	return 0
}

// writeHeapProfile snapshots the final live set into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // materialise the final live set
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// validateJSON decodes a -format json output file into []Report — the CI
// golden job's machine-readability check.
func validateJSON(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	var reports []experiments.Report
	if err := json.Unmarshal(data, &reports); err != nil {
		fmt.Fprintf(stderr, "experiments: %s does not decode as []Report: %v\n", path, err)
		return 1
	}
	if len(reports) == 0 {
		fmt.Fprintf(stderr, "experiments: %s decodes to zero reports\n", path)
		return 1
	}
	rows := 0
	for _, r := range reports {
		rows += len(r.Rows)
	}
	fmt.Fprintf(stdout, "%s: %d reports, %d rows ok\n", path, len(reports), rows)
	return 0
}
