// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale 0.25] [-seed 1] [-parallel 0] [-workloads a,b,c] [targets...]
//
// Targets: table1 table2 fig1 lfsr fig2 fig3 fig8 fig9 fig10 fig11 fig12
// fig13 figx all (default: all; figx is the beyond-the-paper
// overhead-vs-protection study of the modern trackers under adversarial
// patterns). Scale 1 reproduces full 64 ms intervals; smaller scales
// shrink interval, threshold and traffic together (rates stay
// representative, see internal/experiments).
//
// Simulation cells run on a deterministic worker pool: -parallel caps the
// concurrency (0 = GOMAXPROCS, 1 = sequential) and the emitted tables are
// byte-identical at every setting. One result cache is shared across all
// requested targets (-cache=false disables it), so fig9 reuses fig8's
// paired runs and each no-mitigation baseline runs exactly once.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"catsim/internal/experiments"
	"catsim/internal/runner"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.25, "experiment scale (1 = paper scale)")
		seed      = flag.Uint64("seed", 1, "random seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset")
		intervals = flag.Int("intervals", 1, "auto-refresh intervals per run")
		trials    = flag.Int("lfsr-trials", 200, "Monte-Carlo trials for the LFSR study")
		quiet     = flag.Bool("q", false, "suppress progress lines")
		parallel  = flag.Int("parallel", 0, "concurrent simulation cells (0 = GOMAXPROCS, 1 = sequential)")
		cache     = flag.Bool("cache", true, "memoize shared runs (baselines) across figures")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	o := experiments.Options{
		Scale: *scale, Seed: *seed, Quiet: *quiet, Intervals: *intervals,
		Parallel: *parallel, NoCache: !*cache, Context: ctx,
	}
	if *cache {
		o.Cache = runner.NewCache()
	}
	if *workloads != "" {
		o.Workloads = strings.Split(*workloads, ",")
	}

	targets := flag.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = []string{"table1", "table2", "fig1", "lfsr", "fig2", "fig3",
			"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "figx", "ablations", "headlines"}
	}

	w := os.Stdout
	for _, target := range targets {
		start := time.Now()
		fmt.Fprintf(w, "==== %s (scale %.2f) ====\n", target, *scale)
		var err error
		switch target {
		case "table1":
			err = experiments.Table1(w)
		case "table2":
			_, err = experiments.Table2(w)
		case "fig1":
			_, err = experiments.Fig1(w)
		case "lfsr":
			_, err = experiments.LFSRStudy(w, *trials)
		case "fig2":
			_, err = experiments.Fig2(w, o)
		case "fig3":
			_, err = experiments.Fig3(w, o)
		case "fig8":
			_, err = experiments.Fig8(w, o)
		case "fig9":
			_, err = experiments.Fig9(w, o)
		case "fig10":
			_, err = experiments.Fig10(w, o)
		case "fig11":
			_, err = experiments.Fig11(w, o)
		case "fig12":
			_, err = experiments.Fig12(w, o)
		case "fig13":
			_, err = experiments.Fig13(w, o)
		case "figx":
			_, err = experiments.FigX(w, o)
		case "headlines":
			_, err = experiments.Headlines(w, o)
		case "ablations":
			if _, err = experiments.AblationLadders(w, o); err == nil {
				if _, err = experiments.AblationWeightBits(w, o); err == nil {
					if _, err = experiments.AblationPreSplit(w, o); err == nil {
						ccOpts := o
						if len(ccOpts.Workloads) == 0 {
							ccOpts.Workloads = []string{"black", "comm1", "face", "libq"}
						}
						_, err = experiments.AblationCounterCache(w, ccOpts)
					}
				}
			}
		default:
			err = fmt.Errorf("unknown target %q", target)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "---- %s done in %v ----\n\n", target, time.Since(start).Round(time.Millisecond))
	}
	if o.Cache != nil && !*quiet {
		fmt.Fprintf(w, "result cache: %d simulations run, %d served from cache\n",
			len(o.Cache.Runs()), o.Cache.Hits())
	}
}
