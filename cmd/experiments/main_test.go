package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"catsim/internal/experiments"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUnknownTargetExitsTwoAndPrintsRegistry(t *testing.T) {
	code, _, stderr := runCLI(t, "nosuchfig")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown target "nosuchfig"`) {
		t.Errorf("stderr = %q", stderr)
	}
	for _, name := range experiments.Names() {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr missing registered experiment %q", name)
		}
	}
}

func TestListPrintsRegistry(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, e := range experiments.Experiments() {
		if !strings.Contains(stdout, e.Name) || !strings.Contains(stdout, e.Description) {
			t.Errorf("-list missing %s", e.Name)
		}
	}
}

func TestUnknownWorkloadFailsLoudly(t *testing.T) {
	code, _, stderr := runCLI(t, "-workloads", "black,nope", "fig2")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, `unknown workload "nope"`) || !strings.Contains(stderr, "comm1") {
		t.Errorf("stderr should name the bad workload and list valid ones: %q", stderr)
	}
	if strings.Contains(stderr, "experiments: experiments:") {
		t.Errorf("error prefix doubled: %q", stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-h")
	if code != 0 {
		t.Errorf("-h exit = %d, want 0", code)
	}
	if !strings.Contains(stderr, "-scheme") {
		t.Errorf("usage should document -scheme: %q", stderr)
	}
}

func TestUnknownFormatExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-format", "yaml", "table1")
	if code != 2 || !strings.Contains(stderr, `unknown format "yaml"`) {
		t.Errorf("exit = %d, stderr = %q", code, stderr)
	}
}

func TestBadSchemeFlagExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-scheme", "sca:bogus=1", "figx")
	if code != 2 {
		t.Errorf("exit = %d, want 2 (stderr %q)", code, stderr)
	}
}

func TestBadGeometryFlagExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-geometry", "nope", "figx")
	if code != 2 {
		t.Errorf("exit = %d, want 2 (stderr %q)", code, stderr)
	}
}

func TestGeometryFlagOverridesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; skipped with -short")
	}
	code, stdout, stderr := runCLI(t,
		"-q", "-scale", "0.02", "-workloads", "black", "-format", "json",
		"-geometry", "2ch:rows=8Ki", "figx")
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, stderr)
	}
	var reports []experiments.Report
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || len(reports[0].Rows) == 0 {
		t.Fatalf("reports = %+v", reports)
	}
}

func TestJSONFormatDecodesAsReports(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-q", "-format", "json", "table1", "table2", "fig1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, stderr)
	}
	var reports []experiments.Report
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatalf("stdout is not []Report JSON: %v", err)
	}
	if len(reports) != 3 || reports[0].Name != "table1" || reports[2].Name != "fig1" {
		t.Errorf("reports = %d %v", len(reports), reports)
	}

	// -validate-json accepts this output and rejects garbage.
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out, _ := runCLI(t, "-validate-json", good); code != 0 || !strings.Contains(out, "3 reports") {
		t.Errorf("validate-json: exit %d out %q", code, out)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "-validate-json", bad); code != 1 {
		t.Errorf("validate-json on garbage: exit %d, want 1", code)
	}
}

func TestCSVFormat(t *testing.T) {
	code, stdout, _ := runCLI(t, "-q", "-format", "csv", "table2")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "# table2:") || !strings.Contains(stdout, "M,drcat_dyn_nj") {
		t.Errorf("csv output = %q", stdout)
	}
}

func TestTextQuietIsDeterministicShape(t *testing.T) {
	code, stdout, _ := runCLI(t, "-q", "table1")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "==== table1") || !strings.Contains(stdout, "---- table1 done ----") {
		t.Errorf("quiet banners missing: %q", stdout)
	}
	if strings.Contains(stdout, "done in") || strings.Contains(stdout, "result cache:") {
		t.Errorf("quiet output must omit timings and cache stats: %q", stdout)
	}
}

func TestSchemeFlagSweepsFigx(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; skipped with -short")
	}
	code, stdout, stderr := runCLI(t,
		"-q", "-scale", "0.02", "-workloads", "black", "-format", "json",
		"-scheme", "drcat:counters=64", "figx")
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, stderr)
	}
	var reports []experiments.Report
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || len(reports[0].Rows) != 8 {
		t.Fatalf("reports = %+v", reports)
	}
	for _, row := range reports[0].Rows {
		if row[2] != "drcat:counters=64" {
			t.Errorf("row scheme = %v, want the full spec string", row[2])
		}
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, stderr := runCLI(t, "-cpuprofile", cpu, "-memprofile", mem, "table1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, stderr)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestCPUProfileBadPathExitsOne(t *testing.T) {
	code, _, stderr := runCLI(t, "-cpuprofile", filepath.Join(t.TempDir(), "no", "dir", "cpu.pprof"), "table1")
	if code != 1 || stderr == "" {
		t.Errorf("exit = %d stderr %q, want 1 with an error", code, stderr)
	}
}

func TestFigtTimeSeriesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations; skipped with -short")
	}
	code, stdout, stderr := runCLI(t,
		"-q", "-scale", "0.02", "-workloads", "black", "-format", "json", "figt")
	if code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, stderr)
	}
	var reports []experiments.Report
	if err := json.Unmarshal([]byte(stdout), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Name != "figt" {
		t.Fatalf("reports = %+v", reports)
	}
	if len(reports[0].Rows) == 0 {
		t.Fatal("figt emitted no epoch rows")
	}
	// Rows are column-keyed objects; every row carries an epoch index and
	// timestamp the jq examples in the README rely on.
	first := reports[0].Rows[0]
	if len(first) != len(reports[0].Columns) {
		t.Errorf("row width %d != %d columns", len(first), len(reports[0].Columns))
	}
}

func TestMemProfileBadPathExitsOne(t *testing.T) {
	code, _, stderr := runCLI(t, "-memprofile", filepath.Join(t.TempDir(), "no", "dir", "mem.pprof"), "table1")
	if code != 1 || stderr == "" {
		t.Errorf("exit = %d stderr %q, want 1 with an error", code, stderr)
	}
}
