// Command tracegen inspects the synthetic workload models: it dumps raw
// request streams or per-bank row-access histograms (the measurement behind
// the paper's Fig. 3).
//
// Usage:
//
//	tracegen -workload black -n 20 -dump          # raw requests (text)
//	tracegen -workload black -n 2000000 -hist     # bank histogram summary
//	tracegen -workload black -n 5000 -format v1 -o black.v1
//	                                              # versioned binary trace
//
// -format v1 writes the generated stream as a v1 trace container — the
// same checksummed format cmd/replay captures and replays — instead of
// the legacy text dump.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and executes the command, writing results to stdout and
// diagnostics to stderr; it returns the process exit code (2 for usage
// errors, matching flag's convention).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "black", "workload name")
		n        = fs.Int("n", 1_000_000, "requests to generate (positive)")
		seed     = fs.Uint64("seed", 1, "random seed")
		dump     = fs.Bool("dump", false, "dump raw requests to stdout")
		hist     = fs.Bool("hist", true, "print per-bank histogram summary")
		format   = fs.String("format", "text", "output format: text (legacy dump/hist) or v1 (binary trace container)")
		out      = fs.String("o", "", "v1 output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	usage := func(err error, hint string) int {
		fmt.Fprintf(stderr, "tracegen: %v\n%s\n", err, hint)
		fs.Usage()
		return 2
	}
	if *n <= 0 {
		return usage(fmt.Errorf("request count -n=%d must be positive", *n),
			"hint: pass -n with a positive request count, e.g. -n 20")
	}
	wl, err := trace.Lookup(*workload)
	if err != nil {
		return usage(err,
			"hint: known workloads are "+strings.Join(trace.WorkloadNames(), " "))
	}
	geom := dram.Default2Channel()
	gen, err := trace.NewSynthetic(wl, geom.TotalBytes(), geom.LineBytes, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	policy, err := addrmap.NewRowInterleaved(geom)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	switch *format {
	case "text":
	case "v1":
		// One closed-loop stream in the versioned container cmd/replay
		// replays; the checksum makes truncation/corruption detectable.
		reqs := make([]trace.Request, *n)
		for i := range reqs {
			reqs[i] = gen.Next()
		}
		c := &trace.Container{
			Geometry: geom,
			Streams:  []trace.Stream{{Name: wl.Name, Reqs: reqs}},
		}
		w := bufio.NewWriter(stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(stderr, "tracegen:", err)
				return 1
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		if err := trace.WriteContainer(w, c); err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		fmt.Fprintf(stderr, "tracegen: wrote %d requests (digest %016x)\n", *n, c.Digest())
		return 0
	default:
		return usage(fmt.Errorf("unknown format %q", *format),
			"hint: -format text or -format v1")
	}

	if *dump {
		for i := 0; i < *n; i++ {
			r := gen.Next()
			c := policy.Decode(r.Addr)
			op := "R"
			if r.Write {
				op = "W"
			}
			fmt.Fprintf(stdout, "%s 0x%012x gap=%-4d ch=%d rk=%d bk=%d row=%-6d col=%d\n",
				op, r.Addr, r.Gap, c.Bank.Channel, c.Bank.Rank, c.Bank.Bank, c.Row, c.Col)
		}
		return 0
	}
	if *hist {
		h := trace.RowHistogram(gen, geom, policy, *n)
		fmt.Fprintf(stdout, "workload %s: %d requests over %d banks\n", wl.Name, *n, geom.TotalBanks())
		fmt.Fprintln(stdout, "bank  accesses  rows  max/row  top16-share")
		for b, rows := range h {
			s := trace.Summarise(rows)
			if s.Total == 0 {
				continue
			}
			fmt.Fprintf(stdout, "%4d  %8d  %4d  %7d  %10.1f%%\n",
				b, s.Total, s.TouchedRows, s.MaxPerRow, s.Top16Frac*100)
		}
	}
	return 0
}
