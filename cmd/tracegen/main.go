// Command tracegen inspects the synthetic workload models: it dumps raw
// request streams or per-bank row-access histograms (the measurement behind
// the paper's Fig. 3).
//
// Usage:
//
//	tracegen -workload black -n 20 -dump          # raw requests
//	tracegen -workload black -n 2000000 -hist     # bank histogram summary
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and executes the command, writing results to stdout and
// diagnostics to stderr; it returns the process exit code (2 for usage
// errors, matching flag's convention).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "black", "workload name")
		n        = fs.Int("n", 1_000_000, "requests to generate (positive)")
		seed     = fs.Uint64("seed", 1, "random seed")
		dump     = fs.Bool("dump", false, "dump raw requests to stdout")
		hist     = fs.Bool("hist", true, "print per-bank histogram summary")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	usage := func(err error, hint string) int {
		fmt.Fprintf(stderr, "tracegen: %v\n%s\n", err, hint)
		fs.Usage()
		return 2
	}
	if *n <= 0 {
		return usage(fmt.Errorf("request count -n=%d must be positive", *n),
			"hint: pass -n with a positive request count, e.g. -n 20")
	}
	wl, err := trace.Lookup(*workload)
	if err != nil {
		return usage(err,
			"hint: known workloads are "+strings.Join(trace.WorkloadNames(), " "))
	}
	geom := dram.Default2Channel()
	gen, err := trace.NewSynthetic(wl, geom.TotalBytes(), geom.LineBytes, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	policy, err := addrmap.NewRowInterleaved(geom)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	if *dump {
		for i := 0; i < *n; i++ {
			r := gen.Next()
			c := policy.Decode(r.Addr)
			op := "R"
			if r.Write {
				op = "W"
			}
			fmt.Fprintf(stdout, "%s 0x%012x gap=%-4d ch=%d rk=%d bk=%d row=%-6d col=%d\n",
				op, r.Addr, r.Gap, c.Bank.Channel, c.Bank.Rank, c.Bank.Bank, c.Row, c.Col)
		}
		return 0
	}
	if *hist {
		h := trace.RowHistogram(gen, geom, policy, *n)
		fmt.Fprintf(stdout, "workload %s: %d requests over %d banks\n", wl.Name, *n, geom.TotalBanks())
		fmt.Fprintln(stdout, "bank  accesses  rows  max/row  top16-share")
		for b, rows := range h {
			s := trace.Summarise(rows)
			if s.Total == 0 {
				continue
			}
			fmt.Fprintf(stdout, "%4d  %8d  %4d  %7d  %10.1f%%\n",
				b, s.Total, s.TouchedRows, s.MaxPerRow, s.Top16Frac*100)
		}
	}
	return 0
}
