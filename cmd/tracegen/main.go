// Command tracegen inspects the synthetic workload models: it dumps raw
// request streams or per-bank row-access histograms (the measurement behind
// the paper's Fig. 3).
//
// Usage:
//
//	tracegen -workload black -n 20 -dump          # raw requests
//	tracegen -workload black -n 2000000 -hist     # bank histogram summary
package main

import (
	"flag"
	"fmt"
	"os"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "black", "workload name")
		n        = flag.Int("n", 1_000_000, "requests to generate")
		seed     = flag.Uint64("seed", 1, "random seed")
		dump     = flag.Bool("dump", false, "dump raw requests to stdout")
		hist     = flag.Bool("hist", true, "print per-bank histogram summary")
	)
	flag.Parse()

	wl, err := trace.Lookup(*workload)
	fatal(err)
	geom := dram.Default2Channel()
	gen, err := trace.NewSynthetic(wl, geom.TotalBytes(), geom.LineBytes, *seed)
	fatal(err)
	policy, err := addrmap.NewRowInterleaved(geom)
	fatal(err)

	if *dump {
		for i := 0; i < *n; i++ {
			r := gen.Next()
			c := policy.Decode(r.Addr)
			op := "R"
			if r.Write {
				op = "W"
			}
			fmt.Printf("%s 0x%012x gap=%-4d ch=%d rk=%d bk=%d row=%-6d col=%d\n",
				op, r.Addr, r.Gap, c.Bank.Channel, c.Bank.Rank, c.Bank.Bank, c.Row, c.Col)
		}
		return
	}
	if *hist {
		h := trace.RowHistogram(gen, geom, policy, *n)
		fmt.Printf("workload %s: %d requests over %d banks\n", wl.Name, *n, geom.TotalBanks())
		fmt.Println("bank  accesses  rows  max/row  top16-share")
		for b, rows := range h {
			s := trace.Summarise(rows)
			if s.Total == 0 {
				continue
			}
			fmt.Printf("%4d  %8d  %4d  %7d  %10.1f%%\n",
				b, s.Total, s.TouchedRows, s.MaxPerRow, s.Top16Frac*100)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
