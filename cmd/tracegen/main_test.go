package main

import (
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRejectsNonPositiveRequestCount(t *testing.T) {
	for _, n := range []string{"0", "-5"} {
		code, _, stderr := runCmd(t, "-n", n, "-workload", "black")
		if code != 2 {
			t.Errorf("-n %s: exit code %d, want 2", n, code)
		}
		if !strings.Contains(stderr, "must be positive") {
			t.Errorf("-n %s: stderr lacks the validation message: %q", n, stderr)
		}
		if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-workload") {
			t.Errorf("-n %s: stderr lacks a usage hint: %q", n, stderr)
		}
	}
}

func TestRejectsUnknownWorkloadWithHint(t *testing.T) {
	code, _, stderr := runCmd(t, "-workload", "nope", "-n", "10")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown workload "nope"`) {
		t.Errorf("stderr lacks the lookup error: %q", stderr)
	}
	// The hint must list the real workload names.
	if !strings.Contains(stderr, "black") || !strings.Contains(stderr, "libq") {
		t.Errorf("stderr lacks the known-workload hint: %q", stderr)
	}
}

func TestRejectsUnknownFlag(t *testing.T) {
	code, _, _ := runCmd(t, "-bogus")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCmd(t, "-h")
	if code != 0 {
		t.Errorf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Errorf("-h printed no usage: %q", stderr)
	}
}

func TestDumpEmitsRequestedCount(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-workload", "black", "-n", "7", "-dump")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 7 {
		t.Errorf("dumped %d lines, want 7", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "R ") && !strings.HasPrefix(l, "W ") {
			t.Errorf("malformed dump line %q", l)
		}
	}
}

func TestHistogramSummaryRuns(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-workload", "comm1", "-n", "20000")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "workload comm1: 20000 requests") {
		t.Errorf("missing header: %q", stdout)
	}
	if !strings.Contains(stdout, "top16-share") {
		t.Errorf("missing histogram table: %q", stdout)
	}
}
