package main

import (
	"os"
	"path/filepath"

	"catsim/internal/dram"
	"catsim/internal/trace"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRejectsNonPositiveRequestCount(t *testing.T) {
	for _, n := range []string{"0", "-5"} {
		code, _, stderr := runCmd(t, "-n", n, "-workload", "black")
		if code != 2 {
			t.Errorf("-n %s: exit code %d, want 2", n, code)
		}
		if !strings.Contains(stderr, "must be positive") {
			t.Errorf("-n %s: stderr lacks the validation message: %q", n, stderr)
		}
		if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-workload") {
			t.Errorf("-n %s: stderr lacks a usage hint: %q", n, stderr)
		}
	}
}

func TestRejectsUnknownWorkloadWithHint(t *testing.T) {
	code, _, stderr := runCmd(t, "-workload", "nope", "-n", "10")
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown workload "nope"`) {
		t.Errorf("stderr lacks the lookup error: %q", stderr)
	}
	// The hint must list the real workload names.
	if !strings.Contains(stderr, "black") || !strings.Contains(stderr, "libq") {
		t.Errorf("stderr lacks the known-workload hint: %q", stderr)
	}
}

func TestRejectsUnknownFlag(t *testing.T) {
	code, _, _ := runCmd(t, "-bogus")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCmd(t, "-h")
	if code != 0 {
		t.Errorf("-h exit code %d, want 0", code)
	}
	if !strings.Contains(stderr, "Usage") {
		t.Errorf("-h printed no usage: %q", stderr)
	}
}

func TestDumpEmitsRequestedCount(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-workload", "black", "-n", "7", "-dump")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 7 {
		t.Errorf("dumped %d lines, want 7", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "R ") && !strings.HasPrefix(l, "W ") {
			t.Errorf("malformed dump line %q", l)
		}
	}
}

func TestHistogramSummaryRuns(t *testing.T) {
	code, stdout, stderr := runCmd(t, "-workload", "comm1", "-n", "20000")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "workload comm1: 20000 requests") {
		t.Errorf("missing header: %q", stdout)
	}
	if !strings.Contains(stdout, "top16-share") {
		t.Errorf("missing histogram table: %q", stdout)
	}
}

// TestV1FormatRoundTrips writes a v1 container and checks the decoded
// stream matches an independent draw of the same generator — the
// cross-command contract that lets cmd/replay consume tracegen output.
func TestV1FormatRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "black.v1")
	code, _, stderr := runCmd(t, "-workload", "black", "-n", "500", "-seed", "9",
		"-format", "v1", "-o", path)
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "wrote 500 requests") {
		t.Errorf("missing confirmation line: %q", stderr)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c, err := trace.ReadContainer(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Streams) != 1 || c.Streams[0].Open || len(c.Streams[0].Reqs) != 500 {
		t.Fatalf("container shape: %d streams, open=%v", len(c.Streams), c.Streams[0].Open)
	}
	if c.Streams[0].Name != "black" {
		t.Errorf("stream name %q, want black", c.Streams[0].Name)
	}

	geom := dram.Default2Channel()
	gen, err := trace.NewSynthetic(mustLookup(t, "black"), geom.TotalBytes(), geom.LineBytes, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range c.Streams[0].Reqs {
		if want := gen.Next(); got != want {
			t.Fatalf("request %d: %+v, want %+v", i, got, want)
		}
	}

	// stdout output (no -o) is the same bytes.
	code, stdout, _ := runCmd(t, "-workload", "black", "-n", "500", "-seed", "9", "-format", "v1")
	if code != 0 {
		t.Fatal("stdout v1 run failed")
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stdout != string(disk) {
		t.Error("stdout container differs from the -o file")
	}
}

func TestRejectsUnknownFormat(t *testing.T) {
	code, _, stderr := runCmd(t, "-workload", "black", "-n", "5", "-format", "v2")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "-format text or -format v1") {
		t.Errorf("stderr lacks the format hint: %q", stderr)
	}
}

func mustLookup(t *testing.T, name string) trace.Spec {
	t.Helper()
	wl, err := trace.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return wl
}
