// Command catsim runs one crosstalk-mitigation simulation and reports the
// CMRPO breakdown and execution-time overhead.
//
// Usage:
//
//	catsim -workload black -scheme DRCAT -counters 64 -levels 11 -threshold 32768
//	catsim -workload comm1 -scheme PRA -threshold 16384
//	catsim -workload face -scheme SCA -counters 128 -attack heavy -kernel 3
//
// -scheme also accepts full spec strings (any registered kind, including
// the modern trackers), which override the individual -counters/-levels
// flags; a threshold= param overrides -threshold:
//
//	catsim -workload comm1 -scheme comet:counters=512,depth=4
//	catsim -workload black -scheme drcat:threshold=16384,counters=64,levels=11
//
// Open-loop multi-tenant workloads (the ol-* presets, see -list) replace
// the per-core closed loop with timestamped arrivals over a tenant
// cohort and report per-tenant attribution; -attacker embeds an attacker
// tenant issuing that fraction of all arrivals:
//
//	catsim -workload ol-poisson -scheme DRCAT -attacker 0.1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
	wlpkg "catsim/internal/workload"
)

func main() {
	var (
		workload  = flag.String("workload", "comm1", "workload name (see -list)")
		scheme    = flag.String("scheme", "DRCAT", "scheme: SCA, PRA, PRCAT, DRCAT, CC, None")
		counters  = flag.Int("counters", 64, "counters per bank (SCA/CAT) or cache entries (CC)")
		levels    = flag.Int("levels", 11, "maximum CAT levels L")
		threshold = flag.Uint("threshold", 32768, "refresh threshold T")
		praP      = flag.Float64("p", 0, "PRA probability (0 = paper's value for T)")
		cores     = flag.Int("cores", 2, "number of cores")
		quad      = flag.Bool("quad", false, "quad-core geometry (128K rows/bank)")
		fourCh    = flag.Bool("4ch", false, "4-channel parallelism-maximising mapping")
		scale     = flag.Float64("scale", 0.25, "run scale (1 = one full 64 ms interval)")
		seed      = flag.Uint64("seed", 1, "random seed")
		attack    = flag.String("attack", "", "kernel attack mode: heavy, medium, light")
		attacker  = flag.Float64("attacker", 0, "open-loop attacker tenant's fraction of arrivals (ol-* workloads)")
		kernel    = flag.Int("kernel", 0, "kernel attack number (0..11)")
		oracle    = flag.Bool("oracle", false, "attach the crosstalk oracle (verifies protection)")
		parallel  = flag.Int("parallel", 0, "concurrent runs for the scheme/baseline pair (0 = GOMAXPROCS)")
		affine    = flag.Bool("affine", false, "pin core i's stream to channel i mod channels (required by -shards)")
		shards    = flag.Int("shards", 0, "run the channel-partitioned engine with up to N workers (0 = sequential; needs -affine)")
		list      = flag.Bool("list", false, "list workloads and exit")
		geo       dram.GeometrySpec
	)
	flag.Var(&geo, "geometry",
		"geometry spec: a preset with optional overrides, e.g. ddr5 or ddr5:channels=8,rows=128Ki (overrides -quad; see catsim.Geometries)")
	flag.Parse()

	if *list {
		for _, s := range trace.Workloads() {
			fmt.Printf("%-8s %-6s gap=%-4d hot=%.2f sweep=%.2f spots=%d\n",
				s.Name, s.Suite, s.GapMean, s.HotFraction, s.SweepFraction, s.HotSpots)
		}
		for _, c := range wlpkg.Presets() {
			fmt.Printf("%-16s open-loop %s tenants=%d\n", c.Name, c.Arrival, c.Cohort.Tenants)
		}
		return
	}

	// Open-loop preset names route to the workload package; everything
	// else is a closed-loop trace workload.
	var wl trace.Spec
	ol, olErr := wlpkg.Lookup(*workload)
	if olErr != nil {
		var err error
		wl, err = trace.Lookup(*workload)
		fatal(err)
	}

	var spec sim.SchemeSpec
	if strings.Contains(*scheme, ":") {
		// Full spec string: one flag carries the whole configuration
		// (any registered kind); a threshold= param overrides -threshold.
		ms, err := mitigation.ParseSpec(*scheme)
		fatal(err)
		spec, err = sim.FromSpec(ms)
		fatal(err)
		if ms.Threshold != 0 {
			*threshold = uint(ms.Threshold)
		}
	} else {
		switch strings.ToUpper(*scheme) {
		case "SCA":
			spec = sim.SchemeSpec{Kind: mitigation.KindSCA, Counters: *counters}
		case "PRA":
			p := *praP
			if p == 0 {
				p = mitigation.PRAProbabilityForThreshold(uint32(*threshold))
			}
			spec = sim.SchemeSpec{Kind: mitigation.KindPRA, PRAProb: p}
		case "PRCAT":
			spec = sim.SchemeSpec{Kind: mitigation.KindPRCAT, Counters: *counters, MaxLevels: *levels}
		case "DRCAT":
			spec = sim.SchemeSpec{Kind: mitigation.KindDRCAT, Counters: *counters, MaxLevels: *levels}
		case "CC":
			spec = sim.SchemeSpec{Kind: mitigation.KindCounterCache, Counters: *counters}
		case "NONE":
			spec = sim.SchemeSpec{Kind: mitigation.KindNone}
		default:
			fatal(fmt.Errorf("unknown scheme %q (kind names also parse as specs, e.g. comet:counters=512)", *scheme))
		}
	}

	geom := dram.Default2Channel()
	if *quad {
		geom = dram.QuadCore2Channel()
	}
	if *fourCh {
		if *quad {
			geom = dram.QuadCore4Channel()
		} else {
			geom = dram.Default4Channel()
		}
	}
	if geo.Base != "" {
		// An explicit -geometry wins over the legacy -quad/-4ch shorthands
		// (the -4ch mapping policy still applies).
		geom = geo.Geometry()
	}
	cfg := sim.Config{
		Geometry:           geom,
		ChannelInterleaved: *fourCh,
		Scheme:             spec,
		Threshold:          uint32(float64(*threshold) * *scale),
		ThresholdScale:     *scale,
		IntervalNS:         dram.RefreshIntervalNS() * *scale,
		Seed:               *seed,
		CheckProtection:    *oracle,
		ChannelAffine:      *affine,
		Shards:             *shards,
	}
	if olErr == nil {
		// Size the open-loop budget like the closed loop: the mean arrival
		// rate sustained for the scaled auto-refresh interval.
		ol.Requests = int(ol.Arrival.MeanRateRPS() * dram.RefreshIntervalNS() * *scale * 1e-9)
		if ol.Requests < 2000 {
			ol.Requests = 2000
		}
		if *attacker > 0 {
			ol.Cohort.Attacker = &wlpkg.AttackerSpec{
				Fraction: *attacker, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided,
			}
		}
		cfg.OpenLoop = &ol
	} else {
		cfg.Cores = *cores
		cfg.RequestsPerCore = int(204.8e6 / float64(wl.GapMean) * *scale)
		cfg.Workload = wl
		if *attacker > 0 {
			fatal(fmt.Errorf("-attacker needs an open-loop workload (ol-*), got %q", *workload))
		}
	}
	if *attack != "" {
		if olErr == nil {
			fatal(fmt.Errorf("-attack drives closed-loop cores; use -attacker with open-loop workloads"))
		}
		var mode trace.AttackMode
		switch strings.ToLower(*attack) {
		case "heavy":
			mode = trace.Heavy
		case "medium":
			mode = trace.Medium
		case "light":
			mode = trace.Light
		default:
			fatal(fmt.Errorf("unknown attack mode %q", *attack))
		}
		cfg.Attack = &sim.AttackConfig{Kernel: *kernel, Mode: mode}
	}

	// The scheme run and its no-mitigation baseline are independent:
	// runner.Pair executes them concurrently (identical results to
	// sim.RunPair at any -parallel).
	eng := &runner.Engine{Parallel: *parallel, Contexts: runner.NewContextPool()}
	pair, err := eng.Pair(context.Background(), cfg)
	fatal(err)
	r, baseline := pair.Result, pair.Baseline
	if olErr == nil {
		fmt.Printf("workload   %s (open-loop %s, %d requests)\n", ol.Name, ol.Arrival, ol.Requests)
	} else {
		fmt.Printf("workload   %s (%s)\n", wl.Name, wl.Suite)
	}
	fmt.Printf("scheme     %s, T=%d (scale %.2f)\n", spec.Label(uint32(*threshold)), *threshold, *scale)
	fmt.Printf("exec       %.3f ms (baseline %.3f ms)\n", r.ExecNS/1e6, baseline.ExecNS/1e6)
	fmt.Printf("activations %d, victim rows refreshed %d (%d commands)\n",
		r.Counts.Activations, r.Counts.RowsRefreshed, r.Counts.RefreshEvents)
	fmt.Printf("read latency %.1f ns avg\n", r.AvgReadLatencyNS)
	b := r.Breakdown
	fmt.Printf("CMRPO      %.2f%%  (dynamic %.3f%% static %.3f%% refresh %.3f%% prng %.3f%% miss %.3f%%)\n",
		r.CMRPO*100, b.DynamicMW/2.5*100, b.StaticMW/2.5*100, b.RefreshMW/2.5*100,
		b.PRNGMW/2.5*100, b.MissMW/2.5*100)
	fmt.Printf("ETO        %.3f%%\n", pair.ETO*100)
	if len(r.Tenants) > 0 {
		var benignActs, benignRows int64
		var hit int
		for _, ts := range r.Tenants {
			if ts.Attacker {
				continue
			}
			benignActs += ts.Acts
			benignRows += ts.RowsRefreshed
			if ts.RowsRefreshed > 0 {
				hit++
			}
		}
		fmt.Printf("tenants    %d (%d with refreshed rows); benign acts %d, benign rows refreshed %d\n",
			len(r.Tenants), hit, benignActs, benignRows)
		if last := r.Tenants[len(r.Tenants)-1]; last.Attacker {
			fmt.Printf("attacker   acts %d, rows refreshed in its span %d\n",
				last.Acts, last.RowsRefreshed)
		}
	}
	if *oracle {
		verdict := "protection verified: no victim exceeded T"
		if r.OracleViolations > 0 {
			verdict = fmt.Sprintf("PROTECTION VIOLATED %d times", r.OracleViolations)
		}
		fmt.Printf("oracle     %s\n", verdict)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "catsim:", err)
		os.Exit(1)
	}
}
