package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestCaptureReplayMatchesLiveRun drives all three modes through run():
// a live run, a capture of the same configuration, and a replay of that
// capture must print byte-identical JSON Results — the contract the CI
// replay-check target enforces.
func TestCaptureReplayMatchesLiveRun(t *testing.T) {
	tr := filepath.Join(t.TempDir(), "t.v1")
	wl := []string{"-workload", "ol-bursty", "-requests", "3000",
		"-attacker", "0.25", "-threshold", "1600", "-seed", "7"}

	exec := func(args ...string) string {
		t.Helper()
		var out, errb bytes.Buffer
		if code := run(append(append([]string{}, wl...), args...), &out, &errb); code != 0 {
			t.Fatalf("run %v: exit %d\n%s", args, code, errb.String())
		}
		return out.String()
	}

	live := exec("-json")
	exec("-capture", "-o", tr)
	replayed := exec("-trace", tr, "-json")
	if live != replayed {
		t.Errorf("replayed Result differs from the live run:\n--- live ---\n%s--- replay ---\n%s",
			live, replayed)
	}
	if !strings.Contains(live, `"Tenants"`) {
		t.Error("Result JSON carries no per-tenant attribution")
	}

	// The human summary of the replay names the attacker tenant.
	sum := exec("-trace", tr)
	if !strings.Contains(sum, "attacker") {
		t.Errorf("summary lacks the attacker line:\n%s", sum)
	}

	// A different scheme replays the same file without error.
	other := exec("-trace", tr, "-scheme", "sca:counters=128", "-json")
	if other == replayed {
		t.Error("sca replay produced the drcat Result — scheme flag ignored")
	}
}

// TestGeometryFlagCaptureReplay: -geometry steers live and capture runs;
// the capture embeds that geometry, so its replay — which ignores the
// flag and adopts the capture's — reproduces the run byte for byte.
func TestGeometryFlagCaptureReplay(t *testing.T) {
	tr := filepath.Join(t.TempDir(), "geo.v1")
	wl := []string{"-workload", "black", "-requests", "2000", "-cores", "4",
		"-geometry", "4ch:rows=8Ki"}

	exec := func(args ...string) string {
		t.Helper()
		var out, errb bytes.Buffer
		if code := run(append(append([]string{}, wl...), args...), &out, &errb); code != 0 {
			t.Fatalf("run %v: exit %d\n%s", args, code, errb.String())
		}
		return out.String()
	}

	live := exec("-json")
	exec("-capture", "-o", tr)
	if replayed := exec("-trace", tr, "-json"); live != replayed {
		t.Error("replay of a -geometry capture differs from the live run")
	}

	var out, errb bytes.Buffer
	if code := run([]string{"-geometry", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown geometry preset: exit %d, want 2 (%s)", code, errb.String())
	}
}

// TestClosedLoopCaptureReplay exercises the per-core closed-loop path.
func TestClosedLoopCaptureReplay(t *testing.T) {
	tr := filepath.Join(t.TempDir(), "closed.v1")
	wl := []string{"-workload", "black", "-requests", "2000", "-cores", "2"}

	exec := func(args ...string) string {
		t.Helper()
		var out, errb bytes.Buffer
		if code := run(append(append([]string{}, wl...), args...), &out, &errb); code != 0 {
			t.Fatalf("run %v: exit %d\n%s", args, code, errb.String())
		}
		return out.String()
	}

	live := exec("-json")
	exec("-capture", "-o", tr)
	if replayed := exec("-trace", tr, "-json"); live != replayed {
		t.Error("closed-loop replay differs from the live run")
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "nope"}, &out, &errb); code != 1 {
		t.Errorf("unknown workload: exit %d, want 1", code)
	}
	for _, want := range []string{"ol-poisson", "black"} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("error %q does not list %q", errb.String(), want)
		}
	}
	errb.Reset()
	if code := run([]string{"-capture", "-trace", "x"}, &out, &errb); code != 2 {
		t.Errorf("-capture with -trace: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-workload", "black", "-attacker", "0.1"}, &out, &errb); code != 1 {
		t.Errorf("closed workload with -attacker: exit %d, want 1", code)
	}
}
