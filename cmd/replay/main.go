// Command replay drives the versioned trace pipeline end to end: it
// captures the exact request sequence a simulation would consume into a v1
// trace file, and replays such a file under any mitigation scheme with a
// byte-identical Result.
//
// Three modes share one set of workload/scheme flags:
//
//	replay -workload ol-poisson -scheme drcat:counters=64,levels=11 -json
//	    live run: build the workload, simulate, print the Result
//
//	replay -capture -workload ol-poisson -o trace.v1
//	    capture: record the request sequence (no memory simulation)
//
//	replay -trace trace.v1 -scheme drcat:counters=64,levels=11 -json
//	    replay: simulate the captured sequence under the given scheme
//
// A live run and a replay of the same capture configuration produce
// identical Results — `make replay-check` diffs their JSON byte for byte.
// Keep the workload flags on the replay invocation: they rebuild the
// tenant cohort for per-tenant attribution (no randomness is drawn).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/sim"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run parses args and executes one mode, returning the process exit code
// (2 for usage errors, matching flag's convention).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wlName    = fs.String("workload", "ol-poisson", "workload name: an open-loop preset (ol-*) or a closed-loop trace workload")
		requests  = fs.Int("requests", 6000, "open-loop request budget (closed-loop: requests per core)")
		cores     = fs.Int("cores", 2, "closed-loop cores (ignored for open-loop workloads)")
		attacker  = fs.Float64("attacker", 0, "embed an attacker tenant issuing this fraction of arrivals (open-loop only)")
		scheme    = fs.String("scheme", "drcat:counters=64,levels=11", "mitigation scheme spec")
		threshold = fs.Uint("threshold", 32768, "refresh threshold T (before scaling)")
		scale     = fs.Float64("scale", 0.01, "run scale (1 = one full 64 ms interval)")
		seed      = fs.Uint64("seed", 1, "random seed (must match the capture's on replay)")
		oracle    = fs.Bool("oracle", false, "attach the crosstalk oracle (per-tenant exposure attribution)")
		asJSON    = fs.Bool("json", false, "print the Result as JSON instead of a summary")
		capture   = fs.Bool("capture", false, "capture the request sequence instead of simulating")
		out       = fs.String("o", "", "capture output file (default stdout)")
		traceFile = fs.String("trace", "", "replay this v1 trace file instead of building generators")
		geo       dram.GeometrySpec
	)
	fs.Var(&geo, "geometry",
		"geometry spec for live/capture runs, e.g. ddr5:channels=8,rows=128Ki (replays adopt the capture's geometry)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "replay:", err)
		return 1
	}
	if *capture && *traceFile != "" {
		fmt.Fprintln(stderr, "replay: -capture and -trace are mutually exclusive")
		fs.Usage()
		return 2
	}

	cfg, err := buildConfig(*wlName, *requests, *cores, *attacker, *scheme, *threshold, *scale, *seed, *oracle)
	if err != nil {
		return fail(err)
	}
	if geo.Base != "" {
		// Live and capture runs honour the override; the -trace branch
		// below re-zeroes Geometry so replays keep the capture's.
		cfg.Geometry = geo.Geometry()
	}

	if *capture {
		c, err := sim.Capture(cfg)
		if err != nil {
			return fail(err)
		}
		w := bufio.NewWriter(stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return fail(err)
			}
			defer f.Close()
			w = bufio.NewWriter(f)
		}
		if err := trace.WriteContainer(w, c); err != nil {
			return fail(err)
		}
		if err := w.Flush(); err != nil {
			return fail(err)
		}
		var n int
		for _, s := range c.Streams {
			n += len(s.Reqs)
		}
		fmt.Fprintf(stderr, "replay: captured %d streams, %d requests (digest %016x)\n",
			len(c.Streams), n, c.Digest())
		return 0
	}

	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return fail(err)
		}
		c, rerr := trace.ReadContainer(bufio.NewReader(f))
		f.Close()
		if rerr != nil {
			return fail(rerr)
		}
		// The replay config carries only the trace, the scheme and — for
		// attribution — the open-loop cohort spec; the request streams come
		// from the file.
		cfg.Replay = c
		cfg.Geometry = dram.Geometry{} // adopt the capture's geometry
		cfg.Cores = 0
		cfg.RequestsPerCore = 0
		cfg.Workload = trace.Spec{}
		cfg.WorkloadPerCore = nil
		cfg.Attack = nil
	}

	res, err := sim.Run(cfg)
	if err != nil {
		return fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fail(err)
		}
		return 0
	}
	printSummary(stdout, cfg, res)
	return 0
}

// buildConfig assembles the simulation config the live and capture modes
// share. Open-loop preset names attach a cohort (with the optional
// attacker); closed-loop names build per-core generators as cmd/catsim
// does.
func buildConfig(wlName string, requests, cores int, attacker float64, scheme string, threshold uint, scale float64, seed uint64, oracle bool) (sim.Config, error) {
	ms, err := mitigation.ParseSpec(scheme)
	if err != nil {
		return sim.Config{}, err
	}
	spec, err := sim.FromSpec(ms)
	if err != nil {
		return sim.Config{}, err
	}
	if ms.Threshold != 0 {
		threshold = uint(ms.Threshold)
	}
	cfg := sim.Config{
		Geometry:        dram.Default2Channel(),
		Scheme:          spec,
		Threshold:       uint32(float64(threshold) * scale),
		ThresholdScale:  scale,
		IntervalNS:      dram.RefreshIntervalNS() * scale,
		Seed:            seed,
		CheckProtection: oracle,
	}
	if ol, err := workload.Lookup(wlName); err == nil {
		ol.Requests = requests
		if attacker > 0 {
			ol.Cohort.Attacker = &workload.AttackerSpec{
				Fraction: attacker, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided,
			}
		}
		cfg.OpenLoop = &ol
		return cfg, nil
	}
	wl, err := trace.Lookup(wlName)
	if err != nil {
		return sim.Config{}, fmt.Errorf("unknown workload %q (closed-loop: %s; open-loop: %s)",
			wlName, strings.Join(trace.WorkloadNames(), " "), strings.Join(workload.Names(), " "))
	}
	if attacker > 0 {
		return sim.Config{}, fmt.Errorf("-attacker needs an open-loop workload, got closed-loop %q", wlName)
	}
	cfg.Cores = cores
	cfg.RequestsPerCore = requests
	cfg.Workload = wl
	return cfg, nil
}

func printSummary(w io.Writer, cfg sim.Config, res sim.Result) {
	fmt.Fprintf(w, "scheme      %s\n", res.SchemeLabel)
	fmt.Fprintf(w, "exec        %.3f ms\n", res.ExecNS/1e6)
	fmt.Fprintf(w, "activations %d, victim rows refreshed %d\n",
		res.Counts.Activations, res.Counts.RowsRefreshed)
	fmt.Fprintf(w, "CMRPO       %.2f%%\n", res.CMRPO*100)
	if len(res.Tenants) > 0 {
		var benignActs, benignRows int64
		var hit int
		for _, ts := range res.Tenants {
			if ts.Attacker {
				continue
			}
			benignActs += ts.Acts
			benignRows += ts.RowsRefreshed
			if ts.RowsRefreshed > 0 {
				hit++
			}
		}
		fmt.Fprintf(w, "tenants     %d (%d with refreshed rows); benign acts %d, benign rows refreshed %d\n",
			len(res.Tenants), hit, benignActs, benignRows)
		last := res.Tenants[len(res.Tenants)-1]
		if last.Attacker {
			fmt.Fprintf(w, "attacker    acts %d, rows refreshed in its span %d\n",
				last.Acts, last.RowsRefreshed)
		}
	}
}
