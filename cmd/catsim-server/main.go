// Command catsim-server runs the long-running simulation service: a
// bounded job queue in front of the deterministic simulator, with
// per-epoch NDJSON/SSE streaming and durable snapshot/resume.
//
//	catsim-server -addr :8321 -workers 2 -snapshot state.snap
//
// Submit jobs with POST /v1/jobs (see internal/server.JobRequest for the
// body schema), stream epoch samples from GET /v1/jobs/{id}/stream, and
// fetch the final sim.Result from GET /v1/jobs/{id}/result. Identical
// jobs — however spelled — share one run: repeats attach to the in-flight
// simulation or replay the recorded stream byte-identically.
//
// On SIGINT/SIGTERM the server stops accepting jobs (POST returns 503),
// lets the in-flight job finish so attached streams receive their result,
// persists a final snapshot (queued jobs included), and exits. Restarting
// with the same -snapshot path re-serves finished results without
// recomputation and re-enqueues whatever was still waiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"catsim/internal/server"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run parses args and serves until ctx is cancelled, returning the
// process exit code (2 for usage errors, matching flag's convention).
// When ready is non-nil, the listener's resolved address is sent on it
// once the server is accepting connections — the hook the main-package
// tests (and nothing else) use.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("catsim-server", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8321", "listen address")
		workers  = fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 64, "job queue depth (further POSTs get 503)")
		snapshot = fs.String("snapshot", "", "snapshot file path (empty = no durability)")
		interval = fs.Duration("snapshot-interval", 30*time.Second, "periodic snapshot cadence")
		drain    = fs.Duration("drain", 2*time.Minute, "shutdown bound for draining the in-flight job")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "unexpected arguments: %v\n", fs.Args())
		fs.Usage()
		return 2
	}

	logger := log.New(stderr, "catsim-server: ", log.LstdFlags)
	srv, err := server.New(server.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		SnapshotPath:     *snapshot,
		SnapshotInterval: *interval,
		Logf:             logger.Printf,
	})
	if err != nil {
		fmt.Fprintf(stderr, "catsim-server: %v\n", err)
		if errors.Is(err, server.ErrBadOptions) {
			return 2
		}
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "catsim-server: %v\n", err)
		return 1
	}
	srv.Start()

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("listening on %s", ln.Addr())
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "catsim-server: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	logger.Printf("shutting down: draining in-flight work (bound %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: srv.Close finishes the in-flight job (so attached
	// streams receive their terminal line and return) and writes the final
	// snapshot; hs.Shutdown then waits for those streams' handlers to
	// finish flushing before closing the listener.
	if err := srv.Close(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "catsim-server: shutdown: %v\n", err)
		hs.Close()
		return 1
	}
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "catsim-server: shutdown: %v\n", err)
		return 1
	}
	logger.Printf("drained; bye")
	return 0
}
