package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// boot runs the server with the given flags on an ephemeral port,
// returning its base URL and a shutdown func that cancels (the SIGTERM
// path) and waits for exit.
func boot(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var stdout, stderr bytes.Buffer
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &stdout, &stderr, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, func() int {
			cancel()
			select {
			case code := <-done:
				return code
			case <-time.After(60 * time.Second):
				t.Fatal("server did not exit after shutdown")
				return -1
			}
		}
	case code := <-done:
		t.Fatalf("server exited %d before ready (stderr: %s)", code, stderr.String())
		return "", nil
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
		return "", nil
	}
}

const jobBody = `{"scheme":"drcat:counters=64,levels=11","workload":"black","requests":2000,"seed":7,"epochs":8}`

func postJob(t *testing.T, base string, wantCode int) (id string, raw []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(jobBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ = io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST = %d, want %d (body: %s)", resp.StatusCode, wantCode, raw)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID, raw
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d (body: %s)", url, resp.StatusCode, b)
	}
	return b
}

// TestServeStreamShutdownResume is the command's end-to-end contract:
// serve a job over real TCP, drain on the SIGTERM path, restart from the
// snapshot, and re-serve the identical bytes.
func TestServeStreamShutdownResume(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.snap")
	base, shutdown := boot(t, "-workers", "1", "-snapshot", snap)

	if body := getBody(t, base+"/healthz"); !bytes.Contains(body, []byte("ok")) {
		t.Errorf("healthz = %s", body)
	}
	id, _ := postJob(t, base, http.StatusAccepted)
	stream := getBody(t, base+"/v1/jobs/"+id+"/stream")
	if !bytes.Contains(stream, []byte(`"result"`)) {
		t.Fatalf("stream missing terminal result: %s", stream)
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("shutdown exit = %d", code)
	}

	base2, shutdown2 := boot(t, "-workers", "1", "-snapshot", snap)
	defer shutdown2()
	// The restarted server re-serves the same job ID byte-identically and
	// treats a repeat POST as a cache hit.
	if got := getBody(t, base2+"/v1/jobs/"+id+"/stream"); !bytes.Equal(got, stream) {
		t.Error("restored stream is not byte-identical")
	}
	_, raw := postJob(t, base2, http.StatusOK)
	if !bytes.Contains(raw, []byte(`"cached":true`)) {
		t.Errorf("repeat POST after restart = %s, want cached", raw)
	}
}

// TestShutdownRejectsNewJobs: during drain, POST is 503.
func TestShutdownWhileStreaming(t *testing.T) {
	base, shutdown := boot(t, "-workers", "1")
	id, _ := postJob(t, base, http.StatusAccepted)
	// Attach a stream that outlives the shutdown call: it must still
	// receive the full job (Close drains in-flight work before Shutdown
	// closes the listener).
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte(`"result"`)) {
		t.Errorf("stream cut off without a result: %s", body)
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("shutdown exit = %d", code)
	}
}

// TestUsageErrors: flag misuse exits 2 without binding a socket.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bogus"},
		{"positional"},
		{"-workers", "-3"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr, nil); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestCorruptSnapshotExits1: environmental failure is exit 1, not 2.
func TestCorruptSnapshotExits1(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(snap, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-snapshot", snap}, &stdout, &stderr, nil)
	if code != 1 {
		t.Errorf("run with corrupt snapshot = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "truncated") && !strings.Contains(stderr.String(), "bad magic") {
		t.Errorf("stderr %q should name the corruption", stderr.String())
	}
}
