package catsim

import (
	"bytes"
	"strings"
	"testing"

	"catsim/internal/experiments"
	"catsim/internal/mitigation"
	"catsim/internal/rng"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

func TestFacadeTree(t *testing.T) {
	tree, err := NewTree(TreeConfig{
		Rows: 1 << 12, Counters: 16, MaxLevels: 9,
		RefreshThreshold: 128, Policy: DRCAT,
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for i := 0; i < 128; i++ {
		if lo, hi, refresh := tree.Access(777); refresh {
			fired = true
			if lo > 776 || hi < 778 {
				t.Errorf("refresh [%d,%d] misses the victims of row 777", lo, hi)
			}
		}
	}
	if !fired {
		t.Error("no refresh within T activations")
	}
}

func TestFacadeLadder(t *testing.T) {
	ladder := NewLadder(64, 10, 32768)
	if ladder[5] != 5155 || ladder[9] != 32768 {
		t.Errorf("ladder = %v", ladder)
	}
}

func TestFacadeSchemes(t *testing.T) {
	sca, err := NewSCA(2, 1<<10, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sca.Name() != "SCA_8" {
		t.Errorf("name = %s", sca.Name())
	}
	cat, err := NewCAT(2, TreeConfig{
		Rows: 1 << 10, Counters: 8, MaxLevels: 6, RefreshThreshold: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Kind() != mitigation.KindPRCAT {
		t.Errorf("kind = %v", cat.Kind())
	}
}

func TestFacadeModernTrackers(t *testing.T) {
	comet, err := NewCoMeT(2, 1<<10, 64, 256, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if comet.Kind() != mitigation.KindCoMeT || comet.Name() != "CoMeT_256" {
		t.Errorf("CoMeT facade: %s %v", comet.Name(), comet.Kind())
	}
	abacus, err := NewABACuS(2, 1<<10, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := abacus.(mitigation.CrossBank); !ok {
		t.Error("ABACuS must expose cross-bank refreshes")
	}
	dsac, err := NewStochastic(2, 1<<10, 32, 64, rng.NewXoshiro256(1))
	if err != nil {
		t.Fatal(err)
	}
	if dsac.Kind() != mitigation.KindStochastic {
		t.Errorf("DSAC kind = %v", dsac.Kind())
	}
}

func TestFacadeGeometryAndWorkloads(t *testing.T) {
	if g := Default2Channel(); g.TotalBanks() != 16 {
		t.Errorf("banks = %d", g.TotalBanks())
	}
	if w := Workloads(); len(w) != 18 {
		t.Errorf("workloads = %d", len(w))
	}
}

func TestFacadeRunPair(t *testing.T) {
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := RunPair(SimConfig{
		Cores: 2, RequestsPerCore: 30_000, Workload: wl,
		Scheme:    sim.SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold: 1024, ThresholdScale: 0.03, IntervalNS: 2e6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Scheme.CMRPO <= 0 {
		t.Error("CMRPO must be positive for DRCAT (static floor)")
	}
}

func TestReproduceAllAnalyticPieces(t *testing.T) {
	// Only the cheap pieces; the figure sweeps have their own tests.
	var buf bytes.Buffer
	if err := experiments.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Chipkill") || !strings.Contains(out, "Table I") {
		t.Error("missing sections")
	}
}
