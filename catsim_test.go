package catsim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"catsim/internal/experiments"
	"catsim/internal/mitigation"
	"catsim/internal/rng"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

func TestFacadeTree(t *testing.T) {
	tree, err := NewTree(TreeConfig{
		Rows: 1 << 12, Counters: 16, MaxLevels: 9,
		RefreshThreshold: 128, Policy: DRCAT,
	})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for i := 0; i < 128; i++ {
		if lo, hi, refresh := tree.Access(777); refresh {
			fired = true
			if lo > 776 || hi < 778 {
				t.Errorf("refresh [%d,%d] misses the victims of row 777", lo, hi)
			}
		}
	}
	if !fired {
		t.Error("no refresh within T activations")
	}
}

func TestFacadeLadder(t *testing.T) {
	ladder := NewLadder(64, 10, 32768)
	if ladder[5] != 5155 || ladder[9] != 32768 {
		t.Errorf("ladder = %v", ladder)
	}
}

func TestFacadeSchemes(t *testing.T) {
	sca, err := NewSCA(2, 1<<10, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sca.Name() != "SCA_8" {
		t.Errorf("name = %s", sca.Name())
	}
	cat, err := NewCAT(2, TreeConfig{
		Rows: 1 << 10, Counters: 8, MaxLevels: 6, RefreshThreshold: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Kind() != mitigation.KindPRCAT {
		t.Errorf("kind = %v", cat.Kind())
	}
}

func TestFacadeModernTrackers(t *testing.T) {
	comet, err := NewCoMeT(2, 1<<10, 64, 256, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if comet.Kind() != mitigation.KindCoMeT || comet.Name() != "CoMeT_256" {
		t.Errorf("CoMeT facade: %s %v", comet.Name(), comet.Kind())
	}
	abacus, err := NewABACuS(2, 1<<10, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := abacus.(mitigation.CrossBank); !ok {
		t.Error("ABACuS must expose cross-bank refreshes")
	}
	dsac, err := NewStochastic(2, 1<<10, 32, 64, rng.NewXoshiro256(1))
	if err != nil {
		t.Fatal(err)
	}
	if dsac.Kind() != mitigation.KindStochastic {
		t.Errorf("DSAC kind = %v", dsac.Kind())
	}
}

func TestFacadeGeometryAndWorkloads(t *testing.T) {
	if g := Default2Channel(); g.TotalBanks() != 16 {
		t.Errorf("banks = %d", g.TotalBanks())
	}
	if w := Workloads(); len(w) != 18 {
		t.Errorf("workloads = %d", len(w))
	}
}

func TestFacadeGeometrySpec(t *testing.T) {
	spec, err := ParseGeometry("ddr5:channels=8,rows=128Ki")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Geometry()
	if g.Channels != 8 || g.RowsPerBank != 128*1024 {
		t.Errorf("geometry = %+v", g)
	}
	// String round-trips through ParseGeometry.
	back, err := ParseGeometry(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.Geometry() != g {
		t.Errorf("round trip changed the geometry: %+v vs %+v", back.Geometry(), g)
	}
	// The preset registry is exported and carries the paper baseline.
	found := false
	for _, p := range Geometries() {
		if p.Name == "2ch" && p.Geom == Default2Channel() {
			found = true
		}
	}
	if !found {
		t.Error("Geometries() lacks the 2ch paper baseline")
	}
	if _, err := ParseGeometry("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestFacadeRunPair(t *testing.T) {
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	pair, err := RunPair(SimConfig{
		Cores: 2, RequestsPerCore: 30_000, Workload: wl,
		Scheme:    sim.SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold: 1024, ThresholdScale: 0.03, IntervalNS: 2e6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Scheme.CMRPO <= 0 {
		t.Error("CMRPO must be positive for DRCAT (static floor)")
	}
}

func TestFacadeBuildFromSpec(t *testing.T) {
	spec, err := ParseScheme("comet:threshold=1024,counters=256,depth=4,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := Build(spec, Default2Channel())
	if err != nil {
		t.Fatal(err)
	}
	if scheme.Name() != "CoMeT_256" || scheme.Kind() != mitigation.KindCoMeT {
		t.Errorf("built %s (%v)", scheme.Name(), scheme.Kind())
	}
	// The constructor wrappers and the spec path build identical schemes.
	direct, err := NewCoMeT(Default2Channel().TotalBanks(), Default2Channel().RowsPerBank, 1024, 256, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Name() != scheme.Name() || direct.CountersPerBank() != scheme.CountersPerBank() {
		t.Errorf("wrapper built %s/%d, spec built %s/%d",
			direct.Name(), direct.CountersPerBank(), scheme.Name(), scheme.CountersPerBank())
	}
	// Missing threshold fails loudly.
	spec.Threshold = 0
	if _, err := Build(spec, Default2Channel()); err == nil {
		t.Error("Build without threshold must fail")
	}
}

// TestReproduceAllCoversRegistry runs the whole suite at a micro scale and
// asserts every registered experiment's table appears in ReproduceAll's
// output — the executable form of "the registry and ReproduceAll cover
// identical sets", which guards against the historical drift where
// ablations and headlines ran from the CLI but not from ReproduceAll.
func TestReproduceAllCoversRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite micro run; skipped with -short")
	}
	// One distinctive rendered marker per experiment. A registered
	// experiment without a marker here fails the test, so the map cannot
	// silently fall behind the registry.
	markers := map[string]string{
		"table1":    "Table I:",
		"table2":    "Table II:",
		"fig1":      "Fig. 1:",
		"lfsr":      "LFSR study",
		"fig2":      "Fig. 2:",
		"fig3":      "Fig. 3:",
		"fig8":      "Fig. 8:",
		"fig9":      "Fig. 9:",
		"fig10":     "Fig. 10:",
		"fig11":     "Fig. 11:",
		"fig12":     "Fig. 12:",
		"fig13":     "Fig. 13:",
		"figx":      "Fig. X",
		"figt":      "Fig. T",
		"figw":      "Fig. W",
		"ablations": "Ablation:",
		"headlines": "Headline claims",
	}
	var buf bytes.Buffer
	o := ExperimentOptions{Scale: 0.02, Seed: 3, Workloads: []string{"black"}, Quiet: true, LFSRTrials: 5}
	if err := ReproduceAll(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	infos := Experiments()
	if len(infos) != len(markers) {
		t.Errorf("registry has %d experiments, marker map %d — update the map", len(infos), len(markers))
	}
	for _, e := range infos {
		marker, ok := markers[e.Name]
		if !ok {
			t.Errorf("registered experiment %q has no output marker in this test", e.Name)
			continue
		}
		if !strings.Contains(out, marker) {
			t.Errorf("ReproduceAll output missing %s (marker %q)", e.Name, marker)
		}
	}
}

func TestReproduceAllAnalyticPieces(t *testing.T) {
	// Only the cheap pieces; the figure sweeps have their own tests.
	var buf bytes.Buffer
	if err := experiments.Table1(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Chipkill") || !strings.Contains(out, "Table I") {
		t.Error("missing sections")
	}
}

// TestFacadeOpenLoopCaptureReplay exercises the workload/trace surface:
// an open-loop preset runs with per-tenant attribution, and a capture
// round-tripped through the v1 byte format replays to the identical
// SimResult.
func TestFacadeOpenLoopCaptureReplay(t *testing.T) {
	if len(OpenWorkloads()) == 0 {
		t.Fatal("no open-loop presets")
	}
	ol, err := LookupOpenWorkload("ol-poisson")
	if err != nil {
		t.Fatal(err)
	}
	ol.Requests = 3000
	cfg := SimConfig{
		Geometry: Default2Channel(), OpenLoop: &ol,
		Scheme:    sim.SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold: 64, ThresholdScale: 0.03, IntervalNS: 2e6, Seed: 5,
	}
	live, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Tenants) == 0 {
		t.Fatal("open-loop run returned no tenant attribution")
	}

	c, err := Capture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Replay = c2
	replayed, err := Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Error("replayed SimResult differs from the live run")
	}
}
