// Package catsim is a from-scratch Go reproduction of "Mitigating Wordline
// Crosstalk using Adaptive Trees of Counters" (Seyedzadeh, Jones, Melhem —
// ISCA 2018): the Counter-based Adaptive Tree (CAT) rowhammer/crosstalk
// mitigation with its PRCAT and DRCAT deployment schemes, the SCA, PRA and
// counter-cache baselines, and the full simulation substrate (DDR3 memory
// system, synthetic MSC-like workloads, energy and reliability models)
// needed to regenerate every table and figure of the paper's evaluation.
//
// Beyond the paper, the repository carries the modern tracker generation
// on the internal/sketch approximate-counting substrate — NewCoMeT
// (count-min-sketch row tracking), NewABACuS (all-bank shared counters)
// and NewStochastic (DSAC-style stochastic counting) — plus a protection
// harness: adversarial attack patterns (double-sided, many-sided,
// bank-sweep) and an oracle-checked missed-victim rate, swept across
// schemes and thresholds by experiments.FigX.
//
// This package is a thin facade over the internal packages for downstream
// users; see README.md for the architecture and cmd/experiments for the
// reproduction harness.
//
// Schemes are described by declarative, serializable specs — a kind, a
// refresh threshold and named parameters — built through one registry:
//
//	spec, _ := catsim.ParseScheme("comet:threshold=32768,counters=512,depth=4")
//	scheme, _ := catsim.Build(spec, catsim.Default2Channel())
//
// The adaptive tree itself is also directly constructible:
//
//	tree, _ := catsim.NewTree(catsim.TreeConfig{
//	    Rows: 65536, Counters: 64, MaxLevels: 11,
//	    RefreshThreshold: 32768, Policy: catsim.DRCAT,
//	})
//	lo, hi, refresh := tree.Access(row) // refresh => refresh rows lo..hi
package catsim

import (
	"io"

	"catsim/internal/core"
	"catsim/internal/dram"
	"catsim/internal/experiments"
	"catsim/internal/mitigation"
	"catsim/internal/rng"
	"catsim/internal/runner"
	"catsim/internal/server"
	"catsim/internal/sim"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

// Tree is one Counter-based Adaptive Tree instance (one per DRAM bank).
type Tree = core.Tree

// TreeConfig parameterises a CAT (N rows, M counters, L levels, T, policy).
type TreeConfig = core.Config

// Tree policies (what happens at auto-refresh interval boundaries).
const (
	// PRCAT rebuilds the tree every interval (paper §V-A).
	PRCAT = core.PRCAT
	// DRCAT keeps the learned shape and reconfigures dynamically (§V-B).
	DRCAT = core.DRCAT
)

// NewTree builds a CAT in its initial pre-split shape.
func NewTree(cfg TreeConfig) (*Tree, error) { return core.NewTree(cfg) }

// NewLadder returns the default split-threshold ladder for M counters, L
// levels and refresh threshold T (the paper's published values for the
// canonical M=64, L=10 configuration, resampled elsewhere).
func NewLadder(m, l int, t uint32) []uint32 { return core.NewLadder(m, l, t) }

// Scheme is a crosstalk-mitigation mechanism covering all banks.
type Scheme = mitigation.Scheme

// SchemeSpec is a declarative, serializable scheme description: a kind
// ("comet"), a refresh threshold and named parameters. It round-trips
// through a compact string form (ParseScheme / String) and JSON, and
// implements flag.Value for CLI -scheme flags.
type SchemeSpec = mitigation.SchemeSpec

// SchemeParams holds a spec's named parameters as exact decimal strings.
type SchemeParams = mitigation.Params

// ParseScheme parses the compact spec form "kind:key=value,...", e.g.
// "comet:threshold=32768,counters=512,depth=4,seed=7". Kinds and the
// figure-label aliases ("cc", "dsac") match case-insensitively; parameter
// names are validated against the kind's registered builder.
func ParseScheme(s string) (SchemeSpec, error) { return mitigation.ParseSpec(s) }

// Build constructs the scheme a spec describes for a DRAM geometry via
// the mitigation builder registry. Every kind except "none" requires the
// spec to carry a refresh threshold.
func Build(spec SchemeSpec, geom Geometry) (Scheme, error) {
	return mitigation.Build(spec, geom.TotalBanks(), geom.RowsPerBank)
}

// NewSCA builds the Static Counter Assignment baseline (m uniform group
// counters per bank). Thin wrapper over the spec registry.
func NewSCA(banks, rowsPerBank, m int, threshold uint32) (Scheme, error) {
	p := mitigation.Params{}
	p.SetInt("counters", m)
	return mitigation.Build(mitigation.SchemeSpec{
		Kind: mitigation.KindSCA, Threshold: threshold, Params: p,
	}, banks, rowsPerBank)
}

// NewCAT builds a PRCAT/DRCAT scheme with one tree per bank. The full
// TreeConfig (custom ladders included) is richer than a serializable
// spec, so this constructs directly; spec-expressible configurations are
// also available as Build("prcat:..."/"drcat:...").
func NewCAT(banks int, cfg TreeConfig) (Scheme, error) {
	return mitigation.NewCAT(banks, cfg)
}

// NewCoMeT builds the count-min-sketch tracker (Bostancı et al., HPCA
// 2024): counters sketch counters per bank spread over depth hash rows,
// fronted by an exact recent-aggressor table. Deterministically sound —
// the sketch never undercounts — with approximation showing up as extra
// refreshes, never missed victims. Thin wrapper over the spec registry.
func NewCoMeT(banks, rowsPerBank int, threshold uint32, counters, depth int, seed uint64) (Scheme, error) {
	p := mitigation.Params{}
	p.SetInt("counters", counters)
	p.SetInt("depth", depth)
	p.SetUint64("seed", seed)
	return mitigation.Build(mitigation.SchemeSpec{
		Kind: mitigation.KindCoMeT, Threshold: threshold, Params: p,
	}, banks, rowsPerBank)
}

// NewABACuS builds the all-bank shared-counter tracker (Olgun et al.,
// USENIX Security 2024): entries Misra-Gries counters keyed by row ID and
// shared across every bank, refreshing a hot row's victims in all banks
// at once (the scheme implements the mitigation.CrossBank interface).
// Thin wrapper over the spec registry.
func NewABACuS(banks, rowsPerBank, entries int, threshold uint32) (Scheme, error) {
	p := mitigation.Params{}
	p.SetInt("counters", entries)
	return mitigation.Build(mitigation.SchemeSpec{
		Kind: mitigation.KindABACuS, Threshold: threshold, Params: p,
	}, banks, rowsPerBank)
}

// NewStochastic builds a DSAC-style stochastic-approximate tracker (Hong
// et al., 2023): m exact counters per bank with probabilistic
// replace-minimum insertion. Cheap but probabilistic — its protection gap
// under adversarial patterns is what experiments.FigX quantifies.
func NewStochastic(banks, rowsPerBank, m int, threshold uint32, src rng.Source) (Scheme, error) {
	return mitigation.NewStochastic(banks, rowsPerBank, m, threshold, src)
}

// Geometry describes a DRAM system; Default2Channel is the paper's
// dual-core baseline (16 GB, 16 banks, 64K rows/bank).
type Geometry = dram.Geometry

// Default2Channel returns the paper's Table I geometry.
func Default2Channel() Geometry { return dram.Default2Channel() }

// GeometrySpec is a declarative, serializable geometry description: a
// named preset plus field overrides. It round-trips through a compact
// string form (ParseGeometry / String) and JSON, and implements
// flag.Value for CLI -geometry flags.
type GeometrySpec = dram.GeometrySpec

// GeometryPreset is one named entry of the geometry preset registry.
type GeometryPreset = dram.GeometryPreset

// ParseGeometry parses the compact geometry form "preset" or
// "preset:key=value,...", e.g. "ddr5:channels=8,ranks=2,banks=32,rows=128Ki".
// Preset names match case-insensitively; sizes accept Ki/Mi suffixes.
func ParseGeometry(s string) (GeometrySpec, error) { return dram.ParseGeometry(s) }

// Geometries lists the registered geometry presets in registration order.
func Geometries() []GeometryPreset { return dram.Geometries() }

// SimConfig configures a full-system simulation run.
type SimConfig = sim.Config

// SimResult is the outcome of one run (CMRPO breakdown, timing, counts).
type SimResult = sim.Result

// Run executes one full-system simulation.
func Run(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// RunPair runs a scheme against its no-mitigation baseline and reports the
// execution-time overhead.
func RunPair(cfg SimConfig) (sim.PairResult, error) { return sim.RunPair(cfg) }

// Workloads returns the paper's 18 named synthetic workload models.
func Workloads() []trace.Spec { return trace.Workloads() }

// WorkloadConfig is one open-loop workload: an arrival process (Poisson,
// bursty on/off, diurnal phases) fanned out over one or more sources, all
// drawing from a shared multi-tenant cohort. Attach one via
// SimConfig.OpenLoop; per-tenant attribution lands in SimResult.Tenants.
type WorkloadConfig = workload.Config

// TenantStat is one tenant's attribution from an open-loop run: its
// owned-row activations, the victim-refresh rows that landed in its span,
// and (on protection runs) its share of oracle exposure.
type TenantStat = workload.TenantStat

// ArrivalSpec describes an open-loop arrival process (Poisson, bursty
// on/off, or a diurnal phase schedule).
type ArrivalSpec = workload.ArrivalSpec

// ParseArrival parses the compact arrival grammar, e.g.
// "poisson:rate=2.8e8" or "bursty:rate=2.8e8,on=0.25,burst=50000".
func ParseArrival(s string) (ArrivalSpec, error) { return workload.ParseArrival(s) }

// AttackerSpec embeds one attacker tenant in a cohort: a fraction of all
// arrivals runs a kernel-attack generator instead of benign traffic.
type AttackerSpec = workload.AttackerSpec

// Attack patterns for AttackerSpec (and the protection harness).
const (
	// PatternGaussian runs the paper's Gaussian kernel attacks (the zero value).
	PatternGaussian = trace.PatternGaussian
	// PatternDoubleSided hammers aggressor pairs around each victim.
	PatternDoubleSided = trace.PatternDoubleSided
)

// OpenWorkloads returns the named open-loop presets (the ol-* names).
func OpenWorkloads() []WorkloadConfig { return workload.Presets() }

// LookupOpenWorkload finds an open-loop preset by name.
func LookupOpenWorkload(name string) (WorkloadConfig, error) { return workload.Lookup(name) }

// TraceContainer is a captured set of request streams in the versioned
// (v1, checksummed) trace file format: closed-loop per-core streams timed
// by inter-request gaps and open-loop streams timed by absolute arrivals.
type TraceContainer = trace.Container

// Capture records the exact request sequence Run(cfg) would consume —
// without simulating the memory system — into a container that replays
// byte-identically: Run with SimConfig.Replay set to the container (and
// the same seed/threshold/scheme) returns the same SimResult as the live
// run, under any scheme spec.
func Capture(cfg SimConfig) (*TraceContainer, error) { return sim.Capture(cfg) }

// WriteTrace writes a container in the v1 format, checksum included.
func WriteTrace(w io.Writer, c *TraceContainer) error { return trace.WriteContainer(w, c) }

// ReadTrace parses a v1 trace file, verifying version and checksum.
func ReadTrace(r io.Reader) (*TraceContainer, error) { return trace.ReadContainer(r) }

// Server is the long-running simulation service: a bounded job queue over
// the deterministic simulator with per-epoch NDJSON/SSE streaming, a
// cross-request cache keyed by canonical CacheKey, and snapshot/resume
// durability. See cmd/catsim-server for the CLI front end.
type Server = server.Server

// ServerOptions configures a Server (workers, queue depth, snapshot path
// and cadence).
type ServerOptions = server.Options

// JobRequest is the POST /v1/jobs body: a declarative simulation job
// reusing the scheme/geometry/workload spec grammars.
type JobRequest = server.JobRequest

// NewServer builds a simulation service, restoring state from
// ServerOptions.SnapshotPath if the snapshot exists.
func NewServer(o ServerOptions) (*Server, error) { return server.New(o) }

// ExperimentOptions configures the figure/table generators.
type ExperimentOptions = experiments.Options

// Report is the structured result of one experiment table: a column
// schema, rows of typed cells and per-report metadata. Renderers turn
// streams of Reports into text tables, JSON or CSV.
type Report = experiments.Report

// ExperimentInfo describes one registered experiment generator.
type ExperimentInfo struct {
	Name        string
	Description string
}

// Experiments lists every registered table/figure generator in canonical
// order. ReproduceAll, RunExperiment and the cmd/experiments CLI all
// iterate this same registry.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.Experiments() {
		out = append(out, ExperimentInfo{Name: e.Name, Description: e.Description})
	}
	return out
}

// RunExperiment regenerates one registered experiment (see Experiments)
// as text to w.
func RunExperiment(w io.Writer, name string, o ExperimentOptions) error {
	if o.Cache == nil && !o.NoCache {
		o.Cache = runner.NewCache()
	}
	if o.Progress == nil {
		o.Progress = w
	}
	return experiments.RunExperiment(name, o, experiments.NewTextRenderer(w))
}

// ReproduceAll regenerates every registered table and figure to w by
// iterating the experiment registry (see cmd/experiments for per-figure
// control and JSON/CSV output). Simulation cells run concurrently
// (o.Parallel caps the worker pool) and one result cache is shared across
// all figures, so e.g. Fig. 9 reuses Fig. 8's paired runs and every
// no-mitigation baseline is computed exactly once.
func ReproduceAll(w io.Writer, o ExperimentOptions) error {
	if o.Cache == nil && !o.NoCache {
		o.Cache = runner.NewCache()
	}
	if o.Progress == nil {
		o.Progress = w
	}
	return experiments.RunAll(o, experiments.NewTextRenderer(w))
}
