package catsim_test

import (
	"fmt"

	"catsim"
)

// ExampleNewTree demonstrates the deterministic protection guarantee: a
// hammered row triggers a victim refresh at exactly the threshold.
func ExampleNewTree() {
	tree, err := catsim.NewTree(catsim.TreeConfig{
		Rows:             4096,
		Counters:         16,
		MaxLevels:        9,
		RefreshThreshold: 1000,
		Policy:           catsim.DRCAT,
	})
	if err != nil {
		panic(err)
	}
	const aggressor = 2048
	for i := 1; ; i++ {
		if lo, hi, refresh := tree.Access(aggressor); refresh {
			fmt.Printf("refresh after %d activations, rows [%d, %d]\n", i, lo, hi)
			fmt.Printf("victims %d and %d covered: %v\n",
				aggressor-1, aggressor+1, lo <= aggressor-1 && aggressor+1 <= hi)
			return
		}
	}
	// Output:
	// refresh after 1000 activations, rows [2047, 2064]
	// victims 2047 and 2049 covered: true
}

// ExampleBuild constructs a scheme from its declarative spec string: any
// registered kind, configured entirely by data. The same spec round-trips
// through JSON and the CLI's -scheme flag.
func ExampleBuild() {
	spec, err := catsim.ParseScheme("comet:threshold=32768,counters=512,depth=4")
	if err != nil {
		panic(err)
	}
	scheme, err := catsim.Build(spec, catsim.Default2Channel())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s (kind %s)\n", scheme.Name(), scheme.Kind())
	fmt.Println(spec.String())
	// Output:
	// CoMeT_512 (kind CoMeT)
	// comet:threshold=32768,counters=512,depth=4
}

// ExampleNewLadder shows the paper's published split thresholds for the
// canonical configuration (M=64 counters, L=10 levels, T=32768).
func ExampleNewLadder() {
	ladder := catsim.NewLadder(64, 10, 32768)
	fmt.Println(ladder[5:])
	// Output:
	// [5155 10309 12886 16384 32768]
}
