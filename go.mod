module catsim

go 1.24
