package engine

import (
	"reflect"
	"strings"
	"testing"

	"catsim/internal/addrmap"
	"catsim/internal/cpu"
	"catsim/internal/dram"
	"catsim/internal/memctrl"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// pinGen confines a generator's stream to one channel via the address
// remap sharded runs rely on (the engine-level twin of sim's
// channel-affine wrapper).
type pinGen struct {
	gen    trace.Generator
	policy addrmap.Policy
	ch     int
}

func (p *pinGen) Next() trace.Request {
	req := p.gen.Next()
	req.Addr = addrmap.PinChannel(p.policy, req.Addr, p.ch)
	return req
}

func (p *pinGen) Name() string { return p.gen.Name() }

// shardWorld is one logical simulation built twice: seq merges every
// channel's cores into a single sequential Config; parts splits them into
// per-channel partitions with their own controller and scheme instance.
type shardWorld struct {
	seq   Config
	parts []Config
}

// makeShardWorld builds coresPerCh channel-pinned cores per channel, in
// global core order (core i on channel i%channels) so each partition's
// slot order is a subsequence of the sequential order.
func makeShardWorld(t testing.TB, geom dram.Geometry, coresPerCh, requests int, epochCPU int64, withOracle bool) *shardWorld {
	t.Helper()
	timing := dram.DDR3_1600()
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	cpuNS := 1000.0 / (float64(timing.BusMHz) * float64(cpu.DefaultCPUCyclesPerBusCycle))
	baseCfg := func() Config {
		return Config{
			Geometry:   geom,
			CPUPerBus:  cpu.DefaultCPUCyclesPerBusCycle,
			EpochCPU:   epochCPU,
			CPUCycleNS: cpuNS,
			BusCycleNS: 1000.0 / float64(timing.BusMHz),
		}
	}
	// Build identical component stacks: same spec, same seeds, so any
	// partition's bank state matches the sequential instance's exactly.
	mkScheme := func() mitigation.Scheme {
		spec := mitigation.SchemeSpec{Kind: mitigation.KindDRCAT, Threshold: 512, Params: mitigation.Params{}}
		spec.Params.SetInt("counters", 64)
		spec.Params.SetInt("levels", 11)
		s, err := mitigation.Build(spec, geom.TotalBanks(), geom.RowsPerBank)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mkCtrl := func() *memctrl.Controller {
		c, err := memctrl.New(geom, timing)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	policy, err := addrmap.NewRowInterleaved(geom)
	if err != nil {
		t.Fatal(err)
	}
	mkSlot := func(i int) CoreSlot {
		c, err := cpu.NewCore(cpu.DefaultWindow)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewSynthetic(wl, geom.TotalBytes(), geom.LineBytes, 7+uint64(i)*0x1000193)
		if err != nil {
			t.Fatal(err)
		}
		return CoreSlot{CPU: c, Gen: &pinGen{gen: gen, policy: policy, ch: i % geom.Channels}, Requests: requests}
	}

	w := &shardWorld{seq: baseCfg()}
	w.seq.Ctrl = mkCtrl()
	w.seq.Scheme = mkScheme()
	w.seq.Policy = policy
	if withOracle {
		w.seq.Oracle = mitigation.NewOracle(geom.TotalBanks(), geom.RowsPerBank, 512)
	}
	n := coresPerCh * geom.Channels
	for i := 0; i < n; i++ {
		w.seq.Cores = append(w.seq.Cores, mkSlot(i))
	}
	for ch := 0; ch < geom.Channels; ch++ {
		part := baseCfg()
		part.Ctrl = mkCtrl()
		part.Scheme = mkScheme()
		part.Policy = policy
		part.Channels = &ChannelRange{Lo: ch, Hi: ch + 1}
		if withOracle {
			part.Oracle = mitigation.NewOracle(geom.TotalBanks(), geom.RowsPerBank, 512)
		}
		for i := ch; i < n; i += geom.Channels {
			part.Cores = append(part.Cores, mkSlot(i))
		}
		w.parts = append(w.parts, part)
	}
	return w
}

// TestRunShardedMatchesSequential is the tentpole contract: the
// channel-partitioned engine reproduces the sequential engine's Result —
// Samples included, down to the unexported latency sums DeepEqual sees —
// and the summed partition controller/scheme state matches the merged run.
func TestRunShardedMatchesSequential(t *testing.T) {
	for _, geom := range []dram.Geometry{dram.Default2Channel(), dram.Default4Channel()} {
		for _, epochCPU := range []int64{0, 250_000, 777_777} {
			w := makeShardWorld(t, geom, 2, 3000, epochCPU, true)
			want, err := Run(w.seq)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSharded(w.parts, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("ch=%d epoch=%d: sharded result diverges\n got: %+v\nwant: %+v",
					geom.Channels, epochCPU, got, want)
			}
			var stats memctrl.Stats
			var counts mitigation.Counts
			for p := range w.parts {
				stats = stats.Add(w.parts[p].Ctrl.Stats())
				counts = counts.Add(w.parts[p].Scheme.Counts())
			}
			if stats != w.seq.Ctrl.Stats() {
				t.Errorf("ch=%d epoch=%d: summed controller stats %+v != sequential %+v",
					geom.Channels, epochCPU, stats, w.seq.Ctrl.Stats())
			}
			if counts != w.seq.Scheme.Counts() {
				t.Errorf("ch=%d epoch=%d: summed scheme counts %+v != sequential %+v",
					geom.Channels, epochCPU, counts, w.seq.Scheme.Counts())
			}
		}
	}
}

// TestRunShardedWorkerCountInvariant locks the pacing half of the
// determinism contract: every worker count — serial, partial, and the 1:1
// configuration that engages the epoch barrier — returns the identical
// Result.
func TestRunShardedWorkerCountInvariant(t *testing.T) {
	geom := dram.Default4Channel()
	var ref Result
	for i, workers := range []int{1, 2, 3, 4, 0} {
		w := makeShardWorld(t, geom, 1, 2500, 300_000, false)
		got, err := RunSharded(w.parts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = got
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("workers=%d: result diverges from workers=1", workers)
		}
	}
}

// TestRunShardedRejectsBadPartitions covers the validation surface: every
// mis-assembled partition set must fail loudly before any state is
// touched.
func TestRunShardedRejectsBadPartitions(t *testing.T) {
	geom := dram.Default2Channel()
	cases := []struct {
		name    string
		mutate  func(w *shardWorld)
		wantErr string
	}{
		{"no channel range", func(w *shardWorld) { w.parts[1].Channels = nil }, "no channel range"},
		{"overlapping ranges", func(w *shardWorld) { w.parts[1].Channels = &ChannelRange{Lo: 0, Hi: 1} }, "overlap"},
		{"range out of geometry", func(w *shardWorld) { w.parts[1].Channels = &ChannelRange{Lo: 1, Hi: 3} }, "out of"},
		{"timing mismatch", func(w *shardWorld) { w.parts[1].EpochCPU = 999 }, "differs from partition 0"},
		{"shared controller", func(w *shardWorld) { w.parts[1].Ctrl = w.parts[0].Ctrl }, "share a controller"},
		{"shared scheme", func(w *shardWorld) { w.parts[1].Scheme = w.parts[0].Scheme }, "share a scheme"},
		{"attribution", func(w *shardWorld) { w.parts[0].Attr = nopAttr{} }, "attribution"},
		{
			"cross-bank scheme",
			func(w *shardWorld) {
				spec := mitigation.SchemeSpec{Kind: mitigation.KindABACuS, Threshold: 512, Params: mitigation.Params{}}
				spec.Params.SetInt("counters", 64)
				s, err := mitigation.Build(spec, geom.TotalBanks(), geom.RowsPerBank)
				if err != nil {
					t.Fatal(err)
				}
				w.parts[0].Scheme = s
			},
			"cannot be sharded",
		},
		{"invalid partition config", func(w *shardWorld) { w.parts[0].Cores = nil }, "partition 0"},
	}
	for _, tc := range cases {
		w := makeShardWorld(t, geom, 1, 50, 0, false)
		tc.mutate(w)
		_, err := RunSharded(w.parts, 0)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
	if _, err := RunSharded(nil, 0); err == nil {
		t.Error("empty partition list accepted")
	}
}

// TestRunShardedChannelConfinement checks the loud-failure guarantee: a
// stream that escapes its partition's channel range aborts the run instead
// of silently touching another shard's banks.
func TestRunShardedChannelConfinement(t *testing.T) {
	geom := dram.Default2Channel()
	w := makeShardWorld(t, geom, 1, 500, 0, false)
	// Unpin partition 0's core: its stream now spans both channels.
	w.parts[0].Cores[0].Gen = w.parts[0].Cores[0].Gen.(*pinGen).gen
	_, err := RunSharded(w.parts, 1)
	if err == nil || !strings.Contains(err.Error(), "outside shard channels") {
		t.Fatalf("escaped stream did not fail the run: %v", err)
	}
}

// nopAttr is a do-nothing Attributor for the validation test.
type nopAttr struct{}

func (nopAttr) OnActivate(bank, row int)   {}
func (nopAttr) OnRefresh(bank, lo, hi int) {}
