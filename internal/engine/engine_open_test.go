package engine

import (
	"reflect"
	"runtime/debug"
	"testing"

	"catsim/internal/trace"
)

// pacedSource adapts a closed-loop generator into an open-loop stream by
// stamping deterministic, mildly irregular arrival times — the minimal
// OpenSource the engine contract tests need.
type pacedSource struct {
	gen  trace.Generator
	now  int64
	step int64
	i    int64
}

func (p *pacedSource) Name() string { return "paced:" + p.gen.Name() }

func (p *pacedSource) Next() (trace.Request, int64) {
	r := p.gen.Next()
	p.i++
	p.now += p.step + p.i%7
	return r, p.now
}

// addOpenSlots attaches n deterministic open-loop sources to a harness.
func addOpenSlots(t testing.TB, h *harness, n, requests int, step int64) {
	t.Helper()
	wl, err := trace.Lookup("comm1")
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		gen, err := trace.NewSynthetic(wl, h.cfg.Geometry.TotalBytes(),
			h.cfg.Geometry.LineBytes, 1000+uint64(j)*0x9E3779B9)
		if err != nil {
			t.Fatal(err)
		}
		h.cfg.Open = append(h.cfg.Open, OpenSlot{
			Gen:      &pacedSource{gen: gen, step: step + int64(j)},
			Requests: requests,
		})
	}
}

// TestOpenSlotsSchedulerEquivalent extends the scheduler-equivalence
// contract to open-loop slots: every scheduler, batched or not, must
// replay the linear reference's causal order for open-only and mixed
// core+open configurations — including the lazy arrival-key
// initialisation the tournament tree requires.
func TestOpenSlotsSchedulerEquivalent(t *testing.T) {
	variants := []struct {
		name  string
		sched Sched
		batch bool
	}{
		{"heap", SchedHeap, false},
		{"heap_batch", SchedHeap, true},
		{"tournament", SchedTournament, false},
		{"tournament_batch", SchedTournament, true},
		{"linear_batch", SchedLinear, true},
	}
	for _, cores := range []int{0, 1, 3} {
		ref := makeHarness(t, max(cores, 1), 3000, 512, SchedLinear, false, 0)
		if cores == 0 {
			ref.cfg.Cores = nil
		}
		addOpenSlots(t, ref, 2, 3000, 40)
		rr, err := Run(ref.cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			h := makeHarness(t, max(cores, 1), 3000, 512, v.sched, v.batch, 0)
			if cores == 0 {
				h.cfg.Cores = nil
			}
			addOpenSlots(t, h, 2, 3000, 40)
			hr, err := Run(h.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(hr, rr) {
				t.Errorf("cores=%d %s: result diverges from linear reference", cores, v.name)
			}
			if h.ctrl.Stats() != ref.ctrl.Stats() {
				t.Errorf("cores=%d %s: controller stats diverge", cores, v.name)
			}
			if h.scheme.Counts() != ref.scheme.Counts() {
				t.Errorf("cores=%d %s: scheme counts diverge", cores, v.name)
			}
		}
	}
}

// TestOpenSlotsEpochInvariant: epoch sampling stays pure observation with
// open-loop traffic in the mix.
func TestOpenSlotsEpochInvariant(t *testing.T) {
	base := makeHarness(t, 1, 2000, 512, SchedAuto, true, 0)
	addOpenSlots(t, base, 2, 2000, 55)
	br, err := Run(base.cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := makeHarness(t, 1, 2000, 512, SchedAuto, true, 20_000)
	addOpenSlots(t, h, 2, 2000, 55)
	r, err := Run(h.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.EndCPU != br.EndCPU || !reflect.DeepEqual(r.PerBankActs, br.PerBankActs) {
		t.Error("epoch sampling perturbed an open-loop run")
	}
	if h.ctrl.Stats() != base.ctrl.Stats() {
		t.Error("controller stats diverge under sampling")
	}
	if len(r.Samples) < 2 {
		t.Fatalf("expected multiple epochs, got %d", len(r.Samples))
	}
}

// countingAttr tallies attribution callbacks.
type countingAttr struct {
	acts     int64
	refreshN int64
	rows     int64
}

func (a *countingAttr) OnActivate(bank, row int) { a.acts++ }
func (a *countingAttr) OnRefresh(bank, lo, hi int) {
	a.refreshN++
	a.rows += int64(hi - lo + 1)
}

// TestAttributorSeesEveryEvent: the attribution hook observes exactly one
// activation per request and every refreshed row the scheme reports.
func TestAttributorSeesEveryEvent(t *testing.T) {
	h := makeHarness(t, 2, 3000, 128, SchedAuto, true, 0)
	addOpenSlots(t, h, 1, 3000, 30)
	attr := &countingAttr{}
	h.cfg.Attr = attr
	if _, err := Run(h.cfg); err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 3000); attr.acts != want {
		t.Errorf("attributed %d activations, want %d", attr.acts, want)
	}
	if got := h.scheme.Counts().RowsRefreshed; attr.rows != got {
		t.Errorf("attributed %d refreshed rows, scheme reports %d", attr.rows, got)
	}
	if attr.rows == 0 {
		t.Error("no refresh traffic at threshold 128 — test is vacuous")
	}
}

// TestAttributorDoesNotPerturb: attaching an attributor changes nothing
// observable.
func TestAttributorDoesNotPerturb(t *testing.T) {
	plain := makeHarness(t, 2, 2000, 512, SchedAuto, true, 0)
	pr, err := Run(plain.cfg)
	if err != nil {
		t.Fatal(err)
	}
	attr := makeHarness(t, 2, 2000, 512, SchedAuto, true, 0)
	attr.cfg.Attr = &countingAttr{}
	ar, err := Run(attr.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr, ar) || plain.ctrl.Stats() != attr.ctrl.Stats() {
		t.Error("attributor perturbed the run")
	}
}

// regressingSource emits one backwards arrival to exercise the engine's
// monotonicity clamp.
type regressingSource struct{ inner pacedSource }

func (r *regressingSource) Name() string { return "regressing" }
func (r *regressingSource) Next() (trace.Request, int64) {
	req, at := r.inner.Next()
	if r.inner.i == 10 {
		return req, at - 500 // time runs backwards once
	}
	return req, at
}

func TestOpenSlotClampsNonMonotoneArrivals(t *testing.T) {
	h := makeHarness(t, 1, 100, 512, SchedAuto, true, 0)
	wl, err := trace.Lookup("comm1")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewSynthetic(wl, h.cfg.Geometry.TotalBytes(), h.cfg.Geometry.LineBytes, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.cfg.Open = []OpenSlot{{Gen: &regressingSource{inner: pacedSource{gen: gen, step: 100}}, Requests: 100}}
	if _, err := Run(h.cfg); err != nil {
		t.Fatalf("non-monotone source broke the run: %v", err)
	}
}

func TestOpenSlotValidation(t *testing.T) {
	h := makeHarness(t, 1, 10, 512, SchedAuto, false, 0)
	h.cfg.Cores = nil
	if _, err := Run(h.cfg); err == nil {
		t.Error("no cores and no open slots accepted")
	}
	h.cfg.Open = []OpenSlot{{Gen: nil, Requests: 10}}
	if _, err := Run(h.cfg); err == nil {
		t.Error("nil open generator accepted")
	}
	wl, _ := trace.Lookup("comm1")
	gen, err := trace.NewSynthetic(wl, h.cfg.Geometry.TotalBytes(), h.cfg.Geometry.LineBytes, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.cfg.Open = []OpenSlot{{Gen: &pacedSource{gen: gen, step: 10}, Requests: 0}}
	if _, err := Run(h.cfg); err == nil {
		t.Error("zero-budget open slot accepted")
	}
}

// allocsForOpenRun mirrors allocsForRun for the open-loop path.
func allocsForOpenRun(t testing.TB, requests int) float64 {
	t.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	return testing.AllocsPerRun(3, func() {
		h := makeHarness(t, 1, 100, 512, SchedAuto, true, 0)
		addOpenSlots(t, h, 2, requests, 25)
		attr := &countingAttr{}
		h.cfg.Attr = attr
		if _, err := Run(h.cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestOpenSteadyStateZeroAllocs extends the alloc gate to the open-loop
// request path (attribution hook attached): no per-request garbage.
func TestOpenSteadyStateZeroAllocs(t *testing.T) {
	small := allocsForOpenRun(t, 2000)
	large := allocsForOpenRun(t, 22000)
	if extra := large - small; extra > 0 {
		t.Errorf("open-loop steady state allocated %.0f times over 40000 extra requests (want 0)", extra)
	}
}
