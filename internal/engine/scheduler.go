package engine

// Schedulers pick the next core to advance: the runnable core with the
// smallest local clock, ties broken toward the lowest core index — the
// causal order the historical linear scan in sim.Run established (bank and
// channel contention stay ordered across cores). The min-heap makes that
// pick O(log cores) per request instead of O(cores), which is what lets
// 64–256-core scenario sweeps scale; the linear scan survives as the
// reference implementation that the equivalence test and the scheduler
// benchmarks run the heap against.

// A scheduler tracks the clocks of runnable cores. All cores start
// runnable at clock 0.
type scheduler interface {
	// pick returns the runnable core with the smallest (clock, index)
	// key, or -1 when none remain.
	pick() int
	// update records that core i's clock advanced to now.
	update(i int, now int64)
	// remove retires core i (its request budget is exhausted).
	remove(i int)
}

// heapScheduler is a binary min-heap over core indices keyed by
// (clock, index). pos tracks each core's heap slot so update/remove work
// on arbitrary cores without a search; no operation allocates.
type heapScheduler struct {
	now  []int64 // core index -> clock
	heap []int32 // heap slot -> core index
	pos  []int32 // core index -> heap slot (-1 once removed)
}

func newHeapScheduler(n int) *heapScheduler {
	h := &heapScheduler{
		now:  make([]int64, n),
		heap: make([]int32, n),
		pos:  make([]int32, n),
	}
	// All clocks are 0, so slot order = index order already satisfies the
	// heap property under the (clock, index) key.
	for i := range h.heap {
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

// less orders core a before core b under the (clock, index) key.
func (h *heapScheduler) less(a, b int32) bool {
	return h.now[a] < h.now[b] || (h.now[a] == h.now[b] && a < b)
}

func (h *heapScheduler) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *heapScheduler) siftUp(slot int) {
	for slot > 0 {
		parent := (slot - 1) / 2
		if !h.less(h.heap[slot], h.heap[parent]) {
			return
		}
		h.swap(slot, parent)
		slot = parent
	}
}

func (h *heapScheduler) siftDown(slot int) {
	n := len(h.heap)
	for {
		min, l, r := slot, 2*slot+1, 2*slot+2
		if l < n && h.less(h.heap[l], h.heap[min]) {
			min = l
		}
		if r < n && h.less(h.heap[r], h.heap[min]) {
			min = r
		}
		if min == slot {
			return
		}
		h.swap(slot, min)
		slot = min
	}
}

func (h *heapScheduler) pick() int {
	if len(h.heap) == 0 {
		return -1
	}
	return int(h.heap[0])
}

func (h *heapScheduler) update(i int, now int64) {
	h.now[i] = now
	slot := int(h.pos[i])
	h.siftDown(slot)
	h.siftUp(slot)
}

func (h *heapScheduler) remove(i int) {
	slot := int(h.pos[i])
	last := len(h.heap) - 1
	h.swap(slot, last)
	h.heap = h.heap[:last]
	h.pos[i] = -1
	if slot < last {
		h.siftDown(slot)
		h.siftUp(slot)
	}
}

// linearScheduler is the pre-refactor O(cores) scan, byte-equivalent to
// the loop sim.Run carried inline: smallest clock wins, first index on
// ties (strict < while scanning in index order).
type linearScheduler struct {
	now   []int64
	alive []bool
}

func newLinearScheduler(n int) *linearScheduler {
	l := &linearScheduler{now: make([]int64, n), alive: make([]bool, n)}
	for i := range l.alive {
		l.alive[i] = true
	}
	return l
}

func (l *linearScheduler) pick() int {
	best := -1
	for i, alive := range l.alive {
		if !alive {
			continue
		}
		if best < 0 || l.now[i] < l.now[best] {
			best = i
		}
	}
	return best
}

func (l *linearScheduler) update(i int, now int64) { l.now[i] = now }

func (l *linearScheduler) remove(i int) { l.alive[i] = false }
