package engine

// Schedulers pick the next core to advance: the runnable core with the
// smallest local clock, ties broken toward the lowest core index — the
// causal order the historical linear scan in sim.Run established (bank and
// channel contention stay ordered across cores). The min-heap makes that
// pick O(log cores) per request instead of O(cores), which is what lets
// 64–256-core scenario sweeps scale; the linear scan survives as the
// reference implementation that the equivalence test and the scheduler
// benchmarks run the heap against.

// A scheduler tracks the clocks of runnable cores. All cores start
// runnable at clock 0.
type scheduler interface {
	// pick returns the runnable core with the smallest (clock, index)
	// key, or -1 when none remain.
	pick() int
	// update records that core i's clock advanced to now.
	update(i int, now int64)
	// remove retires core i (its request budget is exhausted).
	remove(i int)
	// bound returns a lower bound on the (clock, index) key of every
	// runnable core OTHER than the just-picked core i. The batch-advance
	// loop keeps draining core i while its key stays strictly below the
	// bound — the exact condition under which pick would select i again —
	// so any valid lower bound preserves the causal order (a conservative
	// bound only ends a run early). Called once per pick, not per request.
	bound(i int) (clock int64, idx int32)
}

// heapScheduler is a binary min-heap over core indices keyed by
// (clock, index). pos tracks each core's heap slot so update/remove work
// on arbitrary cores without a search; no operation allocates.
type heapScheduler struct {
	now  []int64 // core index -> clock
	heap []int32 // heap slot -> core index
	pos  []int32 // core index -> heap slot (-1 once removed)
}

func newHeapScheduler(n int) *heapScheduler {
	h := &heapScheduler{
		now:  make([]int64, n),
		heap: make([]int32, n),
		pos:  make([]int32, n),
	}
	// All clocks are 0, so slot order = index order already satisfies the
	// heap property under the (clock, index) key.
	for i := range h.heap {
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

// reset re-arms the heap for a new run over the same core count without
// allocating: remove only truncates the heap slice, so its capacity still
// holds every core, and the all-zero clock state satisfies the heap
// property in index order exactly as the constructor left it.
func (h *heapScheduler) reset() {
	h.heap = h.heap[:len(h.now)]
	for i := range h.heap {
		h.now[i] = 0
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
}

// less orders core a before core b under the (clock, index) key.
func (h *heapScheduler) less(a, b int32) bool {
	return h.now[a] < h.now[b] || (h.now[a] == h.now[b] && a < b)
}

func (h *heapScheduler) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = int32(i)
	h.pos[h.heap[j]] = int32(j)
}

func (h *heapScheduler) siftUp(slot int) {
	for slot > 0 {
		parent := (slot - 1) / 2
		if !h.less(h.heap[slot], h.heap[parent]) {
			return
		}
		h.swap(slot, parent)
		slot = parent
	}
}

func (h *heapScheduler) siftDown(slot int) {
	n := len(h.heap)
	for {
		min, l, r := slot, 2*slot+1, 2*slot+2
		if l < n && h.less(h.heap[l], h.heap[min]) {
			min = l
		}
		if r < n && h.less(h.heap[r], h.heap[min]) {
			min = r
		}
		if min == slot {
			return
		}
		h.swap(slot, min)
		slot = min
	}
}

func (h *heapScheduler) pick() int {
	if len(h.heap) == 0 {
		return -1
	}
	return int(h.heap[0])
}

// bound returns the exact second-smallest key: in a binary min-heap it is
// the smaller of the root's children.
func (h *heapScheduler) bound(int) (int64, int32) {
	switch {
	case len(h.heap) < 2:
		return int64(1)<<62 - 1, int32(1) << 30
	case len(h.heap) == 2 || h.less(h.heap[1], h.heap[2]):
		return h.now[h.heap[1]], h.heap[1]
	default:
		return h.now[h.heap[2]], h.heap[2]
	}
}

func (h *heapScheduler) update(i int, now int64) {
	h.now[i] = now
	slot := int(h.pos[i])
	h.siftDown(slot)
	h.siftUp(slot)
}

func (h *heapScheduler) remove(i int) {
	slot := int(h.pos[i])
	last := len(h.heap) - 1
	h.swap(slot, last)
	h.heap = h.heap[:last]
	h.pos[i] = -1
	if slot < last {
		h.siftDown(slot)
		h.siftUp(slot)
	}
}

// linearScheduler is the pre-refactor O(cores) scan, byte-equivalent to
// the loop sim.Run carried inline: smallest clock wins, first index on
// ties (strict < while scanning in index order).
type linearScheduler struct {
	now   []int64
	alive []bool
}

func newLinearScheduler(n int) *linearScheduler {
	l := &linearScheduler{now: make([]int64, n), alive: make([]bool, n)}
	for i := range l.alive {
		l.alive[i] = true
	}
	return l
}

// reset re-arms the scan for a new run over the same core count.
func (l *linearScheduler) reset() {
	for i := range l.alive {
		l.now[i] = 0
		l.alive[i] = true
	}
}

func (l *linearScheduler) pick() int {
	best := -1
	for i, alive := range l.alive {
		if !alive {
			continue
		}
		if best < 0 || l.now[i] < l.now[best] {
			best = i
		}
	}
	return best
}

func (l *linearScheduler) update(i int, now int64) { l.now[i] = now }

func (l *linearScheduler) remove(i int) { l.alive[i] = false }

// bound scans for the best key excluding core i (reference implementation;
// the linear scheduler exists for equivalence tests, not speed).
func (l *linearScheduler) bound(i int) (int64, int32) {
	best := -1
	for j, alive := range l.alive {
		if !alive || j == i {
			continue
		}
		if best < 0 || l.now[j] < l.now[best] {
			best = j
		}
	}
	if best < 0 {
		return int64(1)<<62 - 1, int32(1) << 30
	}
	return l.now[best], int32(best)
}

// tournamentScheduler is a loser tree (tournament tree) over a fixed
// power-of-two leaf array, with (clock, index) packed into one int64 so
// every comparison is a single integer compare. Replaying the winner's
// path costs exactly log2(cores) compares with sequential array accesses
// and no position bookkeeping, which makes it ~2x cheaper per request
// than the binary heap's sift (two compares plus a three-way swap per
// level) while selecting the exact same (clock, index) minimum. It is the
// default scheduler; the heap and the linear scan remain as references.
//
// Packing: key = clock<<idxBits | index. Index bits are log2(leaves), so
// with the 4096-core cap a clock may grow to 2^51 CPU cycles (weeks of
// simulated time at DDR rates) before overflow; update panics loudly
// rather than silently misordering if a run ever gets there.
type tournamentScheduler struct {
	p       int     // leaves (next power of two >= cores)
	n       int     // live cores (leaves n..p-1 are padding)
	idxBits uint    // log2(p)
	key     []int64 // leaf keys; retired and padding leaves hold infKey
	loser   []int64 // loser[1..p-1]: packed loser of each internal match
	winner  int64   // packed overall winner
}

const infKey = int64(^uint64(0) >> 1) // math.MaxInt64

// maxTournamentCores bounds the packed index width. Run falls back to the
// heap scheduler above it.
const maxTournamentCores = 1 << 12

func newTournamentScheduler(n int) *tournamentScheduler {
	p := 1
	idxBits := uint(0)
	for p < n {
		p <<= 1
		idxBits++
	}
	s := &tournamentScheduler{
		p:       p,
		n:       n,
		idxBits: idxBits,
		key:     make([]int64, p),
		loser:   make([]int64, p),
	}
	s.reset()
	return s
}

// reset replays the constructor's initial tournament over the existing
// leaf and loser arrays, re-arming the tree for a new run.
func (s *tournamentScheduler) reset() {
	for i := range s.key {
		if i < s.n {
			s.key[i] = int64(i) // clock 0, packed
		} else {
			s.key[i] = infKey
		}
	}
	s.winner = s.play(1)
}

// play runs the initial tournament below node j, storing losers and
// returning the winner.
func (s *tournamentScheduler) play(j int) int64 {
	if j >= s.p {
		return s.key[j-s.p]
	}
	l, r := s.play(2*j), s.play(2*j+1)
	if l <= r {
		s.loser[j] = r
		return l
	}
	s.loser[j] = l
	return r
}

func (s *tournamentScheduler) pick() int {
	if s.winner == infKey {
		return -1
	}
	return int(s.winner & (int64(s.p) - 1))
}

// replay pushes leaf i's new key up its path: at each match the smaller
// key advances and the larger stays as the loser. Valid whenever i is the
// current winner, which is the engine's only calling pattern (update and
// remove always follow pick of the same core).
func (s *tournamentScheduler) replay(i int, packed int64) {
	cur := packed
	for j := (s.p + i) >> 1; j >= 1; j >>= 1 {
		// Branchless match: which key advances is data-dependent and
		// unpredictable, so min/max (conditional moves) beat a swap branch.
		l := s.loser[j]
		s.loser[j] = max(l, cur)
		cur = min(l, cur)
	}
	s.winner = cur
}

func (s *tournamentScheduler) update(i int, now int64) {
	if now >= infKey>>s.idxBits {
		panic("engine: tournament scheduler clock overflow (run too long for packed keys)")
	}
	packed := now<<s.idxBits | int64(i)
	s.key[i] = packed
	s.replay(i, packed)
}

func (s *tournamentScheduler) remove(i int) {
	s.key[i] = infKey
	s.replay(i, infKey)
}

// bound returns the exact best key among the other runnable cores: the
// minimum of the losers along core i's path (everyone i beat on the way
// to the root).
func (s *tournamentScheduler) bound(i int) (int64, int32) {
	b := infKey
	for j := (s.p + i) >> 1; j >= 1; j >>= 1 {
		b = min(b, s.loser[j])
	}
	if b == infKey {
		return int64(1)<<62 - 1, int32(1) << 30
	}
	return b >> s.idxBits, int32(b & (int64(s.p) - 1))
}
