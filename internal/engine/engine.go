// Package engine is the epoch-driven simulation core carved out of
// sim.Run: it advances a set of cores through their request streams in
// causal order via a min-heap event scheduler (O(log cores) per request),
// drives the memory controller and the crosstalk-mitigation scheme, and —
// when an epoch length is configured — slices the run into fixed-duration
// epochs, snapshotting per-epoch metrics (activations, victim refreshes,
// read latency, tracking-structure occupancy via mitigation.Snapshotter,
// oracle-measured missed victims) without perturbing the simulation.
//
// The engine is observationally equivalent to the historical inline loop:
// the scheduler picks the core with the smallest (clock, index) key
// exactly as the linear scan did, epoch sampling is a pure read of scheme
// and controller statistics, and the steady-state request path performs no
// allocations (locked by the engine's alloc-gate test and benchmarked by
// `make bench-engine`). sim.Run is a thin wrapper over Run; experiments
// consume the per-epoch Samples through sim.Result.Epochs.
package engine

import (
	"fmt"

	"catsim/internal/addrmap"
	"catsim/internal/cpu"
	"catsim/internal/dram"
	"catsim/internal/memctrl"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// CoreSlot couples one core's front end with its request stream and
// budget.
type CoreSlot struct {
	CPU *cpu.Core
	Gen trace.Generator
	// Requests is the number of requests the core issues before retiring.
	Requests int
}

// OpenSource is an open-loop request stream: each request carries its own
// absolute arrival time in CPU cycles instead of deriving timing from a
// core's retire loop. Arrival times must be non-decreasing (the engine
// clamps a regression to keep the schedule causal, but sources should not
// rely on that).
type OpenSource interface {
	// Next returns the next request and its arrival time in CPU cycles.
	Next() (trace.Request, int64)
	Name() string
}

// OpenSlot couples one open-loop source with its request budget. Open
// slots schedule alongside cores in the same (clock, index) order — open
// slot j occupies scheduler index len(Cores)+j — so epochs, interval
// boundaries and bank contention interleave causally with closed-loop
// traffic. Open requests hit the controller at their arrival time: there
// is no issue window and no retire backpressure, which is the point of an
// open-loop model.
type OpenSlot struct {
	Gen OpenSource
	// Requests is the number of arrivals the slot issues before retiring.
	Requests int
}

// Attributor observes every activation and victim refresh in tracked row
// space — the hook per-tenant workload attribution rides. Both methods
// run on the request hot path and must not allocate.
type Attributor interface {
	// OnActivate sees each activation's flat bank and tracked row.
	OnActivate(bank, row int)
	// OnRefresh sees each victim-refresh range (inclusive rows).
	OnRefresh(bank, lo, hi int)
}

// Config wires pre-built components into one engine run. The engine owns
// the event loop only: callers construct (and afterwards interrogate) the
// controller, scheme and oracle themselves.
type Config struct {
	Cores []CoreSlot
	// Open attaches open-loop arrival streams next to the closed-loop
	// cores (either side may be empty, not both).
	Open []OpenSlot
	// Attr, when non-nil, observes every activation and victim refresh
	// (per-tenant attribution).
	Attr     Attributor
	Ctrl     *memctrl.Controller
	Policy   addrmap.Policy
	Geometry dram.Geometry
	Scheme   mitigation.Scheme
	// Oracle, when non-nil, receives every activation and refresh (the
	// protection harness).
	Oracle *mitigation.Oracle
	// Scrambler maps logical to physical rows; IgnoreScrambler feeds the
	// scheme logical rows (the misconfiguration the tests show unsafe).
	Scrambler       dram.Scrambler
	IgnoreScrambler bool

	CPUPerBus int // CPU cycles per bus cycle
	// IntervalCPU is the auto-refresh interval in CPU cycles (0 = no
	// interval boundaries).
	IntervalCPU int64
	// EpochCPU is the metric-sampling epoch length in CPU cycles (0 = no
	// sampling). Sampling is observation only: any epoch length yields an
	// identical end state.
	EpochCPU int64
	// OnSample, when non-nil, is invoked synchronously with each epoch
	// sample the moment it is flushed — the trailing partial epoch
	// included — so callers can stream epochs out as the run progresses
	// instead of reading Result.Samples post-hoc. The callback sees the
	// exact Sample values appended to Result.Samples, in the same order,
	// and must not block for long: it runs on the simulation goroutine.
	// Pure observation; it cannot perturb the run.
	OnSample func(Sample)
	// CPUCycleNS and BusCycleNS convert cycle counts into the nanosecond
	// timestamps and latencies reported in Samples.
	CPUCycleNS float64
	BusCycleNS float64

	// Sched selects the scheduler implementation; SchedAuto (the zero
	// value) picks the packed-key tournament tree, falling back to the
	// binary heap past maxTournamentCores.
	Sched Sched
	// LinearScan selects the O(cores) reference scheduler instead of the
	// min-heap — for the equivalence test and benchmarks only. Equivalent
	// to Sched == SchedLinear; kept for existing callers.
	LinearScan bool
	// Batch drains each core's requests in a run while its clock stays
	// below the next-best core's — the exact condition under which the
	// scheduler would pick it again — amortizing one pick/update pair over
	// the whole run. Observationally identical to per-request scheduling;
	// locked by the scheduler equivalence test.
	Batch bool

	// Channels, when non-nil, confines the run to the half-open channel
	// range [Lo, Hi): a decoded request outside it fails the run loudly.
	// RunSharded sets it on every partition so a mis-pinned stream can
	// never silently corrupt another shard's banks.
	Channels *ChannelRange

	// Scratch, when non-nil, supplies the run's working memory so repeated
	// runs reuse their slabs (see Scratch). The Result then aliases the
	// Scratch and is valid only until its next run. Nil keeps the historic
	// behavior: every run allocates fresh.
	Scratch *Scratch

	// barrier, when non-nil, paces sharded partitions in lockstep epochs
	// (set by RunSharded only; see shard.go for the determinism contract).
	barrier *epochBarrier
}

// ChannelRange is a half-open interval [Lo, Hi) of channel indices.
type ChannelRange struct{ Lo, Hi int }

// Sched names a scheduler implementation.
type Sched int

const (
	// SchedAuto lets the engine choose (tournament, or heap when the core
	// count exceeds the packed-key index width).
	SchedAuto Sched = iota
	// SchedTournament forces the loser-tree scheduler.
	SchedTournament
	// SchedHeap forces the binary min-heap.
	SchedHeap
	// SchedLinear forces the O(cores) reference scan.
	SchedLinear
)

// schedSel resolves the configured scheduler kind for n cores to a
// concrete choice (never SchedAuto).
func (c *Config) schedSel(n int) Sched {
	sel := c.Sched
	if c.LinearScan && sel == SchedAuto {
		sel = SchedLinear
	}
	if sel == SchedAuto {
		if n > maxTournamentCores {
			return SchedHeap
		}
		return SchedTournament
	}
	return sel
}

// newScheduler resolves the configured scheduler for n cores.
func (c *Config) newScheduler(n int) scheduler {
	switch c.schedSel(n) {
	case SchedLinear:
		return newLinearScheduler(n)
	case SchedHeap:
		return newHeapScheduler(n)
	default:
		return newTournamentScheduler(n)
	}
}

func (c *Config) validate() error {
	switch {
	case len(c.Cores) == 0 && len(c.Open) == 0:
		return fmt.Errorf("engine: need at least one core or open-loop source")
	case c.Ctrl == nil:
		return fmt.Errorf("engine: need a memory controller")
	case c.Policy == nil:
		return fmt.Errorf("engine: need an address-mapping policy")
	case c.Scheme == nil:
		return fmt.Errorf("engine: need a mitigation scheme")
	case c.CPUPerBus < 1:
		return fmt.Errorf("engine: CPUPerBus must be at least 1")
	case c.IntervalCPU < 0 || c.EpochCPU < 0:
		return fmt.Errorf("engine: negative interval or epoch length")
	}
	// Validate the geometry at run entry: Flat/TotalBanks silently mis-map
	// (or panic) on degenerate dimensions, so fail with a clear error
	// before any simulation state is touched.
	if err := c.Geometry.Validate(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if r := c.Channels; r != nil && (r.Lo < 0 || r.Hi <= r.Lo || r.Hi > c.Geometry.Channels) {
		return fmt.Errorf("engine: channel range [%d,%d) out of [0,%d)", r.Lo, r.Hi, c.Geometry.Channels)
	}
	for i, cs := range c.Cores {
		if cs.CPU == nil || cs.Gen == nil {
			return fmt.Errorf("engine: core %d missing CPU or generator", i)
		}
		if cs.Requests < 1 {
			return fmt.Errorf("engine: core %d needs at least one request", i)
		}
	}
	for j, os := range c.Open {
		if os.Gen == nil {
			return fmt.Errorf("engine: open slot %d missing generator", j)
		}
		if os.Requests < 1 {
			return fmt.Errorf("engine: open slot %d needs at least one request", j)
		}
	}
	return nil
}

// Sample is one epoch's worth of time-series metrics. Activity fields are
// deltas over the epoch; oracle exposure and snapshot fields are the state
// at the epoch's end.
type Sample struct {
	// Epoch is the zero-based epoch index; EndNS its end timestamp (the
	// epoch boundary, or the run end for the final partial epoch).
	Epoch int     `json:"epoch"`
	EndNS float64 `json:"end_ns"`

	// Scheme activity during the epoch.
	Activations   int64 `json:"activations"`
	RefreshEvents int64 `json:"refresh_events"`
	RowsRefreshed int64 `json:"rows_refreshed"`

	// Controller activity during the epoch.
	Reads            int64   `json:"reads"`
	Writes           int64   `json:"writes"`
	AvgReadLatencyNS float64 `json:"avg_read_latency_ns"`
	// VictimBusyCycles is bus cycles of bank occupancy injected by victim
	// refreshes during the epoch.
	VictimBusyCycles int64 `json:"victim_busy_cycles"`

	// Tracking-structure occupancy at epoch end (zero unless the scheme
	// implements mitigation.Snapshotter).
	CountersLive int   `json:"counters_live"`
	CountersCap  int   `json:"counters_cap"`
	TreeDepth    int   `json:"tree_depth"`
	Reconfigs    int64 `json:"reconfigs"`

	// Oracle exposure at epoch end, cumulative (protection runs only).
	MissedVictimRows  int64 `json:"missed_victim_rows"`
	ExposedVictimRows int64 `json:"exposed_victim_rows"`

	// latencySum is the integer read-latency sum behind AvgReadLatencyNS
	// (bus cycles). Kept unexported — invisible to JSON — so the sharded
	// merge can recompute the merged epoch's average from exact integer
	// sums instead of a lossy float round-trip.
	latencySum int64
}

// Result is what one engine run measures beyond the state the caller can
// read back from the controller, scheme and oracle.
type Result struct {
	// EndCPU is the CPU cycle at which every core drained.
	EndCPU int64
	// PerBankActs counts activations per flat bank index.
	PerBankActs []int64
	// Samples holds one entry per elapsed epoch (nil when EpochCPU is 0).
	Samples []Sample
}

// sampler accumulates epoch samples: it keeps the previous scheme and
// controller statistics and emits their deltas at each boundary.
type sampler struct {
	cfg        *Config
	snap       mitigation.Snapshotter // nil when unimplemented
	samples    []Sample
	nextCPU    int64
	lastCPU    int64 // last flushed boundary
	prevCounts mitigation.Counts
	prevStats  memctrl.Stats
}

// newSampler arms scr's sampler for this run, reusing the sample backing
// grown by previous runs through the same Scratch.
func newSampler(cfg *Config, scr *Scratch) *sampler {
	if cfg.EpochCPU <= 0 {
		return nil
	}
	s := &scr.smp
	*s = sampler{cfg: cfg, nextCPU: cfg.EpochCPU, samples: scr.samples[:0]}
	s.snap, _ = cfg.Scheme.(mitigation.Snapshotter)
	s.prevCounts = cfg.Scheme.Counts()
	s.prevStats = cfg.Ctrl.Stats()
	return s
}

// flush closes the epoch ending at endCPU. Pure observation: it reads
// scheme/controller/oracle state and never mutates any of them.
func (s *sampler) flush(endCPU int64) {
	counts := s.cfg.Scheme.Counts()
	stats := s.cfg.Ctrl.Stats()
	dc := counts.Sub(s.prevCounts)
	ds := stats.Sub(s.prevStats)
	out := Sample{
		Epoch:            len(s.samples),
		EndNS:            float64(endCPU) * s.cfg.CPUCycleNS,
		Activations:      dc.Activations,
		RefreshEvents:    dc.RefreshEvents,
		RowsRefreshed:    dc.RowsRefreshed,
		Reads:            ds.Reads,
		Writes:           ds.Writes,
		VictimBusyCycles: ds.VictimRefreshBusy,
		latencySum:       ds.ReadLatencySum,
	}
	if ds.Reads > 0 {
		out.AvgReadLatencyNS = float64(ds.ReadLatencySum) / float64(ds.Reads) * s.cfg.BusCycleNS
	}
	if s.snap != nil {
		sn := s.snap.Snapshot()
		out.CountersLive = sn.Live
		out.CountersCap = sn.Cap
		out.TreeDepth = sn.Depth
		out.Reconfigs = sn.Reconfigs
	}
	if s.cfg.Oracle != nil {
		out.MissedVictimRows = s.cfg.Oracle.MissedVictimRows()
		out.ExposedVictimRows = s.cfg.Oracle.ExposedVictimRows()
	}
	s.samples = append(s.samples, out)
	s.lastCPU = endCPU
	s.prevCounts, s.prevStats = counts, stats
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(out)
	}
}

// Run executes the event loop to completion.
func Run(cfg Config) (Result, error) {
	return RunInPlace(&cfg)
}

// RunInPlace is Run minus the config value copy: the caller retains
// ownership of cfg, which the engine only reads. Run contexts hold a
// persistent Config and call this so a repeated run does not re-allocate
// the escaping copy Run's by-value parameter would.
func RunInPlace(cfg *Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	scr := cfg.Scratch
	if scr == nil {
		scr = &Scratch{}
	}
	scr.perBank = grow(scr.perBank, cfg.Geometry.TotalBanks())
	perBank := scr.perBank
	endCPU, smp, err := runLoop(cfg, scr, perBank)
	if err != nil {
		return Result{}, err
	}
	cfg.Ctrl.FlushWrites(endCPU / int64(cfg.CPUPerBus))

	res := Result{EndCPU: endCPU, PerBankActs: perBank}
	if smp != nil {
		// Close the trailing partial epoch so drain-time write traffic is
		// accounted; a run ending exactly on a boundary emits no empty
		// tail.
		if endCPU > smp.lastCPU || len(smp.samples) == 0 {
			smp.flush(endCPU)
		}
		res.Samples = smp.samples
		scr.samples = smp.samples
	}
	return res, nil
}

// runLoop executes the event loop until every slot drains: it issues all
// requests and drains the cores' outstanding reads, but performs no
// terminal write flush and emits no trailing epoch sample. Finalization
// differs between the sequential path (Run flushes at its own end) and the
// sharded path (RunSharded flushes every partition's write queue at the
// global end, so drain timing matches a single merged run).
func runLoop(cfg *Config, scr *Scratch, perBank []int64) (int64, *sampler, error) {
	nc := len(cfg.Cores)
	no := len(cfg.Open)
	n := nc + no
	sched := scr.scheduler(cfg, n)
	scr.left = grow(scr.left, n)
	left := scr.left
	for i := range cfg.Cores {
		left[i] = cfg.Cores[i].Requests
	}
	for j := range cfg.Open {
		left[nc+j] = cfg.Open[j].Requests
	}
	// Open-slot pending state: each slot holds its next request and
	// arrival time. Slots start scheduled at clock 0 like cores and are
	// lazily bumped to their true arrival on first pick — the tournament
	// scheduler only permits updating the current winner, so the keys
	// cannot be pre-seeded before the loop.
	var pendReq []trace.Request
	var pendAt, schedAt []int64
	if no > 0 {
		scr.pendReq = grow(scr.pendReq, no)
		scr.pendAt = grow(scr.pendAt, no)
		scr.schedAt = grow(scr.schedAt, no)
		pendReq, pendAt, schedAt = scr.pendReq, scr.pendAt, scr.schedAt
		for j := range cfg.Open {
			pendReq[j], pendAt[j] = cfg.Open[j].Gen.Next()
		}
	}
	var openEnd int64
	crossBank, hasCrossBank := cfg.Scheme.(mitigation.CrossBank)
	smp := newSampler(cfg, scr)
	nextInterval := cfg.IntervalCPU
	chLo, chHi := 0, cfg.Geometry.Channels
	if cfg.Channels != nil {
		chLo, chHi = cfg.Channels.Lo, cfg.Channels.Hi
	}

	remaining := n
	for remaining > 0 {
		// Advance the slot with the smallest local clock (keeps bank and
		// channel contention causally ordered across cores and arrival
		// streams). Selection times are non-decreasing, so they double as
		// the global clock the epoch sampler slices.
		ci := sched.pick()
		if ci >= nc {
			// Open-loop slot.
			j := ci - nc
			if schedAt[j] < pendAt[j] {
				// The slot is scheduled at a stale (earlier) clock; bump it
				// to the pending arrival and re-pick. Legal: ci is the
				// current winner.
				schedAt[j] = pendAt[j]
				sched.update(ci, pendAt[j])
				continue
			}
			var boundClock int64
			var boundIdx int32
			if cfg.Batch {
				boundClock, boundIdx = sched.bound(ci)
			}
		drainOpen:
			at := pendAt[j]
			if smp != nil {
				for at >= smp.nextCPU {
					smp.flush(smp.nextCPU)
					smp.nextCPU += cfg.EpochCPU
					if cfg.barrier != nil {
						cfg.barrier.arrive()
					}
				}
			}
			req := pendReq[j]
			issueCPU := at
			for cfg.IntervalCPU > 0 && issueCPU >= nextInterval {
				cfg.Scheme.OnIntervalBoundary()
				if cfg.Oracle != nil {
					cfg.Oracle.RefreshAll()
				}
				nextInterval += cfg.IntervalCPU
			}

			coord := cfg.Policy.Decode(req.Addr)
			if coord.Bank.Channel < chLo || coord.Bank.Channel >= chHi {
				return 0, smp, fmt.Errorf("engine: open slot %d request for channel %d outside shard channels [%d,%d)",
					j, coord.Bank.Channel, chLo, chHi)
			}
			flat := cfg.Geometry.Flat(coord.Bank)
			perBank[flat]++
			issueBus := issueCPU / int64(cfg.CPUPerBus)

			trackRow := coord.Row
			physRow := coord.Row
			if cfg.Scrambler != nil {
				physRow = cfg.Scrambler.ToPhysical(coord.Row)
				if !cfg.IgnoreScrambler {
					trackRow = physRow
				}
			}
			ranges := cfg.Scheme.OnActivate(flat, trackRow)
			if cfg.Oracle != nil {
				cfg.Oracle.Activate(flat, physRow)
			}
			if cfg.Attr != nil {
				cfg.Attr.OnActivate(flat, trackRow)
			}
			if issueCPU > openEnd {
				openEnd = issueCPU
			}
			if req.Write {
				cfg.Ctrl.Write(issueBus, coord)
			} else {
				doneBus := cfg.Ctrl.Read(issueBus, coord)
				if d := doneBus * int64(cfg.CPUPerBus); d > openEnd {
					openEnd = d
				}
			}
			for _, rr := range ranges {
				cfg.Ctrl.VictimRefresh(issueBus, flat, rr.Rows())
				if cfg.Oracle != nil {
					cfg.Oracle.Refresh(flat, rr)
				}
				if cfg.Attr != nil {
					cfg.Attr.OnRefresh(flat, rr.Lo, rr.Hi)
				}
			}
			if hasCrossBank {
				for _, bf := range crossBank.PendingCrossBank() {
					cfg.Ctrl.VictimRefresh(issueBus, bf.Bank, bf.Range.Rows())
					if cfg.Oracle != nil {
						cfg.Oracle.Refresh(bf.Bank, bf.Range)
					}
					if cfg.Attr != nil {
						cfg.Attr.OnRefresh(bf.Bank, bf.Range.Lo, bf.Range.Hi)
					}
				}
			}
			left[ci]--
			if left[ci] == 0 {
				sched.remove(ci)
				remaining--
				continue
			}
			pendReq[j], pendAt[j] = cfg.Open[j].Gen.Next()
			if pendAt[j] < at {
				// Clamp a non-monotone source so the schedule stays causal.
				pendAt[j] = at
			}
			if cfg.Batch {
				if na := pendAt[j]; na < boundClock || (na == boundClock && int32(ci) < boundIdx) {
					goto drainOpen
				}
			}
			schedAt[j] = pendAt[j]
			sched.update(ci, pendAt[j])
			continue
		}
		cs := &cfg.Cores[ci]
		// In batch mode, keep draining this core while its key stays
		// strictly below the best other core's — exactly when pick would
		// select it again — paying one pick/bound/update for the whole run
		// instead of per request. The scheduler is static during the run,
		// so the bound fetched here stays valid until the update below.
		var boundClock int64
		var boundIdx int32
		if cfg.Batch {
			boundClock, boundIdx = sched.bound(ci)
		}
	drain:
		if smp != nil {
			for cs.CPU.Now >= smp.nextCPU {
				smp.flush(smp.nextCPU)
				smp.nextCPU += cfg.EpochCPU
				if cfg.barrier != nil {
					cfg.barrier.arrive()
				}
			}
		}
		req := cs.Gen.Next()
		cs.CPU.AdvanceGap(req.Gap)
		issueCPU := cs.CPU.PrepareIssue()

		// Auto-refresh interval boundary (burst semantics, §V).
		for cfg.IntervalCPU > 0 && issueCPU >= nextInterval {
			cfg.Scheme.OnIntervalBoundary()
			if cfg.Oracle != nil {
				cfg.Oracle.RefreshAll()
			}
			nextInterval += cfg.IntervalCPU
		}

		coord := cfg.Policy.Decode(req.Addr)
		if coord.Bank.Channel < chLo || coord.Bank.Channel >= chHi {
			return 0, smp, fmt.Errorf("engine: core %d request for channel %d outside shard channels [%d,%d)",
				ci, coord.Bank.Channel, chLo, chHi)
		}
		flat := cfg.Geometry.Flat(coord.Bank)
		perBank[flat]++
		issueBus := issueCPU / int64(cfg.CPUPerBus)

		// Crosstalk couples physically adjacent wordlines: track (and
		// refresh) in physical row space unless misconfigured.
		trackRow := coord.Row
		physRow := coord.Row
		if cfg.Scrambler != nil {
			physRow = cfg.Scrambler.ToPhysical(coord.Row)
			if !cfg.IgnoreScrambler {
				trackRow = physRow
			}
		}
		ranges := cfg.Scheme.OnActivate(flat, trackRow)
		if cfg.Oracle != nil {
			cfg.Oracle.Activate(flat, physRow)
		}
		if cfg.Attr != nil {
			cfg.Attr.OnActivate(flat, trackRow)
		}
		if req.Write {
			cfg.Ctrl.Write(issueBus, coord)
			cs.CPU.NoteWrite()
		} else {
			doneBus := cfg.Ctrl.Read(issueBus, coord)
			cs.CPU.NoteRead(doneBus * int64(cfg.CPUPerBus))
		}
		// The victim refresh queues behind the triggering activation.
		for _, rr := range ranges {
			cfg.Ctrl.VictimRefresh(issueBus, flat, rr.Rows())
			if cfg.Oracle != nil {
				cfg.Oracle.Refresh(flat, rr)
			}
			if cfg.Attr != nil {
				cfg.Attr.OnRefresh(flat, rr.Lo, rr.Hi)
			}
		}
		if hasCrossBank {
			// Shared-counter schemes (ABACuS) refresh the same victims in
			// the other banks too.
			for _, bf := range crossBank.PendingCrossBank() {
				cfg.Ctrl.VictimRefresh(issueBus, bf.Bank, bf.Range.Rows())
				if cfg.Oracle != nil {
					cfg.Oracle.Refresh(bf.Bank, bf.Range)
				}
				if cfg.Attr != nil {
					cfg.Attr.OnRefresh(bf.Bank, bf.Range.Lo, bf.Range.Hi)
				}
			}
		}
		left[ci]--
		if left[ci] == 0 {
			sched.remove(ci)
			remaining--
			continue
		}
		if cfg.Batch {
			if now := cs.CPU.Now; now < boundClock || (now == boundClock && int32(ci) < boundIdx) {
				goto drain
			}
		}
		sched.update(ci, cs.CPU.Now)
	}

	endCPU := openEnd
	for i := range cfg.Cores {
		if d := cfg.Cores[i].CPU.Drain(); d > endCPU {
			endCPU = d
		}
	}
	return endCPU, smp, nil
}
