package engine

import (
	"fmt"
	"sync"

	"catsim/internal/memctrl"
	"catsim/internal/mitigation"
)

// This file is the shard orchestrator: RunSharded executes one logical
// simulation as N channel-partitions, each a complete engine Config (its
// own controller, scheme instance, oracle and the slots confined to its
// channel range) driven by the same event loop as the sequential engine,
// with the partitions spread over a bounded number of goroutines.
//
// The determinism contract, in three parts:
//
//  1. State partitions exactly. Every simulated structure a partition
//     touches — bank state, per-channel bus, per-rank refresh schedule,
//     per-bank scheme counters, oracle rows — is owned by that partition
//     alone (Config.Channels makes a violation a loud error), so no
//     execution interleaving can alter any partition's dynamics.
//  2. The merge is a pure fold in channel order. Per-epoch Samples align
//     at fixed clock boundaries (k·EpochCPU): activity deltas add, the
//     read-latency average is recomputed from exact integer sums, and
//     occupancy snapshots carry each partition's last sample forward; the
//     final write-queue flush happens at the global end time on every
//     partition, exactly where the sequential engine flushes.
//  3. The epoch barrier paces, never orders. When every partition has its
//     own goroutine, each one blocks after flushing epoch k until all
//     live partitions have flushed epoch k (finished partitions drop
//     out). No data crosses the barrier — it only bounds cross-shard
//     skew — so results are byte-identical with or without it, at any
//     GOMAXPROCS and any worker count.
//
// Consequently RunSharded(parts, w) returns the same Result for every w,
// and equals Run on the merged configuration whenever no auto-refresh
// interval boundary fires mid-run (each partition advances its interval
// clock from its own traffic — the per-channel-controller view of a
// multi-channel system; the sequential engine resets all banks at once).
// Cross-bank schemes (mitigation.CrossBank) and shared-PRNG schemes
// cannot partition and are rejected — sim serializes them instead.

// epochBarrier is a cyclic barrier over the live partitions: generation g
// releases when every party has arrived g+1 times (or dropped out).
type epochBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

func newEpochBarrier(parties int) *epochBarrier {
	b := &epochBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// arrive blocks until every live partition has flushed the same epoch
// boundary. Partitions flush every boundary in order, so the k-th arrival
// of each party always names the same epoch.
func (b *epochBarrier) arrive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.arrived++
	if b.arrived >= b.parties {
		b.gen++
		b.arrived = 0
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}

// drop removes a finished (or failed) partition, releasing any epoch its
// departure completes. Called exactly once per party.
func (b *epochBarrier) drop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.parties > 0 && b.arrived >= b.parties {
		b.gen++
		b.arrived = 0
	}
	b.cond.Broadcast()
}

// shardOut is one partition's loop output, pre-merge.
type shardOut struct {
	endCPU     int64
	perBank    []int64
	smp        *sampler
	boundaries int // samples flushed at exact epoch boundaries (rest is the trailing tail)
	pristine   mitigation.Snapshot
	flushDelta memctrl.Stats
	err        error
}

// RunSharded runs each partition's event loop and merges the results in
// channel order (see the determinism contract above). Every partition must
// carry its own Ctrl and Scheme, a Channels range confined to disjoint
// ascending channel intervals, and identical timing/geometry parameters.
// workers bounds the goroutine count: partitions are assigned to workers
// in contiguous channel-order blocks, and workers <= 0 means one goroutine
// per partition (the configuration the epoch barrier paces).
func RunSharded(parts []Config, workers int) (Result, error) {
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("engine: sharded run needs at least one partition")
	}
	base := &parts[0]
	ctrls := map[*memctrl.Controller]int{}
	schemes := map[mitigation.Scheme]int{}
	nextCh := 0
	for p := range parts {
		cfg := &parts[p]
		if err := cfg.validate(); err != nil {
			return Result{}, fmt.Errorf("partition %d: %w", p, err)
		}
		if cfg.Geometry != base.Geometry || cfg.CPUPerBus != base.CPUPerBus ||
			cfg.IntervalCPU != base.IntervalCPU || cfg.EpochCPU != base.EpochCPU ||
			cfg.CPUCycleNS != base.CPUCycleNS || cfg.BusCycleNS != base.BusCycleNS {
			return Result{}, fmt.Errorf("engine: partition %d differs from partition 0 in geometry or timing", p)
		}
		if cfg.Channels == nil {
			return Result{}, fmt.Errorf("engine: partition %d has no channel range", p)
		}
		if cfg.Channels.Lo < nextCh {
			return Result{}, fmt.Errorf("engine: partition %d channels [%d,%d) overlap or break channel order",
				p, cfg.Channels.Lo, cfg.Channels.Hi)
		}
		nextCh = cfg.Channels.Hi
		if cfg.Attr != nil {
			return Result{}, fmt.Errorf("engine: partition %d: per-tenant attribution requires the sequential engine", p)
		}
		if _, cross := cfg.Scheme.(mitigation.CrossBank); cross {
			return Result{}, fmt.Errorf("engine: partition %d: cross-bank scheme %v cannot be sharded", p, cfg.Scheme.Kind())
		}
		if prev, dup := ctrls[cfg.Ctrl]; dup {
			return Result{}, fmt.Errorf("engine: partitions %d and %d share a controller", prev, p)
		}
		ctrls[cfg.Ctrl] = p
		if prev, dup := schemes[cfg.Scheme]; dup {
			return Result{}, fmt.Errorf("engine: partitions %d and %d share a scheme instance", prev, p)
		}
		schemes[cfg.Scheme] = p
	}
	if workers <= 0 || workers > len(parts) {
		workers = len(parts)
	}

	outs := make([]shardOut, len(parts))
	for p := range parts {
		// Each full-size scheme instance reports the channels it never
		// touches at their as-built state; the merge subtracts the
		// duplicates (see mergeSamples).
		if snap, ok := parts[p].Scheme.(mitigation.Snapshotter); ok {
			outs[p].pristine = snap.Snapshot()
		}
	}
	var barrier *epochBarrier
	if base.EpochCPU > 0 && workers == len(parts) {
		barrier = newEpochBarrier(len(parts))
	}

	var wg sync.WaitGroup
	start := 0
	for w := 0; w < workers; w++ {
		n := len(parts) / workers
		if w < len(parts)%workers {
			n++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for p := lo; p < hi; p++ {
				parts[p].barrier = barrier
				pristine := outs[p].pristine
				outs[p] = runPartition(&parts[p])
				outs[p].pristine = pristine
			}
		}(start, start+n)
		start += n
	}
	wg.Wait()

	for p := range outs {
		if outs[p].err != nil {
			return Result{}, outs[p].err
		}
	}

	globalEnd := int64(0)
	for p := range outs {
		if outs[p].endCPU > globalEnd {
			globalEnd = outs[p].endCPU
		}
	}
	// Flush every partition's write queue at the global end — the moment
	// the sequential engine would flush the single merged queue — and
	// capture the drain-time stats for the trailing epoch sample.
	for p := range parts {
		before := parts[p].Ctrl.Stats()
		parts[p].Ctrl.FlushWrites(globalEnd / int64(base.CPUPerBus))
		outs[p].flushDelta = parts[p].Ctrl.Stats().Sub(before)
	}

	res := Result{EndCPU: globalEnd, PerBankActs: make([]int64, base.Geometry.TotalBanks())}
	for p := range outs {
		for b, v := range outs[p].perBank {
			res.PerBankActs[b] += v
		}
	}
	if base.EpochCPU > 0 {
		res.Samples = mergeSamples(base, outs, globalEnd)
	}
	return res, nil
}

// runPartition drives one partition's loop to drain and closes its
// trailing epoch (pre-flush: the orchestrator folds drain-time write
// traffic into the merged tail afterwards).
func runPartition(cfg *Config) shardOut {
	var out shardOut
	if cfg.barrier != nil {
		defer cfg.barrier.drop()
	}
	scr := cfg.Scratch
	if scr == nil {
		scr = &Scratch{}
	}
	scr.perBank = grow(scr.perBank, cfg.Geometry.TotalBanks())
	out.perBank = scr.perBank
	out.endCPU, out.smp, out.err = runLoop(cfg, scr, out.perBank)
	if out.err != nil {
		return out
	}
	if out.smp != nil {
		out.boundaries = len(out.smp.samples)
		if out.endCPU > out.smp.lastCPU || len(out.smp.samples) == 0 {
			out.smp.flush(out.endCPU)
		}
		scr.samples = out.smp.samples
	}
	return out
}

// mergeSamples folds the partitions' epoch series into the sequence the
// sequential engine would have produced: boundary epochs align at fixed
// clocks, each partition's tail (its activity past its last boundary)
// lands in the epoch containing it, activity deltas add, the read-latency
// average is recomputed from summed integer cycles, and occupancy
// snapshots carry forward. Snapshot sums subtract the (P-1) duplicate
// reports of untouched channels' as-built state, so CountersLive and
// Reconfigs match the single-instance view exactly.
func mergeSamples(base *Config, outs []shardOut, globalEnd int64) []Sample {
	boundaries := 0
	for p := range outs {
		if outs[p].boundaries > boundaries {
			boundaries = outs[p].boundaries
		}
	}
	total := boundaries
	trailing := globalEnd > int64(boundaries)*base.EpochCPU || boundaries == 0
	if trailing {
		total++
	}
	samples := make([]Sample, total)
	for e := range samples {
		s := &samples[e]
		s.Epoch = e
		if e < boundaries {
			s.EndNS = float64(int64(e+1)*base.EpochCPU) * base.CPUCycleNS
		} else {
			s.EndNS = float64(globalEnd) * base.CPUCycleNS
		}
		live, depth := 0, 0
		var reconfigs int64
		for p := range outs {
			o := &outs[p]
			n := len(o.smp.samples)
			if e < n {
				ps := &o.smp.samples[e]
				s.Activations += ps.Activations
				s.RefreshEvents += ps.RefreshEvents
				s.RowsRefreshed += ps.RowsRefreshed
				s.Reads += ps.Reads
				s.Writes += ps.Writes
				s.VictimBusyCycles += ps.VictimBusyCycles
				s.latencySum += ps.latencySum
			}
			last := e
			if last >= n {
				last = n - 1
			}
			ps := &o.smp.samples[last]
			live += ps.CountersLive
			if p == 0 {
				s.CountersCap = ps.CountersCap
			}
			if ps.TreeDepth > depth {
				depth = ps.TreeDepth
			}
			reconfigs += ps.Reconfigs
			s.MissedVictimRows += ps.MissedVictimRows
			s.ExposedVictimRows += ps.ExposedVictimRows
			if p > 0 {
				live -= o.pristine.Live
				reconfigs -= o.pristine.Reconfigs
			}
		}
		s.CountersLive = live
		s.TreeDepth = depth
		s.Reconfigs = reconfigs
	}
	if trailing {
		tail := &samples[total-1]
		for p := range outs {
			fd := &outs[p].flushDelta
			tail.Reads += fd.Reads
			tail.Writes += fd.Writes
			tail.VictimBusyCycles += fd.VictimRefreshBusy
			tail.latencySum += fd.ReadLatencySum
		}
	}
	for e := range samples {
		if s := &samples[e]; s.Reads > 0 {
			s.AvgReadLatencyNS = float64(s.latencySum) / float64(s.Reads) * base.BusCycleNS
		}
	}
	return samples
}
