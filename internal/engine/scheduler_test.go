package engine

import "testing"

// TestHeapSchedulerMatchesLinearReference drives both schedulers through
// an identical pseudo-random pick/update/remove workload and checks every
// pick agrees — the (clock, index) tie-break included.
func TestHeapSchedulerMatchesLinearReference(t *testing.T) {
	const n = 37
	h := newHeapScheduler(n)
	l := newLinearScheduler(n)
	now := make([]int64, n)
	budget := make([]int, n)
	for i := range budget {
		budget[i] = 50 + i%7
	}
	state := uint64(0x9e3779b97f4a7c15)
	remaining := n
	for step := 0; remaining > 0; step++ {
		hp, lp := h.pick(), l.pick()
		if hp != lp {
			t.Fatalf("step %d: heap picked %d, linear picked %d", step, hp, lp)
		}
		// xorshift delta in [0, 8): frequent ties exercise the index
		// tie-break.
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		now[hp] += int64(state % 8)
		budget[hp]--
		if budget[hp] == 0 {
			h.remove(hp)
			l.remove(hp)
			remaining--
			continue
		}
		h.update(hp, now[hp])
		l.update(hp, now[hp])
	}
	if h.pick() != -1 || l.pick() != -1 {
		t.Error("exhausted schedulers must pick -1")
	}
}

func TestHeapSchedulerTieBreaksByIndex(t *testing.T) {
	h := newHeapScheduler(4)
	if got := h.pick(); got != 0 {
		t.Fatalf("all-zero clocks: pick = %d, want 0", got)
	}
	h.update(0, 5)
	h.update(2, 5)
	if got := h.pick(); got != 1 {
		t.Fatalf("pick = %d, want 1 (clock 0)", got)
	}
	h.update(1, 5)
	h.update(3, 5)
	// All clocks equal: lowest index wins.
	if got := h.pick(); got != 0 {
		t.Fatalf("pick = %d, want 0 on all-tied clocks", got)
	}
	h.remove(0)
	if got := h.pick(); got != 1 {
		t.Fatalf("pick = %d, want 1 after removing 0", got)
	}
}
