package engine

import (
	"reflect"
	"runtime/debug"
	"testing"

	"catsim/internal/addrmap"
	"catsim/internal/cpu"
	"catsim/internal/dram"
	"catsim/internal/memctrl"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// harness bundles one engine configuration with the components the
// assertions interrogate after the run.
type harness struct {
	cfg    Config
	ctrl   *memctrl.Controller
	scheme mitigation.Scheme
}

// makeHarness builds a fresh, fully deterministic engine setup: identical
// parameters always produce identical request streams and component
// state, so two harnesses are comparable run for run.
func makeHarness(t testing.TB, cores, requests int, threshold uint32, sched Sched, batch bool, epochCPU int64) *harness {
	t.Helper()
	geom := dram.Default2Channel()
	timing := dram.DDR3_1600()
	policy, err := addrmap.NewRowInterleaved(geom)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := memctrl.New(geom, timing)
	if err != nil {
		t.Fatal(err)
	}
	spec := mitigation.SchemeSpec{Kind: mitigation.KindDRCAT, Threshold: threshold, Params: mitigation.Params{}}
	spec.Params.SetInt("counters", 64)
	spec.Params.SetInt("levels", 11)
	scheme, err := mitigation.Build(spec, geom.TotalBanks(), geom.RowsPerBank)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	slots := make([]CoreSlot, cores)
	for i := range slots {
		c, err := cpu.NewCore(cpu.DefaultWindow)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := trace.NewSynthetic(wl, geom.TotalBytes(), geom.LineBytes, 7+uint64(i)*0x1000193)
		if err != nil {
			t.Fatal(err)
		}
		slots[i] = CoreSlot{CPU: c, Gen: gen, Requests: requests}
	}
	cpuNS := 1000.0 / (float64(timing.BusMHz) * float64(cpu.DefaultCPUCyclesPerBusCycle))
	return &harness{
		cfg: Config{
			Cores:       slots,
			Ctrl:        ctrl,
			Policy:      policy,
			Geometry:    geom,
			Scheme:      scheme,
			CPUPerBus:   cpu.DefaultCPUCyclesPerBusCycle,
			IntervalCPU: 2_000_000,
			EpochCPU:    epochCPU,
			CPUCycleNS:  cpuNS,
			BusCycleNS:  1000.0 / float64(timing.BusMHz),
			Sched:       sched,
			Batch:       batch,
		},
		ctrl:   ctrl,
		scheme: scheme,
	}
}

// TestSchedulersEquivalent is the scheduler-equivalence contract: every
// scheduler (heap, tournament, linear) with and without batch-advance must
// replay the exact causal order of the historical per-request O(cores)
// scan — same per-bank activation counts, same controller statistics,
// same scheme activity, same end time.
func TestSchedulersEquivalent(t *testing.T) {
	variants := []struct {
		name  string
		sched Sched
		batch bool
	}{
		{"heap", SchedHeap, false},
		{"heap_batch", SchedHeap, true},
		{"tournament", SchedTournament, false},
		{"tournament_batch", SchedTournament, true},
		{"linear_batch", SchedLinear, true},
		{"auto_batch", SchedAuto, true},
	}
	for _, cores := range []int{1, 2, 5, 16} {
		ref := makeHarness(t, cores, 5000, 512, SchedLinear, false, 0)
		rr, err := Run(ref.cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			h := makeHarness(t, cores, 5000, 512, v.sched, v.batch, 0)
			hr, err := Run(h.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(hr, rr) {
				t.Errorf("cores=%d %s: result %+v != linear reference %+v", cores, v.name, hr, rr)
			}
			if h.ctrl.Stats() != ref.ctrl.Stats() {
				t.Errorf("cores=%d %s: controller stats diverge: %+v vs %+v",
					cores, v.name, h.ctrl.Stats(), ref.ctrl.Stats())
			}
			if h.scheme.Counts() != ref.scheme.Counts() {
				t.Errorf("cores=%d %s: scheme counts diverge", cores, v.name)
			}
		}
	}
}

// TestLinearScanFieldStillSelectsLinear keeps the pre-Sched boolean knob
// working for existing callers.
func TestLinearScanFieldStillSelectsLinear(t *testing.T) {
	cfg := Config{}
	cfg.LinearScan = true
	if _, ok := cfg.newScheduler(4).(*linearScheduler); !ok {
		t.Fatal("LinearScan=true no longer selects the linear scheduler")
	}
	if _, ok := (&Config{}).newScheduler(4).(*tournamentScheduler); !ok {
		t.Fatal("SchedAuto should pick the tournament scheduler at small core counts")
	}
	if _, ok := (&Config{}).newScheduler(maxTournamentCores + 1).(*heapScheduler); !ok {
		t.Fatal("SchedAuto should fall back to the heap past maxTournamentCores")
	}
}

// TestEpochSamplingDoesNotPerturb locks the sampling contract: any epoch
// length (including none) yields an identical end state, and the samples
// add up to the run totals.
func TestEpochSamplingDoesNotPerturb(t *testing.T) {
	base := makeHarness(t, 3, 4000, 512, SchedAuto, true, 0)
	br, err := Run(base.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, epochCPU := range []int64{100_000, 777_777, 5_000_000} {
		h := makeHarness(t, 3, 4000, 512, SchedAuto, true, epochCPU)
		r, err := Run(h.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.EndCPU != br.EndCPU {
			t.Errorf("epoch=%d: end %d != unsampled %d", epochCPU, r.EndCPU, br.EndCPU)
		}
		if !reflect.DeepEqual(r.PerBankActs, br.PerBankActs) {
			t.Errorf("epoch=%d: per-bank activations diverge", epochCPU)
		}
		if h.ctrl.Stats() != base.ctrl.Stats() {
			t.Errorf("epoch=%d: controller stats diverge", epochCPU)
		}
		if h.scheme.Counts() != base.scheme.Counts() {
			t.Errorf("epoch=%d: scheme counts diverge", epochCPU)
		}
		if len(r.Samples) == 0 {
			t.Fatalf("epoch=%d: no samples", epochCPU)
		}
		var acts, reads, writes int64
		lastEnd := 0.0
		for i, s := range r.Samples {
			if s.Epoch != i {
				t.Errorf("epoch=%d: sample %d has index %d", epochCPU, i, s.Epoch)
			}
			if s.EndNS < lastEnd {
				t.Errorf("epoch=%d: EndNS not monotone at %d", epochCPU, i)
			}
			lastEnd = s.EndNS
			acts += s.Activations
			reads += s.Reads
			writes += s.Writes
		}
		if acts != h.scheme.Counts().Activations {
			t.Errorf("epoch=%d: sample activations sum %d != total %d",
				epochCPU, acts, h.scheme.Counts().Activations)
		}
		st := h.ctrl.Stats()
		if reads != st.Reads || writes != st.Writes {
			t.Errorf("epoch=%d: sample reads/writes %d/%d != totals %d/%d",
				epochCPU, reads, writes, st.Reads, st.Writes)
		}
	}
}

// TestSnapshotterSampled checks that a Snapshotter scheme's occupancy
// reaches the samples.
func TestSnapshotterSampled(t *testing.T) {
	h := makeHarness(t, 2, 4000, 512, SchedAuto, true, 500_000)
	r, err := Run(h.cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Samples[len(r.Samples)-1]
	if last.CountersCap == 0 {
		t.Fatal("DRCAT implements Snapshotter; CountersCap must be positive")
	}
	if last.CountersLive <= 0 || last.CountersLive > last.CountersCap {
		t.Errorf("live counters %d out of (0, %d]", last.CountersLive, last.CountersCap)
	}
	if last.TreeDepth < 1 {
		t.Errorf("tree depth %d, want >= 1 after traffic", last.TreeDepth)
	}
}

// allocsForRun measures total heap allocations of one complete engine
// run, setup included. The collector is paused for the measurement: a GC
// cycle landing mid-run occasionally charges a runtime-internal malloc to
// the loop, which would trip the zero gate below with a false positive
// (program-level allocation counts are deterministic — verified with
// MemProfileRate=1 — so anything GC-timing-dependent is runtime noise).
func allocsForRun(t testing.TB, requests int) float64 {
	t.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	return testing.AllocsPerRun(3, func() {
		h := makeHarness(t, 2, requests, 512, SchedAuto, true, 0)
		if _, err := Run(h.cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSteadyStateZeroAllocs is the alloc gate the ISSUE's bench smoke
// demands: the per-request loop must not allocate. Comparing two runs
// that differ only in request count cancels the setup allocations
// exactly, so any nonzero difference is hot-path garbage.
func TestSteadyStateZeroAllocs(t *testing.T) {
	small := allocsForRun(t, 2000)
	large := allocsForRun(t, 22000)
	if extra := large - small; extra > 0 {
		t.Errorf("steady-state loop allocated %.0f times over 40000 extra requests (want 0)", extra)
	}
}

func TestConfigValidation(t *testing.T) {
	h := makeHarness(t, 1, 10, 512, SchedAuto, false, 0)
	bad := []func(c *Config){
		func(c *Config) { c.Cores = nil },
		func(c *Config) { c.Ctrl = nil },
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Scheme = nil },
		func(c *Config) { c.CPUPerBus = 0 },
		func(c *Config) { c.EpochCPU = -1 },
		func(c *Config) { c.IntervalCPU = -1 },
		func(c *Config) { c.Cores[0].Requests = 0 },
		func(c *Config) { c.Cores[0].Gen = nil },
	}
	for i, mutate := range bad {
		cfg := h.cfg
		cfg.Cores = append([]CoreSlot(nil), h.cfg.Cores...)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}
