package engine

import "catsim/internal/trace"

// Scratch owns the engine's per-run working memory — the per-bank
// activation tally, the request-budget array, the open-slot pending
// buffers, the scheduler and the epoch sampler (including its sample
// backing array) — so repeated runs of same-shaped configurations reuse
// every slab instead of reallocating it. The zero value is ready: each
// slab grows on first use and is reused whenever its capacity already
// fits, so a Scratch threaded through a seed sweep reaches zero
// steady-state allocations per run after the first.
//
// A Scratch serves one run at a time (no internal locking), and a Result
// produced through one ALIASES it: PerBankActs and Samples share the
// Scratch's backing arrays and are only valid until the Scratch's next
// run. Callers that retain results across runs must copy them first
// (sim.Result.Clone does).
type Scratch struct {
	perBank []int64
	left    []int
	pendReq []trace.Request
	pendAt  []int64
	schedAt []int64

	// smp is the sampler for the current run; samples keeps the grown
	// sample backing between runs.
	smp     sampler
	samples []Sample

	// sched caches the scheduler instance; valid for reuse only while the
	// resolved kind and slot count both match.
	sched     scheduler
	schedKind Sched
	schedN    int
}

// grow reslices buf to n zeroed elements, reallocating only when the
// existing capacity is short.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	var zero T
	for i := range buf {
		buf[i] = zero
	}
	return buf
}

// scheduler returns a ready scheduler for n slots, re-arming the cached
// instance in place when the resolved kind and slot count match (each
// reset replicates its constructor over the existing slabs).
func (s *Scratch) scheduler(cfg *Config, n int) scheduler {
	sel := cfg.schedSel(n)
	if s.sched != nil && s.schedKind == sel && s.schedN == n {
		switch sc := s.sched.(type) {
		case *heapScheduler:
			sc.reset()
		case *linearScheduler:
			sc.reset()
		case *tournamentScheduler:
			sc.reset()
		}
		return s.sched
	}
	var sc scheduler
	switch sel {
	case SchedLinear:
		sc = newLinearScheduler(n)
	case SchedHeap:
		sc = newHeapScheduler(n)
	default:
		sc = newTournamentScheduler(n)
	}
	s.sched, s.schedKind, s.schedN = sc, sel, n
	return sc
}
