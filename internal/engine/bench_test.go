package engine

import (
	"fmt"
	"testing"
)

// Scheduler micro-benchmarks: the standing measurement behind the
// min-heap refactor. Each iteration is one pick + clock advance — the
// per-request scheduling work — over core counts spanning the paper's
// dual-core baseline to the 256-core scenario sweeps the ROADMAP targets.
// `make bench-engine` snapshots these into BENCH_engine.json; at ≥ 64
// cores the heap must beat the linear scan.

func benchScheduler(b *testing.B, mk func(int) scheduler, cores int) {
	sched := mk(cores)
	now := make([]int64, cores)
	// Pre-draw xorshift deltas; small values force frequent ties so the
	// index tie-break stays on the measured path.
	var deltas [4096]int64
	state := uint64(0x243f6a8885a308d3)
	for i := range deltas {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		deltas[i] = int64(state % 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := sched.pick()
		now[c] += deltas[i&4095]
		sched.update(c, now[c])
	}
}

func BenchmarkScheduler(b *testing.B) {
	for _, cores := range []int{2, 8, 64, 256} {
		b.Run(fmt.Sprintf("tournament/%dcores", cores), func(b *testing.B) {
			benchScheduler(b, func(n int) scheduler { return newTournamentScheduler(n) }, cores)
		})
		b.Run(fmt.Sprintf("heap/%dcores", cores), func(b *testing.B) {
			benchScheduler(b, func(n int) scheduler { return newHeapScheduler(n) }, cores)
		})
		b.Run(fmt.Sprintf("linear/%dcores", cores), func(b *testing.B) {
			benchScheduler(b, func(n int) scheduler { return newLinearScheduler(n) }, cores)
		})
	}
}

// BenchmarkEngineRun measures the full request loop end to end —
// controller, scheme, generator and scheduler together — reporting
// ns/request so runs at different core counts compare directly.
func BenchmarkEngineRun(b *testing.B) {
	for _, cfg := range []struct {
		name  string
		cores int
		sched Sched
		batch bool
	}{
		// "default" is the production path: tournament scheduler plus
		// batch-advance (what sim.Run configures). heap and linear run
		// without batching as the reference points.
		{"default", 2, SchedAuto, true},
		{"default", 64, SchedAuto, true},
		{"heap", 64, SchedHeap, false},
		{"linear", 64, SchedLinear, false},
		{"default", 256, SchedAuto, true},
	} {
		b.Run(fmt.Sprintf("%s/%dcores", cfg.name, cfg.cores), func(b *testing.B) {
			const reqPerCore = 2000
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := makeHarness(b, cfg.cores, reqPerCore, 512, cfg.sched, cfg.batch, 0)
				b.StartTimer()
				if _, err := Run(h.cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(
				float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(cfg.cores)*reqPerCore),
				"ns/request")
		})
	}
}

// BenchmarkEngineAllocsPerRequest emits the allocs/request trajectory the
// CI artifact tracks: the differential between two run lengths, which
// cancels setup allocations and must stay at zero (the alloc-gate test
// fails the build otherwise).
func BenchmarkEngineAllocsPerRequest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := allocsForRun(b, 2000)
		large := allocsForRun(b, 12000)
		b.ReportMetric((large-small)/(2*10000), "allocs/request")
	}
	b.ReportMetric(0, "ns/op") // the timing of this meta-benchmark is meaningless
}
