package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// A Report is the structured result of one experiment table: a column
// schema, rows of typed cells and per-report metadata. Generators return
// Reports instead of printing, and pluggable Renderers turn them into the
// paper-shaped text tables (byte-identical to the historical output,
// locked by the golden-file tests), JSON or CSV.

// Column describes one column of a report.
type Column struct {
	// Name is the machine-readable key (JSON object key, CSV header).
	Name string `json:"name"`
	// Header is the text-table header; Name when empty.
	Header string `json:"header,omitempty"`
	// Type documents the cell type: "string", "int", "float" or
	// "percent" (a fraction; text rendering shows it ×100 with a % sign).
	Type string `json:"type"`
	// Format is the text-table fmt verb ("%d", "%.3e", ...); the default
	// renders percents via pct and everything else via %v.
	Format string `json:"-"`
}

func (c Column) header() string {
	if c.Header != "" {
		return c.Header
	}
	return c.Name
}

// Row is one report row; cells align with the report's Columns.
type Row []any

// Meta carries per-report run metadata.
type Meta struct {
	Scale      float64  `json:"scale,omitempty"`
	Seed       uint64   `json:"seed,omitempty"`
	Intervals  int      `json:"intervals,omitempty"`
	Workloads  []string `json:"workloads,omitempty"`
	Threshold  uint32   `json:"threshold,omitempty"`
	LFSRTrials int      `json:"lfsr_trials,omitempty"`
	// CacheRuns/CacheHits snapshot the shared result cache when the
	// report was produced (cumulative across the invocation's targets).
	CacheRuns int   `json:"cache_runs,omitempty"`
	CacheHits int64 `json:"cache_hits,omitempty"`
	// ContextBuilds/ContextReuses snapshot the run-context pool: how many
	// cache misses built a fresh context stack versus rewound a warm one.
	ContextBuilds int64 `json:"context_builds,omitempty"`
	ContextReuses int64 `json:"context_reuses,omitempty"`
}

// Report is one rendered-table's worth of structured results.
type Report struct {
	// Name identifies the generator ("fig8") or sub-table
	// ("ablations/ladders"); multi-table generators emit one Report per
	// table, distinguished by Meta (e.g. Threshold).
	Name    string   `json:"name"`
	Title   string   `json:"title,omitempty"`
	Columns []Column `json:"columns,omitempty"`
	Rows    []Row    `json:"rows,omitempty"`
	// Notes are trailing annotation lines rendered inside the text table
	// (they may carry tab-separated cells that align with the columns).
	Notes []string `json:"notes,omitempty"`
	// NoHeader suppresses the text header line (Table I style).
	NoHeader bool `json:"no_header,omitempty"`
	Meta     Meta `json:"meta"`
}

// annotated is a cell whose text-table form carries extra annotation
// ("1.23e-05*", "64K") while its machine form stays typed.
type annotated struct {
	v    any
	text string
}

// annotate builds an annotated cell.
func annotate(v any, text string) any { return annotated{v: v, text: text} }

// machine unwraps a cell to its machine-readable value.
func machine(v any) any {
	if a, ok := v.(annotated); ok {
		return a.v
	}
	return v
}

// text renders one cell for the text table.
func (c Column) text(v any) string {
	if a, ok := v.(annotated); ok {
		return a.text
	}
	switch {
	case v == nil:
		return ""
	case c.Format != "":
		return fmt.Sprintf(c.Format, v)
	case c.Type == "percent":
		return pct(toFloat(v))
	default:
		return fmt.Sprint(v)
	}
}

func toFloat(v any) float64 {
	switch n := v.(type) {
	case float64:
		return n
	case int:
		return float64(n)
	case int64:
		return float64(n)
	}
	return 0
}

// renderText writes the report as one aligned text table: title, header
// (unless NoHeader), rows, then notes, all inside a single tabwriter block
// so note cells participate in column alignment exactly as the historical
// hand-written tables did.
func (r *Report) renderText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if r.Title != "" {
		fmt.Fprintln(tw, r.Title)
	}
	if len(r.Columns) > 0 && !r.NoHeader {
		cells := make([]string, len(r.Columns))
		for i, c := range r.Columns {
			cells[i] = c.header()
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	for _, row := range r.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			if i < len(r.Columns) {
				cells[i] = r.Columns[i].text(v)
			} else {
				cells[i] = fmt.Sprint(v)
			}
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	for _, n := range r.Notes {
		fmt.Fprintln(tw, n)
	}
	return tw.Flush()
}

// reportJSON is the wire form: rows become column-keyed objects.
type reportJSON struct {
	Name     string           `json:"name"`
	Title    string           `json:"title,omitempty"`
	Columns  []Column         `json:"columns,omitempty"`
	Rows     []map[string]any `json:"rows,omitempty"`
	Notes    []string         `json:"notes,omitempty"`
	NoHeader bool             `json:"no_header,omitempty"`
	Meta     Meta             `json:"meta"`
}

// MarshalJSON renders rows as objects keyed by column name, with annotated
// cells reduced to their machine values.
func (r Report) MarshalJSON() ([]byte, error) {
	out := reportJSON{
		Name: r.Name, Title: r.Title, Columns: r.Columns,
		Notes: r.Notes, NoHeader: r.NoHeader, Meta: r.Meta,
	}
	for _, row := range r.Rows {
		obj := make(map[string]any, len(row))
		for i, v := range row {
			if i < len(r.Columns) {
				obj[r.Columns[i].Name] = machine(v)
			}
		}
		out.Rows = append(out.Rows, obj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON reconstructs rows in column order; cells decode by the
// column's declared type.
func (r *Report) UnmarshalJSON(data []byte) error {
	var in reportJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*r = Report{
		Name: in.Name, Title: in.Title, Columns: in.Columns,
		Notes: in.Notes, NoHeader: in.NoHeader, Meta: in.Meta,
	}
	for _, obj := range in.Rows {
		row := make(Row, len(in.Columns))
		for i, c := range in.Columns {
			v, ok := obj[c.Name]
			if !ok {
				continue
			}
			switch c.Type {
			case "int":
				if f, ok := v.(float64); ok {
					row[i] = int64(f)
					continue
				}
			}
			row[i] = v
		}
		r.Rows = append(r.Rows, row)
	}
	return nil
}

// Renderer consumes a stream of reports. Report is called as each report
// completes (so text output interleaves with live progress lines); Flush
// terminates the stream (the JSON renderer emits its array there).
type Renderer interface {
	Report(r *Report) error
	Flush() error
}

type textRenderer struct{ w io.Writer }

// NewTextRenderer renders each report as an aligned text table,
// byte-identical to the historical per-figure output.
func NewTextRenderer(w io.Writer) Renderer { return &textRenderer{w: w} }

func (t *textRenderer) Report(r *Report) error { return r.renderText(t.w) }
func (t *textRenderer) Flush() error           { return nil }

type jsonRenderer struct {
	w       io.Writer
	reports []*Report
}

// NewJSONRenderer collects every report and writes one indented JSON array
// of Reports on Flush.
func NewJSONRenderer(w io.Writer) Renderer { return &jsonRenderer{w: w} }

func (j *jsonRenderer) Report(r *Report) error {
	j.reports = append(j.reports, r)
	return nil
}

func (j *jsonRenderer) Flush() error {
	enc := json.NewEncoder(j.w)
	enc.SetIndent("", "  ")
	if j.reports == nil {
		j.reports = []*Report{}
	}
	return enc.Encode(j.reports)
}

type csvRenderer struct {
	w     io.Writer
	first bool
}

// NewCSVRenderer writes each report as a CSV block: a "# name: title"
// comment line, the column-name header record, then machine-form rows
// (percent cells stay raw fractions). Blocks are blank-line separated;
// notes are omitted.
func NewCSVRenderer(w io.Writer) Renderer { return &csvRenderer{w: w, first: true} }

func (c *csvRenderer) Report(r *Report) error {
	if !c.first {
		if _, err := io.WriteString(c.w, "\n"); err != nil {
			return err
		}
	}
	c.first = false
	if _, err := fmt.Fprintf(c.w, "# %s: %s\n", r.Name, r.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(c.w)
	header := make([]string, len(r.Columns))
	for i, col := range r.Columns {
		header[i] = col.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = csvCell(machine(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func (c *csvRenderer) Flush() error { return nil }

func csvCell(v any) string {
	switch n := v.(type) {
	case nil:
		return ""
	case string:
		return n
	case float64:
		return strconv.FormatFloat(n, 'g', -1, 64)
	case int:
		return strconv.Itoa(n)
	case int64:
		return strconv.FormatInt(n, 10)
	case uint32:
		return strconv.FormatUint(uint64(n), 10)
	case uint64:
		return strconv.FormatUint(n, 10)
	}
	return fmt.Sprint(v)
}
