package experiments

import (
	"fmt"
	"io"
	"math/bits"

	"catsim/internal/mitigation"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// Fig10Point is one bar of Fig. 10: CMRPO for a scheme at (M, L).
type Fig10Point struct {
	Scheme string
	M      int
	L      int // 0 for SCA
	CMRPO  float64
}

// fig10WorkloadSubset is the representative subset used for the sweep: one
// heavily-skewed, one phase-changing, one streaming, one commercial, one
// bio and one moderate PARSEC workload. The full 18-workload sweep is a
// --scale/--workloads flag away; the subset keeps the 100+-cell sweep
// tractable while spanning the behaviour space (see DESIGN.md D7).
var fig10WorkloadSubset = []string{"black", "face", "libq", "comm1", "mum", "ferret"}

// RunFig10 sweeps DRCAT over M in {32..512} and L in {log2(M)+1 .. 14},
// with SCA_M as the reference at each M, for one refresh threshold.
// RunFig10Policy does the same for a chosen CAT kind (the paper's §VIII-A
// reports the PRCAT sensitivity separately: "CMRPO for PRCAT is about 4%
// and 7% for T=32K and T=16K with 10 and 11 CAT levels").
func RunFig10(o Options, threshold uint32, progress io.Writer) ([]Fig10Point, error) {
	return RunFig10Policy(o, threshold, mitigation.KindDRCAT, progress)
}

// RunFig10Policy sweeps the given CAT kind (KindDRCAT or KindPRCAT).
func RunFig10Policy(o Options, threshold uint32, kind mitigation.Kind, progress io.Writer) ([]Fig10Point, error) {
	if kind != mitigation.KindDRCAT && kind != mitigation.KindPRCAT {
		return nil, fmt.Errorf("experiments: fig10 sweeps CAT kinds, got %v", kind)
	}
	if len(o.Workloads) == 18 {
		o.Workloads = fig10WorkloadSubset
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	var out []Fig10Point
	run := func(spec sim.SchemeSpec, label string, m, l int) error {
		sum := 0.0
		for wi, name := range o.Workloads {
			wl, err := trace.Lookup(name)
			if err != nil {
				return err
			}
			cfg := baseConfig(o, wl, spec, threshold)
			cfg.Seed = o.Seed + uint64(wi)
			res, err := sim.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", label, name, err)
			}
			sum += res.CMRPO
		}
		out = append(out, Fig10Point{Scheme: label, M: m, L: l, CMRPO: sum / float64(len(o.Workloads))})
		return nil
	}
	for m := 32; m <= 512; m *= 2 {
		if err := run(sim.SchemeSpec{Kind: mitigation.KindSCA, Counters: m}, "SCA", m, 0); err != nil {
			return nil, err
		}
		minL := bits.TrailingZeros(uint(m)) + 1
		for l := minL; l <= 14; l++ {
			spec := sim.SchemeSpec{Kind: kind, Counters: m, MaxLevels: l}
			if err := run(spec, fmt.Sprintf("%s_L%d", kind, l), m, l); err != nil {
				return nil, err
			}
		}
		if progress != nil && !o.Quiet {
			fmt.Fprintf(progress, "  M=%d done\n", m)
		}
	}
	return out, nil
}

// Fig10 renders the counter/depth sensitivity sweep for T = 32K and 16K.
func Fig10(w io.Writer, o Options) (map[uint32][]Fig10Point, error) {
	out := map[uint32][]Fig10Point{}
	for _, threshold := range []uint32{32768, 16384} {
		points, err := RunFig10(o, threshold, w)
		if err != nil {
			return nil, err
		}
		out[threshold] = points
		tw := table(w)
		fmt.Fprintf(tw, "Fig. 10: CMRPO per bank for DRCAT (M=32..512, L up to 14), T=%dK\n", threshold/1024)
		fmt.Fprintln(tw, "M\tscheme\tCMRPO")
		for _, p := range points {
			fmt.Fprintf(tw, "%d\t%s\t%s\n", p.M, p.Scheme, pct(p.CMRPO))
		}
		if m, l := BestDRCATConfig(points); m != 0 {
			fmt.Fprintf(tw, "minimum-CMRPO DRCAT config: M=%d, L=%d (paper: M=64, L=11)\n", m, l)
		}
		if err := tw.Flush(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BestDRCATConfig returns the (M, L) minimising DRCAT's CMRPO.
func BestDRCATConfig(points []Fig10Point) (m, l int) {
	best := -1.0
	for _, p := range points {
		if p.L == 0 {
			continue
		}
		if best < 0 || p.CMRPO < best {
			best, m, l = p.CMRPO, p.M, p.L
		}
	}
	return m, l
}
