package experiments

import (
	"fmt"
	"io"
	"math/bits"

	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// Fig10Point is one bar of Fig. 10: CMRPO for a scheme at (M, L).
type Fig10Point struct {
	Scheme string
	M      int
	L      int // 0 for SCA
	CMRPO  float64
}

// fig10WorkloadSubset is the representative subset used for the sweep: one
// heavily-skewed, one phase-changing, one streaming, one commercial, one
// bio and one moderate PARSEC workload. The full 18-workload sweep is a
// --scale/--workloads flag away; the subset keeps the 100+-cell sweep
// tractable while spanning the behaviour space (see DESIGN.md D7).
var fig10WorkloadSubset = []string{"black", "face", "libq", "comm1", "mum", "ferret"}

// RunFig10 sweeps DRCAT over M in {32..512} and L in {log2(M)+1 .. 14},
// with SCA_M as the reference at each M, for one refresh threshold.
// RunFig10Policy does the same for a chosen CAT kind (the paper's §VIII-A
// reports the PRCAT sensitivity separately: "CMRPO for PRCAT is about 4%
// and 7% for T=32K and T=16K with 10 and 11 CAT levels").
func RunFig10(o Options, threshold uint32, progress io.Writer) ([]Fig10Point, error) {
	return RunFig10Policy(o, threshold, mitigation.KindDRCAT, progress)
}

// RunFig10Policy sweeps the given CAT kind (KindDRCAT or KindPRCAT).
func RunFig10Policy(o Options, threshold uint32, kind mitigation.Kind, progress io.Writer) ([]Fig10Point, error) {
	if kind != mitigation.KindDRCAT && kind != mitigation.KindPRCAT {
		return nil, fmt.Errorf("experiments: fig10 sweeps CAT kinds, got %v", kind)
	}
	if len(o.Workloads) == 18 {
		o.Workloads = fig10WorkloadSubset
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	// Flatten the (M, L) sweep into a bar list, then expand every bar into
	// its per-workload grid cells.
	type bar struct {
		label string
		m, l  int
		spec  sim.SchemeSpec
	}
	var bars []bar
	for m := 32; m <= 512; m *= 2 {
		bars = append(bars, bar{label: "SCA", m: m,
			spec: sim.SchemeSpec{Kind: mitigation.KindSCA, Counters: m}})
		minL := bits.TrailingZeros(uint(m)) + 1
		for l := minL; l <= 14; l++ {
			bars = append(bars, bar{label: fmt.Sprintf("%s_L%d", kind, l), m: m, l: l,
				spec: sim.SchemeSpec{Kind: kind, Counters: m, MaxLevels: l}})
		}
	}
	var cells []runner.Cell
	for _, b := range bars {
		for wi, name := range o.Workloads {
			wl, err := trace.Lookup(name)
			if err != nil {
				return nil, err
			}
			cfg := baseConfig(o, wl, b.spec, threshold)
			cfg.Seed = o.Seed + uint64(wi)
			cells = append(cells, runner.Cell{Tag: b.label + "/" + name, Config: cfg})
		}
	}
	// Progress groups by M: all bars sharing an M form one group.
	var sizes []int
	var groupM []int
	for _, b := range bars {
		if len(groupM) == 0 || groupM[len(groupM)-1] != b.m {
			groupM = append(groupM, b.m)
			sizes = append(sizes, 0)
		}
		sizes[len(sizes)-1] += len(o.Workloads)
	}
	var pg *progressGroups
	if progress != nil && !o.Quiet {
		pg = newProgressGroups(sizes, func(g int, _ []runner.CellResult) {
			fmt.Fprintf(progress, "  M=%d done\n", groupM[g])
		})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, err
	}
	out := make([]Fig10Point, len(bars))
	for bi, b := range bars {
		sum := 0.0
		for wi := range o.Workloads {
			sum += results[bi*len(o.Workloads)+wi].Result.CMRPO
		}
		out[bi] = Fig10Point{Scheme: b.label, M: b.m, L: b.l, CMRPO: sum / float64(len(o.Workloads))}
	}
	return out, nil
}

func init() {
	Register(Experiment{
		Name:        "fig10",
		Description: "DRCAT counter/depth sensitivity sweep with SCA references at T=32K/16K (paper Fig. 10)",
		Run: func(o Options, emit func(*Report) error) error {
			_, err := fig10Reports(o, emit)
			return err
		},
	})
}

// Fig10 renders the counter/depth sensitivity sweep for T = 32K and 16K.
func Fig10(w io.Writer, o Options) (map[uint32][]Fig10Point, error) {
	o.Progress = w
	return fig10Reports(o, textEmit(w))
}

// fig10Reports measures both thresholds and emits one report each. The
// options are deliberately not filled here: RunFig10's workload-subset
// substitution must see the caller's raw workload list.
func fig10Reports(o Options, emit func(*Report) error) (map[uint32][]Fig10Point, error) {
	out := map[uint32][]Fig10Point{}
	for _, threshold := range []uint32{32768, 16384} {
		points, err := RunFig10(o, threshold, o.Progress)
		if err != nil {
			return nil, err
		}
		out[threshold] = points
		rep := &Report{
			Name:  "fig10",
			Title: fmt.Sprintf("Fig. 10: CMRPO per bank for DRCAT (M=32..512, L up to 14), T=%dK", threshold/1024),
			Columns: []Column{
				{Name: "M", Type: "int", Format: "%d"},
				{Name: "scheme", Type: "string"},
				{Name: "cmrpo", Header: "CMRPO", Type: "percent"},
			},
			Meta: o.meta(),
		}
		rep.Meta.Threshold = threshold
		for _, p := range points {
			rep.Rows = append(rep.Rows, Row{p.M, p.Scheme, p.CMRPO})
		}
		if m, l := BestDRCATConfig(points); m != 0 {
			rep.Notes = append(rep.Notes,
				fmt.Sprintf("minimum-CMRPO DRCAT config: M=%d, L=%d (paper: M=64, L=11)", m, l))
		}
		if err := emit(rep); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BestDRCATConfig returns the (M, L) minimising DRCAT's CMRPO.
func BestDRCATConfig(points []Fig10Point) (m, l int) {
	best := -1.0
	for _, p := range points {
		if p.L == 0 {
			continue
		}
		if best < 0 || p.CMRPO < best {
			best, m, l = p.CMRPO, p.M, p.L
		}
	}
	return m, l
}
