package experiments

import (
	"fmt"
	"io"

	"catsim/internal/reliability"
	"catsim/internal/rng"
)

func init() {
	Register(Experiment{
		Name:        "fig1",
		Description: "PRA 5-year unsurvivability grid vs the Chipkill reference (paper Fig. 1)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := fig1Report()
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
	Register(Experiment{
		Name:        "lfsr",
		Description: "Monte-Carlo collapse of PRA's guarantee under LFSR PRNGs (paper §III-A)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := lfsrReport(o.LFSRTrials)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// Fig1Point is one bar of Fig. 1.
type Fig1Point struct {
	Threshold       uint32
	P               float64
	Unsurvivability float64
}

func fig1Report() ([]Fig1Point, *Report, error) {
	thresholds := []uint32{32768, 24576, 16384, 8192}
	ps := []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006}
	var out []Fig1Point

	rep := &Report{
		Name:    "fig1",
		Title:   "Fig. 1: PRA unsurvivability for 5 years (Chipkill reference 1e-4)",
		Columns: []Column{{Name: "p", Header: "p \\ T", Type: "float", Format: "p=%.3f"}},
		Notes:   []string{"(* = above the Chipkill 1e-4 line)"},
	}
	for _, t := range thresholds {
		rep.Columns = append(rep.Columns, Column{
			Name:   fmt.Sprintf("T%d", t),
			Header: fmt.Sprintf("%dK(Q0=%d)", t/1024, reliability.DefaultQ0(t)),
			Type:   "float",
		})
	}
	for _, p := range ps {
		row := Row{p}
		for _, t := range thresholds {
			u, err := reliability.Unsurvivability(p, t, reliability.DefaultQ0(t), 5)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, Fig1Point{Threshold: t, P: p, Unsurvivability: u})
			mark := " "
			if u > reliability.ChipkillReference {
				mark = "*" // worse than Chipkill
			}
			row = append(row, annotate(u, fmt.Sprintf("%.2e%s", u, mark)))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return out, rep, nil
}

// Fig1 evaluates PRA's 5-year unsurvivability for the paper's grid:
// refresh thresholds 32K/24K/16K/8K and p from 0.001 to 0.006, with the
// paper's Q0 per threshold, against the Chipkill reference.
func Fig1(w io.Writer) ([]Fig1Point, error) {
	out, rep, err := fig1Report()
	if err != nil {
		return nil, err
	}
	return out, rep.renderText(w)
}

// LFSRStudyResult reproduces the §III-A Monte-Carlo observation that PRA's
// guarantee collapses with a cheap LFSR-based PRNG. It reports:
//
//   - the ideal-PRNG Monte Carlo (no failures at paper parameters,
//     matching Eq. 1's ~1e-36 per window);
//   - the weak two-tap LFSR (x^16+x^8+1): most seeds produce a short
//     periodic decision stream containing no refresh decision, so failure
//     is immediate; and
//   - the phase-aware attack against a maximal LFSR: always succeeds with
//     bounded overhead, because the decision stream is deterministic.
type LFSRStudyResult struct {
	Ideal     reliability.MonteCarloResult
	WeakLFSR  reliability.MonteCarloResult
	MaxLFSR   reliability.MonteCarloResult
	SyncTotal int64
	SyncRatio float64
}

func lfsrReport(trials int) (LFSRStudyResult, *Report, error) {
	if trials < 1 {
		trials = 100
	}
	cfg := reliability.MonteCarloConfig{
		T: 16384, P: 0.005, Q0: 20, Intervals: 25, Trials: trials, Rotate: 1, SeedBase: 2024,
	}
	var res LFSRStudyResult
	var err error

	idealCfg := cfg
	idealCfg.Intervals = 2 // ideal never fails; keep the run short
	idealCfg.Trials = min(trials, 20)
	if res.Ideal, err = reliability.MonteCarloIdeal(idealCfg); err != nil {
		return res, nil, err
	}
	if res.WeakLFSR, err = reliability.MonteCarloLFSR(cfg); err != nil {
		return res, nil, err
	}
	maxCfg := cfg
	maxCfg.TapMask = rng.MaximalMask16
	maxCfg.Intervals = 2
	maxCfg.Trials = min(trials, 20)
	if res.MaxLFSR, err = reliability.MonteCarloLFSR(maxCfg); err != nil {
		return res, nil, err
	}
	res.SyncTotal, res.SyncRatio = reliability.SyncAttackAccesses(16384, 0.005, rng.MaximalMask16, 0xBEEF)

	rep := &Report{
		Name:  "lfsr",
		Title: "LFSR study (T=16K, p=0.005), cf. paper §III-A",
		Columns: []Column{
			{Name: "prng", Header: "PRNG", Type: "string"},
			{Name: "failures", Type: "int", Format: "%d"},
			{Name: "trials", Type: "int", Format: "%d"},
			{Name: "fail_prob", Header: "fail prob", Type: "float", Format: "%.2e"},
			{Name: "first_fail", Header: "first-fail interval", Type: "int", Format: "%d"},
		},
		Meta: Meta{LFSRTrials: trials},
	}
	for _, r := range []struct {
		name string
		mc   reliability.MonteCarloResult
	}{
		{"ideal (xoshiro256**)", res.Ideal},
		{"weak LFSR x^16+x^8+1", res.WeakLFSR},
		{"maximal LFSR (blind)", res.MaxLFSR},
	} {
		rep.Rows = append(rep.Rows, Row{r.name, r.mc.Failures, r.mc.Trials, r.mc.FailProb, r.mc.FirstFail})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"maximal LFSR (phase-aware attacker)\talways fails\t\t1.0\t0 (overhead %.3fx)", res.SyncRatio))
	return res, rep, nil
}

// LFSRStudyParams mirrors the paper's T=16K, p=0.005 experiment.
func LFSRStudy(w io.Writer, trials int) (LFSRStudyResult, error) {
	res, rep, err := lfsrReport(trials)
	if err != nil {
		return res, err
	}
	return res, rep.renderText(w)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
