package experiments

import (
	"fmt"
	"io"

	"catsim/internal/reliability"
	"catsim/internal/rng"
)

// Fig1Point is one bar of Fig. 1.
type Fig1Point struct {
	Threshold       uint32
	P               float64
	Unsurvivability float64
}

// Fig1 evaluates PRA's 5-year unsurvivability for the paper's grid:
// refresh thresholds 32K/24K/16K/8K and p from 0.001 to 0.006, with the
// paper's Q0 per threshold, against the Chipkill reference.
func Fig1(w io.Writer) ([]Fig1Point, error) {
	thresholds := []uint32{32768, 24576, 16384, 8192}
	ps := []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006}
	var out []Fig1Point

	tw := table(w)
	fmt.Fprintln(tw, "Fig. 1: PRA unsurvivability for 5 years (Chipkill reference 1e-4)")
	fmt.Fprint(tw, "p \\ T")
	for _, t := range thresholds {
		fmt.Fprintf(tw, "\t%dK(Q0=%d)", t/1024, reliability.DefaultQ0(t))
	}
	fmt.Fprintln(tw)
	for _, p := range ps {
		fmt.Fprintf(tw, "p=%.3f", p)
		for _, t := range thresholds {
			u, err := reliability.Unsurvivability(p, t, reliability.DefaultQ0(t), 5)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig1Point{Threshold: t, P: p, Unsurvivability: u})
			mark := " "
			if u > reliability.ChipkillReference {
				mark = "*" // worse than Chipkill
			}
			fmt.Fprintf(tw, "\t%.2e%s", u, mark)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintln(tw, "(* = above the Chipkill 1e-4 line)")
	return out, tw.Flush()
}

// LFSRStudy reproduces the §III-A Monte-Carlo observation that PRA's
// guarantee collapses with a cheap LFSR-based PRNG. It reports:
//
//   - the ideal-PRNG Monte Carlo (no failures at paper parameters,
//     matching Eq. 1's ~1e-36 per window);
//   - the weak two-tap LFSR (x^16+x^8+1): most seeds produce a short
//     periodic decision stream containing no refresh decision, so failure
//     is immediate; and
//   - the phase-aware attack against a maximal LFSR: always succeeds with
//     bounded overhead, because the decision stream is deterministic.
type LFSRStudyResult struct {
	Ideal     reliability.MonteCarloResult
	WeakLFSR  reliability.MonteCarloResult
	MaxLFSR   reliability.MonteCarloResult
	SyncTotal int64
	SyncRatio float64
}

// LFSRStudyParams mirrors the paper's T=16K, p=0.005 experiment.
func LFSRStudy(w io.Writer, trials int) (LFSRStudyResult, error) {
	if trials < 1 {
		trials = 100
	}
	cfg := reliability.MonteCarloConfig{
		T: 16384, P: 0.005, Q0: 20, Intervals: 25, Trials: trials, Rotate: 1, SeedBase: 2024,
	}
	var res LFSRStudyResult
	var err error

	idealCfg := cfg
	idealCfg.Intervals = 2 // ideal never fails; keep the run short
	idealCfg.Trials = min(trials, 20)
	if res.Ideal, err = reliability.MonteCarloIdeal(idealCfg); err != nil {
		return res, err
	}
	if res.WeakLFSR, err = reliability.MonteCarloLFSR(cfg); err != nil {
		return res, err
	}
	maxCfg := cfg
	maxCfg.TapMask = rng.MaximalMask16
	maxCfg.Intervals = 2
	maxCfg.Trials = min(trials, 20)
	if res.MaxLFSR, err = reliability.MonteCarloLFSR(maxCfg); err != nil {
		return res, err
	}
	res.SyncTotal, res.SyncRatio = reliability.SyncAttackAccesses(16384, 0.005, rng.MaximalMask16, 0xBEEF)

	tw := table(w)
	fmt.Fprintln(tw, "LFSR study (T=16K, p=0.005), cf. paper §III-A")
	fmt.Fprintln(tw, "PRNG\tfailures\ttrials\tfail prob\tfirst-fail interval")
	fmt.Fprintf(tw, "ideal (xoshiro256**)\t%d\t%d\t%.2e\t%d\n",
		res.Ideal.Failures, res.Ideal.Trials, res.Ideal.FailProb, res.Ideal.FirstFail)
	fmt.Fprintf(tw, "weak LFSR x^16+x^8+1\t%d\t%d\t%.2e\t%d\n",
		res.WeakLFSR.Failures, res.WeakLFSR.Trials, res.WeakLFSR.FailProb, res.WeakLFSR.FirstFail)
	fmt.Fprintf(tw, "maximal LFSR (blind)\t%d\t%d\t%.2e\t%d\n",
		res.MaxLFSR.Failures, res.MaxLFSR.Trials, res.MaxLFSR.FailProb, res.MaxLFSR.FirstFail)
	fmt.Fprintf(tw, "maximal LFSR (phase-aware attacker)\talways fails\t\t1.0\t0 (overhead %.3fx)\n", res.SyncRatio)
	return res, tw.Flush()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
