package experiments

import (
	"fmt"
	"io"

	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// FigX is the beyond-the-paper protection study the 2018 evaluation could
// not run: the adaptive tree (DRCAT) against its 2018 contemporaries
// (SCA, counter cache) and the modern tracker generation (CoMeT, ABACuS,
// DSAC) under adversarial attack patterns (double-sided, many-sided,
// bank-sweep — plus the paper's Gaussian kernels as the reference),
// sweeping scheme × refresh threshold × pattern on the shared runner grid.
// Every run attaches the crosstalk oracle, so the rendered table pairs
// each scheme's overhead (CMRPO, ETO) with its measured protection
// (missed-victim rate, violations): the deterministic trackers must show
// zero misses at any overhead, while DSAC's misses quantify what its
// cheapness costs under pressure.

// FigXPoint is one row of the overhead-vs-protection table.
type FigXPoint struct {
	Threshold     uint32
	Pattern       trace.Pattern
	Scheme        string
	CMRPO         float64
	ETO           float64
	MissedRate    float64
	MissedVictims int64
	Violations    int64
	RowsRefreshed int64
}

// figXSchemes is the cross-generation lineup: 2018 baselines, the paper's
// tree, and the modern trackers at comparable counter budgets.
func figXSchemes() []sim.SchemeSpec {
	return []sim.SchemeSpec{
		{Kind: mitigation.KindSCA, Counters: 128},
		{Kind: mitigation.KindCounterCache, Counters: 1024, Ways: 8},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindCoMeT, Counters: 2048, Ways: 4},
		{Kind: mitigation.KindABACuS, Counters: 1024},
		{Kind: mitigation.KindStochastic, Counters: 64},
	}
}

// FigXPatterns is the attack-pattern sweep.
func FigXPatterns() []trace.Pattern {
	return []trace.Pattern{
		trace.PatternGaussian, trace.PatternDoubleSided,
		trace.PatternManySided, trace.PatternBankSweep,
	}
}

// FigXThresholds is the refresh-threshold sweep.
func FigXThresholds() []uint32 { return []uint32{32768, 16384} }

// FigX measures and renders the protection study. The benign carrier is
// the first memory-intensive workload of the options' workload set; cells
// run on the shared worker pool and cache like every other figure (the
// no-mitigation baseline per threshold × pattern is shared by all six
// schemes), and rendered bytes are identical at every parallelism.
func FigX(w io.Writer, o Options) ([]FigXPoint, error) {
	if w == nil {
		w = io.Discard // data-only callers
	}
	if err := o.fill(); err != nil {
		return nil, err
	}
	benign, err := figXBenign(o)
	if err != nil {
		return nil, err
	}
	specs := figXSchemes()
	thresholds := FigXThresholds()
	patterns := FigXPatterns()

	type group struct {
		threshold uint32
		pattern   trace.Pattern
	}
	var groups []group
	var cells []runner.Cell
	for _, threshold := range thresholds {
		for _, pattern := range patterns {
			groups = append(groups, group{threshold, pattern})
			for _, spec := range specs {
				cfg := baseConfig(o, benign, spec, threshold)
				cfg.Attack = &sim.AttackConfig{Kernel: 0, Mode: trace.Heavy, Pattern: pattern}
				cfg.CheckProtection = true
				cells = append(cells, runner.Cell{
					Tag:    fmt.Sprintf("figx %s/T=%d/%s", spec.Label(threshold), threshold, pattern),
					Config: cfg, Pair: true,
				})
			}
		}
	}
	var pg *progressGroups
	if !o.Quiet {
		pg = newProgressGroups(uniform(len(groups), len(specs)),
			func(g int, done []runner.CellResult) {
				missed := int64(0)
				for _, r := range done {
					missed += r.Result.MissedVictimRows
				}
				fmt.Fprintf(w, "  T=%dK %s done (%d missed victims across schemes)\n",
					groups[g].threshold/1024, groups[g].pattern, missed)
			})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, err
	}

	out := make([]FigXPoint, len(cells))
	for i, r := range results {
		g := groups[i/len(specs)]
		out[i] = FigXPoint{
			Threshold:     g.threshold,
			Pattern:       g.pattern,
			Scheme:        specs[i%len(specs)].Label(g.threshold),
			CMRPO:         r.Result.CMRPO,
			ETO:           r.ETO,
			MissedRate:    r.Result.MissedVictimRate,
			MissedVictims: r.Result.MissedVictimRows,
			Violations:    r.Result.OracleViolations,
			RowsRefreshed: r.Result.Counts.RowsRefreshed,
		}
	}

	tw := table(w)
	fmt.Fprintf(tw, "Fig. X (beyond the paper): overhead vs protection under adversarial patterns (%s + Heavy attack blend)\n", benign.Name)
	fmt.Fprintln(tw, "T\tpattern\tscheme\tCMRPO\tETO\tmissed-victim rate\tmissed\tviolations\trows refreshed")
	for _, p := range out {
		fmt.Fprintf(tw, "%dK\t%s\t%s\t%s\t%s\t%s\t%d\t%d\t%d\n",
			p.Threshold/1024, p.Pattern, p.Scheme, pct(p.CMRPO), pct(p.ETO),
			pct(p.MissedRate), p.MissedVictims, p.Violations, p.RowsRefreshed)
	}
	return out, tw.Flush()
}

// figXBenign picks the attack carrier: the first memory-intensive workload
// of the configured set, falling back to the full memory-intensive list.
func figXBenign(o Options) (trace.Spec, error) {
	mi := trace.MemoryIntensive()
	if len(mi) == 0 {
		return trace.Spec{}, fmt.Errorf("experiments: no memory-intensive workload available for figx")
	}
	intensive := make(map[string]bool, len(mi))
	for _, s := range mi {
		intensive[s.Name] = true
	}
	for _, name := range o.Workloads {
		wl, err := trace.Lookup(name)
		if err != nil {
			return trace.Spec{}, err
		}
		if intensive[wl.Name] {
			return wl, nil
		}
	}
	return mi[0], nil
}
