package experiments

import (
	"fmt"
	"io"

	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// FigX is the beyond-the-paper protection study the 2018 evaluation could
// not run: the adaptive tree (DRCAT) against its 2018 contemporaries
// (SCA, counter cache) and the modern tracker generation (CoMeT, ABACuS,
// DSAC) under adversarial attack patterns (double-sided, many-sided,
// bank-sweep — plus the paper's Gaussian kernels as the reference),
// sweeping scheme × refresh threshold × pattern on the shared runner grid.
// Every run attaches the crosstalk oracle, so the rendered table pairs
// each scheme's overhead (CMRPO, ETO) with its measured protection
// (missed-victim rate, violations): the deterministic trackers must show
// zero misses at any overhead, while DSAC's misses quantify what its
// cheapness costs under pressure.

// FigXPoint is one row of the overhead-vs-protection table.
type FigXPoint struct {
	Threshold     uint32
	Pattern       trace.Pattern
	Scheme        string
	CMRPO         float64
	ETO           float64
	MissedRate    float64
	MissedVictims int64
	Violations    int64
	RowsRefreshed int64
}

// figXSchemes is the cross-generation lineup: 2018 baselines, the paper's
// tree, and the modern trackers at comparable counter budgets.
func figXSchemes() []sim.SchemeSpec {
	return []sim.SchemeSpec{
		{Kind: mitigation.KindSCA, Counters: 128},
		{Kind: mitigation.KindCounterCache, Counters: 1024, Ways: 8},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindCoMeT, Counters: 2048, Ways: 4},
		{Kind: mitigation.KindABACuS, Counters: 1024},
		{Kind: mitigation.KindStochastic, Counters: 64},
	}
}

// FigXPatterns is the attack-pattern sweep.
func FigXPatterns() []trace.Pattern {
	return []trace.Pattern{
		trace.PatternGaussian, trace.PatternDoubleSided,
		trace.PatternManySided, trace.PatternBankSweep,
	}
}

// FigXThresholds is the refresh-threshold sweep.
func FigXThresholds() []uint32 { return []uint32{32768, 16384} }

func init() {
	Register(Experiment{
		Name:        "figx",
		Description: "beyond-paper overhead-vs-protection study: scheme x threshold x adversarial pattern, oracle-checked (-scheme overrides the lineup)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := figxReport(o)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// figxReport measures the protection study. The benign carrier is the
// first memory-intensive workload of the options' workload set; cells run
// on the shared worker pool and cache like every other figure (the
// no-mitigation baseline per threshold × pattern is shared by all
// schemes), and rendered bytes are identical at every parallelism. When
// o.Schemes is set (the CLI's repeatable -scheme flag), those specs
// replace the default cross-generation lineup, so arbitrary user-defined
// configurations sweep with zero new code.
func figxReport(o Options) ([]FigXPoint, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	benign, err := figXBenign(o)
	if err != nil {
		return nil, nil, err
	}
	specs := figXSchemes()
	// labelFor names a lineup entry. The default lineup uses the figure
	// labels ("DRCAT_64"); user-supplied specs use their full spec string
	// (threshold stripped — the sweep supplies it), so two specs that
	// differ only in a parameter the figure label does not encode (depth,
	// seed, ways, levels) stay distinguishable in the table and JSON.
	labelFor := func(i int, threshold uint32) string {
		return specs[i].Label(threshold)
	}
	if len(o.Schemes) > 0 {
		specs = specs[:0]
		for _, ms := range o.Schemes {
			spec, err := sim.FromSpec(ms)
			if err != nil {
				return nil, nil, err
			}
			specs = append(specs, spec)
		}
		labelFor = func(i int, _ uint32) string {
			ms := o.Schemes[i]
			ms.Threshold = 0
			return ms.String()
		}
	}
	thresholds := FigXThresholds()
	patterns := FigXPatterns()

	type group struct {
		threshold uint32
		pattern   trace.Pattern
	}
	var groups []group
	var cells []runner.Cell
	for _, threshold := range thresholds {
		for _, pattern := range patterns {
			groups = append(groups, group{threshold, pattern})
			for si, spec := range specs {
				cfg := baseConfig(o, benign, spec, threshold)
				cfg.Attack = &sim.AttackConfig{Kernel: 0, Mode: trace.Heavy, Pattern: pattern}
				cfg.CheckProtection = true
				cells = append(cells, runner.Cell{
					Tag:    fmt.Sprintf("figx %s/T=%d/%s", labelFor(si, threshold), threshold, pattern),
					Config: cfg, Pair: true,
				})
			}
		}
	}
	var pg *progressGroups
	if o.Progress != nil && !o.Quiet {
		pg = newProgressGroups(uniform(len(groups), len(specs)),
			func(g int, done []runner.CellResult) {
				missed := int64(0)
				for _, r := range done {
					missed += r.Result.MissedVictimRows
				}
				fmt.Fprintf(o.Progress, "  T=%dK %s done (%d missed victims across schemes)\n",
					groups[g].threshold/1024, groups[g].pattern, missed)
			})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, nil, err
	}

	out := make([]FigXPoint, len(cells))
	for i, r := range results {
		g := groups[i/len(specs)]
		out[i] = FigXPoint{
			Threshold:     g.threshold,
			Pattern:       g.pattern,
			Scheme:        labelFor(i%len(specs), g.threshold),
			CMRPO:         r.Result.CMRPO,
			ETO:           r.ETO,
			MissedRate:    r.Result.MissedVictimRate,
			MissedVictims: r.Result.MissedVictimRows,
			Violations:    r.Result.OracleViolations,
			RowsRefreshed: r.Result.Counts.RowsRefreshed,
		}
	}

	rep := &Report{
		Name: "figx",
		Title: fmt.Sprintf(
			"Fig. X (beyond the paper): overhead vs protection under adversarial patterns (%s + Heavy attack blend)",
			benign.Name),
		Columns: []Column{
			{Name: "T", Type: "int"},
			{Name: "pattern", Type: "string"},
			{Name: "scheme", Type: "string"},
			{Name: "cmrpo", Header: "CMRPO", Type: "percent"},
			{Name: "eto", Header: "ETO", Type: "percent"},
			{Name: "missed_victim_rate", Header: "missed-victim rate", Type: "percent"},
			{Name: "missed", Type: "int", Format: "%d"},
			{Name: "violations", Type: "int", Format: "%d"},
			{Name: "rows_refreshed", Header: "rows refreshed", Type: "int", Format: "%d"},
		},
		Meta: o.meta(),
	}
	for _, p := range out {
		rep.Rows = append(rep.Rows, Row{
			annotate(int(p.Threshold), fmt.Sprintf("%dK", p.Threshold/1024)),
			p.Pattern.String(), p.Scheme, p.CMRPO, p.ETO,
			p.MissedRate, p.MissedVictims, p.Violations, p.RowsRefreshed,
		})
	}
	return out, rep, nil
}

// FigX renders the protection study as a text table; a nil writer keeps
// the historical data-only behaviour.
func FigX(w io.Writer, o Options) ([]FigXPoint, error) {
	if w == nil {
		w = io.Discard // data-only callers
	}
	o.Progress = w
	points, rep, err := figxReport(o)
	if err != nil {
		return nil, err
	}
	return points, rep.renderText(w)
}

// figXBenign picks the attack carrier: the first memory-intensive workload
// of the configured set, falling back to the full memory-intensive list.
func figXBenign(o Options) (trace.Spec, error) {
	mi := trace.MemoryIntensive()
	if len(mi) == 0 {
		return trace.Spec{}, fmt.Errorf("experiments: no memory-intensive workload available for figx")
	}
	intensive := make(map[string]bool, len(mi))
	for _, s := range mi {
		intensive[s.Name] = true
	}
	for _, name := range o.Workloads {
		wl, err := trace.Lookup(name)
		if err != nil {
			return trace.Spec{}, err
		}
		if intensive[wl.Name] {
			return wl, nil
		}
	}
	return mi[0], nil
}
