package experiments

import (
	"fmt"
	"io"

	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// fig8Schemes returns the scheme lineup of Figs. 8 and 9 for one refresh
// threshold: PRA (p per the threshold), SCA_64, SCA_128, PRCAT_64 and
// DRCAT_64 (CAT variants with up to 11 levels).
func fig8Schemes() []sim.SchemeSpec {
	return []sim.SchemeSpec{
		{Kind: mitigation.KindPRA},
		{Kind: mitigation.KindSCA, Counters: 64},
		{Kind: mitigation.KindSCA, Counters: 128},
		{Kind: mitigation.KindPRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
	}
}

// Fig8Data holds the full CMRPO/ETO matrix for one refresh threshold; it
// backs both Fig. 8 (CMRPO) and Fig. 9 (ETO), which the paper derives from
// the same runs.
type Fig8Data struct {
	Threshold uint32
	Schemes   []string
	Cells     map[string][]Cell // scheme label -> per-workload cells
}

// MeanCMRPO returns the workload-mean CMRPO for a scheme label.
func (d *Fig8Data) MeanCMRPO(scheme string) float64 {
	return Mean(d.Cells[scheme], func(c Cell) float64 { return c.CMRPO })
}

// MeanETO returns the workload-mean ETO for a scheme label.
func (d *Fig8Data) MeanETO(scheme string) float64 {
	return Mean(d.Cells[scheme], func(c Cell) float64 { return c.ETO })
}

// RunFig8 measures the Figs. 8/9 matrix for one refresh threshold. The
// scheme × workload grid runs on the options' worker pool; the paired
// KindNone baselines are shared through the cache, so the five schemes
// cost one baseline run per workload, not five.
func RunFig8(o Options, threshold uint32, progress io.Writer) (*Fig8Data, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	specs := fig8Schemes()
	var cells []runner.Cell
	for _, spec := range specs {
		label := spec.Label(threshold)
		for wi, name := range o.Workloads {
			wl, err := trace.Lookup(name)
			if err != nil {
				return nil, err
			}
			cfg := baseConfig(o, wl, spec, threshold)
			cfg.Seed = o.Seed + uint64(wi)
			cells = append(cells, runner.Cell{Tag: label + "/" + name, Config: cfg, Pair: true})
		}
	}
	var pg *progressGroups
	if progress != nil && !o.Quiet {
		pg = newProgressGroups(uniform(len(specs), len(o.Workloads)),
			func(g int, done []runner.CellResult) {
				mc, me := 0.0, 0.0
				for _, r := range done {
					mc += r.Result.CMRPO
					me += r.ETO
				}
				n := float64(len(done))
				fmt.Fprintf(progress, "  %s done (mean CMRPO %s, mean ETO %s)\n",
					specs[g].Label(threshold), pct(mc/n), pct(me/n))
			})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, err
	}
	data := &Fig8Data{Threshold: threshold, Cells: map[string][]Cell{}}
	i := 0
	for _, spec := range specs {
		label := spec.Label(threshold)
		data.Schemes = append(data.Schemes, label)
		for _, name := range o.Workloads {
			r := results[i]
			i++
			data.Cells[label] = append(data.Cells[label], Cell{
				Workload: name,
				Scheme:   label,
				CMRPO:    r.Result.CMRPO,
				ETO:      r.ETO,
				Counts:   r.Result.Counts,
			})
		}
	}
	return data, nil
}

func init() {
	Register(Experiment{
		Name:        "fig8",
		Description: "per-workload CMRPO matrix for the paper's scheme lineup at T=32K/16K (paper Fig. 8)",
		Run: func(o Options, emit func(*Report) error) error {
			_, err := fig89Reports("fig8", o,
				"Fig. 8: CMRPO (percent of regular refresh power)",
				func(c Cell) float64 { return c.CMRPO }, emit)
			return err
		},
	})
	Register(Experiment{
		Name:        "fig9",
		Description: "per-workload execution-time overhead from the Fig. 8 runs (paper Fig. 9)",
		Run: func(o Options, emit func(*Report) error) error {
			_, err := fig89Reports("fig9", o,
				"Fig. 9: execution time overhead (ETO)",
				func(c Cell) float64 { return c.ETO }, emit)
			return err
		},
	})
}

// Fig8 renders the CMRPO matrix (Fig. 8) for T = 32K and 16K.
func Fig8(w io.Writer, o Options) (map[uint32]*Fig8Data, error) {
	o.Progress = w
	return fig89Reports("fig8", o, "Fig. 8: CMRPO (percent of regular refresh power)",
		func(c Cell) float64 { return c.CMRPO }, textEmit(w))
}

// Fig9 renders the ETO matrix (Fig. 9) from the same runs.
func Fig9(w io.Writer, o Options) (map[uint32]*Fig8Data, error) {
	o.Progress = w
	return fig89Reports("fig9", o, "Fig. 9: execution time overhead (ETO)",
		func(c Cell) float64 { return c.ETO }, textEmit(w))
}

// fig89Reports measures both thresholds and emits one report per
// threshold as it completes, so text rendering interleaves with the
// sweep's progress lines.
func fig89Reports(name string, o Options, title string, metric func(Cell) float64, emit func(*Report) error) (map[uint32]*Fig8Data, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	out := map[uint32]*Fig8Data{}
	for _, threshold := range []uint32{32768, 16384} {
		data, err := RunFig8(o, threshold, o.Progress)
		if err != nil {
			return nil, err
		}
		out[threshold] = data
		rep := &Report{
			Name:  name,
			Title: fmt.Sprintf("%s, T=%dK", title, threshold/1024),
			Columns: []Column{
				{Name: "workload", Type: "string"},
				{Name: "suite", Type: "string"},
			},
			Meta: o.meta(),
		}
		rep.Meta.Threshold = threshold
		for _, s := range data.Schemes {
			rep.Columns = append(rep.Columns, Column{Name: s, Type: "percent"})
		}
		for wi, wname := range o.Workloads {
			row := Row{wname, suiteOf(wname)}
			for _, s := range data.Schemes {
				row = append(row, metric(data.Cells[s][wi]))
			}
			rep.Rows = append(rep.Rows, row)
		}
		mean := Row{"Mean", ""}
		for _, s := range data.Schemes {
			mean = append(mean, Mean(data.Cells[s], metric))
		}
		rep.Rows = append(rep.Rows, mean)
		if err := emit(rep); err != nil {
			return nil, err
		}
	}
	return out, nil
}
