package experiments

import (
	"fmt"
	"io"

	"catsim/internal/reliability"
)

// Headline is one verdict on a comparative claim of the paper.
type Headline struct {
	Claim string
	Pass  bool
	Note  string
}

func init() {
	Register(Experiment{
		Name:        "headlines",
		Description: "programmatic verdicts on the paper's key comparative claims",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := headlinesReport(o)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// headlinesReport evaluates the paper's key comparative claims
// programmatically and builds a verdict table: the executable form of
// EXPERIMENTS.md's summary. It runs a compact measurement set at the
// configured scale (workload subset recommended; the full-table numbers
// come from the individual figure targets).
func headlinesReport(o Options) ([]Headline, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	var out []Headline
	add := func(claim string, pass bool, note string) {
		out = append(out, Headline{Claim: claim, Pass: pass, Note: note})
	}

	// 1. Fig. 1 boundary: p=0.001 fails Chipkill at T=32K, p=0.002 passes.
	u1, err := reliability.Unsurvivability(0.001, 32768, 10, 5)
	if err != nil {
		return nil, nil, err
	}
	u2, err := reliability.Unsurvivability(0.002, 32768, 10, 5)
	if err != nil {
		return nil, nil, err
	}
	add("Eq.1: p=0.001 above Chipkill at T=32K, p=0.002 below",
		u1 > reliability.ChipkillReference && u2 < reliability.ChipkillReference,
		fmt.Sprintf("u(0.001)=%.1e u(0.002)=%.1e", u1, u2))

	// 2. LFSR collapse.
	lf, err := reliability.MonteCarloLFSR(reliability.MonteCarloConfig{
		T: 16384, P: 0.005, Q0: 20, Intervals: 2, Trials: 50, Rotate: 1, SeedBase: 11,
	})
	if err != nil {
		return nil, nil, err
	}
	add("LFSR PRNG destroys PRA's guarantee",
		lf.FailProb > reliability.ChipkillReference,
		fmt.Sprintf("weak-LFSR failure prob %.2f", lf.FailProb))

	// 3. Fig. 2 U-shape with a small-M minimum.
	fig2, err := Fig2(io.Discard, o)
	if err != nil {
		return nil, nil, err
	}
	minM := MinTotalM(fig2)
	add("Fig.2: SCA energy U-shaped, minimum at small M (paper: 128)",
		minM >= 32 && minM <= 256, fmt.Sprintf("minimum at M=%d", minM))

	// 4. Fig. 3 skew.
	fig3, err := Fig3(io.Discard, o)
	if err != nil {
		return nil, nil, err
	}
	skewOK := len(fig3) == 2
	for _, r := range fig3 {
		skewOK = skewOK && r.Summary.Top256Frac > 0.3
	}
	add("Fig.3: a small group of rows dominates bank accesses", skewOK,
		fmt.Sprintf("top-256 shares: %.0f%%, %.0f%%",
			fig3[0].Summary.Top256Frac*100, fig3[1].Summary.Top256Frac*100))

	// 5+6. Fig. 8/9 orderings at T=16K.
	data, err := RunFig8(o, 16384, io.Discard)
	if err != nil {
		return nil, nil, err
	}
	drcat, sca64 := data.MeanCMRPO("DRCAT_64"), data.MeanCMRPO("SCA_64")
	sca128, pra := data.MeanCMRPO("SCA_128"), data.MeanCMRPO("PRA_0.003")
	add("Fig.8 (T=16K): DRCAT < SCA_128 < SCA_64 and DRCAT < PRA",
		drcat < sca128 && sca128 < sca64 && drcat < pra,
		fmt.Sprintf("DRCAT %.1f%% SCA_128 %.1f%% SCA_64 %.1f%% PRA %.1f%%",
			drcat*100, sca128*100, sca64*100, pra*100))
	etoOK := data.MeanETO("DRCAT_64") < 0.01 && data.MeanETO("SCA_64") >= data.MeanETO("DRCAT_64")
	add("Fig.9 (T=16K): CAT ETO ~0, SCA_64 ETO largest", etoOK,
		fmt.Sprintf("DRCAT %.2f%% SCA_64 %.2f%%",
			data.MeanETO("DRCAT_64")*100, data.MeanETO("SCA_64")*100))

	// 7. Fig. 8 threshold collapse: SCA roughly doubles from 32K to 16K.
	data32, err := RunFig8(o, 32768, io.Discard)
	if err != nil {
		return nil, nil, err
	}
	ratio := sca64 / data32.MeanCMRPO("SCA_64")
	add("SCA CMRPO roughly doubles when T halves (paper: 11% -> 22%)",
		ratio > 1.5, fmt.Sprintf("ratio %.2f", ratio))

	rep := &Report{
		Name:  "headlines",
		Title: "Headline claims (programmatic verdicts)",
		Columns: []Column{
			{Name: "claim", Type: "string"},
			{Name: "verdict", Type: "string"},
			{Name: "measured", Type: "string"},
		},
		Meta: o.meta(),
	}
	for _, h := range out {
		verdict := "PASS"
		if !h.Pass {
			verdict = "FAIL"
		}
		rep.Rows = append(rep.Rows, Row{h.Claim, verdict, h.Note})
	}
	return out, rep, nil
}

// Headlines renders the claim verdicts as a text table.
func Headlines(w io.Writer, o Options) ([]Headline, error) {
	out, rep, err := headlinesReport(o)
	if err != nil {
		return nil, err
	}
	return out, rep.renderText(w)
}
