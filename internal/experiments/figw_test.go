package experiments

import (
	"strings"
	"testing"

	"catsim/internal/mitigation"
)

// TestFillRoutesOpenWorkloadNames: open-loop preset names given through
// the ordinary -workload flag land in OpenWorkloads, closed names stay in
// Workloads, and typos list both name sets.
func TestFillRoutesOpenWorkloadNames(t *testing.T) {
	o := Options{Scale: 0.1, Workloads: []string{"ol-poisson", "black", "ol-bursty"}}
	if err := o.fill(); err != nil {
		t.Fatal(err)
	}
	if len(o.Workloads) != 1 || o.Workloads[0] != "black" {
		t.Errorf("closed workloads = %v, want [black]", o.Workloads)
	}
	if len(o.OpenWorkloads) != 2 || o.OpenWorkloads[0] != "ol-poisson" || o.OpenWorkloads[1] != "ol-bursty" {
		t.Errorf("open workloads = %v, want [ol-poisson ol-bursty]", o.OpenWorkloads)
	}

	// A purely open-loop selection leaves the closed figures the full set.
	o = Options{Scale: 0.1, Workloads: []string{"ol-diurnal"}}
	if err := o.fill(); err != nil {
		t.Fatal(err)
	}
	if len(o.Workloads) == 0 {
		t.Error("purely open-loop selection emptied the closed workload set")
	}

	o = Options{Scale: 0.1, Workloads: []string{"nope"}}
	err := o.fill()
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	for _, want := range []string{"black", "ol-poisson", "nope"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestFigWRespectsSelection: the OpenWorkloads selection and the -scheme
// override both narrow the sweep, and the attacker sweep behaves — the
// attacker column is zero exactly on the benign rows.
func TestFigWRespectsSelection(t *testing.T) {
	skipIfShort(t)
	o := para(4)
	o.Workloads = []string{"ol-poisson"}
	o.Schemes = []mitigation.SchemeSpec{mustParse(t, "drcat:counters=64,levels=11")}
	pts, err := FigW(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(FigWAttackerFracs()); len(pts) != want {
		t.Fatalf("%d points, want %d (1 workload x %d fractions x 1 scheme)", len(pts), want, want)
	}
	for _, p := range pts {
		if p.Workload != "ol-poisson" {
			t.Errorf("unexpected workload %q in the sweep", p.Workload)
		}
		if !strings.Contains(p.Scheme, "drcat") && !strings.Contains(p.Scheme, "DRCAT") {
			t.Errorf("scheme %q does not reflect the -scheme override", p.Scheme)
		}
		if (p.AttackerFrac == 0) != (p.AttackerActs == 0) {
			t.Errorf("attacker frac %g with %d attacker acts", p.AttackerFrac, p.AttackerActs)
		}
		if p.RowsRefreshed < p.BenignRowsRefreshed {
			t.Errorf("benign refresh rows %d exceed the total %d", p.BenignRowsRefreshed, p.RowsRefreshed)
		}
	}
}
