package experiments

import (
	"bytes"
	"strings"
	"testing"

	"catsim/internal/mitigation"
)

// Render-path tests: the full figure wrappers (both thresholds, formatted
// tables) at minimal scale, checking the output carries the paper-shaped
// rows and series.

func micro() Options {
	return Options{Scale: 0.02, Seed: 3, Workloads: []string{"black"}, Quiet: true}
}

func TestFig8RenderBothThresholds(t *testing.T) {
	var buf bytes.Buffer
	data, err := Fig8(&buf, micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 2 || data[32768] == nil || data[16384] == nil {
		t.Fatalf("missing thresholds: %v", data)
	}
	out := buf.String()
	for _, want := range []string{"T=32K", "T=16K", "DRCAT_64", "PRA_0.002", "PRA_0.003", "Mean", "black"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig9RenderSharesRuns(t *testing.T) {
	var buf bytes.Buffer
	data, err := Fig9(&buf, micro())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "execution time overhead") {
		t.Error("output missing ETO title")
	}
	for _, d := range data {
		for _, s := range d.Schemes {
			if len(d.Cells[s]) != 1 {
				t.Errorf("scheme %s has %d cells", s, len(d.Cells[s]))
			}
		}
	}
}

func TestFig10PRCATVariant(t *testing.T) {
	skipIfShort(t)
	o := micro()
	points, err := RunFig10Policy(o, 32768, mitigation.KindPRCAT, nil)
	if err != nil {
		t.Fatal(err)
	}
	foundPRCAT := false
	for _, p := range points {
		if strings.HasPrefix(p.Scheme, "PRCAT") {
			foundPRCAT = true
		}
		if strings.HasPrefix(p.Scheme, "DRCAT") {
			t.Fatalf("DRCAT point in PRCAT sweep: %+v", p)
		}
	}
	if !foundPRCAT {
		t.Fatal("no PRCAT points")
	}
}

func TestFig12RenderAllThresholds(t *testing.T) {
	var buf bytes.Buffer
	points, err := Fig12(&buf, micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 16 { // 4 thresholds x 4 schemes
		t.Fatalf("points = %d, want 16", len(points))
	}
	out := buf.String()
	for _, want := range []string{"64K", "8K", "PRA_0.001", "PRA_0.005", "DRCAT_128"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
