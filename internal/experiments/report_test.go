package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Name:  "sample",
		Title: "Sample: a little of everything",
		Columns: []Column{
			{Name: "name", Type: "string"},
			{Name: "count", Type: "int", Format: "%d"},
			{Name: "ratio", Type: "percent"},
			{Name: "T", Type: "int"},
		},
		Rows: []Row{
			{"alpha", int64(3), 0.125, annotate(32768, "32K")},
			{"beta", int64(40), 0.5, annotate(16384, "16K")},
		},
		Notes: []string{"note\twith\ttabs"},
		Meta:  Meta{Scale: 0.25, Seed: 1, Threshold: 32768},
	}
}

func TestReportTextRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().renderText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Sample: a little of everything",
		"name", "count", "ratio",
		"alpha", "12.50%", "32K",
		"beta", "50.00%", "16K",
		"note", "tabs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// tabwriter alignment: every line of the table block shares column
	// positions; just assert no raw tabs leak through.
	if strings.Contains(out, "\t") {
		t.Error("rendered text still contains raw tabs")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := sampleReport()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	// Rows marshal as column-keyed objects with machine values (the
	// annotated threshold reduces to its number).
	var probe []map[string]any
	if err := json.Unmarshal([]byte("["+string(blob)+"]"), &probe); err != nil {
		t.Fatal(err)
	}
	rows := probe[0]["rows"].([]any)
	first := rows[0].(map[string]any)
	if first["name"] != "alpha" || first["ratio"] != 0.125 || first["T"] != float64(32768) {
		t.Errorf("JSON row = %v", first)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	// Format is a text-rendering detail and deliberately stays off the
	// wire; everything else round-trips.
	wantCols := make([]Column, len(rep.Columns))
	copy(wantCols, rep.Columns)
	for i := range wantCols {
		wantCols[i].Format = ""
	}
	if back.Name != rep.Name || back.Title != rep.Title || !reflect.DeepEqual(back.Columns, wantCols) {
		t.Errorf("round trip lost header fields: %+v", back)
	}
	if len(back.Rows) != 2 {
		t.Fatalf("rows = %d", len(back.Rows))
	}
	// int-typed columns decode back to int64.
	if back.Rows[0][1] != int64(3) || back.Rows[0][3] != int64(32768) {
		t.Errorf("decoded row = %#v", back.Rows[0])
	}
	if !reflect.DeepEqual(back.Meta, rep.Meta) {
		t.Errorf("meta round trip: %+v != %+v", back.Meta, rep.Meta)
	}
}

func TestCSVRenderer(t *testing.T) {
	var buf bytes.Buffer
	r := NewCSVRenderer(&buf)
	if err := r.Report(sampleReport()); err != nil {
		t.Fatal(err)
	}
	if err := r.Report(sampleReport()); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"# sample: Sample: a little of everything",
		"name,count,ratio,T",
		"alpha,3,0.125,32768",
		"beta,40,0.5,16384",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# sample:"); got != 2 {
		t.Errorf("expected 2 CSV blocks, found %d", got)
	}
	if !strings.Contains(out, "\n\n# sample:") {
		t.Error("CSV blocks should be blank-line separated")
	}
}

func TestJSONRendererStreamsToArray(t *testing.T) {
	var buf bytes.Buffer
	r := NewJSONRenderer(&buf)
	if err := r.Report(sampleReport()); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	var reports []Report
	if err := json.Unmarshal(buf.Bytes(), &reports); err != nil {
		t.Fatalf("decode []Report: %v\n%s", err, buf.String())
	}
	if len(reports) != 1 || reports[0].Name != "sample" {
		t.Errorf("reports = %+v", reports)
	}
	// Empty stream must still be a valid (empty) array.
	buf.Reset()
	if err := NewJSONRenderer(&buf).Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty stream = %q, want []", buf.String())
	}
}
