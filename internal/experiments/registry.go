package experiments

import (
	"fmt"
	"sort"
)

// The experiment registry: every generator self-registers an Experiment
// from its file's init, and every caller — catsim.ReproduceAll, the
// cmd/experiments CLI, tests — iterates the registry instead of carrying
// its own target list, so a new generator is reachable everywhere the
// moment it registers.

// RunFunc measures one experiment and emits its report(s) as each
// completes, which lets text rendering interleave with the generator's
// live progress lines exactly as the historical output did.
type RunFunc func(o Options, emit func(*Report) error) error

// Experiment is one registered generator.
type Experiment struct {
	// Name is the CLI target ("fig8", "ablations", ...).
	Name string
	// Description is the one-line summary shown by -list.
	Description string
	// Run measures and emits the experiment's reports.
	Run RunFunc
}

var registry = map[string]Experiment{}

// canonicalOrder is the presentation order of the suite (the paper's
// table/figure order, then the beyond-paper studies). The registry test
// asserts it matches the registered set exactly, in both directions.
var canonicalOrder = []string{
	"table1", "table2", "fig1", "lfsr", "fig2", "fig3", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "figx", "figt", "figw", "ablations",
	"headlines",
}

// Register installs a generator; duplicate or anonymous registrations are
// programming errors and panic.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("experiments: Register needs a name and a run function")
	}
	if _, dup := registry[e.Name]; dup {
		panic("experiments: duplicate experiment " + e.Name)
	}
	registry[e.Name] = e
}

func rank(name string) int {
	for i, n := range canonicalOrder {
		if n == name {
			return i
		}
	}
	return len(canonicalOrder)
}

// Experiments returns every registered generator in canonical order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := rank(out[i].Name), rank(out[j].Name)
		if ri != rj {
			return ri < rj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the registered experiment names in canonical order.
func Names() []string {
	es := Experiments()
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.Name
	}
	return names
}

// Lookup finds a registered generator by name.
func Lookup(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// RunExperiment measures one experiment and streams its reports into the
// renderer (the caller flushes the renderer once all targets ran).
func RunExperiment(name string, o Options, r Renderer) error {
	e, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (registered: %v)", name, Names())
	}
	return e.Run(o, r.Report)
}

// RunAll runs every registered experiment in canonical order into the
// renderer. Callers wanting cross-experiment run sharing install a cache
// in o (ReproduceAll and the CLI both do).
func RunAll(o Options, r Renderer) error {
	for _, e := range Experiments() {
		if err := e.Run(o, r.Report); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
