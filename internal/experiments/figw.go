package experiments

import (
	"fmt"
	"io"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

// FigW is the open-loop multi-tenant study: mitigation schemes under
// datacenter-style arrival processes (Poisson, bursty on/off, diurnal
// phases) over a cohort of thousands of Zipf-skewed tenants, with and
// without an embedded attacker tenant. Where the paper's closed-loop
// methodology measures overhead for co-scheduled SPEC cores, this sweep
// asks the hosting question instead: when one tenant of thousands turns
// hostile, how much refresh work does each scheme spend, and how much of
// it lands in innocent tenants' rows (the per-tenant attribution that
// sim.Result.Tenants carries).

// FigWPoint is one (workload, attacker fraction, scheme) measurement.
type FigWPoint struct {
	Workload     string
	AttackerFrac float64
	Scheme       string
	CMRPO        float64
	ETO          float64
	// RowsRefreshed is the scheme's total victim-refresh row count.
	RowsRefreshed int64
	// AttackerActs counts activations attributed to the attacker tenant's
	// own rows (0 when no attacker is embedded).
	AttackerActs int64
	// BenignRowsRefreshed counts refresh rows that landed in benign
	// tenants' spans — the collateral refresh work innocent tenants absorb.
	BenignRowsRefreshed int64
	// TenantsHit is the number of distinct tenants whose rows the scheme
	// refreshed.
	TenantsHit int
}

// figWSchemes is the open-loop lineup: the 2018 baseline, the paper's
// adaptive tree, and a modern shared-counter tracker.
func figWSchemes() []sim.SchemeSpec {
	return []sim.SchemeSpec{
		{Kind: mitigation.KindSCA, Counters: 128},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindCoMeT, Counters: 2048, Ways: 4},
	}
}

// FigWAttackerFracs is the attacker-fraction sweep: a benign cohort and a
// cohort where one tenant issues 10% of all arrivals as a double-sided
// hammer blend.
func FigWAttackerFracs() []float64 { return []float64{0, 0.1} }

// figWWorkloads resolves the arrival-process sweep: the options' open-loop
// selection, defaulting to the three non-attack presets (the attacker
// sweep embeds its own).
func figWWorkloads(o Options) ([]workload.Config, error) {
	names := o.OpenWorkloads
	if len(names) == 0 {
		names = []string{"ol-poisson", "ol-bursty", "ol-diurnal"}
	}
	out := make([]workload.Config, 0, len(names))
	for _, name := range names {
		ol, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		out = append(out, ol)
	}
	return out, nil
}

func init() {
	Register(Experiment{
		Name:        "figw",
		Description: "open-loop multi-tenant study: scheme x arrival process x attacker fraction, per-tenant attribution (-scheme overrides the lineup)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := figwReport(o)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// figwConfig sizes one open-loop cell: the request budget covers the
// scaled auto-refresh interval(s) at the workload's mean arrival rate, so
// trigger rates stay representative exactly like the closed-loop figures.
func figwConfig(o Options, ol workload.Config, frac float64, spec sim.SchemeSpec, threshold uint32) sim.Config {
	intervals := o.Intervals
	if intervals < 1 {
		intervals = 1
	}
	if frac > 0 {
		ol.Cohort.Attacker = &workload.AttackerSpec{
			Fraction: frac, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided,
		}
	}
	seconds := dram.RefreshIntervalNS() * o.Scale * 1e-9 * float64(intervals)
	ol.Requests = int(ol.Arrival.MeanRateRPS() * seconds)
	if ol.Requests < 2000 {
		ol.Requests = 2000
	}
	geom := dram.Default2Channel()
	if o.Geometry != nil {
		geom = o.Geometry.Geometry()
	}
	return sim.Config{
		Geometry:       geom,
		Timing:         dram.DDR3_1600(),
		OpenLoop:       &ol,
		Scheme:         spec,
		Threshold:      scaledThreshold(threshold, o.Scale),
		ThresholdScale: o.Scale,
		IntervalNS:     dram.RefreshIntervalNS() * o.Scale,
		Seed:           o.Seed,
	}
}

// figwReport measures the open-loop study on the shared runner grid
// (paired cells, shared KindNone baselines, byte-identical at every
// parallelism). o.Schemes overrides the lineup like figx.
func figwReport(o Options) ([]FigWPoint, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	workloads, err := figWWorkloads(o)
	if err != nil {
		return nil, nil, err
	}
	specs := figWSchemes()
	labelFor := func(i int, threshold uint32) string {
		return specs[i].Label(threshold)
	}
	if len(o.Schemes) > 0 {
		specs = specs[:0]
		for _, ms := range o.Schemes {
			spec, err := sim.FromSpec(ms)
			if err != nil {
				return nil, nil, err
			}
			specs = append(specs, spec)
		}
		labelFor = func(i int, _ uint32) string {
			ms := o.Schemes[i]
			ms.Threshold = 0
			return ms.String()
		}
	}
	const threshold = uint32(32768)
	fracs := FigWAttackerFracs()

	type group struct {
		ol   workload.Config
		frac float64
	}
	var groups []group
	var cells []runner.Cell
	for _, ol := range workloads {
		for _, frac := range fracs {
			groups = append(groups, group{ol, frac})
			for si, spec := range specs {
				cells = append(cells, runner.Cell{
					Tag: fmt.Sprintf("figw %s/%s/attacker=%g%%",
						labelFor(si, threshold), ol.Name, frac*100),
					Config: figwConfig(o, ol, frac, spec, threshold),
					Pair:   true,
				})
			}
		}
	}
	var pg *progressGroups
	if o.Progress != nil && !o.Quiet {
		pg = newProgressGroups(uniform(len(groups), len(specs)),
			func(g int, done []runner.CellResult) {
				var benign int64
				for _, r := range done {
					for _, ts := range r.Result.Tenants {
						if !ts.Attacker {
							benign += ts.RowsRefreshed
						}
					}
				}
				fmt.Fprintf(o.Progress, "  %s attacker=%g%% done (%d benign rows refreshed across schemes)\n",
					groups[g].ol.Name, groups[g].frac*100, benign)
			})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, nil, err
	}

	out := make([]FigWPoint, len(cells))
	for i, r := range results {
		g := groups[i/len(specs)]
		p := FigWPoint{
			Workload:      g.ol.Name,
			AttackerFrac:  g.frac,
			Scheme:        labelFor(i%len(specs), threshold),
			CMRPO:         r.Result.CMRPO,
			ETO:           r.ETO,
			RowsRefreshed: r.Result.Counts.RowsRefreshed,
		}
		for _, ts := range r.Result.Tenants {
			if ts.Attacker {
				p.AttackerActs = ts.Acts
			} else {
				p.BenignRowsRefreshed += ts.RowsRefreshed
			}
			if ts.RowsRefreshed > 0 {
				p.TenantsHit++
			}
		}
		out[i] = p
	}

	rep := &Report{
		Name:  "figw",
		Title: "Fig. W (beyond the paper): open-loop multi-tenant cohorts under arrival processes, with per-tenant attribution",
		Columns: []Column{
			{Name: "workload", Type: "string"},
			{Name: "attacker", Type: "percent"},
			{Name: "scheme", Type: "string"},
			{Name: "cmrpo", Header: "CMRPO", Type: "percent"},
			{Name: "eto", Header: "ETO", Type: "percent"},
			{Name: "rows_refreshed", Header: "rows refreshed", Type: "int", Format: "%d"},
			{Name: "attacker_acts", Header: "attacker acts", Type: "int", Format: "%d"},
			{Name: "benign_rows_refreshed", Header: "benign rows refreshed", Type: "int", Format: "%d"},
			{Name: "tenants_hit", Header: "tenants hit", Type: "int", Format: "%d"},
		},
		Meta: o.meta(),
	}
	for _, p := range out {
		rep.Rows = append(rep.Rows, Row{
			p.Workload, p.AttackerFrac, p.Scheme, p.CMRPO, p.ETO,
			p.RowsRefreshed, p.AttackerActs, p.BenignRowsRefreshed, p.TenantsHit,
		})
	}
	return out, rep, nil
}

// FigW renders the open-loop study as a text table; a nil writer keeps
// the data-only behaviour.
func FigW(w io.Writer, o Options) ([]FigWPoint, error) {
	if w == nil {
		w = io.Discard
	}
	o.Progress = w
	points, rep, err := figwReport(o)
	if err != nil {
		return nil, err
	}
	return points, rep.renderText(w)
}
