package experiments

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// The golden-file tests lock the text renderer's bytes to the output the
// hand-written per-figure renderers produced before the Report refactor:
// every generator, run at a fixed small scale, must reproduce its checked-
// in testdata/golden/<name>.golden byte for byte — progress lines, table
// alignment, trailing notes and all. Regenerate deliberately with
//
//	go test ./internal/experiments -run TestGoldenText -update
//
// after an intentional output change (and eyeball the diff).
var updateGolden = flag.Bool("update", false, "rewrite the golden files")

func goldenOptions() Options {
	return Options{Scale: 0.05, Seed: 1, Workloads: []string{"black", "comm1"}}
}

// goldenGenerators drives every generator through its text wrapper — the
// same entry points ReproduceAll and the CLI's text format use.
func goldenGenerators() []struct {
	name string
	run  func(w io.Writer) error
} {
	o := goldenOptions
	return []struct {
		name string
		run  func(w io.Writer) error
	}{
		{"table1", func(w io.Writer) error { return Table1(w) }},
		{"table2", func(w io.Writer) error { _, err := Table2(w); return err }},
		{"fig1", func(w io.Writer) error { _, err := Fig1(w); return err }},
		{"lfsr", func(w io.Writer) error { _, err := LFSRStudy(w, 50); return err }},
		{"fig2", func(w io.Writer) error { _, err := Fig2(w, o()); return err }},
		{"fig3", func(w io.Writer) error { _, err := Fig3(w, o()); return err }},
		{"fig8", func(w io.Writer) error { _, err := Fig8(w, o()); return err }},
		{"fig9", func(w io.Writer) error { _, err := Fig9(w, o()); return err }},
		{"fig10", func(w io.Writer) error { _, err := Fig10(w, o()); return err }},
		{"fig11", func(w io.Writer) error { _, err := Fig11(w, o()); return err }},
		{"fig12", func(w io.Writer) error { _, err := Fig12(w, o()); return err }},
		{"fig13", func(w io.Writer) error { _, err := Fig13(w, o()); return err }},
		{"figx", func(w io.Writer) error { _, err := FigX(w, o()); return err }},
		{"figt", func(w io.Writer) error { _, err := FigT(w, o()); return err }},
		{"figw", func(w io.Writer) error { _, err := FigW(w, o()); return err }},
		{"ablations", func(w io.Writer) error {
			if _, err := AblationLadders(w, o()); err != nil {
				return err
			}
			if _, err := AblationWeightBits(w, o()); err != nil {
				return err
			}
			if _, err := AblationPreSplit(w, o()); err != nil {
				return err
			}
			_, err := AblationCounterCache(w, o())
			return err
		}},
		{"headlines", func(w io.Writer) error { _, err := Headlines(w, o()); return err }},
	}
}

func TestGoldenText(t *testing.T) {
	skipIfShort(t)
	for _, g := range goldenGenerators() {
		t.Run(g.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := g.run(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", g.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s",
					path, firstDiffContext(buf.Bytes(), want), firstDiffContext(want, buf.Bytes()))
			}
		})
	}
}

// firstDiffContext returns a window of a around its first difference from
// b, keeping failure output readable for multi-KB tables.
func firstDiffContext(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	hi := i + 200
	if hi > len(a) {
		hi = len(a)
	}
	return string(a[lo:hi])
}
