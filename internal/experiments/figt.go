package experiments

import (
	"fmt"
	"io"

	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// FigT is the time-series study the end-of-run aggregates could never
// show: the run sliced into fixed-duration epochs by the simulation
// engine, exposing DRCAT's adaptation dynamics (tree occupancy growing
// from the pre-split shape, reconfigurations tracking workload drift) and
// each tracker's missed-victim exposure as the phases shift — benign
// warmup for the first half of the run, then a double-sided attack blend
// switching on at the midpoint. Every run attaches the crosstalk oracle,
// so the epoch rows show *when* protection is earned or lost, not just
// whether the totals came out right.

// FigTPoint is one epoch of one scheme's trajectory.
type FigTPoint struct {
	Scheme           string
	Epoch            int
	EndNS            float64
	Activations      int64
	RowsRefreshed    int64
	Occupancy        float64 // live/cap tracking entries, 0 when unreported
	TreeDepth        int
	Reconfigs        int64
	AvgReadLatencyNS float64
	MissedVictims    int64 // cumulative at epoch end
}

// FigTThreshold is the refresh threshold of the study (the paper's
// headline 32K point).
const FigTThreshold = 32768

// figTEpochsPerInterval slices each auto-refresh interval into this many
// epochs.
const figTEpochsPerInterval = 4

// figTSchemes is the default lineup: the static assignment (no
// adaptation), the paper's adaptive tree, a modern sketch tracker, and
// the probabilistic tracker whose missed-victim trajectory shows what
// onset costs a scheme with no guarantee.
func figTSchemes() []sim.SchemeSpec {
	return []sim.SchemeSpec{
		{Kind: mitigation.KindSCA, Counters: 128},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindCoMeT, Counters: 2048, Ways: 4},
		{Kind: mitigation.KindStochastic, Counters: 64},
	}
}

func init() {
	Register(Experiment{
		Name:        "figt",
		Description: "beyond-paper time-series study: per-epoch adaptation dynamics and missed-victim exposure across attack onset (-scheme overrides the lineup)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := figtReport(o)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// figtReport measures the trajectories. The benign carrier is the first
// memory-intensive workload of the options' workload set (as in figx);
// each scheme is one oracle-checked engine run with epochs of a quarter
// auto-refresh interval and the attack blend switching on halfway
// through. Cells run on the shared worker pool and cache; rendered bytes
// are identical at every parallelism. o.Schemes (the CLI's repeatable
// -scheme flag) replaces the default lineup exactly as it does for figx.
func figtReport(o Options) ([]FigTPoint, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	benign, err := figXBenign(o)
	if err != nil {
		return nil, nil, err
	}
	specs := figTSchemes()
	labelFor := func(i int) string { return specs[i].Label(FigTThreshold) }
	if len(o.Schemes) > 0 {
		specs = specs[:0]
		for _, ms := range o.Schemes {
			spec, err := sim.FromSpec(ms)
			if err != nil {
				return nil, nil, err
			}
			specs = append(specs, spec)
		}
		labelFor = func(i int) string {
			ms := o.Schemes[i]
			ms.Threshold = 0
			return ms.String()
		}
	}

	cells := make([]runner.Cell, len(specs))
	for i, spec := range specs {
		cfg := baseConfig(o, benign, spec, FigTThreshold)
		cfg.Attack = &sim.AttackConfig{Kernel: 0, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided}
		cfg.AttackOnsetFrac = 0.5
		cfg.CheckProtection = true
		cfg.EpochNS = cfg.IntervalNS / figTEpochsPerInterval
		cells[i] = runner.Cell{
			Tag:    fmt.Sprintf("figt %s/T=%d", labelFor(i), FigTThreshold),
			Config: cfg,
		}
	}
	var pg *progressGroups
	if o.Progress != nil && !o.Quiet {
		pg = newProgressGroups(uniform(len(specs), 1),
			func(g int, done []runner.CellResult) {
				r := done[0].Result
				fmt.Fprintf(o.Progress, "  %s done (%d epochs, %d missed victims)\n",
					labelFor(g), len(r.Epochs), r.MissedVictimRows)
			})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, nil, err
	}

	var out []FigTPoint
	for i, r := range results {
		for _, s := range r.Result.Epochs {
			p := FigTPoint{
				Scheme:           labelFor(i),
				Epoch:            s.Epoch,
				EndNS:            s.EndNS,
				Activations:      s.Activations,
				RowsRefreshed:    s.RowsRefreshed,
				TreeDepth:        s.TreeDepth,
				Reconfigs:        s.Reconfigs,
				AvgReadLatencyNS: s.AvgReadLatencyNS,
				MissedVictims:    s.MissedVictimRows,
			}
			if s.CountersCap > 0 {
				p.Occupancy = float64(s.CountersLive) / float64(s.CountersCap)
			}
			out = append(out, p)
		}
	}

	rep := &Report{
		Name: "figt",
		Title: fmt.Sprintf(
			"Fig. T (beyond the paper): adaptation dynamics per epoch (%s, double-sided blend from the run midpoint, T=%d)",
			benign.Name, FigTThreshold),
		Columns: []Column{
			{Name: "scheme", Type: "string"},
			{Name: "epoch", Type: "int", Format: "%d"},
			{Name: "t_ms", Header: "t(ms)", Type: "float", Format: "%.2f"},
			{Name: "acts", Type: "int", Format: "%d"},
			{Name: "rows_refreshed", Header: "rows refreshed", Type: "int", Format: "%d"},
			{Name: "occupancy", Type: "percent"},
			{Name: "depth", Type: "int", Format: "%d"},
			{Name: "reconfigs", Type: "int", Format: "%d"},
			{Name: "read_ns", Header: "read(ns)", Type: "float", Format: "%.1f"},
			{Name: "missed", Type: "int", Format: "%d"},
		},
		Meta: o.meta(),
	}
	rep.Meta.Threshold = FigTThreshold
	for _, p := range out {
		rep.Rows = append(rep.Rows, Row{
			p.Scheme, p.Epoch, p.EndNS / 1e6, p.Activations, p.RowsRefreshed,
			p.Occupancy, p.TreeDepth, p.Reconfigs, p.AvgReadLatencyNS, p.MissedVictims,
		})
	}
	return out, rep, nil
}

// FigT renders the time-series study as a text table; a nil writer keeps
// the data-only behaviour.
func FigT(w io.Writer, o Options) ([]FigTPoint, error) {
	if w == nil {
		w = io.Discard // data-only callers
	}
	o.Progress = w
	points, rep, err := figtReport(o)
	if err != nil {
		return nil, err
	}
	return points, rep.renderText(w)
}
