package experiments

import (
	"fmt"
	"io"

	"catsim/internal/core"
	"catsim/internal/mitigation"
	"catsim/internal/rng"
	"catsim/internal/runner"
	"catsim/internal/trace"
)

// Ablations beyond the paper's own sweeps (DESIGN.md §6). They isolate the
// design choices the paper calls out — the split-threshold model (§IV-D),
// the DRCAT weight-register width (§V-B) and the pre-split depth λ (§IV-C)
// — by replaying identical access streams through tree variants and
// counting refreshed rows (the CMRPO driver) and SRAM traffic (the dynamic
// energy and latency driver).

func init() {
	Register(Experiment{
		Name:        "ablations",
		Description: "beyond-paper design-choice ablations: ladder model, weight bits, pre-split depth, counter-cache baseline",
		Run: func(o Options, emit func(*Report) error) error {
			if _, rep, err := ablationLaddersReport(o); err != nil {
				return err
			} else if err := emit(rep); err != nil {
				return err
			}
			if _, rep, err := ablationWeightBitsReport(o); err != nil {
				return err
			} else if err := emit(rep); err != nil {
				return err
			}
			if _, rep, err := ablationPreSplitReport(o); err != nil {
				return err
			} else if err := emit(rep); err != nil {
				return err
			}
			// The counter-cache comparison runs full simulations per
			// workload; default to the CLI's historical 4-workload subset
			// when the caller did not restrict the set.
			ccOpts := o
			if len(ccOpts.Workloads) == 0 {
				ccOpts.Workloads = []string{"black", "comm1", "face", "libq"}
			}
			_, rep, err := ablationCounterCacheReport(ccOpts)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// AblationPoint is one variant measurement.
type AblationPoint struct {
	Variant       string
	RowsRefreshed int64
	RefreshEvents int64
	SRAMPerAccess float64
	Reconfigs     int64
}

// replayStream drives a fresh tree with a seeded mixed stream (one hot
// region that moves once, over uniform background) and returns the
// measurement. The stream mimics the biased-with-phase-change patterns the
// CAT design targets.
func replayStream(cfg core.Config, seed uint64, n int) (AblationPoint, error) {
	tree, err := core.NewTree(cfg)
	if err != nil {
		return AblationPoint{}, err
	}
	src := rng.NewXoshiro256(seed)
	hot := rng.Intn(src, cfg.Rows)
	for i := 0; i < n; i++ {
		if i == n/2 {
			hot = rng.Intn(src, cfg.Rows) // phase change
			tree.OnIntervalBoundary()
		}
		row := hot
		if rng.Intn(src, 10) >= 7 {
			row = rng.Intn(src, cfg.Rows)
		}
		tree.Access(row)
	}
	if err := tree.CheckInvariants(); err != nil {
		return AblationPoint{}, err
	}
	s := tree.Stats()
	return AblationPoint{
		RowsRefreshed: s.RowsRefreshed,
		RefreshEvents: s.RefreshEvents,
		SRAMPerAccess: float64(s.SRAMAccesses) / float64(s.Accesses),
		Reconfigs:     s.Reconfigs,
	}, nil
}

// AblationLadders compares the three split-threshold models: the published
// canonical profile (the default), the geometric ladder generalising the
// paper's worked example, and the uniform ladder (no adaptive splitting
// below T — an SCA-shaped tree).
func ablationLaddersReport(o Options) ([]AblationPoint, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	const rows, m, l = 1 << 16, 64, 11
	threshold := scaledThreshold(32768, o.Scale)
	n := int(2 * CPUCyclesPerInterval / 60 * o.Scale)
	base := core.Config{Rows: rows, Counters: m, MaxLevels: l,
		RefreshThreshold: threshold, Policy: core.DRCAT}

	variants := []struct {
		name   string
		ladder []uint32
	}{
		{"published profile (default)", core.NewLadder(m, l, threshold)},
		{"geometric T/2^(L-1-l)", core.GeometricLadder(l, threshold)},
		{"uniform (all rungs at T)", core.UniformLadder(l, threshold)},
	}
	out, err := runner.Map(o.Context, o.Parallel, len(variants),
		func(i int) (AblationPoint, error) {
			cfg := base
			cfg.Ladder = variants[i].ladder
			p, err := replayStream(cfg, o.Seed, n)
			if err != nil {
				return AblationPoint{}, err
			}
			p.Variant = variants[i].name
			return p, nil
		})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Name:  "ablations/ladders",
		Title: "Ablation: split-threshold ladder model (DRCAT_64, L=11, T=32K)",
		Columns: []Column{
			{Name: "ladder", Type: "string"},
			{Name: "rows_refreshed", Header: "rows refreshed", Type: "int", Format: "%d"},
			{Name: "refresh_events", Header: "refresh events", Type: "int", Format: "%d"},
			{Name: "sram_per_access", Header: "SRAM/access", Type: "float", Format: "%.2f"},
		},
		Meta: o.meta(),
	}
	for _, p := range out {
		rep.Rows = append(rep.Rows, Row{p.Variant, p.RowsRefreshed, p.RefreshEvents, p.SRAMPerAccess})
	}
	return out, rep, nil
}

// AblationLadders renders the ladder-model ablation as a text table.
func AblationLadders(w io.Writer, o Options) ([]AblationPoint, error) {
	out, rep, err := ablationLaddersReport(o)
	if err != nil {
		return nil, err
	}
	return out, rep.renderText(w)
}

// AblationWeightBits sweeps the DRCAT weight-register width. The paper uses
// 2 bits: wider registers react more slowly to phase changes (weights take
// longer to saturate and to age out), narrower ones thrash.
func ablationWeightBitsReport(o Options) ([]AblationPoint, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	const rows, m, l = 1 << 16, 64, 11
	threshold := scaledThreshold(32768, o.Scale)
	n := int(2 * CPUCyclesPerInterval / 60 * o.Scale)
	widths := []int{1, 2, 3, 4}
	out, err := runner.Map(o.Context, o.Parallel, len(widths),
		func(i int) (AblationPoint, error) {
			cfg := core.Config{Rows: rows, Counters: m, MaxLevels: l,
				RefreshThreshold: threshold, Policy: core.DRCAT, WeightBits: widths[i]}
			p, err := replayStream(cfg, o.Seed, n)
			if err != nil {
				return AblationPoint{}, err
			}
			p.Variant = fmt.Sprintf("%d-bit", widths[i])
			return p, nil
		})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Name:  "ablations/weightbits",
		Title: "Ablation: DRCAT weight-register width (paper: 2 bits)",
		Columns: []Column{
			{Name: "bits", Type: "string"},
			{Name: "rows_refreshed", Header: "rows refreshed", Type: "int", Format: "%d"},
			{Name: "reconfigurations", Type: "int", Format: "%d"},
		},
		Meta: o.meta(),
	}
	for _, p := range out {
		rep.Rows = append(rep.Rows, Row{p.Variant, p.RowsRefreshed, p.Reconfigs})
	}
	return out, rep, nil
}

// AblationWeightBits renders the weight-register ablation as a text table.
func AblationWeightBits(w io.Writer, o Options) ([]AblationPoint, error) {
	out, rep, err := ablationWeightBitsReport(o)
	if err != nil {
		return nil, err
	}
	return out, rep.renderText(w)
}

// AblationPreSplit sweeps the pre-split depth λ (paper §IV-C: a deeper
// pre-split reduces pointer-chasing SRAM accesses but spends counters on
// regions that may stay cold).
func ablationPreSplitReport(o Options) ([]AblationPoint, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	const rows, m, l = 1 << 16, 64, 11
	threshold := scaledThreshold(32768, o.Scale)
	n := int(2 * CPUCyclesPerInterval / 60 * o.Scale)
	lambdas := []int{1, 3, 6, 7}
	out, err := runner.Map(o.Context, o.Parallel, len(lambdas),
		func(i int) (AblationPoint, error) {
			cfg := core.Config{Rows: rows, Counters: m, MaxLevels: l,
				RefreshThreshold: threshold, Policy: core.DRCAT, PreSplit: lambdas[i]}
			p, err := replayStream(cfg, o.Seed, n)
			if err != nil {
				return AblationPoint{}, err
			}
			p.Variant = fmt.Sprintf("λ=%d", lambdas[i])
			return p, nil
		})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Name:  "ablations/presplit",
		Title: "Ablation: pre-split depth λ (paper default: log2 M = 6)",
		Columns: []Column{
			{Name: "lambda", Header: "λ", Type: "string"},
			{Name: "rows_refreshed", Header: "rows refreshed", Type: "int", Format: "%d"},
			{Name: "sram_per_access", Header: "SRAM/access", Type: "float", Format: "%.2f"},
		},
		Meta: o.meta(),
	}
	for _, p := range out {
		rep.Rows = append(rep.Rows, Row{p.Variant, p.RowsRefreshed, p.SRAMPerAccess})
	}
	return out, rep, nil
}

// AblationPreSplit renders the pre-split ablation as a text table.
func AblationPreSplit(w io.Writer, o Options) ([]AblationPoint, error) {
	out, rep, err := ablationPreSplitReport(o)
	if err != nil {
		return nil, err
	}
	return out, rep.renderText(w)
}

// AblationCounterCache compares the CAL'15 counter-cache baseline against
// DRCAT at matched on-chip storage on real workload streams: the cache
// refreshes only exact victims (fewest rows) but pays DRAM traffic for
// misses — the trade-off the paper's Fig. 2 discussion argues against.
func ablationCounterCacheReport(o Options) ([]Cell, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	specs := []struct {
		name string
		kind mitigation.Kind
		m    int
	}{
		{"DRCAT_64", mitigation.KindDRCAT, 64},
		{"CC_2048", mitigation.KindCounterCache, 2048},
	}
	threshold := uint32(16384)
	var cells []runner.Cell
	var labels []struct{ workload, scheme string }
	for _, name := range o.Workloads {
		wl, err := trace.Lookup(name)
		if err != nil {
			return nil, nil, err
		}
		for _, s := range specs {
			spec := simSchemeSpec(s.kind, s.m)
			cells = append(cells, runner.Cell{
				Tag: s.name + "/" + name, Config: baseConfig(o, wl, spec, threshold),
			})
			labels = append(labels, struct{ workload, scheme string }{name, s.name})
		}
	}
	results, err := o.engine().Grid(o.Context, cells)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Cell, len(results))
	rep := &Report{
		Name:  "ablations/countercache",
		Title: "Extension: counter-cache baseline vs DRCAT (T=16K)",
		Columns: []Column{
			{Name: "workload", Type: "string"},
			{Name: "scheme", Type: "string"},
			{Name: "cmrpo", Header: "CMRPO", Type: "percent"},
			{Name: "rows_refreshed", Header: "rows refreshed", Type: "int", Format: "%d"},
			{Name: "extra_dram_accesses", Header: "extra DRAM accesses", Type: "int", Format: "%d"},
		},
		Meta: o.meta(),
	}
	for i, r := range results {
		out[i] = Cell{Workload: labels[i].workload, Scheme: labels[i].scheme,
			CMRPO: r.Result.CMRPO, Counts: r.Result.Counts}
		rep.Rows = append(rep.Rows, Row{labels[i].workload, labels[i].scheme,
			r.Result.CMRPO, r.Result.Counts.RowsRefreshed, r.Result.Counts.ExtraMemAcc})
	}
	return out, rep, nil
}

// AblationCounterCache renders the counter-cache comparison as a text
// table.
func AblationCounterCache(w io.Writer, o Options) ([]Cell, error) {
	out, rep, err := ablationCounterCacheReport(o)
	if err != nil {
		return nil, err
	}
	return out, rep.renderText(w)
}
