package experiments

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"catsim/internal/runner"
)

// Determinism contract of the runner refactor: every figure renders
// byte-identical tables and returns identical data no matter the worker
// count, and shared baselines execute exactly once per configuration
// across a multi-figure reproduction.

// para returns micro options pinned to a given parallelism with a private
// cache.
func para(parallel int) Options {
	return Options{
		Scale:     0.02,
		Seed:      3,
		Workloads: []string{"black", "comm1"},
		Quiet:     false, // progress lines must be deterministic too
		Parallel:  parallel,
	}
}

func TestProgressGroupsEmitInOrder(t *testing.T) {
	var got []int
	pg := newProgressGroups([]int{2, 1, 3}, func(g int, cells []runner.CellResult) {
		got = append(got, g)
	})
	// Complete every cell in reverse order: groups must still emit 0,1,2,
	// and only once the whole prefix is done.
	for i := 5; i >= 0; i-- {
		pg.done(i, runner.CellResult{}, nil)
		if i > 0 && len(got) != 0 {
			t.Fatalf("emitted %v before the first group completed", got)
		}
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("emit order = %v, want [0 1 2]", got)
	}
}

func TestProgressGroupsSuppressFailedGroups(t *testing.T) {
	var got []int
	pg := newProgressGroups([]int{2, 2}, func(g int, cells []runner.CellResult) {
		got = append(got, g)
	})
	pg.done(0, runner.CellResult{}, nil)
	pg.done(1, runner.CellResult{}, errors.New("boom")) // group 0 fails
	pg.done(2, runner.CellResult{}, nil)
	pg.done(3, runner.CellResult{}, nil)
	// Group 0's line would print zero means; it must be suppressed while
	// group 1 still emits.
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("emitted groups = %v, want [1]", got)
	}
}

func TestFig8OutputIdenticalAcrossParallelism(t *testing.T) {
	var rendered []string
	var data []map[uint32]*Fig8Data
	for _, p := range []int{1, 8} {
		var buf bytes.Buffer
		d, err := Fig8(&buf, para(p))
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, buf.String())
		data = append(data, d)
	}
	if rendered[0] != rendered[1] {
		t.Errorf("rendered output differs between parallelism 1 and 8:\n--- p=1\n%s\n--- p=8\n%s",
			rendered[0], rendered[1])
	}
	if !reflect.DeepEqual(data[0], data[1]) {
		t.Error("Fig8 data differs between parallelism 1 and 8")
	}
	if !strings.Contains(rendered[0], "done (mean CMRPO") {
		t.Error("progress lines missing from non-quiet run")
	}
}

func TestFig12OutputIdenticalAcrossParallelism(t *testing.T) {
	var rendered []string
	var points [][]Fig12Point
	for _, p := range []int{1, 8} {
		var buf bytes.Buffer
		pts, err := Fig12(&buf, para(p))
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, buf.String())
		points = append(points, pts)
	}
	if rendered[0] != rendered[1] {
		t.Error("Fig12 output differs between parallelism 1 and 8")
	}
	if !reflect.DeepEqual(points[0], points[1]) {
		t.Error("Fig12 points differ between parallelism 1 and 8")
	}
}

func TestAblationsIdenticalAcrossParallelism(t *testing.T) {
	var outs []string
	for _, p := range []int{1, 8} {
		o := para(p)
		var buf bytes.Buffer
		if _, err := AblationLadders(&buf, o); err != nil {
			t.Fatal(err)
		}
		if _, err := AblationPreSplit(&buf, o); err != nil {
			t.Fatal(err)
		}
		if _, err := AblationCounterCache(&buf, o); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Error("ablation output differs between parallelism 1 and 8")
	}
}

func TestFigWOutputIdenticalAcrossParallelism(t *testing.T) {
	var rendered []string
	var points [][]FigWPoint
	for _, p := range []int{1, 8} {
		var buf bytes.Buffer
		pts, err := FigW(&buf, para(p))
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, buf.String())
		points = append(points, pts)
	}
	if rendered[0] != rendered[1] {
		t.Errorf("FigW output differs between parallelism 1 and 8:\n--- p=1\n%s\n--- p=8\n%s",
			rendered[0], rendered[1])
	}
	if !reflect.DeepEqual(points[0], points[1]) {
		t.Error("FigW points differ between parallelism 1 and 8")
	}
}

func TestCachedRunsMatchUncached(t *testing.T) {
	run := func(noCache bool) *Fig8Data {
		o := para(8)
		o.NoCache = noCache
		d, err := RunFig8(o, 16384, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Error("memoized run differs from uncached run")
	}
}

// TestBaselineRunsOncePerWorkloadThresholdSeed drives a multi-figure
// reproduction (the Fig. 8 and Fig. 9 matrices at both thresholds, i.e.
// four RunFig8 sweeps) through one shared cache and checks the KindNone
// baseline executed exactly once per (workload, threshold) — and that the
// second figure added no simulations at all.
func TestBaselineRunsOncePerWorkloadThresholdSeed(t *testing.T) {
	o := para(8)
	o.Cache = runner.NewCache()
	thresholds := []uint32{32768, 16384}
	for _, th := range thresholds { // Fig. 8
		if _, err := RunFig8(o, th, nil); err != nil {
			t.Fatal(err)
		}
	}
	afterFig8 := len(o.Cache.Runs())
	for _, th := range thresholds { // Fig. 9 reuses the same paired runs
		if _, err := RunFig8(o, th, nil); err != nil {
			t.Fatal(err)
		}
	}
	runs := o.Cache.Runs()
	if len(runs) != afterFig8 {
		t.Errorf("second figure ran %d extra simulations", len(runs)-afterFig8)
	}
	var baselines []string
	for _, k := range runs {
		if strings.HasPrefix(k, "None|") {
			baselines = append(baselines, k)
		}
	}
	want := len(o.Workloads) * len(thresholds)
	if len(baselines) != want {
		t.Errorf("baseline executions = %d, want %d (one per workload x threshold):\n%s",
			len(baselines), want, strings.Join(baselines, "\n"))
	}
	// 5 schemes + 1 baseline per (workload, threshold) cell.
	if wantTotal := 6 * want; len(runs) != wantTotal {
		t.Errorf("total executions = %d, want %d", len(runs), wantTotal)
	}
}
