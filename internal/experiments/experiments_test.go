package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"catsim/internal/mitigation"
	"catsim/internal/reliability"
	"catsim/internal/trace"
)

// skipIfShort skips the full sweep integration tests under -short; CI's
// race pass uses it to keep this package within its time budget.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short")
	}
}

// tiny returns fast options for integration tests: a small scale and a
// 3-workload subset spanning skewed/commercial/phase-changing behaviour.
func tiny() Options {
	return Options{
		Scale:     0.03,
		Seed:      7,
		Workloads: []string{"black", "comm1", "face"},
		Quiet:     true,
	}
}

func TestFig1GridAndChipkillCrossing(t *testing.T) {
	var buf bytes.Buffer
	points, err := Fig1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 24 {
		t.Fatalf("points = %d, want 6 p-values x 4 thresholds", len(points))
	}
	find := func(p float64, th uint32) float64 {
		for _, pt := range points {
			if pt.P == p && pt.Threshold == th {
				return pt.Unsurvivability
			}
		}
		t.Fatalf("missing point p=%v T=%d", p, th)
		return 0
	}
	// Paper: p=0.001 at T=32K is above Chipkill; p=0.002 is below.
	if find(0.001, 32768) <= reliability.ChipkillReference {
		t.Error("p=0.001/T=32K should exceed the Chipkill line")
	}
	if find(0.002, 32768) >= reliability.ChipkillReference {
		t.Error("p=0.002/T=32K should be below the Chipkill line")
	}
	// Smaller T needs larger p: at T=8K even p=0.004 fails Chipkill.
	if find(0.004, 8192) <= reliability.ChipkillReference {
		t.Error("p=0.004/T=8K should exceed the Chipkill line")
	}
	if !strings.Contains(buf.String(), "Chipkill") {
		t.Error("table missing Chipkill reference")
	}
}

func TestLFSRStudyQualitativeClaims(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	res, err := LFSRStudy(&buf, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ideal.Failures != 0 {
		t.Error("ideal PRNG must not fail at paper parameters")
	}
	if res.WeakLFSR.FailProb <= reliability.ChipkillReference {
		t.Errorf("weak LFSR fail prob %v; paper's claim is collapse far above 1e-4", res.WeakLFSR.FailProb)
	}
	if res.SyncRatio > 1.2 || res.SyncTotal < 16384 {
		t.Errorf("sync attack: total %d ratio %v", res.SyncTotal, res.SyncRatio)
	}
}

func TestFig2EnergyShape(t *testing.T) {
	o := tiny()
	var buf bytes.Buffer
	points, err := Fig2(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 13 { // 16..65536
		t.Fatalf("points = %d, want 13", len(points))
	}
	// Counter energy strictly increases with M; refresh energy decreases
	// (weakly) with M.
	for i := 1; i < len(points); i++ {
		if points[i].CounterNJ <= points[i-1].CounterNJ {
			t.Errorf("counter energy not increasing at M=%d", points[i].M)
		}
	}
	first, last := points[0], points[len(points)-1]
	if first.RefreshNJ <= last.RefreshNJ {
		t.Errorf("refresh energy should fall from M=16 (%.3e) to M=64K (%.3e)",
			first.RefreshNJ, last.RefreshNJ)
	}
	// Paper: total minimised at M=128. Allow one notch of tolerance for
	// the synthetic workloads.
	if m := MinTotalM(points); m < 64 || m > 256 {
		t.Errorf("total-energy minimum at M=%d, want 64..256 (paper: 128)", m)
	}
}

func TestFig3SkewMatchesMotivation(t *testing.T) {
	o := tiny()
	var buf bytes.Buffer
	rows, err := Fig3(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Summary.Top256Frac < 0.30 {
			t.Errorf("%s: top-256 rows hold %.2f of accesses; want dominated", r.Workload, r.Summary.Top256Frac)
		}
	}
}

func TestTable1And2Render(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := Table2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("table II rows = %d, want 5", len(rows))
	}
	out := buf.String()
	for _, want := range []string{"64K rows/bank", "PRNG", "DRCAT"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig8OrderingsHold(t *testing.T) {
	skipIfShort(t)
	o := tiny()
	data, err := RunFig8(o, 16384, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's T=16K ranking: DRCAT_64 < PRCAT_64 (close), both far
	// below SCA_64; SCA_128 below SCA_64.
	drcat := data.MeanCMRPO("DRCAT_64")
	prcat := data.MeanCMRPO("PRCAT_64")
	sca64 := data.MeanCMRPO("SCA_64")
	sca128 := data.MeanCMRPO("SCA_128")
	pra := data.MeanCMRPO("PRA_0.003")
	if drcat >= sca64 {
		t.Errorf("DRCAT %.3f should beat SCA_64 %.3f at T=16K", drcat, sca64)
	}
	if prcat >= sca64 {
		t.Errorf("PRCAT %.3f should beat SCA_64 %.3f at T=16K", prcat, sca64)
	}
	if sca128 >= sca64 {
		t.Errorf("SCA_128 %.3f should beat SCA_64 %.3f at T=16K", sca128, sca64)
	}
	if pra <= 0 || drcat <= 0 {
		t.Error("CMRPO must be positive")
	}
	// ETO: CAT variants stay tiny; SCA_64's is the largest of the
	// deterministic schemes (coarse 1K-row refreshes).
	if eto := data.MeanETO("DRCAT_64"); eto > 0.02 {
		t.Errorf("DRCAT ETO %.4f too large", eto)
	}
	if data.MeanETO("SCA_64") < data.MeanETO("DRCAT_64") {
		t.Error("SCA_64 ETO should exceed DRCAT_64 ETO")
	}
}

func TestFig10SweepShape(t *testing.T) {
	skipIfShort(t)
	o := tiny()
	o.Workloads = []string{"black", "comm1"}
	points, err := RunFig10(o, 32768, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	m, l := BestDRCATConfig(points)
	if m < 32 || m > 256 {
		t.Errorf("best DRCAT at M=%d, want small-to-mid (paper: 64)", m)
	}
	if l < 7 || l > 14 {
		t.Errorf("best DRCAT depth L=%d out of range", l)
	}
	// Static power must dominate at M=512: its best CMRPO should exceed
	// the best at M=64 (the paper's 'optimum at small M' claim).
	best := func(mWant int) float64 {
		b := -1.0
		for _, p := range points {
			if p.M == mWant && p.L > 0 && (b < 0 || p.CMRPO < b) {
				b = p.CMRPO
			}
		}
		return b
	}
	if best(512) <= best(64) {
		t.Errorf("M=512 best %.3f should exceed M=64 best %.3f (static floor)", best(512), best(64))
	}
}

func TestFig11MappingStudy(t *testing.T) {
	skipIfShort(t)
	o := tiny()
	o.Workloads = []string{"black", "comm1"}
	points, err := RunFig11(o, 16384, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	get := func(system, schemePrefix string) float64 {
		for _, p := range points {
			if p.System == system && strings.HasPrefix(p.Scheme, schemePrefix) {
				return p.CMRPO
			}
		}
		t.Fatalf("missing %s/%s", system, schemePrefix)
		return 0
	}
	// Paper: the 4-channel policy reduces CMRPO versus 2-channel for all
	// schemes (64 banks instead of 16 dilute per-bank refreshes).
	for _, scheme := range []string{"SCA", "DRCAT"} {
		if get("quad-core/4ch", scheme) >= get("quad-core/2ch", scheme) {
			t.Errorf("%s: 4-channel should reduce CMRPO (2ch %.3f vs 4ch %.3f)",
				scheme, get("quad-core/2ch", scheme), get("quad-core/4ch", scheme))
		}
	}
	// Headline: quad-core/2ch DRCAT well below SCA.
	if get("quad-core/2ch", "DRCAT") >= get("quad-core/2ch", "SCA") {
		t.Error("DRCAT should beat SCA on quad-core/2ch at T=16K")
	}
}

func TestFig13AttackOrdering(t *testing.T) {
	skipIfShort(t)
	o := tiny()
	var buf bytes.Buffer
	points, err := Fig13(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3*3*3 {
		t.Fatalf("points = %d, want 27", len(points))
	}
	// Paper: SCA's coarse refreshes cost far more than the CAT schemes'
	// under attack. CMRPO (refresh rows) is the robust signal at test
	// scale; ETO at this scale is noise-level (full-scale runs show the
	// ordering clearly — see EXPERIMENTS.md), so compare means with a
	// noise allowance.
	byScheme := map[string][]Fig13Point{}
	for _, p := range points {
		key := "CAT"
		if strings.HasPrefix(p.Scheme, "SCA") {
			key = "SCA"
		}
		byScheme[key] = append(byScheme[key], p)
	}
	mean := func(ps []Fig13Point, f func(Fig13Point) float64) float64 {
		s := 0.0
		for _, p := range ps {
			s += f(p)
		}
		return s / float64(len(ps))
	}
	scaC := mean(byScheme["SCA"], func(p Fig13Point) float64 { return p.CMRPO })
	catC := mean(byScheme["CAT"], func(p Fig13Point) float64 { return p.CMRPO })
	if scaC <= catC {
		t.Errorf("SCA mean attack CMRPO %.4f should exceed CAT's %.4f", scaC, catC)
	}
	scaE := mean(byScheme["SCA"], func(p Fig13Point) float64 { return p.ETO })
	catE := mean(byScheme["CAT"], func(p Fig13Point) float64 { return p.ETO })
	if scaE+0.002 <= catE {
		t.Errorf("SCA mean attack ETO %.5f should not be clearly below CAT's %.5f", scaE, catE)
	}
	// Heavier attacks refresh more: CMRPO(heavy) > CMRPO(light) for SCA.
	var heavy, light float64
	for _, p := range points {
		if p.Threshold == 16384 && strings.HasPrefix(p.Scheme, "SCA") {
			switch p.Mode {
			case 0:
				heavy = p.CMRPO
			case 2:
				light = p.CMRPO
			}
		}
	}
	if heavy <= light {
		t.Errorf("heavy-attack CMRPO %.4f should exceed light %.4f for SCA", heavy, light)
	}
}

func TestMultiIntervalDRCATCatchesUpToPRCAT(t *testing.T) {
	skipIfShort(t)
	// Over several intervals with phase drift, DRCAT's kept tree must
	// close (or reverse) the gap to PRCAT, whose rebuild relearns every
	// interval; with a single interval PRCAT pays no relearning at all.
	o := tiny()
	o.Workloads = []string{"face"} // phase-changing workload
	o.Scale = 0.08
	o.Intervals = 4
	rows := func(kind mitigation.Kind) int64 {
		wl, _ := trace.Lookup("face")
		cfg := baseConfig(o, wl, simSchemeSpec(kind, 64), 16384)
		res, err := runOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counts.RowsRefreshed
	}
	dr, pr := rows(mitigation.KindDRCAT), rows(mitigation.KindPRCAT)
	// Allow a small tolerance: the claim is parity-or-better, not a rout.
	if float64(dr) > 1.10*float64(pr) {
		t.Errorf("DRCAT refreshed %d rows, PRCAT %d over 4 intervals; want parity or better", dr, pr)
	}
}

func TestHeadlinesAllPass(t *testing.T) {
	skipIfShort(t)
	var buf bytes.Buffer
	hs, err := Headlines(&buf, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) < 7 {
		t.Fatalf("only %d headline verdicts", len(hs))
	}
	for _, h := range hs {
		if !h.Pass {
			t.Errorf("claim failed: %s (%s)", h.Claim, h.Note)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	o := Options{Scale: 0}
	if err := o.fill(); err == nil {
		t.Error("expected scale error")
	}
	o = Options{Scale: 2}
	if err := o.fill(); err == nil {
		t.Error("expected scale error")
	}
	o = Options{Scale: 0.5}
	if err := o.fill(); err != nil {
		t.Error(err)
	}
	if len(o.Workloads) != 18 || o.Seed == 0 {
		t.Error("defaults not filled")
	}
}
