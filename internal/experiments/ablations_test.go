package experiments

import (
	"bytes"
	"testing"
)

func TestAblationLadders(t *testing.T) {
	var buf bytes.Buffer
	points, err := AblationLadders(&buf, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	published, geometric, uniform := points[0], points[1], points[2]
	// The adaptive ladders must refresh far fewer rows than the uniform
	// (SCA-shaped) ladder on a biased stream — the paper's core argument.
	if published.RowsRefreshed >= uniform.RowsRefreshed {
		t.Errorf("published ladder refreshed %d rows, uniform %d; adaptivity should win",
			published.RowsRefreshed, uniform.RowsRefreshed)
	}
	if geometric.RowsRefreshed >= uniform.RowsRefreshed {
		t.Errorf("geometric ladder refreshed %d rows, uniform %d",
			geometric.RowsRefreshed, uniform.RowsRefreshed)
	}
	// Deeper trees cost more SRAM traffic per access.
	if published.SRAMPerAccess <= 2.0 {
		t.Errorf("SRAM/access = %v, expected above the 2-access floor", published.SRAMPerAccess)
	}
}

func TestAblationWeightBits(t *testing.T) {
	var buf bytes.Buffer
	points, err := AblationWeightBits(&buf, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Narrow registers reconfigure at least as often as wide ones (they
	// saturate faster).
	if points[0].Reconfigs < points[3].Reconfigs {
		t.Errorf("1-bit reconfigs %d < 4-bit %d", points[0].Reconfigs, points[3].Reconfigs)
	}
}

func TestAblationPreSplit(t *testing.T) {
	var buf bytes.Buffer
	points, err := AblationPreSplit(&buf, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// λ=1 (build from the root) pays the most SRAM accesses per lookup;
	// λ=7 (a complete 64-leaf tree) pays the least.
	if points[0].SRAMPerAccess <= points[3].SRAMPerAccess {
		t.Errorf("λ=1 SRAM/access %.2f should exceed λ=7's %.2f",
			points[0].SRAMPerAccess, points[3].SRAMPerAccess)
	}
}

func TestAblationCounterCache(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"black"}
	var buf bytes.Buffer
	cells, err := AblationCounterCache(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	drcat, cc := cells[0], cells[1]
	// Exact per-row counters refresh the fewest rows...
	if cc.Counts.RowsRefreshed >= drcat.Counts.RowsRefreshed {
		t.Errorf("counter cache refreshed %d rows, DRCAT %d; exact counting should refresh fewer",
			cc.Counts.RowsRefreshed, drcat.Counts.RowsRefreshed)
	}
	// ...but pays extra DRAM traffic for misses, which DRCAT never does.
	if cc.Counts.ExtraMemAcc == 0 {
		t.Error("counter cache reported no miss traffic")
	}
	if drcat.Counts.ExtraMemAcc != 0 {
		t.Error("DRCAT must not generate extra DRAM traffic")
	}
}
