package experiments

import (
	"fmt"
	"io"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/energy"
	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/trace"
)

func init() {
	Register(Experiment{
		Name:        "fig2",
		Description: "SCA energy-breakdown sweep (M=16..64K) with counter-cache reference lines (paper Fig. 2)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := fig2Report(o)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
	Register(Experiment{
		Name:        "fig3",
		Description: "row-access frequency skew in the hottest DRAM bank (paper Fig. 3)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := fig3Report(o)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// Fig2Point is one x-position of Fig. 2: the per-bank, per-interval energy
// of SCA with M counters, averaged over the workload set.
type Fig2Point struct {
	M         int
	CounterNJ float64 // static + dynamic counter energy
	RefreshNJ float64 // victim-row refresh energy
	TotalNJ   float64
}

// fig2Report reproduces the SCA energy-breakdown sweep (M = 16 .. 65536)
// plus the 2K/8K-entry counter-cache reference lines. Refresh counts come
// from driving every SCA instance with the same decoded workload streams
// (no timing needed — Fig. 2 is an energy figure); counter energies come
// from the Table II model.
func fig2Report(o Options) ([]Fig2Point, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	geom := dram.Default2Channel()
	policy, err := addrmap.NewRowInterleaved(geom)
	if err != nil {
		return nil, nil, err
	}
	var ms []int
	for m := 16; m <= geom.RowsPerBank; m *= 2 {
		ms = append(ms, m)
	}
	const threshold = 32768
	th := scaledThreshold(threshold, o.Scale)
	banks := geom.TotalBanks()

	// Each workload's stream replay is independent: run them on the
	// worker pool and reduce the per-workload measurements in order.
	type wlMeasure struct {
		accessesPerBank float64
		refreshRows     []float64 // per M
	}
	measures, err := runner.Map(o.Context, o.Parallel, len(o.Workloads),
		func(wi int) (wlMeasure, error) {
			wl, err := trace.Lookup(o.Workloads[wi])
			if err != nil {
				return wlMeasure{}, err
			}
			schemes := make([]*mitigation.SCA, len(ms))
			for i, m := range ms {
				s, err := mitigation.NewSCA(banks, geom.RowsPerBank, m, th)
				if err != nil {
					return wlMeasure{}, err
				}
				schemes[i] = s
			}
			gen, err := trace.NewSynthetic(wl, geom.TotalBytes(), geom.LineBytes, o.Seed+uint64(wi))
			if err != nil {
				return wlMeasure{}, err
			}
			// One interval of accesses for a dual-core system at this
			// workload's intensity.
			n := int(2 * CPUCyclesPerInterval / float64(wl.GapMean) * o.Scale)
			for i := 0; i < n; i++ {
				c := policy.Decode(gen.Next().Addr)
				flat := geom.Flat(c.Bank)
				for _, s := range schemes {
					s.OnActivate(flat, c.Row)
				}
			}
			m := wlMeasure{
				accessesPerBank: float64(n) / float64(banks),
				refreshRows:     make([]float64, len(ms)),
			}
			for i, s := range schemes {
				m.refreshRows[i] = float64(s.Counts().RowsRefreshed) / float64(banks)
			}
			return m, nil
		})
	if err != nil {
		return nil, nil, err
	}
	sumAccessesPerBank := 0.0
	sumRefreshRows := make([]float64, len(ms))
	for _, m := range measures {
		sumAccessesPerBank += m.accessesPerBank
		for i, r := range m.refreshRows {
			sumRefreshRows[i] += r
		}
	}

	nw := float64(len(o.Workloads))
	// Accesses rescale to a full 64 ms interval; the refresh rows measured
	// against the scaled threshold already correspond to one full interval
	// (triggers = accesses/threshold, and both scale together).
	rescale := 1 / o.Scale
	points := make([]Fig2Point, len(ms))
	for i, m := range ms {
		p, err := energy.SCAEnergy(m, sumAccessesPerBank/nw*rescale, sumRefreshRows[i]/nw)
		if err != nil {
			return nil, nil, err
		}
		points[i] = Fig2Point{M: m, CounterNJ: p.CounterNJ, RefreshNJ: p.RefreshNJ, TotalNJ: p.TotalNJ}
	}

	rep := &Report{
		Name:  "fig2",
		Title: "Fig. 2: SCA energy overhead per bank per 64 ms interval (nJ)",
		Columns: []Column{
			{Name: "M", Type: "int", Format: "%d"},
			{Name: "counters_nj", Header: "counters(static+dyn)", Type: "float", Format: "%.3e"},
			{Name: "refresh_nj", Header: "refresh", Type: "float", Format: "%.3e"},
			{Name: "total_nj", Header: "total", Type: "float", Format: "%.3e"},
		},
		Meta: o.meta(),
	}
	for _, p := range points {
		rep.Rows = append(rep.Rows, Row{p.M, p.CounterNJ, p.RefreshNJ, p.TotalNJ})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("2K-entry counter cache (optimistic)\t%.3e", energy.CounterCacheStaticNJ(2048)),
		fmt.Sprintf("8K-entry counter cache (optimistic)\t%.3e", energy.CounterCacheStaticNJ(8192)),
		fmt.Sprintf("total-energy minimum at M=%d (paper: 128)", MinTotalM(points)))
	return points, rep, nil
}

// Fig2 renders the SCA energy-breakdown sweep as a text table.
func Fig2(w io.Writer, o Options) ([]Fig2Point, error) {
	points, rep, err := fig2Report(o)
	if err != nil {
		return nil, err
	}
	return points, rep.renderText(w)
}

// MinTotalM returns the M with the smallest total energy.
func MinTotalM(points []Fig2Point) int {
	best, bestM := -1.0, 0
	for _, p := range points {
		if best < 0 || p.TotalNJ < best {
			best, bestM = p.TotalNJ, p.M
		}
	}
	return bestM
}

// Fig3Row is one reported row of the Fig. 3 histogram study.
type Fig3Row struct {
	Workload  string
	Bank      int
	Summary   trace.SkewSummary
	TopCounts []int64 // access counts of the hottest rows, descending
}

// fig3Report reproduces the row-access frequency measurement: for
// blackscholes- and facesim-like workloads, the distribution of per-row
// activation counts in the hottest bank over one refresh interval,
// demonstrating that "a small group of rows dominate overall accesses".
func fig3Report(o Options) ([]Fig3Row, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	geom := dram.Default2Channel()
	policy, err := addrmap.NewRowInterleaved(geom)
	if err != nil {
		return nil, nil, err
	}
	names := []string{"black", "face"}
	out, err := runner.Map(o.Context, o.Parallel, len(names),
		func(i int) (Fig3Row, error) {
			name := names[i]
			wl, err := trace.Lookup(name)
			if err != nil {
				return Fig3Row{}, err
			}
			gen, err := trace.NewSynthetic(wl, geom.TotalBytes(), geom.LineBytes, o.Seed)
			if err != nil {
				return Fig3Row{}, err
			}
			n := int(2 * CPUCyclesPerInterval / float64(wl.GapMean) * o.Scale)
			hist := trace.RowHistogram(gen, geom, policy, n)
			bestBank, best := 0, trace.SkewSummary{}
			for b, rows := range hist {
				s := trace.Summarise(rows)
				if s.Total > best.Total {
					bestBank, best = b, s
				}
			}
			top := topK(hist[bestBank], 8)
			return Fig3Row{Workload: name, Bank: bestBank, Summary: best, TopCounts: top}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	rep := &Report{
		Name:  "fig3",
		Title: "Fig. 3: row-access frequency in the hottest DRAM bank (one interval)",
		Columns: []Column{
			{Name: "workload", Type: "string"},
			{Name: "bank", Type: "int", Format: "%d"},
			{Name: "accesses", Type: "int", Format: "%d"},
			{Name: "rows_touched", Header: "rows touched", Type: "int", Format: "%d"},
			{Name: "max_per_row", Header: "max/row", Type: "int", Format: "%d"},
			{Name: "top16_share", Header: "top-16 share", Type: "percent"},
			{Name: "top256_share", Header: "top-256 share", Type: "percent"},
		},
		Meta: o.meta(),
	}
	for _, r := range out {
		rep.Rows = append(rep.Rows, Row{r.Workload, r.Bank, r.Summary.Total,
			r.Summary.TouchedRows, r.Summary.MaxPerRow, r.Summary.Top16Frac, r.Summary.Top256Frac})
	}
	return out, rep, nil
}

// Fig3 renders the row-access skew study as a text table.
func Fig3(w io.Writer, o Options) ([]Fig3Row, error) {
	rows, rep, err := fig3Report(o)
	if err != nil {
		return nil, err
	}
	return rows, rep.renderText(w)
}

func topK(rows []int64, k int) []int64 {
	top := make([]int64, 0, k)
	for _, c := range rows {
		if c == 0 {
			continue
		}
		// Insertion into a small descending list.
		i := len(top)
		for i > 0 && top[i-1] < c {
			i--
		}
		if i < k {
			if len(top) < k {
				top = append(top, 0)
			}
			copy(top[i+1:], top[i:len(top)-1])
			top[i] = c
		}
	}
	return top
}
