package experiments

import (
	"fmt"
	"io"

	"catsim/internal/dram"
	"catsim/internal/energy"
	"catsim/internal/mitigation"
)

// Table1 prints the system configuration (paper Table I) as wired into the
// simulator defaults.
func Table1(w io.Writer) error {
	g := dram.Default2Channel()
	t := dram.DDR3_1600()
	tw := table(w)
	fmt.Fprintln(tw, "Table I: system configuration")
	fmt.Fprintf(tw, "Processor\tTwo 3.2 GHz cores, memory bus %d MHz, %d outstanding reads/core\n", t.BusMHz, 8)
	fmt.Fprintf(tw, "Memory controller\tclosed-page, posted writes, address mapping rw:rk:bk:ch:col:offset\n")
	fmt.Fprintf(tw, "DRAM\t%d channels, %d rank/channel, %d banks/rank, %dK rows/bank, %d B lines (%.0f GB total)\n",
		g.Channels, g.RanksPerCh, g.BanksPerRk, g.RowsPerBank/1024, g.LineBytes,
		float64(g.TotalBytes())/(1<<30))
	fmt.Fprintf(tw, "Timing (bus cycles)\ttRCD=%d tRP=%d CL=%d tRAS=%d tRC=%d tRFC=%d tREFI=%d\n",
		t.TRCD, t.TRP, t.TCAS, t.TRAS, t.TRC, t.TRFC, t.TREFI)
	return tw.Flush()
}

// Table2Row is one row of the reproduced Table II.
type Table2Row struct {
	M     int
	DRCAT energy.SchemeHW
	PRCAT energy.SchemeHW
	SCA   energy.SchemeHW
}

// Table2 prints the hardware energy/area table for M = 32..512 alongside
// the PRNG specification, from the calibrated synthesis model.
func Table2(w io.Writer) ([]Table2Row, error) {
	var rows []Table2Row
	tw := table(w)
	fmt.Fprintln(tw, "Table II: hardware energy (per bank) and area")
	fmt.Fprintln(tw, "M\tDRCAT dyn nJ\tDRCAT static nJ\tDRCAT mm2\tPRCAT dyn nJ\tPRCAT static nJ\tPRCAT mm2\tSCA dyn nJ\tSCA static nJ\tSCA mm2")
	for m := 32; m <= 512; m *= 2 {
		dr, err := energy.TableII(mitigation.KindDRCAT, m)
		if err != nil {
			return nil, err
		}
		pr, err := energy.TableII(mitigation.KindPRCAT, m)
		if err != nil {
			return nil, err
		}
		sc, err := energy.TableII(mitigation.KindSCA, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{M: m, DRCAT: dr, PRCAT: pr, SCA: sc})
		fmt.Fprintf(tw, "%d\t%.2e\t%.2e\t%.2e\t%.2e\t%.2e\t%.2e\t%.2e\t%.2e\t%.2e\n",
			m,
			dr.DynamicNJPerAccess, dr.StaticNJPerInterval, dr.AreaMM2,
			pr.DynamicNJPerAccess, pr.StaticNJPerInterval, pr.AreaMM2,
			sc.DynamicNJPerAccess, sc.StaticNJPerInterval, sc.AreaMM2)
	}
	fmt.Fprintf(tw, "PRNG\tarea %.3e mm2\tthroughput %.1f Gbps\tpower %.0f mW\teff %.2e nJ/b\teng_PRNG %.4e nJ (9 b/access)\n",
		energy.PRNGAreaMM2, energy.PRNGThroughputGbps, energy.PRNGPowerMW,
		energy.PRNGEfficiencyNJPerBit, energy.PRNGEnergyPerActivationNJ)
	return rows, tw.Flush()
}
