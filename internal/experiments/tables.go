package experiments

import (
	"fmt"
	"io"

	"catsim/internal/dram"
	"catsim/internal/energy"
	"catsim/internal/mitigation"
)

func init() {
	Register(Experiment{
		Name:        "table1",
		Description: "system configuration as wired into the simulator defaults (paper Table I)",
		Run: func(o Options, emit func(*Report) error) error {
			return emit(table1Report())
		},
	})
	Register(Experiment{
		Name:        "table2",
		Description: "hardware energy and area for M=32..512 plus the PRNG spec (paper Table II)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := table2Report()
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

func table1Report() *Report {
	g := dram.Default2Channel()
	t := dram.DDR3_1600()
	return &Report{
		Name:     "table1",
		Title:    "Table I: system configuration",
		NoHeader: true,
		Columns: []Column{
			{Name: "item", Type: "string"},
			{Name: "value", Type: "string"},
		},
		Rows: []Row{
			{"Processor", fmt.Sprintf("Two 3.2 GHz cores, memory bus %d MHz, %d outstanding reads/core", t.BusMHz, 8)},
			{"Memory controller", "closed-page, posted writes, address mapping rw:rk:bk:ch:col:offset"},
			{"DRAM", fmt.Sprintf("%d channels, %d rank/channel, %d banks/rank, %dK rows/bank, %d B lines (%.0f GB total)",
				g.Channels, g.RanksPerCh, g.BanksPerRk, g.RowsPerBank/1024, g.LineBytes,
				float64(g.TotalBytes())/(1<<30))},
			{"Timing (bus cycles)", fmt.Sprintf("tRCD=%d tRP=%d CL=%d tRAS=%d tRC=%d tRFC=%d tREFI=%d",
				t.TRCD, t.TRP, t.TCAS, t.TRAS, t.TRC, t.TRFC, t.TREFI)},
		},
	}
}

// Table1 prints the system configuration (paper Table I) as wired into the
// simulator defaults.
func Table1(w io.Writer) error {
	return table1Report().renderText(w)
}

// Table2Row is one row of the reproduced Table II.
type Table2Row struct {
	M     int
	DRCAT energy.SchemeHW
	PRCAT energy.SchemeHW
	SCA   energy.SchemeHW
}

func table2Report() ([]Table2Row, *Report, error) {
	var rows []Table2Row
	rep := &Report{
		Name:  "table2",
		Title: "Table II: hardware energy (per bank) and area",
		Columns: []Column{
			{Name: "M", Type: "int", Format: "%d"},
			{Name: "drcat_dyn_nj", Header: "DRCAT dyn nJ", Type: "float", Format: "%.2e"},
			{Name: "drcat_static_nj", Header: "DRCAT static nJ", Type: "float", Format: "%.2e"},
			{Name: "drcat_mm2", Header: "DRCAT mm2", Type: "float", Format: "%.2e"},
			{Name: "prcat_dyn_nj", Header: "PRCAT dyn nJ", Type: "float", Format: "%.2e"},
			{Name: "prcat_static_nj", Header: "PRCAT static nJ", Type: "float", Format: "%.2e"},
			{Name: "prcat_mm2", Header: "PRCAT mm2", Type: "float", Format: "%.2e"},
			{Name: "sca_dyn_nj", Header: "SCA dyn nJ", Type: "float", Format: "%.2e"},
			{Name: "sca_static_nj", Header: "SCA static nJ", Type: "float", Format: "%.2e"},
			{Name: "sca_mm2", Header: "SCA mm2", Type: "float", Format: "%.2e"},
		},
	}
	for m := 32; m <= 512; m *= 2 {
		dr, err := energy.TableII(mitigation.KindDRCAT, m)
		if err != nil {
			return nil, nil, err
		}
		pr, err := energy.TableII(mitigation.KindPRCAT, m)
		if err != nil {
			return nil, nil, err
		}
		sc, err := energy.TableII(mitigation.KindSCA, m)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table2Row{M: m, DRCAT: dr, PRCAT: pr, SCA: sc})
		rep.Rows = append(rep.Rows, Row{
			m,
			dr.DynamicNJPerAccess, dr.StaticNJPerInterval, dr.AreaMM2,
			pr.DynamicNJPerAccess, pr.StaticNJPerInterval, pr.AreaMM2,
			sc.DynamicNJPerAccess, sc.StaticNJPerInterval, sc.AreaMM2,
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"PRNG\tarea %.3e mm2\tthroughput %.1f Gbps\tpower %.0f mW\teff %.2e nJ/b\teng_PRNG %.4e nJ (9 b/access)",
		energy.PRNGAreaMM2, energy.PRNGThroughputGbps, energy.PRNGPowerMW,
		energy.PRNGEfficiencyNJPerBit, energy.PRNGEnergyPerActivationNJ))
	return rows, rep, nil
}

// Table2 prints the hardware energy/area table for M = 32..512 alongside
// the PRNG specification, from the calibrated synthesis model.
func Table2(w io.Writer) ([]Table2Row, error) {
	rows, rep, err := table2Report()
	if err != nil {
		return nil, err
	}
	return rows, rep.renderText(w)
}
