// Package experiments regenerates every table and figure of the paper's
// evaluation. Each generator returns the measured data and renders a
// text table shaped like the paper's plot (same rows/series), so results
// can be compared side by side with the published numbers; EXPERIMENTS.md
// records that comparison.
//
// Runs are deterministic. The Scale option shrinks the experiment
// self-similarly: the simulated auto-refresh interval, the refresh
// threshold and the per-core request count all scale together, which
// preserves trigger rates and therefore CMRPO/ETO to first order while
// letting the full suite run quickly (Scale=1 reproduces the paper's 64 ms
// intervals; the default 0.25 runs the whole suite in minutes).
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

// CPUCyclesPerInterval is one 64 ms auto-refresh interval at 3.2 GHz.
const CPUCyclesPerInterval = 204.8e6

// Options configures a generator run.
type Options struct {
	// Scale shrinks interval, threshold and request counts together
	// (1 = paper scale). Values in (0, 1].
	Scale float64
	// Seed drives every stochastic component.
	Seed uint64
	// Workloads restricts the workload set (nil = the paper's 18).
	// Open-loop preset names ("ol-poisson", ...) are accepted too; fill
	// moves them into OpenWorkloads so the closed-loop figures never see
	// them.
	Workloads []string
	// OpenWorkloads restricts the open-loop workload set consumed by figw
	// (nil = the non-attack presets). fill populates it from any open-loop
	// names found in Workloads; it can also be set directly.
	OpenWorkloads []string
	// Intervals is the number of auto-refresh intervals each run spans
	// (0 = 1). DRCAT's advantage over PRCAT — keeping the learned tree
	// across interval boundaries instead of relearning — only shows with
	// several intervals and phase drift.
	Intervals int
	// Quiet suppresses progress lines on long sweeps.
	Quiet bool
	// Progress receives live progress lines during sweeps (nil = none).
	// The text wrappers (Fig8(w, o), ...) and ReproduceAll point it at
	// the output writer, reproducing the historical interleaving.
	Progress io.Writer
	// LFSRTrials is the Monte-Carlo trial count for the lfsr study
	// (0 = 100).
	LFSRTrials int
	// Schemes overrides the figx scheme lineup with user-defined specs
	// (the CLI's repeatable -scheme flag). Thresholds still come from the
	// figure's own sweep; a spec's Threshold field is ignored there.
	Schemes []mitigation.SchemeSpec
	// Geometry overrides the baseline dual-core 2-channel system in every
	// workload-grid figure (the CLI's -geometry flag). Figures that sweep
	// explicit per-system geometries (fig11) and the kernel-level studies
	// (fig2, tables) are deliberately unaffected.
	Geometry *dram.GeometrySpec

	// Parallel caps concurrently executing simulation cells
	// (0 = GOMAXPROCS, 1 = the sequential reference path). Results and
	// rendered tables are identical at every setting; only wall-clock
	// changes.
	Parallel int
	// NoCache disables memoization of shared runs (the KindNone
	// baselines every paired cell re-derives).
	NoCache bool
	// Cache shares memoized results across figures. fill() installs a
	// fresh per-generator cache when nil (unless NoCache); ReproduceAll
	// and cmd/experiments install a single cache for the whole suite so
	// e.g. Fig. 9 reuses Fig. 8's paired runs outright.
	Cache *runner.Cache
	// Pool recycles run contexts across grid cells so same-shape cells
	// reuse their component stacks instead of rebuilding them (see
	// runner.ContextPool). fill() installs one when nil; results are
	// identical with or without pooling.
	Pool *runner.ContextPool
	// Context cancels in-flight grids (nil = context.Background()).
	Context context.Context
}

// DefaultOptions is used by the CLI when no flags are given.
func DefaultOptions() Options { return Options{Scale: 0.25, Seed: 1} }

func (o *Options) fill() error {
	if o.Scale <= 0 || o.Scale > 1 {
		return fmt.Errorf("experiments: scale %v out of (0,1]", o.Scale)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = trace.WorkloadNames()
	} else {
		// Fail loudly on typos: a silently empty or partial subset would
		// quietly skew every mean in the suite. Open-loop preset names are
		// routed to OpenWorkloads; the closed-loop figures keep seeing
		// trace workloads only (falling back to the full set when the
		// selection was purely open-loop).
		var closed []string
		for _, name := range o.Workloads {
			if _, err := trace.Lookup(name); err == nil {
				closed = append(closed, name)
				continue
			}
			if _, err := workload.Lookup(name); err == nil {
				o.OpenWorkloads = append(o.OpenWorkloads, name)
				continue
			}
			return fmt.Errorf("experiments: unknown workload %q (valid: %s; open-loop: %s)",
				name, strings.Join(trace.WorkloadNames(), ", "),
				strings.Join(workload.Names(), ", "))
		}
		if closed == nil {
			closed = trace.WorkloadNames()
		}
		o.Workloads = closed
	}
	for _, name := range o.OpenWorkloads {
		if _, err := workload.Lookup(name); err != nil {
			return err
		}
	}
	if o.Intervals == 0 {
		o.Intervals = 1
	}
	if o.Cache == nil && !o.NoCache {
		o.Cache = runner.NewCache()
	}
	if o.Pool == nil {
		o.Pool = runner.NewContextPool()
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return nil
}

// engine returns the grid executor for these options. Call after fill.
func (o *Options) engine() *runner.Engine {
	return &runner.Engine{Parallel: o.Parallel, Cache: o.Cache, Contexts: o.Pool}
}

// scaledThreshold scales the refresh threshold with the run, keeping
// trigger rates representative (see package comment).
func scaledThreshold(t uint32, scale float64) uint32 {
	s := uint32(math.Round(float64(t) * scale))
	if s < 16 {
		s = 16
	}
	return s
}

// baseConfig assembles a simulation config for one workload at the given
// scale on the dual-core 2-channel baseline system. The refresh threshold
// scales with the run (sim.Config.ThresholdScale documents the rate
// corrections this implies); PRA's probability is pinned to the *unscaled*
// threshold, since that is the hardware parameter the paper pairs with p.
func baseConfig(o Options, wl trace.Spec, spec sim.SchemeSpec, threshold uint32) sim.Config {
	intervals := o.Intervals
	if intervals < 1 {
		intervals = 1
	}
	reqPerCore := int(CPUCyclesPerInterval/float64(wl.GapMean)*o.Scale) * intervals
	if reqPerCore < 1000 {
		reqPerCore = 1000
	}
	if spec.Kind == mitigation.KindPRA && spec.PRAProb == 0 {
		spec.PRAProb = mitigation.PRAProbabilityForThreshold(threshold)
	}
	geom := dram.Default2Channel()
	if o.Geometry != nil {
		geom = o.Geometry.Geometry()
	}
	return sim.Config{
		Geometry:        geom,
		Timing:          dram.DDR3_1600(),
		Cores:           2,
		RequestsPerCore: reqPerCore,
		Workload:        wl,
		Scheme:          spec,
		Threshold:       scaledThreshold(threshold, o.Scale),
		ThresholdScale:  o.Scale,
		IntervalNS:      dram.RefreshIntervalNS() * o.Scale,
		Seed:            o.Seed,
	}
}

// simSchemeSpec builds a SchemeSpec with the default CAT depth.
func simSchemeSpec(kind mitigation.Kind, m int) sim.SchemeSpec {
	return sim.SchemeSpec{Kind: kind, Counters: m, MaxLevels: 11}
}

// runOne executes a single configured run.
func runOne(cfg sim.Config) (sim.Result, error) { return sim.Run(cfg) }

// Cell is one (workload, scheme) measurement.
type Cell struct {
	Workload string
	Scheme   string
	CMRPO    float64
	ETO      float64
	Counts   mitigation.Counts
}

// Mean returns the arithmetic mean of a selector over cells.
func Mean(cells []Cell, f func(Cell) float64) float64 {
	if len(cells) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cells {
		sum += f(c)
	}
	return sum / float64(len(cells))
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// suiteOf returns the benchmark suite label for a workload name.
func suiteOf(name string) string {
	if s, err := trace.Lookup(name); err == nil {
		return s.Suite
	}
	return "?"
}

// meta snapshots the options (and shared cache) into report metadata.
// Call after fill.
func (o *Options) meta() Meta {
	m := Meta{Scale: o.Scale, Seed: o.Seed, Intervals: o.Intervals, Workloads: o.Workloads}
	if o.Cache != nil {
		m.CacheRuns = len(o.Cache.Runs())
		m.CacheHits = o.Cache.Hits()
	}
	if o.Pool != nil {
		m.ContextBuilds, m.ContextReuses = o.Pool.Stats()
	}
	return m
}

// textEmit streams reports through the text renderer to w — the emit
// function behind the historical Fig8(w, o)-style wrappers.
func textEmit(w io.Writer) func(*Report) error {
	r := NewTextRenderer(w)
	return r.Report
}
