package experiments

import (
	"sync"

	"catsim/internal/runner"
)

// progressGroups turns the runner's unordered cell completions into the
// deterministic per-group progress lines the sequential sweeps printed:
// group g's line is emitted as soon as groups 0..g have all completed, so
// long sweeps report progress while still running, yet the bytes written
// are identical at every parallelism (and to the sequential path, where
// groups naturally finish in order).
type progressGroups struct {
	mu      sync.Mutex
	groupOf []int               // cell index -> group
	starts  []int               // group -> first cell index
	remain  []int               // cells left per group
	failed  []bool              // group had an errored cell
	vals    []runner.CellResult // per cell, filled as cells complete
	next    int                 // first group not yet emitted
	emit    func(g int, cells []runner.CellResult)
}

// newProgressGroups builds an emitter for consecutive cell groups of the
// given sizes. emit receives the group's cells in cell order, after every
// cell of the group (and of all earlier groups) has completed.
func newProgressGroups(sizes []int, emit func(g int, cells []runner.CellResult)) *progressGroups {
	p := &progressGroups{
		emit:   emit,
		remain: append([]int(nil), sizes...),
		failed: make([]bool, len(sizes)),
	}
	total := 0
	for g, n := range sizes {
		p.starts = append(p.starts, total)
		for j := 0; j < n; j++ {
			p.groupOf = append(p.groupOf, g)
		}
		total += n
	}
	p.starts = append(p.starts, total)
	p.vals = make([]runner.CellResult, total)
	return p
}

// attach registers the emitter on the engine; a nil receiver is a no-op,
// so callers can pass nil when progress is disabled.
func (p *progressGroups) attach(e *runner.Engine) *runner.Engine {
	if p != nil {
		e.OnCell = p.done
	}
	return e
}

func (p *progressGroups) done(i int, r runner.CellResult, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.vals[i] = r
	g := p.groupOf[i]
	if err != nil {
		p.failed[g] = true
	}
	p.remain[g]--
	for p.next < len(p.remain) && p.remain[p.next] == 0 {
		n := p.next
		// A group with an errored cell would print zero-valued means; its
		// error surfaces from Grid instead, so suppress the line.
		if !p.failed[n] {
			p.emit(n, p.vals[p.starts[n]:p.starts[n+1]])
		}
		p.next++
	}
}

// uniform returns n copies of size, the common group shape (one group per
// scheme/system/threshold, one cell per workload or kernel).
func uniform(n, size int) []int {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = size
	}
	return sizes
}
