package experiments

import (
	"fmt"
	"io"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// SystemConfig is one system of the §VIII-B mapping/core study.
type SystemConfig struct {
	Name               string
	Cores              int
	Geometry           dram.Geometry
	ChannelInterleaved bool
	// SchemeCounters is the iso-area lineup: SCA gets twice the CAT
	// counters (PRCAT_64 and SCA_128 are iso-area per Table II).
	CATCounters int
	SCACounters int
}

// Fig11Systems returns the paper's three systems: dual-core/2-channel,
// quad-core/2-channel and quad-core/4-channel; quad-core banks have 128K
// rows.
func Fig11Systems() []SystemConfig {
	return []SystemConfig{
		{Name: "dual-core/2ch", Cores: 2, Geometry: dram.Default2Channel(),
			CATCounters: 64, SCACounters: 128},
		{Name: "quad-core/2ch", Cores: 4, Geometry: dram.QuadCore2Channel(),
			CATCounters: 128, SCACounters: 256},
		{Name: "quad-core/4ch", Cores: 4, Geometry: dram.QuadCore4Channel(),
			ChannelInterleaved: true, CATCounters: 128, SCACounters: 256},
	}
}

// Fig11Point is one bar of Fig. 11.
type Fig11Point struct {
	System    string
	Scheme    string
	Threshold uint32
	CMRPO     float64
	ETO       float64
}

// RunFig11 measures CMRPO for the three systems at one threshold.
func RunFig11(o Options, threshold uint32, progress io.Writer) ([]Fig11Point, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	var out []Fig11Point
	for _, sys := range Fig11Systems() {
		schemes := []sim.SchemeSpec{
			{Kind: mitigation.KindPRA},
			{Kind: mitigation.KindSCA, Counters: sys.SCACounters},
			{Kind: mitigation.KindPRCAT, Counters: sys.CATCounters, MaxLevels: 11},
			{Kind: mitigation.KindDRCAT, Counters: sys.CATCounters, MaxLevels: 11},
		}
		for _, spec := range schemes {
			label := spec.Label(threshold)
			sumC, sumE := 0.0, 0.0
			for wi, name := range o.Workloads {
				wl, err := trace.Lookup(name)
				if err != nil {
					return nil, err
				}
				cfg := baseConfig(o, wl, spec, threshold)
				cfg.Geometry = sys.Geometry
				cfg.Cores = sys.Cores
				cfg.ChannelInterleaved = sys.ChannelInterleaved
				cfg.Seed = o.Seed + uint64(wi)
				pair, err := sim.RunPair(cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", sys.Name, label, name, err)
				}
				sumC += pair.Scheme.CMRPO
				sumE += pair.ETO
			}
			n := float64(len(o.Workloads))
			out = append(out, Fig11Point{
				System: sys.Name, Scheme: label, Threshold: threshold,
				CMRPO: sumC / n, ETO: sumE / n,
			})
		}
		if progress != nil && !o.Quiet {
			fmt.Fprintf(progress, "  %s done\n", sys.Name)
		}
	}
	return out, nil
}

// Fig11 renders the mapping-policy and core-count study for T = 32K, 16K.
func Fig11(w io.Writer, o Options) (map[uint32][]Fig11Point, error) {
	out := map[uint32][]Fig11Point{}
	for _, threshold := range []uint32{32768, 16384} {
		points, err := RunFig11(o, threshold, w)
		if err != nil {
			return nil, err
		}
		out[threshold] = points
		tw := table(w)
		fmt.Fprintf(tw, "Fig. 11: CMRPO per bank by system and mapping policy, T=%dK\n", threshold/1024)
		fmt.Fprintln(tw, "system\tscheme\tCMRPO\tETO")
		for _, p := range points {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", p.System, p.Scheme, pct(p.CMRPO), pct(p.ETO))
		}
		if err := tw.Flush(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fig12Point is one bar of Fig. 12 (threshold sensitivity).
type Fig12Point struct {
	Threshold uint32
	Scheme    string
	CMRPO     float64
	ETO       float64
}

// Fig12 sweeps the refresh threshold (64K..8K) on the dual-core system
// with the paper's per-threshold lineups: PRA with matched p, SCA_128
// (SCA_256 at 8K) and PRCAT/DRCAT with 32/64/64/128 counters.
func Fig12(w io.Writer, o Options) ([]Fig12Point, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	catCounters := map[uint32]int{65536: 32, 32768: 64, 16384: 64, 8192: 128}
	scaCounters := map[uint32]int{65536: 128, 32768: 128, 16384: 128, 8192: 256}
	var out []Fig12Point
	for _, threshold := range []uint32{65536, 32768, 16384, 8192} {
		schemes := []sim.SchemeSpec{
			{Kind: mitigation.KindPRA},
			{Kind: mitigation.KindSCA, Counters: scaCounters[threshold]},
			{Kind: mitigation.KindPRCAT, Counters: catCounters[threshold], MaxLevels: 11},
			{Kind: mitigation.KindDRCAT, Counters: catCounters[threshold], MaxLevels: 11},
		}
		for _, spec := range schemes {
			label := spec.Label(threshold)
			sumC, sumE := 0.0, 0.0
			for wi, name := range o.Workloads {
				wl, err := trace.Lookup(name)
				if err != nil {
					return nil, err
				}
				cfg := baseConfig(o, wl, spec, threshold)
				cfg.Seed = o.Seed + uint64(wi)
				pair, err := sim.RunPair(cfg)
				if err != nil {
					return nil, fmt.Errorf("T=%d/%s/%s: %w", threshold, label, name, err)
				}
				sumC += pair.Scheme.CMRPO
				sumE += pair.ETO
			}
			n := float64(len(o.Workloads))
			out = append(out, Fig12Point{Threshold: threshold, Scheme: label,
				CMRPO: sumC / n, ETO: sumE / n})
		}
		if !o.Quiet {
			fmt.Fprintf(w, "  T=%dK done\n", threshold/1024)
		}
	}
	tw := table(w)
	fmt.Fprintln(tw, "Fig. 12: CMRPO for refresh thresholds 64K/32K/16K/8K (dual-core/2ch)")
	fmt.Fprintln(tw, "T\tscheme\tCMRPO\tETO")
	for _, p := range out {
		fmt.Fprintf(tw, "%dK\t%s\t%s\t%s\n", p.Threshold/1024, p.Scheme, pct(p.CMRPO), pct(p.ETO))
	}
	return out, tw.Flush()
}
