package experiments

import (
	"fmt"
	"io"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// SystemConfig is one system of the §VIII-B mapping/core study.
type SystemConfig struct {
	Name               string
	Cores              int
	Geometry           dram.Geometry
	ChannelInterleaved bool
	// SchemeCounters is the iso-area lineup: SCA gets twice the CAT
	// counters (PRCAT_64 and SCA_128 are iso-area per Table II).
	CATCounters int
	SCACounters int
}

// Fig11Systems returns the paper's three systems: dual-core/2-channel,
// quad-core/2-channel and quad-core/4-channel; quad-core banks have 128K
// rows.
func Fig11Systems() []SystemConfig {
	return []SystemConfig{
		{Name: "dual-core/2ch", Cores: 2, Geometry: dram.Default2Channel(),
			CATCounters: 64, SCACounters: 128},
		{Name: "quad-core/2ch", Cores: 4, Geometry: dram.QuadCore2Channel(),
			CATCounters: 128, SCACounters: 256},
		{Name: "quad-core/4ch", Cores: 4, Geometry: dram.QuadCore4Channel(),
			ChannelInterleaved: true, CATCounters: 128, SCACounters: 256},
	}
}

// Fig11Point is one bar of Fig. 11.
type Fig11Point struct {
	System    string
	Scheme    string
	Threshold uint32
	CMRPO     float64
	ETO       float64
}

// RunFig11 measures CMRPO for the three systems at one threshold. Each
// system's scheme lineup shares its per-workload baselines through the
// cache; the whole system × scheme × workload grid runs on the worker
// pool.
func RunFig11(o Options, threshold uint32, progress io.Writer) ([]Fig11Point, error) {
	if err := o.fill(); err != nil {
		return nil, err
	}
	type bar struct {
		system string
		label  string
	}
	var bars []bar
	var cells []runner.Cell
	for _, sys := range Fig11Systems() {
		schemes := []sim.SchemeSpec{
			{Kind: mitigation.KindPRA},
			{Kind: mitigation.KindSCA, Counters: sys.SCACounters},
			{Kind: mitigation.KindPRCAT, Counters: sys.CATCounters, MaxLevels: 11},
			{Kind: mitigation.KindDRCAT, Counters: sys.CATCounters, MaxLevels: 11},
		}
		for _, spec := range schemes {
			label := spec.Label(threshold)
			bars = append(bars, bar{system: sys.Name, label: label})
			for wi, name := range o.Workloads {
				wl, err := trace.Lookup(name)
				if err != nil {
					return nil, err
				}
				cfg := baseConfig(o, wl, spec, threshold)
				cfg.Geometry = sys.Geometry
				cfg.Cores = sys.Cores
				cfg.ChannelInterleaved = sys.ChannelInterleaved
				cfg.Seed = o.Seed + uint64(wi)
				cells = append(cells, runner.Cell{
					Tag: sys.Name + "/" + label + "/" + name, Config: cfg, Pair: true,
				})
			}
		}
	}
	// Progress groups by system: each system's whole scheme lineup.
	systems := Fig11Systems()
	var pg *progressGroups
	if progress != nil && !o.Quiet {
		perSystem := len(bars) / len(systems) * len(o.Workloads)
		pg = newProgressGroups(uniform(len(systems), perSystem),
			func(g int, _ []runner.CellResult) {
				fmt.Fprintf(progress, "  %s done\n", systems[g].Name)
			})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, err
	}
	n := float64(len(o.Workloads))
	out := make([]Fig11Point, len(bars))
	for bi, b := range bars {
		sumC, sumE := 0.0, 0.0
		for wi := range o.Workloads {
			r := results[bi*len(o.Workloads)+wi]
			sumC += r.Result.CMRPO
			sumE += r.ETO
		}
		out[bi] = Fig11Point{
			System: b.system, Scheme: b.label, Threshold: threshold,
			CMRPO: sumC / n, ETO: sumE / n,
		}
	}
	return out, nil
}

func init() {
	Register(Experiment{
		Name:        "fig11",
		Description: "CMRPO by system size and mapping policy at T=32K/16K (paper Fig. 11, §VIII-B)",
		Run: func(o Options, emit func(*Report) error) error {
			_, err := fig11Reports(o, emit)
			return err
		},
	})
	Register(Experiment{
		Name:        "fig12",
		Description: "refresh-threshold sensitivity 64K..8K with the paper's per-threshold lineups (paper Fig. 12)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := fig12Report(o)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// Fig11 renders the mapping-policy and core-count study for T = 32K, 16K.
func Fig11(w io.Writer, o Options) (map[uint32][]Fig11Point, error) {
	o.Progress = w
	return fig11Reports(o, textEmit(w))
}

func fig11Reports(o Options, emit func(*Report) error) (map[uint32][]Fig11Point, error) {
	out := map[uint32][]Fig11Point{}
	for _, threshold := range []uint32{32768, 16384} {
		points, err := RunFig11(o, threshold, o.Progress)
		if err != nil {
			return nil, err
		}
		out[threshold] = points
		rep := &Report{
			Name:  "fig11",
			Title: fmt.Sprintf("Fig. 11: CMRPO per bank by system and mapping policy, T=%dK", threshold/1024),
			Columns: []Column{
				{Name: "system", Type: "string"},
				{Name: "scheme", Type: "string"},
				{Name: "cmrpo", Header: "CMRPO", Type: "percent"},
				{Name: "eto", Header: "ETO", Type: "percent"},
			},
			Meta: o.meta(),
		}
		rep.Meta.Threshold = threshold
		for _, p := range points {
			rep.Rows = append(rep.Rows, Row{p.System, p.Scheme, p.CMRPO, p.ETO})
		}
		if err := emit(rep); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Fig12Point is one bar of Fig. 12 (threshold sensitivity).
type Fig12Point struct {
	Threshold uint32
	Scheme    string
	CMRPO     float64
	ETO       float64
}

// fig12Report sweeps the refresh threshold (64K..8K) on the dual-core
// system with the paper's per-threshold lineups: PRA with matched p,
// SCA_128 (SCA_256 at 8K) and PRCAT/DRCAT with 32/64/64/128 counters.
func fig12Report(o Options) ([]Fig12Point, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	catCounters := map[uint32]int{65536: 32, 32768: 64, 16384: 64, 8192: 128}
	scaCounters := map[uint32]int{65536: 128, 32768: 128, 16384: 128, 8192: 256}
	type bar struct {
		threshold uint32
		label     string
	}
	thresholds := []uint32{65536, 32768, 16384, 8192}
	var bars []bar
	var cells []runner.Cell
	for _, threshold := range thresholds {
		schemes := []sim.SchemeSpec{
			{Kind: mitigation.KindPRA},
			{Kind: mitigation.KindSCA, Counters: scaCounters[threshold]},
			{Kind: mitigation.KindPRCAT, Counters: catCounters[threshold], MaxLevels: 11},
			{Kind: mitigation.KindDRCAT, Counters: catCounters[threshold], MaxLevels: 11},
		}
		for _, spec := range schemes {
			label := spec.Label(threshold)
			bars = append(bars, bar{threshold: threshold, label: label})
			for wi, name := range o.Workloads {
				wl, err := trace.Lookup(name)
				if err != nil {
					return nil, nil, err
				}
				cfg := baseConfig(o, wl, spec, threshold)
				cfg.Seed = o.Seed + uint64(wi)
				cells = append(cells, runner.Cell{
					Tag:    fmt.Sprintf("T=%d/%s/%s", threshold, label, name),
					Config: cfg, Pair: true,
				})
			}
		}
	}
	// Progress groups by threshold: four schemes' cells each.
	var pg *progressGroups
	if o.Progress != nil && !o.Quiet {
		perThreshold := len(bars) / len(thresholds) * len(o.Workloads)
		pg = newProgressGroups(uniform(len(thresholds), perThreshold),
			func(g int, _ []runner.CellResult) {
				fmt.Fprintf(o.Progress, "  T=%dK done\n", thresholds[g]/1024)
			})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, nil, err
	}
	n := float64(len(o.Workloads))
	out := make([]Fig12Point, len(bars))
	for bi, b := range bars {
		sumC, sumE := 0.0, 0.0
		for wi := range o.Workloads {
			r := results[bi*len(o.Workloads)+wi]
			sumC += r.Result.CMRPO
			sumE += r.ETO
		}
		out[bi] = Fig12Point{Threshold: b.threshold, Scheme: b.label,
			CMRPO: sumC / n, ETO: sumE / n}
	}
	rep := &Report{
		Name:  "fig12",
		Title: "Fig. 12: CMRPO for refresh thresholds 64K/32K/16K/8K (dual-core/2ch)",
		Columns: []Column{
			{Name: "T", Type: "int"},
			{Name: "scheme", Type: "string"},
			{Name: "cmrpo", Header: "CMRPO", Type: "percent"},
			{Name: "eto", Header: "ETO", Type: "percent"},
		},
		Meta: o.meta(),
	}
	for _, p := range out {
		rep.Rows = append(rep.Rows, Row{
			annotate(int(p.Threshold), fmt.Sprintf("%dK", p.Threshold/1024)),
			p.Scheme, p.CMRPO, p.ETO,
		})
	}
	return out, rep, nil
}

// Fig12 renders the threshold-sensitivity sweep as a text table.
func Fig12(w io.Writer, o Options) ([]Fig12Point, error) {
	o.Progress = w
	points, rep, err := fig12Report(o)
	if err != nil {
		return nil, err
	}
	return points, rep.renderText(w)
}
