package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"catsim/internal/mitigation"
)

// TestFigTOutputIdenticalAcrossParallelism extends the suite's
// determinism contract to the time-series study: byte-identical rendering
// and identical epoch points at -parallel 1 and 8.
func TestFigTOutputIdenticalAcrossParallelism(t *testing.T) {
	skipIfShort(t)
	var rendered []string
	var points [][]FigTPoint
	for _, p := range []int{1, 8} {
		var buf bytes.Buffer
		pts, err := FigT(&buf, para(p))
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, buf.String())
		points = append(points, pts)
	}
	if rendered[0] != rendered[1] {
		t.Errorf("FigT output differs between parallelism 1 and 8:\n--- p=1\n%s\n--- p=8\n%s",
			rendered[0], rendered[1])
	}
	if !reflect.DeepEqual(points[0], points[1]) {
		t.Error("FigT points differ between parallelism 1 and 8")
	}
	if !strings.Contains(rendered[0], "missed victims)") {
		t.Error("progress lines missing from non-quiet run")
	}
}

// TestFigTTrajectoryShape checks the study actually produces a time
// series: every scheme contributes multiple ordered epochs, DRCAT's tree
// occupancy is visible and non-decreasing within an interval, and the
// deterministic trackers never miss a victim even across the onset.
func TestFigTTrajectoryShape(t *testing.T) {
	skipIfShort(t)
	pts, err := FigT(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	perScheme := map[string][]FigTPoint{}
	for _, p := range pts {
		perScheme[p.Scheme] = append(perScheme[p.Scheme], p)
	}
	if len(perScheme) != len(figTSchemes()) {
		t.Fatalf("schemes in output: %d, want %d", len(perScheme), len(figTSchemes()))
	}
	for scheme, series := range perScheme {
		if len(series) < 2 {
			t.Errorf("%s: only %d epochs; the study needs a trajectory", scheme, len(series))
		}
		for i, p := range series {
			if p.Epoch != i {
				t.Errorf("%s: epoch %d at position %d", scheme, p.Epoch, i)
			}
			if i > 0 && p.EndNS <= series[i-1].EndNS {
				t.Errorf("%s: EndNS not increasing at epoch %d", scheme, i)
			}
		}
	}
	for _, p := range pts {
		if p.Scheme != "DSAC_64" && p.MissedVictims != 0 {
			t.Errorf("deterministic %s missed %d victims at epoch %d", p.Scheme, p.MissedVictims, p.Epoch)
		}
	}
	drcat := perScheme["DRCAT_64"]
	if len(drcat) == 0 {
		t.Fatal("DRCAT_64 missing from the default lineup")
	}
	if drcat[0].Occupancy <= 0 {
		t.Error("DRCAT occupancy not reported")
	}
	if drcat[0].TreeDepth < 1 {
		t.Error("DRCAT tree depth not reported")
	}
}

// TestFigTSchemeOverride mirrors figx: the -scheme flag swaps the lineup
// and labels rows by the full spec string.
func TestFigTSchemeOverride(t *testing.T) {
	skipIfShort(t)
	o := tiny()
	o.Schemes = []mitigation.SchemeSpec{mustParse(t, "sca:counters=128")}
	pts, err := FigT(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no epochs")
	}
	for _, p := range pts {
		if p.Scheme != "sca:counters=128" {
			t.Fatalf("scheme label %q, want the spec string", p.Scheme)
		}
	}
}

// TestFigTCellsCacheAcrossCalls checks figt runs ride the shared result
// cache like every other figure.
func TestFigTCellsCacheAcrossCalls(t *testing.T) {
	skipIfShort(t)
	o := tiny()
	if err := (&o).fill(); err != nil {
		t.Fatal(err)
	}
	if _, err := FigT(nil, o); err != nil {
		t.Fatal(err)
	}
	runs := len(o.Cache.Runs())
	if runs == 0 {
		t.Fatal("no runs recorded in the shared cache")
	}
	if _, err := FigT(nil, o); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Cache.Runs()); got != runs {
		t.Errorf("second FigT executed %d new runs, want 0", got-runs)
	}
}

func mustParse(t *testing.T, s string) mitigation.SchemeSpec {
	t.Helper()
	spec, err := mitigation.ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestEpochSamplesSurviveTheCache guards the runner-cache copy: a cached
// figt result must still carry its epoch series.
func TestEpochSamplesSurviveTheCache(t *testing.T) {
	skipIfShort(t)
	o := tiny()
	if err := (&o).fill(); err != nil {
		t.Fatal(err)
	}
	wl, err := figXBenign(o)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(o, wl, simSchemeSpec(mitigation.KindDRCAT, 64), FigTThreshold)
	cfg.EpochNS = cfg.IntervalNS / 4
	eng := o.engine()
	first, err := eng.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Epochs) == 0 || !reflect.DeepEqual(first.Epochs, second.Epochs) {
		t.Errorf("cached epochs diverge: %d vs %d samples", len(first.Epochs), len(second.Epochs))
	}
	if o.Cache.Hits() == 0 {
		t.Error("second run should have hit the cache")
	}
	unsampled := cfg
	unsampled.EpochNS = 0
	r, err := eng.Run(unsampled)
	if err != nil {
		t.Fatal(err)
	}
	if r.Epochs != nil {
		t.Error("unsampled config must not share the sampled cache entry")
	}
}
