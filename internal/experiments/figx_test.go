package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"catsim/internal/runner"
	"catsim/internal/trace"
)

// TestFigXOutputIdenticalAcrossParallelism is the ISSUE-2 acceptance
// determinism contract: the cross-scheme protection experiment renders
// byte-identical output and returns identical points at -parallel 1 and 8.
func TestFigXOutputIdenticalAcrossParallelism(t *testing.T) {
	skipIfShort(t)
	var rendered []string
	var points [][]FigXPoint
	for _, p := range []int{1, 8} {
		var buf bytes.Buffer
		pts, err := FigX(&buf, para(p))
		if err != nil {
			t.Fatal(err)
		}
		rendered = append(rendered, buf.String())
		points = append(points, pts)
	}
	if rendered[0] != rendered[1] {
		t.Errorf("FigX output differs between parallelism 1 and 8:\n--- p=1\n%s\n--- p=8\n%s",
			rendered[0], rendered[1])
	}
	if !reflect.DeepEqual(points[0], points[1]) {
		t.Error("FigX points differ between parallelism 1 and 8")
	}
	if !strings.Contains(rendered[0], "missed victims across schemes") {
		t.Error("progress lines missing from non-quiet run")
	}
}

// TestFigXDeterministicSchemesNeverMissVictims is the experiment-level
// oracle proof: across every threshold and adversarial pattern, the
// deterministic trackers (everything but DSAC) must show zero violations
// and a zero missed-victim rate, while the attack genuinely exposes
// victims (the pattern is not a no-op).
func TestFigXDeterministicSchemesNeverMissVictims(t *testing.T) {
	skipIfShort(t)
	o := tiny()
	pts, err := FigX(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(FigXThresholds()) * len(FigXPatterns()) * len(figXSchemes())
	if len(pts) != wantRows {
		t.Fatalf("%d points, want %d", len(pts), wantRows)
	}
	for _, p := range pts {
		if strings.HasPrefix(p.Scheme, "DSAC") {
			continue
		}
		if p.Violations != 0 || p.MissedVictims != 0 || p.MissedRate != 0 {
			t.Errorf("%s/T=%d/%s: violations=%d missed=%d rate=%v — deterministic scheme missed victims",
				p.Scheme, p.Threshold, p.Pattern, p.Violations, p.MissedVictims, p.MissedRate)
		}
		if p.RowsRefreshed == 0 {
			t.Errorf("%s/T=%d/%s: no rows refreshed under a Heavy attack blend",
				p.Scheme, p.Threshold, p.Pattern)
		}
	}
}

// TestFigXSharesBaselinesAndCache verifies the experiment runs on the
// shared runner cache: the per-(threshold, pattern) no-mitigation baseline
// executes once for all six schemes, and a second FigX call over the same
// shared cache re-runs nothing.
func TestFigXSharesBaselinesAndCache(t *testing.T) {
	skipIfShort(t)
	o := para(8)
	o.Cache = runner.NewCache()
	o.Quiet = true
	if _, err := FigX(nil, o); err != nil {
		t.Fatal(err)
	}
	baselines := 0
	for _, key := range o.Cache.Runs() {
		if strings.HasPrefix(key, "None|") {
			baselines++
		}
	}
	if want := len(FigXThresholds()) * len(FigXPatterns()); baselines != want {
		t.Errorf("%d baseline executions, want %d (one per threshold × pattern)", baselines, want)
	}
	runs := len(o.Cache.Runs())
	if _, err := FigX(nil, o); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Cache.Runs()); got != runs {
		t.Errorf("second FigX over the shared cache executed %d new simulations", got-runs)
	}
}

func TestFigXBenignFallsBackToMemoryIntensive(t *testing.T) {
	o := tiny()
	o.Workloads = []string{"swapt"} // GapMean 140: not memory-intensive
	if err := o.fill(); err != nil {
		t.Fatal(err)
	}
	wl, err := figXBenign(o)
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name != trace.MemoryIntensive()[0].Name {
		t.Errorf("fallback picked %s, want the first memory-intensive workload", wl.Name)
	}
}
