package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"catsim/internal/mitigation"
)

func TestRegistryMatchesCanonicalOrder(t *testing.T) {
	if got := Names(); !reflect.DeepEqual(got, canonicalOrder) {
		t.Errorf("registered experiments %v\nwant canonical order %v (update both the registration and canonicalOrder)",
			got, canonicalOrder)
	}
	for _, e := range Experiments() {
		if e.Description == "" {
			t.Errorf("experiment %s has no description", e.Name)
		}
	}
	// The historical ReproduceAll drift: ablations and headlines must be
	// registered so every registry iterator (ReproduceAll, the CLI) runs
	// them.
	for _, name := range []string{"ablations", "headlines"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("%s missing from the registry", name)
		}
	}
}

func TestRunExperimentUnknownName(t *testing.T) {
	err := RunExperiment("nope", Options{}, NewTextRenderer(&bytes.Buffer{}))
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("err = %v", err)
	}
	// The error lists the registry, so a CLI can print it verbatim.
	if !strings.Contains(err.Error(), "fig8") {
		t.Errorf("error should list registered names: %v", err)
	}
}

func TestUnknownWorkloadFailsLoudly(t *testing.T) {
	o := Options{Scale: 0.05, Workloads: []string{"black", "nope"}}
	err := o.fill()
	if err == nil {
		t.Fatal("fill must reject unknown workloads")
	}
	if !strings.Contains(err.Error(), `unknown workload "nope"`) {
		t.Errorf("err = %v", err)
	}
	// The valid names ride along so the user can fix the typo.
	for _, want := range []string{"black", "comm1", "tigr"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should list valid workload %q: %v", want, err)
		}
	}
}

func TestFigxSchemeOverride(t *testing.T) {
	skipIfShort(t)
	o := micro()
	o.Schemes = []mitigation.SchemeSpec{
		{Kind: mitigation.KindDRCAT, Params: mitigation.Params{"counters": "64", "levels": "11"}},
	}
	var got []*Report
	err := RunExperiment("figx", o, renderFunc(func(r *Report) error {
		got = append(got, r)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("reports = %d", len(got))
	}
	rows := got[0].Rows
	// 2 thresholds x 4 patterns x 1 scheme.
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// User specs are labeled by their full spec string, so lineups that
	// differ only in a parameter outside the figure label (depth, seed,
	// ways, levels) stay distinguishable.
	for _, row := range rows {
		if row[2] != "drcat:counters=64,levels=11" {
			t.Errorf("scheme cell = %v, want the full spec string", row[2])
		}
	}
	// A spec the grid cannot express fails loudly instead of silently
	// dropping the parameter.
	o.Schemes = []mitigation.SchemeSpec{
		{Kind: mitigation.KindDRCAT, Params: mitigation.Params{"counters": "64", "weightbits": "3"}},
	}
	if err := RunExperiment("figx", o, NewTextRenderer(&bytes.Buffer{})); err == nil ||
		!strings.Contains(err.Error(), "not supported in experiment grids") {
		t.Errorf("expected grid-spec error, got %v", err)
	}
}

// renderFunc adapts a function to the Renderer interface.
type renderFunc func(*Report) error

func (f renderFunc) Report(r *Report) error { return f(r) }
func (f renderFunc) Flush() error           { return nil }
