package experiments

import (
	"fmt"
	"io"

	"catsim/internal/mitigation"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// Fig13Point is one bar of Fig. 13: mean ETO of benign workloads under
// kernel attacks.
type Fig13Point struct {
	Threshold uint32
	Mode      trace.AttackMode
	Scheme    string
	ETO       float64
	CMRPO     float64
}

// Fig13Kernels is the paper's kernel-attack count. Scaled runs use fewer
// kernels (at least two) to bound the sweep.
const Fig13Kernels = 12

func init() {
	Register(Experiment{
		Name:        "fig13",
		Description: "ETO of benign workloads under blended kernel attacks (paper Fig. 13, §VIII-D)",
		Run: func(o Options, emit func(*Report) error) error {
			_, rep, err := fig13Report(o)
			if err != nil {
				return err
			}
			return emit(rep)
		},
	})
}

// fig13Report measures the attack study: three blend modes x three refresh
// thresholds x the counter-based schemes (SCA_128/PRCAT_64/DRCAT_64, with
// counters doubled at T=8K), averaging ETO over the kernel attacks blended
// into memory-intensive benign workloads.
func fig13Report(o Options) ([]Fig13Point, *Report, error) {
	if err := o.fill(); err != nil {
		return nil, nil, err
	}
	kernels := Fig13Kernels
	if o.Scale < 1 {
		kernels = 3
	}
	benign := trace.MemoryIntensive()
	if len(benign) == 0 {
		return nil, nil, fmt.Errorf("experiments: no memory-intensive workloads")
	}

	type bar struct {
		threshold uint32
		mode      trace.AttackMode
		label     string
	}
	thresholds := []uint32{32768, 16384, 8192}
	var bars []bar
	var cells []runner.Cell
	for _, threshold := range thresholds {
		catM, scaM := 64, 128
		if threshold == 8192 {
			catM, scaM = 128, 256
		}
		schemes := []sim.SchemeSpec{
			{Kind: mitigation.KindSCA, Counters: scaM},
			{Kind: mitigation.KindPRCAT, Counters: catM, MaxLevels: 11},
			{Kind: mitigation.KindDRCAT, Counters: catM, MaxLevels: 11},
		}
		for _, mode := range []trace.AttackMode{trace.Heavy, trace.Medium, trace.Light} {
			for _, spec := range schemes {
				label := spec.Label(threshold)
				bars = append(bars, bar{threshold: threshold, mode: mode, label: label})
				for k := 0; k < kernels; k++ {
					wl := benign[k%len(benign)]
					cfg := baseConfig(o, wl, spec, threshold)
					cfg.Attack = &sim.AttackConfig{Kernel: k, Mode: mode}
					cfg.Seed = o.Seed + uint64(k)*7919
					cells = append(cells, runner.Cell{
						Tag:    fmt.Sprintf("fig13 %s/%v/k%d", label, mode, k),
						Config: cfg, Pair: true,
					})
				}
			}
		}
	}
	// Progress groups by threshold: every mode x scheme x kernel cell.
	var pg *progressGroups
	if o.Progress != nil && !o.Quiet {
		perThreshold := len(bars) / len(thresholds) * kernels
		pg = newProgressGroups(uniform(len(thresholds), perThreshold),
			func(g int, _ []runner.CellResult) {
				fmt.Fprintf(o.Progress, "  T=%dK done\n", thresholds[g]/1024)
			})
	}
	results, err := pg.attach(o.engine()).Grid(o.Context, cells)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Fig13Point, len(bars))
	for bi, b := range bars {
		sumE, sumC := 0.0, 0.0
		for k := 0; k < kernels; k++ {
			r := results[bi*kernels+k]
			sumE += r.ETO
			sumC += r.Result.CMRPO
		}
		out[bi] = Fig13Point{
			Threshold: b.threshold, Mode: b.mode, Scheme: b.label,
			ETO: sumE / float64(kernels), CMRPO: sumC / float64(kernels),
		}
	}
	rep := &Report{
		Name:  "fig13",
		Title: "Fig. 13: ETO under kernel attacks (Heavy 75%, Medium 50%, Light 25% target rows)",
		Columns: []Column{
			{Name: "T", Type: "int"},
			{Name: "mode", Type: "string"},
			{Name: "scheme", Type: "string"},
			{Name: "eto", Header: "ETO", Type: "percent"},
			{Name: "cmrpo", Header: "CMRPO", Type: "percent"},
		},
		Meta: o.meta(),
	}
	for _, p := range out {
		rep.Rows = append(rep.Rows, Row{
			annotate(int(p.Threshold), fmt.Sprintf("%dK", p.Threshold/1024)),
			p.Mode.String(), p.Scheme, p.ETO, p.CMRPO,
		})
	}
	return out, rep, nil
}

// Fig13 renders the kernel-attack study as a text table.
func Fig13(w io.Writer, o Options) ([]Fig13Point, error) {
	o.Progress = w
	points, rep, err := fig13Report(o)
	if err != nil {
		return nil, err
	}
	return points, rep.renderText(w)
}
