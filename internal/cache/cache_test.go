package cache

import (
	"testing"

	"catsim/internal/rng"
)

func TestBasicHitMiss(t *testing.T) {
	c, err := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	if hit, _, _ := c.Access(0, false); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := c.Access(0, false); !hit {
		t.Error("warm access missed")
	}
	if hit, _, _ := c.Access(32, false); !hit {
		t.Error("same-line access missed")
	}
	if c.Stats().Misses != 1 || c.Stats().Hits != 2 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestEvictionLRUAndWriteback(t *testing.T) {
	// Direct-mapped (ways beyond sets force conflicts): 4 sets, 1 way.
	c, err := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, true) // dirty line at set 0
	// Conflicting line (same set): set count = 4, so +4 lines = 256 bytes.
	_, victim, wb := c.Access(256, false)
	if !wb || victim != 0 {
		t.Errorf("expected writeback of addr 0, got %v %v", victim, wb)
	}
	// Clean eviction: no writeback.
	_, _, wb = c.Access(512, false)
	if wb {
		t.Error("clean line must not write back")
	}
}

func TestWorkingSetFitsPerfectly(t *testing.T) {
	c, err := New(PerCoreLLC(1))
	if err != nil {
		t.Fatal(err)
	}
	// Touch 256 KB twice: second pass must hit entirely.
	for pass := 0; pass < 2; pass++ {
		for a := int64(0); a < 256*1024; a += 64 {
			c.Access(a, false)
		}
	}
	if hr := c.HitRate(); hr < 0.49 {
		t.Errorf("hit rate %v, want ~0.5 (second pass all hits)", hr)
	}
}

func TestThrashingMisses(t *testing.T) {
	c, _ := New(Config{SizeBytes: 8192, LineBytes: 64, Ways: 2})
	src := rng.NewXoshiro256(5)
	for i := 0; i < 100000; i++ {
		c.Access(int64(rng.Intn(src, 1<<26))&^63, false)
	}
	if hr := c.HitRate(); hr > 0.01 {
		t.Errorf("hit rate %v for a 64 MB random stream over an 8 KB cache", hr)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 4096, LineBytes: 64, Ways: 0},
		{SizeBytes: 100, LineBytes: 64, Ways: 1},
		{SizeBytes: 4096, LineBytes: 48, Ways: 1},
		{SizeBytes: 64, LineBytes: 64, Ways: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}
