// Package cache implements the last-level cache of the paper's system
// (Table I: 512 KB per core): a set-associative, write-back, write-allocate
// LRU cache. The synthetic workload presets are calibrated post-LLC, so the
// crosstalk experiments drive memory directly; the LLC substrate is used by
// the examples (to turn a raw program reference stream into the memory
// traffic the controller sees) and by the locality studies.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes the cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// PerCoreLLC is the paper's 512 KB per-core last-level cache.
func PerCoreLLC(cores int) Config {
	return Config{SizeBytes: 512 * 1024 * cores, LineBytes: 64, Ways: 16}
}

// Stats counts cache events.
type Stats struct {
	Hits       int64
	Misses     int64
	Writebacks int64
}

// Cache is a set-associative write-back cache. Not safe for concurrent use.
type Cache struct {
	cfg     Config
	sets    int
	offBits uint
	tags    []int64 // line tag per slot; -1 when invalid
	dirty   []bool
	lastUse []int64
	tick    int64
	stats   Stats
}

// New builds a cache; all dimensions must be powers of two.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: non-positive dimension %+v", cfg)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines < cfg.Ways || cfg.SizeBytes%cfg.LineBytes != 0 || lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d ways", lines, cfg.Ways)
	}
	sets := lines / cfg.Ways
	for _, v := range []int{cfg.LineBytes, sets} {
		if v&(v-1) != 0 {
			return nil, fmt.Errorf("cache: dimension %d not a power of two", v)
		}
	}
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		offBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		tags:    make([]int64, lines),
		dirty:   make([]bool, lines),
		lastUse: make([]int64, lines),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c, nil
}

// Access looks up addr. On a miss the line is allocated; if a dirty victim
// is evicted, its address is returned with writeback=true. The caller
// forwards misses (and writebacks) to the memory system.
func (c *Cache) Access(addr int64, write bool) (hit bool, victim int64, writeback bool) {
	c.tick++
	line := addr >> c.offBits
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == line {
			c.stats.Hits++
			c.lastUse[base+w] = c.tick
			if write {
				c.dirty[base+w] = true
			}
			return true, 0, false
		}
	}
	c.stats.Misses++
	slot := base
	for w := 1; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == -1 {
			slot = base + w
			break
		}
		if c.lastUse[base+w] < c.lastUse[slot] {
			slot = base + w
		}
	}
	if c.tags[slot] >= 0 && c.dirty[slot] {
		victim = c.tags[slot] << c.offBits
		writeback = true
		c.stats.Writebacks++
	}
	c.tags[slot] = line
	c.dirty[slot] = write
	c.lastUse[slot] = c.tick
	return false, victim, writeback
}

// Stats returns accumulated counts.
func (c *Cache) Stats() Stats { return c.stats }

// HitRate returns the fraction of accesses that hit.
func (c *Cache) HitRate() float64 {
	total := c.stats.Hits + c.stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.stats.Hits) / float64(total)
}
