package core

import (
	"testing"

	"catsim/internal/rng"
)

func TestAvgLookupMatchesPaperBallpark(t *testing.T) {
	// Paper §VII-A: "the average latency for PRCAT is 3.6ns ... DRCAT ...
	// incurs 4ns latency". Drive a canonical tree with mixed traffic and
	// check the model lands in the published range.
	for _, tc := range []struct {
		policy Policy
		lo, hi float64
	}{
		{PRCAT, 2.5, 4.5},
		{DRCAT, 2.9, 4.9},
	} {
		cfg := Config{Rows: 1 << 16, Counters: 64, MaxLevels: 11,
			RefreshThreshold: 4096, Policy: tc.policy}
		tree := mustTree(t, cfg)
		src := rng.NewXoshiro256(5)
		hot := 12345
		for i := 0; i < 1<<17; i++ {
			row := hot
			if i%3 == 0 {
				row = rng.Intn(src, cfg.Rows)
			}
			tree.Access(row)
		}
		got := tree.AvgLookupNS()
		if got < tc.lo || got > tc.hi {
			t.Errorf("%v: avg lookup %.2f ns, want in [%.1f, %.1f] (paper: 3.6/4.0)",
				tc.policy, got, tc.lo, tc.hi)
		}
		if w := tree.WorstLookupNS(); w <= got {
			t.Errorf("%v: worst %.2f ns not above average %.2f ns", tc.policy, w, got)
		}
	}
}

func TestDRCATLookupSlowerThanPRCAT(t *testing.T) {
	run := func(p Policy) float64 {
		cfg := Config{Rows: 1 << 16, Counters: 64, MaxLevels: 11,
			RefreshThreshold: 4096, Policy: p}
		tree := mustTree(t, cfg)
		for i := 0; i < 1<<14; i++ {
			tree.Access(i & (1<<16 - 1))
		}
		return tree.AvgLookupNS()
	}
	if pr, dr := run(PRCAT), run(DRCAT); dr <= pr {
		t.Errorf("DRCAT lookup %.2f ns should exceed PRCAT's %.2f ns (weight register)", dr, pr)
	}
}

func TestLookupLatencyZeroWithoutTraffic(t *testing.T) {
	tree := mustTree(t, defaultCfg())
	if got := tree.AvgLookupNS(); got != 0 {
		t.Errorf("AvgLookupNS = %v before any access", got)
	}
}
