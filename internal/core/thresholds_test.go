package core

import (
	"testing"
	"testing/quick"
)

func TestNewLadderMatchesPublishedCanonicalValues(t *testing.T) {
	// Paper §IV-D: "when applied to the tree with M = 64 counters and
	// L = 10 levels, the values of the thresholds computed by the model
	// are: T5 = 5155, T6 = 10309, T7 = 12886, T8 = 16384, and T9 = T = 32768."
	ladder := NewLadder(64, 10, 32768)
	want := map[int]uint32{5: 5155, 6: 10309, 7: 12886, 8: 16384, 9: 32768}
	for level, v := range want {
		if ladder[level] != v {
			t.Errorf("T%d = %d, want %d", level, ladder[level], v)
		}
	}
	if err := ValidateLadder(ladder, 10, 32768); err != nil {
		t.Error(err)
	}
}

func TestNewLadderScalesWithThreshold(t *testing.T) {
	// The T=16K experiments scale the ladder proportionally.
	ladder := NewLadder(64, 10, 16384)
	if ladder[8] != 8192 {
		t.Errorf("T8 = %d, want T/2 = 8192", ladder[8])
	}
	if ladder[9] != 16384 {
		t.Errorf("T9 = %d, want T = 16384", ladder[9])
	}
	// Bottom rung keeps the canonical fraction 28/178 of T.
	if ladder[5] < 2570 || ladder[5] > 2584 {
		t.Errorf("T5 = %d, want about 16384*28/178 = 2577", ladder[5])
	}
}

func TestGeometricLadderMatchesWorkedExample(t *testing.T) {
	// Paper §IV-D worked example (M=4, L=4): T2 = T/2, T1 = T/4, T3 = T.
	const refresh = 32768
	ladder := GeometricLadder(4, refresh)
	if ladder[1] != refresh/4 || ladder[2] != refresh/2 || ladder[3] != refresh {
		t.Errorf("ladder = %v, want [.., %d, %d, %d]", ladder, refresh/4, refresh/2, refresh)
	}
	if err := ValidateLadder(ladder, 4, refresh); err != nil {
		t.Error(err)
	}
}

func TestUniformLadderAllRungsAtT(t *testing.T) {
	ladder := UniformLadder(7, 999)
	for i, v := range ladder {
		if v != 999 {
			t.Errorf("rung %d = %d, want 999", i, v)
		}
	}
}

func TestPaperLadderIsCanonical(t *testing.T) {
	a, b := PaperLadder(32768), NewLadder(64, 10, 32768)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PaperLadder differs from NewLadder at %d", i)
		}
	}
}

func TestLaddersAlwaysValid(t *testing.T) {
	// Every (M, L, T) combination used in the paper's sweeps must yield a
	// valid ladder: Fig. 10 uses M = 32..512 and L = 6..14.
	for _, m := range []int{1, 2, 4, 32, 64, 128, 256, 512} {
		for l := 1; l <= 16; l++ {
			for _, refresh := range []uint32{8192, 16384, 32768, 65536} {
				ladder := NewLadder(m, l, refresh)
				if err := ValidateLadder(ladder, l, refresh); err != nil {
					t.Errorf("NewLadder(%d,%d,%d): %v", m, l, refresh, err)
				}
				geo := GeometricLadder(l, refresh)
				if err := ValidateLadder(geo, l, refresh); err != nil {
					t.Errorf("GeometricLadder(%d,%d): %v", l, refresh, err)
				}
			}
		}
	}
}

func TestLadderQuickProperties(t *testing.T) {
	f := func(mExp, l uint8, refresh uint32) bool {
		m := 1 << (mExp % 10)
		levels := int(l%14) + 1
		if refresh == 0 {
			refresh = 1
		}
		ladder := NewLadder(m, levels, refresh)
		return ValidateLadder(ladder, levels, refresh) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateLadderRejections(t *testing.T) {
	cases := []struct {
		name   string
		ladder []uint32
		l      int
		tt     uint32
	}{
		{"wrong length", []uint32{1, 2}, 3, 2},
		{"zero rung", []uint32{0, 2}, 2, 2},
		{"not monotone", []uint32{5, 3, 8}, 3, 8},
		{"exceeds T", []uint32{5, 9, 8}, 3, 8},
		{"last not T", []uint32{1, 2, 4}, 3, 8},
	}
	for _, c := range cases {
		if err := ValidateLadder(c.ladder, c.l, c.tt); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
