package core

import (
	"testing"
	"testing/quick"

	"catsim/internal/rng"
)

// exposureOracle is the ground-truth crosstalk model used to verify the
// deterministic protection guarantee: victim row v accumulates exposure from
// each adjacent aggressor a in {v-1, v+1} independently, and the exposure
// from a resets only when v itself is refreshed. A scheme is sound when no
// victim's exposure from a single aggressor ever exceeds T.
type exposureOracle struct {
	rows      int
	threshold uint32
	// exposure[v][0] counts activations of v-1 since v's last refresh;
	// exposure[v][1] counts activations of v+1.
	exposure [][2]uint32
}

func newExposureOracle(rows int, threshold uint32) *exposureOracle {
	return &exposureOracle{rows: rows, threshold: threshold, exposure: make([][2]uint32, rows)}
}

// activate records an aggressor activation and reports whether any victim's
// exposure exceeded the threshold (a missed refresh).
func (o *exposureOracle) activate(a int) bool {
	bad := false
	if v := a + 1; v < o.rows {
		o.exposure[v][0]++
		bad = bad || o.exposure[v][0] > o.threshold
	}
	if v := a - 1; v >= 0 {
		o.exposure[v][1]++
		bad = bad || o.exposure[v][1] > o.threshold
	}
	return bad
}

// refresh resets the exposure of every victim in [lo, hi].
func (o *exposureOracle) refresh(lo, hi int) {
	for v := lo; v <= hi; v++ {
		o.exposure[v] = [2]uint32{}
	}
}

// refreshAll models the burst auto-refresh at an interval boundary.
func (o *exposureOracle) refreshAll() {
	for v := range o.exposure {
		o.exposure[v] = [2]uint32{}
	}
}

// driveWithOracle pushes a stream through the tree and fails the test on the
// first protection violation.
func driveWithOracle(t *testing.T, tree *Tree, o *exposureOracle, stream func(i int) int, n int, intervalEvery int) {
	t.Helper()
	for i := 0; i < n; i++ {
		row := stream(i)
		lo, hi, refresh := tree.Access(row)
		if o.activate(row) {
			t.Fatalf("access %d (row %d): victim exposure exceeded T before refresh", i, row)
		}
		if refresh {
			o.refresh(lo, hi)
		}
		if intervalEvery > 0 && (i+1)%intervalEvery == 0 {
			tree.OnIntervalBoundary()
			o.refreshAll()
		}
	}
}

func TestProtectionUnderUniformTraffic(t *testing.T) {
	for _, policy := range []Policy{PRCAT, DRCAT} {
		cfg := Config{
			Rows: 1 << 10, Counters: 8, MaxLevels: 7,
			RefreshThreshold: 128, Policy: policy,
		}
		tree := mustTree(t, cfg)
		o := newExposureOracle(cfg.Rows, cfg.RefreshThreshold)
		src := rng.NewXoshiro256(11)
		driveWithOracle(t, tree, o, func(int) int { return rng.Intn(src, cfg.Rows) }, 1<<16, 1<<13)
		if err := tree.CheckInvariants(); err != nil {
			t.Error(err)
		}
	}
}

func TestProtectionUnderSingleRowHammer(t *testing.T) {
	for _, policy := range []Policy{PRCAT, DRCAT} {
		cfg := Config{
			Rows: 1 << 10, Counters: 8, MaxLevels: 7,
			RefreshThreshold: 64, Policy: policy,
		}
		tree := mustTree(t, cfg)
		o := newExposureOracle(cfg.Rows, cfg.RefreshThreshold)
		driveWithOracle(t, tree, o, func(int) int { return 513 }, 1<<15, 0)
	}
}

func TestProtectionUnderDoubleSidedHammer(t *testing.T) {
	// The classic double-sided rowhammer: alternate aggressors around one
	// victim. Each aggressor is tracked independently (paper's per-row T).
	for _, policy := range []Policy{PRCAT, DRCAT} {
		cfg := Config{
			Rows: 1 << 10, Counters: 16, MaxLevels: 8,
			RefreshThreshold: 64, Policy: policy,
		}
		tree := mustTree(t, cfg)
		o := newExposureOracle(cfg.Rows, cfg.RefreshThreshold)
		aggressors := [2]int{500, 502}
		driveWithOracle(t, tree, o, func(i int) int { return aggressors[i%2] }, 1<<15, 0)
	}
}

func TestProtectionUnderAdversarialSpray(t *testing.T) {
	// Spray T-1 accesses over one group, then shift: tries to exploit
	// counter resets and splits to sneak a row past T.
	for _, policy := range []Policy{PRCAT, DRCAT} {
		cfg := Config{
			Rows: 1 << 10, Counters: 8, MaxLevels: 6,
			RefreshThreshold: 32, Policy: policy,
		}
		tree := mustTree(t, cfg)
		o := newExposureOracle(cfg.Rows, cfg.RefreshThreshold)
		src := rng.NewXoshiro256(13)
		stream := func(i int) int {
			base := (i / 31) % (cfg.Rows - 8)
			return base + rng.Intn(src, 8)
		}
		driveWithOracle(t, tree, o, stream, 1<<16, 1<<12)
	}
}

func TestProtectionQuickRandomStreams(t *testing.T) {
	// Property: for arbitrary access streams and both policies, no victim
	// exposure ever exceeds T, and tree invariants hold afterwards.
	f := func(seed uint64, policyBit bool, hotBias uint8) bool {
		cfg := Config{
			Rows: 1 << 9, Counters: 8, MaxLevels: 6,
			RefreshThreshold: 24, Policy: PRCAT,
		}
		if policyBit {
			cfg.Policy = DRCAT
		}
		tree, err := NewTree(cfg)
		if err != nil {
			return false
		}
		o := newExposureOracle(cfg.Rows, cfg.RefreshThreshold)
		src := rng.NewXoshiro256(seed)
		hotRow := rng.Intn(src, cfg.Rows)
		bias := int(hotBias%8) + 1
		ok := true
		for i := 0; i < 6000 && ok; i++ {
			row := hotRow
			if rng.Intn(src, 10) >= bias {
				row = rng.Intn(src, cfg.Rows)
			}
			lo, hi, refresh := tree.Access(row)
			if o.activate(row) {
				ok = false
			}
			if refresh {
				o.refresh(lo, hi)
			}
			if i%1500 == 1499 {
				tree.OnIntervalBoundary()
				o.refreshAll()
			}
		}
		return ok && tree.CheckInvariants() == nil
	}
	cfgQuick := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfgQuick); err != nil {
		t.Error(err)
	}
}

func TestInvariantsQuickAcrossConfigs(t *testing.T) {
	// Property: arbitrary (valid) configurations keep structural invariants
	// under random traffic.
	f := func(seed uint64, mExp, lExtra uint8) bool {
		m := 1 << (1 + mExp%6) // 2..64
		rows := 1 << 10
		l := 2 + int(lExtra%7) // 2..8
		cfg := Config{
			Rows: rows, Counters: m, MaxLevels: l,
			RefreshThreshold: 64, Policy: DRCAT,
		}
		if (1 << (cfg.preSplit() - 1)) > m {
			return true // invalid combination; skip
		}
		tree, err := NewTree(cfg)
		if err != nil {
			return false
		}
		src := rng.NewXoshiro256(seed)
		for i := 0; i < 5000; i++ {
			tree.Access(rng.Intn(src, rows))
		}
		return tree.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOracleDetectsUnprotectedHammer(t *testing.T) {
	// Mutation check of the oracle itself: with no mitigation at all, the
	// oracle must flag a violation once a row passes T activations.
	o := newExposureOracle(64, 10)
	for i := 0; i < 10; i++ {
		if o.activate(5) {
			t.Fatalf("oracle fired early at access %d", i)
		}
	}
	if !o.activate(5) {
		t.Fatal("oracle failed to flag the 11th unmitigated activation")
	}
}
