package core

import (
	"testing"

	"catsim/internal/rng"
)

// Tests for the adaptive behaviours the paper claims beyond the basic
// protection guarantee: Fig. 4's tree shapes, Fig. 6's threshold-driven
// evolution, and §V-B's multi-hot-spot tracking.

func TestFigure4ShapesFromRootBuild(t *testing.T) {
	// Mirror Fig. 4 with M=8 counters and L=6 levels, building from the
	// root (PreSplit=1) so the full evolution is visible.
	base := Config{
		Rows: 1 << 10, Counters: 8, MaxLevels: 6,
		RefreshThreshold: 1 << 12, PreSplit: 1,
	}

	// (b) uniform access frequency: counters distributed uniformly,
	// tree grows only through level log2(M) = 3.
	uniform := mustTree(t, base)
	src := rng.NewXoshiro256(1)
	for i := 0; i < 1<<17 && !uniform.Full(); i++ {
		uniform.Access(rng.Intn(src, base.Rows))
	}
	for _, l := range uniform.Leaves() {
		if l.Depth != 3 {
			t.Errorf("uniform: leaf at depth %d, want 3 (Fig. 4b mimics SCA)", l.Depth)
		}
	}

	// (a) biased access: the tree grows through level 5 around the hot
	// region with large cold leaves elsewhere.
	biased := mustTree(t, base)
	for i := 0; i < 1<<17; i++ {
		row := 7 // a single ultra-hot row at the low end
		if i%16 == 0 {
			row = rng.Intn(src, base.Rows)
		}
		biased.Access(row)
	}
	var hotDepth, maxDepth, minDepth int
	minDepth = 99
	for _, l := range biased.Leaves() {
		if l.Lo <= 7 && 7 <= l.Hi {
			hotDepth = l.Depth
		}
		if l.Depth > maxDepth {
			maxDepth = l.Depth
		}
		if l.Depth < minDepth {
			minDepth = l.Depth
		}
	}
	if hotDepth != base.MaxLevels-1 {
		t.Errorf("biased: hot leaf at depth %d, want %d (Fig. 4a)", hotDepth, base.MaxLevels-1)
	}
	if minDepth >= maxDepth {
		t.Errorf("biased: tree is balanced (depths %d..%d), want unbalanced", minDepth, maxDepth)
	}
	if err := biased.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricLadderGrowsAdaptively(t *testing.T) {
	// The worked-example ladder must also produce deep hot leaves.
	cfg := Config{
		Rows: 1 << 12, Counters: 16, MaxLevels: 9,
		RefreshThreshold: 1 << 12,
	}
	cfg.Ladder = GeometricLadder(cfg.MaxLevels, cfg.RefreshThreshold)
	tree := mustTree(t, cfg)
	for i := 0; i < 1<<15; i++ {
		tree.Access(100)
	}
	var hotDepth int
	for _, l := range tree.Leaves() {
		if l.Lo <= 100 && 100 <= l.Hi {
			hotDepth = l.Depth
		}
	}
	if hotDepth != cfg.MaxLevels-1 {
		t.Errorf("hot leaf depth %d, want %d", hotDepth, cfg.MaxLevels-1)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDRCATTracksMultipleHotSpots(t *testing.T) {
	// §V-B: "the reconfiguration of the CAT according to the weights of
	// the counters has the flexibility of adapting to multiple hot spots".
	// The split thresholds carve fine leaves around every spot present
	// while the tree builds. (Note a genuine property of the paper's
	// weight mechanism: with several *equally* hot spots triggering in
	// strict rotation, each trigger decrements the other spots' weights,
	// so weight saturation — and hence post-build reconfiguration — needs
	// the spots to be unequal or bursty; the adaptive-build path below is
	// how multiple simultaneous spots actually get fine granularity.)
	cfg := Config{
		Rows: 1 << 12, Counters: 32, MaxLevels: 10,
		RefreshThreshold: 256, Policy: DRCAT,
	}
	tree := mustTree(t, cfg)
	spots := []int{200, 1800, 3600}
	src := rng.NewXoshiro256(17)
	for i := 0; i < 1<<17; i++ {
		row := spots[i%3]
		if i%8 == 0 {
			row = rng.Intn(src, cfg.Rows)
		}
		tree.Access(row)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every hot spot must end up in a leaf much finer than the pre-split
	// granularity (rows / 2^(λ-1) = 256 rows).
	for _, s := range spots {
		for _, l := range tree.Leaves() {
			if l.Lo <= s && s <= l.Hi {
				if size := l.Hi - l.Lo + 1; size > 32 {
					t.Errorf("hot spot %d sits in a %d-row leaf; want fine-grained tracking", s, size)
				}
			}
		}
	}
}

func TestDRCATWeightSaturationNeedsDominantSpot(t *testing.T) {
	// Companion to the multi-spot test: document that strict rotation over
	// equally hot spots keeps every weight below saturation (each trigger
	// decrements the other spots), while a single dominant spot saturates
	// and reconfigures. This pins the mechanism's actual behaviour.
	mk := func() *Tree {
		tree := mustTree(t, Config{
			Rows: 1 << 12, Counters: 16, MaxLevels: 9,
			RefreshThreshold: 128, Policy: DRCAT,
		})
		fillTree(t, tree, 31)
		return tree
	}
	rotating := mk()
	spots := []int{100, 2100, 4000}
	for i := 0; i < 1<<16; i++ {
		rotating.Access(spots[i%3])
	}
	if got := rotating.Stats().Reconfigs; got != 0 {
		t.Errorf("equal rotating spots reconfigured %d times; weight aging should prevent it", got)
	}
	dominant := mk()
	for i := 0; i < 1<<16; i++ {
		dominant.Access(100)
	}
	if got := dominant.Stats().Reconfigs; got == 0 {
		t.Error("a dominant spot should saturate its weight and reconfigure")
	}
}

func TestDRCATBeatsPRCATAcrossIntervalBoundaries(t *testing.T) {
	// §V-A: PRCAT "resets the CAT periodically, even when the row access
	// patterns do not change, potentially incurring the overhead of
	// reconstructing the CAT unnecessarily". With a stable pattern and
	// several interval boundaries, DRCAT (which keeps its shape) must
	// refresh no more rows than PRCAT (which relearns every interval).
	run := func(policy Policy) int64 {
		cfg := Config{
			Rows: 1 << 12, Counters: 16, MaxLevels: 9,
			RefreshThreshold: 512, Policy: policy,
		}
		tree, err := NewTree(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.NewXoshiro256(23)
		for interval := 0; interval < 8; interval++ {
			for i := 0; i < 1<<14; i++ {
				row := 999
				if i%4 == 0 {
					row = rng.Intn(src, cfg.Rows)
				}
				tree.Access(row)
			}
			tree.OnIntervalBoundary()
		}
		return tree.Stats().RowsRefreshed
	}
	drcat, prcat := run(DRCAT), run(PRCAT)
	if drcat > prcat {
		t.Errorf("DRCAT refreshed %d rows, PRCAT %d; stable patterns should favour DRCAT", drcat, prcat)
	}
}

func TestWorstCaseAdversarialRotation(t *testing.T) {
	// An adversary rotating over exactly the pre-split group boundaries
	// tries to force maximal splitting then defeat precision; protection
	// must hold and the tree must stay structurally sound.
	cfg := Config{
		Rows: 1 << 10, Counters: 16, MaxLevels: 8,
		RefreshThreshold: 64, Policy: DRCAT,
	}
	tree := mustTree(t, cfg)
	o := newExposureOracle(cfg.Rows, cfg.RefreshThreshold)
	groups := cfg.Rows / 8
	stream := func(i int) int {
		g := (i * 7) % 8
		return g*groups + (i % groups) // stride through every group
	}
	driveWithOracle(t, tree, o, stream, 1<<16, 1<<13)
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
