package core

import (
	"fmt"
	"sort"
	"testing"

	"catsim/internal/rng"
)

// The flat implicit-heap tree must be observationally indistinguishable
// from the pointer-linked reference: same Access return values on every
// call, same statistics, same occupancy, same DRCAT reconfiguration
// decisions. These differential tests drive both implementations with
// identical traces — uniform random rows, hammering storms that force
// refresh/reconfigure churn, and interval boundaries — and fail on the
// first divergence.

// diffConfigs spans the shapes that exercise every code path: tiny trees,
// the paper's defaults, saturated trees (M == leaves at presplit), deep
// ladders, and wide weight registers.
func diffConfigs() []Config {
	return []Config{
		{Rows: 1024, Counters: 16, MaxLevels: 8, RefreshThreshold: 64, Policy: PRCAT},
		{Rows: 1024, Counters: 16, MaxLevels: 8, RefreshThreshold: 64, Policy: DRCAT},
		{Rows: 4096, Counters: 64, MaxLevels: 11, RefreshThreshold: 512, Policy: DRCAT},
		{Rows: 4096, Counters: 64, MaxLevels: 11, RefreshThreshold: 512, Policy: PRCAT},
		{Rows: 512, Counters: 4, MaxLevels: 10, RefreshThreshold: 32, Policy: DRCAT, WeightBits: 3},
		{Rows: 256, Counters: 8, MaxLevels: 9, RefreshThreshold: 16, Policy: DRCAT, PreSplit: 1},
		{Rows: 256, Counters: 1, MaxLevels: 5, RefreshThreshold: 16, Policy: DRCAT},
		{Rows: 2048, Counters: 2048, MaxLevels: 12, RefreshThreshold: 128, Policy: DRCAT},
	}
}

// comparePair asserts both trees agree on one access and on all summary
// state. step identifies the failing access in the trace.
func comparePair(t *testing.T, ref *Tree, flat *FlatTree, row, step int) {
	t.Helper()
	rl, rh, rr := ref.Access(row)
	fl, fh, fr := flat.Access(row)
	if rl != fl || rh != fh || rr != fr {
		t.Fatalf("step %d row %d: pointer (%d,%d,%v) != flat (%d,%d,%v)",
			step, row, rl, rh, rr, fl, fh, fr)
	}
	if ref.Stats() != flat.Stats() {
		t.Fatalf("step %d: stats diverge\npointer %+v\nflat    %+v", step, ref.Stats(), flat.Stats())
	}
	if ref.ActiveCounters() != flat.ActiveCounters() || ref.Full() != flat.Full() {
		t.Fatalf("step %d: occupancy diverges: pointer %d/%v, flat %d/%v",
			step, ref.ActiveCounters(), ref.Full(), flat.ActiveCounters(), flat.Full())
	}
}

// compareWeights checks the weight-register multiset matches (the two
// layouts report weights in different orders).
func compareWeights(t *testing.T, ref *Tree, flat *FlatTree, step int) {
	t.Helper()
	rw, fw := ref.Weights(), flat.Weights()
	if len(rw) != len(fw) {
		t.Fatalf("step %d: weight count %d != %d", step, len(rw), len(fw))
	}
	sort.Slice(rw, func(i, j int) bool { return rw[i] < rw[j] })
	sort.Slice(fw, func(i, j int) bool { return fw[i] < fw[j] })
	for i := range rw {
		if rw[i] != fw[i] {
			t.Fatalf("step %d: weight multisets diverge: %v vs %v", step, rw, fw)
		}
	}
}

func newPair(t *testing.T, cfg Config) (*Tree, *FlatTree) {
	t.Helper()
	ref, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewFlatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ref, flat
}

// TestFlatMatchesPointerRandomTrace drives both trees with uniform random
// rows plus periodic interval boundaries.
func TestFlatMatchesPointerRandomTrace(t *testing.T) {
	for _, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("%s_M%d_R%d", cfg.Policy, cfg.Counters, cfg.Rows), func(t *testing.T) {
			ref, flat := newPair(t, cfg)
			src := rng.NewXoshiro256(42)
			for step := 0; step < 60000; step++ {
				row := int(rng.Float64(src) * float64(cfg.Rows))
				comparePair(t, ref, flat, row, step)
				if step%7919 == 7918 {
					ref.OnIntervalBoundary()
					flat.OnIntervalBoundary()
					compareWeights(t, ref, flat, step)
				}
			}
			compareWeights(t, ref, flat, -1)
		})
	}
}

// TestFlatMatchesPointerReconfigStorm hammers a small, periodically
// shifting set of rows so counters hit the refresh threshold constantly —
// the regime where DRCAT merges and splits on nearly every refresh and
// any divergence in merge-candidate choice shows up immediately.
func TestFlatMatchesPointerReconfigStorm(t *testing.T) {
	for _, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(fmt.Sprintf("%s_M%d_R%d", cfg.Policy, cfg.Counters, cfg.Rows), func(t *testing.T) {
			ref, flat := newPair(t, cfg)
			src := rng.NewXoshiro256(7)
			base := 0
			for step := 0; step < 80000; step++ {
				if step%4096 == 4095 {
					// Shift the hammered neighbourhood so the hot region
					// moves, forcing merges of the now-cold subtree.
					base = int(rng.Float64(src) * float64(cfg.Rows))
				}
				// Double-sided hammering around the moving base with an
				// occasional far row to keep cold leaves populated.
				var row int
				switch step % 8 {
				case 7:
					row = int(rng.Float64(src) * float64(cfg.Rows))
				case 3:
					row = (base + 2) % cfg.Rows
				default:
					row = base % cfg.Rows
				}
				comparePair(t, ref, flat, row, step)
				if step%17389 == 17388 {
					ref.OnIntervalBoundary()
					flat.OnIntervalBoundary()
				}
			}
			st := flat.Stats()
			if cfg.Policy == DRCAT && cfg.Counters >= 4 && cfg.Counters < cfg.Rows && st.Reconfigs == 0 {
				t.Errorf("storm produced no reconfigs (refreshes %d) — test not exercising DRCAT surgery", st.RefreshEvents)
			}
			compareWeights(t, ref, flat, -1)
		})
	}
}

// TestFlatProtectionInvariant spot-checks the flat tree's own guarantee
// independently of the reference: between refreshes of a row's
// neighbourhood, no row accumulates more than RefreshThreshold
// activations without Access reporting a refresh range covering it.
func TestFlatProtectionInvariant(t *testing.T) {
	cfg := Config{Rows: 512, Counters: 16, MaxLevels: 9, RefreshThreshold: 32, Policy: DRCAT}
	flat, err := NewFlatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acts := make([]uint32, cfg.Rows)
	src := rng.NewXoshiro256(99)
	hot := 100
	for step := 0; step < 200000; step++ {
		var row int
		if rng.Float64(src) < 0.7 {
			row = hot + step%3
		} else {
			row = int(rng.Float64(src) * float64(cfg.Rows))
		}
		acts[row]++
		if acts[row] > cfg.RefreshThreshold {
			t.Fatalf("step %d: row %d reached %d activations without refresh", step, row, acts[row])
		}
		lo, hi, refresh := flat.Access(row)
		if refresh {
			for r := lo; r <= hi; r++ {
				acts[r] = 0
			}
		}
		if step%5000 == 4999 {
			flat.OnIntervalBoundary()
			for i := range acts {
				acts[i] = 0
			}
			hot = int(rng.Float64(src) * float64(cfg.Rows-8))
		}
	}
}
