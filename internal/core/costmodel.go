package core

import "fmt"

// The §IV-D cost model, as executable math. The paper derives its split
// thresholds by comparing the number of rows refreshed by candidate tree
// shapes under a parameterised access bias:
//
//	CostSCA = w * R / T                                     (Eq. 2)
//	CostCAT = ((2w)^2 + w^2 + (w/2)^2 + (x+w/2)*w/2) * α/T  (Eq. 3)
//	CostCAT < CostSCA  when  x > 3w                         (Eq. 4)
//
// where w = N/4, R is the references per interval, T the refresh
// threshold, x the extra references biased onto the hottest w/2-row group,
// and α = R/(x+4w). This file implements the general form of that model —
// the expected refresh cost of an arbitrary tree shape under an arbitrary
// bias — plus the critical-bias solver, and the tests verify the paper's
// worked example (x* = 3w, hence T2 = 2*T1) against it.

// ShapeLeaf is one leaf of a candidate tree shape for the cost model:
// a group of Rows rows receiving Refs references per interval.
type ShapeLeaf struct {
	Rows float64
	Refs float64
}

// RefreshCost returns the expected number of rows refreshed per interval
// for a tree with the given leaves and refresh threshold t: each leaf
// reaches the threshold Refs/T times, refreshing its Rows rows each time
// (the neighbour rows are a lower-order term the paper's model drops).
func RefreshCost(leaves []ShapeLeaf, t float64) float64 {
	cost := 0.0
	for _, l := range leaves {
		cost += l.Rows * l.Refs / t
	}
	return cost
}

// BiasedShape builds the leaf set for the model's canonical scenario: a
// tree whose leaf row-counts are given, with references distributed
// proportionally to rows except for an extra bias of x references on the
// LAST leaf, and the whole pattern normalised to r total references.
func BiasedShape(rows []float64, x, r float64) []ShapeLeaf {
	totalRows := 0.0
	for _, w := range rows {
		totalRows += w
	}
	alpha := r / (x + totalRows)
	leaves := make([]ShapeLeaf, len(rows))
	for i, w := range rows {
		refs := w * alpha
		if i == len(rows)-1 {
			refs = (w + x) * alpha
		}
		leaves[i] = ShapeLeaf{Rows: w, Refs: refs}
	}
	return leaves
}

// CostSCAEq2 evaluates Eq. 2: the uniform 4-leaf tree of the worked
// example (each leaf w = n/4 rows) under r references.
func CostSCAEq2(n, r, t float64) float64 {
	w := n / 4
	return w * r / t
}

// CostCATEq3 evaluates Eq. 3: the unbalanced evolution of Fig. 6(c) —
// leaves of 2w, w, w/2 and w/2 rows with the bias x on the last.
func CostCATEq3(n, x, r, t float64) float64 {
	w := n / 4
	return RefreshCost(BiasedShape([]float64{2 * w, w, w / 2, w / 2}, x, r), t)
}

// CriticalBias solves for the bias x* at which the unbalanced shape's cost
// equals the balanced shape's cost, by bisection over x in [0, xMax]. For
// the worked example the closed form is x* = 3w (Eq. 4); the solver exists
// so other shape pairs can be compared the same way.
func CriticalBias(balanced, unbalanced []float64, n, r, t, xMax float64) (float64, error) {
	diff := func(x float64) float64 {
		cb := RefreshCost(BiasedShape(balanced, x, r), t)
		cu := RefreshCost(BiasedShape(unbalanced, x, r), t)
		return cu - cb
	}
	lo, hi := 0.0, xMax
	dLo, dHi := diff(lo), diff(hi)
	if dLo == 0 && dHi == 0 {
		return 0, fmt.Errorf("core: shapes have identical cost at every bias")
	}
	if dLo == 0 {
		return lo, nil
	}
	if dLo*dHi > 0 {
		return 0, fmt.Errorf("core: no cost crossover in [0, %g] (diff %g..%g)", xMax, dLo, dHi)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if d := diff(mid); (d < 0) == (dLo < 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// SplitThresholdRatio derives the threshold relation of the §IV-D race
// argument: at the critical bias, the counter guarding the hot leaf
// (hotRows rows plus the bias) and the counter guarding the competing cold
// leaf (coldRows rows) must reach their thresholds simultaneously, so
//
//	T_hot / T_cold = (hotRows + x*) / coldRows.
//
// For the worked example (hot w-row leaf with x*=3w against the cold
// 2w-row leaf) the ratio is 2 — the paper's "T2 is set to be 2*T1".
func SplitThresholdRatio(hotRows, coldRows, criticalBias float64) float64 {
	return (hotRows + criticalBias) / coldRows
}
