package core

import (
	"testing"

	"catsim/internal/rng"
)

func mustTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tree, err := NewTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func defaultCfg() Config {
	return Config{
		Rows:             1 << 16,
		Counters:         64,
		MaxLevels:        11,
		RefreshThreshold: 32768,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Rows = 1000 },
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.Counters = 48 },
		func(c *Config) { c.Counters = c.Rows * 2 },
		func(c *Config) { c.MaxLevels = 0 },
		func(c *Config) { c.MaxLevels = 18 }, // deeper than log2(64K)+1
		func(c *Config) { c.RefreshThreshold = 0 },
		func(c *Config) { c.PreSplit = 12 }, // > MaxLevels... clamped; use counters
		func(c *Config) { c.WeightBits = 9 },
		func(c *Config) { c.Ladder = []uint32{1, 2} },
	}
	for i, mutate := range bad {
		cfg := defaultCfg()
		mutate(&cfg)
		if cfg.PreSplit == 12 {
			// PreSplit larger than MaxLevels is clamped, so craft a real
			// violation instead: more pre-split leaves than counters.
			cfg.PreSplit = 11
			cfg.Counters = 2
		}
		if _, err := NewTree(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestInitialShapeIsPreSplitUniform(t *testing.T) {
	tree := mustTree(t, defaultCfg())
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	leaves := tree.Leaves()
	// λ = log2(64) = 6 levels => 2^5 = 32 leaves at depth 5, M/2 counters.
	if len(leaves) != 32 {
		t.Fatalf("initial leaves = %d, want 32", len(leaves))
	}
	for _, l := range leaves {
		if l.Depth != 5 {
			t.Errorf("leaf %d at depth %d, want 5", l.Counter, l.Depth)
		}
		if l.Hi-l.Lo+1 != 1<<16/32 {
			t.Errorf("leaf %d covers %d rows, want %d", l.Counter, l.Hi-l.Lo+1, 1<<16/32)
		}
	}
	if tree.Full() {
		t.Error("tree must not be full initially (only M/2 counters active)")
	}
}

func TestSingleCounterTreeActsAsOneBigGroup(t *testing.T) {
	cfg := Config{Rows: 1 << 10, Counters: 1, MaxLevels: 1, RefreshThreshold: 100}
	tree := mustTree(t, cfg)
	var refreshed bool
	var lo, hi int
	for i := 0; i < 100; i++ {
		lo, hi, refreshed = tree.Access(7)
	}
	if !refreshed {
		t.Fatal("expected a refresh at exactly T accesses")
	}
	if lo != 0 || hi != cfg.Rows-1 {
		t.Errorf("refresh range [%d,%d], want full bank", lo, hi)
	}
	if s := tree.Stats(); s.RefreshEvents != 1 || s.RowsRefreshed != int64(cfg.Rows) {
		t.Errorf("stats = %+v", s)
	}
}

func TestHotRowTriggersRefreshAtThreshold(t *testing.T) {
	cfg := defaultCfg()
	cfg.RefreshThreshold = 4096
	tree := mustTree(t, cfg)
	const hot = 12345
	accesses := 0
	for {
		accesses++
		lo, hi, refresh := tree.Access(hot)
		if refresh {
			if hot < lo || hot > hi {
				t.Errorf("refresh [%d,%d] does not cover the aggressor %d", lo, hi, hot)
			}
			break
		}
		if accesses > int(cfg.RefreshThreshold) {
			t.Fatal("no refresh within T accesses of a single row")
		}
	}
	// The deterministic guarantee: refresh no later than the T-th access.
	if accesses > int(cfg.RefreshThreshold) {
		t.Errorf("refresh after %d accesses, want <= %d", accesses, cfg.RefreshThreshold)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRefreshRangeClampedAtBankEdges(t *testing.T) {
	cfg := Config{Rows: 1 << 10, Counters: 1, MaxLevels: 1, RefreshThreshold: 10}
	tree := mustTree(t, cfg)
	for i := 0; i < 9; i++ {
		tree.Access(0)
	}
	lo, hi, refresh := tree.Access(0)
	if !refresh {
		t.Fatal("expected refresh")
	}
	if lo != 0 || hi != cfg.Rows-1 {
		t.Errorf("range [%d,%d] not clamped to bank", lo, hi)
	}
}

func TestUniformAccessGrowsBalancedTree(t *testing.T) {
	// Paper Fig. 4(b): uniform access frequency distributes counters
	// uniformly and the CAT "mimics SCA".
	cfg := Config{Rows: 1 << 12, Counters: 16, MaxLevels: 8, RefreshThreshold: 1 << 12}
	tree := mustTree(t, cfg)
	src := rng.NewXoshiro256(42)
	for i := 0; i < 1<<18; i++ {
		tree.Access(rng.Intn(src, cfg.Rows))
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !tree.Full() {
		t.Fatal("tree should be fully built under heavy uniform traffic")
	}
	for _, l := range tree.Leaves() {
		if l.Depth != 4 {
			t.Errorf("leaf %d at depth %d, want uniform depth 4 (= log2 M)", l.Counter, l.Depth)
		}
	}
}

func TestBiasedAccessGrowsUnbalancedTree(t *testing.T) {
	// Paper Fig. 4(a): biased access concentrates counters on the hot
	// region, producing deeper leaves there and shallower ones elsewhere.
	cfg := Config{Rows: 1 << 12, Counters: 16, MaxLevels: 9, RefreshThreshold: 1 << 12}
	tree := mustTree(t, cfg)
	src := rng.NewXoshiro256(43)
	hotLo, hotHi := 100, 115
	for i := 0; i < 1<<18; i++ {
		if i%8 != 0 {
			tree.Access(hotLo + rng.Intn(src, hotHi-hotLo+1))
		} else {
			tree.Access(rng.Intn(src, cfg.Rows))
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	maxHotDepth, maxColdDepth := 0, 0
	for _, l := range tree.Leaves() {
		overlapsHot := l.Lo <= hotHi && l.Hi >= hotLo
		if overlapsHot && l.Depth > maxHotDepth {
			maxHotDepth = l.Depth
		}
		if !overlapsHot && l.Depth > maxColdDepth && l.Lo > hotHi+1024 {
			maxColdDepth = l.Depth
		}
	}
	if maxHotDepth <= maxColdDepth {
		t.Errorf("hot region depth %d not deeper than distant cold depth %d", maxHotDepth, maxColdDepth)
	}
}

func TestSplitClonesCounterValue(t *testing.T) {
	// §IV-A: "generating two children counters initialized to the current
	// count value" — the activation upper bound must survive the split.
	cfg := Config{Rows: 1 << 8, Counters: 4, MaxLevels: 4, RefreshThreshold: 64, PreSplit: 1}
	tree := mustTree(t, cfg)
	ladder := tree.Ladder()
	for i := 0; i < int(ladder[0]); i++ {
		tree.Access(3)
	}
	leaves := tree.Leaves()
	if len(leaves) < 2 {
		t.Fatalf("expected a split, have %d leaves", len(leaves))
	}
	for _, l := range leaves {
		if l.Value < ladder[0] {
			t.Errorf("leaf %d value %d lost the inherited count %d", l.Counter, l.Value, ladder[0])
		}
	}
}

func TestMarkFullForcesThresholdToT(t *testing.T) {
	// Algorithm 1 lines 23-25: when the last counter activates, every
	// split-threshold index jumps to L-1.
	cfg := Config{Rows: 1 << 10, Counters: 4, MaxLevels: 6, RefreshThreshold: 1 << 10}
	tree := mustTree(t, cfg)
	src := rng.NewXoshiro256(7)
	for i := 0; i < 1<<16 && !tree.Full(); i++ {
		tree.Access(rng.Intn(src, cfg.Rows))
	}
	if !tree.Full() {
		t.Fatal("tree never filled")
	}
	for i := 0; i < tree.nCtrs; i++ {
		if int(tree.counters[i].thIdx) != cfg.MaxLevels-1 {
			t.Errorf("counter %d threshold index %d, want %d", i, tree.counters[i].thIdx, cfg.MaxLevels-1)
		}
	}
}

func TestPRCATIntervalRebuild(t *testing.T) {
	cfg := defaultCfg()
	cfg.Policy = PRCAT
	tree := mustTree(t, cfg)
	src := rng.NewXoshiro256(3)
	for i := 0; i < 1<<19; i++ {
		tree.Access(rng.Intn(src, cfg.Rows))
	}
	before := len(tree.Leaves())
	if before <= 32 {
		t.Fatalf("tree did not grow (leaves = %d)", before)
	}
	tree.OnIntervalBoundary()
	if got := len(tree.Leaves()); got != 32 {
		t.Errorf("after rebuild leaves = %d, want 32 (pre-split shape)", got)
	}
	if tree.Stats().Rebuilds != 1 {
		t.Errorf("Rebuilds = %d, want 1", tree.Stats().Rebuilds)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDRCATIntervalKeepsStructure(t *testing.T) {
	cfg := defaultCfg()
	cfg.Policy = DRCAT
	tree := mustTree(t, cfg)
	src := rng.NewXoshiro256(3)
	for i := 0; i < 1<<19; i++ {
		tree.Access(rng.Intn(src, cfg.Rows))
	}
	before := len(tree.Leaves())
	tree.OnIntervalBoundary()
	if got := len(tree.Leaves()); got != before {
		t.Errorf("DRCAT interval changed leaf count %d -> %d", before, got)
	}
	for _, l := range tree.Leaves() {
		if l.Value != 0 {
			t.Errorf("leaf %d value %d, want 0 after interval", l.Counter, l.Value)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSCAEquivalenceViaFullPreSplit(t *testing.T) {
	// A CAT pre-split to λ = log2(M)+1 levels with a uniform ladder is
	// exactly SCA_M: M fixed groups of N/M rows, refresh at T.
	const rows, m, refresh = 1 << 10, 8, 50
	cfg := Config{
		Rows: rows, Counters: m, MaxLevels: 4, RefreshThreshold: refresh,
		PreSplit: 4, Ladder: UniformLadder(4, refresh),
	}
	tree := mustTree(t, cfg)
	if !tree.Full() {
		t.Fatal("fully pre-split tree must be full")
	}
	leaves := tree.Leaves()
	if len(leaves) != m {
		t.Fatalf("leaves = %d, want %d", len(leaves), m)
	}
	group := rows / m
	// Drive one row to T: the refresh must cover its whole group +-1.
	hot := 5*group + 3
	var lo, hi int
	var refresh2 bool
	for i := 0; i < refresh; i++ {
		lo, hi, refresh2 = tree.Access(hot)
	}
	if !refresh2 {
		t.Fatal("expected refresh at T accesses")
	}
	if lo != 5*group-1 || hi != 6*group {
		t.Errorf("refresh [%d,%d], want SCA group range [%d,%d]", lo, hi, 5*group-1, 6*group)
	}
}

func TestSRAMCostBounds(t *testing.T) {
	// Paper Table II: lookups take "from 2 to L - log(M/4)" SRAM accesses
	// for λ = log2(M). Drive the tree deep and check the bounds.
	cfg := defaultCfg() // M=64, L=11
	tree := mustTree(t, cfg)
	src := rng.NewXoshiro256(9)
	for i := 0; i < 1<<19; i++ {
		tree.Access(1024 + rng.Intn(src, 64)) // concentrated: grows deep
	}
	s := tree.Stats()
	if s.SRAMAccesses < 2*s.Accesses {
		t.Errorf("mean SRAM accesses %f < 2", float64(s.SRAMAccesses)/float64(s.Accesses))
	}
	maxPer := cfg.MaxLevels - 6 + 2 // L - log2(M) + 2 = L - log2(M/4)
	if got := tree.sramCost(s.MaxDepth); got > maxPer {
		t.Errorf("deepest lookup cost %d, want <= %d", got, maxPer)
	}
}

func TestAccessPanicsOnOutOfRangeRow(t *testing.T) {
	tree := mustTree(t, defaultCfg())
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range row")
		}
	}()
	tree.Access(1 << 16)
}

func TestStatsAccounting(t *testing.T) {
	cfg := Config{Rows: 1 << 8, Counters: 4, MaxLevels: 4, RefreshThreshold: 16, PreSplit: 1}
	tree := mustTree(t, cfg)
	for i := 0; i < 100; i++ {
		tree.Access(i % cfg.Rows)
	}
	s := tree.Stats()
	if s.Accesses != 100 {
		t.Errorf("Accesses = %d, want 100", s.Accesses)
	}
	if s.SRAMAccesses < s.Accesses {
		t.Error("SRAM accesses must be at least one per access")
	}
}
