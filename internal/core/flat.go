package core

import (
	"fmt"
	"math/bits"
)

// FlatTree is the cache-friendly CAT layout: the same adaptive tree of
// counters as Tree, stored as a contiguous implicit binary heap instead of
// pointer-linked node rows. Node i's children live at 2i+1 and 2i+2, so a
// lookup never chases a pointer — it walks a byte array of node states,
// choosing the child from the row's address bits (every node covers a
// power-of-two-aligned row block, so the branch direction at depth d is
// bit rowBits-1-d of the row index). Per-node fields are split into
// structure-of-arrays slabs (state, value, threshold index, weight) so the
// walk touches one dense byte per level and the weight-aging pass is a
// straight byte scan.
//
// FlatTree is observationally equivalent to Tree: identical Access
// return values, statistics, counter occupancy and — crucially — identical
// DRCAT reconfiguration decisions. The pointer implementation scans its
// intermediate-node array in allocation order when choosing the cold
// sibling pair to merge, and recycles the merged row in place for the hot
// split; FlatTree mirrors that discipline with a small order slice
// (allocation slot -> heap index) so both trees always merge the same
// node. The equivalence is locked by the differential tests in
// flat_test.go (random traces, reconfig storms) and transitively by the
// experiment goldens.
//
// The price of the implicit layout is capacity for the worst-case shape:
// the slabs hold 2^L - 1 slots (L = MaxLevels) regardless of how many
// counters are active — ~14 KB per bank at the paper's L = 11 — in
// exchange for a hot path bound by one L1 line per level instead of one
// dependent load per pointer hop.
type FlatTree struct {
	cfg       Config
	ladder    []uint32
	lambda    int
	weightCap uint8
	rowBits   int // log2(Rows)

	// SoA slabs indexed by heap position.
	state  []uint8 // slotAbsent, slotInternal or slotLeaf
	value  []uint32
	thIdx  []uint8
	weight []uint8

	// order mirrors the pointer implementation's intermediate-node array:
	// order[k] is the heap index of the k-th allocated internal node, with
	// merged slots recycled in place — the scan order of DRCAT's
	// merge-candidate search.
	order []int32

	nCtrs   int
	full    bool
	maxUsed int // 1 + highest heap index ever populated (bounds slab scans)

	stats Stats
}

const (
	slotAbsent   uint8 = 0
	slotInternal uint8 = 1
	slotLeaf     uint8 = 2
)

// NewFlatTree builds a flat CAT in its initial (pre-split) shape. It
// accepts exactly the configurations NewTree accepts.
func NewFlatTree(cfg Config) (*FlatTree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ladder := cfg.Ladder
	if ladder == nil {
		ladder = NewLadder(cfg.Counters, cfg.MaxLevels, cfg.RefreshThreshold)
	}
	slots := 1<<cfg.MaxLevels - 1
	t := &FlatTree{
		cfg:       cfg,
		ladder:    ladder,
		lambda:    cfg.preSplit(),
		weightCap: cfg.weightCap(),
		rowBits:   bits.TrailingZeros(uint(cfg.Rows)),
		state:     make([]uint8, slots),
		value:     make([]uint32, slots),
		thIdx:     make([]uint8, slots),
		weight:    make([]uint8, slots),
		order:     make([]int32, 0, cfg.Counters),
	}
	t.rebuild()
	return t, nil
}

// rebuild restores the pre-split uniform tree with zeroed counters.
func (t *FlatTree) rebuild() {
	for i := 0; i < t.maxUsed; i++ {
		t.state[i] = slotAbsent
		t.value[i] = 0
		t.thIdx[i] = 0
		t.weight[i] = 0
	}
	t.order = t.order[:0]
	t.nCtrs = 0
	t.full = false
	leaves := 1 << (t.lambda - 1)
	t.buildUniform(0, leaves)
	t.maxUsed = 2*leaves - 1
	if t.nCtrs == t.cfg.Counters {
		t.markFull()
	}
}

// Reset restores the tree to its just-constructed state — the uniform
// pre-split shape with zeroed counters and zeroed statistics — without
// allocating. Run contexts use it to reuse trees across repeated runs.
func (t *FlatTree) Reset() {
	t.rebuild()
	t.stats = Stats{}
}

// buildUniform populates a complete subtree rooted at heap index i with
// the given number of leaves, appending internal nodes to order in
// preorder — the allocation order of the pointer implementation.
func (t *FlatTree) buildUniform(i, leaves int) {
	if leaves == 1 {
		t.state[i] = slotLeaf
		t.thIdx[i] = uint8(t.lambda - 1)
		t.nCtrs++
		return
	}
	t.state[i] = slotInternal
	t.order = append(t.order, int32(i))
	t.buildUniform(2*i+1, leaves/2)
	t.buildUniform(2*i+2, leaves/2)
}

// markFull implements lines 23-25 of Algorithm 1: once every counter is
// active, all split-threshold indices jump to L-1 so T_{l_i} = T.
func (t *FlatTree) markFull() {
	t.full = true
	top := uint8(t.cfg.MaxLevels - 1)
	for i := 0; i < t.maxUsed; i++ {
		if t.state[i] == slotLeaf {
			t.thIdx[i] = top
		}
	}
}

// Config returns the tree's configuration.
func (t *FlatTree) Config() Config { return t.cfg }

// Ladder returns the split-threshold ladder in use.
func (t *FlatTree) Ladder() []uint32 { return t.ladder }

// Stats returns a copy of the accumulated statistics.
func (t *FlatTree) Stats() Stats { return t.stats }

// ActiveCounters returns the number of activated counters.
func (t *FlatTree) ActiveCounters() int { return t.nCtrs }

// Full reports whether every counter has been activated.
func (t *FlatTree) Full() bool { return t.full }

// Weights returns the active leaf weight registers in heap order
// (diagnostics; the pointer Tree reports the same multiset in counter
// allocation order).
func (t *FlatTree) Weights() []uint8 {
	out := make([]uint8, 0, t.nCtrs)
	for i := 0; i < t.maxUsed; i++ {
		if t.state[i] == slotLeaf {
			out = append(out, t.weight[i])
		}
	}
	return out
}

// locate walks the state slab from the root to the leaf covering row. The
// child at depth d is selected by row bit rowBits-1-d, so the walk is a
// handful of dense byte loads with no pointer dependencies.
func (t *FlatTree) locate(row int) (idx, depth int) {
	i := 0
	d := 0
	shift := t.rowBits - 1
	st := t.state
	for st[i] == slotInternal {
		i = 2*i + 1 + (row>>shift)&1
		shift--
		d++
	}
	return i, d
}

// sramCost models the sequential SRAM accesses for a lookup that ended at
// the given leaf depth (same accounting as Tree.sramCost).
func (t *FlatTree) sramCost(leafDepth int) int {
	c := leafDepth - (t.lambda - 1) + 2
	if c < 2 {
		c = 2
	}
	return c
}

// Access records one activation of row, returning the inclusive row range
// to refresh when a counter reaches the threshold. It is step-for-step the
// algorithm of Tree.Access over the flat layout.
func (t *FlatTree) Access(row int) (refLo, refHi int, refresh bool) {
	if row < 0 || row >= t.cfg.Rows {
		panic(fmt.Sprintf("core: row %d out of range [0,%d)", row, t.cfg.Rows))
	}
	t.stats.Accesses++
	i, depth := t.locate(row)
	t.stats.SRAMAccesses += int64(t.sramCost(depth))
	if depth > t.stats.MaxDepth {
		t.stats.MaxDepth = depth
	}

	if t.value[i] < t.ladder[t.thIdx[i]] {
		t.value[i]++
	}
	for t.value[i] >= t.ladder[t.thIdx[i]] {
		if int(t.thIdx[i]) < t.cfg.MaxLevels-1 {
			t.split(i, depth)
			if t.state[i] == slotInternal {
				// Descend into the half still covering row; with equal
				// consecutive ladder rungs it may split again immediately.
				i = 2*i + 1 + (row>>(t.rowBits-1-depth))&1
				depth++
			}
			continue
		}
		// Refresh trigger. The leaf covers the power-of-two-aligned block
		// of Rows>>depth rows containing row.
		t.value[i] = 0
		t.stats.RefreshEvents++
		size := t.cfg.Rows >> depth
		lo := row &^ (size - 1)
		hi := lo + size - 1
		refLo, refHi = lo-1, hi+1
		if refLo < 0 {
			refLo = 0
		}
		if refHi > t.cfg.Rows-1 {
			refHi = t.cfg.Rows - 1
		}
		t.stats.RowsRefreshed += int64(refHi - refLo + 1)
		if t.cfg.Policy == DRCAT {
			t.noteRefresh(i)
		}
		return refLo, refHi, true
	}
	return 0, 0, false
}

// split activates a new counter by turning leaf i at the given depth into
// an internal node with two cloned leaf children (RCM, Algorithm 1 lines
// 15-22).
func (t *FlatTree) split(i, depth int) {
	l, r := 2*i+1, 2*i+2
	if t.nCtrs >= t.cfg.Counters || t.cfg.Rows>>depth == 1 || r >= len(t.state) {
		// No counter available or the range is a single row: saturate this
		// counter's threshold at T so it can only trigger refreshes. (The
		// bounds case is unreachable — every leaf keeps thIdx >= depth, so
		// a splittable leaf sits above depth L-1 — but guards the slabs.)
		t.thIdx[i] = uint8(t.cfg.MaxLevels - 1)
		return
	}
	t.nCtrs++
	t.stats.Splits++
	th := t.thIdx[i] + 1 // l_i++ for both halves (lines 21-22)
	t.state[i] = slotInternal
	t.state[l], t.state[r] = slotLeaf, slotLeaf
	t.value[l], t.value[r] = t.value[i], t.value[i]
	t.thIdx[l], t.thIdx[r] = th, th
	// Children inherit the parent's weight so a freshly split hot region
	// is not immediately eligible for merging (DRCAT; zero under PRCAT).
	t.weight[l], t.weight[r] = t.weight[i], t.weight[i]
	t.order = append(t.order, int32(i))
	if r+1 > t.maxUsed {
		t.maxUsed = r + 1
	}
	if t.nCtrs == t.cfg.Counters {
		t.markFull()
	}
}

// noteRefresh performs DRCAT's weight bookkeeping for the hot leaf and,
// when its weight saturates, attempts one merge+split reconfiguration
// (paper §V-B). The aging pass is a dense scan over the weight slab.
func (t *FlatTree) noteRefresh(hot int) {
	st, w := t.state, t.weight
	wHot := w[hot]
	for j := 0; j < t.maxUsed; j++ {
		if st[j] == slotLeaf && w[j] > 0 {
			w[j]--
		}
	}
	w[hot] = wHot // the hot counter is exempt from aging
	if w[hot] < t.weightCap {
		w[hot]++
	}
	if w[hot] < t.weightCap {
		return
	}
	if t.reconfigure(hot) {
		t.stats.Reconfigs++
	}
}

// reconfigure merges the coldest sibling pair and splits the hot counter
// in place. The candidate scan follows order — the pointer tree's
// intermediate-node allocation order — so both implementations always
// pick the same pair; the merged node's order slot is recycled for the
// new split node, exactly like the pointer tree reuses the SRAM row.
func (t *FlatTree) reconfigure(hot int) bool {
	if len(t.order) < 2 {
		return false // degenerate tree: nothing to merge without emptying it
	}
	hotDepth := bits.Len(uint(hot+1)) - 1
	if hotDepth >= t.cfg.MaxLevels-1 {
		return false // splitting would exceed the L-level cap
	}

	// Step 1: find the first (allocation-order) internal node whose
	// children are two cold leaves, neither of them the hot counter.
	cand, candSlot := -1, -1
	for k, oi := range t.order {
		j := int(oi)
		l, r := 2*j+1, 2*j+2
		if t.state[l] != slotLeaf || t.state[r] != slotLeaf {
			continue
		}
		if t.weight[l] == 0 && t.weight[r] == 0 && l != hot && r != hot {
			cand, candSlot = j, k
			break
		}
	}
	if cand <= 0 {
		// No candidate, or the candidate is the root (merging the root
		// would collapse the tree to a single leaf mid-surgery).
		return false
	}

	// Merge: promote the right child (the paper's Fig. 7 promotes C5),
	// keeping the larger value so the merged counter still upper-bounds
	// every row in the doubled range.
	l, r := 2*cand+1, 2*cand+2
	v := t.value[r]
	if t.value[l] > v {
		v = t.value[l]
	}
	t.state[cand] = slotLeaf
	t.value[cand] = v
	t.thIdx[cand] = t.thIdx[r]
	t.weight[cand] = t.weight[r] // zero: both children were cold
	t.state[l], t.state[r] = slotAbsent, slotAbsent
	t.nCtrs--

	// Step 2: split the hot counter in place, both halves cloning its
	// value (the activation upper bound holds for both).
	hl, hr := 2*hot+1, 2*hot+2
	t.state[hot] = slotInternal
	t.state[hl], t.state[hr] = slotLeaf, slotLeaf
	t.value[hl], t.value[hr] = t.value[hot], t.value[hot]
	t.thIdx[hl], t.thIdx[hr] = t.thIdx[hot], t.thIdx[hot]
	// Step 3: the fresh pair starts at weight 1 so it stays split for a
	// while without being immediately split again.
	t.weight[hl], t.weight[hr] = 1, 1
	t.order[candSlot] = int32(hot)
	t.nCtrs++
	if hr+1 > t.maxUsed {
		t.maxUsed = hr + 1
	}
	return true
}

// OnIntervalBoundary informs the tree that an auto-refresh interval
// elapsed. PRCAT rebuilds the whole tree; DRCAT clears counter values but
// keeps the learned structure and weights (§V).
func (t *FlatTree) OnIntervalBoundary() {
	if t.cfg.Policy == PRCAT {
		t.rebuild()
		t.stats.Rebuilds++
		return
	}
	for i := 0; i < t.maxUsed; i++ {
		if t.state[i] == slotLeaf {
			t.value[i] = 0
		}
	}
}
