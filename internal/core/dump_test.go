package core

import (
	"strings"
	"testing"
)

func TestDumpTableShowsFig5Layout(t *testing.T) {
	// Build a small tree and check the dump names every allocated row in
	// the paper's Fig. 5 notation.
	cfg := Config{Rows: 1 << 8, Counters: 8, MaxLevels: 6, RefreshThreshold: 64, PreSplit: 1}
	tree := mustTree(t, cfg)
	for i := 0; i < 64*4; i++ {
		tree.Access(3)
	}
	dump := tree.DumpTable()
	for _, want := range []string{"I0", "C0", "L-ptr", "R-ptr", "value", "weight"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestStorageBitsMatchesPaperAccounting(t *testing.T) {
	// Paper §V-B: "PRCAT uses 2 bytes per counter for T=16K" (14 counter
	// bits rounded to 16 with the 2-bit weight register in DRCAT).
	prcat := mustTree(t, Config{Rows: 1 << 16, Counters: 64, MaxLevels: 11,
		RefreshThreshold: 16384, Policy: PRCAT})
	drcat := mustTree(t, Config{Rows: 1 << 16, Counters: 64, MaxLevels: 11,
		RefreshThreshold: 16384, Policy: DRCAT})
	// 64 counters * 14 bits + 63 inode rows * (2*6 ptr bits + 2 flags).
	wantPRCAT := 64*14 + 63*14
	if got := prcat.StorageBits(); got != wantPRCAT {
		t.Errorf("PRCAT storage = %d bits, want %d", got, wantPRCAT)
	}
	// DRCAT adds the 2-bit weight register per counter: 16 bits/counter,
	// the paper's "first 16 bits for the counter and the two last bits".
	if got := drcat.StorageBits() - prcat.StorageBits(); got != 64*2 {
		t.Errorf("DRCAT weight overhead = %d bits, want 128", got)
	}
}
