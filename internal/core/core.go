// Package core implements the paper's primary contribution: the
// Counter-based Adaptive Tree (CAT) of Seyedzadeh, Jones and Melhem
// (ISCA 2018), together with its two deployment schemes:
//
//   - PRCAT (Periodically Reset CAT, §V-A): the tree is rebuilt from the
//     pre-split uniform shape at every auto-refresh interval.
//
//   - DRCAT (Dynamically Reconfigured CAT, §V-B): 2-bit weight registers
//     track which regions are hot; cold sibling counters are merged and the
//     released counter is used to split the hot region, so the tree tracks
//     temporal changes in the access pattern without being rebuilt.
//
// The implementation mirrors the paper's SRAM layout (Fig. 5): an array I of
// intermediate nodes carrying left/right pointers plus leaf flags, an array
// C of counters, and an array W of weight registers. Row-range boundaries
// are not stored; they are recovered during pointer-chasing traversal, and
// the number of sequential SRAM accesses per lookup is modelled exactly as
// the paper counts it (from 2 up to L - log2(M/4) for a tree pre-split to
// λ = log2(M) levels).
//
// Protection guarantee: a counter covering rows [lo, hi] is an upper bound
// on the number of activations of every row in [lo, hi] since the last
// event that reset it. Splits clone the parent value and merges keep the
// maximum of the children, so the bound is preserved across every tree
// operation; when a counter reaches the refresh threshold T the rows
// [lo-1, hi+1] are refreshed. The invariants are machine-checked in the
// package tests and by the crosstalk oracle in internal/mitigation.
package core

import (
	"fmt"
	"math/bits"
)

// Policy selects how the tree reacts to auto-refresh interval boundaries.
type Policy int

const (
	// PRCAT rebuilds the tree (structure and values) every interval.
	PRCAT Policy = iota
	// DRCAT clears counter values every interval but keeps the learned
	// structure and the weight registers, and reconfigures dynamically.
	DRCAT
)

// String returns the scheme name used in the paper.
func (p Policy) String() string {
	if p == PRCAT {
		return "PRCAT"
	}
	return "DRCAT"
}

// Config parameterises one CAT instance (one per DRAM bank).
type Config struct {
	// Rows is N, the number of rows the tree covers (a power of two).
	Rows int
	// Counters is M, the number of counters available (a power of two).
	Counters int
	// MaxLevels is L: tree levels are 0..L-1 and T_{L-1} = T.
	MaxLevels int
	// RefreshThreshold is T, the activation count at which victim rows
	// adjacent to the counter's range must be refreshed.
	RefreshThreshold uint32
	// Ladder holds the split thresholds T_0..T_{L-1}. If nil, the default
	// ladder from NewLadder(Counters, MaxLevels, RefreshThreshold) is used.
	Ladder []uint32
	// PreSplit is λ, the number of pre-built uniform levels (1..log2(M)+1).
	// Zero selects the paper's default λ = log2(M).
	PreSplit int
	// Policy selects PRCAT or DRCAT behaviour.
	Policy Policy
	// WeightBits is the DRCAT weight-register width; zero selects the
	// paper's 2 bits.
	WeightBits int
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Validate reports a descriptive error for an unusable configuration.
func (c *Config) Validate() error {
	if !isPow2(c.Rows) {
		return fmt.Errorf("core: Rows must be a positive power of two, got %d", c.Rows)
	}
	if !isPow2(c.Counters) {
		return fmt.Errorf("core: Counters must be a positive power of two, got %d", c.Counters)
	}
	if c.Counters > c.Rows {
		return fmt.Errorf("core: more counters (%d) than rows (%d)", c.Counters, c.Rows)
	}
	if c.MaxLevels < 1 {
		return fmt.Errorf("core: MaxLevels must be at least 1, got %d", c.MaxLevels)
	}
	// A tree of L levels has leaves no deeper than L-1, each covering at
	// least Rows/2^(L-1) rows; that must be at least one row.
	if c.MaxLevels-1 > bits.TrailingZeros(uint(c.Rows)) {
		return fmt.Errorf("core: MaxLevels %d too deep for %d rows", c.MaxLevels, c.Rows)
	}
	if c.RefreshThreshold < 1 {
		return fmt.Errorf("core: RefreshThreshold must be positive")
	}
	lambda := c.preSplit()
	if lambda < 1 || lambda > c.MaxLevels || (1<<(lambda-1)) > c.Counters {
		return fmt.Errorf("core: PreSplit %d invalid for M=%d, L=%d", lambda, c.Counters, c.MaxLevels)
	}
	if c.Ladder != nil {
		if err := ValidateLadder(c.Ladder, c.MaxLevels, c.RefreshThreshold); err != nil {
			return err
		}
	}
	if c.WeightBits < 0 || c.WeightBits > 8 {
		return fmt.Errorf("core: WeightBits %d out of range", c.WeightBits)
	}
	return nil
}

// preSplit returns λ, applying the paper's default λ = log2(M), clamped so
// the pre-built tree fits within MaxLevels.
func (c *Config) preSplit() int {
	lambda := c.PreSplit
	if lambda == 0 {
		lambda = bits.TrailingZeros(uint(c.Counters))
		if lambda == 0 {
			lambda = 1 // M = 1: the "tree" is a single root counter
		}
	}
	if lambda > c.MaxLevels {
		lambda = c.MaxLevels
	}
	return lambda
}

func (c *Config) weightCap() uint8 {
	wb := c.WeightBits
	if wb == 0 {
		wb = 2
	}
	return uint8(1<<wb - 1)
}

// inode is one row of the intermediate-node array I (paper Fig. 5b): two
// successor pointers plus flags telling whether each successor is another
// intermediate node (the paper's flag polarity) or a leaf counter.
type inode struct {
	left, right         int32
	leftNode, rightNode bool
}

// counterState is one row of the counter array C plus the per-counter level
// register l_i of Algorithm 1. depth is the true tree depth (used for range
// recovery and the L-level cap); thIdx indexes the split-threshold ladder
// and is forced to L-1 for every counter once the tree is fully built.
type counterState struct {
	value uint32
	depth uint8
	thIdx uint8
}

// Stats aggregates the observable behaviour of one tree.
type Stats struct {
	Accesses      int64 // row activations observed
	SRAMAccesses  int64 // sequential SRAM reads spent on traversals
	Splits        int64 // RCM split operations
	RefreshEvents int64 // counter hit T (one victim-refresh command each)
	RowsRefreshed int64 // total rows refreshed by those commands
	Reconfigs     int64 // DRCAT merge+split reconfigurations
	Rebuilds      int64 // full rebuilds (PRCAT interval resets)
	MaxDepth      int   // deepest leaf observed
}

// Tree is one CAT instance. It is not safe for concurrent use; the
// simulator drives one tree per bank from a single goroutine.
type Tree struct {
	cfg       Config
	ladder    []uint32
	lambda    int
	weightCap uint8

	inodes   []inode
	counters []counterState
	weights  []uint8
	nInodes  int
	nCtrs    int
	full     bool

	stats Stats
}

// NewTree builds a CAT in its initial (pre-split) shape.
func NewTree(cfg Config) (*Tree, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ladder := cfg.Ladder
	if ladder == nil {
		ladder = NewLadder(cfg.Counters, cfg.MaxLevels, cfg.RefreshThreshold)
	}
	t := &Tree{
		cfg:       cfg,
		ladder:    ladder,
		lambda:    cfg.preSplit(),
		weightCap: cfg.weightCap(),
		inodes:    make([]inode, cfg.Counters-1+1), // M-1 max; +1 avoids a zero-length array for M=1
		counters:  make([]counterState, cfg.Counters),
		weights:   make([]uint8, cfg.Counters),
	}
	t.rebuild()
	return t, nil
}

// rebuild restores the pre-split uniform tree with zeroed counters.
func (t *Tree) rebuild() {
	t.nInodes = 0
	t.nCtrs = 0
	t.full = false
	for i := range t.weights {
		t.weights[i] = 0
	}
	leaves := 1 << (t.lambda - 1)
	t.buildUniform(leaves)
	if t.nCtrs == t.cfg.Counters {
		t.markFull()
	}
}

// buildUniform allocates a complete subtree with the given number of leaves
// and returns a reference to it (index plus is-node flag).
func (t *Tree) buildUniform(leaves int) (idx int32, isNode bool) {
	if leaves == 1 {
		ci := int32(t.nCtrs)
		t.nCtrs++
		t.counters[ci] = counterState{
			value: 0,
			depth: uint8(t.lambda - 1),
			thIdx: uint8(t.lambda - 1),
		}
		return ci, false
	}
	ni := int32(t.nInodes)
	t.nInodes++
	l, ln := t.buildUniform(leaves / 2)
	r, rn := t.buildUniform(leaves / 2)
	t.inodes[ni] = inode{left: l, right: r, leftNode: ln, rightNode: rn}
	return ni, true
}

// markFull implements lines 23-25 of Algorithm 1: once every counter is
// active, all split-threshold indices jump to L-1 so T_{l_i} = T.
func (t *Tree) markFull() {
	t.full = true
	for i := 0; i < t.nCtrs; i++ {
		t.counters[i].thIdx = uint8(t.cfg.MaxLevels - 1)
	}
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Ladder returns the split-threshold ladder in use.
func (t *Tree) Ladder() []uint32 { return t.ladder }

// Stats returns a copy of the accumulated statistics.
func (t *Tree) Stats() Stats { return t.stats }

// ActiveCounters returns the number of activated counters.
func (t *Tree) ActiveCounters() int { return t.nCtrs }

// Full reports whether every counter has been activated.
func (t *Tree) Full() bool { return t.full }

// locate descends from the root to the leaf covering row, returning the
// counter index, the covered range [lo, hi], the leaf depth, and the parent
// linkage needed by a split (parent == -1 when the leaf is the root).
func (t *Tree) locate(row int) (ci int32, lo, hi, depth int, parent int32, rightSide bool) {
	lo, hi = 0, t.cfg.Rows-1
	parent = -1
	if t.nInodes == 0 {
		return 0, lo, hi, 0, parent, false
	}
	var ref int32 // current intermediate node
	for d := 0; ; d++ {
		n := &t.inodes[ref]
		mid := lo + (hi-lo)/2
		if row <= mid {
			hi = mid
			if n.leftNode {
				parent = ref
				ref = n.left
				continue
			}
			return n.left, lo, hi, d + 1, ref, false
		}
		lo = mid + 1
		if n.rightNode {
			parent = ref
			ref = n.right
			continue
		}
		return n.right, lo, hi, d + 1, ref, true
	}
}

// sramCost models the sequential SRAM accesses for a lookup that ended at
// the given leaf depth. With the top λ-1 intermediate levels replaced by
// direct indexing (paper §IV-C), a lookup reads one intermediate node at
// level λ-1, one node per additional level, and finally the counter: for a
// leaf at depth L-1 that is (L-1) - (λ-1) + 2 = L - λ + 2 accesses, matching
// the paper's "from 2 to L - log(M/4)" for λ = log2(M).
func (t *Tree) sramCost(leafDepth int) int {
	c := leafDepth - (t.lambda - 1) + 2
	if c < 2 {
		c = 2
	}
	return c
}

// Access records one activation of row. If the access drives a counter to
// the refresh threshold, Access returns the inclusive row range to refresh
// — the counter's range widened by one row on each side, clamped to the
// bank (paper: "refresh all existing rows between Li-1 and Ui+1") — and
// refresh = true.
func (t *Tree) Access(row int) (refLo, refHi int, refresh bool) {
	if row < 0 || row >= t.cfg.Rows {
		panic(fmt.Sprintf("core: row %d out of range [0,%d)", row, t.cfg.Rows))
	}
	t.stats.Accesses++
	ci, lo, hi, depth, parent, rightSide := t.locate(row)
	t.stats.SRAMAccesses += int64(t.sramCost(depth))
	if depth > t.stats.MaxDepth {
		t.stats.MaxDepth = depth
	}

	// Counter Module (Algorithm 1 lines 4-12), with the trigger taken on
	// the access that reaches the threshold rather than the one after it
	// (an off-by-one in the paper's pseudocode that would let a row reach
	// T+1 activations before its victims refresh).
	c := &t.counters[ci]
	if c.value < t.ladder[c.thIdx] {
		c.value++
	}
	for c.value >= t.ladder[c.thIdx] {
		if int(c.thIdx) < t.cfg.MaxLevels-1 {
			// Reconfiguration Counter Module: split (lines 14-22). Splits
			// are rare, so re-walking the tree afterwards keeps the logic
			// simple; when the ladder has equal consecutive rungs the new
			// leaf may split again immediately, hence the loop.
			t.split(ci, lo, hi, depth, parent, rightSide)
			ci, lo, hi, depth, parent, rightSide = t.locate(row)
			c = &t.counters[ci]
			continue
		}
		// Refresh trigger (lines 10-12).
		c.value = 0
		t.stats.RefreshEvents++
		refLo, refHi = lo-1, hi+1
		if refLo < 0 {
			refLo = 0
		}
		if refHi > t.cfg.Rows-1 {
			refHi = t.cfg.Rows - 1
		}
		t.stats.RowsRefreshed += int64(refHi - refLo + 1)
		if t.cfg.Policy == DRCAT {
			t.noteRefresh(ci)
		}
		return refLo, refHi, true
	}
	return 0, 0, false
}

// split activates a new counter as a clone of counter ci (RCM, Algorithm 1
// lines 15-22).
func (t *Tree) split(ci int32, lo, hi, depth int, parent int32, rightSide bool) {
	if t.nCtrs >= t.cfg.Counters || lo == hi {
		// No counter available or the range is a single row: saturate this
		// counter's threshold at T so it can only trigger refreshes.
		t.counters[ci].thIdx = uint8(t.cfg.MaxLevels - 1)
		return
	}
	nc := int32(t.nCtrs)
	t.nCtrs++
	ni := int32(t.nInodes)
	t.nInodes++

	t.stats.Splits++
	old := &t.counters[ci]
	newDepth := depth + 1
	th := old.thIdx + 1 // l_i++ for both halves (line 21-22)
	t.counters[nc] = counterState{value: old.value, depth: uint8(newDepth), thIdx: th}
	old.depth = uint8(newDepth)
	old.thIdx = th

	// The old counter keeps the lower half [lo, mid]; the new counter takes
	// [mid+1, hi] (Algorithm 1 lines 17-20).
	t.inodes[ni] = inode{left: ci, right: nc, leftNode: false, rightNode: false}
	if parent >= 0 {
		p := &t.inodes[parent]
		if rightSide {
			p.right, p.rightNode = ni, true
		} else {
			p.left, p.leftNode = ni, true
		}
	}
	if t.cfg.Policy == DRCAT {
		// Children inherit the parent's weight so a freshly split hot
		// region is not immediately eligible for merging.
		t.weights[nc] = t.weights[ci]
	}
	if t.nCtrs == t.cfg.Counters {
		t.markFull()
	}
}

// OnIntervalBoundary informs the tree that an auto-refresh interval elapsed
// (all rows implicitly refreshed). PRCAT rebuilds the whole tree; DRCAT
// clears counter values but keeps the learned structure and weights (§V).
func (t *Tree) OnIntervalBoundary() {
	if t.cfg.Policy == PRCAT {
		t.rebuild()
		t.stats.Rebuilds++
		return
	}
	for i := 0; i < t.nCtrs; i++ {
		t.counters[i].value = 0
	}
}
