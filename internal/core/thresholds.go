package core

import (
	"fmt"
	"math"
	"math/bits"
)

// Split-threshold ladders (paper §IV-D).
//
// The ladder T_0 <= T_1 <= ... <= T_{L-1} = T decides when a counter at
// level l splits. The paper derives the values from a cost model that
// equates the refresh cost of the balanced and unbalanced tree evolutions at
// the critical access bias; the generalized model lives in a technical
// report that is not public, but the paper publishes both the worked
// 4-counter example (T1 = T/4, T2 = T/2, T3 = T) and the full ladder for
// the canonical configuration M = 64, L = 10, T = 32768:
//
//	T5 = 5155, T6 = 10309, T7 = 12886, T8 = 16384, T9 = T = 32768
//
// Those five values are exactly T * {28, 56, 70, 89, 178}/178 (to rounding),
// which this package adopts as the canonical profile. Ladders for other
// (M, L) pairs resample the profile with monotone piecewise-linear
// interpolation over the growth levels λ-1 .. L-1 (λ = log2 M, the paper's
// pre-split depth); ladders for other T scale proportionally, mirroring the
// paper's note that "a modified version of Table II is used ... when the
// maximum tree depth changes". A strictly geometric ladder matching the
// worked example (T_l = T / 2^(L-1-l)) is also provided for ablations.

// canonicalProfile is the published M=64/L=10 ladder as fractions of T.
var canonicalProfile = [5]float64{28.0 / 178, 56.0 / 178, 70.0 / 178, 89.0 / 178, 1}

// NewLadder returns the default split-threshold ladder for a tree with M
// counters, L levels and refresh threshold T: the canonical published
// profile resampled onto the growth levels. Entries below the pre-split
// depth are never consulted during growth and are set to the first growth
// value. The returned slice has length L and ends in T.
func NewLadder(m, l int, t uint32) []uint32 {
	lambda := preSplitLevels(m, l)
	k := l - (lambda - 1) // number of growth levels: λ-1 .. L-1
	ladder := make([]uint32, l)
	for j := 0; j < k; j++ {
		var pos float64
		if k > 1 {
			pos = float64(j) / float64(k-1)
		} else {
			pos = 1
		}
		f := sampleProfile(pos)
		v := uint32(math.Round(f * float64(t)))
		if v < 1 {
			v = 1
		}
		ladder[lambda-1+j] = v
	}
	// Levels below the pre-split depth are only exercised when a tree is
	// built from shallower than the paper's default λ. Clamping them flat
	// would make freshly cloned children sit exactly at their own rung and
	// cascade-split indiscriminately, so ramp them geometrically instead
	// (halving per level, the worked example's shape).
	for i := lambda - 2; i >= 0; i-- {
		v := ladder[i+1] / 2
		if v < 1 {
			v = 1
		}
		ladder[i] = v
	}
	ladder[l-1] = t
	enforceMonotone(ladder, t)
	return ladder
}

// GeometricLadder returns the ladder T_l = T / 2^(L-1-l), the direct
// generalization of the paper's worked 4-counter example (T1 = T/4,
// T2 = T/2, T3 = T). Values are floored at 1.
func GeometricLadder(l int, t uint32) []uint32 {
	ladder := make([]uint32, l)
	for i := 0; i < l; i++ {
		shift := uint(l - 1 - i)
		v := uint32(1)
		if shift < 32 {
			v = t >> shift
		}
		if v < 1 {
			v = 1
		}
		ladder[i] = v
	}
	ladder[l-1] = t
	enforceMonotone(ladder, t)
	return ladder
}

// UniformLadder returns a ladder with every rung equal to T. A tree with
// this ladder never splits adaptively beyond its pre-split shape, making it
// behave exactly like SCA with 2^(λ-1) counters; it anchors the equivalence
// tests and the SCA-versus-CAT ablations.
func UniformLadder(l int, t uint32) []uint32 {
	ladder := make([]uint32, l)
	for i := range ladder {
		ladder[i] = t
	}
	return ladder
}

// PaperLadder returns the published canonical ladder for M=64, L=10 scaled
// to refresh threshold T, as full-length ladder (L = 10). For T = 32768 the
// growth rungs are exactly the published 5155/10309/12886/16384/32768.
func PaperLadder(t uint32) []uint32 {
	return NewLadder(64, 10, t)
}

// sampleProfile evaluates the canonical profile at normalized position
// pos in [0, 1] with piecewise-linear interpolation.
func sampleProfile(pos float64) float64 {
	if pos <= 0 {
		return canonicalProfile[0]
	}
	if pos >= 1 {
		return canonicalProfile[len(canonicalProfile)-1]
	}
	scaled := pos * float64(len(canonicalProfile)-1)
	i := int(scaled)
	frac := scaled - float64(i)
	return canonicalProfile[i] + frac*(canonicalProfile[i+1]-canonicalProfile[i])
}

// preSplitLevels returns the paper's default pre-split depth λ = log2(M),
// clamped to [1, L].
func preSplitLevels(m, l int) int {
	lambda := bits.TrailingZeros(uint(m))
	if lambda == 0 {
		lambda = 1
	}
	if lambda > l {
		lambda = l
	}
	return lambda
}

// enforceMonotone raises later rungs to at least their predecessors and
// caps everything at t.
func enforceMonotone(ladder []uint32, t uint32) {
	for i := 1; i < len(ladder); i++ {
		if ladder[i] < ladder[i-1] {
			ladder[i] = ladder[i-1]
		}
	}
	for i := range ladder {
		if ladder[i] > t {
			ladder[i] = t
		}
	}
}

// ValidateLadder checks that ladder has length l, is positive and
// non-decreasing, and ends at exactly t.
func ValidateLadder(ladder []uint32, l int, t uint32) error {
	if len(ladder) != l {
		return fmt.Errorf("core: ladder length %d, want %d", len(ladder), l)
	}
	for i, v := range ladder {
		if v < 1 {
			return fmt.Errorf("core: ladder[%d] = %d must be positive", i, v)
		}
		if i > 0 && v < ladder[i-1] {
			return fmt.Errorf("core: ladder not monotone at %d (%d < %d)", i, v, ladder[i-1])
		}
		if v > t {
			return fmt.Errorf("core: ladder[%d] = %d exceeds refresh threshold %d", i, v, t)
		}
	}
	if ladder[l-1] != t {
		return fmt.Errorf("core: ladder must end at T=%d, got %d", t, ladder[l-1])
	}
	return nil
}
