package core

import "fmt"

// Leaf describes one active counter and the row range it governs, as
// recovered by walking the tree. Diagnostics, tests, and the examples use
// it to show tree shapes; the hot path never materialises it.
type Leaf struct {
	Counter int    // index into the counter array
	Lo, Hi  int    // inclusive row range
	Depth   int    // tree level of the leaf
	Value   uint32 // current counter value
	Weight  uint8  // DRCAT weight register
}

// Leaves returns the active counters in row order.
func (t *Tree) Leaves() []Leaf {
	var out []Leaf
	t.walk(func(l Leaf) { out = append(out, l) })
	return out
}

// walk visits every leaf in row order.
func (t *Tree) walk(visit func(Leaf)) {
	if t.nInodes == 0 {
		visit(Leaf{Counter: 0, Lo: 0, Hi: t.cfg.Rows - 1, Depth: 0,
			Value: t.counters[0].value, Weight: t.weights[0]})
		return
	}
	var rec func(ref int32, isNode bool, lo, hi, depth int)
	rec = func(ref int32, isNode bool, lo, hi, depth int) {
		if !isNode {
			visit(Leaf{Counter: int(ref), Lo: lo, Hi: hi, Depth: depth,
				Value: t.counters[ref].value, Weight: t.weights[ref]})
			return
		}
		n := &t.inodes[ref]
		mid := lo + (hi-lo)/2
		rec(n.left, n.leftNode, lo, mid, depth+1)
		rec(n.right, n.rightNode, mid+1, hi, depth+1)
	}
	rec(0, true, 0, t.cfg.Rows-1, 0)
}

// CheckInvariants verifies the structural soundness of the tree:
//
//  1. the leaves partition [0, Rows) exactly, in order, without overlap;
//  2. every active counter appears as exactly one leaf and every allocated
//     intermediate-node row is reachable exactly once (no cycles, no leaks);
//  3. each leaf's stored depth matches its tree position;
//  4. threshold indices are within the ladder; and
//  5. no counter value exceeds the refresh threshold T.
//
// It returns the first violation found, or nil. Tests call it after every
// mutation batch; it is deliberately exhaustive rather than fast.
func (t *Tree) CheckInvariants() error {
	seenCtr := make(map[int32]bool)
	seenNode := make(map[int32]bool)
	nextLo := 0
	var firstErr error
	fail := func(format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf("core: invariant violated: "+format, args...)
		}
	}

	var rec func(ref int32, isNode bool, lo, hi, depth int)
	rec = func(ref int32, isNode bool, lo, hi, depth int) {
		if firstErr != nil {
			return
		}
		if lo > hi {
			fail("empty range [%d,%d] at depth %d", lo, hi, depth)
			return
		}
		if !isNode {
			if ref < 0 || int(ref) >= t.nCtrs {
				fail("leaf pointer %d outside active counters [0,%d)", ref, t.nCtrs)
				return
			}
			if seenCtr[ref] {
				fail("counter %d reachable twice", ref)
				return
			}
			seenCtr[ref] = true
			if lo != nextLo {
				fail("leaf %d starts at %d, want %d (gap or overlap)", ref, lo, nextLo)
				return
			}
			nextLo = hi + 1
			c := &t.counters[ref]
			if int(c.depth) != depth {
				fail("counter %d stored depth %d, position depth %d", ref, c.depth, depth)
			}
			if int(c.thIdx) >= t.cfg.MaxLevels {
				fail("counter %d threshold index %d out of ladder", ref, c.thIdx)
			}
			if c.value > t.cfg.RefreshThreshold {
				fail("counter %d value %d exceeds T=%d", ref, c.value, t.cfg.RefreshThreshold)
			}
			return
		}
		if ref < 0 || int(ref) >= t.nInodes {
			fail("node pointer %d outside allocated rows [0,%d)", ref, t.nInodes)
			return
		}
		if seenNode[ref] {
			fail("intermediate node %d reachable twice (cycle)", ref)
			return
		}
		seenNode[ref] = true
		if depth >= t.cfg.MaxLevels {
			fail("node %d at depth %d exceeds L=%d levels", ref, depth, t.cfg.MaxLevels)
			return
		}
		n := &t.inodes[ref]
		mid := lo + (hi-lo)/2
		rec(n.left, n.leftNode, lo, mid, depth+1)
		rec(n.right, n.rightNode, mid+1, hi, depth+1)
	}

	if t.nInodes == 0 {
		if t.nCtrs < 1 {
			return fmt.Errorf("core: invariant violated: tree has no counters")
		}
		if t.counters[0].depth != 0 {
			return fmt.Errorf("core: invariant violated: root leaf depth %d", t.counters[0].depth)
		}
		return nil
	}
	rec(0, true, 0, t.cfg.Rows-1, 0)
	if firstErr != nil {
		return firstErr
	}
	if nextLo != t.cfg.Rows {
		return fmt.Errorf("core: invariant violated: leaves cover up to %d, want %d", nextLo, t.cfg.Rows)
	}
	if len(seenCtr) != t.nCtrs {
		return fmt.Errorf("core: invariant violated: %d counters reachable, %d active", len(seenCtr), t.nCtrs)
	}
	if len(seenNode) != t.nInodes {
		return fmt.Errorf("core: invariant violated: %d nodes reachable, %d allocated", len(seenNode), t.nInodes)
	}
	return nil
}
