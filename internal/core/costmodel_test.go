package core

import (
	"math"
	"testing"

	"catsim/internal/rng"
)

// Verify the §IV-D worked example end to end: the cost model, the
// critical bias x* = 3w, the threshold ratio T2 = 2*T1, and the anchors
// T2 = T/2, T1 = T/4 that the ladder constructors use.

const (
	exN = 1 << 16 // rows in the bank
	exR = 4 << 20 // references per interval
	exT = 32768   // refresh threshold
)

func TestEq2Eq3AgreeAtUniformBias(t *testing.T) {
	// With x chosen so the unbalanced tree sees the same per-row pressure,
	// Eq. 3 at x = 3w must equal Eq. 2 exactly (that is Eq. 4's boundary).
	w := float64(exN) / 4
	sca := CostSCAEq2(exN, exR, exT)
	cat := CostCATEq3(exN, 3*w, exR, exT)
	if rel := math.Abs(sca-cat) / sca; rel > 1e-12 {
		t.Errorf("Eq.2 = %g, Eq.3 at x=3w = %g (rel diff %g); Eq.4 says they cross there", sca, cat, rel)
	}
	// Beyond the critical bias the CAT wins; below it the uniform tree wins.
	if CostCATEq3(exN, 4*w, exR, exT) >= sca {
		t.Error("CAT should win above the critical bias")
	}
	if CostCATEq3(exN, 2*w, exR, exT) <= sca {
		t.Error("uniform tree should win below the critical bias")
	}
}

func TestCriticalBiasSolverReproducesEq4(t *testing.T) {
	w := float64(exN) / 4
	balanced := []float64{w, w, w, w / 2, w / 2}           // Fig. 6(b) with the hot half-leaf split out
	unbalanced := []float64{2 * w, w, w / 2, w / 4, w / 4} // one level deeper on the hot path
	_ = balanced
	_ = unbalanced

	// The exact Fig. 6 pair: balanced (b) = {w,w,w,w-with-bias}, where the
	// bias sits inside the last w-row leaf; unbalanced (c) = {2w,w,w/2,
	// w/2-with-bias}.
	xStar, err := CriticalBias(
		[]float64{w, w, w, w},
		[]float64{2 * w, w, w / 2, w / 2},
		exN, exR, exT, 100*w)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(xStar-3*w) / (3 * w); rel > 1e-6 {
		t.Errorf("critical bias = %g, want 3w = %g (rel %g)", xStar, 3*w, rel)
	}
}

func TestSplitThresholdRatioMatchesPaper(t *testing.T) {
	w := float64(exN) / 4
	// "if T2 is set to be 2T1, then C3 will reach T2 before C1 reaches T1
	// when x > 3w": hot leaf = w rows + bias, competing cold leaf = 2w rows.
	ratio := SplitThresholdRatio(w, 2*w, 3*w)
	if math.Abs(ratio-2) > 1e-12 {
		t.Errorf("T2/T1 = %g, want 2", ratio)
	}
	// The ladder constructors honour the anchors the example fixes:
	// T_{L-1} = T and T_{L-2} = T/2 (then T1 = T/4 via the ratio).
	ladder := GeometricLadder(4, exT)
	if ladder[2] != exT/2 || ladder[1] != exT/4 {
		t.Errorf("geometric ladder %v does not anchor T/2, T/4", ladder)
	}
	if ladder[2] != uint32(float64(ladder[1])*ratio) {
		t.Errorf("ladder does not encode the T2 = 2*T1 relation")
	}
}

func TestCriticalBiasNoCrossover(t *testing.T) {
	// Identical shapes never cross: the solver must report it.
	w := float64(exN) / 4
	if _, err := CriticalBias([]float64{w, w}, []float64{w, w}, exN, exR, exT, 10*w); err == nil {
		t.Error("expected no-crossover error for identical shapes")
	}
}

func TestRefreshCostLinearity(t *testing.T) {
	// Cost scales linearly in references and inversely in threshold.
	leaves := BiasedShape([]float64{100, 50, 50}, 500, 1e6)
	c1 := RefreshCost(leaves, 1000)
	c2 := RefreshCost(leaves, 2000)
	if math.Abs(c1-2*c2)/c1 > 1e-12 {
		t.Errorf("halving T should double cost: %g vs %g", c1, c2)
	}
	double := BiasedShape([]float64{100, 50, 50}, 500, 2e6)
	if math.Abs(RefreshCost(double, 1000)-2*c1)/c1 > 1e-12 {
		t.Error("doubling references should double cost")
	}
}

func TestTreeEvolutionFollowsCostModel(t *testing.T) {
	// End-to-end: drive two actual trees with reference streams just below
	// and above the critical bias and check which one stays balanced.
	mk := func() *Tree {
		return mustTree(t, Config{
			Rows: 1 << 12, Counters: 4, MaxLevels: 4,
			RefreshThreshold: 1 << 14, PreSplit: 1,
			Ladder: GeometricLadder(4, 1<<14),
		})
	}
	// The hot region is the last eighth of the bank (the w/2 group of the
	// example). Bias factor b = extra accesses to it per uniform access.
	drive := func(tree *Tree, hotShare float64) {
		n := 1 << 18
		hotLo := tree.Config().Rows * 7 / 8
		src := rng.NewXoshiro256(99)
		for i := 0; i < n; i++ {
			if rng.Float64(src) < hotShare {
				tree.Access(hotLo + rng.Intn(src, tree.Config().Rows/8))
			} else {
				tree.Access(rng.Intn(src, tree.Config().Rows))
			}
		}
	}
	weak, strong := mk(), mk()
	drive(weak, 0.15)   // mild bias: roughly uniform pressure
	drive(strong, 0.75) // strong bias: well past critical
	maxDepth := func(tree *Tree) int {
		d := 0
		for _, l := range tree.Leaves() {
			if l.Depth > d {
				d = l.Depth
			}
		}
		return d
	}
	if maxDepth(strong) <= maxDepth(weak) {
		t.Errorf("strong bias depth %d should exceed weak bias depth %d",
			maxDepth(strong), maxDepth(weak))
	}
}
