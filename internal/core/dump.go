package core

import (
	"fmt"
	"strings"
)

// DumpTable renders the SRAM arrays in the layout of the paper's Fig. 5:
// the intermediate-node array I (L-ptr, R-ptr, leaf flags — shown with the
// paper's polarity, where flag 1 marks an intermediate successor), the
// counter array C, and the weight array W. Diagnostics and documentation;
// not on any hot path.
func (t *Tree) DumpTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "I (%d rows)          L-ptr  R-ptr  L-node  R-node\n", t.nInodes)
	for i := 0; i < t.nInodes; i++ {
		n := &t.inodes[i]
		fmt.Fprintf(&b, "  I%-3d               %-6s %-6s %d       %d\n",
			i, refName(n.left, n.leftNode), refName(n.right, n.rightNode),
			boolBit(n.leftNode), boolBit(n.rightNode))
	}
	fmt.Fprintf(&b, "C (%d active of %d)   value  depth  T-index  weight\n", t.nCtrs, t.cfg.Counters)
	for i := 0; i < t.nCtrs; i++ {
		c := &t.counters[i]
		fmt.Fprintf(&b, "  C%-3d               %-6d %-6d %-8d %d\n",
			i, c.value, c.depth, c.thIdx, t.weights[i])
	}
	return b.String()
}

func refName(idx int32, isNode bool) string {
	if isNode {
		return fmt.Sprintf("I%d", idx)
	}
	return fmt.Sprintf("C%d", idx)
}

func boolBit(v bool) int {
	if v {
		return 1
	}
	return 0
}

// StorageBits returns the on-chip storage the tree occupies, following the
// paper's accounting (§IV-C, §V-B): each counter is log2(T) bits plus the
// weight register for DRCAT; each intermediate-node row holds two log2(M)
// pointers and two flags.
func (t *Tree) StorageBits() int {
	m := t.cfg.Counters
	counterBits := bitsFor(t.cfg.RefreshThreshold)
	if t.cfg.Policy == DRCAT {
		wb := t.cfg.WeightBits
		if wb == 0 {
			wb = 2
		}
		counterBits += wb
	}
	ptrBits := 1
	for 1<<ptrBits < m {
		ptrBits++
	}
	inodeBits := 2*ptrBits + 2
	return m*counterBits + (m-1)*inodeBits
}

func bitsFor(v uint32) int {
	bits := 0
	for 1<<bits < int(v) {
		bits++
	}
	return bits
}
