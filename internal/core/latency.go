package core

// Lookup-latency model (paper §VII-A). The paper's synthesis gives an
// average PRCAT lookup of 3.6 ns (circuit latency plus repeated SRAM
// accesses), 4 ns for DRCAT (the weight-register access is added), and
// about 7.5 ns for a DRCAT reconfiguration (tree traversal to find cold
// counters); all are far below DRAM's row-activation latency, and tree
// updates proceed in parallel with the memory access, so lookups are never
// on the critical path. The constants below are calibrated so a typical
// M=64, L=11 tree (4-5 sequential SRAM accesses per lookup) reproduces the
// published averages.
const (
	// SRAMAccessNS is the latency of one sequential SRAM access in the
	// 45 nm node of the paper's synthesis.
	SRAMAccessNS = 0.7

	// LogicOverheadNS is the fixed combinational latency per lookup.
	LogicOverheadNS = 0.6

	// WeightRegisterNS is DRCAT's extra weight-register access per
	// refresh-triggering lookup, amortised per access in the paper's
	// reported 4 ns average.
	WeightRegisterNS = 0.4

	// ReconfigLatencyNS is the paper's reported latency of one DRCAT
	// merge+split reconfiguration (tree traversal off the critical path).
	ReconfigLatencyNS = 7.5
)

// AvgLookupNS estimates the average lookup latency from the measured SRAM
// traffic, following the paper's accounting.
func (t *Tree) AvgLookupNS() float64 {
	s := t.stats
	if s.Accesses == 0 {
		return 0
	}
	avgSRAM := float64(s.SRAMAccesses) / float64(s.Accesses)
	lat := LogicOverheadNS + avgSRAM*SRAMAccessNS
	if t.cfg.Policy == DRCAT {
		lat += WeightRegisterNS
	}
	return lat
}

// WorstLookupNS returns the latency of the deepest possible lookup
// (a leaf at level L-1: L - λ + 2 sequential SRAM accesses).
func (t *Tree) WorstLookupNS() float64 {
	lat := LogicOverheadNS + float64(t.sramCost(t.cfg.MaxLevels-1))*SRAMAccessNS
	if t.cfg.Policy == DRCAT {
		lat += WeightRegisterNS
	}
	return lat
}
