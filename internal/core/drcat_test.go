package core

import (
	"testing"

	"catsim/internal/rng"
)

// fillTree drives uniform traffic until every counter is active.
func fillTree(t *testing.T, tree *Tree, seed uint64) {
	t.Helper()
	src := rng.NewXoshiro256(seed)
	rows := tree.Config().Rows
	for i := 0; i < 1<<20 && !tree.Full(); i++ {
		tree.Access(rng.Intn(src, rows))
	}
	if !tree.Full() {
		t.Fatal("could not fill tree")
	}
}

func TestDRCATWeightsTrackHotCounter(t *testing.T) {
	cfg := Config{
		Rows: 1 << 12, Counters: 16, MaxLevels: 7,
		RefreshThreshold: 256, Policy: DRCAT,
	}
	tree := mustTree(t, cfg)
	fillTree(t, tree, 1)

	// Hammer one row until a refresh fires; its leaf's weight must rise.
	hot := 77
	var fired bool
	for i := 0; i < 4*int(cfg.RefreshThreshold); i++ {
		if _, _, r := tree.Access(hot); r {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("no refresh fired")
	}
	var hotWeight uint8
	for _, l := range tree.Leaves() {
		if l.Lo <= hot && hot <= l.Hi {
			hotWeight = l.Weight
		}
	}
	if hotWeight == 0 {
		t.Error("hot leaf weight did not increase")
	}
}

func TestDRCATReconfigurationSplitsHotMergesCold(t *testing.T) {
	cfg := Config{
		Rows: 1 << 12, Counters: 16, MaxLevels: 9,
		RefreshThreshold: 256, Policy: DRCAT,
	}
	tree := mustTree(t, cfg)
	fillTree(t, tree, 2)

	var hotDepthBefore int
	hot := 99
	for _, l := range tree.Leaves() {
		if l.Lo <= hot && hot <= l.Hi {
			hotDepthBefore = l.Depth
		}
	}

	// Hammer one row across enough refresh triggers to saturate its weight
	// and force reconfigurations.
	for i := 0; i < 64*int(cfg.RefreshThreshold); i++ {
		tree.Access(hot)
		if err := error(nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s := tree.Stats()
	if s.Reconfigs == 0 {
		t.Fatal("expected at least one DRCAT reconfiguration")
	}
	var hotDepthAfter int
	for _, l := range tree.Leaves() {
		if l.Lo <= hot && hot <= l.Hi {
			hotDepthAfter = l.Depth
		}
	}
	if hotDepthAfter <= hotDepthBefore {
		t.Errorf("hot leaf depth %d -> %d; reconfiguration should deepen it",
			hotDepthBefore, hotDepthAfter)
	}
	// Leaf count must be unchanged: merges release exactly what splits use.
	if got := len(tree.Leaves()); got != cfg.Counters {
		t.Errorf("leaves = %d, want %d", got, cfg.Counters)
	}
}

func TestDRCATReconfigurationReducesRefreshCostForMovingHotspot(t *testing.T) {
	// The paper's motivation for DRCAT: when the hot spot moves, the
	// reconfigured tree refreshes fewer rows than a frozen shape would.
	// Compare rows refreshed by DRCAT against PRCAT whose interval never
	// ends (i.e. a plain CAT shaped by the first phase only).
	run := func(policy Policy) int64 {
		cfg := Config{
			Rows: 1 << 12, Counters: 16, MaxLevels: 9,
			RefreshThreshold: 128, Policy: policy,
		}
		tree, err := NewTree(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.NewXoshiro256(5)
		// Phase 1 shapes the tree around rows 0..63.
		for i := 0; i < 1<<15; i++ {
			tree.Access(rng.Intn(src, 64))
		}
		// Phase 2 moves the hot spot to the opposite end.
		for i := 0; i < 1<<15; i++ {
			tree.Access(4000 + rng.Intn(src, 64))
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return tree.Stats().RowsRefreshed
	}
	drcat := run(DRCAT)
	prcatFrozen := run(PRCAT) // never reset mid-test; same tree rules minus reconfig
	if drcat >= prcatFrozen {
		t.Errorf("DRCAT refreshed %d rows, frozen tree %d; reconfiguration should win", drcat, prcatFrozen)
	}
}

func TestDRCATWeightBitsCap(t *testing.T) {
	cfg := Config{
		Rows: 1 << 10, Counters: 8, MaxLevels: 6,
		RefreshThreshold: 64, Policy: DRCAT, WeightBits: 3,
	}
	tree := mustTree(t, cfg)
	fillTree(t, tree, 3)
	for i := 0; i < 200*int(cfg.RefreshThreshold); i++ {
		tree.Access(1)
	}
	for _, w := range tree.Weights() {
		if w > 7 {
			t.Errorf("weight %d exceeds 3-bit cap", w)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDRCATReconfigSkippedAtMaxDepth(t *testing.T) {
	// With MaxLevels equal to the pre-split depth the hot counter can never
	// deepen; reconfiguration must refuse rather than corrupt the tree.
	cfg := Config{
		Rows: 1 << 8, Counters: 8, MaxLevels: 4, PreSplit: 4,
		RefreshThreshold: 32, Policy: DRCAT,
		Ladder: UniformLadder(4, 32),
	}
	tree := mustTree(t, cfg)
	for i := 0; i < 100*int(cfg.RefreshThreshold); i++ {
		tree.Access(3)
	}
	if got := tree.Stats().Reconfigs; got != 0 {
		t.Errorf("Reconfigs = %d, want 0 at depth cap", got)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDRCATManyReconfigurationsStaySound(t *testing.T) {
	// Alternate the hot spot between regions; every reconfiguration batch
	// must preserve the partition and counter-bound invariants.
	cfg := Config{
		Rows: 1 << 12, Counters: 16, MaxLevels: 10,
		RefreshThreshold: 64, Policy: DRCAT,
	}
	tree := mustTree(t, cfg)
	fillTree(t, tree, 4)
	spots := []int{10, 2000, 3900, 800, 3000}
	for round, s := range spots {
		for i := 0; i < 40*int(cfg.RefreshThreshold); i++ {
			tree.Access(s)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("round %d (hot=%d): %v", round, s, err)
		}
	}
	if tree.Stats().Reconfigs < 2 {
		t.Errorf("Reconfigs = %d, want several across moving hot spots", tree.Stats().Reconfigs)
	}
}
