package core

// DRCAT reconfiguration (paper §V-B, Fig. 7).
//
// Every counter carries a small weight register. When a counter reaches the
// refresh threshold its weight is incremented (saturating) and all other
// weights are decremented (floored at zero), so weights age out unless a
// region keeps triggering refreshes. When a counter saturates its weight,
// the tree is reshaped: an intermediate node whose two children are both
// zero-weight leaf counters is located, the two cold counters are merged
// (one is promoted into the parent's slot, keeping the larger value so the
// per-row activation upper bound is preserved), and the released counter
// and intermediate-node row are reused to split the hot counter in half.

// noteRefresh performs the weight bookkeeping and, when the hot counter's
// weight saturates, attempts one merge+split reconfiguration.
func (t *Tree) noteRefresh(hot int32) {
	w := t.weights
	for i := 0; i < t.nCtrs; i++ {
		if int32(i) == hot {
			continue
		}
		if w[i] > 0 {
			w[i]--
		}
	}
	if w[hot] < t.weightCap {
		w[hot]++
	}
	if w[hot] < t.weightCap {
		return
	}
	if t.reconfigure(hot) {
		t.stats.Reconfigs++
		// Step 3 of the paper: the freshly split counters get weight 1 "to
		// ensure they remain split for a reasonable period of time while
		// preventing them from being quickly split in succession".
		// reconfigure sets them; nothing more to do here.
	}
}

// reconfigure merges the coldest sibling pair and splits the hot counter,
// reusing the released counter and intermediate-node row. It returns false
// when no reconfiguration is possible (no all-cold sibling pair, the hot
// counter is already at maximum depth, or the tree is trivial).
func (t *Tree) reconfigure(hot int32) bool {
	if t.nInodes < 2 {
		return false // degenerate tree: nothing to merge without emptying it
	}
	hotC := &t.counters[hot]
	if int(hotC.depth) >= t.cfg.MaxLevels-1 {
		return false // splitting would exceed the L-level cap
	}

	// Step 1: find an intermediate node whose children are two cold leaves.
	merge := int32(-1)
	for i := 0; i < t.nInodes; i++ {
		n := &t.inodes[i]
		if n.leftNode || n.rightNode {
			continue
		}
		if t.weights[n.left] == 0 && t.weights[n.right] == 0 &&
			n.left != hot && n.right != hot {
			merge = int32(i)
			break
		}
	}
	if merge < 0 || merge == 0 {
		// No candidate, or the candidate is the root (merging the root
		// would collapse the tree to a single leaf mid-surgery).
		return false
	}

	mergeParent, mergeRight, ok := t.findParent(merge, true)
	if !ok {
		return false // unreachable in a consistent tree
	}
	hotParent, hotRight, hok := t.findParent(hot, false)
	if !hok {
		return false // hot is the root leaf; cannot split in place
	}
	if hotParent == merge {
		return false // cannot reuse the row that links the hot counter
	}

	// Perform the merge: promote the right child (the paper's Fig. 7
	// promotes C5, the right child of I5), release the left child, and keep
	// the maximum value so the merged counter still upper-bounds every row
	// in the doubled range.
	m := t.inodes[merge]
	promoted, released := m.right, m.left
	if t.counters[released].value > t.counters[promoted].value {
		t.counters[promoted].value = t.counters[released].value
	}
	t.counters[promoted].depth--
	p := &t.inodes[mergeParent]
	if mergeRight {
		p.right, p.rightNode = promoted, false
	} else {
		p.left, p.leftNode = promoted, false
	}

	// Step 2: reuse the released intermediate-node row and counter to split
	// the hot counter. The released counter becomes a clone of the hot one
	// (same value: the activation upper bound holds for both halves).
	t.counters[released] = counterState{
		value: hotC.value,
		depth: hotC.depth + 1,
		thIdx: hotC.thIdx,
	}
	hotC.depth++
	t.inodes[merge] = inode{left: hot, right: released, leftNode: false, rightNode: false}
	hp := &t.inodes[hotParent]
	if hotRight {
		hp.right, hp.rightNode = merge, true
	} else {
		hp.left, hp.leftNode = merge, true
	}

	// Step 3: start the new pair with weight 1.
	t.weights[hot] = 1
	t.weights[released] = 1
	return true
}

// findParent scans the intermediate-node array for the entry pointing at
// target. isNode selects whether target is an intermediate node or a leaf
// counter. It returns the parent row, which side points at target, and
// whether a parent was found.
func (t *Tree) findParent(target int32, isNode bool) (parent int32, right bool, ok bool) {
	for i := 0; i < t.nInodes; i++ {
		n := &t.inodes[i]
		if n.left == target && n.leftNode == isNode {
			return int32(i), false, true
		}
		if n.right == target && n.rightNode == isNode {
			return int32(i), true, true
		}
	}
	return -1, false, false
}

// Weights returns a copy of the weight registers (diagnostics and tests).
func (t *Tree) Weights() []uint8 {
	out := make([]uint8, t.nCtrs)
	copy(out, t.weights[:t.nCtrs])
	return out
}
