// Package reliability implements the paper's probabilistic-refresh
// reliability analysis (§III-A):
//
//   - Eq. 1's closed-form Y-year unsurvivability of PRA,
//     (1-p)^T * Q0 * Q1, plotted in Fig. 1 against the Chipkill reference
//     of 1e-4; and
//
//   - the Monte-Carlo study of PRA driven by a cheap LFSR-based PRNG, which
//     shows that correlated random bits destroy the analytic guarantee (the
//     paper: "for T=16K and p=0.005, PRA's unsurvivability reaches 1E-4
//     after only 25 refresh intervals" with an LFSR).
package reliability

import (
	"fmt"
	"math"

	"catsim/internal/rng"
)

// ChipkillReference is the comparison line of Fig. 1.
const ChipkillReference = 1e-4

// RefreshIntervalsPerYear counts 64 ms windows in one year.
const RefreshIntervalsPerYear = 365.25 * 24 * 3600 / 0.064

// Q1 returns the number of 64 ms periods in the given number of years
// (Eq. 1's Q1).
func Q1(years float64) float64 { return years * RefreshIntervalsPerYear }

// Unsurvivability evaluates Eq. 1: the probability of at least one
// crosstalk failure in `years` years for PRA with per-access refresh
// probability p, refresh threshold t, and q0 refresh-threshold windows per
// refresh interval. The probability is clamped to [0, 1].
func Unsurvivability(p float64, t uint32, q0 int, years float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("reliability: p %v out of (0,1)", p)
	}
	if t < 1 || q0 < 1 || years <= 0 {
		return 0, fmt.Errorf("reliability: invalid T=%d Q0=%d years=%v", t, q0, years)
	}
	// (1-p)^T computed in log space to survive T ~ 64K.
	logTerm := float64(t) * math.Log1p(-p)
	u := math.Exp(logTerm) * float64(q0) * Q1(years)
	if u > 1 {
		u = 1
	}
	return u, nil
}

// DefaultQ0 returns the paper's "mild row accesses" Q0 for each refresh
// threshold: 10, 15, 20 and 40 for T = 32K, 24K, 16K and 8K.
func DefaultQ0(t uint32) int {
	switch {
	case t >= 32*1024:
		return 10
	case t >= 24*1024:
		return 15
	case t >= 16*1024:
		return 20
	default:
		return 40
	}
}

// MonteCarloConfig parameterises the LFSR study.
type MonteCarloConfig struct {
	T         uint32  // refresh threshold
	P         float64 // nominal refresh probability
	Q0        int     // threshold windows per refresh interval
	Intervals int     // refresh intervals to simulate per trial
	Trials    int     // independent trials (seeds)
	Rotate    int     // number of aggressor rows the attacker rotates over
	SeedBase  uint64
	// TapMask selects the LFSR feedback polynomial for MonteCarloLFSR;
	// zero selects rng.WeakMask16 (the cheap two-tap x^16+x^8+1 whose
	// short cycles are the failure mechanism: most seeds yield a periodic
	// 9-bit stream that never produces a refresh decision).
	TapMask uint32
}

// MonteCarloResult reports the estimated probability that a victim fails
// within the simulated horizon.
type MonteCarloResult struct {
	Failures  int
	Trials    int
	FailProb  float64
	FirstFail int // interval index of the earliest failure, -1 if none
}

// bitsSource draws 9-bit refresh decisions the way the hardware would:
// stepping the generator 9 bits per activation.
type bitsSource interface {
	Step() uint64
}

func draw9(s bitsSource) uint64 {
	var v uint64
	for i := 0; i < 9; i++ {
		v = v<<1 | s.Step()
	}
	return v
}

// runTrial simulates one attack horizon with the given bit stepper and
// returns the interval of the first victim failure, or -1.
//
// The attack model follows the paper's hammering setup: the attacker
// rotates over cfg.Rotate aggressor rows as fast as the bank allows,
// issuing Q0*T activations per refresh interval. Every activation of an
// aggressor increments its victims' exposure; with probability p (a 9-bit
// draw below the threshold) PRA refreshes the two victims, zeroing that
// aggressor's exposure. A victim fails when exposure reaches T between
// refreshes. Auto-refresh clears everything at interval boundaries.
func runTrial(cfg *MonteCarloConfig, draw func() uint64) int {
	th := uint64(math.Round(cfg.P * 512))
	if th < 1 {
		th = 1
	}
	exposure := make([]uint32, cfg.Rotate)
	accessesPerInterval := int64(cfg.Q0) * int64(cfg.T)
	for interval := 0; interval < cfg.Intervals; interval++ {
		for i := range exposure {
			exposure[i] = 0
		}
		var agg int
		for a := int64(0); a < accessesPerInterval; a++ {
			exposure[agg]++
			if exposure[agg] >= cfg.T {
				return interval
			}
			if draw() < th {
				exposure[agg] = 0
			}
			agg = (agg + 1) % cfg.Rotate
		}
	}
	return -1
}

func (cfg *MonteCarloConfig) validate() error {
	if cfg.T < 1 || cfg.P <= 0 || cfg.P >= 1 || cfg.Q0 < 1 ||
		cfg.Intervals < 1 || cfg.Trials < 1 || cfg.Rotate < 1 {
		return fmt.Errorf("reliability: invalid Monte-Carlo config %+v", *cfg)
	}
	return nil
}

// MonteCarloLFSR estimates PRA's failure probability when its PRNG is a
// 16-bit LFSR (the cheap hardware design of the paper's [40, 41]), stepped
// 9 bits per refresh decision. With a maximal polynomial the decision
// stream has period 2^16-1 bits and blind hammering essentially never sees
// a refresh-free run of T draws; with the cheap non-maximal polynomials
// (short cycles) a large fraction of seeds produce a periodic stream that
// contains no refresh decision at all, so those systems never refresh and
// fail deterministically — the collapse of Eq. 1's guarantee the paper's
// Monte-Carlo study reports.
func MonteCarloLFSR(cfg MonteCarloConfig) (MonteCarloResult, error) {
	if err := cfg.validate(); err != nil {
		return MonteCarloResult{}, err
	}
	mask := cfg.TapMask
	if mask == 0 {
		mask = rng.WeakMask16
	}
	res := MonteCarloResult{Trials: cfg.Trials, FirstFail: -1}
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := uint32(cfg.SeedBase) + uint32(trial)*2654435761 + 1
		l := rng.NewFibLFSR(16, mask, seed)
		if first := runTrial(&cfg, func() uint64 { return draw9(l) }); first >= 0 {
			res.Failures++
			if res.FirstFail < 0 || first < res.FirstFail {
				res.FirstFail = first
			}
		}
	}
	res.FailProb = float64(res.Failures) / float64(res.Trials)
	return res, nil
}

// SyncAttackAccesses models the phase-aware adversary against a *maximal*
// LFSR: because the decision stream is deterministic with a short period,
// an attacker who knows the register phase issues its aggressor accesses
// only when the upcoming decision will NOT refresh, wasting the refresh
// decisions on dummy rows. It returns the number of total accesses needed
// to land t aggressor activations with zero refreshes — always finite, so
// the attack always succeeds once a bank sustains that many activations
// between auto-refreshes. The second return reports the overhead ratio
// (total/t).
func SyncAttackAccesses(t uint32, p float64, mask uint32, seed uint32) (int64, float64) {
	th := uint64(math.Round(p * 512))
	if th < 1 {
		th = 1
	}
	if mask == 0 {
		mask = rng.MaximalMask16
	}
	l := rng.NewFibLFSR(16, mask, seed)
	var total, hits int64
	for hits < int64(t) {
		// The adversary predicts the next 9-bit draw (it knows the
		// polynomial and phase) and routes the access accordingly.
		if draw9(l) < th {
			total++ // dummy access absorbs the refresh on an unrelated row
			continue
		}
		total++
		hits++
	}
	return total, float64(total) / float64(t)
}

// MonteCarloIdeal estimates the same failure probability with a
// high-quality PRNG; it validates the Monte-Carlo harness against Eq. 1
// (for feasible horizons both are effectively zero at the paper's
// parameters, and they agree at artificially small T).
func MonteCarloIdeal(cfg MonteCarloConfig) (MonteCarloResult, error) {
	if err := cfg.validate(); err != nil {
		return MonteCarloResult{}, err
	}
	res := MonteCarloResult{Trials: cfg.Trials, FirstFail: -1}
	for trial := 0; trial < cfg.Trials; trial++ {
		src := rng.NewXoshiro256(cfg.SeedBase + uint64(trial))
		if first := runTrial(&cfg, func() uint64 { return rng.Bits(src, 9) }); first >= 0 {
			res.Failures++
			if res.FirstFail < 0 || first < res.FirstFail {
				res.FirstFail = first
			}
		}
	}
	res.FailProb = float64(res.Failures) / float64(res.Trials)
	return res, nil
}
