package reliability

import (
	"math"
	"testing"

	"catsim/internal/rng"
)

func TestUnsurvivabilityMatchesPaperAnchors(t *testing.T) {
	// §III-A: "for T=32K and p > 0.001, PRA's unsurvivability is lower
	// than the Chipkill's unsurvivability of 1E-4" and footnote 2:
	// "PRA p=0.001 probability of failure is higher than 1E-4".
	u1, err := Unsurvivability(0.001, 32*1024, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if u1 <= ChipkillReference {
		t.Errorf("p=0.001, T=32K: unsurvivability %g, paper says above 1e-4", u1)
	}
	u2, err := Unsurvivability(0.002, 32*1024, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if u2 >= ChipkillReference {
		t.Errorf("p=0.002, T=32K: unsurvivability %g, paper says below 1e-4", u2)
	}
}

func TestUnsurvivabilityClosedForm(t *testing.T) {
	// Check against a direct small-number evaluation.
	got, err := Unsurvivability(0.01, 100, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(0.99, 100) * 5 * Q1(1)
	if want > 1 {
		want = 1
	}
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("got %g, want %g", got, want)
	}
}

func TestUnsurvivabilityMonotoneInPAndT(t *testing.T) {
	prev := 1.1 // unsurvivability clamps at 1, so start above the clamp
	for _, p := range []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006} {
		u, err := Unsurvivability(p, 16*1024, 20, 5)
		if err != nil {
			t.Fatal(err)
		}
		if u >= prev {
			t.Errorf("unsurvivability not decreasing in p at %v", p)
		}
		prev = u
	}
	// Smaller T -> higher unsurvivability at fixed p (Fig. 1's key trend).
	uBig, _ := Unsurvivability(0.003, 32*1024, 10, 5)
	uSmall, _ := Unsurvivability(0.003, 8*1024, 40, 5)
	if uSmall <= uBig {
		t.Errorf("T=8K (%g) should be far less survivable than T=32K (%g)", uSmall, uBig)
	}
}

func TestUnsurvivabilityValidation(t *testing.T) {
	if _, err := Unsurvivability(0, 100, 1, 1); err == nil {
		t.Error("expected p error")
	}
	if _, err := Unsurvivability(0.5, 0, 1, 1); err == nil {
		t.Error("expected T error")
	}
	if _, err := Unsurvivability(0.5, 100, 0, 1); err == nil {
		t.Error("expected Q0 error")
	}
	if _, err := Unsurvivability(0.5, 100, 1, 0); err == nil {
		t.Error("expected years error")
	}
}

func TestDefaultQ0(t *testing.T) {
	cases := map[uint32]int{32768: 10, 24576: 15, 16384: 20, 8192: 40}
	for th, want := range cases {
		if got := DefaultQ0(th); got != want {
			t.Errorf("Q0(%d) = %d, want %d", th, got, want)
		}
	}
}

func TestMonteCarloIdealAgreesWithClosedForm(t *testing.T) {
	// At an artificially small T the per-window failure probability is
	// large enough to measure: expected per-interval failure rate is about
	// Q0 * (1-p)^T per window... validate the harness produces failures at
	// a rate within a factor of a few of the analytic per-trial estimate.
	cfg := MonteCarloConfig{
		T: 256, P: 0.01, Q0: 4, Intervals: 10, Trials: 400, Rotate: 1, SeedBase: 42,
	}
	res, err := MonteCarloIdeal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// P(single window survives refresh-free run of T) ~ (1-p)^T = 0.076;
	// windows per trial = Q0 * Intervals = 40 -> P(fail) ~ 1-(1-0.076)^40 ~ 0.96.
	if res.FailProb < 0.5 {
		t.Errorf("ideal MC fail prob %v, want high at these parameters", res.FailProb)
	}

	// At the paper's real parameters the ideal PRNG essentially never
	// fails within a feasible horizon.
	cfg2 := MonteCarloConfig{
		T: 16384, P: 0.005, Q0: 20, Intervals: 2, Trials: 10, Rotate: 1, SeedBase: 7,
	}
	res2, err := MonteCarloIdeal(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failures != 0 {
		t.Errorf("ideal PRNG failed %d/%d at paper parameters; (1-p)^T ~ 2e-36", res2.Failures, res2.Trials)
	}
}

func TestMonteCarloWeakLFSRFailsCatastrophically(t *testing.T) {
	// The cheap two-tap LFSR has cycles of length <= 24 bits; most seeds
	// produce a periodic decision stream with no refresh decisions, so the
	// failure probability is large and failures happen immediately —
	// the qualitative collapse the paper's Monte-Carlo study reports.
	cfg := MonteCarloConfig{
		T: 16384, P: 0.005, Q0: 20, Intervals: 5, Trials: 200, Rotate: 1, SeedBase: 99,
	}
	res, err := MonteCarloLFSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailProb <= ChipkillReference {
		t.Errorf("weak LFSR fail prob %v, want far above the Chipkill reference", res.FailProb)
	}
	if res.FirstFail != 0 {
		t.Errorf("first failure in interval %d, want immediate", res.FirstFail)
	}
}

func TestMonteCarloMaximalLFSRSafeAgainstBlindHammering(t *testing.T) {
	// With a maximal polynomial the decision stream's period (2^16-1 bits)
	// contains refresh decisions every few hundred draws, so a blind
	// single-row hammer never accumulates T=16K refresh-free draws.
	cfg := MonteCarloConfig{
		T: 16384, P: 0.005, Q0: 20, Intervals: 2, Trials: 10, Rotate: 1,
		SeedBase: 5, TapMask: rng.MaximalMask16,
	}
	res, err := MonteCarloLFSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Errorf("maximal LFSR failed %d/%d under blind hammering", res.Failures, res.Trials)
	}
}

func TestSyncAttackAlwaysDefeatsMaximalLFSR(t *testing.T) {
	// The phase-aware adversary always reaches T aggressor activations
	// with zero refreshes, at bounded overhead.
	total, overhead := SyncAttackAccesses(16384, 0.005, rng.MaximalMask16, 0xBEEF)
	if total < 16384 {
		t.Fatalf("impossible: %d total accesses < T", total)
	}
	if overhead > 1.2 {
		t.Errorf("overhead ratio %v; evading refreshes should be cheap (p small)", overhead)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	bad := MonteCarloConfig{}
	if _, err := MonteCarloLFSR(bad); err == nil {
		t.Error("expected config error")
	}
	if _, err := MonteCarloIdeal(bad); err == nil {
		t.Error("expected config error")
	}
}
