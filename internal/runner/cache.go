package runner

import (
	"sort"
	"sync"
	"sync/atomic"

	"catsim/internal/sim"
	"catsim/internal/workload"
)

// Cache memoizes sim.Run results by the canonical config key
// (sim.CacheKey). Concurrent requests for the same key are single-flight:
// exactly one executes, the rest block on it — which is what guarantees
// every shared KindNone baseline runs once per (workload, threshold,
// seed) no matter how many paired cells, figures or workers want it.
// Safe for concurrent use; share one Cache across figures to deduplicate
// a whole reproduction.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	res  sim.Result
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*cacheEntry{}}
}

// Run returns the memoized result for cfg, executing sim.Run at most once
// per canonical key.
func (c *Cache) Run(cfg sim.Config) (sim.Result, error) {
	return c.RunWith(cfg, sim.Run)
}

// RunWith is Run with an injected executor — the hook the runner Engine
// uses to route cache misses through a pooled run context. run executes
// at most once per canonical key regardless of which executor the
// winning caller supplied.
func (c *Cache) RunWith(cfg sim.Config, run func(sim.Config) (sim.Result, error)) (sim.Result, error) {
	key := sim.CacheKey(cfg)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	e.once.Do(func() {
		e.res, e.err = run(cfg)
	})
	if e.err != nil {
		return sim.Result{}, e.err
	}
	res := e.res
	// The entry is shared across callers: hand out private copies of the
	// mutable fields so consumers can't corrupt each other.
	res.PerBankActs = append([]int64(nil), e.res.PerBankActs...)
	res.Epochs = append([]sim.EpochSample(nil), e.res.Epochs...)
	res.Tenants = append([]workload.TenantStat(nil), e.res.Tenants...)
	return res, nil
}

// Hits reports how many Run calls were served from an existing entry
// (including calls that blocked on an in-flight execution).
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Runs returns the canonical keys of every simulation the cache has
// executed (or started executing), sorted. Each key is prefixed with the
// scheme label, so tests can count e.g. baseline executions by the
// "None|" prefix.
func (c *Cache) Runs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
