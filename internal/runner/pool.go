package runner

import (
	"sync"
	"sync/atomic"

	"catsim/internal/sim"
)

// ContextPool hands reusable sim.Contexts to grid workers. Sweeps run
// thousands of same-shape cells; with a pooled context each worker keeps
// its component stack — controller bank state, scheme trees, scratch
// slabs, generator stacks — warm across cells instead of rebuilding it
// per run, which is where most of a sweep's allocation volume goes.
// Safe for concurrent use: each Run checks a context out for the
// duration of the simulation, so a context is never shared between
// in-flight runs.
//
// A plain free-list rather than sync.Pool: contexts are few (bounded by
// worker parallelism), expensive to rebuild, and worth keeping warm
// across GC cycles — exactly the object profile sync.Pool is wrong for.
type ContextPool struct {
	mu     sync.Mutex
	free   []*sim.Context
	builds atomic.Int64
	reuses atomic.Int64
}

// NewContextPool returns an empty pool; contexts are created on demand.
func NewContextPool() *ContextPool { return &ContextPool{} }

// get checks a context out, counting whether it comes warm or fresh.
func (p *ContextPool) get() *sim.Context {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		ctx := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		return ctx
	}
	p.mu.Unlock()
	p.builds.Add(1)
	return sim.NewContext()
}

func (p *ContextPool) put(ctx *sim.Context) {
	p.mu.Lock()
	p.free = append(p.free, ctx)
	p.mu.Unlock()
}

// Run executes one simulation on a pooled context and returns a private
// copy of the result (the context's Result aliases its reusable buffers,
// so it must not escape the checkout).
func (p *ContextPool) Run(cfg sim.Config) (sim.Result, error) {
	ctx := p.get()
	res, err := ctx.Run(cfg)
	if err != nil {
		// A failed run may leave partially built state; the context
		// rebuilds from scratch next time, so pooling it back is safe.
		p.put(ctx)
		return sim.Result{}, err
	}
	res = res.Clone()
	p.put(ctx)
	return res, nil
}

// Stats reports how many pool checkouts found a warm context (reuses)
// versus a fresh one (builds). reuses > 0 is the observable that pooling
// is actually paying: repeated same-shape runs skip setup entirely.
func (p *ContextPool) Stats() (builds, reuses int64) {
	return p.builds.Load(), p.reuses.Load()
}
