package runner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"catsim/internal/mitigation"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// testCells builds a small real grid: two schemes x two workloads, paired.
func testCells(t *testing.T) []Cell {
	t.Helper()
	var cells []Cell
	for _, spec := range []sim.SchemeSpec{
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindSCA, Counters: 64},
	} {
		for wi, name := range []string{"black", "comm1"} {
			wl, err := trace.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			cells = append(cells, Cell{
				Tag: spec.Label(512) + "/" + name,
				Config: sim.Config{
					Cores: 2, RequestsPerCore: 20_000, Workload: wl,
					Scheme: spec, Threshold: 512, ThresholdScale: 0.03,
					IntervalNS: 2e6, Seed: 7 + uint64(wi),
				},
				Pair: true,
			})
		}
	}
	return cells
}

func TestMapPreservesOrder(t *testing.T) {
	out, err := Map(context.Background(), 8, 100, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapRunsConcurrently(t *testing.T) {
	// With parallelism 4 and 4 tasks that all wait for each other, the
	// map can only finish if the tasks genuinely overlap.
	var started sync.WaitGroup
	started.Add(4)
	_, err := Map(context.Background(), 4, 4, func(i int) (int, error) {
		started.Done()
		started.Wait() // deadlocks unless all 4 run at once
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapSequentialIsStrictlyOrdered(t *testing.T) {
	var order []int
	_, err := Map(context.Background(), 1, 10, func(i int) (int, error) {
		order = append(order, i) // safe: parallel=1 spawns no goroutines
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestMapAggregatesAllErrors(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i%3 == 0 {
			return 0, wantErr
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected joined error")
	}
	// 0, 3, 6, 9 fail: all four must be present.
	if n := strings.Count(err.Error(), "boom"); n != 4 {
		t.Fatalf("joined error has %d failures, want 4: %v", n, err)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, err := Map(ctx, 2, 1000, func(i int) (int, error) {
		if ran.Add(1) == 4 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d tasks ran despite cancellation", n)
	}
}

func TestGridDeterministicAcrossParallelism(t *testing.T) {
	cells := testCells(t)
	var got [][]CellResult
	for _, parallel := range []int{1, 8} {
		e := &Engine{Parallel: parallel, Cache: NewCache()}
		res, err := e.Grid(context.Background(), cells)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res)
	}
	if !reflect.DeepEqual(got[0], got[1]) {
		t.Error("results differ between parallelism 1 and 8")
	}
	// And against the uncached sequential reference.
	e := &Engine{Parallel: 1}
	ref, err := e.Grid(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got[0]) {
		t.Error("cached results differ from the uncached reference")
	}
}

func TestGridErrorsCarryTags(t *testing.T) {
	cells := testCells(t)
	cells[1].Config.Cores = 0 // invalid
	cells[3].Config.Threshold = 0
	e := &Engine{Parallel: 4}
	_, err := e.Grid(context.Background(), cells)
	if err == nil {
		t.Fatal("expected error")
	}
	for _, tag := range []string{cells[1].Tag, cells[3].Tag} {
		if !strings.Contains(err.Error(), tag) {
			t.Errorf("error %q missing tag %q", err, tag)
		}
	}
}

func TestCacheSharesBaselines(t *testing.T) {
	cells := testCells(t)
	cache := NewCache()
	e := &Engine{Parallel: 8, Cache: cache}
	if _, err := e.Grid(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	// 4 paired cells over 2 workloads: 4 scheme runs + 2 distinct
	// baselines (the two workloads differ only by seed/spec).
	runs := cache.Runs()
	var baselines int
	for _, k := range runs {
		if strings.HasPrefix(k, "None|") {
			baselines++
		}
	}
	if baselines != 2 {
		t.Errorf("baseline executions = %d, want 2 (keys: %v)", baselines, runs)
	}
	if len(runs) != 6 {
		t.Errorf("total executions = %d, want 6", len(runs))
	}
	if cache.Hits() != 2 {
		t.Errorf("hits = %d, want 2 (each baseline reused once)", cache.Hits())
	}
}

func TestCacheSingleFlight(t *testing.T) {
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Cores: 1, RequestsPerCore: 5_000, Workload: wl,
		Scheme: sim.SchemeSpec{Kind: mitigation.KindNone}, Threshold: 512,
		ThresholdScale: 0.03, IntervalNS: 2e6, Seed: 3,
	}
	cache := NewCache()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cache.Run(cfg); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := len(cache.Runs()); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
	if h := cache.Hits(); h != 15 {
		t.Errorf("hits = %d, want 15", h)
	}
}

func TestCacheResultsAreIsolated(t *testing.T) {
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Cores: 1, RequestsPerCore: 5_000, Workload: wl,
		Scheme: sim.SchemeSpec{Kind: mitigation.KindNone}, Threshold: 512,
		ThresholdScale: 0.03, IntervalNS: 2e6, Seed: 3,
	}
	cache := NewCache()
	a, err := cache.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.PerBankActs[0] = -1
	b, err := cache.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.PerBankActs[0] == -1 {
		t.Error("mutating one caller's PerBankActs leaked into the cache")
	}
}

// TestPooledGridMatchesReference: a grid run on pooled contexts (the
// sweep fast path) returns the identical results as the uncached,
// unpooled sequential reference, and the pool observably reuses warm
// contexts instead of rebuilding per cell.
func TestPooledGridMatchesReference(t *testing.T) {
	cells := testCells(t)
	ref, err := (&Engine{Parallel: 1}).Grid(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 4} {
		pool := NewContextPool()
		e := &Engine{Parallel: parallel, Cache: NewCache(), Contexts: pool}
		got, err := e.Grid(context.Background(), cells)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("parallel=%d: pooled results differ from the reference", parallel)
		}
		builds, reuses := pool.Stats()
		if builds < 1 {
			t.Errorf("parallel=%d: pool built %d contexts, want >= 1", parallel, builds)
		}
		// 4 paired cells dedup to 6 unique runs through the cache (the two
		// baselines are shared); sequentially one context serves all of
		// them, so all but the first are reuses. At higher parallelism each
		// worker still reuses its own context across cells.
		if parallel == 1 && reuses < 5 {
			t.Errorf("pool reused %d times over 6 sequential runs, want >= 5", reuses)
		}
	}
}

// TestContextPoolResultsAreIsolated: results handed out by the pool must
// not alias the context's reusable buffers — a later run through the same
// pool cannot corrupt an earlier result.
func TestContextPoolResultsAreIsolated(t *testing.T) {
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Cores: 2, RequestsPerCore: 10_000, Workload: wl,
		Scheme:    sim.SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold: 512, ThresholdScale: 0.03, IntervalNS: 2e6, Seed: 7,
		EpochNS: 1e5,
	}
	pool := NewContextPool()
	first, err := pool.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]int64(nil), first.PerBankActs...)
	cfg.Seed = 8
	if _, err := pool.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, first.PerBankActs) {
		t.Error("a later pooled run mutated an earlier result's PerBankActs")
	}
}
