// Package runner executes grids of simulation cells — the
// workload × scheme × threshold sweeps behind every figure of the paper's
// evaluation — on a bounded worker pool. Results come back in stable cell
// order regardless of GOMAXPROCS or scheduling, so rendered tables are
// byte-identical at any parallelism; grids honour context cancellation and
// aggregate per-cell errors instead of stopping at the first one. A
// memoizing Cache (see cache.go) deduplicates shared runs, most notably
// the KindNone baselines that every paired cell re-derives.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"catsim/internal/mitigation"
	"catsim/internal/sim"
)

// Engine runs cells with bounded parallelism and optional memoization.
// The zero value runs at GOMAXPROCS with no cache.
type Engine struct {
	// Parallel caps concurrently executing cells (0 = GOMAXPROCS,
	// 1 = strictly sequential).
	Parallel int
	// Cache memoizes sim.Run results by canonical config key; nil runs
	// every cell from scratch.
	Cache *Cache
	// Contexts, when non-nil, executes cells on pooled reusable run
	// contexts (sim.Context) instead of fresh sim.Run stacks, eliminating
	// per-cell setup allocations across the grid; nil preserves the
	// historical run-from-scratch behaviour. Results are identical either
	// way (the context-reuse identity contract).
	Contexts *ContextPool
	// OnCell, when non-nil, is called after every cell completes
	// (successfully or with err set, in which case r is zero), from
	// whichever worker ran it. Callbacks sharing state must synchronise
	// themselves; completion order is scheduling-dependent.
	OnCell func(i int, r CellResult, err error)
}

// Cell is one point of an experiment grid.
type Cell struct {
	// Tag identifies the cell in error messages ("DRCAT_64/black").
	Tag string
	// Config is the run to execute.
	Config sim.Config
	// Pair additionally runs the KindNone baseline with the identical
	// request streams and reports the execution-time overhead, like
	// sim.RunPair. Baselines are shared through the cache across every
	// cell (and figure) that needs them.
	Pair bool
}

// CellResult is the measured outcome of one cell.
type CellResult struct {
	Tag      string
	Result   sim.Result
	Baseline sim.Result // zero unless Cell.Pair
	ETO      float64    // zero unless Cell.Pair
}

// Grid executes every cell and returns results in cell order. All cells
// are attempted even when some fail; the returned error joins every
// per-cell failure, each prefixed with its tag. A cancelled context stops
// dispatching new cells and surfaces the context error.
func (e *Engine) Grid(ctx context.Context, cells []Cell) ([]CellResult, error) {
	return Map(ctx, e.Parallel, len(cells), func(i int) (CellResult, error) {
		r, err := e.runCell(cells[i])
		if e.OnCell != nil {
			e.OnCell(i, r, err)
		}
		if err != nil {
			return CellResult{}, fmt.Errorf("%s: %w", cells[i].Tag, err)
		}
		return r, nil
	})
}

// baselineConfig derives the KindNone baseline run for a paired cell:
// identical streams, mitigation disabled (sim.RunPair's derivation).
func baselineConfig(cfg sim.Config) sim.Config {
	cfg.Scheme = sim.SchemeSpec{Kind: mitigation.KindNone}
	return cfg
}

// eto is the execution-time overhead of a scheme run over its baseline.
func eto(scheme, baseline sim.Result) float64 {
	if baseline.ExecNS <= 0 {
		return 0
	}
	return (scheme.ExecNS - baseline.ExecNS) / baseline.ExecNS
}

func (e *Engine) runCell(c Cell) (CellResult, error) {
	res, err := e.Run(c.Config)
	if err != nil {
		return CellResult{}, err
	}
	out := CellResult{Tag: c.Tag, Result: res}
	if c.Pair {
		baseline, err := e.Run(baselineConfig(c.Config))
		if err != nil {
			return CellResult{}, fmt.Errorf("baseline: %w", err)
		}
		out.Baseline = baseline
		out.ETO = eto(res, baseline)
	}
	return out, nil
}

// Pair runs cfg against its KindNone baseline like sim.RunPair, but as
// two engine runs that may execute concurrently (subject to Parallel) and
// through the cache. Single-run callers (cmd/catsim) use this; grid
// callers set Cell.Pair instead.
func (e *Engine) Pair(ctx context.Context, cfg sim.Config) (CellResult, error) {
	configs := []sim.Config{cfg, baselineConfig(cfg)}
	res, err := Map(ctx, e.Parallel, len(configs), func(i int) (sim.Result, error) {
		return e.Run(configs[i])
	})
	if err != nil {
		return CellResult{}, err
	}
	return CellResult{Result: res[0], Baseline: res[1], ETO: eto(res[0], res[1])}, nil
}

// Run executes one simulation through the engine's context pool and
// cache (directly when neither is configured).
func (e *Engine) Run(cfg sim.Config) (sim.Result, error) {
	run := sim.Run
	if e.Contexts != nil {
		run = e.Contexts.Run
	}
	if e.Cache == nil {
		return run(cfg)
	}
	return e.Cache.RunWith(cfg, run)
}

// Map runs fn(0..n-1) on at most `parallel` workers (0 = GOMAXPROCS) and
// returns the results in index order. Every index is attempted unless the
// context is cancelled first; errors are joined. It is the generic engine
// under Grid, exported for sweeps whose unit of work is not a sim.Config
// (e.g. the Fig. 2 stream replays and the ablation variants).
func Map[T any](ctx context.Context, parallel, n int, fn func(i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Sequential reference path: identical semantics, no goroutines.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				break
			}
			out[i], errs[i] = fn(i)
		}
		return out, errors.Join(errs...)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			errs[i] = ctx.Err()
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return out, errors.Join(errs...)
}
