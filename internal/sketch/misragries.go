package sketch

import "fmt"

// MisraGries is a frequent-items summary with a spillover floor, the
// variant behind ABACuS's shared activation counters: a fixed table of
// (key, count) entries plus one global spillover counter. The maintained
// invariants are
//
//   - every tracked key's occurrences since the last Reset are ≤ its count,
//   - every untracked key's occurrences are ≤ Spillover(), and
//   - every tracked count is ≥ Spillover(),
//
// so a consumer that acts when a count reaches a threshold — and treats
// the spillover counter itself reaching the threshold as a global trigger
// — never under-reacts. Unlike textbook Misra-Gries (decrement all on a
// miss), the spillover form does a single compare per miss: replace an
// entry sitting at the floor, or raise the floor.
type MisraGries struct {
	keys   []int64 // -1 = empty
	counts []uint32
	spill  uint32
	index  map[int64]int // key -> slot; lookup only, so determinism holds
	filled int
}

// NewMisraGries builds an empty summary with the given entry count.
func NewMisraGries(entries int) (*MisraGries, error) {
	if entries < 1 {
		return nil, fmt.Errorf("sketch: misra-gries needs at least one entry")
	}
	m := &MisraGries{
		keys:   make([]int64, entries),
		counts: make([]uint32, entries),
		index:  make(map[int64]int, entries),
	}
	for i := range m.keys {
		m.keys[i] = -1
	}
	return m, nil
}

// Cap returns the entry count.
func (m *MisraGries) Cap() int { return len(m.keys) }

// Live returns the number of occupied entries.
func (m *MisraGries) Live() int { return m.filled }

// Spillover returns the floor bounding every untracked key's count.
func (m *MisraGries) Spillover() uint32 { return m.spill }

// Find returns the index tracking key, or -1. O(1): this is the per-DRAM-
// activation hot path of ABACuS, whose summary spans ~1k entries.
func (m *MisraGries) Find(key int64) int {
	if idx, ok := m.index[key]; ok {
		return idx
	}
	return -1
}

// Insert tracks a currently-untracked key: it takes an empty slot or
// replaces an entry whose count equals the spillover floor, setting the
// new entry's count to Spillover()+1 (the key may have occurred up to
// Spillover() times while untracked, plus the occurrence being inserted).
// When no entry sits at the floor, the floor itself is raised instead and
// Insert reports ok=false — the key stays untracked, bounded by the new
// floor. evicted is the replaced key (-1 when a free slot was used).
func (m *MisraGries) Insert(key int64) (idx int, evicted int64, ok bool) {
	if m.filled < len(m.keys) {
		// Slots fill strictly left to right and are never vacated short of
		// Reset, so the first empty slot is always index filled.
		slot := m.filled
		m.filled++
		m.keys[slot] = key
		m.counts[slot] = m.spill + 1
		m.index[key] = slot
		return slot, -1, true
	}
	// Full: replace the first entry sitting at the spillover floor. The
	// scan is a flat equality pass over the count slab alone; keys are only
	// touched for the single evicted slot.
	slot := -1
	for i, v := range m.counts {
		if v == m.spill {
			slot = i
			break
		}
	}
	if slot == -1 {
		m.spill++
		return -1, -1, false
	}
	evicted = m.keys[slot]
	delete(m.index, evicted)
	m.keys[slot] = key
	m.counts[slot] = m.spill + 1
	m.index[key] = slot
	return slot, evicted, true
}

// Key returns the key tracked at idx (-1 when empty).
func (m *MisraGries) Key(idx int) int64 { return m.keys[idx] }

// Count returns the count at idx.
func (m *MisraGries) Count(idx int) uint32 { return m.counts[idx] }

// Add increments the count at idx by delta and returns the new value.
func (m *MisraGries) Add(idx int, delta uint32) uint32 {
	m.counts[idx] += delta
	return m.counts[idx]
}

// SetCount overwrites the count at idx. Callers resetting an entry after
// acting on it should floor it at Spillover() to keep the invariants.
func (m *MisraGries) SetCount(idx int, v uint32) { m.counts[idx] = v }

// Reset empties the summary and zeroes the spillover floor (a new window).
func (m *MisraGries) Reset() {
	for i := range m.keys {
		m.keys[i] = -1
		m.counts[i] = 0
	}
	m.spill = 0
	m.filled = 0
	clear(m.index)
}
