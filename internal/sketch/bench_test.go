package sketch

import (
	"testing"

	"catsim/internal/rng"
)

// The sketch benchmarks are the per-activation hot path of the modern
// trackers (CoMeT/ABACuS/DSAC); CI emits them as BENCH_sketch.json so the
// per-PR perf trajectory of this substrate is recorded.

func benchKeys(n int) []int64 {
	src := rng.NewXoshiro256(1)
	keys := make([]int64, n)
	for i := range keys {
		u := rng.Float64(src)
		keys[i] = int64(u * u * 65536)
	}
	return keys
}

func BenchmarkCountMinUpdate(b *testing.B) {
	c, _ := NewCountMin(512, 4, 1)
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(keys[i&4095])
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	c, _ := NewCountMin(512, 4, 1)
	keys := benchKeys(4096)
	for _, k := range keys {
		c.Update(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Estimate(keys[i&4095])
	}
}

func BenchmarkMisraGriesObserve(b *testing.B) {
	m, _ := NewMisraGries(32)
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&4095]
		if idx := m.Find(k); idx >= 0 {
			m.Add(idx, 1)
		} else {
			m.Insert(k)
		}
	}
}

func BenchmarkMinTableInsert(b *testing.B) {
	t, _ := NewMinTable(32)
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&4095]
		if idx := t.Find(k); idx >= 0 {
			t.Add(idx, 1)
		} else {
			t.Insert(k, 1)
		}
	}
}

func BenchmarkStochasticObserve(b *testing.B) {
	s, _ := NewStochastic(32, rng.NewXoshiro256(2))
	keys := benchKeys(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(keys[i&4095])
	}
}
