package sketch

import "fmt"

// MinTable is a small exact (key, count) table with evict-minimum
// replacement: insertion always succeeds, displacing the entry with the
// smallest count (lowest index on ties, so behaviour is deterministic).
// CoMeT uses one as its recent-aggressor table: rows whose sketch estimate
// crosses the early threshold graduate here and are counted exactly; the
// evicted row is handed back to the caller, which must neutralise it
// (refresh its victims) to stay sound.
type MinTable struct {
	keys   []int64 // -1 = empty
	counts []uint32
	// filled counts occupied slots. Slots fill strictly left to right and
	// are never vacated short of Reset, so the first empty slot is always
	// index filled — no occupancy scan needed.
	filled int
}

// NewMinTable builds an empty table with the given entry count.
func NewMinTable(entries int) (*MinTable, error) {
	if entries < 1 {
		return nil, fmt.Errorf("sketch: min-table needs at least one entry")
	}
	t := &MinTable{keys: make([]int64, entries), counts: make([]uint32, entries)}
	for i := range t.keys {
		t.keys[i] = -1
	}
	return t, nil
}

// Cap returns the entry count.
func (t *MinTable) Cap() int { return len(t.keys) }

// Live returns the number of occupied entries.
func (t *MinTable) Live() int { return t.filled }

// argmin returns the index of the smallest count (lowest index on ties).
// Packing (count, index) into one uint64 turns the scan into a pure min
// reduction over a flat array — one conditional move per element, no
// data-dependent branches.
func argmin(counts []uint32) int {
	best := ^uint64(0)
	for i, v := range counts {
		best = min(best, uint64(v)<<32|uint64(i))
	}
	return int(best & 0xffffffff)
}

// Find returns the index tracking key, or -1.
func (t *MinTable) Find(key int64) int {
	for i, k := range t.keys {
		if k == key {
			return i
		}
	}
	return -1
}

// Insert tracks key with the given starting count, using a free slot or
// evicting the minimum-count entry. It returns the displaced key and its
// count; evicted is false when a free slot absorbed the insertion.
func (t *MinTable) Insert(key int64, count uint32) (evictedKey int64, evictedCount uint32, evicted bool) {
	if t.filled < len(t.keys) {
		slot := t.filled
		t.filled++
		t.keys[slot] = key
		t.counts[slot] = count
		return -1, 0, false
	}
	slot := argmin(t.counts)
	evictedKey, evictedCount = t.keys[slot], t.counts[slot]
	t.keys[slot] = key
	t.counts[slot] = count
	return evictedKey, evictedCount, true
}

// Key returns the key at idx (-1 when empty).
func (t *MinTable) Key(idx int) int64 { return t.keys[idx] }

// Count returns the count at idx.
func (t *MinTable) Count(idx int) uint32 { return t.counts[idx] }

// Add increments the count at idx by delta and returns the new value.
func (t *MinTable) Add(idx int, delta uint32) uint32 {
	t.counts[idx] += delta
	return t.counts[idx]
}

// SetCount overwrites the count at idx.
func (t *MinTable) SetCount(idx int, v uint32) { t.counts[idx] = v }

// Reset empties the table.
func (t *MinTable) Reset() {
	for i := range t.keys {
		t.keys[i] = -1
		t.counts[i] = 0
	}
	t.filled = 0
}
