package sketch

import (
	"testing"

	"catsim/internal/rng"
)

// The flat-slab rewrites of the sketch inner loops (fused hash+min pass in
// CountMin, fill-counter first-empty plus packed argmin in MinTable and
// Stochastic, count-slab floor scan in MisraGries) must be observationally
// identical to the original scans. The reference implementations below are
// verbatim copies of the pre-rewrite loops; the property tests drive both
// through long random operation streams and fail on the first divergence.

// refCountMin is the original two-pass count-min update over an index
// scratch slice.
type refCountMin struct {
	width, depth int
	counters     []uint32
	seeds        []uint64
	idx          []int
}

func newRefCountMin(width, depth int, seed uint64) *refCountMin {
	c := &refCountMin{
		width:    width,
		depth:    depth,
		counters: make([]uint32, width*depth),
		seeds:    make([]uint64, depth),
		idx:      make([]int, depth),
	}
	s := seed
	for d := range c.seeds {
		s = splitmix64(s)
		c.seeds[d] = s
	}
	return c
}

func (c *refCountMin) hash(key int64) {
	for d := 0; d < c.depth; d++ {
		c.idx[d] = d*c.width + int(splitmix64(uint64(key)^c.seeds[d])%uint64(c.width))
	}
}

func (c *refCountMin) estimate(key int64) uint32 {
	c.hash(key)
	min := c.counters[c.idx[0]]
	for _, i := range c.idx[1:] {
		if v := c.counters[i]; v < min {
			min = v
		}
	}
	return min
}

func (c *refCountMin) update(key int64) uint32 {
	c.hash(key)
	min := c.counters[c.idx[0]]
	for _, i := range c.idx[1:] {
		if v := c.counters[i]; v < min {
			min = v
		}
	}
	for _, i := range c.idx {
		if c.counters[i] == min {
			c.counters[i] = min + 1
		}
	}
	return min + 1
}

func TestCountMinMatchesReference(t *testing.T) {
	for _, geom := range []struct{ w, d int }{{1, 1}, {7, 3}, {128, 4}, {512, 5}} {
		cm, err := NewCountMin(geom.w, geom.d, 0xfeed)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefCountMin(geom.w, geom.d, 0xfeed)
		src := rng.NewXoshiro256(11)
		for step := 0; step < 200000; step++ {
			// Zipf-ish mix: a small hot set plus a uniform tail, so counter
			// collisions and conservative-update ties both happen often.
			var key int64
			if rng.Float64(src) < 0.5 {
				key = int64(rng.Float64(src) * 17)
			} else {
				key = int64(rng.Float64(src) * 100000)
			}
			if rng.Float64(src) < 0.25 {
				if got, want := cm.Estimate(key), ref.estimate(key); got != want {
					t.Fatalf("%dx%d step %d: Estimate(%d) = %d, reference %d", geom.w, geom.d, step, key, got, want)
				}
			} else {
				if got, want := cm.Update(key), ref.update(key); got != want {
					t.Fatalf("%dx%d step %d: Update(%d) = %d, reference %d", geom.w, geom.d, step, key, got, want)
				}
			}
			if step%50021 == 50020 {
				cm.Reset()
				for i := range ref.counters {
					ref.counters[i] = 0
				}
			}
		}
		for i, v := range cm.counters {
			if v != ref.counters[i] {
				t.Fatalf("%dx%d: counter slab diverges at %d: %d != %d", geom.w, geom.d, i, v, ref.counters[i])
			}
		}
	}
}

// refMinTableInsert is the original single-scan evict-min insertion.
func refMinTableInsert(keys []int64, counts []uint32, key int64, count uint32) (int64, uint32, bool) {
	slot := -1
	for i, k := range keys {
		if k == -1 {
			slot = i
			break
		}
		if slot == -1 || counts[i] < counts[slot] {
			slot = i
		}
	}
	ek, ec := keys[slot], counts[slot]
	evicted := ek != -1
	keys[slot] = key
	counts[slot] = count
	return ek, ec, evicted
}

func TestMinTableMatchesReference(t *testing.T) {
	for _, entries := range []int{1, 3, 32, 128} {
		mt, err := NewMinTable(entries)
		if err != nil {
			t.Fatal(err)
		}
		refKeys := make([]int64, entries)
		refCounts := make([]uint32, entries)
		for i := range refKeys {
			refKeys[i] = -1
		}
		src := rng.NewXoshiro256(23)
		for step := 0; step < 100000; step++ {
			key := int64(rng.Float64(src) * float64(entries*3))
			count := uint32(rng.Float64(src) * 50)
			if i := mt.Find(key); i >= 0 && rng.Float64(src) < 0.6 {
				mt.Add(i, 1)
				for j, k := range refKeys {
					if k == key {
						refCounts[j]++
						break
					}
				}
				continue
			}
			gk, gc, ge := mt.Insert(key, count)
			wk, wc, we := refMinTableInsert(refKeys, refCounts, key, count)
			if gk != wk || gc != wc || ge != we {
				t.Fatalf("entries=%d step %d: Insert(%d,%d) = (%d,%d,%v), reference (%d,%d,%v)",
					entries, step, key, count, gk, gc, ge, wk, wc, we)
			}
			if step%25013 == 25012 {
				mt.Reset()
				for i := range refKeys {
					refKeys[i] = -1
					refCounts[i] = 0
				}
			}
		}
		for i := range refKeys {
			if mt.Key(i) != refKeys[i] || mt.Count(i) != refCounts[i] {
				t.Fatalf("entries=%d: slot %d diverges: (%d,%d) != (%d,%d)",
					entries, i, mt.Key(i), mt.Count(i), refKeys[i], refCounts[i])
			}
		}
		if mt.Live() != refLive(refKeys) {
			t.Fatalf("entries=%d: Live %d != reference %d", entries, mt.Live(), refLive(refKeys))
		}
	}
}

func refLive(keys []int64) int {
	n := 0
	for _, k := range keys {
		if k != -1 {
			n++
		}
	}
	return n
}

// refMisraGries is the original single-scan spillover insertion.
type refMisraGries struct {
	keys   []int64
	counts []uint32
	spill  uint32
	filled int
}

func newRefMisraGries(entries int) *refMisraGries {
	m := &refMisraGries{keys: make([]int64, entries), counts: make([]uint32, entries)}
	for i := range m.keys {
		m.keys[i] = -1
	}
	return m
}

func (m *refMisraGries) find(key int64) int {
	for i, k := range m.keys {
		if k == key {
			return i
		}
	}
	return -1
}

func (m *refMisraGries) insert(key int64) (int, int64, bool) {
	full := m.filled == len(m.keys)
	slot := -1
	for i, k := range m.keys {
		if k == -1 {
			slot = i
			break
		}
		if slot == -1 && m.counts[i] == m.spill {
			slot = i
			if full {
				break
			}
		}
	}
	if slot == -1 {
		m.spill++
		return -1, -1, false
	}
	evicted := m.keys[slot]
	if evicted == -1 {
		m.filled++
	}
	m.keys[slot] = key
	m.counts[slot] = m.spill + 1
	return slot, evicted, true
}

func TestMisraGriesMatchesReference(t *testing.T) {
	for _, entries := range []int{1, 4, 64} {
		mg, err := NewMisraGries(entries)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefMisraGries(entries)
		src := rng.NewXoshiro256(37)
		for step := 0; step < 150000; step++ {
			key := int64(rng.Float64(src) * float64(entries*4))
			gi := mg.Find(key)
			wi := ref.find(key)
			if gi != wi {
				t.Fatalf("entries=%d step %d: Find(%d) = %d, reference %d", entries, step, key, gi, wi)
			}
			if gi >= 0 {
				mg.Add(gi, 1)
				ref.counts[wi]++
			} else {
				gs, ge, gok := mg.Insert(key)
				ws, we, wok := ref.insert(key)
				if gs != ws || ge != we || gok != wok {
					t.Fatalf("entries=%d step %d: Insert(%d) = (%d,%d,%v), reference (%d,%d,%v)",
						entries, step, key, gs, ge, gok, ws, we, wok)
				}
			}
			if mg.Spillover() != ref.spill {
				t.Fatalf("entries=%d step %d: spill %d != reference %d", entries, step, mg.Spillover(), ref.spill)
			}
			if step%40009 == 40008 {
				mg.Reset()
				ref.keys = newRefMisraGries(entries).keys
				ref.counts = make([]uint32, entries)
				ref.spill = 0
				ref.filled = 0
			}
		}
		for i := range ref.keys {
			if mg.Key(i) != ref.keys[i] || mg.Count(i) != ref.counts[i] {
				t.Fatalf("entries=%d: slot %d diverges: (%d,%d) != (%d,%d)",
					entries, i, mg.Key(i), mg.Count(i), ref.keys[i], ref.counts[i])
			}
		}
	}
}

// refStochasticObserve is the original fused scan: hit, first-empty and
// running argmin in one pass. Both sides must consume draws from their own
// identically-seeded source at exactly the same operations, so divergence
// also shows up as a draw-sequence shift.
func refStochasticObserve(keys []int64, counts []uint32, src rng.Source, key int64) (int, uint32, bool) {
	empty, minIdx := -1, -1
	for i, k := range keys {
		if k == key {
			counts[i]++
			return i, counts[i], false
		}
		if k == -1 {
			if empty == -1 {
				empty = i
			}
		} else if minIdx == -1 || counts[i] < counts[minIdx] {
			minIdx = i
		}
	}
	if empty != -1 {
		keys[empty] = key
		counts[empty] = 1
		return empty, 1, false
	}
	min := counts[minIdx]
	if rng.Float64(src)*float64(min+1) >= 1 {
		return -1, 0, true
	}
	keys[minIdx] = key
	counts[minIdx] = min + 1
	return minIdx, counts[minIdx], true
}

func TestStochasticMatchesReference(t *testing.T) {
	for _, entries := range []int{1, 2, 16, 64} {
		st, err := NewStochastic(entries, rng.NewXoshiro256(5))
		if err != nil {
			t.Fatal(err)
		}
		refKeys := make([]int64, entries)
		refCounts := make([]uint32, entries)
		for i := range refKeys {
			refKeys[i] = -1
		}
		refSrc := rng.NewXoshiro256(5)
		drv := rng.NewXoshiro256(53)
		var refDraws int64
		for step := 0; step < 120000; step++ {
			key := int64(rng.Float64(drv) * float64(entries*3))
			gi, gc := st.Observe(key)
			wi, wc, drew := refStochasticObserve(refKeys, refCounts, refSrc, key)
			if drew {
				refDraws++
			}
			if gi != wi || gc != wc {
				t.Fatalf("entries=%d step %d: Observe(%d) = (%d,%d), reference (%d,%d)",
					entries, step, key, gi, gc, wi, wc)
			}
			if st.Draws() != refDraws {
				t.Fatalf("entries=%d step %d: draws %d != reference %d", entries, step, st.Draws(), refDraws)
			}
			if step%30011 == 30010 {
				st.Reset()
				for i := range refKeys {
					refKeys[i] = -1
					refCounts[i] = 0
				}
			}
		}
		for i := range refKeys {
			if st.Key(i) != refKeys[i] {
				t.Fatalf("entries=%d: slot %d key %d != reference %d", entries, i, st.Key(i), refKeys[i])
			}
		}
	}
}
