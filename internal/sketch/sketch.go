// Package sketch provides the approximate-counting substrate behind the
// modern (post-2018) crosstalk/rowhammer trackers in internal/mitigation:
//
//   - CountMin: a count-min sketch with conservative update — the
//     row-activation tracker of CoMeT (Bostancı et al., HPCA 2024).
//     Estimates never undercount, which is what makes a sketch-backed
//     mitigation scheme sound.
//   - MisraGries: a Misra-Gries frequent-items summary with a spillover
//     floor — the shared activation counters of ABACuS (Olgun et al.,
//     USENIX Security 2024). Tracked counts never undercount and every
//     untracked key is bounded by the spillover counter.
//   - MinTable: a small exact table with evict-minimum replacement — the
//     recent-aggressor table fronting CoMeT's sketch.
//   - Stochastic: a stochastic-approximate counter table à la DSAC (Hong
//     et al., 2023) — probabilistic replacement of the minimum entry,
//     cheap but (by design) without a deterministic guarantee.
//
// All structures are deterministic given their seeds and are sized in
// counters, so the energy model can cost them like the paper's SRAM
// counter arrays. None are safe for concurrent use.
package sketch

import "fmt"

// splitmix64 is the SplitMix64 finalizer, used as the sketch hash: it is
// bijective, cheap, and — combined with a per-depth seed — gives the
// pairwise-independent-enough index streams a count-min sketch needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CountMin is a count-min sketch over int64 keys: depth hash rows of width
// counters each. Update uses the conservative-update (Estan-Varghese)
// rule, which preserves the one-sided error bound — Estimate(k) is always
// at least the number of Update(k) calls since the last Reset — while
// inflating shared counters far less than plain increment.
type CountMin struct {
	width, depth int
	counters     []uint32 // depth rows of width, row-major
	seeds        []uint64
	idx          []int // scratch: per-depth index of the last key hashed
}

// NewCountMin builds a sketch with the given geometry. Distinct seeds give
// distinct (deterministic) hash functions.
func NewCountMin(width, depth int, seed uint64) (*CountMin, error) {
	if width < 1 || depth < 1 {
		return nil, fmt.Errorf("sketch: count-min geometry %dx%d invalid", width, depth)
	}
	c := &CountMin{
		width:    width,
		depth:    depth,
		counters: make([]uint32, width*depth),
		seeds:    make([]uint64, depth),
		idx:      make([]int, depth),
	}
	s := seed
	for d := range c.seeds {
		s = splitmix64(s)
		c.seeds[d] = s
	}
	return c, nil
}

// Counters returns the total counter count (width × depth), the quantity
// the energy model costs.
func (c *CountMin) Counters() int { return c.width * c.depth }

// hashMin fills c.idx with the per-depth counter indices for key and
// returns the minimum of the indexed counters. Hashing, index formation
// and the min reduction run in one pass so each counter row is touched
// exactly once, and the min accumulates branchlessly (the compare outcome
// is data-dependent, so a conditional move beats a mispredicting branch).
func (c *CountMin) hashMin(key int64) uint32 {
	m := ^uint32(0)
	for d := 0; d < c.depth; d++ {
		i := d*c.width + int(splitmix64(uint64(key)^c.seeds[d])%uint64(c.width))
		c.idx[d] = i
		m = min(m, c.counters[i])
	}
	return m
}

// Estimate returns the current over-estimate of key's count: the minimum
// of its depth counters.
func (c *CountMin) Estimate(key int64) uint32 {
	return c.hashMin(key)
}

// Update counts one occurrence of key with the conservative-update rule
// (only counters equal to the current minimum are incremented) and returns
// the new estimate.
func (c *CountMin) Update(key int64) uint32 {
	m := c.hashMin(key)
	for _, i := range c.idx {
		// Unconditional read-modify-write with a branch-free increment:
		// counters above the minimum are rewritten unchanged.
		v := c.counters[i]
		if v == m {
			v++
		}
		c.counters[i] = v
	}
	return m + 1
}

// Decay halves every counter shift times (counter >>= shift), the aging
// used by frequency-estimation consumers. The crosstalk trackers do NOT
// use it: decayed counters can undercount true activation counts, which
// would void the never-undercount invariant CoMeT's soundness rests on —
// they reset whole windows with Reset instead.
func (c *CountMin) Decay(shift uint) {
	for i := range c.counters {
		c.counters[i] >>= shift
	}
}

// Reset zeroes every counter (a new counting window).
func (c *CountMin) Reset() {
	for i := range c.counters {
		c.counters[i] = 0
	}
}

// Reseed zeroes every counter and re-derives the per-depth hash seeds
// exactly as NewCountMin(width, depth, seed) would, without allocating.
// Run contexts use it to rewind a sketch for a run with a new seed.
func (c *CountMin) Reseed(seed uint64) {
	c.Reset()
	s := seed
	for d := range c.seeds {
		s = splitmix64(s)
		c.seeds[d] = s
	}
}
