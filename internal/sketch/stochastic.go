package sketch

import (
	"fmt"

	"catsim/internal/rng"
)

// Stochastic is a stochastic-approximate counter table in the style of
// DSAC (Hong et al., 2023): a fixed table of (key, count) entries where a
// miss replaces the minimum-count entry only with probability
// 1/(min+1), inheriting min+1 as the starting count. In expectation the
// inherited count tracks the evicted key's pressure, so heavy hitters are
// captured with high probability at a fraction of the SRAM traffic — but
// unlike CountMin/MisraGries there is no deterministic guarantee: an
// unlucky draw sequence can let an aggressor escape tracking, which is
// exactly the gap the protection harness (sim's missed-victim metric)
// quantifies. Every probabilistic decision consumes one draw from the
// injected Source; Draws() reports the total for PRNG-energy accounting.
type Stochastic struct {
	keys   []int64 // -1 = empty
	counts []uint32
	src    rng.Source
	draws  int64
	// filled counts occupied slots; slots fill left to right and are never
	// vacated short of Reset, so the first empty slot is index filled.
	filled int
}

// NewStochastic builds an empty table drawing its replacement decisions
// from src.
func NewStochastic(entries int, src rng.Source) (*Stochastic, error) {
	if entries < 1 {
		return nil, fmt.Errorf("sketch: stochastic table needs at least one entry")
	}
	if src == nil {
		return nil, fmt.Errorf("sketch: stochastic table needs a random source")
	}
	s := &Stochastic{keys: make([]int64, entries), counts: make([]uint32, entries), src: src}
	for i := range s.keys {
		s.keys[i] = -1
	}
	return s, nil
}

// Cap returns the entry count.
func (s *Stochastic) Cap() int { return len(s.keys) }

// Live returns the number of occupied entries.
func (s *Stochastic) Live() int { return s.filled }

// Draws returns how many random decisions have been made (one per miss on
// a full table), for PRNG-energy accounting.
func (s *Stochastic) Draws() int64 { return s.draws }

// Find returns the index tracking key, or -1.
func (s *Stochastic) Find(key int64) int {
	for i, k := range s.keys {
		if k == key {
			return i
		}
	}
	return -1
}

// Observe counts one occurrence of key. A tracked key increments exactly.
// A miss takes a free slot (count 1); on a full table the minimum entry is
// replaced with probability 1/(min+1), the new entry inheriting count
// min+1. idx is -1 when the key ends up untracked.
func (s *Stochastic) Observe(key int64) (idx int, count uint32) {
	// Hit path: a flat scan of the occupied key prefix only.
	for i, k := range s.keys[:s.filled] {
		if k == key {
			s.counts[i]++
			return i, s.counts[i]
		}
	}
	if s.filled < len(s.keys) {
		slot := s.filled
		s.filled++
		s.keys[slot] = key
		s.counts[slot] = 1
		return slot, 1
	}
	minIdx := argmin(s.counts)
	min := s.counts[minIdx]
	s.draws++
	if rng.Float64(s.src)*float64(min+1) >= 1 {
		return -1, 0
	}
	s.keys[minIdx] = key
	s.counts[minIdx] = min + 1
	return minIdx, s.counts[minIdx]
}

// Key returns the key at idx (-1 when empty).
func (s *Stochastic) Key(idx int) int64 { return s.keys[idx] }

// SetCount overwrites the count at idx (resetting after a refresh).
func (s *Stochastic) SetCount(idx int, v uint32) { s.counts[idx] = v }

// Reset empties the table (draw accounting is preserved).
func (s *Stochastic) Reset() {
	for i := range s.keys {
		s.keys[i] = -1
		s.counts[i] = 0
	}
	s.filled = 0
}
