package sketch

import (
	"testing"

	"catsim/internal/rng"
)

// zipfStream returns a skewed key stream (small keys dominate) plus the
// exact per-key counts, the reference every sketch bound is checked
// against.
func zipfStream(seed uint64, keys, n int) ([]int64, map[int64]uint32) {
	src := rng.NewXoshiro256(seed)
	stream := make([]int64, n)
	exact := make(map[int64]uint32, keys)
	for i := range stream {
		// Squaring a uniform variate skews towards 0.
		u := rng.Float64(src)
		k := int64(u * u * float64(keys))
		stream[i] = k
		exact[k]++
	}
	return stream, exact
}

func TestCountMinNeverUndercounts(t *testing.T) {
	c, err := NewCountMin(64, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Counters() != 256 {
		t.Errorf("Counters() = %d, want 256", c.Counters())
	}
	stream, exact := zipfStream(1, 500, 50_000)
	for _, k := range stream {
		c.Update(k)
	}
	for k, want := range exact {
		if got := c.Estimate(k); got < want {
			t.Fatalf("key %d: estimate %d below exact count %d", k, got, want)
		}
	}
}

func TestCountMinConservativeUpdateTightensEstimates(t *testing.T) {
	// Conservative update must never produce larger estimates than plain
	// increment would, and on a skewed stream it should be strictly
	// tighter in aggregate.
	cons, _ := NewCountMin(64, 4, 7)
	plain, _ := NewCountMin(64, 4, 7)
	stream, exact := zipfStream(2, 500, 50_000)
	for _, k := range stream {
		cons.Update(k)
		// Plain increment: bump every counter of the key.
		plain.hashMin(k)
		for _, i := range plain.idx {
			plain.counters[i]++
		}
	}
	var sumCons, sumPlain uint64
	for k := range exact {
		sc, sp := cons.Estimate(k), plain.Estimate(k)
		if sc > sp {
			t.Fatalf("key %d: conservative estimate %d above plain %d", k, sc, sp)
		}
		sumCons += uint64(sc)
		sumPlain += uint64(sp)
	}
	if sumCons >= sumPlain {
		t.Errorf("conservative update not tighter in aggregate: %d vs %d", sumCons, sumPlain)
	}
}

func TestCountMinExactWithoutCollisions(t *testing.T) {
	c, _ := NewCountMin(1024, 4, 3)
	for i := 0; i < 100; i++ {
		c.Update(42)
	}
	if got := c.Estimate(42); got != 100 {
		t.Errorf("estimate = %d, want exactly 100 on an empty sketch", got)
	}
	if got := c.Estimate(43); got != 0 {
		t.Errorf("untouched key estimate = %d, want 0", got)
	}
}

func TestCountMinDecayAndReset(t *testing.T) {
	c, _ := NewCountMin(32, 2, 1)
	for i := 0; i < 64; i++ {
		c.Update(9)
	}
	c.Decay(1)
	if got := c.Estimate(9); got != 32 {
		t.Errorf("after Decay(1): estimate = %d, want 32", got)
	}
	c.Reset()
	if got := c.Estimate(9); got != 0 {
		t.Errorf("after Reset: estimate = %d, want 0", got)
	}
}

func TestCountMinDeterministicPerSeed(t *testing.T) {
	a, _ := NewCountMin(64, 4, 11)
	b, _ := NewCountMin(64, 4, 11)
	other, _ := NewCountMin(64, 4, 12)
	stream, _ := zipfStream(3, 200, 10_000)
	differs := false
	for _, k := range stream {
		va, vb := a.Update(k), b.Update(k)
		if va != vb {
			t.Fatal("same seed diverged")
		}
		if other.Update(k) != va {
			differs = true
		}
	}
	if !differs {
		t.Error("distinct seeds produced identical sketches on 10k updates")
	}
}

func TestCountMinValidation(t *testing.T) {
	if _, err := NewCountMin(0, 4, 1); err == nil {
		t.Error("expected width error")
	}
	if _, err := NewCountMin(64, 0, 1); err == nil {
		t.Error("expected depth error")
	}
}

// driveMisraGries feeds a stream through the summary with the simple
// tracked-increment policy and returns the summary.
func driveMisraGries(t *testing.T, entries int, stream []int64) *MisraGries {
	t.Helper()
	m, err := NewMisraGries(entries)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range stream {
		if idx := m.Find(k); idx >= 0 {
			m.Add(idx, 1)
		} else {
			m.Insert(k)
		}
	}
	return m
}

func TestMisraGriesInvariants(t *testing.T) {
	stream, exact := zipfStream(4, 300, 30_000)
	m := driveMisraGries(t, 16, stream)
	tracked := map[int64]bool{}
	for i := 0; i < m.Cap(); i++ {
		k := m.Key(i)
		if k == -1 {
			continue
		}
		tracked[k] = true
		if m.Count(i) < m.Spillover() {
			t.Errorf("entry %d count %d below spillover %d", i, m.Count(i), m.Spillover())
		}
		if m.Count(i) < exact[k] {
			t.Errorf("key %d: summary count %d below exact %d", k, m.Count(i), exact[k])
		}
	}
	for k, n := range exact {
		if !tracked[k] && n > m.Spillover() {
			t.Errorf("untracked key %d occurred %d times, above spillover %d", k, n, m.Spillover())
		}
	}
}

func TestMisraGriesInsertSemantics(t *testing.T) {
	m, _ := NewMisraGries(2)
	// Fill the two slots.
	for _, k := range []int64{10, 20} {
		idx, evicted, ok := m.Insert(k)
		if !ok || evicted != -1 || idx < 0 {
			t.Fatalf("insert %d into empty summary: idx=%d evicted=%d ok=%v", k, idx, evicted, ok)
		}
		m.Add(idx, 4) // lift both entries above the floor
	}
	// Full table, every count above the floor: the floor rises.
	if _, _, ok := m.Insert(30); ok {
		t.Fatal("insert succeeded with no entry at the floor")
	}
	if m.Spillover() != 1 {
		t.Fatalf("spillover = %d, want 1", m.Spillover())
	}
	// Drop one entry to the floor: the next insert replaces it.
	m.SetCount(0, m.Spillover())
	was := m.Key(0)
	idx, evicted, ok := m.Insert(40)
	if !ok || idx != 0 || evicted != was {
		t.Fatalf("insert at floor: idx=%d evicted=%d ok=%v", idx, evicted, ok)
	}
	if m.Count(0) != m.Spillover()+1 {
		t.Errorf("inserted count = %d, want spillover+1 = %d", m.Count(0), m.Spillover()+1)
	}
	m.Reset()
	if m.Spillover() != 0 || m.Find(40) != -1 {
		t.Error("Reset left state behind")
	}
}

func TestMinTableEvictsMinimum(t *testing.T) {
	mt, err := NewMinTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ev := mt.Insert(1, 10); ev {
		t.Error("eviction reported from an empty table")
	}
	mt.Insert(2, 5)
	k, c, ev := mt.Insert(3, 100)
	if !ev || k != 2 || c != 5 {
		t.Errorf("evicted (%d,%d,%v), want the minimum entry (2,5,true)", k, c, ev)
	}
	if mt.Find(2) != -1 || mt.Find(3) == -1 || mt.Find(1) == -1 {
		t.Error("table contents wrong after eviction")
	}
	idx := mt.Find(1)
	if got := mt.Add(idx, 7); got != 17 {
		t.Errorf("Add = %d, want 17", got)
	}
	mt.SetCount(idx, 0)
	if mt.Count(idx) != 0 {
		t.Error("SetCount did not take")
	}
	mt.Reset()
	if mt.Find(3) != -1 || mt.Cap() != 2 {
		t.Error("Reset left state behind")
	}
}

func TestStochasticExactWhenTableFits(t *testing.T) {
	// With at least as many entries as distinct keys, the table is exact:
	// every key lands in a free slot and counts deterministically.
	s, err := NewStochastic(8, rng.NewXoshiro256(5))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 100; round++ {
		for k := int64(0); k < 8; k++ {
			idx, cnt := s.Observe(k)
			if idx < 0 || cnt != uint32(round+1) {
				t.Fatalf("key %d round %d: idx=%d count=%d", k, round, idx, cnt)
			}
		}
	}
	if s.Draws() != 0 {
		t.Errorf("Draws = %d, want 0 when the table never overflows", s.Draws())
	}
}

func TestStochasticReplacementIsProbabilisticAndCounted(t *testing.T) {
	s, _ := NewStochastic(4, rng.NewXoshiro256(6))
	stream, _ := zipfStream(7, 100, 20_000)
	for _, k := range stream {
		s.Observe(k)
	}
	if s.Draws() == 0 {
		t.Fatal("no draws despite table pressure")
	}
	// Heavy hitters should be tracked: key 0 dominates a squared-uniform
	// stream over 100 keys.
	if s.Find(0) == -1 {
		t.Error("heaviest key not tracked")
	}
}

func TestStochasticDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []int64 {
		s, _ := NewStochastic(4, rng.NewXoshiro256(seed))
		stream, _ := zipfStream(8, 100, 5_000)
		for _, k := range stream {
			s.Observe(k)
		}
		out := make([]int64, s.Cap())
		for i := range out {
			out[i] = s.Key(i)
		}
		return out
	}
	a, b := run(9), run(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewMisraGries(0); err == nil {
		t.Error("MisraGries: expected entries error")
	}
	if _, err := NewMinTable(0); err == nil {
		t.Error("MinTable: expected entries error")
	}
	if _, err := NewStochastic(0, rng.NewSplitMix64(1)); err == nil {
		t.Error("Stochastic: expected entries error")
	}
	if _, err := NewStochastic(4, nil); err == nil {
		t.Error("Stochastic: expected source error")
	}
}
