package sim

import (
	"fmt"
	"testing"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// BenchmarkShard measures the sharded engine against the sequential
// reference on the 8-channel DDR5 geometry (8 affine cores, one per
// channel, DRCAT). shards=1 runs the partitioned engine on one worker —
// its delta vs seq is the partitioning overhead; shards=8 is the
// headline scaling number. The results are byte-identical across all
// three (locked by TestShardCountAndGOMAXPROCSInvariant), so the ratio
// seq/shards=8 is a pure wall-clock speedup: expect ~parity on a single
// hardware core and approaching the channel count on >=8 cores.
func BenchmarkShard(b *testing.B) {
	wl, err := trace.Lookup("black")
	if err != nil {
		b.Fatal(err)
	}
	base := Config{
		Geometry:        dram.DDR5_8Channel(),
		Cores:           8,
		RequestsPerCore: 20_000,
		Workload:        wl,
		Scheme:          SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold:       1024,
		EpochNS:         50_000,
		Seed:            11,
		ChannelAffine:   true,
	}
	for _, shards := range []int{0, 1, 8} {
		name := fmt.Sprintf("shards=%d", shards)
		if shards == 0 {
			name = "seq"
		}
		b.Run(name, func(b *testing.B) {
			cfg := base
			cfg.Shards = shards
			requests := int64(cfg.Cores * cfg.RequestsPerCore)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*requests), "ns/request")
		})
	}
}
