package sim

import (
	"reflect"
	"testing"

	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

func epochConfig(t *testing.T) Config {
	t.Helper()
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Cores: 2, RequestsPerCore: 20_000, Workload: wl,
		Scheme:    SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold: 1024, ThresholdScale: 0.03, IntervalNS: 2e6, Seed: 5,
		Attack:          &AttackConfig{Kernel: 1, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided},
		AttackOnsetFrac: 0.5,
		CheckProtection: true,
	}
}

// stripEpochs removes the only field epoch sampling is allowed to change.
func stripEpochs(r Result) Result {
	r.Epochs = nil
	return r
}

// TestRunEpochLengthInvariance is the refactor's determinism contract:
// the final Result is identical at every epoch length, including no
// sampling at all — the configuration the pre-engine goldens were
// captured under.
func TestRunEpochLengthInvariance(t *testing.T) {
	base := epochConfig(t)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Epochs != nil {
		t.Fatal("EpochNS=0 must not record samples")
	}
	for _, epochNS := range []float64{1e5, 3.33e5, 1e6, 1e9} {
		cfg := base
		cfg.EpochNS = epochNS
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Epochs) == 0 {
			t.Fatalf("EpochNS=%g: no samples", epochNS)
		}
		if !reflect.DeepEqual(stripEpochs(got), ref) {
			t.Errorf("EpochNS=%g: final Result diverges from the unsampled run", epochNS)
		}
		var acts int64
		for _, s := range got.Epochs {
			acts += s.Activations
		}
		if acts != got.Counts.Activations {
			t.Errorf("EpochNS=%g: epoch activations sum %d != total %d",
				epochNS, acts, got.Counts.Activations)
		}
		// Oracle exposure is cumulative, so it must be non-decreasing and
		// end at the run total.
		last := got.Epochs[len(got.Epochs)-1]
		if last.MissedVictimRows != got.MissedVictimRows {
			t.Errorf("EpochNS=%g: final epoch misses %d != result %d",
				epochNS, last.MissedVictimRows, got.MissedVictimRows)
		}
	}
}

// TestAttackOnsetChangesTraffic checks the phased stream actually defers
// the attack: a full-run blend and a half-run blend must differ, and the
// onset run must match a benign run over its benign prefix... which shows
// up as different totals from both extremes.
func TestAttackOnsetChangesTraffic(t *testing.T) {
	full := epochConfig(t)
	full.AttackOnsetFrac = 0
	fullRes, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	half := epochConfig(t)
	halfRes, err := Run(half)
	if err != nil {
		t.Fatal(err)
	}
	benign := epochConfig(t)
	benign.Attack = nil
	benign.AttackOnsetFrac = 0
	benignRes, err := Run(benign)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(halfRes.PerBankActs, fullRes.PerBankActs) {
		t.Error("onset at 50% produced the same bank traffic as a full-run attack")
	}
	if reflect.DeepEqual(halfRes.PerBankActs, benignRes.PerBankActs) {
		t.Error("onset at 50% produced the same bank traffic as no attack")
	}
}

func TestAttackOnsetValidation(t *testing.T) {
	cfg := epochConfig(t)
	cfg.Attack = nil // onset without an attack
	if _, err := Run(cfg); err == nil {
		t.Error("onset fraction without an attack must be rejected")
	}
	cfg = epochConfig(t)
	cfg.AttackOnsetFrac = 1
	if _, err := Run(cfg); err == nil {
		t.Error("onset fraction 1 must be rejected")
	}
	cfg = epochConfig(t)
	cfg.EpochNS = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative epoch length must be rejected")
	}
}
