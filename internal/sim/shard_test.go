package sim

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// shardConfig builds a run that exercises the partitioned path hard:
// 4 channels, 8 affine cores (two per channel), epochs on, oracle on,
// and a threshold low enough that every scheme issues victim refreshes.
func shardConfig(t *testing.T, kind mitigation.Kind) Config {
	t.Helper()
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	spec := SchemeSpec{Kind: kind}
	switch kind {
	case mitigation.KindNone:
	case mitigation.KindPRA:
		// Default p for the threshold.
	case mitigation.KindPRCAT, mitigation.KindDRCAT:
		spec.Counters, spec.MaxLevels = 64, 11
	default:
		spec.Counters = 64
	}
	return Config{
		Geometry:        dram.Default4Channel(),
		Cores:           8,
		RequestsPerCore: 2000,
		Workload:        wl,
		Scheme:          spec,
		Threshold:       64,
		EpochNS:         20_000,
		Seed:            11,
		CheckProtection: true,
		ChannelAffine:   true,
	}
}

// TestShardedMatchesSequentialAllKinds is the sim-level tentpole
// contract: for every registered scheme kind, Shards>=1 returns the
// byte-identical Result of the sequential engine on the same
// channel-affine streams — via the partitioned engine for shard-safe
// schemes, via the documented sequential fallback for the rest (PRA,
// DSAC, ABACuS), which this test also locks in place.
func TestShardedMatchesSequentialAllKinds(t *testing.T) {
	for _, kind := range mitigation.Kinds() {
		seq := shardConfig(t, kind)
		want, err := Run(seq)
		if err != nil {
			t.Fatalf("%v sequential: %v", kind, err)
		}
		sh := seq
		sh.Shards = 4
		if sh.sharded() != mitigation.ShardSafe(kind) {
			t.Errorf("%v: sharded() = %t, want the shard-safety registry's %t",
				kind, sh.sharded(), mitigation.ShardSafe(kind))
		}
		got, err := Run(sh)
		if err != nil {
			t.Fatalf("%v sharded: %v", kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: sharded result diverges from sequential\n got: %+v\nwant: %+v", kind, got, want)
		}
	}
}

// TestShardCountAndGOMAXPROCSInvariant locks the other determinism axis:
// on an 8-channel DDR5 geometry, shards=1, shards=3, shards=8 and
// shards=8-at-GOMAXPROCS(1) all marshal to the identical JSON bytes.
func TestShardCountAndGOMAXPROCSInvariant(t *testing.T) {
	base := shardConfig(t, mitigation.KindDRCAT)
	base.Geometry = dram.DDR5_8Channel()
	base.Cores = 8
	base.RequestsPerCore = 1000
	// The oracle tracks every row of all 512 DDR5 banks per partition;
	// protection equivalence is already covered on the 4-channel geometry.
	base.CheckProtection = false
	run := func(shards int) []byte {
		cfg := base
		cfg.Shards = shards
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	ref := run(1)
	for _, shards := range []int{3, 8} {
		if got := run(shards); string(got) != string(ref) {
			t.Errorf("shards=%d: JSON diverges from shards=1", shards)
		}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if got := run(8); string(got) != string(ref) {
		t.Error("GOMAXPROCS(1): JSON diverges")
	}
}

// TestShardedValidation covers the sharded knobs' error paths.
func TestShardedValidation(t *testing.T) {
	cfg := shardConfig(t, mitigation.KindDRCAT)
	cfg.Shards = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative shard count accepted")
	}
	cfg = shardConfig(t, mitigation.KindDRCAT)
	cfg.ChannelAffine = false
	cfg.Shards = 4
	if _, err := Run(cfg); err == nil {
		t.Error("sharded run without channel-affine streams accepted")
	}
	cfg = shardConfig(t, mitigation.KindDRCAT)
	cfg.Cores = 0
	cfg.RequestsPerCore = 0
	cfg.Replay = &trace.Container{Geometry: cfg.Geometry}
	if _, err := Run(cfg); err == nil {
		t.Error("ChannelAffine replay accepted")
	}
}

// TestAffineCaptureReplaysIdentically: a capture of a channel-affine run
// records the pinned addresses, so its replay (which cannot re-pin)
// reproduces the affine run's result bit for bit.
func TestAffineCaptureReplaysIdentically(t *testing.T) {
	cfg := shardConfig(t, mitigation.KindDRCAT)
	cfg.Cores = 4
	cfg.RequestsPerCore = 1500
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := Capture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replay := cfg
	replay.Cores, replay.RequestsPerCore = 0, 0
	replay.ChannelAffine = false
	replay.Replay = cont
	got, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("replayed affine capture diverges from the live run")
	}
}

// TestAffinePartitionsTraffic sanity-checks the pinning itself: with one
// core per channel, each core's activations land only in its own
// channel's banks.
func TestAffinePartitionsTraffic(t *testing.T) {
	cfg := shardConfig(t, mitigation.KindNone)
	cfg.CheckProtection = false
	cfg.Cores = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	banksPerCh := cfg.Geometry.RanksPerCh * cfg.Geometry.BanksPerRk
	perCh := make([]int64, cfg.Geometry.Channels)
	for flat, n := range res.PerBankActs {
		perCh[flat/banksPerCh] += n
	}
	for ch, n := range perCh {
		if n != int64(cfg.RequestsPerCore) {
			t.Errorf("channel %d saw %d activations, want exactly one core's %d", ch, n, cfg.RequestsPerCore)
		}
	}
}
