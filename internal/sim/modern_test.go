package sim

import (
	"strings"
	"testing"

	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// Tests for the modern tracker suite and the protection harness at the
// full-system level.

func modernSpecs() []SchemeSpec {
	return []SchemeSpec{
		{Kind: mitigation.KindCoMeT, Counters: 2048, Ways: 4},
		{Kind: mitigation.KindABACuS, Counters: 1024},
		{Kind: mitigation.KindStochastic, Counters: 64},
	}
}

func TestModernSchemeLabels(t *testing.T) {
	want := []string{"CoMeT_2048", "ABACuS_1024", "DSAC_64"}
	for i, spec := range modernSpecs() {
		if got := spec.Label(16384); got != want[i] {
			t.Errorf("label = %q, want %q", got, want[i])
		}
	}
}

func TestModernSchemesRunEndToEnd(t *testing.T) {
	for _, spec := range modernSpecs() {
		cfg := smallCfg(spec)
		cfg.CheckProtection = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		if res.Counts.Activations != 120_000 {
			t.Errorf("%s: activations = %d", res.SchemeLabel, res.Counts.Activations)
		}
		if res.CMRPO <= 0 {
			t.Errorf("%s: CMRPO = %v, want positive (counters cost energy)", res.SchemeLabel, res.CMRPO)
		}
		if res.ExposedVictimRows == 0 {
			t.Errorf("%s: no victim exposure recorded despite CheckProtection", res.SchemeLabel)
		}
	}
}

// TestModernSchemesProtectUnderAdversarialPatterns is the system-level
// half of the ISSUE-2 oracle acceptance: inside the full timing simulation
// with attack traffic blended in, the deterministic modern trackers must
// refresh every true victim before its exposure crosses the threshold,
// for the double-sided and many-sided patterns.
func TestModernSchemesProtectUnderAdversarialPatterns(t *testing.T) {
	for _, pattern := range []trace.Pattern{trace.PatternDoubleSided, trace.PatternManySided} {
		for _, spec := range modernSpecs()[:2] { // CoMeT, ABACuS (deterministic)
			cfg := smallCfg(spec)
			cfg.CheckProtection = true
			cfg.Threshold = 512
			cfg.Attack = &AttackConfig{Kernel: 1, Mode: trace.Heavy, Pattern: pattern}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.OracleViolations != 0 || res.MissedVictimRows != 0 {
				t.Errorf("%s under %s: %d violations, %d missed victims",
					res.SchemeLabel, pattern, res.OracleViolations, res.MissedVictimRows)
			}
			if res.MissedVictimRate != 0 {
				t.Errorf("%s under %s: missed-victim rate %v, want 0",
					res.SchemeLabel, pattern, res.MissedVictimRate)
			}
		}
	}
}

func TestProbabilisticSchemesGetOracleToo(t *testing.T) {
	// The harness judges PRA and DSAC as well: the oracle attaches and the
	// missed-victim fields populate (possibly zero misses at benign rates,
	// but exposure must be recorded).
	for _, spec := range []SchemeSpec{
		{Kind: mitigation.KindPRA},
		{Kind: mitigation.KindStochastic, Counters: 64},
	} {
		cfg := smallCfg(spec)
		cfg.CheckProtection = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExposedVictimRows == 0 {
			t.Errorf("%s: oracle not attached (no exposure recorded)", res.SchemeLabel)
		}
		if res.MissedVictimRate < 0 || res.MissedVictimRate > 1 {
			t.Errorf("%s: missed-victim rate %v out of [0,1]", res.SchemeLabel, res.MissedVictimRate)
		}
	}
}

func TestBuildRejectsMisconfiguredModernSchemes(t *testing.T) {
	for _, spec := range []SchemeSpec{
		{Kind: mitigation.KindCoMeT, Counters: 255, Ways: 4}, // not divisible
		{Kind: mitigation.KindABACuS, Counters: 0},
		{Kind: mitigation.KindStochastic, Counters: 0},
	} {
		if _, err := spec.Build(4, 1024, 1024, 1); err == nil {
			t.Errorf("%+v: expected a build error", spec)
		}
	}
}

func TestCacheKeyCoversAttackPattern(t *testing.T) {
	cfg := smallCfg(SchemeSpec{Kind: mitigation.KindSCA, Counters: 64})
	cfg.Attack = &AttackConfig{Kernel: 1, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided}
	a := CacheKey(cfg)
	cfg.Attack.Pattern = trace.PatternManySided
	b := CacheKey(cfg)
	if a == b {
		t.Error("cache key ignores the attack pattern")
	}
	if !strings.Contains(a, "double") || !strings.Contains(b, "many") {
		t.Errorf("keys do not spell the pattern: %q / %q", a, b)
	}
}
