package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

// contextCase builds one cell of the reuse matrix: a scheme kind on one
// engine path (sequential or channel-sharded) driving one workload shape
// (closed-loop, mixed open-loop, or trace replay).
func contextCase(t *testing.T, kind mitigation.Kind, sharded bool, shape string) (Config, bool) {
	t.Helper()
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	spec := SchemeSpec{Kind: kind}
	switch kind {
	case mitigation.KindNone, mitigation.KindPRA:
	case mitigation.KindPRCAT, mitigation.KindDRCAT:
		spec.Counters, spec.MaxLevels = 64, 11
	default:
		spec.Counters = 64
	}
	cfg := Config{
		Geometry:        dram.Default2Channel(),
		Cores:           4,
		RequestsPerCore: 2000,
		Workload:        wl,
		Scheme:          spec,
		Threshold:       64,
		EpochNS:         20_000,
		Seed:            11,
		CheckProtection: true,
		// Small enough that the scaled victim-refresh cost rounds to zero:
		// SetVictimRowCycles(0) must still be applied (it clamps to the
		// 1-cycle floor), on rebuild and reuse alike.
		ThresholdScale: 0.01,
	}
	if sharded {
		cfg.Shards = 2
		cfg.ChannelAffine = true
	}
	switch shape {
	case "closed":
		// Attack blend plus a delayed onset, so the reuse path has to
		// rewind the whole generator stack (synthetic, attack, phase
		// switch), not just the synthetic stream.
		cfg.Attack = &AttackConfig{Kernel: 1, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided}
		cfg.AttackOnsetFrac = 0.25
	case "open":
		ol, err := workload.Lookup("ol-mixed-attack")
		if err != nil {
			t.Fatal(err)
		}
		ol.Requests = 4000
		cfg.OpenLoop = &ol
	case "replay":
		if sharded {
			// Replay streams replay exactly as captured; ChannelAffine (and
			// therefore sharding) is rejected by validation.
			return Config{}, false
		}
		src := cfg
		container, err := Capture(src)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cores, cfg.RequestsPerCore = 0, 0
		cfg.Workload = trace.Spec{}
		cfg.Replay = container
	}
	return cfg, true
}

// TestContextReuseByteIdentical is the run-context contract: for every
// scheme kind, engine path and workload shape, a Context whose state was
// dirtied by an interleaved different-seed run must return the
// byte-identical Result a fresh package-level Run produces — DeepEqual on
// the struct and byte-equal JSON.
func TestContextReuseByteIdentical(t *testing.T) {
	for _, kind := range mitigation.Kinds() {
		for _, sharded := range []bool{false, true} {
			for _, shape := range []string{"closed", "open", "replay"} {
				name := kind.String() + "/"
				if sharded {
					name += "sharded/"
				} else {
					name += "seq/"
				}
				name += shape
				t.Run(name, func(t *testing.T) {
					cfg, ok := contextCase(t, kind, sharded, shape)
					if !ok {
						t.Skip("invalid combination")
					}
					want, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}

					ctx := NewContext()
					first, err := ctx.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					first = first.Clone()
					if !reflect.DeepEqual(want, first) {
						t.Fatalf("fresh context differs from Run:\n got %+v\nwant %+v", first, want)
					}

					// Dirty every reusable layer with a different seed, then
					// demand the original seed back byte-for-byte.
					other := cfg
					other.Seed = 12
					if _, err := ctx.Run(other); err != nil {
						t.Fatal(err)
					}
					reused, err := ctx.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					reused = reused.Clone()
					if !reflect.DeepEqual(want, reused) {
						t.Fatalf("reused context differs from Run:\n got %+v\nwant %+v", reused, want)
					}
					wj, err := json.Marshal(want)
					if err != nil {
						t.Fatal(err)
					}
					rj, err := json.Marshal(reused)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(wj, rj) {
						t.Fatalf("reused context JSON differs:\n got %s\nwant %s", rj, wj)
					}
				})
			}
		}
	}
}

// TestContextShapeChangeRebuilds locks the other half of the contract: a
// context fed a different shape (scheme, threshold, workload, geometry)
// mid-sequence still matches fresh runs for every step.
func TestContextShapeChangeRebuilds(t *testing.T) {
	base, _ := contextCase(t, mitigation.KindDRCAT, false, "closed")
	steps := []Config{base}

	shifted := base
	shifted.Threshold = 128
	steps = append(steps, shifted)

	otherScheme := base
	otherScheme.Scheme = SchemeSpec{Kind: mitigation.KindCoMeT, Counters: 64, Ways: 4}
	steps = append(steps, otherScheme)

	otherWL, err := trace.Lookup("comm1")
	if err != nil {
		t.Fatal(err)
	}
	otherStreams := base
	otherStreams.Workload = otherWL
	otherStreams.Attack = nil
	otherStreams.AttackOnsetFrac = 0
	steps = append(steps, otherStreams)

	steps = append(steps, base) // and back

	ctx := NewContext()
	for i, cfg := range steps {
		want, err := Run(cfg)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		got, err := ctx.Run(cfg)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got = got.Clone(); !reflect.DeepEqual(want, got) {
			t.Fatalf("step %d: context result differs from fresh Run", i)
		}
	}
}

// TestContextSteadyStateAllocs pins the zero-alloc reuse property on the
// closed-loop sweep path: after warmup, a repeated same-shape run through
// one context must not allocate on the hot path. A small fixed tolerance
// absorbs runtime noise (timer/GC bookkeeping), not per-run growth.
func TestContextSteadyStateAllocs(t *testing.T) {
	cfg, _ := contextCase(t, mitigation.KindDRCAT, false, "closed")
	cfg.CheckProtection = false
	cfg.EpochNS = 0
	ctx := NewContext()
	seed := uint64(1)
	run := func() {
		cfg.Seed = seed
		seed++
		if _, err := ctx.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	run() // build
	run() // settle slab growth
	if allocs := testing.AllocsPerRun(10, run); allocs > 2 {
		t.Errorf("steady-state context run allocates %.1f times per run, want <= 2", allocs)
	}
}
