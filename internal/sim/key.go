package sim

import (
	"fmt"
	"strings"
)

// CacheKey returns a canonical string covering every Config field that
// Run reads, so two configs with equal keys produce identical Results
// (Run is deterministic). Defaults are normalised first (fill), so a
// zero Window and an explicit cpu.DefaultWindow hash alike. The key
// starts with the scheme label ("None|...", "DRCAT_64|..."), which lets
// the runner cache report executions per scheme.
//
// Any new Config field that influences Run must be added here; the
// sim-package key test guards the known fields.
func CacheKey(cfg Config) string {
	cfg.fill()
	var b strings.Builder
	fmt.Fprintf(&b, "%s|geom=%v|timing=%v|chint=%t|cores=%d|win=%d|cpb=%d|req=%d",
		cfg.Scheme.Label(cfg.Threshold), cfg.Geometry, cfg.Timing,
		cfg.ChannelInterleaved, cfg.Cores, cfg.Window, cfg.CPUPerBus,
		cfg.RequestsPerCore)
	fmt.Fprintf(&b, "|wl=%v", cfg.Workload)
	if cfg.WorkloadPerCore != nil {
		fmt.Fprintf(&b, "|wlpc=%v", cfg.WorkloadPerCore)
	}
	if cfg.Attack != nil {
		fmt.Fprintf(&b, "|attack=%v", *cfg.Attack)
	}
	if cfg.AttackOnsetFrac != 0 {
		fmt.Fprintf(&b, "|onset=%g", cfg.AttackOnsetFrac)
	}
	// Epoch sampling never changes the end state, but it fills
	// Result.Epochs, and cached Results are handed back verbatim — so
	// epoch-sampled runs must not share entries with unsampled ones.
	// OnSample is deliberately NOT keyed: it is pure observation, and the
	// samples it would deliver are exactly the cached Result.Epochs, so
	// configs differing only in the hook must share one entry.
	if cfg.EpochNS != 0 {
		fmt.Fprintf(&b, "|epoch=%g", cfg.EpochNS)
	}
	// The label does not encode every SchemeSpec field (e.g. Ways), so
	// spell the spec out in full.
	fmt.Fprintf(&b, "|scheme=%v|T=%d|interval=%g|tscale=%g|seed=%d|oracle=%t",
		cfg.Scheme, cfg.Threshold, cfg.IntervalNS, cfg.ThresholdScale,
		cfg.Seed, cfg.CheckProtection)
	if cfg.Scrambler != nil {
		fmt.Fprintf(&b, "|scrambler=%s|ignore=%t", cfg.Scrambler.Name(), cfg.IgnoreScrambler)
	}
	// Open-loop workloads hash their canonical string (request budget
	// resolved, so an explicit budget and the RequestsPerCore default hash
	// alike); replayed captures hash the container's content digest.
	if cfg.OpenLoop != nil {
		fmt.Fprintf(&b, "|open=%s", cfg.openConfig())
	}
	if cfg.Replay != nil {
		fmt.Fprintf(&b, "|replay=%016x", cfg.Replay.Digest())
	}
	// ChannelAffine changes the request streams, so it must key. The
	// partitioned engine is keyed as a single semantic bit: every Shards >=
	// 1 value produces the identical Result (the partition granularity is
	// fixed at one channel), so keying the exact count would only fragment
	// the cache — but sharded and sequential runs may legitimately differ
	// once an interval boundary fires, so they must not share entries.
	if cfg.ChannelAffine {
		fmt.Fprintf(&b, "|affine=true|sharded=%t", cfg.sharded())
	}
	return b.String()
}
