// Package sim wires the substrates into the paper's experimental platform:
// multi-core request streams (internal/trace, internal/cpu) drive the
// memory controller (internal/memctrl) through an address-mapping policy
// (internal/addrmap), with a crosstalk-mitigation scheme
// (internal/mitigation, internal/core) observing every row activation and
// injecting victim refreshes. A run measures everything the paper reports:
// the CMRPO energy breakdown (via internal/energy) and the execution-time
// overhead (via a paired run against the no-mitigation baseline with the
// identical request streams).
package sim

import (
	"fmt"

	"catsim/internal/cpu"
	"catsim/internal/dram"
	"catsim/internal/energy"
	"catsim/internal/engine"
	"catsim/internal/memctrl"
	"catsim/internal/mitigation"

	"catsim/internal/trace"
	"catsim/internal/workload"
)

// SchemeSpec is a buildable description of a mitigation scheme, the unit
// the experiment harness iterates over. It is the grid-friendly flat form
// of mitigation.SchemeSpec: Spec converts to the serializable registry
// spec, FromSpec converts back, and Build goes through the registry.
type SchemeSpec struct {
	Kind mitigation.Kind
	// Counters is the scheme's counter budget: per bank for SCA groups,
	// CAT counters, cache entries, CoMeT sketch counters and DSAC table
	// entries; total shared entries for ABACuS.
	Counters  int
	MaxLevels int     // CAT tree depth L
	PRAProb   float64 // PRA only; 0 selects the paper's p for the threshold
	Ways      int     // counter cache associativity (8) / CoMeT sketch depth (4)
	// SpecSeed, when non-zero, seeds the scheme's private PRNG streams
	// directly (a user-supplied "seed=" spec param); zero derives them
	// from the run seed as always.
	SpecSeed uint64
}

// Label returns the figure label ("DRCAT_64", "PRA_0.002", ...) via the
// mitigation builder registry, which owns per-family naming alongside
// construction (mitigation.Label).
func (s SchemeSpec) Label(threshold uint32) string {
	return mitigation.Label(s.Spec(threshold, 0))
}

// Seed-stream separators: each scheme family with a private PRNG derives
// it from the run seed xor a family constant, so a run's scheme stream,
// workload streams and any sibling schemes never share state.
const (
	praSeedMix   = 0x9e3779b97f4a7c15
	cometSeedMix = 0xC0337C0337
	dsacSeedMix  = 0xD5AC0D5AC0
)

// schemeSeed resolves the seed one scheme family's private PRNG stream
// derives from: the user-pinned SpecSeed verbatim, or the run seed xor
// the family constant.
func (s SchemeSpec) schemeSeed(seed, mix uint64) uint64 {
	if s.SpecSeed != 0 {
		return s.SpecSeed
	}
	return seed ^ mix
}

// runSeed returns the seed value Spec threads into the scheme's "seed"
// param for a run with the given run seed — the value a reused scheme's
// mitigation.Resettable.ResetRun must receive so its PRNG streams replay
// exactly what a fresh build would draw. Kinds without a private PRNG
// ignore the value.
func (s SchemeSpec) runSeed(seed uint64) uint64 {
	switch s.Kind {
	case mitigation.KindPRA:
		return s.schemeSeed(seed, praSeedMix)
	case mitigation.KindCoMeT:
		return s.schemeSeed(seed, cometSeedMix)
	case mitigation.KindStochastic:
		return s.schemeSeed(seed, dsacSeedMix)
	}
	return seed
}

// Spec converts the grid unit into the serializable registry spec for one
// refresh threshold, threading the run seed into the per-family PRNG
// streams (SpecSeed overrides it verbatim when a user pinned "seed=").
func (s SchemeSpec) Spec(threshold uint32, seed uint64) mitigation.SchemeSpec {
	spec := mitigation.SchemeSpec{Kind: s.Kind, Threshold: threshold, Params: mitigation.Params{}}
	schemeSeed := func(mix uint64) uint64 { return s.schemeSeed(seed, mix) }
	switch s.Kind {
	case mitigation.KindNone:
		return mitigation.SchemeSpec{Kind: mitigation.KindNone}
	case mitigation.KindSCA, mitigation.KindABACuS:
		spec.Params.SetInt("counters", s.Counters)
	case mitigation.KindPRA:
		if s.PRAProb != 0 {
			spec.Params.SetFloat("p", s.PRAProb)
		}
		spec.Params.SetUint64("seed", schemeSeed(praSeedMix))
	case mitigation.KindPRCAT, mitigation.KindDRCAT:
		spec.Params.SetInt("counters", s.Counters)
		spec.Params.SetInt("levels", s.MaxLevels)
	case mitigation.KindCounterCache:
		spec.Params.SetInt("counters", s.Counters)
		if s.Ways != 0 {
			spec.Params.SetInt("ways", s.Ways)
		}
	case mitigation.KindCoMeT:
		spec.Params.SetInt("counters", s.Counters)
		if s.Ways != 0 {
			spec.Params.SetInt("depth", s.Ways)
		}
		spec.Params.SetUint64("seed", schemeSeed(cometSeedMix))
	case mitigation.KindStochastic:
		spec.Params.SetInt("counters", s.Counters)
		spec.Params.SetUint64("seed", schemeSeed(dsacSeedMix))
	}
	return spec
}

// FromSpec converts a registry spec into the grid unit. Parameters with no
// flat-field equivalent (the CAT ablation knobs weightbits/presplit) are
// rejected: they are buildable through mitigation.Build but cannot ride a
// simulation grid cell.
func FromSpec(spec mitigation.SchemeSpec) (SchemeSpec, error) {
	s := SchemeSpec{Kind: spec.Kind}
	for name := range spec.Params {
		switch name {
		case "counters", "levels", "ways", "depth", "p", "seed":
		default:
			return s, fmt.Errorf("sim: spec %q: param %q not supported in experiment grids", spec.String(), name)
		}
	}
	var err error
	if s.Counters, err = spec.Params.Int("counters", 0); err != nil {
		return s, err
	}
	defaultLevels := 0
	if spec.Kind == mitigation.KindPRCAT || spec.Kind == mitigation.KindDRCAT {
		defaultLevels = 11
	}
	if s.MaxLevels, err = spec.Params.Int("levels", defaultLevels); err != nil {
		return s, err
	}
	if s.Ways, err = spec.Params.Int("ways", 0); err != nil {
		return s, err
	}
	if s.Ways == 0 {
		if s.Ways, err = spec.Params.Int("depth", 0); err != nil {
			return s, err
		}
	}
	if s.PRAProb, err = spec.Params.Float("p", 0); err != nil {
		return s, err
	}
	if s.SpecSeed, err = spec.Params.Uint64("seed", 0); err != nil {
		return s, err
	}
	if _, pinned := spec.Params["seed"]; pinned && s.SpecSeed == 0 {
		// 0 is the derive-from-run-seed sentinel; silently dropping an
		// explicit seed=0 pin would make "pinned" runs vary with -seed.
		return s, fmt.Errorf("sim: spec %q: pinned seed must be nonzero", spec.String())
	}
	return s, nil
}

// Build instantiates the scheme for a system with the given banks and rows
// per bank at the given refresh threshold, via the mitigation builder
// registry.
func (s SchemeSpec) Build(banks, rowsPerBank int, threshold uint32, seed uint64) (mitigation.Scheme, error) {
	return mitigation.Build(s.Spec(threshold, seed), banks, rowsPerBank)
}

// Config describes one simulation run.
type Config struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	// ChannelInterleaved selects the parallelism-maximising mapping
	// (§VIII-B's 4-channel policy); false selects rw:rk:bk:ch:col:offset.
	ChannelInterleaved bool

	Cores           int
	Window          int // outstanding reads per core (0 = cpu.DefaultWindow)
	CPUPerBus       int // CPU cycles per bus cycle (0 = 4, i.e. 3.2 GHz/800 MHz)
	RequestsPerCore int

	Workload trace.Spec
	// WorkloadPerCore optionally gives each core its own workload (a
	// multi-programmed mix, as in the MSC methodology); when set it must
	// have exactly Cores entries and overrides Workload.
	WorkloadPerCore []trace.Spec
	// Attack, when non-nil, blends kernel-attack traffic into every core's
	// stream (§VIII-D).
	Attack *AttackConfig
	// AttackOnsetFrac delays the attack blend: each core's first
	// OnsetFrac*RequestsPerCore requests stay benign, the rest carry the
	// blend (0 = attack active from the start). Requires Attack; with
	// epochs enabled, the figt study uses it to watch adaptation respond
	// to onset.
	AttackOnsetFrac float64

	// OpenLoop, when non-nil, attaches an open-loop workload: arrival
	// processes over a multi-tenant cohort that hit the controller at
	// absolute times instead of being paced by core windows. It runs
	// alongside any closed-loop cores (Cores may be 0 for a pure open-loop
	// run). A zero OpenLoop.Requests budget defaults to
	// RequestsPerCore×Sources. Per-tenant attribution lands in
	// Result.Tenants.
	OpenLoop *workload.Config
	// Replay, when non-nil, replays a captured trace container (see
	// Capture) instead of building generators: its closed streams become
	// the cores and its open streams the arrival slots, byte-identically.
	// Cores, RequestsPerCore, workload and attack config must be zero, and
	// Geometry must match the capture (zero Geometry adopts it). OpenLoop
	// may still be set alongside: its cohort spec is rebuilt for per-tenant
	// attribution only — no randomness is drawn from it.
	Replay *trace.Container

	Scheme    SchemeSpec
	Threshold uint32 // refresh threshold T

	// IntervalNS is the auto-refresh interval for scheme resets
	// (0 = the real 64 ms).
	IntervalNS float64

	// EpochNS, when positive, slices the run into fixed-duration epochs
	// and records per-epoch metrics into Result.Epochs. Sampling is pure
	// observation: any epoch length (including 0, no sampling) yields an
	// identical final Result apart from the Epochs field itself.
	EpochNS float64

	// OnSample, when non-nil (and EpochNS is positive), receives each
	// epoch sample as it completes — the streaming hook behind
	// catsim-server's live NDJSON/SSE feeds. The callback sees exactly
	// the samples that land in Result.Epochs, in the same order: the
	// sequential engine calls it live from the simulation goroutine, and
	// a sharded run delivers the deterministically merged sequence after
	// the partitions fold (same values, same order — locked by test).
	// Observation only: it cannot influence the run, and it is excluded
	// from CacheKey (two configs differing only in OnSample share one
	// cache entry, whose Result.Epochs carries the identical samples).
	OnSample func(engine.Sample)

	// ThresholdScale records by how much Threshold was scaled down
	// relative to the modeled hardware threshold (0 or 1 = unscaled).
	// Scaling the threshold with a shortened run keeps the *number* of
	// refresh triggers representative of one full interval, which makes
	// the per-time refresh rate 1/scale too high; Run compensates by (a)
	// shrinking the bank-busy cost per refreshed row and (b) deflating
	// the refresh power component, for the threshold-triggered schemes.
	// PRA refreshes per access, so its rates are already correct and are
	// not adjusted.
	ThresholdScale float64

	Seed uint64
	// CheckProtection attaches the crosstalk oracle (slower; tests only).
	CheckProtection bool

	// ChannelAffine pins core i's generated request stream to channel
	// i%Geometry.Channels: every address is remapped onto that channel with
	// row, rank, bank and column preserved (addrmap.PinChannel), so each
	// channel's traffic — and therefore its controller, bus and scheme
	// state — is owned by one set of cores. Required for sharded runs and
	// meaningful on its own (an affine sequential run sees the identical
	// streams, and Capture records them pinned). Incompatible with Replay:
	// captured streams replay exactly as recorded.
	ChannelAffine bool
	// Shards, when >= 1, requests the channel-partitioned engine: one full
	// engine instance per channel with its own controller and scheme,
	// executed concurrently and merged deterministically
	// (engine.RunSharded). The value only bounds the worker goroutines —
	// the partition granularity is always one channel — so every Shards >=
	// 1 value produces byte-identical Results at any GOMAXPROCS. Requires
	// ChannelAffine; Run falls back to the sequential reference engine for
	// open-loop runs and for schemes that are not shard-safe
	// (mitigation.ShardSafe). A sharded run equals the sequential one
	// exactly whenever no auto-refresh interval boundary fires mid-run;
	// past one, each partition advances its interval clock from its own
	// channel's traffic — the per-channel-controller view of a real
	// multi-channel system — while the sequential engine resets every bank
	// from a single global clock.
	Shards int

	// Scrambler models row-address remapping inside the DRAM (§VII's
	// physical-adjacency assumption): the mitigation scheme and the
	// oracle operate on physical rows, i.e. the controller knows the
	// mapping. Nil means identity. IgnoreScrambler feeds the scheme
	// logical rows instead — the misconfiguration the tests show to be
	// unsafe (the oracle always judges in physical space).
	Scrambler       dram.Scrambler
	IgnoreScrambler bool
}

// AttackConfig selects a kernel attack blend. Pattern defaults to the
// paper's Gaussian kernels; the adversarial patterns (double-sided,
// many-sided, bank-sweep) drive the protection harness.
type AttackConfig struct {
	Kernel  int
	Mode    trace.AttackMode
	Pattern trace.Pattern
}

// Result is everything one run measures.
type Result struct {
	ExecNS           float64
	Counts           mitigation.Counts
	Breakdown        energy.Breakdown
	CMRPO            float64
	AvgReadLatencyNS float64
	// VictimBusyFrac is the fraction of total bank-time consumed by
	// victim refreshes — a deterministic attribution that complements the
	// paired-run ETO (which carries scheduling noise at small scales).
	VictimBusyFrac   float64
	PerBankActs      []int64
	OracleViolations int64
	// Protection-harness metrics (CheckProtection only): distinct victim
	// rows whose crosstalk exposure crossed the threshold unrefreshed,
	// distinct victim rows with any exposure, and their ratio. Zero for
	// sound deterministic schemes; the quantified failure probability for
	// PRA/DSAC under adversarial patterns.
	MissedVictimRows  int64
	ExposedVictimRows int64
	MissedVictimRate  float64
	SchemeLabel       string
	// Epochs holds the per-epoch time series when Config.EpochNS is set
	// (nil otherwise): activity deltas, tracking-structure occupancy and
	// cumulative oracle exposure per fixed-duration epoch.
	Epochs []EpochSample
	// Tenants holds the per-tenant attribution when Config.OpenLoop is set
	// (nil otherwise): each tenant's owned-row activations, victim-refresh
	// rows, and — on protection runs — its share of exposed/missed victim
	// rows. The attacker, when configured, is the last entry.
	Tenants []workload.TenantStat
}

// EpochSample is one epoch's worth of time-series metrics, recorded by
// the engine when Config.EpochNS is positive.
type EpochSample = engine.Sample

func (c *Config) fill() {
	if c.Window == 0 {
		c.Window = cpu.DefaultWindow
	}
	if c.CPUPerBus == 0 {
		c.CPUPerBus = cpu.DefaultCPUCyclesPerBusCycle
	}
	if c.IntervalNS == 0 {
		c.IntervalNS = dram.RefreshIntervalNS()
	}
	if c.ThresholdScale == 0 {
		c.ThresholdScale = 1
	}
	if c.Timing.BusMHz == 0 {
		c.Timing = dram.DDR3_1600()
	}
	if c.Geometry.Channels == 0 {
		if c.Replay != nil {
			c.Geometry = c.Replay.Geometry
		} else {
			c.Geometry = dram.Default2Channel()
		}
	}
}

func (c *Config) validate() error {
	if c.Replay != nil {
		if c.Cores != 0 || c.RequestsPerCore != 0 {
			return fmt.Errorf("sim: replay supplies the request streams; Cores and RequestsPerCore must be zero")
		}
		if c.WorkloadPerCore != nil || c.Attack != nil {
			return fmt.Errorf("sim: replay supplies the request streams; per-core workloads and attack config must be empty")
		}
		if c.Geometry != c.Replay.Geometry {
			return fmt.Errorf("sim: config geometry %v does not match the captured geometry %v",
				c.Geometry, c.Replay.Geometry)
		}
	} else {
		if c.Cores < 1 && c.OpenLoop == nil {
			return fmt.Errorf("sim: need at least one core or an open-loop workload")
		}
		if c.Cores >= 1 && c.RequestsPerCore < 1 {
			return fmt.Errorf("sim: need at least one request per core")
		}
		if c.Attack != nil && c.Cores < 1 {
			return fmt.Errorf("sim: attack config requires closed-loop cores (embed an attacker tenant in the open-loop cohort instead)")
		}
	}
	if c.OpenLoop != nil {
		ol := c.openConfig()
		if err := ol.Validate(); err != nil {
			return err
		}
		if ol.Requests < ol.Sources {
			return fmt.Errorf("sim: open-loop budget of %d requests cannot feed %d sources",
				ol.Requests, ol.Sources)
		}
	}
	if c.Threshold < 1 {
		return fmt.Errorf("sim: refresh threshold must be positive")
	}
	if c.EpochNS < 0 {
		return fmt.Errorf("sim: epoch length must not be negative")
	}
	if c.AttackOnsetFrac < 0 || c.AttackOnsetFrac >= 1 {
		return fmt.Errorf("sim: attack onset fraction %v out of [0,1)", c.AttackOnsetFrac)
	}
	if c.AttackOnsetFrac > 0 && c.Attack == nil {
		return fmt.Errorf("sim: attack onset fraction without an attack")
	}
	if c.WorkloadPerCore != nil && len(c.WorkloadPerCore) != c.Cores {
		return fmt.Errorf("sim: %d per-core workloads for %d cores",
			len(c.WorkloadPerCore), c.Cores)
	}
	if c.Shards < 0 {
		return fmt.Errorf("sim: negative shard count %d", c.Shards)
	}
	if c.Shards >= 1 && !c.ChannelAffine {
		return fmt.Errorf("sim: sharded runs need channel-affine streams (set ChannelAffine / -affine)")
	}
	if c.ChannelAffine && c.Replay != nil {
		return fmt.Errorf("sim: replayed streams replay exactly as captured; ChannelAffine applies to generated streams only")
	}
	return c.Geometry.Validate()
}

// Validate reports whether cfg describes a runnable simulation, applying
// the same default-filling and checks Run performs — without running it.
// Submission-time validators (catsim-server's POST handler) use it to
// reject bad configs before they occupy a worker.
func Validate(cfg Config) error {
	cfg.fill()
	return cfg.validate()
}

// Run executes one simulation: it builds the mapping policy, controller,
// scheme, oracle and per-core request streams from cfg, hands them to the
// epoch-driven event loop in internal/engine, and derives the energy
// breakdown and rate metrics from the end state. The engine's min-heap
// scheduler replays the historical linear scan's causal order exactly, so
// results are byte-identical to the pre-engine monolith (locked by the
// golden files and the epoch/scheduler invariance tests).
func Run(cfg Config) (Result, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.sharded() {
		return runSharded(cfg)
	}

	policy, err := cfg.buildPolicy()
	if err != nil {
		return Result{}, err
	}

	ctrl, err := memctrl.New(cfg.Geometry, cfg.Timing)
	if err != nil {
		return Result{}, err
	}

	banks := cfg.Geometry.TotalBanks()
	scheme, err := cfg.Scheme.Build(banks, cfg.Geometry.RowsPerBank, cfg.Threshold, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	thresholdTriggered := scheme.Kind() != mitigation.KindPRA && scheme.Kind() != mitigation.KindNone
	if cfg.ThresholdScale < 1 && thresholdTriggered {
		scaled := int(float64(cfg.Timing.RowRefreshCycles())*cfg.ThresholdScale + 0.5)
		ctrl.SetVictimRowCycles(scaled)
	}

	// The oracle judges every scheme, probabilistic ones included: for
	// PRA/DSAC the missed-victim accounting quantifies the protection gap
	// that deterministic schemes must show to be zero.
	var oracle *mitigation.Oracle
	if cfg.CheckProtection && scheme.Kind() != mitigation.KindNone {
		oracle = mitigation.NewOracle(banks, cfg.Geometry.RowsPerBank, cfg.Threshold)
	}

	cpuNS := 1000.0 / (float64(cfg.Timing.BusMHz) * float64(cfg.CPUPerBus)) // ns per CPU cycle
	slots, open, cohort, err := cfg.buildStreams(policy, cpuNS)
	if err != nil {
		return Result{}, err
	}
	ecfg := engine.Config{
		Cores:           slots,
		Open:            open,
		Ctrl:            ctrl,
		Policy:          policy,
		Geometry:        cfg.Geometry,
		Scheme:          scheme,
		Oracle:          oracle,
		Scrambler:       cfg.Scrambler,
		IgnoreScrambler: cfg.IgnoreScrambler,
		CPUPerBus:       cfg.CPUPerBus,
		IntervalCPU:     int64(cfg.IntervalNS / cpuNS),
		EpochCPU:        int64(cfg.EpochNS / cpuNS),
		CPUCycleNS:      cpuNS,
		BusCycleNS:      1000.0 / float64(cfg.Timing.BusMHz),
		Batch:           true,
		OnSample:        cfg.OnSample,
	}
	if cohort != nil {
		ecfg.Attr = cohort
	}
	er, err := engine.Run(ecfg)
	if err != nil {
		return Result{}, err
	}
	res, err := cfg.deriveResult(er, scheme.Counts(), scheme.Kind(), scheme.CountersPerBank(), ctrl.Stats(),
		cfg.Scheme.Label(cfg.Threshold))
	if err != nil {
		return Result{}, err
	}
	if oracle != nil {
		res.OracleViolations = oracle.Violations()
		res.MissedVictimRows = oracle.MissedVictimRows()
		res.ExposedVictimRows = oracle.ExposedVictimRows()
		res.MissedVictimRate = oracle.MissedVictimRate()
	}
	if cohort != nil {
		if oracle != nil {
			res.Tenants = cohort.Stats(oracle)
		} else {
			res.Tenants = cohort.Stats(nil)
		}
	}
	return res, nil
}

// deriveResult turns engine output plus end-state aggregates into the
// reported Result. Both run paths use it: the sequential path hands it one
// controller's stats and one scheme's counts, the sharded path the sums
// over its per-channel partitions — the expressions are shared so the two
// paths agree bit for bit. label is the scheme's figure label (passed in
// so run contexts can cache the formatted string across a sweep).
func (c *Config) deriveResult(er engine.Result, counts mitigation.Counts, kind mitigation.Kind,
	countersPerBank int, stats memctrl.Stats, label string) (Result, error) {
	cpuNS := 1000.0 / (float64(c.Timing.BusMHz) * float64(c.CPUPerBus))
	execNS := float64(er.EndCPU) * cpuNS
	banks := c.Geometry.TotalBanks()
	breakdown, err := energy.Compute(kind, countersPerBank, counts, banks, execNS)
	if err != nil {
		return Result{}, err
	}
	thresholdTriggered := kind != mitigation.KindPRA && kind != mitigation.KindNone
	if c.ThresholdScale < 1 && thresholdTriggered {
		// See Config.ThresholdScale: trigger counts match a full interval
		// while simulated time is scale*interval.
		breakdown.RefreshMW *= c.ThresholdScale
	}
	busNS := 1000.0 / float64(c.Timing.BusMHz)
	avgLat := 0.0
	if stats.Reads > 0 {
		avgLat = float64(stats.ReadLatencySum) / float64(stats.Reads) * busNS
	}
	return Result{
		ExecNS:           execNS,
		Counts:           counts,
		Breakdown:        breakdown,
		CMRPO:            breakdown.CMRPO(),
		AvgReadLatencyNS: avgLat,
		VictimBusyFrac:   float64(stats.VictimRefreshBusy) * busNS / (float64(banks) * execNS),
		PerBankActs:      er.PerBankActs,
		SchemeLabel:      label,
		Epochs:           er.Samples,
	}, nil
}

// Clone deep-copies the slices a Result carries, detaching it from any
// run-context scratch memory it may alias. Results returned by Run own
// their memory already; results from Context.Run alias the context and
// must be cloned before the context's next run if they are retained.
func (r Result) Clone() Result {
	if r.PerBankActs != nil {
		r.PerBankActs = append([]int64(nil), r.PerBankActs...)
	}
	if r.Epochs != nil {
		r.Epochs = append([]EpochSample(nil), r.Epochs...)
	}
	if r.Tenants != nil {
		r.Tenants = append([]workload.TenantStat(nil), r.Tenants...)
	}
	return r
}

// PairResult reports a scheme run against its no-mitigation baseline.
type PairResult struct {
	Scheme   Result
	Baseline Result
	// ETO is the execution-time overhead (§VI): the relative slowdown of
	// the identical request streams caused by victim-refresh stalls.
	ETO float64
}

// RunPair runs cfg twice with identical seeds — once with the configured
// scheme and once with mitigation disabled — and reports the ETO.
func RunPair(cfg Config) (PairResult, error) {
	withScheme, err := Run(cfg)
	if err != nil {
		return PairResult{}, err
	}
	base := cfg
	base.Scheme = SchemeSpec{Kind: mitigation.KindNone}
	baseline, err := Run(base)
	if err != nil {
		return PairResult{}, err
	}
	eto := 0.0
	if baseline.ExecNS > 0 {
		eto = (withScheme.ExecNS - baseline.ExecNS) / baseline.ExecNS
	}
	return PairResult{Scheme: withScheme, Baseline: baseline, ETO: eto}, nil
}
