package sim

import (
	"testing"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// The §VII physical-adjacency study: crosstalk couples physically adjacent
// wordlines, so a controller that knows the DRAM's row remapping tracks and
// refreshes physical rows; one that does not is unsound.

func scrambledCfg(t *testing.T, ignore bool) Config {
	t.Helper()
	cfg := smallCfg(SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11})
	cfg.Geometry = dram.Default2Channel()
	cfg.Threshold = 256
	cfg.CheckProtection = true
	s, err := dram.NewStrideScrambler(cfg.Geometry.RowsPerBank, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scrambler = s
	cfg.IgnoreScrambler = ignore
	return cfg
}

func TestScramblerAwareControllerStaysSound(t *testing.T) {
	res, err := Run(scrambledCfg(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleViolations != 0 {
		t.Errorf("%d protection violations with a scramble-aware controller", res.OracleViolations)
	}
}

func TestIgnoringScramblerIsUnsafe(t *testing.T) {
	// Failure injection: with the translation omitted, the scheme guards
	// logical ranges while the crosstalk happens between physical
	// neighbours; a row-hammering workload must slip through.
	cfg := scrambledCfg(t, true)
	cfg.Attack = &AttackConfig{Kernel: 1, Mode: trace.Heavy}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleViolations == 0 {
		t.Error("expected protection violations when the scrambler is ignored")
	}
}
