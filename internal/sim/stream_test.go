package sim

import (
	"reflect"
	"testing"

	"catsim/internal/mitigation"
)

// TestOnSampleMatchesEpochs: the hook must see exactly the samples that
// land in Result.Epochs, in order, live from the sequential engine —
// trailing partial epoch included.
func TestOnSampleMatchesEpochs(t *testing.T) {
	cfg := shardConfig(t, mitigation.KindDRCAT)
	var got []EpochSample
	cfg.OnSample = func(s EpochSample) { got = append(got, s) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) == 0 {
		t.Fatal("config produced no epochs; the test needs a sampled run")
	}
	if !reflect.DeepEqual(got, res.Epochs) {
		t.Errorf("hook delivered %d samples that differ from Result.Epochs (%d)",
			len(got), len(res.Epochs))
	}
}

// TestOnSampleShardedMatchesSequential locks the streaming satellite's
// ordering contract: a sharded run delivers the hook the exact merged
// sequence a sequential run delivers — same samples, same order — even
// though its partitions execute concurrently.
func TestOnSampleShardedMatchesSequential(t *testing.T) {
	seq := shardConfig(t, mitigation.KindDRCAT)
	var seqSamples []EpochSample
	seq.OnSample = func(s EpochSample) { seqSamples = append(seqSamples, s) }
	if _, err := Run(seq); err != nil {
		t.Fatal(err)
	}

	sh := shardConfig(t, mitigation.KindDRCAT)
	sh.Shards = 4
	var shSamples []EpochSample
	sh.OnSample = func(s EpochSample) { shSamples = append(shSamples, s) }
	res, err := Run(sh)
	if err != nil {
		t.Fatal(err)
	}
	if !sh.sharded() {
		t.Fatal("config did not take the partitioned path")
	}
	if len(seqSamples) == 0 {
		t.Fatal("sequential run delivered no samples")
	}
	if !reflect.DeepEqual(shSamples, seqSamples) {
		t.Errorf("sharded delivery (%d samples) diverges from sequential (%d)",
			len(shSamples), len(seqSamples))
	}
	if !reflect.DeepEqual(shSamples, res.Epochs) {
		t.Error("sharded delivery diverges from the merged Result.Epochs")
	}
}

// TestCacheKeyIgnoresOnSample: the hook is observation only, so attaching
// one must not fragment the cache.
func TestCacheKeyIgnoresOnSample(t *testing.T) {
	a := keyConfig(t)
	b := keyConfig(t)
	b.OnSample = func(EpochSample) {}
	if CacheKey(a) != CacheKey(b) {
		t.Error("OnSample must be excluded from CacheKey")
	}
}
