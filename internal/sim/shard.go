package sim

import (
	"fmt"

	"catsim/internal/addrmap"
	"catsim/internal/cpu"
	"catsim/internal/engine"
	"catsim/internal/memctrl"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// This file is the sim-level face of the sharded engine: it decides when a
// Config can take the channel-partitioned path, builds one full component
// stack per channel, and folds the per-partition end state back into the
// single Result the rest of the toolchain consumes. See engine/shard.go
// for the determinism contract the partitioning rests on.

// affineGen pins a generator's stream to one channel: every address is
// remapped with row, rank, bank and column preserved. The wrapper sits
// outermost in closedGen, so attack blends are pinned too and Capture
// records the pinned stream.
type affineGen struct {
	gen    trace.Generator
	policy addrmap.Policy
	ch     int
}

func (g *affineGen) Next() trace.Request {
	req := g.gen.Next()
	req.Addr = addrmap.PinChannel(g.policy, req.Addr, g.ch)
	return req
}

func (g *affineGen) Name() string { return fmt.Sprintf("%s@ch%d", g.gen.Name(), g.ch) }

// sharded reports whether Run takes the channel-partitioned path: an
// explicit Shards request over partitionable streams (closed-loop,
// channel-affine) and a shard-safe scheme. Open-loop runs and schemes
// with cross-bank or shared-PRNG state fall back to the sequential
// reference engine — same Config, same Result shape.
func (c *Config) sharded() bool {
	return c.Shards >= 1 && c.ChannelAffine && c.Replay == nil && c.OpenLoop == nil &&
		c.Cores >= 1 && mitigation.ShardSafe(c.Scheme.Kind)
}

// runSharded executes one simulation on the channel-partitioned engine:
// one controller + scheme (+ oracle) instance per channel that has cores,
// cores assigned channel ch = core index mod Channels (matching the
// affineGen pinning), merged by engine.RunSharded in channel order. The
// Shards value bounds the worker goroutines and nothing else.
func runSharded(cfg Config) (Result, error) {
	policy, err := cfg.buildPolicy()
	if err != nil {
		return Result{}, err
	}
	banks := cfg.Geometry.TotalBanks()
	cpuNS := 1000.0 / (float64(cfg.Timing.BusMHz) * float64(cfg.CPUPerBus))
	thresholdTriggered := cfg.Scheme.Kind != mitigation.KindPRA && cfg.Scheme.Kind != mitigation.KindNone

	var parts []engine.Config
	var ctrls []*memctrl.Controller
	var schemes []mitigation.Scheme
	var oracles []*mitigation.Oracle
	for ch := 0; ch < cfg.Geometry.Channels; ch++ {
		var slots []engine.CoreSlot
		for i := ch; i < cfg.Cores; i += cfg.Geometry.Channels {
			core, err := cpu.NewCore(cfg.Window)
			if err != nil {
				return Result{}, err
			}
			gen, err := cfg.closedGen(policy, i)
			if err != nil {
				return Result{}, err
			}
			slots = append(slots, engine.CoreSlot{CPU: core, Gen: gen, Requests: cfg.RequestsPerCore})
		}
		if len(slots) == 0 {
			// A channel with no cores sees no traffic; skipping it keeps the
			// partition list dense (engine.RunSharded requires non-empty
			// partitions) without changing any result: the merge's pristine
			// correction accounts for untouched banks either way.
			continue
		}
		ctrl, err := memctrl.New(cfg.Geometry, cfg.Timing)
		if err != nil {
			return Result{}, err
		}
		scheme, err := cfg.Scheme.Build(banks, cfg.Geometry.RowsPerBank, cfg.Threshold, cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		if cfg.ThresholdScale < 1 && thresholdTriggered {
			scaled := int(float64(cfg.Timing.RowRefreshCycles())*cfg.ThresholdScale + 0.5)
			ctrl.SetVictimRowCycles(scaled)
		}
		var oracle *mitigation.Oracle
		if cfg.CheckProtection && scheme.Kind() != mitigation.KindNone {
			oracle = mitigation.NewOracle(banks, cfg.Geometry.RowsPerBank, cfg.Threshold)
		}
		parts = append(parts, engine.Config{
			Cores:           slots,
			Ctrl:            ctrl,
			Policy:          policy,
			Geometry:        cfg.Geometry,
			Scheme:          scheme,
			Oracle:          oracle,
			Scrambler:       cfg.Scrambler,
			IgnoreScrambler: cfg.IgnoreScrambler,
			CPUPerBus:       cfg.CPUPerBus,
			IntervalCPU:     int64(cfg.IntervalNS / cpuNS),
			EpochCPU:        int64(cfg.EpochNS / cpuNS),
			CPUCycleNS:      cpuNS,
			BusCycleNS:      1000.0 / float64(cfg.Timing.BusMHz),
			Batch:           true,
			Channels:        &engine.ChannelRange{Lo: ch, Hi: ch + 1},
		})
		ctrls = append(ctrls, ctrl)
		schemes = append(schemes, scheme)
		oracles = append(oracles, oracle)
	}
	if len(parts) == 0 {
		return Result{}, fmt.Errorf("sim: no channel received any core")
	}
	workers := cfg.Shards
	if workers > len(parts) {
		workers = len(parts)
	}
	er, err := engine.RunSharded(parts, workers)
	if err != nil {
		return Result{}, err
	}
	// Per-partition samples only become the run's samples after the
	// channel-order merge, so the streaming hook fires here — once, with
	// the final merged sequence — rather than live per partition. Callers
	// observe the identical samples in the identical order as a
	// sequential run (locked by TestOnSampleShardedMatchesSequential);
	// only the delivery time differs.
	if cfg.OnSample != nil {
		for _, s := range er.Samples {
			cfg.OnSample(s)
		}
	}

	var stats memctrl.Stats
	var counts mitigation.Counts
	for i := range ctrls {
		stats = stats.Add(ctrls[i].Stats())
		counts = counts.Add(schemes[i].Counts())
	}
	res, err := cfg.deriveResult(er, counts, schemes[0].Kind(), schemes[0].CountersPerBank(), stats,
		cfg.Scheme.Label(cfg.Threshold))
	if err != nil {
		return Result{}, err
	}
	if cfg.CheckProtection && cfg.Scheme.Kind != mitigation.KindNone {
		var missed, exposed int64
		for _, o := range oracles {
			res.OracleViolations += o.Violations()
			missed += o.MissedVictimRows()
			exposed += o.ExposedVictimRows()
		}
		res.MissedVictimRows, res.ExposedVictimRows = missed, exposed
		if exposed > 0 {
			res.MissedVictimRate = float64(missed) / float64(exposed)
		}
	}
	return res, nil
}
