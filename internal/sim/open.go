package sim

import (
	"fmt"

	"catsim/internal/addrmap"
	"catsim/internal/cpu"
	"catsim/internal/engine"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

// This file builds the request streams a run consumes — closed-loop
// per-core generators, open-loop arrival sources, and their replay
// counterparts — and implements Capture, which records the exact request
// sequence a live run would draw into a versioned trace container.

func (c *Config) buildPolicy() (addrmap.Policy, error) {
	if c.ChannelInterleaved {
		return addrmap.NewChannelInterleaved(c.Geometry)
	}
	return addrmap.NewRowInterleaved(c.Geometry)
}

// openConfig resolves the effective open-loop workload: a zero request
// budget defaults to RequestsPerCore per source, so open-loop runs scale
// with the same knob as closed-loop ones.
func (c *Config) openConfig() workload.Config {
	ol := *c.OpenLoop
	if ol.Sources == 0 {
		ol.Sources = 1
	}
	if ol.Requests == 0 {
		ol.Requests = c.RequestsPerCore * ol.Sources
	}
	return ol
}

// closedStream is core i's generator stack with every resettable layer
// exposed: run contexts rewind the synthetic stream, attack blend and
// phase switch in place to replay a different seed without rebuilding
// (attack target tables are run-seed-independent, so they survive reuse).
type closedStream struct {
	idx    int // global core index (seed offset, affine channel)
	syn    *trace.Synthetic
	attack *trace.Attack // nil without an attack blend
	phased *trace.Phased // nil without an onset delay
	gen    trace.Generator
}

// reseed rewinds every layer of the stack to the state closedStream(cfg
// with the given seed) would build.
func (cs *closedStream) reseed(seed uint64) {
	cs.syn.Reseed(seed + uint64(cs.idx)*0x1000193)
	if cs.attack != nil {
		cs.attack.Reset()
	}
	if cs.phased != nil {
		cs.phased.Reset()
	}
}

// closedGen builds core i's request generator: the synthetic workload
// stream, optionally wrapped in the kernel-attack blend, the
// onset-delaying phase switch, and — under ChannelAffine — the
// channel-pinning remap. Pinning wraps outermost so attack traffic is
// pinned too, and so Capture records the pinned addresses: a captured
// affine run replays byte-identically without re-pinning.
func (c *Config) closedGen(policy addrmap.Policy, i int) (trace.Generator, error) {
	cs, err := c.closedStream(policy, i)
	if err != nil {
		return nil, err
	}
	return cs.gen, nil
}

// closedStream builds core i's generator stack, keeping a handle on each
// resettable layer (see closedStream the type).
func (c *Config) closedStream(policy addrmap.Policy, i int) (closedStream, error) {
	spec := c.Workload
	if c.WorkloadPerCore != nil {
		spec = c.WorkloadPerCore[i]
	}
	cs := closedStream{idx: i}
	syn, err := trace.NewSynthetic(spec, c.Geometry.TotalBytes(),
		c.Geometry.LineBytes, c.Seed+uint64(i)*0x1000193)
	if err != nil {
		return cs, err
	}
	cs.syn = syn
	var gen trace.Generator = syn
	if c.Attack != nil {
		attack, err := trace.NewAttackPattern(c.Attack.Kernel, c.Attack.Mode,
			c.Attack.Pattern, c.Geometry, policy, syn)
		if err != nil {
			return cs, err
		}
		cs.attack = attack
		gen = attack
		if c.AttackOnsetFrac > 0 {
			// The benign prefix draws from the plain synthetic stream; the
			// blend (which wraps the same stream) takes over at the onset
			// point.
			onset := int64(c.AttackOnsetFrac * float64(c.RequestsPerCore))
			phased, err := trace.NewPhased(onset, syn, attack)
			if err != nil {
				return cs, err
			}
			cs.phased = phased
			gen = phased
		}
	}
	if c.ChannelAffine {
		gen = &affineGen{gen: gen, policy: policy, ch: i % c.Geometry.Channels}
	}
	cs.gen = gen
	return cs, nil
}

// buildStreams assembles the engine-facing request sources — core slots,
// open-loop arrival slots and, for open-loop runs, the cohort that
// attributes activations and refreshes to tenants.
func (c *Config) buildStreams(policy addrmap.Policy, cpuNS float64) ([]engine.CoreSlot, []engine.OpenSlot, *workload.Cohort, error) {
	if c.Replay != nil {
		return c.replayStreams(policy)
	}
	var slots []engine.CoreSlot
	for i := 0; i < c.Cores; i++ {
		core, err := cpu.NewCore(c.Window)
		if err != nil {
			return nil, nil, nil, err
		}
		gen, err := c.closedGen(policy, i)
		if err != nil {
			return nil, nil, nil, err
		}
		slots = append(slots, engine.CoreSlot{CPU: core, Gen: gen, Requests: c.RequestsPerCore})
	}
	if c.OpenLoop == nil {
		return slots, nil, nil, nil
	}
	rt, err := c.openConfig().Build(c.Geometry, policy, 1/cpuNS, c.Seed)
	if err != nil {
		return nil, nil, nil, err
	}
	open := make([]engine.OpenSlot, len(rt.Sources))
	for i, src := range rt.Sources {
		open[i] = engine.OpenSlot{Gen: src, Requests: rt.Counts[i]}
	}
	return slots, open, rt.Cohort, nil
}

// replayStreams turns a captured container back into engine sources:
// closed streams become cores (budgets from the capture), open streams
// become single-shot arrival slots. When an OpenLoop spec rides along, its
// cohort is rebuilt — deterministically, drawing no randomness — so the
// replay attributes the identical ownership table.
func (c *Config) replayStreams(policy addrmap.Policy) ([]engine.CoreSlot, []engine.OpenSlot, *workload.Cohort, error) {
	var slots []engine.CoreSlot
	var open []engine.OpenSlot
	for i := range c.Replay.Streams {
		s := &c.Replay.Streams[i]
		if s.Open {
			or, err := s.OpenReplay()
			if err != nil {
				return nil, nil, nil, err
			}
			open = append(open, engine.OpenSlot{Gen: or, Requests: len(s.Reqs)})
			continue
		}
		core, err := cpu.NewCore(c.Window)
		if err != nil {
			return nil, nil, nil, err
		}
		gen, err := s.Generator()
		if err != nil {
			return nil, nil, nil, err
		}
		slots = append(slots, engine.CoreSlot{CPU: core, Gen: gen, Requests: len(s.Reqs)})
	}
	var cohort *workload.Cohort
	if c.OpenLoop != nil {
		var err error
		cohort, err = workload.NewCohort(c.openConfig().Cohort, c.Geometry, policy, c.Seed)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return slots, open, cohort, nil
}

// Capture records the exact request sequence Run would feed the engine —
// without simulating the memory system — into a trace container that
// replays byte-identically under any scheme spec. Closed-loop streams are
// captured sequentially (each core draws its own generator in order).
// Open-loop sources share the cohort's RNG streams, so their draw order
// matters: the engine interleaves them by (arrival time, slot index), and
// the capture merges the sources in exactly that order, applying the same
// monotonicity clamp.
func Capture(cfg Config) (*trace.Container, error) {
	cfg.fill()
	if cfg.Replay != nil {
		return nil, fmt.Errorf("sim: cannot capture from a replay config")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	policy, err := cfg.buildPolicy()
	if err != nil {
		return nil, err
	}
	c := &trace.Container{Geometry: cfg.Geometry}
	for i := 0; i < cfg.Cores; i++ {
		gen, err := cfg.closedGen(policy, i)
		if err != nil {
			return nil, err
		}
		reqs := make([]trace.Request, cfg.RequestsPerCore)
		for k := range reqs {
			reqs[k] = gen.Next()
		}
		c.Streams = append(c.Streams, trace.Stream{
			Name: fmt.Sprintf("core%d:%s", i, gen.Name()),
			Reqs: reqs,
		})
	}
	if cfg.OpenLoop == nil {
		return c, nil
	}
	cpuNS := 1000.0 / (float64(cfg.Timing.BusMHz) * float64(cfg.CPUPerBus))
	rt, err := cfg.openConfig().Build(cfg.Geometry, policy, 1/cpuNS, cfg.Seed)
	if err != nil {
		return nil, err
	}
	n := len(rt.Sources)
	streams := make([]trace.Stream, n)
	pend := make([]trace.Request, n)
	pendAt := make([]int64, n)
	left := make([]int, n)
	remaining := 0
	for j, src := range rt.Sources {
		streams[j] = trace.Stream{Name: src.Name(), Open: true}
		left[j] = rt.Counts[j]
		remaining += left[j]
		// Initial draws happen in slot order, exactly like the engine's
		// pending-state setup.
		pend[j], pendAt[j] = src.Next()
	}
	for ; remaining > 0; remaining-- {
		best := -1
		for j := 0; j < n; j++ {
			if left[j] > 0 && (best < 0 || pendAt[j] < pendAt[best]) {
				best = j // strict <: ties go to the lower index, like the scheduler
			}
		}
		j := best
		streams[j].Reqs = append(streams[j].Reqs, pend[j])
		streams[j].Arrivals = append(streams[j].Arrivals, pendAt[j])
		left[j]--
		if left[j] == 0 {
			continue
		}
		req, at := rt.Sources[j].Next()
		if at < pendAt[j] {
			// The engine clamps non-monotone sources; capture must too.
			at = pendAt[j]
		}
		pend[j], pendAt[j] = req, at
	}
	c.Streams = append(c.Streams, streams...)
	return c, nil
}
