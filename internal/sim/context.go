package sim

import (
	"sync"

	"catsim/internal/addrmap"
	"catsim/internal/cpu"
	"catsim/internal/dram"
	"catsim/internal/engine"
	"catsim/internal/memctrl"
	"catsim/internal/mitigation"
	"catsim/internal/workload"
)

// Context is a reusable run context: it owns every piece of per-run state
// a simulation builds — engine scratch memory, the memory controller's
// bank arrays, the mitigation scheme's trackers, the oracle's tables, the
// request-stream generators and their PRNG streams — and resets whatever
// still fits in place instead of rebuilding it, so a sweep that runs many
// same-shaped cells (typically differing only in seed) performs no
// steady-state allocations per run.
//
// Context.Run(cfg) returns a byte-identical Result to Run(cfg) for every
// configuration and every sequence of configurations (locked by the
// context-reuse identity test): each layer compares the shape it was
// built for against the incoming config and rebuilds on any mismatch, and
// scheme reuse additionally goes through mitigation.Resettable, whose
// contract demands observational equivalence to a fresh build.
//
// A Result returned by Context.Run ALIASES the context (PerBankActs and
// Epochs share its scratch memory) and is valid only until the context's
// next run; call Result.Clone to retain it. A Context serves one run at a
// time — use one per worker goroutine (internal/runner pools them).
type Context struct {
	seq seqState
	sh  shardState

	label     string
	labelSpec SchemeSpec
	labelT    uint32
	hasLabel  bool
}

// NewContext returns an empty context; the first Run populates it.
func NewContext() *Context { return &Context{} }

// Run executes one simulation exactly like the package-level Run, reusing
// the context's state wherever the configuration shape allows.
func (ctx *Context) Run(cfg Config) (Result, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.sharded() {
		return ctx.runSharded(cfg)
	}
	return ctx.runSequential(cfg)
}

// schemeLabel caches the scheme's formatted figure label across runs of
// the same (spec, threshold) cell.
func (ctx *Context) schemeLabel(cfg *Config) string {
	if !ctx.hasLabel || ctx.labelSpec != cfg.Scheme || ctx.labelT != cfg.Threshold {
		ctx.label = cfg.Scheme.Label(cfg.Threshold)
		ctx.labelSpec, ctx.labelT, ctx.hasLabel = cfg.Scheme, cfg.Threshold, true
	}
	return ctx.label
}

// policyCache memoizes address-mapping policies process-wide: a policy is
// a pure function of (geometry, interleave flag), immutable and
// goroutine-safe after construction (sharded partitions already share one
// instance), so every context — and every cell of a runner grid — reuses
// the same table.
var policyCache sync.Map // policyKey -> addrmap.Policy

type policyKey struct {
	geom        dram.Geometry
	interleaved bool
}

func cachedPolicy(cfg *Config) (addrmap.Policy, error) {
	k := policyKey{cfg.Geometry, cfg.ChannelInterleaved}
	if v, ok := policyCache.Load(k); ok {
		return v.(addrmap.Policy), nil
	}
	p, err := cfg.buildPolicy()
	if err != nil {
		return nil, err
	}
	v, _ := policyCache.LoadOrStore(k, p)
	return v.(addrmap.Policy), nil
}

// sameStreamShape reports whether request streams built for a can be
// rewound in place to serve b: every stream-determining field except the
// seed must match (the seed is what reseed replays). Replay configs never
// share streams — their wrappers are rebuilt each run.
func sameStreamShape(a, b *Config) bool {
	if a.Replay != nil || b.Replay != nil {
		return false
	}
	if a.Geometry != b.Geometry || a.Timing != b.Timing ||
		a.ChannelInterleaved != b.ChannelInterleaved ||
		a.Cores != b.Cores || a.Window != b.Window ||
		a.CPUPerBus != b.CPUPerBus ||
		a.RequestsPerCore != b.RequestsPerCore ||
		a.Workload != b.Workload ||
		a.AttackOnsetFrac != b.AttackOnsetFrac ||
		a.ChannelAffine != b.ChannelAffine {
		return false
	}
	if (a.Attack == nil) != (b.Attack == nil) {
		return false
	}
	if a.Attack != nil && *a.Attack != *b.Attack {
		return false
	}
	if len(a.WorkloadPerCore) != len(b.WorkloadPerCore) {
		return false
	}
	for i := range a.WorkloadPerCore {
		if a.WorkloadPerCore[i] != b.WorkloadPerCore[i] {
			return false
		}
	}
	if (a.OpenLoop == nil) != (b.OpenLoop == nil) {
		return false
	}
	if a.OpenLoop != nil && a.openConfig().String() != b.openConfig().String() {
		return false
	}
	return true
}

// sameSchemeShape reports whether a scheme built for a serves b after a
// ResetRun (same spec, threshold and system dimensions; the run seed is
// re-derived by ResetRun).
func sameSchemeShape(a, b *Config) bool {
	return a.Scheme == b.Scheme && a.Threshold == b.Threshold && a.Geometry == b.Geometry
}

// seqState is the sequential engine's reusable stack.
type seqState struct {
	built bool
	prev  Config

	policy addrmap.Policy
	ctrl   *memctrl.Controller
	scheme mitigation.Scheme
	oracle *mitigation.Oracle

	closed    []closedStream
	slots     []engine.CoreSlot
	openRT    *workload.Runtime
	openSlots []engine.OpenSlot

	scratch engine.Scratch
	ecfg    engine.Config
}

func (ctx *Context) runSequential(cfg Config) (Result, error) {
	s := &ctx.seq
	prev := s.prev
	was := s.built
	// Any failure below leaves the stack half-mutated; drop it so the next
	// run rebuilds from scratch. Re-armed on success.
	s.built = false

	var err error
	if !(was && prev.Geometry == cfg.Geometry && prev.ChannelInterleaved == cfg.ChannelInterleaved) {
		if s.policy, err = cachedPolicy(&cfg); err != nil {
			return Result{}, err
		}
	}
	policy := s.policy

	if was && prev.Geometry == cfg.Geometry && prev.Timing == cfg.Timing {
		s.ctrl.Reset()
	} else if s.ctrl, err = memctrl.New(cfg.Geometry, cfg.Timing); err != nil {
		return Result{}, err
	}
	ctrl := s.ctrl

	banks := cfg.Geometry.TotalBanks()
	reuseScheme := was && sameSchemeShape(&prev, &cfg)
	if reuseScheme {
		r, ok := s.scheme.(mitigation.Resettable)
		reuseScheme = ok && r.ResetRun(cfg.Scheme.runSeed(cfg.Seed))
	}
	if !reuseScheme {
		if s.scheme, err = cfg.Scheme.Build(banks, cfg.Geometry.RowsPerBank, cfg.Threshold, cfg.Seed); err != nil {
			return Result{}, err
		}
	}
	scheme := s.scheme
	thresholdTriggered := scheme.Kind() != mitigation.KindPRA && scheme.Kind() != mitigation.KindNone
	if cfg.ThresholdScale < 1 && thresholdTriggered {
		scaled := int(float64(cfg.Timing.RowRefreshCycles())*cfg.ThresholdScale + 0.5)
		ctrl.SetVictimRowCycles(scaled)
	}

	var oracle *mitigation.Oracle
	if cfg.CheckProtection && scheme.Kind() != mitigation.KindNone {
		if was && s.oracle != nil && prev.Geometry == cfg.Geometry && prev.Threshold == cfg.Threshold {
			s.oracle.Reset()
		} else {
			s.oracle = mitigation.NewOracle(banks, cfg.Geometry.RowsPerBank, cfg.Threshold)
		}
		oracle = s.oracle
	}

	cpuNS := 1000.0 / (float64(cfg.Timing.BusMHz) * float64(cfg.CPUPerBus))
	var cohort *workload.Cohort
	switch {
	case was && sameStreamShape(&prev, &cfg):
		for i := range s.closed {
			s.closed[i].reseed(cfg.Seed)
			s.slots[i].CPU.Reset()
		}
		if s.openRT != nil {
			s.openRT.Reset(cfg.Seed)
			cohort = s.openRT.Cohort
		}
	case cfg.Replay != nil:
		// Replay wrappers are cheap views over the immutable container;
		// rebuild them every run rather than teaching them to rewind.
		s.closed, s.openRT = nil, nil
		if s.slots, s.openSlots, cohort, err = cfg.buildStreams(policy, cpuNS); err != nil {
			return Result{}, err
		}
	default:
		if cohort, err = s.buildStreams(&cfg, policy, cpuNS); err != nil {
			return Result{}, err
		}
	}

	s.ecfg = engine.Config{
		Cores:           s.slots,
		Open:            s.openSlots,
		Ctrl:            ctrl,
		Policy:          policy,
		Geometry:        cfg.Geometry,
		Scheme:          scheme,
		Oracle:          oracle,
		Scrambler:       cfg.Scrambler,
		IgnoreScrambler: cfg.IgnoreScrambler,
		CPUPerBus:       cfg.CPUPerBus,
		IntervalCPU:     int64(cfg.IntervalNS / cpuNS),
		EpochCPU:        int64(cfg.EpochNS / cpuNS),
		CPUCycleNS:      cpuNS,
		BusCycleNS:      1000.0 / float64(cfg.Timing.BusMHz),
		Batch:           true,
		OnSample:        cfg.OnSample,
		Scratch:         &s.scratch,
	}
	if cohort != nil {
		s.ecfg.Attr = cohort
	}
	er, err := engine.RunInPlace(&s.ecfg)
	if err != nil {
		return Result{}, err
	}
	res, err := cfg.deriveResult(er, scheme.Counts(), scheme.Kind(), scheme.CountersPerBank(), ctrl.Stats(),
		ctx.schemeLabel(&cfg))
	if err != nil {
		return Result{}, err
	}
	if oracle != nil {
		res.OracleViolations = oracle.Violations()
		res.MissedVictimRows = oracle.MissedVictimRows()
		res.ExposedVictimRows = oracle.ExposedVictimRows()
		res.MissedVictimRate = oracle.MissedVictimRate()
	}
	if cohort != nil {
		if oracle != nil {
			res.Tenants = cohort.Stats(oracle)
		} else {
			res.Tenants = cohort.Stats(nil)
		}
	}
	s.prev = cfg
	s.built = true
	return res, nil
}

// buildStreams builds the sequential generated (non-replay) streams
// fresh, keeping the per-layer handles reseed needs, and returns the
// open-loop cohort (nil for pure closed-loop runs).
func (s *seqState) buildStreams(cfg *Config, policy addrmap.Policy, cpuNS float64) (*workload.Cohort, error) {
	s.closed = s.closed[:0]
	s.slots = s.slots[:0]
	for i := 0; i < cfg.Cores; i++ {
		core, err := cpu.NewCore(cfg.Window)
		if err != nil {
			return nil, err
		}
		cs, err := cfg.closedStream(policy, i)
		if err != nil {
			return nil, err
		}
		s.closed = append(s.closed, cs)
		s.slots = append(s.slots, engine.CoreSlot{CPU: core, Gen: cs.gen, Requests: cfg.RequestsPerCore})
	}
	s.openRT = nil
	s.openSlots = nil
	if cfg.OpenLoop == nil {
		return nil, nil
	}
	rt, err := cfg.openConfig().Build(cfg.Geometry, policy, 1/cpuNS, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.openRT = rt
	for i, src := range rt.Sources {
		s.openSlots = append(s.openSlots, engine.OpenSlot{Gen: src, Requests: rt.Counts[i]})
	}
	return rt.Cohort, nil
}

// shardPart is one channel partition's reusable stack.
type shardPart struct {
	ctrl    *memctrl.Controller
	scheme  mitigation.Scheme
	oracle  *mitigation.Oracle
	closed  []closedStream
	slots   []engine.CoreSlot
	scratch engine.Scratch
}

// shardState is the channel-partitioned engine's reusable state.
type shardState struct {
	built bool
	prev  Config

	policy addrmap.Policy
	parts  []shardPart
	ecfgs  []engine.Config
}

func (ctx *Context) runSharded(cfg Config) (Result, error) {
	sh := &ctx.sh
	prev := sh.prev
	was := sh.built
	sh.built = false

	reuse := was && sameStreamShape(&prev, &cfg) && sameSchemeShape(&prev, &cfg) &&
		prev.CheckProtection == cfg.CheckProtection
	if reuse {
		for p := range sh.parts {
			r, ok := sh.parts[p].scheme.(mitigation.Resettable)
			if !ok || !r.ResetRun(cfg.Scheme.runSeed(cfg.Seed)) {
				reuse = false
				break
			}
		}
	}

	var err error
	cpuNS := 1000.0 / (float64(cfg.Timing.BusMHz) * float64(cfg.CPUPerBus))
	thresholdTriggered := cfg.Scheme.Kind != mitigation.KindPRA && cfg.Scheme.Kind != mitigation.KindNone
	// SetVictimRowCycles clamps internally, so a scaled value of 0 is a
	// meaningful override (it becomes the 1-cycle floor) — track whether
	// scaling applies separately from the value.
	scaleVictim := cfg.ThresholdScale < 1 && thresholdTriggered
	scaledCycles := 0
	if scaleVictim {
		scaledCycles = int(float64(cfg.Timing.RowRefreshCycles())*cfg.ThresholdScale + 0.5)
	}

	if reuse {
		for p := range sh.parts {
			part := &sh.parts[p]
			part.ctrl.Reset()
			if scaleVictim {
				part.ctrl.SetVictimRowCycles(scaledCycles)
			}
			if part.oracle != nil {
				part.oracle.Reset()
			}
			for i := range part.closed {
				part.closed[i].reseed(cfg.Seed)
				part.slots[i].CPU.Reset()
			}
			// Per-run engine knobs the shape comparison does not pin.
			ec := &sh.ecfgs[p]
			ec.IntervalCPU = int64(cfg.IntervalNS / cpuNS)
			ec.EpochCPU = int64(cfg.EpochNS / cpuNS)
			ec.Scrambler = cfg.Scrambler
			ec.IgnoreScrambler = cfg.IgnoreScrambler
		}
	} else {
		if sh.policy, err = cachedPolicy(&cfg); err != nil {
			return Result{}, err
		}
		if err = sh.build(&cfg, cpuNS, scaleVictim, scaledCycles); err != nil {
			return Result{}, err
		}
	}

	workers := cfg.Shards
	if workers > len(sh.ecfgs) {
		workers = len(sh.ecfgs)
	}
	er, err := engine.RunSharded(sh.ecfgs, workers)
	if err != nil {
		return Result{}, err
	}
	if cfg.OnSample != nil {
		for _, smp := range er.Samples {
			cfg.OnSample(smp)
		}
	}

	var stats memctrl.Stats
	var counts mitigation.Counts
	for p := range sh.parts {
		stats = stats.Add(sh.parts[p].ctrl.Stats())
		counts = counts.Add(sh.parts[p].scheme.Counts())
	}
	first := sh.parts[0].scheme
	res, err := cfg.deriveResult(er, counts, first.Kind(), first.CountersPerBank(), stats,
		ctx.schemeLabel(&cfg))
	if err != nil {
		return Result{}, err
	}
	if cfg.CheckProtection && cfg.Scheme.Kind != mitigation.KindNone {
		var missed, exposed int64
		for p := range sh.parts {
			o := sh.parts[p].oracle
			res.OracleViolations += o.Violations()
			missed += o.MissedVictimRows()
			exposed += o.ExposedVictimRows()
		}
		res.MissedVictimRows, res.ExposedVictimRows = missed, exposed
		if exposed > 0 {
			res.MissedVictimRate = float64(missed) / float64(exposed)
		}
	}
	sh.prev = cfg
	sh.built = true
	return res, nil
}

// build constructs the per-channel partition stacks fresh, mirroring
// runSharded's construction exactly (cores assigned channel ch = index
// mod Channels; channels with no cores are skipped).
func (sh *shardState) build(cfg *Config, cpuNS float64, scaleVictim bool, scaledCycles int) error {
	banks := cfg.Geometry.TotalBanks()
	sh.parts = sh.parts[:0]
	sh.ecfgs = sh.ecfgs[:0]
	for ch := 0; ch < cfg.Geometry.Channels; ch++ {
		var part shardPart
		for i := ch; i < cfg.Cores; i += cfg.Geometry.Channels {
			core, err := cpu.NewCore(cfg.Window)
			if err != nil {
				return err
			}
			cs, err := cfg.closedStream(sh.policy, i)
			if err != nil {
				return err
			}
			part.closed = append(part.closed, cs)
			part.slots = append(part.slots, engine.CoreSlot{CPU: core, Gen: cs.gen, Requests: cfg.RequestsPerCore})
		}
		if len(part.slots) == 0 {
			continue
		}
		ctrl, err := memctrl.New(cfg.Geometry, cfg.Timing)
		if err != nil {
			return err
		}
		scheme, err := cfg.Scheme.Build(banks, cfg.Geometry.RowsPerBank, cfg.Threshold, cfg.Seed)
		if err != nil {
			return err
		}
		if scaleVictim {
			ctrl.SetVictimRowCycles(scaledCycles)
		}
		part.ctrl, part.scheme = ctrl, scheme
		if cfg.CheckProtection && scheme.Kind() != mitigation.KindNone {
			part.oracle = mitigation.NewOracle(banks, cfg.Geometry.RowsPerBank, cfg.Threshold)
		}
		sh.parts = append(sh.parts, part)
		sh.ecfgs = append(sh.ecfgs, engine.Config{
			Cores:           part.slots,
			Ctrl:            ctrl,
			Policy:          sh.policy,
			Geometry:        cfg.Geometry,
			Scheme:          scheme,
			Oracle:          part.oracle,
			Scrambler:       cfg.Scrambler,
			IgnoreScrambler: cfg.IgnoreScrambler,
			CPUPerBus:       cfg.CPUPerBus,
			IntervalCPU:     int64(cfg.IntervalNS / cpuNS),
			EpochCPU:        int64(cfg.EpochNS / cpuNS),
			CPUCycleNS:      cpuNS,
			BusCycleNS:      1000.0 / float64(cfg.Timing.BusMHz),
			Batch:           true,
			Channels:        &engine.ChannelRange{Lo: ch, Hi: ch + 1},
		})
	}
	// Scratch pointers must be taken after the slice stops growing.
	for p := range sh.parts {
		sh.ecfgs[p].Scratch = &sh.parts[p].scratch
	}
	return nil
}
