package sim

import (
	"strconv"
	"strings"
	"testing"

	"catsim/internal/mitigation"
)

func TestGridSpecToRegistrySpec(t *testing.T) {
	grid := SchemeSpec{Kind: mitigation.KindCoMeT, Counters: 512, Ways: 4}
	ms := grid.Spec(32768, 9)
	if ms.Kind != mitigation.KindCoMeT || ms.Threshold != 32768 {
		t.Fatalf("spec = %+v", ms)
	}
	if ms.Params["counters"] != "512" || ms.Params["depth"] != "4" {
		t.Errorf("params = %v", ms.Params)
	}
	// The run seed is mixed with the family constant, matching the
	// historical per-scheme PRNG streams.
	if want := strconv.FormatUint(9^uint64(cometSeedMix), 10); ms.Params["seed"] != want {
		t.Errorf("seed param = %s, want %s", ms.Params["seed"], want)
	}
	// A user-pinned seed passes through verbatim.
	grid.SpecSeed = 7
	if got := grid.Spec(32768, 9).Params["seed"]; got != "7" {
		t.Errorf("pinned seed = %s, want 7", got)
	}
}

func TestFromSpecMapsParams(t *testing.T) {
	ms, err := mitigation.ParseSpec("comet:counters=512,depth=4,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	grid, err := FromSpec(ms)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Kind != mitigation.KindCoMeT || grid.Counters != 512 || grid.Ways != 4 || grid.SpecSeed != 7 {
		t.Fatalf("grid = %+v", grid)
	}
	// CAT specs default the tree depth like the CLI always has.
	ms, err = mitigation.ParseSpec("drcat:counters=64")
	if err != nil {
		t.Fatal(err)
	}
	if grid, err = FromSpec(ms); err != nil || grid.MaxLevels != 11 {
		t.Fatalf("grid = %+v, err %v", grid, err)
	}
}

func TestFromSpecRejectsZeroSeedPin(t *testing.T) {
	ms, err := mitigation.ParseSpec("comet:counters=512,seed=0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSpec(ms); err == nil ||
		!strings.Contains(err.Error(), "pinned seed must be nonzero") {
		t.Errorf("seed=0 pin should be rejected, got %v", err)
	}
}

func TestFromSpecRejectsAblationKnobs(t *testing.T) {
	ms, err := mitigation.ParseSpec("drcat:counters=64,weightbits=3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromSpec(ms); err == nil ||
		!strings.Contains(err.Error(), "not supported in experiment grids") {
		t.Errorf("err = %v", err)
	}
}
