package sim

import (
	"reflect"
	"strings"
	"testing"

	"catsim/internal/cpu"
	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

func keyConfig(t *testing.T) Config {
	t.Helper()
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Cores: 2, RequestsPerCore: 10_000, Workload: wl,
		Scheme:    SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold: 1024, ThresholdScale: 0.03, IntervalNS: 2e6, Seed: 5,
	}
}

func TestCacheKeyNormalisesDefaults(t *testing.T) {
	a := keyConfig(t)
	b := keyConfig(t)
	b.Window = cpu.DefaultWindow
	b.CPUPerBus = cpu.DefaultCPUCyclesPerBusCycle
	if CacheKey(a) != CacheKey(b) {
		t.Error("explicit defaults must hash like zero values")
	}
}

func TestCacheKeySeparatesRuns(t *testing.T) {
	base := keyConfig(t)
	mutate := []func(*Config){
		func(c *Config) { c.Seed++ },
		func(c *Config) { c.Threshold *= 2 },
		func(c *Config) { c.RequestsPerCore++ },
		func(c *Config) { c.Cores = 4 },
		func(c *Config) { c.Scheme.Counters = 128 },
		func(c *Config) { c.Scheme.Kind = mitigation.KindPRCAT },
		func(c *Config) { c.Scheme = SchemeSpec{Kind: mitigation.KindNone} },
		func(c *Config) { c.ChannelInterleaved = true },
		func(c *Config) { c.IntervalNS = 4e6 },
		func(c *Config) { c.ThresholdScale = 0.5 },
		func(c *Config) { c.CheckProtection = true },
		func(c *Config) { c.Attack = &AttackConfig{Kernel: 3, Mode: trace.Heavy} },
		func(c *Config) {
			c.Attack = &AttackConfig{Kernel: 3, Mode: trace.Heavy}
			c.AttackOnsetFrac = 0.5
		},
		func(c *Config) { c.EpochNS = 1e6 },
		func(c *Config) {
			wl, _ := trace.Lookup("comm1")
			c.Workload = wl
		},
		func(c *Config) {
			ol, _ := workload.Lookup("ol-poisson")
			c.OpenLoop = &ol
		},
		func(c *Config) {
			ol, _ := workload.Lookup("ol-poisson")
			ol.Requests = 777
			c.OpenLoop = &ol
		},
		func(c *Config) {
			ol, _ := workload.Lookup("ol-bursty")
			c.OpenLoop = &ol
		},
		func(c *Config) { c.Replay = keyContainer(1) },
		func(c *Config) { c.Replay = keyContainer(2) },
		func(c *Config) { c.ChannelAffine = true },
		func(c *Config) { c.ChannelAffine = true; c.Shards = 1 },
	}
	seen := map[string]int{CacheKey(base): -1}
	for i, m := range mutate {
		c := base
		m(&c)
		k := CacheKey(c)
		if j, dup := seen[k]; dup {
			t.Errorf("mutation %d collides with %d: %s", i, j, k)
		}
		seen[k] = i
	}
}

func TestCacheKeyLabelsScheme(t *testing.T) {
	cfg := keyConfig(t)
	if k := CacheKey(cfg); !strings.HasPrefix(k, "DRCAT_64|") {
		t.Errorf("key %q should start with the scheme label", k)
	}
	cfg.Scheme = SchemeSpec{Kind: mitigation.KindNone}
	if k := CacheKey(cfg); !strings.HasPrefix(k, "None|") {
		t.Errorf("baseline key %q should start with None|", k)
	}
}

// keyContainer builds a tiny replay container whose content varies with
// addr, so distinct captures produce distinct digests.
func keyContainer(addr int64) *trace.Container {
	return &trace.Container{
		Geometry: dram.Default2Channel(),
		Streams: []trace.Stream{
			{Name: "core0", Reqs: []trace.Request{{Addr: addr, Gap: 1}}},
		},
	}
}

// TestCacheKeyCoversConfig pins the Config field set. If this fails you
// added a Config field: teach CacheKey about it (or deliberately exclude
// it, like OnSample) and update the count here.
func TestCacheKeyCoversConfig(t *testing.T) {
	if n := reflect.TypeOf(Config{}).NumField(); n != 25 {
		t.Errorf("Config has %d fields, CacheKey was written against 25", n)
	}
}

// TestCacheKeyShardCountInvariant: Shards is keyed as a semantic bit, not
// a count — every Shards >= 1 value returns the identical Result, so all
// of them must share one cache entry (and differ from the sequential
// engine's).
func TestCacheKeyShardCountInvariant(t *testing.T) {
	seq := keyConfig(t)
	seq.ChannelAffine = true
	s1, s8 := seq, seq
	s1.Shards = 1
	s8.Shards = 8
	if CacheKey(s1) != CacheKey(s8) {
		t.Error("shards=1 and shards=8 must share a cache entry")
	}
	if CacheKey(seq) == CacheKey(s1) {
		t.Error("sequential and sharded runs must not share a cache entry")
	}
}

// TestCacheKeyHasNoPointerIdentity: the open-loop and replay segments must
// hash content, never pointer addresses — two identical configs built
// separately must share a key.
func TestCacheKeyHasNoPointerIdentity(t *testing.T) {
	mk := func() Config {
		c := keyConfig(t)
		ol, err := workload.Lookup("ol-mixed-attack")
		if err != nil {
			t.Fatal(err)
		}
		c.OpenLoop = &ol
		return c
	}
	a, b := CacheKey(mk()), CacheKey(mk())
	if a != b {
		t.Errorf("identical configs hash differently:\n%s\n%s", a, b)
	}
	if strings.Contains(a, "0x") {
		t.Errorf("key %q leaks a pointer", a)
	}
}
