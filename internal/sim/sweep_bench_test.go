package sim

import (
	"testing"

	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// BenchmarkSweep measures sweep throughput — the many-runs-one-cell shape
// behind every seed sweep and runner grid. Each iteration is one full
// 256-seed sweep of a single cell; runs/sec and allocs/run are the
// headline metrics. "fresh" is the historical path (a full component
// stack built per run), "reuse" is the run-context path (one Context
// rewound per seed) — the two produce byte-identical Results (locked by
// TestContextReuseByteIdentical), so the delta is pure setup cost.
func BenchmarkSweep(b *testing.B) {
	wl, err := trace.Lookup("black")
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Cores:           2,
		RequestsPerCore: 500,
		Workload:        wl,
		Scheme:          SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold:       64,
		Seed:            1,
		CheckProtection: true,
	}
	const seeds = 256
	report := func(b *testing.B, runs int64) {
		b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/sec")
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for seed := uint64(1); seed <= seeds; seed++ {
				c := cfg
				c.Seed = seed
				if _, err := Run(c); err != nil {
					b.Fatal(err)
				}
			}
		}
		report(b, int64(b.N)*seeds)
	})
	b.Run("reuse", func(b *testing.B) {
		ctx := NewContext()
		// Warm outside the window so steady-state allocs/run is the
		// number reported (slab growth happens on the first runs).
		c := cfg
		if _, err := ctx.Run(c); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for seed := uint64(1); seed <= seeds; seed++ {
				c.Seed = seed
				if _, err := ctx.Run(c); err != nil {
					b.Fatal(err)
				}
			}
		}
		report(b, int64(b.N)*seeds)
	})
}
