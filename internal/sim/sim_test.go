package sim

import (
	"math"
	"testing"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/trace"
)

// smallCfg returns a fast configuration for tests: small bank, reduced
// threshold, short run. The interval is scaled in proportion.
func smallCfg(spec SchemeSpec) Config {
	wl, _ := trace.Lookup("comm1")
	return Config{
		Cores:           2,
		RequestsPerCore: 60_000,
		Workload:        wl,
		Scheme:          spec,
		Threshold:       2048,  // a 16K hardware threshold scaled by 1/8
		ThresholdScale:  0.125, // keeps refresh stall/power rates representative
		IntervalNS:      2e6,   // 2 ms
		Seed:            42,
	}
}

func TestRunBaselineNoMitigation(t *testing.T) {
	res, err := Run(smallCfg(SchemeSpec{Kind: mitigation.KindNone}))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecNS <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if res.Counts.Activations != 120_000 {
		t.Errorf("activations = %d, want 120000", res.Counts.Activations)
	}
	if res.CMRPO != 0 {
		t.Errorf("baseline CMRPO = %v, want 0", res.CMRPO)
	}
	if res.AvgReadLatencyNS < 30 {
		t.Errorf("avg read latency %v ns implausibly low", res.AvgReadLatencyNS)
	}
	var total int64
	for _, a := range res.PerBankActs {
		total += a
	}
	if total != 120_000 {
		t.Errorf("per-bank activations sum %d", total)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := smallCfg(SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecNS != b.ExecNS || a.Counts != b.Counts {
		t.Error("identical configs produced different results")
	}
}

func TestRunPairETONonNegativeAndSmall(t *testing.T) {
	for _, spec := range []SchemeSpec{
		{Kind: mitigation.KindSCA, Counters: 64},
		{Kind: mitigation.KindPRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindPRA},
	} {
		pr, err := RunPair(smallCfg(spec))
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		// Refresh-debt draining can shift auto-refresh alignment by up to
		// one tRFC relative to the baseline, so tiny negative ETO is noise.
		if pr.ETO < -0.005 {
			t.Errorf("%s: ETO = %v, clearly negative", pr.Scheme.SchemeLabel, pr.ETO)
		}
		if pr.ETO > 0.25 {
			t.Errorf("%s: ETO = %v, implausibly large", pr.Scheme.SchemeLabel, pr.ETO)
		}
		if pr.Scheme.Counts.Activations != pr.Baseline.Counts.Activations {
			t.Errorf("%s: paired runs saw different work", pr.Scheme.SchemeLabel)
		}
	}
}

func TestRunProtectionHoldsInFullSystem(t *testing.T) {
	// End-to-end protection: the oracle must observe zero violations for
	// the deterministic schemes inside the full timing simulation.
	for _, spec := range []SchemeSpec{
		{Kind: mitigation.KindSCA, Counters: 64},
		{Kind: mitigation.KindPRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
	} {
		cfg := smallCfg(spec)
		cfg.CheckProtection = true
		cfg.Threshold = 512 // tight threshold to stress triggers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.OracleViolations != 0 {
			t.Errorf("%s: %d protection violations", res.SchemeLabel, res.OracleViolations)
		}
	}
}

func TestSchemesProduceSensibleOrdering(t *testing.T) {
	// With a hot workload and a small threshold, coarse SCA must refresh
	// far more rows than the adaptive tree (the paper's core result).
	run := func(spec SchemeSpec) mitigation.Counts {
		cfg := smallCfg(spec)
		cfg.Workload, _ = trace.Lookup("black")
		cfg.RequestsPerCore = 150_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counts
	}
	sca := run(SchemeSpec{Kind: mitigation.KindSCA, Counters: 64})
	drcat := run(SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11})
	if sca.RowsRefreshed == 0 {
		t.Fatal("SCA refreshed nothing; workload not hot enough for the test")
	}
	if drcat.RowsRefreshed >= sca.RowsRefreshed {
		t.Errorf("DRCAT refreshed %d rows, SCA %d; tree should be far finer",
			drcat.RowsRefreshed, sca.RowsRefreshed)
	}
}

func TestAttackBlending(t *testing.T) {
	cfg := smallCfg(SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11})
	cfg.Attack = &AttackConfig{Kernel: 2, Mode: trace.Heavy}
	cfg.Threshold = 512 // 75% of traffic over 64 targets: ~1.4K activations each
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Activations != 120_000 {
		t.Errorf("activations = %d", res.Counts.Activations)
	}
	// Heavy attacks concentrate traffic: the hottest bank should hold far
	// more than 1/16 of accesses... targets are spread over banks, but
	// rows within banks are few; check refreshes were triggered.
	if res.Counts.RowsRefreshed == 0 {
		t.Error("heavy attack triggered no victim refreshes")
	}
}

func TestQuadCoreGeometry(t *testing.T) {
	cfg := smallCfg(SchemeSpec{Kind: mitigation.KindSCA, Counters: 128})
	cfg.Geometry = dram.QuadCore2Channel()
	cfg.Cores = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Activations != 4*60_000 {
		t.Errorf("activations = %d", res.Counts.Activations)
	}
}

func TestChannelInterleavedSpreadsTraffic(t *testing.T) {
	base := smallCfg(SchemeSpec{Kind: mitigation.KindNone})
	base.Workload, _ = trace.Lookup("black")
	spread := base
	spread.Geometry = dram.Default4Channel()
	spread.ChannelInterleaved = true

	gini := func(acts []int64) float64 {
		var total int64
		var max int64
		for _, a := range acts {
			total += a
			if a > max {
				max = a
			}
		}
		if total == 0 {
			return 0
		}
		return float64(max) / float64(total)
	}
	r1, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spread)
	if err != nil {
		t.Fatal(err)
	}
	if gini(r2.PerBankActs) >= gini(r1.PerBankActs) {
		t.Errorf("channel interleaving did not spread load: max-share %.3f vs %.3f",
			gini(r2.PerBankActs), gini(r1.PerBankActs))
	}
}

func TestSchemeSpecLabels(t *testing.T) {
	cases := map[string]SchemeSpec{
		"None":      {Kind: mitigation.KindNone},
		"SCA_128":   {Kind: mitigation.KindSCA, Counters: 128},
		"PRCAT_64":  {Kind: mitigation.KindPRCAT, Counters: 64},
		"DRCAT_64":  {Kind: mitigation.KindDRCAT, Counters: 64},
		"PRA_0.003": {Kind: mitigation.KindPRA},
		"CC_2048":   {Kind: mitigation.KindCounterCache, Counters: 2048},
	}
	for want, spec := range cases {
		if got := spec.Label(16384); got != want {
			t.Errorf("label = %q, want %q", got, want)
		}
	}
	if got := (SchemeSpec{Kind: mitigation.KindPRA, PRAProb: 0.005}).Label(16384); got != "PRA_0.005" {
		t.Errorf("explicit PRA label = %q", got)
	}
}

func TestWorkloadPerCoreMix(t *testing.T) {
	// Multi-programmed mixes (MSC methodology): each core runs a different
	// trace; the run must consume both and count all activations.
	black, _ := trace.Lookup("black")
	libq, _ := trace.Lookup("libq")
	cfg := smallCfg(SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11})
	cfg.WorkloadPerCore = []trace.Spec{black, libq}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Activations != 120_000 {
		t.Errorf("activations = %d", res.Counts.Activations)
	}
	// Mismatched count must be rejected.
	cfg.WorkloadPerCore = []trace.Spec{black}
	if _, err := Run(cfg); err == nil {
		t.Error("expected per-core workload count error")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallCfg(SchemeSpec{Kind: mitigation.KindNone})
	cfg.Cores = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected cores error")
	}
	cfg = smallCfg(SchemeSpec{Kind: mitigation.KindNone})
	cfg.RequestsPerCore = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected requests error")
	}
	cfg = smallCfg(SchemeSpec{Kind: mitigation.KindNone})
	cfg.Threshold = 0
	if _, err := Run(cfg); err == nil {
		t.Error("expected threshold error")
	}
}

func TestCMRPOBreakdownConsistency(t *testing.T) {
	cfg := smallCfg(SchemeSpec{Kind: mitigation.KindSCA, Counters: 64})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Breakdown.DynamicMW + res.Breakdown.StaticMW + res.Breakdown.RefreshMW +
		res.Breakdown.PRNGMW + res.Breakdown.MissMW
	if math.Abs(sum-res.Breakdown.TotalMW()) > 1e-12 {
		t.Error("breakdown does not sum")
	}
	if res.CMRPO <= 0 {
		t.Error("SCA CMRPO must be positive (static floor)")
	}
}
