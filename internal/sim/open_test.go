package sim

import (
	"bytes"
	"reflect"
	"testing"

	"catsim/internal/mitigation"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

// openConfigFor builds a mixed closed+open run: two cores of a synthetic
// workload plus a bursty multi-tenant cohort with an embedded attacker.
func openConfigFor(t *testing.T, cores int) Config {
	t.Helper()
	wl, err := trace.Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	ol, err := workload.Lookup("ol-mixed-attack")
	if err != nil {
		t.Fatal(err)
	}
	ol.Requests = 6000
	// A hotter attacker and a low threshold so this small run produces
	// victim-refresh traffic to attribute.
	ol.Cohort.Attacker.Fraction = 0.3
	cfg := Config{
		Cores: cores, RequestsPerCore: 3000, Workload: wl,
		OpenLoop:  &ol,
		Scheme:    SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		Threshold: 16, Seed: 11,
	}
	if cores == 0 {
		cfg.RequestsPerCore = 0
	}
	return cfg
}

func TestOpenLoopRunAttributesTenants(t *testing.T) {
	for _, cores := range []int{0, 2} {
		cfg := openConfigFor(t, cores)
		cfg.CheckProtection = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		wantParties := cfg.OpenLoop.Cohort.Tenants + 1 // attacker rides along
		if len(res.Tenants) != wantParties {
			t.Fatalf("cores=%d: %d tenant stats, want %d", cores, len(res.Tenants), wantParties)
		}
		last := res.Tenants[len(res.Tenants)-1]
		if !last.Attacker {
			t.Error("last tenant stat should be the attacker")
		}
		var acts, refreshed int64
		for _, ts := range res.Tenants {
			acts += ts.Acts
			refreshed += ts.RowsRefreshed
		}
		if acts == 0 {
			t.Errorf("cores=%d: no activations attributed", cores)
		}
		if refreshed == 0 {
			t.Errorf("cores=%d: no refresh rows attributed at threshold %d", cores, cfg.Threshold)
		}
	}
}

// TestCaptureReplayByteIdentical is the pipeline's core guarantee: a
// captured run, replayed from the container — including a round trip
// through the on-disk v1 encoding — reproduces the live Result exactly,
// per-tenant attribution included.
func TestCaptureReplayByteIdentical(t *testing.T) {
	for _, cores := range []int{0, 2} {
		cfg := openConfigFor(t, cores)
		cfg.CheckProtection = true
		live, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cont, err := Capture(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteContainer(&buf, cont); err != nil {
			t.Fatal(err)
		}
		parsed, err := trace.ReadContainer(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		rcfg := Config{
			Replay:          parsed,
			OpenLoop:        cfg.OpenLoop,
			Scheme:          cfg.Scheme,
			Threshold:       cfg.Threshold,
			Seed:            cfg.Seed,
			CheckProtection: cfg.CheckProtection,
		}
		replayed, err := Run(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, replayed) {
			t.Errorf("cores=%d: replay diverges from the live run\nlive:   %+v\nreplay: %+v",
				cores, live, replayed)
		}
	}
}

// TestCaptureReplayAnyScheme: one capture serves every scheme spec — the
// streams do not depend on the scheme, so replaying the same container
// under a different scheme matches that scheme's live run.
func TestCaptureReplayAnyScheme(t *testing.T) {
	cfg := openConfigFor(t, 1)
	cont, err := Capture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []SchemeSpec{
		{Kind: mitigation.KindNone},
		{Kind: mitigation.KindSCA, Counters: 16},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
	} {
		lcfg := cfg
		lcfg.Scheme = scheme
		live, err := Run(lcfg)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := Run(Config{
			Replay: cont, OpenLoop: cfg.OpenLoop,
			Scheme: scheme, Threshold: cfg.Threshold, Seed: cfg.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, replayed) {
			t.Errorf("%s: replay diverges from the live run", live.SchemeLabel)
		}
	}
}

// TestCaptureStreamShape: the container carries one closed stream per core
// (named, gap-timed) and one open stream per source (arrival-timed,
// non-decreasing), with the configured budgets.
func TestCaptureStreamShape(t *testing.T) {
	cfg := openConfigFor(t, 2)
	cont, err := Capture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cont.Streams) != 4 {
		t.Fatalf("%d streams, want 2 closed + 2 open", len(cont.Streams))
	}
	total := 0
	for i, s := range cont.Streams {
		if s.Open != (i >= 2) {
			t.Errorf("stream %d (%s): open=%t out of order", i, s.Name, s.Open)
		}
		if s.Open {
			total += len(s.Reqs)
		} else if len(s.Reqs) != cfg.RequestsPerCore {
			t.Errorf("closed stream %d holds %d requests, want %d", i, len(s.Reqs), cfg.RequestsPerCore)
		}
	}
	if total != cfg.OpenLoop.Requests {
		t.Errorf("open streams hold %d requests, want %d", total, cfg.OpenLoop.Requests)
	}
	if cont.Geometry != cfg.Geometry {
		// cfg.Geometry is zero here; Capture fills the default.
		if cont.Geometry.Channels == 0 {
			t.Error("capture did not record the geometry")
		}
	}
}

func TestReplayValidation(t *testing.T) {
	cfg := openConfigFor(t, 1)
	cont, err := Capture(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := Config{Replay: cont, Cores: 1, RequestsPerCore: 100,
		Scheme: SchemeSpec{Kind: mitigation.KindNone}, Threshold: 128}
	if _, err := Run(bad); err == nil {
		t.Error("replay with closed-loop cores configured should fail")
	}
	mismatched := Config{Replay: cont, Threshold: 128,
		Scheme: SchemeSpec{Kind: mitigation.KindNone}}
	mismatched.Geometry = cont.Geometry
	mismatched.Geometry.Channels *= 2
	if _, err := Run(mismatched); err == nil {
		t.Error("replay with a mismatched geometry should fail")
	}
	if _, err := Capture(Config{Replay: cont, Threshold: 128}); err == nil {
		t.Error("capturing a replay config should fail")
	}
}
