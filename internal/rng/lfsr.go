package rng

// LFSR16 is a 16-bit Fibonacci linear-feedback shift register with the
// maximal-length polynomial x^16 + x^14 + x^13 + x^11 + 1 (taps 16,14,13,11),
// period 2^16-1. The paper's Monte-Carlo study (§III-A) uses an LFSR-based
// PRNG [40, 41] to show that cheap hardware randomness is insufficient for
// PRA: successive outputs are strongly correlated, so the per-access refresh
// decisions are not independent and Eq. 1 no longer bounds unsurvivability.
type LFSR16 struct {
	state uint16
}

// NewLFSR16 returns an LFSR seeded with seed; a zero seed (the lock-up state)
// is replaced with 0xACE1, the conventional non-zero default.
func NewLFSR16(seed uint16) *LFSR16 {
	if seed == 0 {
		seed = 0xACE1
	}
	return &LFSR16{state: seed}
}

// Step advances the register one bit and returns the output bit.
func (l *LFSR16) Step() uint64 {
	bit := (l.state ^ (l.state >> 2) ^ (l.state >> 3) ^ (l.state >> 5)) & 1
	l.state = l.state>>1 | bit<<15
	return uint64(bit)
}

// Uint64 assembles a 64-bit value from 64 LFSR steps. The value is
// deterministic and, unlike the high-quality sources, exhibits the strong
// serial correlation that breaks PRA (consecutive values share 63 state bits).
func (l *LFSR16) Uint64() uint64 {
	var v uint64
	for i := 0; i < 64; i++ {
		v = v<<1 | l.Step()
	}
	return v
}

// State exposes the current register contents for tests.
func (l *LFSR16) State() uint16 { return l.state }

// FibLFSR is a Fibonacci LFSR with an arbitrary feedback polynomial over a
// state of the given width: on each step the feedback bit is the parity of
// (state & mask) and is shifted in at the top; the bit shifted out at the
// bottom is the output. It lets the reliability study compare a maximal
// polynomial against the cheap, non-maximal ones (short cycles) that break
// PRA's independence assumption.
type FibLFSR struct {
	state uint32
	mask  uint32
	width uint
}

// NewFibLFSR builds an LFSR of the given width (2..32) and feedback mask.
// A zero seed is replaced with 1 to avoid the lock-up state.
func NewFibLFSR(width uint, mask, seed uint32) *FibLFSR {
	if width < 2 || width > 32 {
		panic("rng: FibLFSR width out of range")
	}
	seed &= uint32(1)<<width - 1
	if seed == 0 {
		seed = 1
	}
	return &FibLFSR{state: seed, mask: mask, width: width}
}

// Feedback masks for 16-bit FibLFSRs.
const (
	// MaximalMask16 implements x^16 + x^5 + x^3 + x^2 + 1... see tests; use
	// the classic taps 16,14,13,11 expressed on the shifted-out bit and its
	// neighbours: parity of bits 0, 2, 3, 5.
	MaximalMask16 uint32 = 0x002D
	// WeakMask16 implements x^16 + x^8 + 1 = (x^2+x+1)^8, a cheap two-tap
	// polynomial whose state space splits into cycles of length at most 24;
	// most seeds give a 9-bit output stream with period 8 draws.
	WeakMask16 uint32 = 0x0101
)

// Step advances one bit and returns the output bit (the bit shifted out).
func (l *FibLFSR) Step() uint64 {
	out := uint64(l.state & 1)
	fb := parity32(l.state & l.mask)
	l.state = l.state>>1 | fb<<(l.width-1)
	return out
}

// Uint64 assembles 64 output bits.
func (l *FibLFSR) Uint64() uint64 {
	var v uint64
	for i := 0; i < 64; i++ {
		v = v<<1 | l.Step()
	}
	return v
}

// State exposes the register contents for tests.
func (l *FibLFSR) State() uint32 { return l.state }

func parity32(v uint32) uint32 {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// LFSR32 is the 32-bit variant with taps 32,22,2,1 (maximal length).
type LFSR32 struct {
	state uint32
}

// NewLFSR32 returns an LFSR seeded with seed; zero is replaced with
// 0xACE1ACE1 to avoid the lock-up state.
func NewLFSR32(seed uint32) *LFSR32 {
	if seed == 0 {
		seed = 0xACE1ACE1
	}
	return &LFSR32{state: seed}
}

// Step advances the register one bit and returns the output bit.
func (l *LFSR32) Step() uint64 {
	bit := (l.state ^ (l.state >> 10) ^ (l.state >> 30) ^ (l.state >> 31)) & 1
	l.state = l.state>>1 | bit<<31
	return uint64(bit)
}

// Uint64 assembles a 64-bit value from 64 LFSR steps.
func (l *LFSR32) Uint64() uint64 {
	var v uint64
	for i := 0; i < 64; i++ {
		v = v<<1 | l.Step()
	}
	return v
}
