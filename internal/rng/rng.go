// Package rng provides the deterministic random-number sources used by the
// simulator and by the PRA (Probabilistic Row Activation) mitigation scheme.
//
// Two families are provided:
//
//   - High-quality generators (SplitMix64, Xoshiro256**) that stand in for
//     the "true" hardware PRNG of Srinivasan et al. [25] assumed by PRA's
//     reliability analysis (paper §III-A, Fig. 1).
//
//   - Fibonacci LFSRs (16- and 32-bit), the cheap hardware alternative whose
//     insufficient randomness the paper's Monte-Carlo study shows to destroy
//     PRA's survivability guarantees.
//
// All sources are seeded explicitly and never touch global state, so every
// simulation in this repository is reproducible bit for bit.
package rng

import "math"

// Source is a deterministic stream of random 64-bit values. It is a
// deliberately small interface so that mitigation schemes can swap hardware
// PRNG models without caring about the implementation.
type Source interface {
	// Uint64 returns the next value in the stream.
	Uint64() uint64
}

// Bits returns the low n bits of the next value from src. PRA draws 9 bits
// per row activation (paper Table II); reliability studies draw other widths.
func Bits(src Source, n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n >= 64 {
		return src.Uint64()
	}
	return src.Uint64() & ((1 << n) - 1)
}

// Float64 returns a uniform value in [0, 1) using 53 bits from src.
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func Intn(src Source, n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	return int(src.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1 using the polar Box-Muller transform. Workload hot spots and
// the kernel-attack target-row selection (paper §VIII-D, Gaussian
// distribution of target rows) are built on it.
func NormFloat64(src Source) float64 {
	for {
		u := 2*Float64(src) - 1
		v := 2*Float64(src) - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}
