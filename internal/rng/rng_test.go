package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the canonical C implementation.
	s := NewSplitMix64(1234567)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	// 6457827717110365317, 3203168211198807973, 9817491932198370423
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d: got %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestSplitMix64Determinism(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestXoshiroDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := NewXoshiro256(1), NewXoshiro256(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values out of 100", same)
	}
}

func TestXoshiroUniformity(t *testing.T) {
	// Coarse uniformity: bucket the top 3 bits over many draws.
	x := NewXoshiro256(99)
	const draws = 1 << 16
	var buckets [8]int
	for i := 0; i < draws; i++ {
		buckets[x.Uint64()>>61]++
	}
	want := draws / 8
	for i, n := range buckets {
		if math.Abs(float64(n-want)) > float64(want)/10 {
			t.Errorf("bucket %d has %d values, want about %d", i, n, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro256(7)
	for i := 0; i < 10000; i++ {
		f := Float64(x)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	x := NewSplitMix64(3)
	for _, n := range []int{1, 2, 7, 100, 65536} {
		for i := 0; i < 100; i++ {
			v := Intn(x, n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	Intn(NewSplitMix64(1), 0)
}

func TestBitsWidth(t *testing.T) {
	x := NewSplitMix64(11)
	for _, n := range []uint{1, 8, 9, 16, 32, 63} {
		for i := 0; i < 50; i++ {
			v := Bits(x, n)
			if v >= 1<<n {
				t.Fatalf("Bits(%d) = %#x exceeds width", n, v)
			}
		}
	}
	if Bits(x, 0) != 0 {
		t.Error("Bits(0) should be 0")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := NewXoshiro256(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := NormFloat64(x)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want about 1", variance)
	}
}

func TestLFSR16Period(t *testing.T) {
	// Maximal-length 16-bit LFSR must return to its seed state after
	// exactly 2^16-1 steps and never hit zero.
	l := NewLFSR16(0xACE1)
	start := l.State()
	steps := 0
	for {
		l.Step()
		steps++
		if l.State() == 0 {
			t.Fatal("LFSR entered lock-up state")
		}
		if l.State() == start {
			break
		}
		if steps > 1<<16 {
			t.Fatal("LFSR period exceeds 2^16; polynomial not maximal")
		}
	}
	if steps != 1<<16-1 {
		t.Errorf("period = %d, want %d", steps, 1<<16-1)
	}
}

func TestLFSRZeroSeedReplaced(t *testing.T) {
	if NewLFSR16(0).State() == 0 {
		t.Error("zero seed must be replaced")
	}
	l := NewLFSR32(0)
	// Stepping from the lock-up state would stay at zero forever.
	l.Step()
	v := l.Uint64()
	_ = v
}

func TestLFSRSerialCorrelation(t *testing.T) {
	// The property the paper's Monte-Carlo study exploits: consecutive
	// 9-bit draws from an LFSR are far from independent. Quantify by
	// comparing the number of distinct values in a short window against
	// the high-quality source.
	lf := NewLFSR16(0xBEEF)
	window := 1 << 13
	seen := make(map[uint64]bool)
	for i := 0; i < window; i++ {
		seen[Bits(lf, 9)] = true
	}
	// A 16-bit LFSR walks a fixed cycle; 9-bit projections over a window
	// shorter than the period cannot cover the space as uniformly as an
	// ideal source, but they should still produce many values. This test
	// pins the qualitative behaviour without over-constraining it.
	if len(seen) == 0 || len(seen) > 512 {
		t.Fatalf("unexpected distinct count %d", len(seen))
	}
}

func TestQuickBitsAlwaysInRange(t *testing.T) {
	f := func(seed uint64, width uint8) bool {
		w := uint(width%63) + 1
		v := Bits(NewSplitMix64(seed), w)
		return v < 1<<w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLFSR32StepsAndUint64(t *testing.T) {
	l := NewLFSR32(0xDEADBEEF)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[l.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Errorf("only %d distinct values in 64 draws", len(seen))
	}
}

func TestFibLFSRWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 1")
		}
	}()
	NewFibLFSR(1, 1, 1)
}

func TestFibLFSRZeroSeedReplaced(t *testing.T) {
	l := NewFibLFSR(16, MaximalMask16, 0)
	if l.State() == 0 {
		t.Fatal("zero seed must be replaced")
	}
	// The maximal polynomial must cycle through many states.
	states := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		l.Step()
		states[l.State()] = true
	}
	if len(states) < 900 {
		t.Errorf("only %d distinct states in 1000 steps", len(states))
	}
}

func TestWeakLFSRHasShortCycles(t *testing.T) {
	// x^16+x^8+1 = (x^2+x+1)^8: every cycle divides 24 steps.
	l := NewFibLFSR(16, WeakMask16, 0x1234)
	start := l.State()
	period := 0
	for {
		l.Step()
		period++
		if l.State() == start || period > 100 {
			break
		}
	}
	if period > 24 {
		t.Errorf("weak LFSR period %d, want <= 24", period)
	}
}
