package rng

// SplitMix64 is Vigna's splitmix64 generator: a tiny, statistically strong
// 64-bit generator with period 2^64. It is the default "true PRNG" stand-in
// for the hardware TRNG assumed by PRA's reliability analysis, and it seeds
// the larger-state generators.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements xoshiro256** 1.0 (Blackman & Vigna), a fast
// general-purpose generator with period 2^256-1. Used wherever long,
// independent streams are needed (per-core workload generators).
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed with
// SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	x.Seed(seed)
	return &x
}

// Seed re-initialises the generator in place to the exact state
// NewXoshiro256(seed) would produce, without allocating. Run contexts use
// it to rewind per-run streams between reused runs.
func (x *Xoshiro256) Seed(seed uint64) {
	sm := SplitMix64{state: seed}
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// An all-zero state is invalid (fixed point); SplitMix64 cannot emit
	// four consecutive zeros, but guard anyway for safety.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}
