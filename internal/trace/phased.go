package trace

import "fmt"

// Phased switches a core's stream between two generators after a fixed
// number of requests — the workload-phase primitive behind onset studies:
// a stream that is benign for its first switchAfter requests and
// adversarial (or simply different) afterwards. The epoch engine's figt
// study uses it to watch DRCAT re-adapt when an attack switches on
// mid-run.
type Phased struct {
	early, late Generator
	switchAfter int64
	emitted     int64
}

// NewPhased builds a stream that draws its first switchAfter requests
// from early and everything after from late. Generators that share
// underlying state (an attack blend wrapping the same synthetic stream)
// stay consistent across the switch, since only one of them is drawn from
// at a time.
func NewPhased(switchAfter int64, early, late Generator) (*Phased, error) {
	if switchAfter < 0 {
		return nil, fmt.Errorf("trace: phased switch point %d must not be negative", switchAfter)
	}
	if early == nil || late == nil {
		return nil, fmt.Errorf("trace: phased stream needs both phase generators")
	}
	return &Phased{early: early, late: late, switchAfter: switchAfter}, nil
}

// Reset rewinds the stream to its first request; the phase generators
// are reset separately by their owner.
func (p *Phased) Reset() { p.emitted = 0 }

// Name implements Generator.
func (p *Phased) Name() string {
	return fmt.Sprintf("%s->%s@%d", p.early.Name(), p.late.Name(), p.switchAfter)
}

// Next implements Generator.
func (p *Phased) Next() Request {
	p.emitted++
	if p.emitted <= p.switchAfter {
		return p.early.Next()
	}
	return p.late.Next()
}
