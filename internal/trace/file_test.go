package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	spec, _ := Lookup("comm1")
	g := testGeom()
	gen, err := NewSynthetic(spec, g.TotalBytes(), g.LineBytes, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	reqs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != n {
		t.Fatalf("parsed %d requests, want %d", len(reqs), n)
	}
	// Re-generate the same stream and compare.
	gen2, _ := NewSynthetic(spec, g.TotalBytes(), g.LineBytes, 5)
	for i, got := range reqs {
		want := gen2.Next()
		if got != want {
			t.Fatalf("request %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"X 1f4 10\n",
		"R zz 10\n",
		"R 1f4\n",
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	in := "# header\nR 40 5\n\nW 80 7\n"
	reqs, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 2 || reqs[0].Addr != 0x40 || !reqs[1].Write {
		t.Errorf("reqs = %+v", reqs)
	}
}

func TestFileTraceLoops(t *testing.T) {
	ft, err := NewFileTrace("loop", []Request{{Addr: 64, Gap: 1}, {Addr: 128, Gap: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ft.Next()
	}
	if ft.Loops != 2 {
		t.Errorf("loops = %d, want 2", ft.Loops)
	}
	if _, err := NewFileTrace("empty", nil); err == nil {
		t.Error("expected error for empty trace")
	}
}
