package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"catsim/internal/dram"
)

// Versioned binary trace container ("v1"): the capture/replay format that
// lets any generated workload — closed-loop per-core streams and open-loop
// arrival streams alike — be written to disk once and replayed
// byte-identically into any scheme configuration. Layout:
//
//	magic   "catsimtr"                            (8 bytes)
//	version uint16 little-endian                  (currently 1)
//	geometry: 6 uvarints (channels, ranks/ch, banks/rk, rows/bank,
//	          colBytes, lineBytes)
//	uvarint stream count, then per stream:
//	    uvarint name length, name bytes
//	    1 byte kind (0 closed-loop, 1 open-loop)
//	    uvarint request count, then per request:
//	        uvarint zigzag(addr delta)<<1 | write bit
//	        closed: uvarint gap cycles
//	        open:   uvarint arrival-time delta (CPU cycles)
//	checksum uint64 little-endian FNV-1a over everything before it
//
// Addresses are delta-encoded against the previous request of the same
// stream and open-loop arrival times against the previous arrival, so the
// uvarints stay short under locality. The checksum turns truncation and
// bit rot into loud errors; an unknown version fails closed so a future
// v2 is never silently misparsed.

// ContainerVersion is the trace format version this build reads and
// writes.
const ContainerVersion = 1

var containerMagic = [8]byte{'c', 'a', 't', 's', 'i', 'm', 't', 'r'}

// maxContainerStreams and the per-stream record bound below cap what a
// hostile header can make the reader allocate before the payload backs it
// up (each record is at least two bytes on the wire).
const maxContainerStreams = 1 << 16

// Stream is one captured request stream: a closed-loop per-core stream
// (requests timed by Gap) or an open-loop arrival stream (requests timed
// by absolute Arrivals, non-decreasing, in CPU cycles).
type Stream struct {
	Name string
	Open bool
	Reqs []Request
	// Arrivals holds one absolute arrival time per request (open streams
	// only; nil for closed streams).
	Arrivals []int64
}

func (s *Stream) validate(i int) error {
	if s.Open {
		if len(s.Arrivals) != len(s.Reqs) {
			return fmt.Errorf("trace: stream %d (%s): %d arrivals for %d requests",
				i, s.Name, len(s.Arrivals), len(s.Reqs))
		}
		prev := int64(0)
		for j, at := range s.Arrivals {
			if at < prev {
				return fmt.Errorf("trace: stream %d (%s): arrival %d regresses (%d after %d)",
					i, s.Name, j, at, prev)
			}
			prev = at
		}
	} else if s.Arrivals != nil {
		return fmt.Errorf("trace: stream %d (%s): closed stream carries arrivals", i, s.Name)
	}
	if len(s.Reqs) == 0 {
		return fmt.Errorf("trace: stream %d (%s): empty stream", i, s.Name)
	}
	for j, r := range s.Reqs {
		if r.Addr < 0 || r.Gap < 0 {
			return fmt.Errorf("trace: stream %d (%s): request %d has a negative field", i, s.Name, j)
		}
	}
	return nil
}

// Generator adapts a closed stream to the Generator interface, replaying
// it in a loop like a parsed text trace.
func (s *Stream) Generator() (*FileTrace, error) {
	if s.Open {
		return nil, fmt.Errorf("trace: stream %q is open-loop; use OpenReplay", s.Name)
	}
	return NewFileTrace(s.Name, s.Reqs)
}

// OpenReplay replays an open stream's requests at their recorded arrival
// times. Unlike the looping FileTrace it is single-shot: the engine draws
// exactly len(Reqs) requests (its open-slot budget), so overdrawing is a
// caller bug and panics loudly.
type OpenReplay struct {
	name string
	reqs []Request
	at   []int64
	pos  int
}

// OpenReplay builds the single-shot arrival replayer for an open stream.
func (s *Stream) OpenReplay() (*OpenReplay, error) {
	if !s.Open {
		return nil, fmt.Errorf("trace: stream %q is closed-loop; use Generator", s.Name)
	}
	return &OpenReplay{name: s.Name, reqs: s.Reqs, at: s.Arrivals}, nil
}

// Name implements the engine's open-source interface.
func (o *OpenReplay) Name() string { return o.name }

// Next implements the engine's open-source interface.
func (o *OpenReplay) Next() (Request, int64) {
	if o.pos >= len(o.reqs) {
		panic(fmt.Sprintf("trace: open replay %q overdrawn past %d requests", o.name, len(o.reqs)))
	}
	r, at := o.reqs[o.pos], o.at[o.pos]
	o.pos++
	return r, at
}

// Remaining reports how many requests are left to replay.
func (o *OpenReplay) Remaining() int { return len(o.reqs) - o.pos }

// Container is a parsed (or to-be-written) v1 trace file.
type Container struct {
	Geometry dram.Geometry
	Streams  []Stream
}

func (c *Container) validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return fmt.Errorf("trace: container geometry: %w", err)
	}
	if len(c.Streams) == 0 {
		return fmt.Errorf("trace: container has no streams")
	}
	if len(c.Streams) > maxContainerStreams {
		return fmt.Errorf("trace: container has %d streams (max %d)", len(c.Streams), maxContainerStreams)
	}
	for i := range c.Streams {
		if err := c.Streams[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encode writes the payload (everything but the trailing checksum) to w.
func (c *Container) encode(w io.Writer) error {
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := w.Write(buf[:n])
		return err
	}
	if _, err := w.Write(containerMagic[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(buf[:2], ContainerVersion)
	if _, err := w.Write(buf[:2]); err != nil {
		return err
	}
	g := c.Geometry
	for _, v := range []int{g.Channels, g.RanksPerCh, g.BanksPerRk, g.RowsPerBank, g.ColBytes, g.LineBytes} {
		if err := putUvarint(uint64(v)); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(c.Streams))); err != nil {
		return err
	}
	for i := range c.Streams {
		s := &c.Streams[i]
		if err := putUvarint(uint64(len(s.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(w, s.Name); err != nil {
			return err
		}
		kind := byte(0)
		if s.Open {
			kind = 1
		}
		if _, err := w.Write([]byte{kind}); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(s.Reqs))); err != nil {
			return err
		}
		prevAddr, prevAt := int64(0), int64(0)
		for j, r := range s.Reqs {
			head := zigzag(r.Addr-prevAddr) << 1
			if r.Write {
				head |= 1
			}
			prevAddr = r.Addr
			if err := putUvarint(head); err != nil {
				return err
			}
			var second uint64
			if s.Open {
				at := s.Arrivals[j]
				second = uint64(at - prevAt)
				prevAt = at
			} else {
				second = uint64(r.Gap)
			}
			if err := putUvarint(second); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteContainer validates and writes c in the v1 format, checksum
// included.
func WriteContainer(w io.Writer, c *Container) error {
	if err := c.validate(); err != nil {
		return err
	}
	h := fnv.New64a()
	if err := c.encode(io.MultiWriter(w, h)); err != nil {
		return err
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	_, err := w.Write(sum[:])
	return err
}

// Digest returns the FNV-1a checksum of the container's encoded payload —
// a content hash stable across processes, which sim.CacheKey uses to key
// replayed runs.
func (c *Container) Digest() uint64 {
	h := fnv.New64a()
	// Hashing cannot fail; encode only returns the writer's errors.
	if err := c.encode(h); err != nil {
		panic("trace: digest encode failed: " + err.Error())
	}
	return h.Sum64()
}

// containerReader decodes the payload from an in-memory buffer, tracking
// the cursor so truncation errors can say where the data ran out.
type containerReader struct {
	data []byte
	pos  int
}

func (cr *containerReader) remaining() int { return len(cr.data) - cr.pos }

func (cr *containerReader) bytes(n int, what string) ([]byte, error) {
	if cr.remaining() < n {
		return nil, fmt.Errorf("trace: truncated container: %s needs %d bytes, %d left at offset %d",
			what, n, cr.remaining(), cr.pos)
	}
	b := cr.data[cr.pos : cr.pos+n]
	cr.pos += n
	return b, nil
}

func (cr *containerReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(cr.data[cr.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("trace: truncated container: bad %s varint at offset %d", what, cr.pos)
	}
	cr.pos += n
	return v, nil
}

// ReadContainer parses a v1 trace file, verifying magic, version and
// checksum. Corruption — a bad magic, a future version, truncation
// anywhere, a flipped bit — is a loud error, never a silent partial
// parse.
func ReadContainer(r io.Reader) (*Container, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading container: %w", err)
	}
	if len(data) < len(containerMagic)+2+8 {
		return nil, fmt.Errorf("trace: truncated container: %d bytes is shorter than any valid trace", len(data))
	}
	payload, sum := data[:len(data)-8], data[len(data)-8:]
	cr := &containerReader{data: payload}
	magic, err := cr.bytes(8, "magic")
	if err != nil {
		return nil, err
	}
	if [8]byte(magic) != containerMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a catsim trace container)", magic)
	}
	verBytes, err := cr.bytes(2, "version")
	if err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(verBytes); v != ContainerVersion {
		return nil, fmt.Errorf("trace: unsupported container version %d (this build reads v%d)",
			v, ContainerVersion)
	}
	h := fnv.New64a()
	h.Write(payload)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(sum); got != want {
		return nil, fmt.Errorf("trace: container checksum mismatch (file %016x, computed %016x): truncated or corrupt", want, got)
	}

	c := &Container{}
	geomFields := []*int{
		&c.Geometry.Channels, &c.Geometry.RanksPerCh, &c.Geometry.BanksPerRk,
		&c.Geometry.RowsPerBank, &c.Geometry.ColBytes, &c.Geometry.LineBytes,
	}
	for _, f := range geomFields {
		v, err := cr.uvarint("geometry")
		if err != nil {
			return nil, err
		}
		*f = int(v)
	}
	nstreams, err := cr.uvarint("stream count")
	if err != nil {
		return nil, err
	}
	if nstreams == 0 || nstreams > maxContainerStreams {
		return nil, fmt.Errorf("trace: container declares %d streams (want 1..%d)", nstreams, maxContainerStreams)
	}
	for i := 0; i < int(nstreams); i++ {
		var s Stream
		nameLen, err := cr.uvarint("stream name length")
		if err != nil {
			return nil, err
		}
		if nameLen > uint64(cr.remaining()) {
			return nil, fmt.Errorf("trace: truncated container: stream %d name of %d bytes exceeds remaining payload", i, nameLen)
		}
		name, err := cr.bytes(int(nameLen), "stream name")
		if err != nil {
			return nil, err
		}
		s.Name = string(name)
		kind, err := cr.bytes(1, "stream kind")
		if err != nil {
			return nil, err
		}
		switch kind[0] {
		case 0:
		case 1:
			s.Open = true
		default:
			return nil, fmt.Errorf("trace: stream %d (%s): unknown kind %d", i, s.Name, kind[0])
		}
		count, err := cr.uvarint("request count")
		if err != nil {
			return nil, err
		}
		// Every record is at least two bytes on the wire, so a count the
		// remaining payload cannot back up is corruption — reject before
		// allocating.
		if count == 0 || count > uint64(cr.remaining())/2+1 {
			return nil, fmt.Errorf("trace: stream %d (%s): request count %d exceeds remaining payload",
				i, s.Name, count)
		}
		s.Reqs = make([]Request, count)
		if s.Open {
			s.Arrivals = make([]int64, count)
		}
		prevAddr, prevAt := int64(0), int64(0)
		for j := range s.Reqs {
			head, err := cr.uvarint("request header")
			if err != nil {
				return nil, err
			}
			addr := prevAddr + unzigzag(head>>1)
			if addr < 0 {
				return nil, fmt.Errorf("trace: stream %d (%s): request %d decodes to negative address", i, s.Name, j)
			}
			prevAddr = addr
			s.Reqs[j] = Request{Addr: addr, Write: head&1 == 1}
			second, err := cr.uvarint("request timing")
			if err != nil {
				return nil, err
			}
			if s.Open {
				at := prevAt + int64(second)
				if at < prevAt {
					return nil, fmt.Errorf("trace: stream %d (%s): arrival %d overflows", i, s.Name, j)
				}
				s.Arrivals[j] = at
				prevAt = at
			} else {
				if second > 1<<31 {
					return nil, fmt.Errorf("trace: stream %d (%s): request %d gap %d out of range", i, s.Name, j, second)
				}
				s.Reqs[j].Gap = int(second)
			}
		}
		c.Streams = append(c.Streams, s)
	}
	if cr.remaining() != 0 {
		return nil, fmt.Errorf("trace: container has %d trailing bytes after the last stream", cr.remaining())
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}
