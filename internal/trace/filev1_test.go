package trace

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"catsim/internal/dram"
)

// testContainer builds a small mixed container with interesting encodings:
// backwards address deltas, writes, repeated arrivals, zero gaps.
func testContainer() *Container {
	return &Container{
		Geometry: dram.Default2Channel(),
		Streams: []Stream{
			{
				Name: "core0:black",
				Reqs: []Request{
					{Addr: 0x1234_5678_9ab0, Gap: 17},
					{Addr: 0x40, Write: true, Gap: 0}, // large negative delta
					{Addr: 0x41, Gap: 1},
				},
			},
			{
				Name: "ol-bursty#0",
				Open: true,
				Reqs: []Request{
					{Addr: 0x8000},
					{Addr: 0x8000, Write: true},
					{Addr: 0x10_0000},
				},
				Arrivals: []int64{100, 100, 5_000_000},
			},
		},
	}
}

func TestContainerRoundTrip(t *testing.T) {
	c := testContainer()
	var buf bytes.Buffer
	if err := WriteContainer(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadContainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Geometry != c.Geometry {
		t.Errorf("geometry = %+v, want %+v", got.Geometry, c.Geometry)
	}
	if len(got.Streams) != len(c.Streams) {
		t.Fatalf("stream count = %d, want %d", len(got.Streams), len(c.Streams))
	}
	for i := range c.Streams {
		want := c.Streams[i]
		if !want.Open {
			if !reflect.DeepEqual(got.Streams[i], want) {
				t.Errorf("stream %d = %+v, want %+v", i, got.Streams[i], want)
			}
			continue
		}
		// Open streams do not persist Gap (arrival times carry the
		// timing), so compare addresses, ops and arrivals.
		g := got.Streams[i]
		if g.Name != want.Name || !g.Open || !reflect.DeepEqual(g.Arrivals, want.Arrivals) {
			t.Errorf("stream %d header/arrivals = %+v, want %+v", i, g, want)
		}
		for j := range want.Reqs {
			if g.Reqs[j].Addr != want.Reqs[j].Addr || g.Reqs[j].Write != want.Reqs[j].Write {
				t.Errorf("stream %d request %d = %+v, want %+v", i, j, g.Reqs[j], want.Reqs[j])
			}
		}
	}
	if c.Digest() != got.Digest() {
		t.Error("digest changed across a round trip")
	}
}

func TestContainerDigestDistinguishesContent(t *testing.T) {
	a := testContainer()
	b := testContainer()
	b.Streams[0].Reqs[2].Addr++
	if a.Digest() == b.Digest() {
		t.Error("digests collide across different request streams")
	}
	c := testContainer()
	c.Streams[1].Arrivals[2]++
	if a.Digest() == c.Digest() {
		t.Error("digests collide across different arrival times")
	}
}

// encoded returns the valid on-disk bytes of the test container.
func encoded(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteContainer(&buf, testContainer()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestContainerCorruptionIsLoud(t *testing.T) {
	good := encoded(t)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"truncated header", func(b []byte) []byte { return b[:6] }, "truncated"},
		{"bad magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}, "bad magic"},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[8:10], 2)
			return b
		}, "unsupported container version"},
		{"truncated records", func(b []byte) []byte { return b[:len(b)-20] }, "checksum"},
		{"flipped payload bit", func(b []byte) []byte {
			b[len(b)-12] ^= 0x40
			return b
		}, "checksum"},
		{"flipped checksum", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}, "checksum"},
	}
	for _, tc := range cases {
		b := tc.mutate(append([]byte(nil), good...))
		_, err := ReadContainer(bytes.NewReader(b))
		if err == nil {
			t.Errorf("%s: corrupt container parsed", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
	// Version-aware mutation: checksum recomputed so only the version
	// differs — must still fail closed (the reader checks version before
	// the checksum; this guards that ordering).
	b := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(b[8:10], 7)
	if _, err := ReadContainer(bytes.NewReader(b)); err == nil ||
		!strings.Contains(err.Error(), "version 7") {
		t.Errorf("future version error should name the version, got %v", err)
	}
}

func TestWriteContainerRejectsInvalid(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Container)
	}{
		{"no streams", func(c *Container) { c.Streams = nil }},
		{"empty stream", func(c *Container) { c.Streams[0].Reqs = nil }},
		{"negative addr", func(c *Container) { c.Streams[0].Reqs[0].Addr = -1 }},
		{"arrival mismatch", func(c *Container) { c.Streams[1].Arrivals = c.Streams[1].Arrivals[:1] }},
		{"regressing arrivals", func(c *Container) { c.Streams[1].Arrivals[2] = 1 }},
		{"closed with arrivals", func(c *Container) { c.Streams[0].Arrivals = []int64{1, 2, 3} }},
		{"bad geometry", func(c *Container) { c.Geometry.Channels = 3 }},
	} {
		c := testContainer()
		tc.mutate(c)
		if err := WriteContainer(&bytes.Buffer{}, c); err == nil {
			t.Errorf("%s: invalid container written", tc.name)
		}
	}
}

func TestStreamReplayAdapters(t *testing.T) {
	c := testContainer()
	gen, err := c.Streams[0].Generator()
	if err != nil {
		t.Fatal(err)
	}
	if gen.Name() != "core0:black" {
		t.Errorf("generator name = %q", gen.Name())
	}
	// FileTrace wraps eagerly at the final request, so two full passes
	// count two loops.
	for i := 0; i < 2*len(c.Streams[0].Reqs); i++ {
		gen.Next()
	}
	if gen.Loops != 2 {
		t.Errorf("closed replay looped %d times, want 2", gen.Loops)
	}
	if _, err := c.Streams[0].OpenReplay(); err == nil {
		t.Error("OpenReplay on a closed stream should fail")
	}

	or, err := c.Streams[1].OpenReplay()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Streams[1].Generator(); err == nil {
		t.Error("Generator on an open stream should fail")
	}
	for j := range c.Streams[1].Reqs {
		req, at := or.Next()
		if req != c.Streams[1].Reqs[j] || at != c.Streams[1].Arrivals[j] {
			t.Errorf("open replay %d = %+v@%d, want %+v@%d",
				j, req, at, c.Streams[1].Reqs[j], c.Streams[1].Arrivals[j])
		}
	}
	if or.Remaining() != 0 {
		t.Errorf("remaining = %d after draining", or.Remaining())
	}
	defer func() {
		if recover() == nil {
			t.Error("overdrawing an open replay should panic")
		}
	}()
	or.Next()
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 50, -(1 << 50), 42, -42} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
}
