package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"catsim/internal/dram"
)

// FuzzReadContainer hardens the v1 parser against hostile bytes: it must
// never panic, never allocate unboundedly from a lying count, and any
// container it accepts must re-encode to a semantically identical file
// (write→read fixed point). Seed corpus: a valid capture plus the classic
// corruptions (testdata/fuzz and the f.Add calls below).
func FuzzReadContainer(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteContainer(&valid, &Container{
		Geometry: dram.Default2Channel(),
		Streams: []Stream{
			{Name: "c0", Reqs: []Request{{Addr: 64, Gap: 3}, {Addr: 128, Write: true, Gap: 1}}},
			{Name: "o0", Open: true, Reqs: []Request{{Addr: 4096}, {Addr: 64}}, Arrivals: []int64{5, 9}},
		},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("catsimtr"))
	truncated := append([]byte(nil), valid.Bytes()...)
	f.Add(truncated[:len(truncated)-11])
	badVersion := append([]byte(nil), valid.Bytes()...)
	binary.LittleEndian.PutUint16(badVersion[8:10], 9)
	f.Add(badVersion)
	// A header that promises far more records than the payload holds.
	lyingCount := append([]byte(nil), valid.Bytes()...)
	lyingCount[14] = 0xFF
	f.Add(lyingCount)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadContainer(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted containers must re-encode and re-parse to the same
		// digest — the stability the replay cache key depends on.
		var out bytes.Buffer
		if err := WriteContainer(&out, c); err != nil {
			t.Fatalf("accepted container failed to re-encode: %v", err)
		}
		again, err := ReadContainer(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded container failed to parse: %v", err)
		}
		if c.Digest() != again.Digest() {
			t.Fatal("digest changed across re-encode")
		}
	})
}
