package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Trace file format: a line-oriented text format so real platform traces
// (e.g. converted USIMM/MSC traces) can drive the simulator in place of
// the synthetic models. Each line is
//
//	R|W <hex address> <gap cycles>
//
// with '#' comment lines ignored. WriteTrace and ReadTrace round-trip the
// format; FileTrace adapts a parsed trace to the Generator interface,
// replaying it in a loop so runs of any length can be driven.

// WriteTrace writes n requests from gen to w.
func WriteTrace(w io.Writer, gen Generator, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# catsim trace: %s, %d requests\n", gen.Name(), n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		r := gen.Next()
		op := byte('R')
		if r.Write {
			op = 'W'
		}
		if _, err := fmt.Fprintf(bw, "%c %x %d\n", op, r.Addr, r.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses every request from r.
func ReadTrace(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		var op string
		var req Request
		if _, err := fmt.Sscanf(text, "%1s %x %d", &op, &req.Addr, &req.Gap); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		switch op {
		case "R":
		case "W":
			req.Write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, op)
		}
		if req.Addr < 0 || req.Gap < 0 {
			return nil, fmt.Errorf("trace: line %d: negative field", line)
		}
		if req.Gap == 0 {
			req.Gap = 1
		}
		out = append(out, req)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	return out, nil
}

// FileTrace replays a parsed request list as a Generator, looping at the
// end so it can drive runs longer than the trace.
type FileTrace struct {
	name string
	reqs []Request
	pos  int
	// Loops counts how many times the trace wrapped.
	Loops int
}

// NewFileTrace wraps parsed requests.
func NewFileTrace(name string, reqs []Request) (*FileTrace, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: empty request list")
	}
	return &FileTrace{name: name, reqs: reqs}, nil
}

// Name implements Generator.
func (f *FileTrace) Name() string { return f.name }

// Next implements Generator.
func (f *FileTrace) Next() Request {
	r := f.reqs[f.pos]
	f.pos++
	if f.pos == len(f.reqs) {
		f.pos = 0
		f.Loops++
	}
	return r
}
