package trace

import (
	"fmt"
	"math"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/rng"
)

// AttackMode selects the blend of malicious and benign accesses (§VIII-D).
type AttackMode int

// Attack modes: "Heavy (75% target rows + 25% benign access rows), Medium
// (50% + 50%) and Light (25% + 75%)".
const (
	Heavy AttackMode = iota
	Medium
	Light
)

// String returns the paper's mode label.
func (m AttackMode) String() string {
	switch m {
	case Heavy:
		return "Heavy"
	case Medium:
		return "Medium"
	case Light:
		return "Light"
	}
	return fmt.Sprintf("AttackMode(%d)", int(m))
}

// TargetFraction returns the fraction of accesses aimed at target rows.
func (m AttackMode) TargetFraction() float64 {
	switch m {
	case Heavy:
		return 0.75
	case Medium:
		return 0.50
	default:
		return 0.25
	}
}

// Pattern selects the spatial/temporal structure of an attack's target
// accesses. The paper's kernels (§VIII-D) hammer Gaussian-distributed
// rows; the adversarial patterns go beyond them with the aggressor
// geometries the modern tracker literature (CoMeT, ABACuS, DSAC) defends
// against.
type Pattern int

// Attack patterns.
const (
	// PatternGaussian is the paper's kernel: random accesses over
	// Gaussian-distributed target rows.
	PatternGaussian Pattern = iota
	// PatternDoubleSided hammers aggressor pairs v-1/v+1 around each
	// victim row, alternating within a pair so both sides accumulate.
	PatternDoubleSided
	// PatternManySided cycles a cluster of aggressors spaced two apart,
	// round-robin across banks (every bank advances in lockstep).
	PatternManySided
	// PatternBankSweep hammers the same aggressor pair at one row index
	// in every bank in turn — the all-bank pattern ABACuS's shared
	// counters are built for.
	PatternBankSweep
)

// String returns the pattern label used in tables and cache keys.
func (p Pattern) String() string {
	switch p {
	case PatternGaussian:
		return "gauss"
	case PatternDoubleSided:
		return "double"
	case PatternManySided:
		return "many"
	case PatternBankSweep:
		return "sweep"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Attack models kernel attacks: each kernel selects target rows per its
// Pattern and accesses them "more frequently than other rows in DRAM",
// blended with a benign memory-intensive workload. Twelve kernels are
// twelve seeds.
type Attack struct {
	name    string
	mode    AttackMode
	pattern Pattern
	targets []int64    // encoded line addresses of aggressor rows
	pairs   [][2]int64 // double-sided aggressor pairs
	cursor  int        // deterministic walk for many/sweep
	pending int64      // second half of a double-sided pair (-1 = none)
	src     *rng.Xoshiro256
	src0    rng.Xoshiro256 // post-construction RNG state, for Reset
	benign  Generator
}

// TargetsPerBank is the paper's target-row count per bank (Gaussian
// pattern); the adversarial patterns derive their aggressor counts from
// it (double-sided: TargetsPerBank/2 victims, many-sided:
// 2*TargetsPerBank aggressors per bank).
const TargetsPerBank = 4

// NewAttack builds kernel attack number kernel (0..11 in the paper's setup)
// over the given geometry and mapping policy, blending with the benign
// generator according to mode, using the paper's Gaussian pattern.
func NewAttack(kernel int, mode AttackMode, g dram.Geometry, policy addrmap.Policy, benign Generator) (*Attack, error) {
	return NewAttackPattern(kernel, mode, PatternGaussian, g, policy, benign)
}

// NewAttackPattern builds a kernel attack with an explicit target pattern.
// Attacks are deterministic per (kernel, pattern) pair: the same arguments
// always produce the same target set and emission order.
func NewAttackPattern(kernel int, mode AttackMode, pattern Pattern, g dram.Geometry, policy addrmap.Policy, benign Generator) (*Attack, error) {
	if benign == nil {
		return nil, fmt.Errorf("trace: attack needs a benign workload to blend with")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Each pattern needs room for its aggressor layout; fail loudly
	// rather than silently folding rows on undersized geometries.
	minRows := 1
	switch pattern {
	case PatternDoubleSided, PatternBankSweep:
		minRows = 3 // a victim with both neighbours in range
	case PatternManySided:
		minRows = 4*TargetsPerBank + 1 // 2*TargetsPerBank aggressors spaced two apart
	}
	if g.RowsPerBank < minRows {
		return nil, fmt.Errorf("trace: %s pattern needs at least %d rows per bank, got %d",
			pattern, minRows, g.RowsPerBank)
	}
	// The Gaussian pattern keeps the original kernel seeds, so the
	// paper-reproduction figures (Fig. 13's twelve kernels) are unchanged;
	// the adversarial patterns get their own seed space.
	seed := 0xA77AC4<<8 | uint64(kernel)
	if pattern != PatternGaussian {
		seed = 0xA77AC4<<16 | uint64(kernel)<<8 | uint64(pattern)
	}
	src := rng.NewXoshiro256(seed)
	a := &Attack{
		name:    fmt.Sprintf("attack%02d-%s-%s+%s", kernel, pattern, mode, benign.Name()),
		mode:    mode,
		pattern: pattern,
		pending: -1,
		src:     src,
		benign:  benign,
	}
	encode := func(ch, rk, bk, row int) int64 {
		return policy.Encode(addrmap.Coord{
			Bank: dram.BankID{Channel: ch, Rank: rk, Bank: bk},
			Row:  row,
			Col:  rng.Intn(src, g.LinesPerRow()),
		})
	}
	eachBank := func(f func(ch, rk, bk int)) {
		for ch := 0; ch < g.Channels; ch++ {
			for rk := 0; rk < g.RanksPerCh; rk++ {
				for bk := 0; bk < g.BanksPerRk; bk++ {
					f(ch, rk, bk)
				}
			}
		}
	}
	switch pattern {
	case PatternGaussian:
		// Gaussian-distributed target rows: centred mid-bank with sigma an
		// eighth of the bank, folded into range.
		eachBank(func(ch, rk, bk int) {
			for i := 0; i < TargetsPerBank; i++ {
				a.targets = append(a.targets, encode(ch, rk, bk, gaussianRow(src, g.RowsPerBank)))
			}
		})
	case PatternDoubleSided:
		// Per bank, TargetsPerBank/2 victims with their aggressor pairs.
		eachBank(func(ch, rk, bk int) {
			for i := 0; i < TargetsPerBank/2; i++ {
				v := clampRow(gaussianRow(src, g.RowsPerBank), 1, g.RowsPerBank-2)
				lo, hi := encode(ch, rk, bk, v-1), encode(ch, rk, bk, v+1)
				a.pairs = append(a.pairs, [2]int64{lo, hi})
				a.targets = append(a.targets, lo, hi)
			}
		})
	case PatternManySided:
		// One cluster of 2*TargetsPerBank aggressors spaced two apart per
		// bank; the emission list interleaves banks (aggressor-major) so
		// the walk round-robins across banks.
		n := 2 * TargetsPerBank
		type site struct{ ch, rk, bk, base int }
		var sites []site
		eachBank(func(ch, rk, bk int) {
			base := clampRow(gaussianRow(src, g.RowsPerBank), 1, g.RowsPerBank-2*n)
			sites = append(sites, site{ch, rk, bk, base})
		})
		for i := 0; i < n; i++ {
			for _, s := range sites {
				a.targets = append(a.targets, encode(s.ch, s.rk, s.bk, s.base+2*i))
			}
		}
	case PatternBankSweep:
		// The same aggressor pair at one row index, swept bank by bank.
		v := clampRow(gaussianRow(src, g.RowsPerBank), 1, g.RowsPerBank-2)
		eachBank(func(ch, rk, bk int) {
			a.targets = append(a.targets, encode(ch, rk, bk, v-1), encode(ch, rk, bk, v+1))
		})
	default:
		return nil, fmt.Errorf("trace: unknown attack pattern %v", pattern)
	}
	// Target selection above consumed draws; capture the stream here so
	// Reset can rewind emission without repeating construction.
	a.src0 = *src
	return a, nil
}

// Reset rewinds the attack's emission state — the blend RNG, the
// deterministic walk cursor and any pending pair half — to just after
// construction. Target sets depend only on (kernel, pattern, geometry),
// never on the run seed, so a reset attack replays identically; the
// wrapped benign generator is reset separately by its owner.
func (a *Attack) Reset() {
	*a.src = a.src0
	a.cursor = 0
	a.pending = -1
}

func clampRow(r, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}

func gaussianRow(src rng.Source, rows int) int {
	center, sigma := float64(rows)/2, float64(rows)/8
	for {
		r := int(math.Round(center + sigma*rng.NormFloat64(src)))
		if r >= 0 && r < rows {
			return r
		}
	}
}

// Name implements Generator.
func (a *Attack) Name() string { return a.name }

// Mode returns the blend mode.
func (a *Attack) Mode() AttackMode { return a.mode }

// Pattern returns the target pattern.
func (a *Attack) Pattern() Pattern { return a.pattern }

// Targets returns the encoded target addresses (diagnostics).
func (a *Attack) Targets() []int64 { return a.targets }

// hammerGap is the attack request gap: hammer loops are tight, a
// CLFLUSH + load pair.
const hammerGap = 8

// Next implements Generator: with the mode's probability emit the
// pattern's next target access (tight hammering gap), otherwise pass the
// benign request through.
func (a *Attack) Next() Request {
	if rng.Float64(a.src) >= a.mode.TargetFraction() {
		return a.benign.Next()
	}
	var addr int64
	switch a.pattern {
	case PatternDoubleSided:
		// Alternate the two sides of a randomly chosen pair: the second
		// aggressor is emitted on the next attack draw.
		if a.pending >= 0 {
			addr, a.pending = a.pending, -1
		} else {
			p := a.pairs[rng.Intn(a.src, len(a.pairs))]
			addr, a.pending = p[0], p[1]
		}
	case PatternManySided, PatternBankSweep:
		// Deterministic walk over the target list (interleaved across
		// banks for many-sided, bank-major for the sweep).
		addr = a.targets[a.cursor]
		a.cursor = (a.cursor + 1) % len(a.targets)
	default:
		addr = a.targets[rng.Intn(a.src, len(a.targets))]
	}
	return Request{Addr: addr, Gap: hammerGap}
}
