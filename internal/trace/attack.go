package trace

import (
	"fmt"
	"math"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/rng"
)

// AttackMode selects the blend of malicious and benign accesses (§VIII-D).
type AttackMode int

// Attack modes: "Heavy (75% target rows + 25% benign access rows), Medium
// (50% + 50%) and Light (25% + 75%)".
const (
	Heavy AttackMode = iota
	Medium
	Light
)

// String returns the paper's mode label.
func (m AttackMode) String() string {
	switch m {
	case Heavy:
		return "Heavy"
	case Medium:
		return "Medium"
	case Light:
		return "Light"
	}
	return fmt.Sprintf("AttackMode(%d)", int(m))
}

// TargetFraction returns the fraction of accesses aimed at target rows.
func (m AttackMode) TargetFraction() float64 {
	switch m {
	case Heavy:
		return 0.75
	case Medium:
		return 0.50
	default:
		return 0.25
	}
}

// Attack models the paper's kernel attacks: each kernel randomly selects a
// few target rows (4 per bank, Gaussian-distributed positions) and accesses
// them "more frequently than other rows in DRAM", blended with a benign
// memory-intensive workload. Twelve kernels are twelve seeds.
type Attack struct {
	name    string
	mode    AttackMode
	targets []int64 // encoded line addresses of target rows
	src     *rng.Xoshiro256
	benign  Generator
}

// TargetsPerBank is the paper's target-row count per bank.
const TargetsPerBank = 4

// NewAttack builds kernel attack number kernel (0..11 in the paper's setup)
// over the given geometry and mapping policy, blending with the benign
// generator according to mode.
func NewAttack(kernel int, mode AttackMode, g dram.Geometry, policy addrmap.Policy, benign Generator) (*Attack, error) {
	if benign == nil {
		return nil, fmt.Errorf("trace: attack needs a benign workload to blend with")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	src := rng.NewXoshiro256(0xA77AC4<<8 | uint64(kernel))
	a := &Attack{
		name:   fmt.Sprintf("attack%02d-%s+%s", kernel, mode, benign.Name()),
		mode:   mode,
		src:    src,
		benign: benign,
	}
	// Gaussian-distributed target rows: centred mid-bank with sigma an
	// eighth of the bank, folded into range.
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerCh; rk++ {
			for bk := 0; bk < g.BanksPerRk; bk++ {
				for i := 0; i < TargetsPerBank; i++ {
					row := gaussianRow(src, g.RowsPerBank)
					addr := policy.Encode(addrmap.Coord{
						Bank: dram.BankID{Channel: ch, Rank: rk, Bank: bk},
						Row:  row,
						Col:  rng.Intn(src, g.LinesPerRow()),
					})
					a.targets = append(a.targets, addr)
				}
			}
		}
	}
	return a, nil
}

func gaussianRow(src rng.Source, rows int) int {
	center, sigma := float64(rows)/2, float64(rows)/8
	for {
		r := int(math.Round(center + sigma*rng.NormFloat64(src)))
		if r >= 0 && r < rows {
			return r
		}
	}
}

// Name implements Generator.
func (a *Attack) Name() string { return a.name }

// Mode returns the blend mode.
func (a *Attack) Mode() AttackMode { return a.mode }

// Targets returns the encoded target addresses (diagnostics).
func (a *Attack) Targets() []int64 { return a.targets }

// Next implements Generator: with the mode's probability emit an access to
// a random target row (tight hammering gap), otherwise pass the benign
// request through.
func (a *Attack) Next() Request {
	if rng.Float64(a.src) < a.mode.TargetFraction() {
		return Request{
			Addr: a.targets[rng.Intn(a.src, len(a.targets))],
			Gap:  8, // hammer loops are tight: a CLFLUSH + load pair
		}
	}
	return a.benign.Next()
}
