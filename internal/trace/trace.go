// Package trace generates the synthetic memory-request streams that stand
// in for the paper's Memory Scheduling Championship workloads (18 traces
// across COMM / PARSEC / SPEC / BIO) and the 12 kernel attacks of §VIII-D.
//
// Every result in the paper is driven by the row-access frequency
// distribution each bank sees per refresh interval (Fig. 3): a small group
// of rows dominates, with the skew, footprint, streaming behaviour and
// temporal drift differing per workload. Each named workload is therefore a
// parameterised mixture over the physical address space:
//
//   - hot spots: Gaussian clusters of addresses (hot pages/rows) receiving
//     a configurable fraction of accesses with Zipf-like weights;
//   - a sequential sweep component (streaming workloads such as libquantum
//     walk their footprint line by line);
//   - a uniform background over the workload's footprint; and
//   - phase changes: hot spots periodically move, which is what DRCAT's
//     dynamic reconfiguration is designed to track.
//
// Generators emit physical line addresses, not (bank, row) pairs, so the
// same workload exercises different bank/row distributions under different
// address-mapping policies — exactly the effect the paper's §VIII-B mapping
// study measures.
package trace

import (
	"fmt"
	"math"

	"catsim/internal/rng"
)

// Request is one memory request emitted by a core.
type Request struct {
	Addr  int64 // physical byte address (line aligned)
	Write bool
	Gap   int // CPU cycles of compute preceding this request
}

// Generator produces an unbounded request stream for one core.
type Generator interface {
	// Next returns the next request.
	Next() Request
	// Name identifies the stream in reports.
	Name() string
}

// Spec parameterises one synthetic workload.
type Spec struct {
	Name  string
	Suite string // COMM, PARSEC, SPEC or BIO

	// FootprintFrac is the fraction of physical memory the workload
	// touches.
	FootprintFrac float64
	// HotSpots is the number of Gaussian hot clusters.
	HotSpots int
	// HotSigmaKB is the standard deviation of each cluster in kilobytes
	// (a 16 KB sigma concentrates a cluster on about one DRAM row under
	// the baseline mapping).
	HotSigmaKB float64
	// HotFraction is the probability that an access goes to a hot cluster.
	HotFraction float64
	// SweepFraction is the probability that an access comes from the
	// sequential sweep pointer (streaming behaviour).
	SweepFraction float64
	// PhaseLen is the number of accesses between hot-spot relocations
	// (0 = static pattern).
	PhaseLen int
	// GapMean is the mean number of CPU cycles between memory requests
	// (memory intensity; smaller = more intense).
	GapMean int
	// WriteFraction is the probability that a request is a write.
	WriteFraction float64
	// ZipfS is the Zipf exponent for hot-spot weights (spot k receives
	// weight k^-ZipfS); zero selects 1.0. Larger values concentrate
	// traffic on the top spots.
	ZipfS float64
}

// Validate reports an error for nonsensical parameters.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("trace: spec needs a name")
	case s.FootprintFrac <= 0 || s.FootprintFrac > 1:
		return fmt.Errorf("trace: %s: FootprintFrac %v out of (0,1]", s.Name, s.FootprintFrac)
	case s.HotSpots < 0:
		return fmt.Errorf("trace: %s: negative HotSpots", s.Name)
	case s.HotFraction < 0 || s.SweepFraction < 0 || s.HotFraction+s.SweepFraction > 1:
		return fmt.Errorf("trace: %s: hot %v + sweep %v fractions invalid", s.Name, s.HotFraction, s.SweepFraction)
	case s.HotSpots == 0 && s.HotFraction > 0:
		return fmt.Errorf("trace: %s: hot fraction without hot spots", s.Name)
	case s.PhaseLen < 0:
		return fmt.Errorf("trace: %s: negative PhaseLen", s.Name)
	case s.GapMean < 1:
		return fmt.Errorf("trace: %s: GapMean must be at least 1", s.Name)
	case s.WriteFraction < 0 || s.WriteFraction > 1:
		return fmt.Errorf("trace: %s: WriteFraction %v out of [0,1]", s.Name, s.WriteFraction)
	}
	return nil
}

// Synthetic is the mixture-model generator behind every named workload.
type Synthetic struct {
	spec      Spec
	src       *rng.Xoshiro256
	lineBytes int64
	footBase  int64 // footprint start (line aligned)
	footLines int64 // footprint length in lines
	maxBase   int64 // highest footprint start (for Reseed's redraw)
	hotCenter []int64
	hotCum    []float64 // cumulative Zipf-like weights
	sweepLine int64
	accesses  int64
	nextDrift int // round-robin index of the hot spot to move next
}

// NewSynthetic builds a generator over a memory of totalBytes with the
// given line size. Distinct seeds give distinct address-space layouts, so
// per-core instances model separate processes.
func NewSynthetic(spec Spec, totalBytes int64, lineBytes int, seed uint64) (*Synthetic, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if totalBytes <= 0 || lineBytes <= 0 || totalBytes%int64(lineBytes) != 0 {
		return nil, fmt.Errorf("trace: invalid memory size %d / line %d", totalBytes, lineBytes)
	}
	g := &Synthetic{
		spec:      spec,
		src:       rng.NewXoshiro256(seed),
		lineBytes: int64(lineBytes),
	}
	totalLines := totalBytes / g.lineBytes
	g.footLines = int64(float64(totalLines) * spec.FootprintFrac)
	if g.footLines < 1 {
		g.footLines = 1
	}
	if g.footLines > totalLines {
		g.footLines = totalLines
	}
	g.maxBase = totalLines - g.footLines
	if g.maxBase > 0 {
		g.footBase = int64(rng.Float64(g.src) * float64(g.maxBase))
	}
	zipf := spec.ZipfS
	if zipf == 0 {
		zipf = 1
	}
	g.hotCenter = make([]int64, spec.HotSpots)
	g.hotCum = make([]float64, spec.HotSpots)
	sum := 0.0
	for i := range g.hotCenter {
		g.hotCenter[i] = g.randomFootprintLine()
		sum += math.Pow(float64(i+1), -zipf) // Zipf: spot k gets weight k^-s
		g.hotCum[i] = sum
	}
	for i := range g.hotCum {
		g.hotCum[i] /= sum
	}
	g.sweepLine = g.randomFootprintLine()
	return g, nil
}

// Reseed rewinds the generator to the state NewSynthetic would produce
// for the same spec and memory size with the given seed, without
// allocating: the RNG restarts and the footprint base, hot-spot centres
// and sweep pointer are redrawn in construction order (the Zipf weights
// depend only on the spec and stand). Run contexts use it to reuse
// generators across seed-sweep runs.
func (g *Synthetic) Reseed(seed uint64) {
	g.src.Seed(seed)
	g.footBase = 0
	if g.maxBase > 0 {
		g.footBase = int64(rng.Float64(g.src) * float64(g.maxBase))
	}
	for i := range g.hotCenter {
		g.hotCenter[i] = g.randomFootprintLine()
	}
	g.sweepLine = g.randomFootprintLine()
	g.accesses = 0
	g.nextDrift = 0
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.spec.Name }

// Spec returns the workload parameters.
func (g *Synthetic) Spec() Spec { return g.spec }

func (g *Synthetic) randomFootprintLine() int64 {
	return g.footBase + int64(rng.Float64(g.src)*float64(g.footLines))
}

// foldIntoFootprint reflects an arbitrary line index back into the
// footprint so Gaussian tails do not escape the working set.
func (g *Synthetic) foldIntoFootprint(line int64) int64 {
	rel := line - g.footBase
	n := g.footLines
	rel %= 2 * n
	if rel < 0 {
		rel += 2 * n
	}
	if rel >= n {
		rel = 2*n - 1 - rel
	}
	return g.footBase + rel
}

// Next implements Generator.
func (g *Synthetic) Next() Request {
	s := &g.spec
	g.accesses++
	if s.PhaseLen > 0 && g.accesses%int64(s.PhaseLen) == 0 && len(g.hotCenter) > 0 {
		// Phase change: relocate one hot spot (round robin), modelling the
		// temporal drift DRCAT tracks (§V).
		g.hotCenter[g.nextDrift] = g.randomFootprintLine()
		g.nextDrift = (g.nextDrift + 1) % len(g.hotCenter)
	}

	var line int64
	u := rng.Float64(g.src)
	switch {
	case u < s.HotFraction:
		// Pick a hot spot by its Zipf-like weight, then a Gaussian offset.
		v := rng.Float64(g.src)
		k := 0
		for k < len(g.hotCum)-1 && v > g.hotCum[k] {
			k++
		}
		sigmaLines := s.HotSigmaKB * 1024 / float64(g.lineBytes)
		off := int64(math.Round(rng.NormFloat64(g.src) * sigmaLines))
		line = g.foldIntoFootprint(g.hotCenter[k] + off)
	case u < s.HotFraction+s.SweepFraction:
		g.sweepLine++
		if g.sweepLine >= g.footBase+g.footLines {
			g.sweepLine = g.footBase
		}
		line = g.sweepLine
	default:
		line = g.randomFootprintLine()
	}

	// Geometric think time with the configured mean.
	gap := 1
	if s.GapMean > 1 {
		gap = 1 + int(-float64(s.GapMean-1)*math.Log(1-rng.Float64(g.src)))
	}
	return Request{
		Addr:  line * g.lineBytes,
		Write: rng.Float64(g.src) < s.WriteFraction,
		Gap:   gap,
	}
}
