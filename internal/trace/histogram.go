package trace

import (
	"sort"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
)

// RowHistogram counts row activations per bank over n requests from gen,
// decoded through the given mapping policy. It reproduces the measurement
// behind the paper's Fig. 3 (row-address frequency in a DRAM bank during
// one refresh interval).
func RowHistogram(gen Generator, g dram.Geometry, policy addrmap.Policy, n int) [][]int64 {
	hist := make([][]int64, g.TotalBanks())
	for b := range hist {
		hist[b] = make([]int64, g.RowsPerBank)
	}
	for i := 0; i < n; i++ {
		c := policy.Decode(gen.Next().Addr)
		hist[g.Flat(c.Bank)][c.Row]++
	}
	return hist
}

// SkewSummary condenses one bank's histogram into the statistics the
// paper's motivation rests on: what fraction of accesses the top-k rows
// absorb, and how many distinct rows were touched.
type SkewSummary struct {
	Total         int64
	TouchedRows   int
	MaxPerRow     int64
	Top16Frac     float64 // fraction of accesses landing on the 16 hottest rows
	Top256Frac    float64
	MedianNonZero int64
}

// Summarise computes a SkewSummary for one bank histogram.
func Summarise(rows []int64) SkewSummary {
	var s SkewSummary
	nonZero := make([]int64, 0, 1024)
	for _, c := range rows {
		if c == 0 {
			continue
		}
		s.Total += c
		nonZero = append(nonZero, c)
		if c > s.MaxPerRow {
			s.MaxPerRow = c
		}
	}
	s.TouchedRows = len(nonZero)
	if s.Total == 0 {
		return s
	}
	sort.Slice(nonZero, func(i, j int) bool { return nonZero[i] > nonZero[j] })
	var top int64
	for i, c := range nonZero {
		top += c
		if i == 15 {
			s.Top16Frac = float64(top) / float64(s.Total)
		}
		if i == 255 {
			s.Top256Frac = float64(top) / float64(s.Total)
			break
		}
	}
	if s.Top16Frac == 0 {
		s.Top16Frac = 1
	}
	if s.Top256Frac == 0 {
		s.Top256Frac = 1
	}
	s.MedianNonZero = nonZero[len(nonZero)/2]
	return s
}
