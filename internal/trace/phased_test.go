package trace

import (
	"strings"
	"testing"
)

// constGen always returns the same request — enough to tell the phases
// apart.
type constGen struct {
	name string
	addr int64
}

func (g constGen) Name() string  { return g.name }
func (g constGen) Next() Request { return Request{Addr: g.addr, Gap: 1} }

func TestPhasedEdgeCases(t *testing.T) {
	early := constGen{name: "early", addr: 1}
	late := constGen{name: "late", addr: 2}

	t.Run("zero-length early phase", func(t *testing.T) {
		// switchAfter 0 (onset at 0.0): the early generator is never
		// drawn — every request comes from the late phase.
		p, err := NewPhased(0, early, late)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if got := p.Next().Addr; got != 2 {
				t.Fatalf("request %d drew from the early phase", i)
			}
		}
	})

	t.Run("switch exactly at the boundary", func(t *testing.T) {
		p, err := NewPhased(3, early, late)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if got := p.Next().Addr; got != 1 {
				t.Fatalf("request %d should be early, got addr %d", i, got)
			}
		}
		if got := p.Next().Addr; got != 2 {
			t.Fatalf("request 3 should be the first late request, got addr %d", got)
		}
	})

	t.Run("switch past the stream end", func(t *testing.T) {
		// Onset at 1.0 of an N-request run means a switch point the run
		// never reaches: all requests stay early. (sim rejects onset 1.0
		// up front; this locks the generator-level behaviour for callers
		// that size the phases themselves.)
		p, err := NewPhased(100, early, late)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if got := p.Next().Addr; got != 1 {
				t.Fatalf("request %d drew from the late phase before the switch", i)
			}
		}
		if got := p.Next().Addr; got != 2 {
			t.Fatal("request 100 should switch to the late phase")
		}
	})

	t.Run("validation", func(t *testing.T) {
		if _, err := NewPhased(-1, early, late); err == nil {
			t.Error("negative switch point accepted")
		}
		if _, err := NewPhased(1, nil, late); err == nil {
			t.Error("nil early generator accepted")
		}
		if _, err := NewPhased(1, early, nil); err == nil {
			t.Error("nil late generator accepted")
		}
	})

	t.Run("name encodes the phases", func(t *testing.T) {
		p, err := NewPhased(5, early, late)
		if err != nil {
			t.Fatal(err)
		}
		if name := p.Name(); !strings.Contains(name, "early") ||
			!strings.Contains(name, "late") || !strings.Contains(name, "5") {
			t.Errorf("name %q should encode both phases and the switch point", name)
		}
	})
}
