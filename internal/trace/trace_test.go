package trace

import (
	"testing"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
)

func testGeom() dram.Geometry { return dram.Default2Channel() }

func testPolicy(t *testing.T) addrmap.Policy {
	t.Helper()
	p, err := addrmap.NewRowInterleaved(testGeom())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustGen(t *testing.T, spec Spec, seed uint64) *Synthetic {
	t.Helper()
	g := testGeom()
	gen, err := NewSynthetic(spec, g.TotalBytes(), g.LineBytes, seed)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func TestAllPresetsValidAndGenerate(t *testing.T) {
	if len(Workloads()) != 18 {
		t.Fatalf("have %d workloads, want the paper's 18", len(Workloads()))
	}
	g := testGeom()
	for _, spec := range Workloads() {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		gen := mustGen(t, spec, 1)
		for i := 0; i < 1000; i++ {
			r := gen.Next()
			if r.Addr < 0 || r.Addr >= g.TotalBytes() {
				t.Fatalf("%s: address %#x out of memory", spec.Name, r.Addr)
			}
			if r.Addr%int64(g.LineBytes) != 0 {
				t.Fatalf("%s: address %#x not line aligned", spec.Name, r.Addr)
			}
			if r.Gap < 1 {
				t.Fatalf("%s: gap %d", spec.Name, r.Gap)
			}
		}
	}
}

func TestWorkloadNamesMatchFigureOrder(t *testing.T) {
	names := WorkloadNames()
	want := []string{"comm1", "comm2", "comm3", "comm4", "comm5",
		"swapt", "fluid", "str", "black", "ferret", "face", "freq",
		"MTC", "MTF", "libq", "leslie", "mum", "tigr"}
	if len(names) != len(want) {
		t.Fatalf("have %d names", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("position %d: %s, want %s", i, names[i], want[i])
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup("black")
	if err != nil || s.Name != "black" {
		t.Errorf("Lookup(black) = %v, %v", s, err)
	}
	if _, err := Lookup("nonexistent"); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	spec, _ := Lookup("comm1")
	a := mustGen(t, spec, 7)
	b := mustGen(t, spec, 7)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDistinctSeedsDistinctLayouts(t *testing.T) {
	spec, _ := Lookup("black")
	a, b := mustGen(t, spec, 1), mustGen(t, spec, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 100 {
		t.Errorf("%d/1000 identical addresses across seeds; layouts not distinct", same)
	}
}

func TestSkewedWorkloadConcentratesOnFewRows(t *testing.T) {
	// Fig. 3: for blackscholes "a small group of rows dominate overall
	// accesses". The 16 hottest rows of the hottest bank must absorb a
	// large fraction of that bank's accesses.
	spec, _ := Lookup("black")
	gen := mustGen(t, spec, 3)
	hist := RowHistogram(gen, testGeom(), testPolicy(t), 400000)
	best := SkewSummary{}
	for _, bank := range hist {
		s := Summarise(bank)
		if s.Total > best.Total {
			best = s
		}
	}
	if best.Top16Frac < 0.30 {
		t.Errorf("top-16 rows absorb %.2f of accesses, want >= 0.30", best.Top16Frac)
	}
}

func TestStreamingWorkloadIsFlat(t *testing.T) {
	// libquantum sweeps its footprint: accesses spread over many rows and
	// no row dominates.
	spec, _ := Lookup("libq")
	gen := mustGen(t, spec, 3)
	hist := RowHistogram(gen, testGeom(), testPolicy(t), 400000)
	var total int64
	var max int64
	touched := 0
	for _, bank := range hist {
		s := Summarise(bank)
		total += s.Total
		touched += s.TouchedRows
		if s.MaxPerRow > max {
			max = s.MaxPerRow
		}
	}
	if touched < 500 {
		t.Errorf("streaming workload touched only %d rows", touched)
	}
	if float64(max) > 0.2*float64(total) {
		t.Errorf("hottest row has %d of %d accesses; too skewed for streaming", max, total)
	}
}

func TestPhaseDriftMovesHotSpots(t *testing.T) {
	spec := Spec{Name: "drifty", Suite: "TEST", FootprintFrac: 0.5, HotSpots: 2,
		HotSigmaKB: 16, HotFraction: 0.9, PhaseLen: 5000, GapMean: 10}
	gen := mustGen(t, spec, 11)
	firstHot := make(map[int64]bool)
	for i := 0; i < 4000; i++ {
		firstHot[gen.Next().Addr>>20] = true // megabyte granularity
	}
	// Run through many phases; new megabyte regions must appear.
	later := 0
	for i := 0; i < 100000; i++ {
		if !firstHot[gen.Next().Addr>>20] {
			later++
		}
	}
	if later == 0 {
		t.Error("no new hot regions after phase changes")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x", FootprintFrac: 0, GapMean: 10},
		{Name: "x", FootprintFrac: 0.5, HotSpots: -1, GapMean: 10},
		{Name: "x", FootprintFrac: 0.5, HotFraction: 0.7, SweepFraction: 0.5, GapMean: 10},
		{Name: "x", FootprintFrac: 0.5, HotFraction: 0.5, HotSpots: 0, GapMean: 10},
		{Name: "x", FootprintFrac: 0.5, GapMean: 0},
		{Name: "x", FootprintFrac: 0.5, GapMean: 10, WriteFraction: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGapMeanControlsIntensity(t *testing.T) {
	mk := func(gap int) float64 {
		spec := Spec{Name: "g", Suite: "TEST", FootprintFrac: 0.5, GapMean: gap}
		gen := mustGen(t, spec, 5)
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gen.Next().Gap
		}
		return float64(sum) / n
	}
	slow, fast := mk(200), mk(20)
	if slow < 150 || slow > 250 {
		t.Errorf("mean gap %v for GapMean 200", slow)
	}
	if fast < 15 || fast > 25 {
		t.Errorf("mean gap %v for GapMean 20", fast)
	}
}

func TestAttackTargetsGaussianAndPerBank(t *testing.T) {
	g := testGeom()
	benign := mustGen(t, presets[0], 1)
	atk, err := NewAttack(0, Heavy, g, testPolicy(t), benign)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(atk.Targets()); got != g.TotalBanks()*TargetsPerBank {
		t.Errorf("targets = %d, want %d (4 per bank)", got, g.TotalBanks()*TargetsPerBank)
	}
	// Distinct kernels pick distinct targets.
	atk2, _ := NewAttack(1, Heavy, g, testPolicy(t), mustGen(t, presets[0], 1))
	same := 0
	for i, a := range atk.Targets() {
		if atk2.Targets()[i] == a {
			same++
		}
	}
	if same > len(atk.Targets())/4 {
		t.Errorf("%d/%d identical targets across kernels", same, len(atk.Targets()))
	}
}

func TestAttackModeBlendFractions(t *testing.T) {
	g := testGeom()
	p := testPolicy(t)
	for _, mode := range []AttackMode{Heavy, Medium, Light} {
		benign := mustGen(t, presets[0], 9)
		atk, err := NewAttack(3, mode, g, p, benign)
		if err != nil {
			t.Fatal(err)
		}
		targetSet := make(map[int64]bool)
		for _, a := range atk.Targets() {
			targetSet[a] = true
		}
		hits := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if targetSet[atk.Next().Addr] {
				hits++
			}
		}
		frac := float64(hits) / n
		want := mode.TargetFraction()
		// Benign traffic can also hit target addresses, so frac >= want.
		if frac < want-0.03 || frac > want+0.10 {
			t.Errorf("%s: target fraction %.3f, want about %.2f", mode, frac, want)
		}
	}
}

func TestMemoryIntensiveSubsetNonEmpty(t *testing.T) {
	mi := MemoryIntensive()
	if len(mi) < 4 {
		t.Errorf("only %d memory-intensive workloads", len(mi))
	}
	for _, s := range mi {
		if s.GapMean > 100 {
			t.Errorf("%s has GapMean %d", s.Name, s.GapMean)
		}
	}
}

// TestPhasedSwitchesGenerators checks the onset primitive: exactly
// switchAfter requests from the early stream, everything after from the
// late one, with the shared deterministic state intact.
func TestPhasedSwitchesGenerators(t *testing.T) {
	wl, err := Lookup("black")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Synthetic {
		g, err := NewSynthetic(wl, 1<<30, 64, 11)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	ref := mk()
	var want []Request
	for i := 0; i < 100; i++ {
		want = append(want, ref.Next())
	}
	// Phase both halves off the same underlying stream: the phased view
	// must replay it verbatim regardless of the switch point.
	shared := mk()
	phased, err := NewPhased(40, shared, shared)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := phased.Next(); got != w {
			t.Fatalf("request %d = %+v, want %+v", i, got, w)
		}
	}
	if _, err := NewPhased(-1, shared, shared); err == nil {
		t.Error("negative switch point accepted")
	}
	if _, err := NewPhased(1, nil, shared); err == nil {
		t.Error("nil early generator accepted")
	}
	name := mustPhasedName(t, shared)
	if name == "" {
		t.Error("phased stream needs a name")
	}
}

func mustPhasedName(t *testing.T, g Generator) string {
	t.Helper()
	p, err := NewPhased(3, g, g)
	if err != nil {
		t.Fatal(err)
	}
	return p.Name()
}
