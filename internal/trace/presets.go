package trace

import "fmt"

// The 18 named workloads of the paper's evaluation (§VI): five commercial
// traces plus selected PARSEC, SPEC and Biobench programs from the Memory
// Scheduling Championship. The parameters are chosen to reproduce the
// qualitative row-access behaviour the paper reports — Fig. 3's "a small
// group of rows dominate overall accesses" for blackscholes and facesim,
// streaming for libquantum/streamcluster, large scattered footprints for
// the bio workloads, and phase drift for the multithreaded traces — not to
// replay the original instruction streams (see DESIGN.md, substitution S2).
var presets = []Spec{
	// Commercial server traces: intense, skewed across many hot pages,
	// drifting (the MSC comm traces are the most memory-intensive group).
	{Name: "comm1", Suite: "COMM", FootprintFrac: 0.20, HotSpots: 24, HotSigmaKB: 16, HotFraction: 0.75, SweepFraction: 0.05, PhaseLen: 2_000_000, GapMean: 45, WriteFraction: 0.30, ZipfS: 1.3},
	{Name: "comm2", Suite: "COMM", FootprintFrac: 0.25, HotSpots: 32, HotSigmaKB: 24, HotFraction: 0.70, SweepFraction: 0.05, PhaseLen: 2_000_000, GapMean: 50, WriteFraction: 0.35, ZipfS: 1.3},
	{Name: "comm3", Suite: "COMM", FootprintFrac: 0.15, HotSpots: 16, HotSigmaKB: 12, HotFraction: 0.78, SweepFraction: 0.05, PhaseLen: 1_000_000, GapMean: 42, WriteFraction: 0.30, ZipfS: 1.4},
	{Name: "comm4", Suite: "COMM", FootprintFrac: 0.30, HotSpots: 28, HotSigmaKB: 32, HotFraction: 0.65, SweepFraction: 0.10, PhaseLen: 3_000_000, GapMean: 55, WriteFraction: 0.30, ZipfS: 1.2},
	{Name: "comm5", Suite: "COMM", FootprintFrac: 0.20, HotSpots: 20, HotSigmaKB: 16, HotFraction: 0.72, SweepFraction: 0.05, PhaseLen: 2_000_000, GapMean: 48, WriteFraction: 0.25, ZipfS: 1.3},

	// PARSEC.
	{Name: "swapt", Suite: "PARSEC", FootprintFrac: 0.05, HotSpots: 6, HotSigmaKB: 8, HotFraction: 0.65, SweepFraction: 0, PhaseLen: 0, GapMean: 140, WriteFraction: 0.10, ZipfS: 1.3},
	{Name: "fluid", Suite: "PARSEC", FootprintFrac: 0.20, HotSpots: 12, HotSigmaKB: 16, HotFraction: 0.55, SweepFraction: 0.05, PhaseLen: 4_000_000, GapMean: 100, WriteFraction: 0.20, ZipfS: 1.2},
	{Name: "str", Suite: "PARSEC", FootprintFrac: 0.50, HotSpots: 8, HotSigmaKB: 8, HotFraction: 0.30, SweepFraction: 0.55, PhaseLen: 0, GapMean: 60, WriteFraction: 0.15, ZipfS: 1.1},
	{Name: "black", Suite: "PARSEC", FootprintFrac: 0.06, HotSpots: 10, HotSigmaKB: 6, HotFraction: 0.90, SweepFraction: 0, PhaseLen: 0, GapMean: 70, WriteFraction: 0.10, ZipfS: 1.5},
	{Name: "ferret", Suite: "PARSEC", FootprintFrac: 0.25, HotSpots: 16, HotSigmaKB: 16, HotFraction: 0.60, SweepFraction: 0.05, PhaseLen: 3_000_000, GapMean: 90, WriteFraction: 0.20, ZipfS: 1.2},
	{Name: "face", Suite: "PARSEC", FootprintFrac: 0.30, HotSpots: 24, HotSigmaKB: 12, HotFraction: 0.72, SweepFraction: 0.05, PhaseLen: 1_500_000, GapMean: 55, WriteFraction: 0.25, ZipfS: 1.3},
	{Name: "freq", Suite: "PARSEC", FootprintFrac: 0.20, HotSpots: 14, HotSigmaKB: 12, HotFraction: 0.60, SweepFraction: 0.05, PhaseLen: 2_000_000, GapMean: 85, WriteFraction: 0.20, ZipfS: 1.3},

	// SPEC (the MSC multithreaded canneal/fluidanimate mixes plus
	// libquantum and leslie3d).
	{Name: "MTC", Suite: "SPEC", FootprintFrac: 0.40, HotSpots: 28, HotSigmaKB: 24, HotFraction: 0.60, SweepFraction: 0.10, PhaseLen: 1_000_000, GapMean: 50, WriteFraction: 0.30, ZipfS: 1.2},
	{Name: "MTF", Suite: "SPEC", FootprintFrac: 0.35, HotSpots: 24, HotSigmaKB: 20, HotFraction: 0.62, SweepFraction: 0.05, PhaseLen: 1_500_000, GapMean: 55, WriteFraction: 0.30, ZipfS: 1.2},
	{Name: "libq", Suite: "SPEC", FootprintFrac: 0.60, HotSpots: 4, HotSigmaKB: 8, HotFraction: 0.15, SweepFraction: 0.80, PhaseLen: 0, GapMean: 40, WriteFraction: 0.05, ZipfS: 1.0},
	{Name: "leslie", Suite: "SPEC", FootprintFrac: 0.40, HotSpots: 12, HotSigmaKB: 16, HotFraction: 0.45, SweepFraction: 0.35, PhaseLen: 2_500_000, GapMean: 60, WriteFraction: 0.25, ZipfS: 1.2},

	// Biobench: genome tools with large, scattered working sets.
	{Name: "mum", Suite: "BIO", FootprintFrac: 0.60, HotSpots: 12, HotSigmaKB: 32, HotFraction: 0.42, SweepFraction: 0.20, PhaseLen: 1_000_000, GapMean: 70, WriteFraction: 0.15, ZipfS: 1.2},
	{Name: "tigr", Suite: "BIO", FootprintFrac: 0.65, HotSpots: 14, HotSigmaKB: 40, HotFraction: 0.45, SweepFraction: 0.15, PhaseLen: 1_000_000, GapMean: 68, WriteFraction: 0.15, ZipfS: 1.2},
}

// Workloads returns the 18 named workload specs in the paper's figure order.
func Workloads() []Spec {
	out := make([]Spec, len(presets))
	copy(out, presets)
	return out
}

// WorkloadNames returns the names in figure order.
func WorkloadNames() []string {
	names := make([]string, len(presets))
	for i, s := range presets {
		names[i] = s.Name
	}
	return names
}

// Lookup returns the spec with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range presets {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("trace: unknown workload %q", name)
}

// MemoryIntensive returns the subset of workloads the attack study blends
// with kernel attacks (§VIII-D uses "memory-intensive workloads").
func MemoryIntensive() []Spec {
	var out []Spec
	for _, s := range presets {
		if s.GapMean <= 100 {
			out = append(out, s)
		}
	}
	return out
}
