package trace

import (
	"testing"

	"catsim/internal/addrmap"
)

// Tests for the adversarial attack patterns beyond the paper's Gaussian
// kernels, and the blend-mode convergence contract.

func mustAttack(t *testing.T, kernel int, mode AttackMode, p Pattern) *Attack {
	t.Helper()
	atk, err := NewAttackPattern(kernel, mode, p, testGeom(), testPolicy(t), mustGen(t, presets[0], 5))
	if err != nil {
		t.Fatal(err)
	}
	return atk
}

func allPatterns() []Pattern {
	return []Pattern{PatternGaussian, PatternDoubleSided, PatternManySided, PatternBankSweep}
}

func TestPatternStrings(t *testing.T) {
	want := map[Pattern]string{
		PatternGaussian:    "gauss",
		PatternDoubleSided: "double",
		PatternManySided:   "many",
		PatternBankSweep:   "sweep",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Pattern %d = %q, want %q", int(p), p.String(), s)
		}
	}
	if Pattern(9).String() != "Pattern(9)" {
		t.Errorf("unknown pattern = %q", Pattern(9).String())
	}
}

func TestUnknownPatternRejected(t *testing.T) {
	_, err := NewAttackPattern(0, Heavy, Pattern(9), testGeom(), testPolicy(t), mustGen(t, presets[0], 5))
	if err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}

func TestPatternsRejectUndersizedGeometry(t *testing.T) {
	// Aggressor layouts that do not fit the bank must fail loudly, not
	// silently fold rows out of range.
	g := testGeom()
	g.RowsPerBank = 8 // valid power of two, too small for many-sided (needs 17)
	p, err := addrmap.NewRowInterleaved(g)
	if err != nil {
		t.Fatal(err)
	}
	benign, err := NewSynthetic(presets[0], g.TotalBytes(), g.LineBytes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAttackPattern(0, Heavy, PatternManySided, g, p, benign); err == nil {
		t.Error("many-sided accepted an 8-row bank")
	}
	if _, err := NewAttackPattern(0, Heavy, PatternGaussian, g, p, benign); err != nil {
		t.Errorf("gaussian rejected an 8-row bank: %v", err)
	}
}

func TestGaussianPatternKeepsLegacyKernelSeeds(t *testing.T) {
	// The adversarial patterns must not perturb the paper's kernels:
	// NewAttack (Gaussian) picks the same targets as before the pattern
	// seed space was added, i.e. independent of pattern numbering.
	atk, err := NewAttack(3, Heavy, testGeom(), testPolicy(t), mustGen(t, presets[0], 5))
	if err != nil {
		t.Fatal(err)
	}
	again := mustAttack(t, 3, Heavy, PatternGaussian)
	if len(atk.Targets()) != len(again.Targets()) {
		t.Fatal("target count diverged")
	}
	for i := range atk.Targets() {
		if atk.Targets()[i] != again.Targets()[i] {
			t.Fatal("NewAttack and NewAttackPattern(Gaussian) diverged")
		}
	}
}

// TestAttackModeFractionsConverge asserts the §VIII-D blend contract for
// every pattern: the fraction of emissions that are attack requests (the
// tight hammer gap marks them) converges to 0.75/0.50/0.25 for
// Heavy/Medium/Light.
func TestAttackModeFractionsConverge(t *testing.T) {
	const n = 100_000
	const tol = 0.02
	for _, pattern := range allPatterns() {
		for _, mode := range []AttackMode{Heavy, Medium, Light} {
			atk := mustAttack(t, 3, mode, pattern)
			targetSet := make(map[int64]bool)
			for _, a := range atk.Targets() {
				targetSet[a] = true
			}
			attacks := 0
			for i := 0; i < n; i++ {
				// Attack emissions are target accesses with the tight
				// hammer gap; a benign request matching both is possible
				// but vanishingly rare, so the empirical fraction must
				// converge to the mode's blend.
				if r := atk.Next(); r.Gap == hammerGap && targetSet[r.Addr] {
					attacks++
				}
			}
			frac := float64(attacks) / n
			if want := mode.TargetFraction(); frac < want-tol || frac > want+tol {
				t.Errorf("%s/%s: attack fraction %.4f, want %.2f±%.2f", pattern, mode, frac, want, tol)
			}
		}
	}
}

// TestAdversarialPatternsDeterministicPerSeed is the satellite determinism
// contract: identical (kernel, mode, pattern) arguments reproduce the
// exact request stream; distinct kernels diverge.
func TestAdversarialPatternsDeterministicPerSeed(t *testing.T) {
	const n = 20_000
	for _, pattern := range allPatterns() {
		a := mustAttack(t, 4, Heavy, pattern)
		b := mustAttack(t, 4, Heavy, pattern)
		other := mustAttack(t, 5, Heavy, pattern)
		diverged := false
		for i := 0; i < n; i++ {
			ra, rb := a.Next(), b.Next()
			if ra != rb {
				t.Fatalf("%s: same kernel diverged at request %d: %+v vs %+v", pattern, i, ra, rb)
			}
			if ro := other.Next(); ro != ra {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: distinct kernels emitted identical streams", pattern)
		}
	}
}

func TestDoubleSidedEmitsAdjacentPairs(t *testing.T) {
	g := testGeom()
	p := testPolicy(t)
	atk := mustAttack(t, 2, Heavy, PatternDoubleSided)
	if got, want := len(atk.Targets()), g.TotalBanks()*TargetsPerBank; got != want {
		t.Fatalf("targets = %d, want %d", got, want)
	}
	// Consecutive target entries are an aggressor pair around one victim.
	for i := 0; i+1 < len(atk.Targets()); i += 2 {
		lo := p.Decode(atk.Targets()[i])
		hi := p.Decode(atk.Targets()[i+1])
		if lo.Bank != hi.Bank {
			t.Fatalf("pair %d spans banks %v and %v", i/2, lo.Bank, hi.Bank)
		}
		if hi.Row-lo.Row != 2 {
			t.Errorf("pair %d rows %d/%d, want an aggressor pair two apart", i/2, lo.Row, hi.Row)
		}
	}
	// Emission alternates the two sides of a pair: between consecutive
	// attack emissions, the second aggressor (same bank, row+2) must
	// regularly complete the first.
	type coord struct {
		bank int
		row  int
	}
	var prev *coord
	pairs, attacks := 0, 0
	for i := 0; i < 10_000; i++ {
		r := atk.Next()
		if r.Gap != hammerGap {
			continue
		}
		attacks++
		c := p.Decode(r.Addr)
		cur := coord{bank: testGeom().Flat(c.Bank), row: c.Row}
		if prev != nil && cur.bank == prev.bank && cur.row == prev.row+2 {
			pairs++
		}
		prev = &cur
	}
	if pairs < attacks/4 {
		t.Errorf("only %d of %d attack emissions completed an aggressor pair", pairs, attacks)
	}
}

func TestManySidedRoundRobinsAcrossBanks(t *testing.T) {
	p := testPolicy(t)
	atk := mustAttack(t, 2, Heavy, PatternManySided)
	g := testGeom()
	if got, want := len(atk.Targets()), g.TotalBanks()*2*TargetsPerBank; got != want {
		t.Fatalf("targets = %d, want %d", got, want)
	}
	// The first TotalBanks() entries of the walk touch every bank once.
	seen := map[int]bool{}
	for _, a := range atk.Targets()[:g.TotalBanks()] {
		c := p.Decode(a)
		seen[g.Flat(c.Bank)] = true
	}
	if len(seen) != g.TotalBanks() {
		t.Errorf("first round touches %d banks, want %d", len(seen), g.TotalBanks())
	}
	// Within one bank the aggressors are spaced two apart.
	c0 := p.Decode(atk.Targets()[0])
	c1 := p.Decode(atk.Targets()[g.TotalBanks()])
	if c0.Bank != c1.Bank || c1.Row-c0.Row != 2 {
		t.Errorf("bank cluster not spaced two apart: %v/%d then %v/%d", c0.Bank, c0.Row, c1.Bank, c1.Row)
	}
}

func TestBankSweepHitsSameRowsInEveryBank(t *testing.T) {
	p := testPolicy(t)
	g := testGeom()
	atk := mustAttack(t, 2, Heavy, PatternBankSweep)
	if got, want := len(atk.Targets()), g.TotalBanks()*2; got != want {
		t.Fatalf("targets = %d, want %d", got, want)
	}
	first := p.Decode(atk.Targets()[0])
	banks := map[int]bool{}
	for i, a := range atk.Targets() {
		c := p.Decode(a)
		banks[g.Flat(c.Bank)] = true
		wantRow := first.Row
		if i%2 == 1 {
			wantRow += 2
		}
		if c.Row != wantRow {
			t.Errorf("target %d row %d, want %d (same pair in every bank)", i, c.Row, wantRow)
		}
	}
	if len(banks) != g.TotalBanks() {
		t.Errorf("sweep touches %d banks, want %d", len(banks), g.TotalBanks())
	}
}
