package server

import (
	"io"
	"strings"
	"testing"

	"catsim/internal/engine"
)

// benchSample is a representative epoch sample for encoder benchmarks:
// every numeric field populated so the JSON is full-width.
func benchSample() engine.Sample {
	return engine.Sample{
		Epoch:             42,
		EndNS:             2.56e7,
		Activations:       123456,
		RefreshEvents:     17,
		RowsRefreshed:     233,
		Reads:             98765,
		Writes:            24691,
		AvgReadLatencyNS:  87.3125,
		VictimBusyCycles:  5120,
		CountersLive:      384,
		CountersCap:       512,
		TreeDepth:         11,
		Reconfigs:         3,
		MissedVictimRows:  1,
		ExposedVictimRows: 2,
	}
}

// TestNDJSONEncoderAllocs pins the per-sample allocation budget of the
// hot streaming path. json.Encoder reuses its buffer, so steady-state
// encoding should stay within a small constant number of allocations.
func TestNDJSONEncoderAllocs(t *testing.T) {
	enc := newNDJSONEncoder(io.Discard)
	s := benchSample()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := enc.sample(&s); err != nil {
			t.Fatal(err)
		}
	})
	// Envelope marshal + encoder internals; 8 is generous headroom over
	// the observed count, but catches an accidental per-sample copy of
	// the sample or a fresh encoder per line.
	if allocs > 8 {
		t.Errorf("ndjson encode = %.1f allocs/sample, want <= 8", allocs)
	}
}

// TestSSEEncoderFramesMatchNDJSON: both framings carry the same JSON
// payload bytes.
func TestSSEEncoderFramesMatchNDJSON(t *testing.T) {
	var nd, sse strings.Builder
	s := benchSample()
	if err := newNDJSONEncoder(&nd).sample(&s); err != nil {
		t.Fatal(err)
	}
	if err := newSSEEncoder(&sse).sample(&s); err != nil {
		t.Fatal(err)
	}
	ndLine := strings.TrimSuffix(nd.String(), "\n")
	inner := strings.TrimSuffix(strings.TrimPrefix(ndLine, `{"sample":`), "}")
	want := "event: sample\ndata: " + inner + "\n\n"
	if sse.String() != want {
		t.Errorf("SSE frame:\n got %q\nwant %q", sse.String(), want)
	}
}

// BenchmarkServerStreamEncode measures ns/sample of the NDJSON streaming
// encoder — the per-epoch cost every attached stream pays. Tracked in
// BENCH_server.json and gated against bench/baseline.
func BenchmarkServerStreamEncode(b *testing.B) {
	enc := newNDJSONEncoder(io.Discard)
	s := benchSample()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.sample(&s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerStreamEncodeSSE is the SSE-framed counterpart.
func BenchmarkServerStreamEncodeSSE(b *testing.B) {
	enc := newSSEEncoder(io.Discard)
	s := benchSample()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.sample(&s); err != nil {
			b.Fatal(err)
		}
	}
}
