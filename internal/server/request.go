package server

import (
	"fmt"
	"strings"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/sim"
	"catsim/internal/trace"
	"catsim/internal/workload"
)

// JobRequest is the POST /v1/jobs body: a declarative simulation job
// reusing the library's spec grammars verbatim — the scheme spec
// (mitigation.ParseSpec), the geometry spec (dram.ParseGeometry) and the
// workload name registries (closed-loop trace presets and open-loop ol-*
// cohorts). Zero-valued fields take the documented defaults, so two
// requests that differ only in spelled-out defaults normalise to the same
// canonical job. Validation failures surface as HTTP 400 with the same
// valid-set listings the CLIs print on exit 2.
type JobRequest struct {
	// Scheme is the mitigation scheme spec, e.g.
	// "drcat:counters=64,levels=11" or "comet:threshold=32768,counters=512".
	// A threshold inside the spec overrides the Threshold field.
	Scheme string `json:"scheme"`
	// Geometry is the DRAM geometry spec, e.g. "ddr5:channels=8"
	// ("" = the paper's 2ch baseline).
	Geometry string `json:"geometry,omitempty"`
	// Workload names a closed-loop trace workload ("black", "comm1", ...)
	// or an open-loop cohort preset ("ol-poisson", "ol-bursty", ...).
	Workload string `json:"workload"`
	// Cores is the closed-loop core count (default 2; ignored for
	// open-loop workloads).
	Cores int `json:"cores,omitempty"`
	// Requests is the per-core request budget (open-loop: the total
	// arrival budget). Default 6000.
	Requests int `json:"requests,omitempty"`
	// Attacker embeds an attacker tenant issuing this fraction of
	// arrivals (open-loop workloads only).
	Attacker float64 `json:"attacker,omitempty"`
	// Threshold is the refresh threshold T before scaling (default 32768;
	// a threshold in the scheme spec wins).
	Threshold uint32 `json:"threshold,omitempty"`
	// Scale shortens the run: thresholds and the auto-refresh interval
	// are scaled by it (default 0.01; 1 = one full 64 ms interval).
	Scale float64 `json:"scale,omitempty"`
	// Seed seeds the workload and scheme PRNG streams (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// EpochNS slices the run into fixed epochs of this many nanoseconds;
	// each completed epoch streams out as one sample. 0 disables
	// sampling (the stream then carries only the final result).
	EpochNS float64 `json:"epoch_ns,omitempty"`
	// Epochs is a convenience alternative to EpochNS: the scaled
	// auto-refresh interval divided into this many epochs. Mutually
	// exclusive with EpochNS.
	Epochs int `json:"epochs,omitempty"`
	// Oracle attaches the crosstalk oracle (protection accounting).
	Oracle bool `json:"oracle,omitempty"`
	// Affine pins core i's stream to channel i mod channels
	// (sim.Config.ChannelAffine); required for sharded runs.
	Affine bool `json:"affine,omitempty"`
	// Shards requests the channel-partitioned engine (0 = sequential).
	Shards int `json:"shards,omitempty"`
}

// maxRequests bounds a single job's request budget so one POST cannot
// park a worker for hours; sweeps that large belong in cmd/experiments.
const maxRequests = 10_000_000

// normalize applies the documented defaults in place, so equal jobs
// spelled differently produce identical configs (and cache keys), and so
// snapshots persist the resolved request.
func (r *JobRequest) normalize() {
	if r.Cores == 0 {
		r.Cores = 2
	}
	if r.Requests == 0 {
		r.Requests = 6000
	}
	if r.Threshold == 0 {
		r.Threshold = 32768
	}
	if r.Scale == 0 {
		r.Scale = 0.01
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
}

// Config validates the request and builds the sim.Config it describes.
// The derivation matches cmd/replay's: thresholds and the auto-refresh
// interval scale together, so a server job and a direct CLI run of the
// same parameters produce byte-identical Results.
func (r *JobRequest) Config() (sim.Config, error) {
	r.normalize()
	switch {
	case r.Workload == "":
		return sim.Config{}, fmt.Errorf("missing workload (closed-loop: %s; open-loop: %s)",
			joinNames(trace.WorkloadNames()), joinNames(workload.Names()))
	case r.Scheme == "":
		return sim.Config{}, fmt.Errorf("missing scheme spec (e.g. %q; valid kinds via an invalid kind error)",
			"drcat:counters=64,levels=11")
	case r.Scale <= 0 || r.Scale > 1:
		return sim.Config{}, fmt.Errorf("scale %g out of (0, 1]", r.Scale)
	case r.Requests < 1 || r.Requests > maxRequests:
		return sim.Config{}, fmt.Errorf("requests %d out of [1, %d]", r.Requests, maxRequests)
	case r.EpochNS < 0:
		return sim.Config{}, fmt.Errorf("epoch_ns %g must not be negative", r.EpochNS)
	case r.Epochs < 0:
		return sim.Config{}, fmt.Errorf("epochs %d must not be negative", r.Epochs)
	case r.Epochs > 0 && r.EpochNS > 0:
		return sim.Config{}, fmt.Errorf("epochs and epoch_ns are mutually exclusive")
	}

	ms, err := mitigation.ParseSpec(r.Scheme)
	if err != nil {
		return sim.Config{}, err
	}
	spec, err := sim.FromSpec(ms)
	if err != nil {
		return sim.Config{}, err
	}
	threshold := r.Threshold
	if ms.Threshold != 0 {
		threshold = ms.Threshold
	}
	cfg := sim.Config{
		Geometry:        dram.Default2Channel(),
		Scheme:          spec,
		Threshold:       uint32(float64(threshold) * r.Scale),
		ThresholdScale:  r.Scale,
		IntervalNS:      dram.RefreshIntervalNS() * r.Scale,
		Seed:            r.Seed,
		CheckProtection: r.Oracle,
		ChannelAffine:   r.Affine,
		Shards:          r.Shards,
		EpochNS:         r.EpochNS,
	}
	if cfg.Threshold < 1 {
		return sim.Config{}, fmt.Errorf("threshold %d at scale %g rounds to zero", threshold, r.Scale)
	}
	if r.Epochs > 0 {
		cfg.EpochNS = cfg.IntervalNS / float64(r.Epochs)
	}
	if r.Geometry != "" {
		gs, err := dram.ParseGeometry(r.Geometry)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Geometry = gs.Geometry()
	}

	if ol, err := workload.Lookup(r.Workload); err == nil {
		ol.Requests = r.Requests
		if r.Attacker > 0 {
			ol.Cohort.Attacker = &workload.AttackerSpec{
				Fraction: r.Attacker, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided,
			}
		}
		cfg.OpenLoop = &ol
	} else {
		wl, err := trace.Lookup(r.Workload)
		if err != nil {
			return sim.Config{}, fmt.Errorf("unknown workload %q (closed-loop: %s; open-loop: %s)",
				r.Workload, joinNames(trace.WorkloadNames()), joinNames(workload.Names()))
		}
		if r.Attacker > 0 {
			return sim.Config{}, fmt.Errorf("attacker needs an open-loop workload, got closed-loop %q", r.Workload)
		}
		cfg.Cores = r.Cores
		cfg.RequestsPerCore = r.Requests
		cfg.Workload = wl
	}
	// Surface config-level errors (bad core/shard combinations, geometry
	// validation) at submission time as 400s, not as failed jobs.
	return cfg, sim.Validate(cfg)
}

func joinNames(names []string) string { return strings.Join(names, " ") }
