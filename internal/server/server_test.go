package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"catsim/internal/engine"
	"catsim/internal/sim"
)

// testJob is the canonical small job the lifecycle tests submit: epochs
// on, small enough to finish fast, big enough to produce several samples.
func testJob() JobRequest {
	return JobRequest{
		Scheme:   "drcat:counters=64,levels=11",
		Workload: "black",
		Cores:    2,
		Requests: 2000,
		Scale:    0.01,
		Seed:     7,
		Epochs:   8,
	}
}

// newTestServer builds, starts and tears down a server around its
// httptest front end.
func newTestServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// submit POSTs a job and decodes the submission response.
func submit(t *testing.T, ts *httptest.Server, req JobRequest, wantCode int) jobStatus {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /v1/jobs = %d, want %d (body: %s)", resp.StatusCode, wantCode, raw)
	}
	var st jobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding submission response %q: %v", raw, err)
	}
	return st
}

// streamBody fetches a job's full NDJSON stream to completion.
func streamBody(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// parseStream decodes an NDJSON stream into its samples and final line.
func parseStream(t *testing.T, body []byte) (samples []engine.Sample, result *sim.Result, errMsg string) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(nil, 1<<20)
	for sc.Scan() {
		var line struct {
			Sample *engine.Sample  `json:"sample"`
			Result json.RawMessage `json:"result"`
			Error  string          `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Sample != nil:
			if result != nil || errMsg != "" {
				t.Fatal("sample after the terminal line")
			}
			samples = append(samples, *line.Sample)
		case line.Result != nil:
			result = &sim.Result{}
			if err := json.Unmarshal(line.Result, result); err != nil {
				t.Fatal(err)
			}
		case line.Error != "":
			errMsg = line.Error
		default:
			t.Fatalf("empty stream line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, result, errMsg
}

// TestJobLifecycle is the tentpole contract: POST → stream → result, with
// the streamed samples and final result byte-identical to a direct
// sim.Run of the same config.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := testJob()
	st := submit(t, ts, req, http.StatusAccepted)
	if st.State != "queued" || st.Cached {
		t.Errorf("fresh submission = %+v, want queued/uncached", st)
	}

	samples, result, errMsg := parseStream(t, streamBody(t, ts, st.ID))
	if errMsg != "" {
		t.Fatalf("stream failed: %s", errMsg)
	}
	if result == nil {
		t.Fatal("stream ended without a result line")
	}
	if len(samples) == 0 {
		t.Fatal("stream carried no epoch samples")
	}

	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(*result)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("streamed result diverges from direct sim.Run:\n got: %s\nwant: %s", gotJSON, wantJSON)
	}
	sJSON, _ := json.Marshal(samples)
	eJSON, _ := json.Marshal(want.Epochs)
	if !bytes.Equal(sJSON, eJSON) {
		t.Errorf("streamed samples diverge from Result.Epochs (%d vs %d)", len(samples), len(want.Epochs))
	}

	// Status endpoint agrees once done.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != "done" || got.Samples != len(samples) {
		t.Errorf("status after completion = %+v", got)
	}

	// A second job differing only in seed lands on the same worker
	// (Workers: 1) and must reuse its pooled run context instead of
	// building a fresh component stack — observable through /v1/stats.
	next := testJob()
	next.Seed = 8
	st2 := submit(t, ts, next, http.StatusAccepted)
	if _, res2, _ := parseStream(t, streamBody(t, ts, st2.ID)); res2 == nil {
		t.Fatal("second job did not complete")
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["engine_runs"] != 2 || stats["jobs"] != 2 {
		t.Errorf("stats after two jobs = %v, want engine_runs=2 jobs=2", stats)
	}
	if stats["context_builds"] < 1 || stats["context_reuses"] < 1 {
		t.Errorf("context pool stats = builds %d, reuses %d; want at least one build and one reuse",
			stats["context_builds"], stats["context_reuses"])
	}
}

// TestRepeatPostServedFromCache: an identical job POSTed twice — even
// spelled with explicit defaults — streams byte-identical NDJSON with the
// second served from the sim.CacheKey-interned job: zero new engine runs.
func TestRepeatPostServedFromCache(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	st1 := submit(t, ts, testJob(), http.StatusAccepted)
	first := streamBody(t, ts, st1.ID)

	if runs := s.EngineRuns(); runs != 1 {
		t.Fatalf("engine runs after first job = %d, want 1", runs)
	}
	respelled := testJob()
	respelled.Threshold = 32768 // the default, spelled out
	respelled.Seed = 7
	st2 := submit(t, ts, respelled, http.StatusOK)
	if !st2.Cached || st2.ID != st1.ID {
		t.Fatalf("second POST = %+v, want cached attach to %s", st2, st1.ID)
	}
	second := streamBody(t, ts, st2.ID)
	if !bytes.Equal(first, second) {
		t.Error("replayed stream is not byte-identical to the live stream")
	}
	if runs := s.EngineRuns(); runs != 1 {
		t.Errorf("engine runs after repeat POST = %d, want 1 (no new work)", runs)
	}
}

// TestConcurrentStreamsWhileRunning: a stream attached before the run
// finishes sees the same bytes as one attached after.
func TestConcurrentStreamsWhileRunning(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := testJob()
	req.Requests = 4000
	st := submit(t, ts, req, http.StatusAccepted)
	type streamOut struct{ body []byte }
	live := make(chan streamOut)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
		if err != nil {
			live <- streamOut{}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		live <- streamOut{body: b}
	}()
	after := streamBody(t, ts, st.ID) // blocks until done
	liveOut := <-live
	if liveOut.body == nil {
		t.Fatal("live stream failed")
	}
	if !bytes.Equal(liveOut.body, after) {
		t.Error("live stream diverges from post-hoc replay")
	}
}

// TestResultEndpoint: /result blocks until done and returns the bare
// sim.Result JSON.
func TestResultEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := submit(t, ts, testJob(), http.StatusAccepted)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %d", resp.StatusCode)
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Counts.Activations == 0 {
		t.Error("result carries no activations")
	}
}

// TestSSEFraming: the same stream framed as server-sent events.
func TestSSEFraming(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := submit(t, ts, testJob(), http.StatusAccepted)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+st.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "event: sample\ndata: {") {
		t.Error("missing sample events")
	}
	if !strings.HasSuffix(strings.TrimRight(text, "\n"), "}") || !strings.Contains(text, "event: result\ndata: {") {
		t.Error("missing terminal result event")
	}
	// The SSE result payload equals the NDJSON result payload.
	ndSamples, ndResult, _ := parseStream(t, streamBody(t, ts, st.ID))
	wantResult, _ := json.Marshal(ndResult)
	if !strings.Contains(text, "event: result\ndata: "+string(wantResult)+"\n\n") {
		t.Error("SSE result payload diverges from NDJSON result payload")
	}
	if wantFirst, _ := json.Marshal(ndSamples[0]); !strings.Contains(text, "data: "+string(wantFirst)+"\n\n") {
		t.Error("SSE sample payload diverges from NDJSON sample payload")
	}
}

// TestMalformedRequests is the 400-table satellite: every Parse* grammar
// error surfaces as a 400 whose body carries the valid-set listing the
// CLIs print on exit 2.
func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		body string
		want string // substring of the error body
	}{
		{"not json", `{`, "bad request body"},
		{"unknown field", `{"scheme":"sca:counters=16","workload":"black","bogus":1}`, "bogus"},
		{"missing workload", `{"scheme":"sca:counters=16"}`, "missing workload"},
		{"missing scheme", `{"workload":"black"}`, "missing scheme"},
		{"unknown scheme kind", `{"scheme":"bogus:counters=1","workload":"black"}`, "unknown scheme kind"},
		{"scheme kind listing", `{"scheme":"bogus:counters=1","workload":"black"}`, "valid:"},
		{"bad scheme param", `{"scheme":"sca:bogus=1","workload":"black"}`, `unknown param "bogus"`},
		{"bad param value", `{"scheme":"sca:counters=abc","workload":"black"}`, "want number"},
		{"unknown workload", `{"scheme":"sca:counters=16","workload":"nope"}`, `unknown workload "nope"`},
		{"workload listing", `{"scheme":"sca:counters=16","workload":"nope"}`, "ol-poisson"},
		{"unknown geometry", `{"scheme":"sca:counters=16","workload":"black","geometry":"nope"}`, "unknown preset"},
		{"bad geometry field", `{"scheme":"sca:counters=16","workload":"black","geometry":"ddr5:bogus=1"}`, `unknown field "bogus"`},
		{"bad scale", `{"scheme":"sca:counters=16","workload":"black","scale":2}`, "scale 2 out of"},
		{"threshold underflow", `{"scheme":"sca:counters=16","workload":"black","threshold":10,"scale":0.01}`, "rounds to zero"},
		{"huge budget", `{"scheme":"sca:counters=16","workload":"black","requests":99999999}`, "out of [1,"},
		{"epochs conflict", `{"scheme":"sca:counters=16","workload":"black","epochs":4,"epoch_ns":100}`, "mutually exclusive"},
		{"attacker on closed loop", `{"scheme":"sca:counters=16","workload":"black","attacker":0.5}`, "open-loop"},
		{"shards without affine", `{"scheme":"sca:counters=16","workload":"black","shards":4}`, "channel-affine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body: %s)", resp.StatusCode, raw)
			}
			var envelope struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &envelope); err != nil {
				t.Fatalf("400 body %q is not the JSON error envelope: %v", raw, err)
			}
			if !strings.Contains(envelope.Error, tc.want) {
				t.Errorf("error %q missing %q", envelope.Error, tc.want)
			}
		})
	}
}

// TestUnknownJob404 covers the job-miss paths.
func TestUnknownJob404(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, path := range []string{"/v1/jobs/jdeadbeef", "/v1/jobs/jdeadbeef/stream", "/v1/jobs/jdeadbeef/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestQueueFull503: with no workers started, a bounded queue rejects the
// overflow POST with 503 — and forgets it, so a retry can succeed.
func TestQueueFull503(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not Started: jobs stay queued.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := testJob()
	submit(t, ts, first, http.StatusAccepted)
	second := testJob()
	second.Seed = 99
	body, _ := json.Marshal(second)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow POST = %d, want 503 (body: %s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "queue full") {
		t.Errorf("503 body %q should name the full queue", raw)
	}
	// The rejected job left no residue: the store only holds the first.
	if n := len(s.store.jobs()); n != 1 {
		t.Errorf("store holds %d jobs after rejection, want 1", n)
	}

	// Start drains the queue; the retry then lands.
	s.Start()
	st := submit(t, ts, second, http.StatusAccepted)
	if _, result, _ := parseStream(t, streamBody(t, ts, st.ID)); result == nil {
		t.Error("retried job did not complete")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Error(err)
	}
}

// TestFailedJobStreams: a config that validates but fails at run time
// surfaces as a failed state and a terminal error line. Scheme
// construction happens inside sim.Run, not at POST validation, so an SCA
// counter count that does not divide the rows per bank is accepted at
// submission and fails in the worker.
func TestFailedJobStreams(t *testing.T) {
	req := JobRequest{Scheme: "sca:counters=7", Workload: "black", Requests: 100}
	cfg, err := req.Config()
	if err != nil {
		t.Fatalf("config should pass static validation, got %v", err)
	}
	if _, err := sim.Run(cfg); err == nil {
		t.Fatal("config runs fine; the late-failure fixture needs updating")
	}
	_, ts := newTestServer(t, Options{Workers: 1})
	st := submit(t, ts, req, http.StatusAccepted)
	_, result, errMsg := parseStream(t, streamBody(t, ts, st.ID))
	if result != nil || errMsg == "" {
		t.Errorf("failing job streamed result=%v err=%q, want terminal error", result, errMsg)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("result of failed job = %d, want 500", resp.StatusCode)
	}
}

// TestShardedJobStreams: a sharded job streams the deterministically
// merged sample order (the sim-layer contract, end to end over HTTP).
func TestShardedJobStreams(t *testing.T) {
	req := testJob()
	req.Geometry = "4ch"
	req.Affine = true
	req.Shards = 4
	seqReq := testJob()
	seqReq.Geometry = "4ch"
	seqReq.Affine = true

	_, ts := newTestServer(t, Options{Workers: 2})
	shSt := submit(t, ts, req, http.StatusAccepted)
	seqSt := submit(t, ts, seqReq, http.StatusAccepted)
	shSamples, shRes, _ := parseStream(t, streamBody(t, ts, shSt.ID))
	seqSamples, seqRes, _ := parseStream(t, streamBody(t, ts, seqSt.ID))
	if shRes == nil || seqRes == nil {
		t.Fatal("jobs did not complete")
	}
	a, _ := json.Marshal(shSamples)
	b, _ := json.Marshal(seqSamples)
	if !bytes.Equal(a, b) {
		t.Error("sharded stream order diverges from sequential")
	}
}
