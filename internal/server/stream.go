package server

import (
	"encoding/json"
	"fmt"
	"io"

	"catsim/internal/engine"
	"catsim/internal/sim"
)

// The stream wire format. NDJSON (the default) emits one JSON object per
// line: zero or more {"sample": {...}} lines — one per completed epoch, in
// epoch order — terminated by exactly one {"result": {...}} (the final
// sim.Result) or {"error": "..."}. SSE (Accept: text/event-stream) frames
// the same JSON payloads as "sample" / "result" / "error" events. Both
// encoders marshal through encoding/json with a fixed field order, so a
// replayed stream — from the in-memory job, or from a snapshot-restored
// one — is byte-identical to the live stream it re-serves.

// streamLine is the NDJSON envelope. Exactly one field is set per line.
type streamLine struct {
	Sample *engine.Sample `json:"sample,omitempty"`
	Result *sim.Result    `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// streamEncoder writes one stream in either framing.
type streamEncoder interface {
	sample(s *engine.Sample) error
	result(r *sim.Result) error
	fail(msg string) error
}

// ndjsonEncoder writes newline-delimited JSON. json.Encoder appends the
// newline and reuses its internal buffer, keeping per-sample allocations
// flat (see BenchmarkServerStreamEncode).
type ndjsonEncoder struct {
	enc *json.Encoder
}

func newNDJSONEncoder(w io.Writer) *ndjsonEncoder {
	return &ndjsonEncoder{enc: json.NewEncoder(w)}
}

func (e *ndjsonEncoder) sample(s *engine.Sample) error {
	return e.enc.Encode(streamLine{Sample: s})
}

func (e *ndjsonEncoder) result(r *sim.Result) error {
	return e.enc.Encode(streamLine{Result: r})
}

func (e *ndjsonEncoder) fail(msg string) error {
	return e.enc.Encode(streamLine{Error: msg})
}

// sseEncoder writes server-sent events: "event: <name>" followed by a
// single "data:" line carrying the same JSON payload NDJSON would.
type sseEncoder struct {
	w io.Writer
}

func newSSEEncoder(w io.Writer) *sseEncoder { return &sseEncoder{w: w} }

func (e *sseEncoder) event(name string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(e.w, "event: %s\ndata: %s\n\n", name, data)
	return err
}

func (e *sseEncoder) sample(s *engine.Sample) error { return e.event("sample", s) }

func (e *sseEncoder) result(r *sim.Result) error { return e.event("result", r) }

func (e *sseEncoder) fail(msg string) error {
	return e.event("error", map[string]string{"error": msg})
}
