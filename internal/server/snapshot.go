package server

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"catsim/internal/engine"
	"catsim/internal/sim"
)

// Versioned binary snapshot ("catsimsv" v1): the server's durable state,
// styled after the trace container (trace/filev1.go). Layout:
//
//	magic    "catsimsv"                      (8 bytes)
//	version  uint16 little-endian            (currently 1)
//	payload  JSON-encoded snapshotFile
//	checksum uint64 little-endian FNV-1a over everything before it
//
// The payload persists every job in submission order: done/failed jobs
// with their recorded samples and final result (so a restarted server
// re-serves them byte-identically with zero recomputation), and
// queued/running jobs as "queued" (the simulation is deterministic, so
// re-running from the persisted request reproduces the identical stream).
// Corruption — bad magic, a future version, truncation, a flipped bit —
// is a loud error, never a silently half-restored server.

// SnapshotVersion is the snapshot format version this build reads and
// writes.
const SnapshotVersion = 1

var snapshotMagic = [8]byte{'c', 'a', 't', 's', 'i', 'm', 's', 'v'}

// snapshotJob is one job's durable form.
type snapshotJob struct {
	ID      string          `json:"id"`
	State   string          `json:"state"` // "queued", "done" or "failed"
	Req     JobRequest      `json:"req"`
	Samples []engine.Sample `json:"samples,omitempty"`
	Result  *sim.Result     `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// snapshotFile is the payload schema.
type snapshotFile struct {
	Jobs []snapshotJob `json:"jobs"`
}

// writeSnapshot writes the versioned envelope around the JSON payload.
func writeSnapshot(w io.Writer, f *snapshotFile) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("server: encoding snapshot: %w", err)
	}
	h := fnv.New64a()
	out := io.MultiWriter(w, h)
	if _, err := out.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], SnapshotVersion)
	if _, err := out.Write(ver[:]); err != nil {
		return err
	}
	if _, err := out.Write(payload); err != nil {
		return err
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	_, err = w.Write(sum[:])
	return err
}

// readSnapshot parses and verifies a snapshot file.
func readSnapshot(r io.Reader) (*snapshotFile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("server: reading snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+2+8 {
		return nil, fmt.Errorf("server: truncated snapshot: %d bytes is shorter than any valid snapshot", len(data))
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	if [8]byte(body[:8]) != snapshotMagic {
		return nil, fmt.Errorf("server: bad magic %q (not a catsim server snapshot)", body[:8])
	}
	if v := binary.LittleEndian.Uint16(body[8:10]); v != SnapshotVersion {
		return nil, fmt.Errorf("server: unsupported snapshot version %d (this build reads v%d)", v, SnapshotVersion)
	}
	h := fnv.New64a()
	h.Write(body)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(sum); got != want {
		return nil, fmt.Errorf("server: snapshot checksum mismatch (file %016x, computed %016x): truncated or corrupt", want, got)
	}
	f := &snapshotFile{}
	if err := json.Unmarshal(body[10:], f); err != nil {
		return nil, fmt.Errorf("server: decoding snapshot payload: %w", err)
	}
	return f, nil
}

// snapshotState captures the server's current jobs in durable form.
// Running jobs persist as queued: re-running the deterministic simulation
// from the persisted request reproduces the identical stream, so nothing
// mid-flight is ever lost — only recomputed.
func (s *Server) snapshotState() *snapshotFile {
	f := &snapshotFile{}
	for _, j := range s.store.jobs() {
		j.mu.Lock()
		sj := snapshotJob{ID: j.ID, Req: j.Req}
		switch j.state {
		case StateDone:
			sj.State = StateDone.String()
			sj.Samples = append([]engine.Sample(nil), j.samples...)
			res := j.result
			sj.Result = &res
		case StateFailed:
			sj.State = StateFailed.String()
			sj.Error = j.errMsg
		default:
			sj.State = StateQueued.String()
		}
		j.mu.Unlock()
		f.Jobs = append(f.Jobs, sj)
	}
	return f
}

// SaveSnapshot atomically writes the server's current state to path
// (write to a temp file in the same directory, fsync, rename), so a crash
// mid-write leaves the previous snapshot intact.
func (s *Server) SaveSnapshot(path string) error {
	f := s.snapshotState()
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := writeSnapshot(tmp, f); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadSnapshot restores jobs from a snapshot file into the store,
// returning the jobs that must be (re-)enqueued, in submission order.
// Persisted state is trusted but verified: each job's config is rebuilt
// through the same validation as a live POST, and its recomputed ID must
// match the persisted one — a mismatch means the snapshot was produced by
// an incompatible build, and fails loudly rather than serving wrong
// results under a stale URL.
func (s *Server) loadSnapshot(path string) error {
	file, err := os.Open(path)
	if err != nil {
		return err
	}
	defer file.Close()
	f, err := readSnapshot(file)
	if err != nil {
		return err
	}
	for i := range f.Jobs {
		sj := &f.Jobs[i]
		state, err := parseJobState(sj.State)
		if err != nil {
			return fmt.Errorf("server: snapshot job %s: %w", sj.ID, err)
		}
		if state == StateRunning {
			return fmt.Errorf("server: snapshot job %s: running jobs must be persisted as queued", sj.ID)
		}
		cfg, err := sj.Req.Config()
		if err != nil {
			return fmt.Errorf("server: snapshot job %s: %v", sj.ID, err)
		}
		j := newJob(sj.Req, cfg)
		if j.ID != sj.ID {
			return fmt.Errorf("server: snapshot job %s rebuilds with ID %s: snapshot predates a cache-key change",
				sj.ID, j.ID)
		}
		switch state {
		case StateDone:
			j.samples = append([]engine.Sample(nil), sj.Samples...)
			if sj.Result == nil {
				return fmt.Errorf("server: snapshot job %s: done without a result", sj.ID)
			}
			j.result = *sj.Result
			j.state = StateDone
		case StateFailed:
			j.errMsg = sj.Error
			j.state = StateFailed
		}
		if canonical, inserted := s.store.intern(j); !inserted {
			return fmt.Errorf("server: snapshot job %s duplicates %s", sj.ID, canonical.ID)
		} else if j.state == StateQueued {
			s.resume = append(s.resume, j)
		}
	}
	return nil
}
