package server

import (
	"fmt"
	"hash/fnv"
	"sync"

	"catsim/internal/engine"
	"catsim/internal/sim"
)

// JobState is a job's position in the queued → running → done/failed
// lifecycle.
type JobState int

const (
	// StateQueued: accepted and waiting for a worker.
	StateQueued JobState = iota
	// StateRunning: a worker is executing the simulation.
	StateRunning
	// StateDone: finished; Result (and any epoch samples) are final.
	StateDone
	// StateFailed: the simulation returned an error.
	StateFailed
)

// String returns the wire name used in status JSON and snapshots.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

func parseJobState(s string) (JobState, error) {
	for st := StateQueued; st <= StateFailed; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("server: unknown job state %q", s)
}

// terminal reports whether the job will never change again.
func (s JobState) terminal() bool { return s == StateDone || s == StateFailed }

// Job is one accepted simulation: the canonical unit of the cross-request
// cache. Its identity is the canonical sim.CacheKey of its config, so two
// requests describing the same simulation — however spelled — share one
// Job: the second attaches to the in-flight run, or replays the recorded
// samples and result byte-identically. All mutable state is guarded by mu;
// samples is append-only, so streams hold an index and wait on cond for
// more.
type Job struct {
	// ID is "j" + the 16-hex FNV-1a of Key — stable across restarts, so a
	// resumed server re-serves the same URLs.
	ID string
	// Key is the canonical sim.CacheKey the job deduplicates on.
	Key string
	// Req is the normalized request the job was built from (what
	// snapshots persist; Config() rebuilds the identical run).
	Req JobRequest

	cfg sim.Config

	mu      sync.Mutex
	cond    *sync.Cond
	state   JobState
	samples []engine.Sample
	result  sim.Result
	errMsg  string
}

func newJob(req JobRequest, cfg sim.Config) *Job {
	key := sim.CacheKey(cfg)
	j := &Job{ID: jobID(key), Key: key, Req: req, cfg: cfg}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// jobID derives the stable public identifier from the canonical key.
func jobID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("j%016x", h.Sum64())
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	j.cond.Broadcast()
}

// appendSample records one streamed epoch sample and wakes every attached
// stream. Runs on the simulation goroutine via sim.Config.OnSample.
func (j *Job) appendSample(s engine.Sample) {
	j.mu.Lock()
	j.samples = append(j.samples, s)
	j.mu.Unlock()
	j.cond.Broadcast()
}

func (j *Job) finish(res sim.Result) {
	j.mu.Lock()
	j.result = res
	j.state = StateDone
	j.mu.Unlock()
	j.cond.Broadcast()
}

func (j *Job) fail(msg string) {
	j.mu.Lock()
	j.errMsg = msg
	j.state = StateFailed
	j.mu.Unlock()
	j.cond.Broadcast()
}

// wake nudges every waiter (shutdown, client disconnects).
func (j *Job) wake() { j.cond.Broadcast() }

// store indexes jobs by canonical key (the cache) and by public ID (the
// URLs), remembering submission order for listings and snapshots.
type store struct {
	mu    sync.Mutex
	byKey map[string]*Job
	byID  map[string]*Job
	order []*Job
}

func newStore() *store {
	return &store{byKey: map[string]*Job{}, byID: map[string]*Job{}}
}

// intern returns the canonical job for j.Key, inserting j if it is new.
// The boolean reports whether j was inserted (false = an existing job was
// returned instead: the cross-request cache hit).
func (s *store) intern(j *Job) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.byKey[j.Key]; ok {
		return existing, false
	}
	s.byKey[j.Key] = j
	s.byID[j.ID] = j
	s.order = append(s.order, j)
	return j, true
}

// remove forgets a job that was interned but could not be enqueued (the
// queue-full 503 path), so a later POST of the same spec can try again.
func (s *store) remove(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey[j.Key] != j {
		return
	}
	delete(s.byKey, j.Key)
	delete(s.byID, j.ID)
	for i, o := range s.order {
		if o == j {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *store) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// jobs returns every job in submission order.
func (s *store) jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	copy(out, s.order)
	return out
}
