package server

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"catsim/internal/sim"
)

// closeServer shuts a server down with a generous bound.
func closeServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestSnapshotReservesDoneJobs is the restart half of the tentpole: a
// finished job snapshotted, the server killed, and a fresh server started
// from the snapshot re-serves the identical stream bytes with zero engine
// runs.
func TestSnapshotReservesDoneJobs(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.snap")

	s1, err := New(Options{Workers: 1, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	st := submit(t, ts1, testJob(), 202)
	before := streamBody(t, ts1, st.ID)
	ts1.Close()
	closeServer(t, s1) // final snapshot happens here

	s2, err := New(Options{Workers: 1, SnapshotPath: snap})
	if err != nil {
		t.Fatalf("restart from snapshot: %v", err)
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer closeServer(t, s2)

	after := streamBody(t, ts2, st.ID)
	if !bytes.Equal(before, after) {
		t.Error("restored stream is not byte-identical to the original")
	}
	if runs := s2.EngineRuns(); runs != 0 {
		t.Errorf("restored server ran the engine %d times re-serving a done job, want 0", runs)
	}
	// And a repeat POST of the same spec is a cache hit on the restored job.
	st2 := submit(t, ts2, testJob(), 200)
	if !st2.Cached || st2.ID != st.ID {
		t.Errorf("POST after restore = %+v, want cached %s", st2, st.ID)
	}
}

// TestSnapshotResumesQueuedJobs: jobs still queued at shutdown are
// re-enqueued on restart and run to the same result a live server would
// have produced.
func TestSnapshotResumesQueuedJobs(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.snap")

	s1, err := New(Options{Workers: 1, QueueDepth: 4, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	// Never started: the POSTed job stays queued, exactly like a server
	// killed before a worker picked it up.
	ts1 := httptest.NewServer(s1.Handler())
	st := submit(t, ts1, testJob(), 202)
	ts1.Close()
	closeServer(t, s1)

	// A reference run on an ordinary server, for the expected bytes.
	_, ref := newTestServer(t, Options{Workers: 1})
	refSt := submit(t, ref, testJob(), 202)
	want := streamBody(t, ref, refSt.ID)

	s2, err := New(Options{Workers: 1, SnapshotPath: snap})
	if err != nil {
		t.Fatalf("restart from snapshot: %v", err)
	}
	if got := s2.store.jobs(); len(got) != 1 || got[0].State() != StateQueued {
		t.Fatalf("restored store = %d jobs (state %v), want 1 queued", len(got), got[0].State())
	}
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer closeServer(t, s2)

	got := streamBody(t, ts2, st.ID)
	if !bytes.Equal(got, want) {
		t.Error("resumed job's stream diverges from a live run")
	}
	if runs := s2.EngineRuns(); runs != 1 {
		t.Errorf("resumed server ran the engine %d times, want 1", runs)
	}
}

// TestSnapshotPersistsFailedJobs: failed state round-trips with its error.
func TestSnapshotPersistsFailedJobs(t *testing.T) {
	req := JobRequest{Scheme: "sca:counters=7", Workload: "black", Requests: 100}
	if cfg, err := req.Config(); err != nil {
		t.Fatalf("config should pass static validation, got %v", err)
	} else if _, err := sim.Run(cfg); err == nil {
		t.Fatal("config runs fine; the late-failure fixture needs updating")
	}
	snap := filepath.Join(t.TempDir(), "state.snap")
	s1, err := New(Options{Workers: 1, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	st := submit(t, ts1, req, 202)
	_, _, errMsg := parseStream(t, streamBody(t, ts1, st.ID))
	if errMsg == "" {
		t.Fatal("job did not fail")
	}
	ts1.Close()
	closeServer(t, s1)

	s2, err := New(Options{Workers: 1, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer closeServer(t, s2)
	j, ok := s2.store.get(st.ID)
	if !ok || j.State() != StateFailed || j.errMsg != errMsg {
		t.Errorf("restored failed job = %v/%q, want failed/%q", j.State(), j.errMsg, errMsg)
	}
}

// TestSnapshotCorruptionIsLoud: every corruption mode fails New with a
// descriptive error rather than a silently empty server.
func TestSnapshotCorruptionIsLoud(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "state.snap")
	s1, err := New(Options{Workers: 1, SnapshotPath: snap})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	submit(t, ts1, testJob(), 202)
	ts1.Close()
	closeServer(t, s1)
	good, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, data []byte, want string) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".snap")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := New(Options{Workers: 1, SnapshotPath: path})
			if err == nil || !strings.Contains(err.Error(), want) {
				t.Errorf("New = %v, want error containing %q", err, want)
			}
		})
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xff
	corrupt("bitflip", flipped, "checksum mismatch")
	corrupt("truncated", good[:10], "truncated")
	corrupt("badmagic", append([]byte("notasnap"), good[8:]...), "bad magic")
	future := append([]byte(nil), good...)
	future[8], future[9] = 0xff, 0xff // version field
	corrupt("futureversion", future, "unsupported snapshot version")
}

// TestSnapshotMissingFileIsFine: a configured-but-absent snapshot path is
// the normal first boot, not an error.
func TestSnapshotMissingFileIsFine(t *testing.T) {
	s, err := New(Options{Workers: 1, SnapshotPath: filepath.Join(t.TempDir(), "never-written.snap")})
	if err != nil {
		t.Fatalf("New with absent snapshot: %v", err)
	}
	s.Start()
	closeServer(t, s)
}

// TestPeriodicSnapshot: the snapshot loop writes without waiting for
// shutdown.
func TestPeriodicSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.snap")
	s, err := New(Options{Workers: 1, SnapshotPath: snap, SnapshotInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	st := submit(t, ts, testJob(), 202)
	streamBody(t, ts, st.ID) // wait for completion
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snap); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts.Close()
	closeServer(t, s)
}
