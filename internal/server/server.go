// Package server is the catsim simulation service: a long-running
// HTTP/JSON front end over the deterministic simulation stack. POST
// /v1/jobs accepts a declarative job — scheme spec, geometry spec,
// workload, epoch slicing, shards, seed — validated through the same
// Parse* grammars the CLIs use (bad specs are 400s carrying the valid-set
// listings), enqueues it on a bounded queue drained by a fixed worker
// pool, and GET /v1/jobs/{id}/stream streams each epoch's engine.Sample
// as NDJSON (or SSE) while the run progresses, terminating with the final
// sim.Result.
//
// Jobs are interned by canonical sim.CacheKey: a repeated POST of an
// identical simulation — however differently spelled — returns the same
// job, attaching to the in-flight run or replaying the recorded stream
// byte-identically with zero new engine work. The server periodically
// checkpoints every job to a versioned, checksummed snapshot file, so a
// restart resumes the queue and re-serves finished results without
// recomputation (see snapshot.go for the format and contract).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"catsim/internal/runner"
)

// ErrBadOptions marks a New failure caused by invalid Options — a usage
// error (cmd/catsim-server exits 2) rather than an environmental one like
// a corrupt snapshot (exit 1).
var ErrBadOptions = errors.New("server: bad options")

// Options configures a Server. The zero value serves with GOMAXPROCS
// workers, a 64-deep queue and no snapshotting.
type Options struct {
	// Workers is the number of simulation workers draining the queue
	// (0 = GOMAXPROCS). Each runs one job at a time to completion.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker (0 = 64). A POST
	// arriving with the queue full is rejected with 503, never blocked.
	QueueDepth int
	// SnapshotPath, when non-empty, is the snapshot file the server
	// restores from at construction (if it exists) and checkpoints to
	// periodically and at Close.
	SnapshotPath string
	// SnapshotInterval is the checkpoint period (0 = 30s; meaningful
	// only with SnapshotPath set).
	SnapshotInterval time.Duration
	// Logf, when non-nil, receives one line per lifecycle event
	// (job accepted, started, finished, snapshot written).
	Logf func(format string, args ...any)
}

// Server is the simulation service. Construct with New, attach Handler to
// an http.Server, call Start to begin draining the queue, and Close to
// shut down gracefully.
type Server struct {
	opts  Options
	store *store
	queue chan *Job
	// resume holds snapshot-restored jobs awaiting re-enqueue at Start.
	resume []*Job

	mux *http.ServeMux
	// contexts pools reusable run contexts across the worker pool, so a
	// worker draining a queue of same-shape jobs (a seed sweep, say)
	// rewinds its warm component stack instead of rebuilding it per job.
	contexts   *runner.ContextPool
	engineRuns atomic.Int64
	closing    atomic.Bool
	quit       chan struct{}
	wg         sync.WaitGroup
	startOnce  sync.Once
	closeOnce  sync.Once
}

// New builds a Server, restoring state from Options.SnapshotPath if the
// file exists. A corrupt or incompatible snapshot is a loud error: the
// operator decides whether to delete it, never the server.
func New(o Options) (*Server, error) {
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return nil, fmt.Errorf("%w: need at least one worker, got %d", ErrBadOptions, o.Workers)
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 64
	}
	if o.QueueDepth < 1 {
		return nil, fmt.Errorf("%w: need a positive queue depth, got %d", ErrBadOptions, o.QueueDepth)
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = 30 * time.Second
	}
	s := &Server{opts: o, store: newStore(), contexts: runner.NewContextPool(), quit: make(chan struct{})}
	if o.SnapshotPath != "" {
		if _, err := os.Stat(o.SnapshotPath); err == nil {
			if err := s.loadSnapshot(o.SnapshotPath); err != nil {
				return nil, err
			}
			s.logf("restored %d jobs from %s (%d re-queued)",
				len(s.store.jobs()), o.SnapshotPath, len(s.resume))
		}
	}
	// The queue must at least hold every job the snapshot re-enqueues,
	// or Start would deadlock before the first worker spins up.
	depth := o.QueueDepth
	if len(s.resume) > depth {
		depth = len(s.resume)
	}
	s.queue = make(chan *Job, depth)
	s.routes()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Start re-enqueues snapshot-restored jobs and launches the worker pool
// and the snapshot ticker. Idempotent.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		for _, j := range s.resume {
			s.queue <- j // capacity reserved in New
		}
		s.resume = nil
		for w := 0; w < s.opts.Workers; w++ {
			s.wg.Add(1)
			go s.worker()
		}
		if s.opts.SnapshotPath != "" {
			s.wg.Add(1)
			go s.snapshotLoop()
		}
	})
}

// Close drains the server: stop accepting jobs (503), let each worker
// finish its in-flight job — so attached streams terminate with their
// result — wake every blocked stream, and write a final snapshot. Jobs
// still queued persist as queued and resume on the next start. The
// context bounds how long Close waits for in-flight jobs.
func (s *Server) Close(ctx context.Context) error {
	var err error
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		close(s.quit)
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
		// Wake streams blocked on jobs that will now never run.
		for _, j := range s.store.jobs() {
			j.wake()
		}
		if s.opts.SnapshotPath != "" {
			if serr := s.SaveSnapshot(s.opts.SnapshotPath); serr != nil && err == nil {
				err = serr
			} else if serr == nil {
				s.logf("final snapshot written to %s", s.opts.SnapshotPath)
			}
		}
	})
	return err
}

// EngineRuns reports how many simulations the server has started — the
// observable the cache-hit tests (and /v1/stats) assert on: a repeated
// POST of an identical job must not move it.
func (s *Server) EngineRuns() int64 { return s.engineRuns.Load() }

// ContextStats reports the run-context pool counters: how many engine
// runs built a fresh context stack versus reusing a pooled one. Under a
// homogeneous job stream (seed sweeps), reuses should dominate.
func (s *Server) ContextStats() (builds, reuses int64) { return s.contexts.Stats() }

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Drain-free shutdown: quit wins over further queued work, which
		// stays queued and persists in the final snapshot.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one simulation, streaming each epoch sample into the
// job as it completes.
func (s *Server) runJob(j *Job) {
	j.setRunning()
	s.logf("job %s running: %s", j.ID, j.Key)
	cfg := j.cfg
	cfg.OnSample = j.appendSample
	s.engineRuns.Add(1)
	res, err := s.contexts.Run(cfg)
	if err != nil {
		s.logf("job %s failed: %v", j.ID, err)
		j.fail(err.Error())
		return
	}
	s.logf("job %s done: %d epochs", j.ID, len(res.Epochs))
	j.finish(res)
}

func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			if err := s.SaveSnapshot(s.opts.SnapshotPath); err != nil {
				s.logf("snapshot failed: %v", err)
			} else {
				s.logf("snapshot written to %s", s.opts.SnapshotPath)
			}
		}
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// httpError writes a JSON error body: {"error": "..."}.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// jobStatus is the submission/status response body.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Cached is true on submission when the POST attached to an existing
	// job instead of enqueueing a new run.
	Cached bool `json:"cached,omitempty"`
	// Samples is how many epoch samples have streamed so far.
	Samples int `json:"samples"`
	// Key is the canonical sim.CacheKey the job is interned under.
	Key    string `json:"key"`
	Stream string `json:"stream"`
	Result string `json:"result"`
	Error  string `json:"error,omitempty"`
}

func statusOf(j *Job, cached bool) jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID: j.ID, State: j.state.String(), Cached: cached,
		Samples: len(j.samples), Key: j.Key,
		Stream: "/v1/jobs/" + j.ID + "/stream",
		Result: "/v1/jobs/" + j.ID + "/result",
		Error:  j.errMsg,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closing.Load() {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	cfg, err := req.Config()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, inserted := s.store.intern(newJob(req, cfg))
	if !inserted {
		// Cross-request cache hit: attach to the existing job (in flight
		// or finished) — no new engine work.
		writeJSON(w, http.StatusOK, statusOf(j, true))
		return
	}
	select {
	case s.queue <- j:
		s.logf("job %s queued: %s", j.ID, j.Key)
		writeJSON(w, http.StatusAccepted, statusOf(j, false))
	default:
		s.store.remove(j)
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d deep): retry later", cap(s.queue))
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.jobs()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, statusOf(j, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, statusOf(j, false))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	builds, reuses := s.ContextStats()
	writeJSON(w, http.StatusOK, map[string]int64{
		"jobs":           int64(len(s.store.jobs())),
		"engine_runs":    s.EngineRuns(),
		"queued":         int64(len(s.queue)),
		"context_builds": builds,
		"context_reuses": reuses,
	})
}

// handleStream serves the live (or replayed) epoch feed. NDJSON by
// default; SSE when the client accepts text/event-stream. The stream
// terminates with the final result (or error) line; a client that
// disconnects early just stops receiving — the simulation is unaffected.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	var enc streamEncoder
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		w.Header().Set("Content-Type", "text/event-stream")
		enc = newSSEEncoder(w)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc = newNDJSONEncoder(w)
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	ctx := r.Context()
	// cond.Wait cannot watch a context, so a watcher goroutine turns
	// client disconnection into a broadcast; it exits when the handler
	// returns (the request context is cancelled then).
	go func() {
		<-ctx.Done()
		j.wake()
	}()

	next := 0
	for {
		j.mu.Lock()
		for next >= len(j.samples) && !j.state.terminal() &&
			ctx.Err() == nil && !s.closing.Load() {
			j.cond.Wait()
		}
		view := j.samples[:len(j.samples)]
		state := j.state
		res := j.result
		errMsg := j.errMsg
		j.mu.Unlock()

		for next < len(view) {
			if err := enc.sample(&view[next]); err != nil {
				return
			}
			next++
			flush()
		}
		switch {
		case ctx.Err() != nil:
			return
		case state == StateDone:
			enc.result(&res)
			flush()
			return
		case state == StateFailed:
			enc.fail(errMsg)
			flush()
			return
		case s.closing.Load():
			enc.fail("server shutting down before the job ran")
			flush()
			return
		}
	}
}

// handleResult blocks until the job reaches a terminal state, then
// returns the final sim.Result as JSON (or 500 with the job's error).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	go func() {
		<-ctx.Done()
		j.wake()
	}()
	j.mu.Lock()
	for !j.state.terminal() && ctx.Err() == nil && !s.closing.Load() {
		j.cond.Wait()
	}
	state := j.state
	res := j.result
	errMsg := j.errMsg
	j.mu.Unlock()
	switch {
	case state == StateDone:
		writeJSON(w, http.StatusOK, res)
	case state == StateFailed:
		httpError(w, http.StatusInternalServerError, "%s", errMsg)
	default:
		httpError(w, http.StatusServiceUnavailable, "server shutting down before the job ran")
	}
}
