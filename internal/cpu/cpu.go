// Package cpu models the processor front end the paper's USIMM setup uses
// (Table I: 3.2 GHz cores, 128-entry ROB, fetch width 4, retire width 2):
// a core executes compute cycles between memory requests, can keep a
// limited number of reads outstanding (memory-level parallelism bounded by
// the ROB), and blocks on the oldest outstanding read when the window is
// full — the in-order-retirement behaviour that turns long bank stalls into
// execution-time overhead (ETO).
package cpu

import "fmt"

// DefaultWindow is the outstanding-read limit. A 128-entry ROB at IPC ~2
// with ~100 ns memory latency sustains roughly this many overlapping misses.
const DefaultWindow = 8

// DefaultCPUCyclesPerBusCycle relates the 3.2 GHz core clock to the
// 800 MHz memory bus clock.
const DefaultCPUCyclesPerBusCycle = 4

// Core tracks one core's progress in CPU cycles.
type Core struct {
	// Now is the core's current time in CPU cycles.
	Now int64

	window   []int64 // completion times (CPU cycles) of outstanding reads
	head     int     // ring-buffer head (oldest)
	count    int
	retired  int64 // requests fully issued
	lastDone int64 // latest read completion seen
}

// NewCore returns a core with the given outstanding-read window.
func NewCore(window int) (*Core, error) {
	if window < 1 {
		return nil, fmt.Errorf("cpu: window must be at least 1, got %d", window)
	}
	return &Core{window: make([]int64, window)}, nil
}

// Reset rewinds the core to time zero with no outstanding reads, keeping
// the window slab. Run contexts use it to reuse cores across runs.
func (c *Core) Reset() {
	c.Now = 0
	c.head = 0
	c.count = 0
	c.retired = 0
	c.lastDone = 0
}

// AdvanceGap spends gap CPU cycles of compute before the next request.
func (c *Core) AdvanceGap(gap int) {
	if gap > 0 {
		c.Now += int64(gap)
	}
}

// PrepareIssue blocks the core on the oldest outstanding read when the
// window is full (in-order ROB head), returning the issue time.
func (c *Core) PrepareIssue() int64 {
	if c.count == len(c.window) {
		oldest := c.window[c.head]
		c.head = (c.head + 1) % len(c.window)
		c.count--
		if oldest > c.Now {
			c.Now = oldest
		}
	}
	return c.Now
}

// NoteRead records an issued read completing at done (CPU cycles).
func (c *Core) NoteRead(done int64) {
	c.window[(c.head+c.count)%len(c.window)] = done
	c.count++
	c.retired++
	if done > c.lastDone {
		c.lastDone = done
	}
}

// NoteWrite records a posted write (does not occupy the read window).
func (c *Core) NoteWrite() { c.retired++ }

// Drain returns the time at which all outstanding reads have completed.
func (c *Core) Drain() int64 {
	t := c.Now
	if c.lastDone > t {
		t = c.lastDone
	}
	return t
}

// Issued returns the number of requests the core has issued.
func (c *Core) Issued() int64 { return c.retired }
