package cpu

import "testing"

func TestCoreGapAdvancesTime(t *testing.T) {
	c, err := NewCore(4)
	if err != nil {
		t.Fatal(err)
	}
	c.AdvanceGap(100)
	c.AdvanceGap(50)
	if c.Now != 150 {
		t.Errorf("Now = %d, want 150", c.Now)
	}
}

func TestCoreWindowBlocksOnOldest(t *testing.T) {
	c, _ := NewCore(2)
	c.PrepareIssue()
	c.NoteRead(1000) // read A completes at 1000
	c.PrepareIssue()
	c.NoteRead(500) // read B completes at 500
	// Window full: the next issue must wait for the OLDEST (A at 1000),
	// modelling in-order retirement, not the earliest completion.
	if at := c.PrepareIssue(); at != 1000 {
		t.Errorf("issue time %d, want 1000 (oldest outstanding)", at)
	}
}

func TestCoreWindowNotFullDoesNotBlock(t *testing.T) {
	c, _ := NewCore(4)
	c.AdvanceGap(10)
	c.NoteRead(1000)
	if at := c.PrepareIssue(); at != 10 {
		t.Errorf("issue time %d, want 10 (window not full)", at)
	}
}

func TestCoreDrainCoversLastCompletion(t *testing.T) {
	c, _ := NewCore(4)
	c.AdvanceGap(10)
	c.NoteRead(2000)
	c.NoteRead(1500)
	if got := c.Drain(); got != 2000 {
		t.Errorf("Drain = %d, want 2000", got)
	}
}

func TestCoreWritesArePosted(t *testing.T) {
	c, _ := NewCore(1)
	c.NoteWrite()
	c.NoteWrite()
	if at := c.PrepareIssue(); at != 0 {
		t.Errorf("writes must not occupy the read window; issue at %d", at)
	}
	if c.Issued() != 2 {
		t.Errorf("Issued = %d, want 2", c.Issued())
	}
}

func TestNewCoreValidation(t *testing.T) {
	if _, err := NewCore(0); err == nil {
		t.Error("expected window error")
	}
}
