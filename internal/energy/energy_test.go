package energy

import (
	"math"
	"testing"

	"catsim/internal/mitigation"
)

func TestTableIIAnchorsExact(t *testing.T) {
	// The published anchors must be returned verbatim.
	cases := []struct {
		kind              mitigation.Kind
		m                 int
		dyn, static, area float64
	}{
		{mitigation.KindDRCAT, 32, 3.05e-4, 5.77e3, 3.16e-2},
		{mitigation.KindDRCAT, 64, 4.30e-4, 1.39e4, 6.12e-2},
		{mitigation.KindDRCAT, 512, 1.17e-3, 1.06e5, 3.93e-1},
		{mitigation.KindPRCAT, 64, 4.09e-4, 1.32e4, 5.86e-2},
		{mitigation.KindPRCAT, 256, 8.25e-4, 5.13e4, 2.11e-1},
		{mitigation.KindSCA, 32, 1.41e-4, 3.16e3, 1.86e-2},
		{mitigation.KindSCA, 128, 2.22e-4, 1.44e4, 6.04e-2},
		{mitigation.KindSCA, 512, 4.25e-4, 4.52e4, 1.72e-1},
	}
	for _, c := range cases {
		hw, err := TableII(c.kind, c.m)
		if err != nil {
			t.Fatal(err)
		}
		approx := func(got, want float64) bool { return math.Abs(got-want) <= 1e-9*math.Abs(want)+1e-12 }
		if !approx(hw.DynamicNJPerAccess, c.dyn) || !approx(hw.StaticNJPerInterval, c.static) || !approx(hw.AreaMM2, c.area) {
			t.Errorf("%v M=%d: got %+v, want {%g %g %g}", c.kind, c.m, hw, c.dyn, c.static, c.area)
		}
	}
}

func TestTableIIInterpolationMonotone(t *testing.T) {
	for _, kind := range []mitigation.Kind{mitigation.KindDRCAT, mitigation.KindPRCAT, mitigation.KindSCA} {
		prev := 0.0
		for m := 16; m <= 65536; m *= 2 {
			hw, err := TableII(kind, m)
			if err != nil {
				t.Fatal(err)
			}
			if hw.StaticNJPerInterval <= prev {
				t.Errorf("%v: static energy not increasing at M=%d", kind, m)
			}
			prev = hw.StaticNJPerInterval
			if hw.DynamicNJPerAccess <= 0 || hw.AreaMM2 <= 0 {
				t.Errorf("%v M=%d: non-positive values %+v", kind, m, hw)
			}
		}
	}
}

func TestTableIIOrderings(t *testing.T) {
	// Paper: DRCAT adds ~4-5% over PRCAT; PRCAT dynamic is roughly twice
	// SCA's; PRCAT and SCA at double the counters are iso-area.
	for _, m := range []int{32, 64, 128, 256, 512} {
		dr, _ := TableII(mitigation.KindDRCAT, m)
		pr, _ := TableII(mitigation.KindPRCAT, m)
		sc, _ := TableII(mitigation.KindSCA, m)
		if dr.AreaMM2 <= pr.AreaMM2 || pr.AreaMM2 <= sc.AreaMM2 {
			t.Errorf("M=%d: area ordering violated", m)
		}
		if dr.DynamicNJPerAccess <= pr.DynamicNJPerAccess {
			t.Errorf("M=%d: DRCAT dynamic must exceed PRCAT", m)
		}
		ratio := pr.DynamicNJPerAccess / sc.DynamicNJPerAccess
		if ratio < 1.5 || ratio > 3.5 {
			t.Errorf("M=%d: PRCAT/SCA dynamic ratio %v, want about 2", m, ratio)
		}
	}
	// Iso-area: PRCAT_64 and SCA_128 "occupy iso-area".
	pr64, _ := TableII(mitigation.KindPRCAT, 64)
	sca128, _ := TableII(mitigation.KindSCA, 128)
	if d := math.Abs(pr64.AreaMM2-sca128.AreaMM2) / sca128.AreaMM2; d > 0.05 {
		t.Errorf("PRCAT_64 vs SCA_128 area differs by %.1f%%, want iso-area", d*100)
	}
}

func TestTableIIErrors(t *testing.T) {
	if _, err := TableII(mitigation.KindPRA, 64); err == nil {
		t.Error("PRA has no counter table; expected error")
	}
	if _, err := TableII(mitigation.KindSCA, 0); err == nil {
		t.Error("expected error for zero counters")
	}
}

func TestComputeCMRPOComponents(t *testing.T) {
	// One interval (64 ms), 16 banks, 1M activations per bank, 1000 rows
	// refreshed per bank.
	const banks = 16
	execNS := 64e6
	counts := mitigation.Counts{
		Activations:   16e6,
		RowsRefreshed: 16000,
	}
	b, err := Compute(mitigation.KindSCA, 64, counts, banks, execNS)
	if err != nil {
		t.Fatal(err)
	}
	// Refresh: 1000 rows/bank * 1 nJ / 64 ms = 1.5625e-5 W = 0.015625 mW.
	if math.Abs(b.RefreshMW-0.015625) > 1e-9 {
		t.Errorf("RefreshMW = %v, want 0.015625", b.RefreshMW)
	}
	// Static: 8.81e3 nJ * 0.25 / 64 ms = 0.0344 mW.
	want := 8.81e3 * StaticPowerFraction / 64e6 * 1e3
	if math.Abs(b.StaticMW-want) > 1e-12 {
		t.Errorf("StaticMW = %v, want %v", b.StaticMW, want)
	}
	// Dynamic: 1.92e-4 nJ * 1e6 / 64 ms per bank.
	wantDyn := 1.92e-4 * 1e6 / 64e6 * 1e3
	if math.Abs(b.DynamicMW-wantDyn) > 1e-12 {
		t.Errorf("DynamicMW = %v, want %v", b.DynamicMW, wantDyn)
	}
	if b.PRNGMW != 0 || b.MissMW != 0 {
		t.Error("SCA must not pay PRNG or miss energy")
	}
	if cm := b.CMRPO(); math.Abs(cm-b.TotalMW()/2.5) > 1e-12 {
		t.Errorf("CMRPO = %v inconsistent with total %v", cm, b.TotalMW())
	}
}

func TestComputePRAChargesPRNG(t *testing.T) {
	counts := mitigation.Counts{Activations: 16e6, RowsRefreshed: 64000, PRNGBits: 9 * 16e6}
	b, err := Compute(mitigation.KindPRA, 0, counts, 16, 64e6)
	if err != nil {
		t.Fatal(err)
	}
	if b.PRNGMW <= 0 || b.StaticMW != 0 || b.DynamicMW != 0 {
		t.Errorf("breakdown = %+v", b)
	}
	// Paper: "for every 50 row accesses, PRA consumes energy equal to that
	// of refreshing one row": PRNG energy per access 2.625e-2 nJ ~ 1/38 of
	// a 1 nJ row refresh; check the constant is wired through.
	wantPRNG := PRNGEnergyPerActivationNJ * 1e6 / 64e6 * 1e3 // per bank, 1M acts/bank
	if math.Abs(b.PRNGMW-wantPRNG) > 1e-12 {
		t.Errorf("PRNGMW = %v, want %v", b.PRNGMW, wantPRNG)
	}
}

func TestComputeCounterCacheChargesMisses(t *testing.T) {
	counts := mitigation.Counts{Activations: 1e6, ExtraMemAcc: 5e5, RowsRefreshed: 100}
	b, err := Compute(mitigation.KindCounterCache, 2048, counts, 16, 64e6)
	if err != nil {
		t.Fatal(err)
	}
	if b.MissMW <= 0 {
		t.Error("counter cache must pay miss traffic energy")
	}
}

func TestComputeNoneIsFree(t *testing.T) {
	b, err := Compute(mitigation.KindNone, 0, mitigation.Counts{Activations: 1e6}, 16, 64e6)
	if err != nil || b.TotalMW() != 0 {
		t.Errorf("None breakdown = %+v, err %v", b, err)
	}
}

func TestComputeValidation(t *testing.T) {
	if _, err := Compute(mitigation.KindSCA, 64, mitigation.Counts{}, 0, 1); err == nil {
		t.Error("expected banks error")
	}
	if _, err := Compute(mitigation.KindSCA, 64, mitigation.Counts{}, 16, 0); err == nil {
		t.Error("expected exec time error")
	}
}

func TestSCAEnergyUShape(t *testing.T) {
	// Fig. 2: for realistic access counts the total energy is U-shaped in
	// M with the minimum in the low hundreds (paper: M=128). Refresh rows
	// shrink with M (finer groups); model that coarsely as inversely
	// proportional.
	const accesses = 6e5
	var prev SCAEnergyPoint
	minM, minTotal := 0, math.Inf(1)
	for m := 16; m <= 65536; m *= 2 {
		rowsPerTrigger := 65536/float64(m) + 2
		triggers := 8.0 * 64 / float64(m) // fewer triggers with more counters
		if triggers < 0.2 {
			triggers = 0.2
		}
		p, err := SCAEnergy(m, accesses, triggers*rowsPerTrigger)
		if err != nil {
			t.Fatal(err)
		}
		if p.TotalNJ < minTotal {
			minM, minTotal = m, p.TotalNJ
		}
		prev = p
	}
	_ = prev
	if minM < 64 || minM > 512 {
		t.Errorf("energy minimum at M=%d, want in the low hundreds (paper: 128)", minM)
	}
}

func TestCounterCacheLinesIntersectEquivalentSCA(t *testing.T) {
	// Fig. 2: the 2K/8K-entry counter-cache lines intersect the SCA points
	// with the same total counter storage, by construction.
	sca4096, _ := TableII(mitigation.KindSCA, 4096)
	if got := CounterCacheStaticNJ(4096); math.Abs(got-sca4096.StaticNJPerInterval) > 1e-9 {
		t.Errorf("counter-cache static %v, want SCA_4096's %v", got, sca4096.StaticNJPerInterval)
	}
}

func TestComputeCoversEveryRegisteredKind(t *testing.T) {
	// The fail-loudly contract: every kind in the mitigation registry must
	// be costable, so adding a scheme family without an energy model is a
	// test failure here rather than a silent miscosting in an experiment.
	counts := mitigation.Counts{Activations: 1e6, RowsRefreshed: 100, PRNGBits: 9e6, ExtraMemAcc: 10}
	for _, k := range mitigation.Kinds() {
		if _, err := Compute(k, 64, counts, 16, 64e6); err != nil {
			t.Errorf("Compute(%v) = %v; every registered kind needs a cost model", k, err)
		}
	}
}

func TestComputeRejectsUnknownKind(t *testing.T) {
	if _, err := Compute(mitigation.Kind(97), 64, mitigation.Counts{}, 16, 64e6); err == nil {
		t.Error("unknown kind must fail loudly, not cost silently")
	}
	if _, err := TableII(mitigation.Kind(97), 64); err == nil {
		t.Error("TableII must reject unknown kinds")
	}
}

func TestComputeStochasticChargesPRNGAndSRAM(t *testing.T) {
	counts := mitigation.Counts{Activations: 1e6, RowsRefreshed: 100, PRNGBits: 16e5}
	b, err := Compute(mitigation.KindStochastic, 64, counts, 16, 64e6)
	if err != nil {
		t.Fatal(err)
	}
	if b.PRNGMW <= 0 {
		t.Error("DSAC draws randomness; PRNG energy must be charged")
	}
	if b.DynamicMW <= 0 || b.StaticMW <= 0 {
		t.Errorf("DSAC counter SRAM not costed: %+v", b)
	}
	wantPRNG := PRNGEfficiencyNJPerBit * 16e5 / 16 / 64e6 * 1e3
	if math.Abs(b.PRNGMW-wantPRNG) > 1e-15 {
		t.Errorf("PRNGMW = %v, want %v", b.PRNGMW, wantPRNG)
	}
}

func TestModernTrackersCostOnSCACurves(t *testing.T) {
	sca, _ := TableII(mitigation.KindSCA, 128)
	for _, k := range []mitigation.Kind{mitigation.KindCoMeT, mitigation.KindABACuS, mitigation.KindStochastic} {
		hw, err := TableII(k, 128)
		if err != nil {
			t.Fatalf("TableII(%v): %v", k, err)
		}
		if hw != sca {
			t.Errorf("%v hardware model diverges from the SCA SRAM curves: %+v vs %+v", k, hw, sca)
		}
	}
}
