// Package energy models the hardware cost of the crosstalk-mitigation
// schemes: per-access dynamic energy, per-interval static energy and die
// area of the counter logic (the paper's Table II, obtained there from
// Synopsys synthesis at 45 nm plus CACTI SRAM models), the PRNG used by
// PRA, and the CMRPO metric (§VI, §VII-B).
//
// The published Table II numbers are embedded as calibration anchors;
// log-log interpolation extends them to any counter count, which is what
// Fig. 2's 16..65536-counter sweep needs (DESIGN.md substitution S4).
package energy

import (
	"fmt"
	"math"

	"catsim/internal/dram"
	"catsim/internal/mitigation"
)

// SchemeHW is the hardware cost of one scheme instance per bank.
type SchemeHW struct {
	DynamicNJPerAccess  float64 // energy per row activation (logic + SRAM)
	StaticNJPerInterval float64 // leakage energy per 64 ms refresh interval
	AreaMM2             float64 // die area at 45 nm
}

// Table II anchors (paper, per bank), indexed by counters per bank.
var tableM = []float64{32, 64, 128, 256, 512}

var tableII = map[mitigation.Kind]struct{ dyn, static, area [5]float64 }{
	mitigation.KindDRCAT: {
		dyn:    [5]float64{3.05e-4, 4.30e-4, 5.83e-4, 8.72e-4, 1.17e-3},
		static: [5]float64{5.77e3, 1.39e4, 2.77e4, 5.44e4, 1.06e5},
		area:   [5]float64{3.16e-2, 6.12e-2, 1.16e-1, 2.23e-1, 3.93e-1},
	},
	mitigation.KindPRCAT: {
		dyn:    [5]float64{2.91e-4, 4.09e-4, 5.50e-4, 8.25e-4, 1.10e-3},
		static: [5]float64{5.55e3, 1.32e4, 2.63e4, 5.13e4, 1.02e5},
		area:   [5]float64{3.04e-2, 5.86e-2, 1.11e-1, 2.11e-1, 3.75e-1},
	},
	mitigation.KindSCA: {
		dyn:    [5]float64{1.41e-4, 1.92e-4, 2.22e-4, 3.12e-4, 4.25e-4},
		static: [5]float64{3.16e3, 8.81e3, 1.44e4, 2.39e4, 4.52e4},
		area:   [5]float64{1.86e-2, 4.04e-2, 6.04e-2, 1.00e-1, 1.72e-1},
	},
}

// PRNG specification for PRA (paper Table II, from Srinivasan et al. [25]).
const (
	PRNGAreaMM2            = 4.004e-3
	PRNGThroughputGbps     = 2.4
	PRNGPowerMW            = 7.0
	PRNGEfficiencyNJPerBit = 2.90e-3
	// PRNGEnergyPerActivationNJ is eng_PRNG: 9 bits per row access.
	PRNGEnergyPerActivationNJ = 2.625e-2
)

// StaticPowerFraction is the share of Table II's synthesized static energy
// charged to CMRPO. The published table includes combinational and io-pad
// leakage from the synthesis flow; charging it at face value makes the
// static term alone exceed several of the paper's reported totals (e.g.
// DRCAT-64's 1.39e4 nJ/interval is already 8.7% of the 2.5 mW baseline,
// above the ~4% total of Fig. 8). One global derate, applied uniformly to
// every scheme, reconciles the table with the reported CMRPO levels;
// EXPERIMENTS.md discusses the calibration.
const StaticPowerFraction = 0.25

// DRAMAccessNJ is the energy of one extra DRAM access (counter-cache miss
// traffic): a 64 B activate+read burst, from the Micron power model.
const DRAMAccessNJ = 15.0

// loglogInterp interpolates y(m) on the anchor grid in log-log space,
// extrapolating with the edge slopes.
func loglogInterp(anchors [5]float64, m float64) float64 {
	lx := math.Log2(m)
	gx := func(i int) float64 { return math.Log2(tableM[i]) }
	gy := func(i int) float64 { return math.Log2(anchors[i]) }
	i := 0
	switch {
	case lx <= gx(0):
		i = 0
	case lx >= gx(len(tableM)-1):
		i = len(tableM) - 2
	default:
		for i = 0; i < len(tableM)-2; i++ {
			if lx < gx(i+1) {
				break
			}
		}
	}
	slope := (gy(i+1) - gy(i)) / (gx(i+1) - gx(i))
	return math.Exp2(gy(i) + slope*(lx-gx(i)))
}

// TableII returns the hardware model for a scheme family with m counters
// per bank. Values at m ∈ {32, 64, 128, 256, 512} are the published
// anchors; others are log-log interpolated/extrapolated. The counter-cache
// baseline reuses the SCA SRAM curves for its on-chip array (same storage
// structure) as the paper does when comparing iso-storage; the modern
// trackers (CoMeT's sketch + RAT, ABACuS's shared entries, DSAC's counter
// table) are flat SRAM counter arrays too and are costed on the same
// curves at their respective per-bank counter counts.
func TableII(kind mitigation.Kind, m int) (SchemeHW, error) {
	k := kind
	switch k {
	case mitigation.KindCounterCache, mitigation.KindCoMeT,
		mitigation.KindABACuS, mitigation.KindStochastic:
		k = mitigation.KindSCA
	}
	anchors, ok := tableII[k]
	if !ok {
		return SchemeHW{}, fmt.Errorf("energy: no Table II model for %v", kind)
	}
	if m < 1 {
		return SchemeHW{}, fmt.Errorf("energy: counter count %d invalid", m)
	}
	fm := float64(m)
	return SchemeHW{
		DynamicNJPerAccess:  loglogInterp(anchors.dyn, fm),
		StaticNJPerInterval: loglogInterp(anchors.static, fm),
		AreaMM2:             loglogInterp(anchors.area, fm),
	}, nil
}

// Breakdown is the CMRPO decomposition of §VII-B, in milliwatts per bank.
type Breakdown struct {
	DynamicMW float64 // counter logic + SRAM, per activation
	StaticMW  float64 // counter leakage
	RefreshMW float64 // victim-row refreshes (1 nJ per row)
	PRNGMW    float64 // PRA's random-number generation
	MissMW    float64 // counter-cache miss traffic to DRAM
}

// TotalMW sums the components.
func (b Breakdown) TotalMW() float64 {
	return b.DynamicMW + b.StaticMW + b.RefreshMW + b.PRNGMW + b.MissMW
}

// CMRPO returns the crosstalk-mitigation refresh power overhead: the total
// relative to the regular refresh power of one bank (2.5 mW).
func (b Breakdown) CMRPO() float64 {
	return b.TotalMW() / dram.RegularRefreshPowerMW
}

// Compute derives the per-bank CMRPO breakdown for a scheme from its
// activity counts over an execution of execNS nanoseconds on a system with
// the given number of banks. Counts are system-wide; the result is the
// per-bank average, matching the paper's "(per bank)" figures.
func Compute(kind mitigation.Kind, countersPerBank int, counts mitigation.Counts, banks int, execNS float64) (Breakdown, error) {
	if banks < 1 || execNS <= 0 {
		return Breakdown{}, fmt.Errorf("energy: invalid banks=%d execNS=%v", banks, execNS)
	}
	if !kind.Valid() {
		return Breakdown{}, fmt.Errorf("energy: unknown scheme kind %v", kind)
	}
	var b Breakdown
	perBank := func(nj float64) float64 { // nJ over the run -> mW per bank
		return nj / float64(banks) / execNS // nJ/ns = W; so *1e3 for mW
	}
	switch kind {
	case mitigation.KindNone:
		return Breakdown{}, nil
	case mitigation.KindPRA:
		b.PRNGMW = perBank(PRNGEnergyPerActivationNJ*float64(counts.Activations)) * 1e3
	default:
		hw, err := TableII(kind, countersPerBank)
		if err != nil {
			return Breakdown{}, err
		}
		b.DynamicMW = perBank(hw.DynamicNJPerAccess*float64(counts.Activations)) * 1e3
		b.StaticMW = hw.StaticNJPerInterval * StaticPowerFraction / dram.RefreshIntervalNS() * 1e3
		if kind == mitigation.KindCounterCache {
			b.MissMW = perBank(DRAMAccessNJ*float64(counts.ExtraMemAcc)) * 1e3
		}
		if kind == mitigation.KindStochastic {
			// DSAC draws hardware randomness per replacement decision;
			// price the bits like PRA's PRNG.
			b.PRNGMW = perBank(PRNGEfficiencyNJPerBit*float64(counts.PRNGBits)) * 1e3
		}
	}
	b.RefreshMW = perBank(dram.RowRefreshNJ*float64(counts.RowsRefreshed)) * 1e3
	return b, nil
}

// SCAEnergyPoint is one point of Fig. 2's per-interval energy breakdown for
// SCA with m counters: counter energy (static + dynamic) and victim-refresh
// energy over one 64 ms interval, in nJ per bank.
type SCAEnergyPoint struct {
	M         int
	CounterNJ float64
	RefreshNJ float64
	TotalNJ   float64
}

// SCAEnergy evaluates Fig. 2's curves for m counters given the per-bank
// accesses and refreshed rows measured over one interval. Fig. 2 plots the
// synthesis-model energies at face value (it is an energy plot, not CMRPO),
// so no derating applies here.
func SCAEnergy(m int, accessesPerBank, rowsRefreshedPerBank float64) (SCAEnergyPoint, error) {
	hw, err := TableII(mitigation.KindSCA, m)
	if err != nil {
		return SCAEnergyPoint{}, err
	}
	p := SCAEnergyPoint{
		M:         m,
		CounterNJ: hw.StaticNJPerInterval + hw.DynamicNJPerAccess*accessesPerBank,
		RefreshNJ: dram.RowRefreshNJ * rowsRefreshedPerBank,
	}
	p.TotalNJ = p.CounterNJ + p.RefreshNJ
	return p, nil
}

// CounterCacheStaticNJ returns the optimistic (no-miss) per-interval energy
// of a counter cache with the given entry count, the horizontal reference
// lines of Fig. 2: the paper notes they intersect the SCA points of equal
// total counter storage.
func CounterCacheStaticNJ(entries int) float64 {
	hw, _ := TableII(mitigation.KindSCA, entries)
	return hw.StaticNJPerInterval
}
