package workload

import (
	"fmt"
	"math"
	"strings"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/rng"
	"catsim/internal/trace"
)

// Seed-stream separators: every RNG stream a cohort owns derives from the
// run seed xor a distinct constant, so tenants, the tenant selector and
// the arrival processes never share state (and adding one never perturbs
// another — the partitioning SNIPPETS-style multi-instance subsystems use).
const (
	tenantSeedMix  = 0x7E4A47BA5E0D1C93
	pickSeedMix    = 0x5ECB0A57C0FF8E11
	arrivalSeedMix = 0xA881A77C3D5B9F21
)

// AttackerSpec embeds one attacker tenant in a cohort: a fraction of all
// arrivals is issued by it, and those requests run the trace package's
// kernel-attack generator (hammer rows blended with cover traffic drawn
// from the attacker's own footprint, per the attack mode).
type AttackerSpec struct {
	// Fraction of all arrivals issued by the attacker, in [0, 1).
	Fraction float64
	// Kernel, Mode and Pattern configure trace.NewAttackPattern. The zero
	// Mode is Heavy, the zero Pattern the paper's Gaussian kernels.
	Kernel  int
	Mode    trace.AttackMode
	Pattern trace.Pattern
}

// CohortSpec describes a multi-tenant population sharing the DRAM.
type CohortSpec struct {
	// Tenants is the number of benign tenants (the attacker, when present,
	// is one more on top).
	Tenants int
	// ZipfS is the Zipf exponent skewing both footprint sizes and tenant
	// popularity (0 selects 1.1).
	ZipfS float64
	// FootprintFrac is the fraction of each bank's rows the cohort
	// occupies, centered in the row space (0 selects 0.5).
	FootprintFrac float64
	// WriteFrac is the write fraction of benign requests (0 selects 0.3).
	WriteFrac float64
	// RowSkew is the intra-tenant row-reuse exponent: each tenant draws
	// row u^RowSkew into its span, so larger values concentrate traffic on
	// the span's first rows (0 selects 3).
	RowSkew float64
	// Attacker, when non-nil, adds an attacker tenant.
	Attacker *AttackerSpec
}

func (s *CohortSpec) fill() {
	if s.ZipfS == 0 {
		s.ZipfS = 1.1
	}
	if s.FootprintFrac == 0 {
		s.FootprintFrac = 0.5
	}
	if s.WriteFrac == 0 {
		s.WriteFrac = 0.3
	}
	if s.RowSkew == 0 {
		s.RowSkew = 3
	}
}

func (s CohortSpec) validate() error {
	if s.Tenants < 1 {
		return fmt.Errorf("workload: cohort needs at least one tenant, got %d", s.Tenants)
	}
	if s.ZipfS < 0 {
		return fmt.Errorf("workload: negative Zipf exponent %g", s.ZipfS)
	}
	if s.FootprintFrac <= 0 || s.FootprintFrac > 1 {
		return fmt.Errorf("workload: footprint fraction %g out of (0, 1]", s.FootprintFrac)
	}
	if s.WriteFrac < 0 || s.WriteFrac >= 1 {
		return fmt.Errorf("workload: write fraction %g out of [0, 1)", s.WriteFrac)
	}
	if s.RowSkew < 1 {
		return fmt.Errorf("workload: row skew %g must be at least 1", s.RowSkew)
	}
	if a := s.Attacker; a != nil {
		if a.Fraction <= 0 || a.Fraction >= 1 {
			return fmt.Errorf("workload: attacker fraction %g out of (0, 1)", a.Fraction)
		}
	}
	return nil
}

// String is the canonical cache-key form; it spells the attacker out by
// value so no pointer identity leaks into sim.CacheKey.
func (s CohortSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenants=%d,zipf=%g,foot=%g,write=%g,rowskew=%g",
		s.Tenants, s.ZipfS, s.FootprintFrac, s.WriteFrac, s.RowSkew)
	if s.Attacker != nil {
		fmt.Fprintf(&b, ",attacker=%g/k%d/%s/%s",
			s.Attacker.Fraction, s.Attacker.Kernel, s.Attacker.Mode, s.Attacker.Pattern)
	}
	return b.String()
}

// TenantStat is one tenant's share of a run, attributed by row ownership:
// each tenant owns a contiguous span of row indices (the same span in
// every bank, since both mapping policies place row bits most
// significant), so any (bank, row) event maps to exactly one owner. The
// attribution is region-centric on purpose — it depends only on the
// activation/refresh event stream, so a replayed capture reproduces it
// byte-identically without re-running the generators.
type TenantStat struct {
	// ID is the tenant index; the attacker, when present, is the last ID.
	ID       int  `json:"id"`
	Attacker bool `json:"attacker,omitempty"`
	// Rows is the tenant's footprint in rows per bank.
	Rows int `json:"rows"`
	// Acts counts activations that landed in the tenant's rows (for
	// benign tenants this equals the requests they issued; attacker hammer
	// rows may land in a victim tenant's span — that is the interference
	// signal).
	Acts int64 `json:"acts"`
	// RowsRefreshed counts victim-refresh rows inside the tenant's span —
	// whose rows the mitigation scheme had to touch.
	RowsRefreshed int64 `json:"rows_refreshed"`
	// ExposedRows and MissedRows are the oracle's per-tenant protection
	// verdict (protection runs only): distinct owned victim rows with any
	// crosstalk exposure, and those whose exposure crossed the threshold
	// unrefreshed.
	ExposedRows int64 `json:"exposed_rows,omitempty"`
	MissedRows  int64 `json:"missed_rows,omitempty"`
}

// Cohort is a built tenant population: the span table, the per-tenant and
// selector RNG streams, the attacker generator, and the attribution
// counters the engine's hooks feed. It implements engine.Attributor.
type Cohort struct {
	spec   CohortSpec
	geom   dram.Geometry
	policy addrmap.Policy

	baseRow int // first cohort row in every bank
	// spanLo/spanHi bound each party's rows (half-open, absolute row
	// indices); parties = Tenants, plus the attacker last when configured.
	spanLo, spanHi []int32
	// cum[mixIndex] is the cumulative tenant-selection distribution for
	// each mix profile (base, flat, peak).
	cum [3][]float64
	mix int

	pick    *rng.Xoshiro256   // tenant selection, write coin, attacker coin
	streams []*rng.Xoshiro256 // per-party address streams
	attack  trace.Generator   // nil without an attacker

	acts      []int64 // per party, owned-row activations
	refreshed []int64 // per party, owned victim-refresh rows
	otherActs int64   // activations outside every span (attacker spill)
	otherRef  int64
}

// tenantGen adapts one party's address stream to trace.Generator — the
// cover-traffic source the attacker's blend draws between hammer bursts.
type tenantGen struct {
	c *Cohort
	t int
}

func (g tenantGen) Name() string { return fmt.Sprintf("tenant-%d", g.t) }

func (g tenantGen) Next() trace.Request {
	return trace.Request{Addr: g.c.drawAddr(g.t), Gap: 1}
}

// NewCohort builds the tenant population for a geometry and mapping
// policy. Construction is deterministic in (spec, seed): span layout is
// arithmetic, and the RNG streams are seeded but not drawn from, so a
// replay run rebuilding the cohort for attribution sees the identical
// ownership table.
func NewCohort(spec CohortSpec, geom dram.Geometry, policy addrmap.Policy, seed uint64) (*Cohort, error) {
	spec.fill()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	parties := spec.Tenants
	if spec.Attacker != nil {
		parties++
	}
	rows := int(spec.FootprintFrac * float64(geom.RowsPerBank))
	if rows < parties {
		return nil, fmt.Errorf("workload: footprint of %d rows cannot hold %d tenants", rows, parties)
	}
	c := &Cohort{
		spec:      spec,
		geom:      geom,
		policy:    policy,
		baseRow:   (geom.RowsPerBank - rows) / 2,
		spanLo:    make([]int32, parties),
		spanHi:    make([]int32, parties),
		pick:      rng.NewXoshiro256(seed ^ pickSeedMix),
		streams:   make([]*rng.Xoshiro256, parties),
		acts:      make([]int64, parties),
		refreshed: make([]int64, parties),
	}

	// Zipf-sized spans: tenant k's footprint is proportional to
	// (k+1)^-s, floored at one row, laid out contiguously from baseRow.
	// The attacker takes the last (smallest) rank — it hides among the
	// long tail. Leftover rows from flooring pad the largest tenant.
	weights := make([]float64, parties)
	var sum float64
	for k := range weights {
		weights[k] = math.Pow(float64(k+1), -spec.ZipfS)
		sum += weights[k]
	}
	sizes := make([]int, parties)
	assigned := 0
	for k := range sizes {
		sizes[k] = int(float64(rows) * weights[k] / sum)
		if sizes[k] < 1 {
			sizes[k] = 1
		}
		assigned += sizes[k]
	}
	// Flooring under- or over-assigns by at most a few rows per party;
	// settle the difference against the largest span, which can absorb it.
	sizes[0] += rows - assigned
	if sizes[0] < 1 {
		return nil, fmt.Errorf("workload: footprint of %d rows too small for %d tenants at zipf=%g", rows, parties, spec.ZipfS)
	}
	at := c.baseRow
	for k, sz := range sizes {
		c.spanLo[k] = int32(at)
		c.spanHi[k] = int32(at + sz)
		at += sz
	}

	// Selection tables per mix profile. The attacker never wins the
	// benign selection (its traffic volume is AttackerSpec.Fraction, drawn
	// by a separate coin), so the tables cover benign tenants only.
	for mi, exp := range []float64{spec.ZipfS, 0, 2 * spec.ZipfS} {
		cum := make([]float64, spec.Tenants)
		var total float64
		for k := range cum {
			total += math.Pow(float64(k+1), -exp)
			cum[k] = total
		}
		for k := range cum {
			cum[k] /= total
		}
		c.cum[mi] = cum
	}

	for k := range c.streams {
		c.streams[k] = rng.NewXoshiro256(seed ^ tenantSeedMix ^ (uint64(k)+1)*0x9E3779B97F4A7C15)
	}

	if a := spec.Attacker; a != nil {
		cover := tenantGen{c: c, t: parties - 1}
		attack, err := trace.NewAttackPattern(a.Kernel, a.Mode, a.Pattern, geom, policy, cover)
		if err != nil {
			return nil, err
		}
		c.attack = attack
	}
	return c, nil
}

// Reset rewinds the cohort to the state NewCohort would produce for the
// same (spec, geometry, policy) with the given seed, without allocating:
// the span layout and selection tables are seed-independent arithmetic
// and stand; the selector and per-party streams re-seed with the same
// formulas construction uses; the attacker's emission state rewinds; and
// the attribution counters zero. Run contexts use it to reuse cohorts
// across seed-sweep runs.
func (c *Cohort) Reset(seed uint64) {
	c.pick.Seed(seed ^ pickSeedMix)
	for k := range c.streams {
		c.streams[k].Seed(seed ^ tenantSeedMix ^ (uint64(k)+1)*0x9E3779B97F4A7C15)
	}
	if a, ok := c.attack.(*trace.Attack); ok {
		a.Reset()
	}
	c.mix = 0
	for i := range c.acts {
		c.acts[i] = 0
		c.refreshed[i] = 0
	}
	c.otherActs = 0
	c.otherRef = 0
}

// Parties returns the number of tenants including the attacker.
func (c *Cohort) Parties() int { return len(c.spanLo) }

// setMix switches the tenant-popularity profile (diurnal phases).
func (c *Cohort) setMix(mix int) { c.mix = mix }

// drawAddr draws one address from party t's footprint: a row skewed
// toward the span start, a uniform bank and a uniform line within the
// row.
func (c *Cohort) drawAddr(t int) int64 {
	src := c.streams[t]
	lo, hi := int(c.spanLo[t]), int(c.spanHi[t])
	u := rng.Float64(src)
	var frac float64
	if c.spec.RowSkew == 3 {
		frac = u * u * u // the default skew without a Pow in the hot path
	} else {
		frac = math.Pow(u, c.spec.RowSkew)
	}
	row := lo + int(frac*float64(hi-lo))
	bank := c.geom.Unflat(rng.Intn(src, c.geom.TotalBanks()))
	col := rng.Intn(src, c.geom.LinesPerRow()) * c.geom.LineBytes
	return c.policy.Encode(addrmap.Coord{Bank: bank, Row: row, Col: col})
}

// Draw issues one request: the attacker coin first, then the mix-weighted
// tenant pick, then that tenant's address stream. Gap carries 1 (unused
// by the open-loop path, which times requests by arrival instead).
func (c *Cohort) Draw() trace.Request {
	if c.attack != nil && rng.Float64(c.pick) < c.spec.Attacker.Fraction {
		r := c.attack.Next()
		r.Gap = 1
		return r
	}
	u := rng.Float64(c.pick)
	cum := c.cum[c.mix]
	// Binary search the cumulative table (thousands of tenants).
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return trace.Request{
		Addr:  c.drawAddr(lo),
		Write: rng.Float64(c.pick) < c.spec.WriteFrac,
		Gap:   1,
	}
}

// ownerOf returns the party owning a row index, or -1 outside every span.
func (c *Cohort) ownerOf(row int) int {
	r := int32(row)
	if len(c.spanLo) == 0 || r < c.spanLo[0] || r >= c.spanHi[len(c.spanHi)-1] {
		return -1
	}
	lo, hi := 0, len(c.spanLo)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.spanLo[mid] <= r {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if r < c.spanHi[lo] {
		return lo
	}
	return -1
}

// OnActivate implements engine.Attributor: credit the activation to the
// row's owner. Allocation-free — it runs on the engine's request path.
func (c *Cohort) OnActivate(bank, row int) {
	if t := c.ownerOf(row); t >= 0 {
		c.acts[t]++
	} else {
		c.otherActs++
	}
}

// OnRefresh implements engine.Attributor: split an inclusive victim-row
// range across the owners it overlaps.
func (c *Cohort) OnRefresh(bank, lo, hi int) {
	for row := lo; row <= hi; {
		t := c.ownerOf(row)
		if t < 0 {
			// Outside every span: skip to the next span start (or done).
			c.otherRef++
			row++
			continue
		}
		end := int(c.spanHi[t]) - 1
		if hi < end {
			end = hi
		}
		c.refreshed[t] += int64(end - row + 1)
		row = end + 1
	}
}

// exposureVisitor is the subset of the oracle the per-tenant attribution
// consumes; mitigation.Oracle implements it.
type exposureVisitor interface {
	VisitExposed(fn func(bank, row int, missed bool))
}

// Stats snapshots the attribution counters into per-tenant rows, folding
// in the oracle's exposure map when a protection oracle ran.
func (c *Cohort) Stats(oracle exposureVisitor) []TenantStat {
	out := make([]TenantStat, len(c.spanLo))
	for t := range out {
		out[t] = TenantStat{
			ID:            t,
			Attacker:      c.attack != nil && t == len(out)-1,
			Rows:          int(c.spanHi[t] - c.spanLo[t]),
			Acts:          c.acts[t],
			RowsRefreshed: c.refreshed[t],
		}
	}
	if oracle != nil {
		oracle.VisitExposed(func(bank, row int, missed bool) {
			if t := c.ownerOf(row); t >= 0 {
				out[t].ExposedRows++
				if missed {
					out[t].MissedRows++
				}
			}
		})
	}
	return out
}

// UnownedActs reports activations (and refresh rows) that landed outside
// every tenant span — attacker hammer targets beyond the cohort region.
func (c *Cohort) UnownedActs() (acts, refreshRows int64) { return c.otherActs, c.otherRef }
