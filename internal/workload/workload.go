package workload

import (
	"fmt"
	"sort"
	"strings"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/trace"
)

// Config is one open-loop workload: an arrival process fanned out over
// one or more sources, all drawing requests from a shared tenant cohort.
// It is the unit sim.Config.OpenLoop attaches and the unit the presets
// name.
type Config struct {
	// Name labels the workload in reports ("" for ad-hoc configs).
	Name string
	// Sources is the number of parallel arrival streams; the configured
	// rate is split evenly across them (0 selects 1). Each source gets its
	// own arrival RNG stream but all share the cohort, so tenant selection
	// is globally consistent.
	Sources int
	// Requests is the total request budget across all sources.
	Requests int

	Arrival ArrivalSpec
	Cohort  CohortSpec
}

// withDefaults returns a copy with zero fields resolved, leaving the
// receiver untouched (Configs are shared by pointer from sim.Config, so
// canonicalisation must not mutate in place).
func (c Config) withDefaults() Config {
	if c.Sources == 0 {
		c.Sources = 1
	}
	c.Arrival.fill()
	c.Cohort.fill()
	return c
}

// Validate checks the config without building it.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Sources < 1 {
		return fmt.Errorf("workload: need at least one source, got %d", c.Sources)
	}
	if c.Requests < 1 {
		return fmt.Errorf("workload: need at least one request, got %d", c.Requests)
	}
	if err := c.Arrival.validate(); err != nil {
		return err
	}
	return c.Cohort.validate()
}

// String is the canonical form sim.CacheKey embeds: defaults resolved,
// fields in a fixed order, no pointer identities.
func (c Config) String() string {
	c = c.withDefaults()
	var b strings.Builder
	if c.Name != "" {
		fmt.Fprintf(&b, "%s|", c.Name)
	}
	fmt.Fprintf(&b, "src=%d,req=%d|%s|%s", c.Sources, c.Requests, c.Arrival, c.Cohort)
	return b.String()
}

// Source couples one arrival process with the shared cohort; it is the
// engine-facing open-loop stream (engine.OpenSource).
type Source struct {
	name   string
	proc   *process
	cohort *Cohort
}

// Name implements the engine's open-source interface.
func (s *Source) Name() string { return s.name }

// Next returns the next request and its arrival time in CPU cycles.
// Arrival times are non-decreasing; the request is drawn from the cohort
// under the arrival phase's tenant-mix profile.
func (s *Source) Next() (trace.Request, int64) {
	at, mix := s.proc.next()
	s.cohort.setMix(mixIndex(mix))
	return s.cohort.Draw(), at
}

// Runtime is a built open-loop workload: the shared cohort plus one
// Source and request budget per configured arrival stream.
type Runtime struct {
	Cohort  *Cohort
	Sources []*Source
	// Counts[i] is Sources[i]'s request budget; the budgets sum to
	// Config.Requests with the remainder spread over the first sources.
	Counts []int
}

// Reset rewinds a built runtime to the state Build would produce for the
// same config, geometry and policy with the given seed, without
// allocating: the cohort and every source's arrival process re-seed in
// place with the formulas Build uses. Request budgets (Counts) are
// config-determined and stand. Run contexts use it to reuse open-loop
// runtimes across seed-sweep runs.
func (rt *Runtime) Reset(seed uint64) {
	rt.Cohort.Reset(seed)
	for i, s := range rt.Sources {
		s.proc.reset(seed ^ arrivalSeedMix ^ (uint64(i)+1)*0x2545F4914F6CDD1D)
	}
}

// Build instantiates the workload for a geometry and mapping policy.
// cyclesPerNS converts the spec's nanosecond rates into the engine's CPU
// cycles. Building draws no randomness, so a replay run can rebuild the
// cohort for attribution and see the identical ownership table.
func (c Config) Build(geom dram.Geometry, policy addrmap.Policy, cyclesPerNS float64, seed uint64) (*Runtime, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cohort, err := NewCohort(c.Cohort, geom, policy, seed)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{Cohort: cohort}
	per := c.Arrival.split(c.Sources)
	for i := 0; i < c.Sources; i++ {
		proc := newProcess(per, cyclesPerNS, seed^arrivalSeedMix^(uint64(i)+1)*0x2545F4914F6CDD1D)
		n := c.Requests / c.Sources
		if i < c.Requests%c.Sources {
			n++
		}
		rt.Sources = append(rt.Sources, &Source{
			name:   fmt.Sprintf("%s#%d", c.label(), i),
			proc:   proc,
			cohort: cohort,
		})
		rt.Counts = append(rt.Counts, n)
	}
	return rt, nil
}

func (c Config) label() string {
	if c.Name != "" {
		return c.Name
	}
	return c.Arrival.Kind.String()
}

// split scales the spec's rates down to one of n parallel sources.
func (s ArrivalSpec) split(n int) ArrivalSpec {
	if n <= 1 {
		return s
	}
	s.RateRPS /= float64(n)
	if len(s.Phases) > 0 {
		phases := make([]Phase, len(s.Phases))
		copy(phases, s.Phases)
		for i := range phases {
			phases[i].RateRPS /= float64(n)
		}
		s.Phases = phases
	}
	return s
}

// Presets returns the named open-loop workloads. Rates are sized so the
// default 2-channel system runs at roughly the closed-loop model's
// memory-intensive throughput (~1.4e8 requests/s per core-equivalent);
// Requests is zero — callers size the budget to their run length.
func Presets() []Config {
	diurnalPhases := []Phase{
		{RateRPS: 4.2e8, DurationNS: 400_000, Mix: MixPeak},
		{RateRPS: 2.8e8, DurationNS: 800_000, Mix: MixBase},
		{RateRPS: 0.7e8, DurationNS: 400_000, Mix: MixFlat},
	}
	return []Config{
		{
			Name:    "ol-poisson",
			Sources: 2,
			Arrival: ArrivalSpec{Kind: Poisson, RateRPS: 2.8e8},
			Cohort:  CohortSpec{Tenants: 2000},
		},
		{
			Name:    "ol-bursty",
			Sources: 2,
			Arrival: ArrivalSpec{Kind: Bursty, RateRPS: 2.8e8, OnFrac: 0.25, MeanBurstNS: 50_000},
			Cohort:  CohortSpec{Tenants: 2000},
		},
		{
			Name:    "ol-diurnal",
			Sources: 2,
			Arrival: ArrivalSpec{Kind: Diurnal, Phases: diurnalPhases},
			Cohort:  CohortSpec{Tenants: 2000},
		},
		{
			Name:    "ol-mixed-attack",
			Sources: 2,
			Arrival: ArrivalSpec{Kind: Bursty, RateRPS: 2.8e8, OnFrac: 0.25, MeanBurstNS: 50_000},
			Cohort: CohortSpec{Tenants: 2000, Attacker: &AttackerSpec{
				Fraction: 0.1, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided,
			}},
		},
	}
}

// Names lists the preset names, sorted.
func Names() []string {
	var out []string
	for _, c := range Presets() {
		out = append(out, c.Name)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a preset by name.
func Lookup(name string) (Config, error) {
	for _, c := range Presets() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("workload: unknown open-loop workload %q (valid: %s)",
		name, strings.Join(Names(), ", "))
}
