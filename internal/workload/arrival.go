// Package workload layers production-shaped traffic on top of the
// closed-loop per-core streams in internal/trace: open-loop arrival
// processes (Poisson, bursty on/off, diurnal multi-phase) that stamp each
// request with an absolute arrival time instead of a retire-driven gap,
// and multi-tenant cohorts — thousands of tenants with Zipf-skewed row
// footprints drawn from partitioned per-tenant RNG streams, optionally
// hiding one attacker tenant that drives the trace package's kernel
// attack patterns. The engine consumes the combined stream through its
// open-slot scheduler; per-tenant attribution (activations, refreshed
// rows, oracle exposure) flows back into sim.Result.Tenants.
//
// Everything here is deterministic under a seed: a Config has a canonical
// String form that sim.CacheKey embeds, and a captured trace replays to a
// byte-identical Result because attribution is region-centric (ownership
// of the rows an event touched), never issuer-centric.
package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"catsim/internal/rng"
)

// ArrivalKind names an open-loop arrival process family.
type ArrivalKind int

// Arrival process families.
const (
	// Poisson arrivals: exponential interarrival times at a fixed rate.
	Poisson ArrivalKind = iota
	// Bursty arrivals: an on/off Markov process — exponential bursts at an
	// elevated rate separated by silent gaps, with a configured duty cycle
	// so the long-run mean rate matches RateRPS.
	Bursty
	// Diurnal arrivals: a repeating schedule of phases, each with its own
	// rate and tenant-mix profile (the load curve a service sees over a
	// day, compressed to simulation scale).
	Diurnal
)

func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// Mix profiles select how a phase skews tenant popularity: MixBase keeps
// the cohort's configured Zipf exponent, MixFlat spreads load uniformly
// (e.g. an overnight batch window) and MixPeak doubles the exponent
// (business-hours traffic concentrating on the hot tenants).
const (
	MixBase = "base"
	MixFlat = "flat"
	MixPeak = "peak"
)

// Phase is one segment of a diurnal schedule.
type Phase struct {
	// RateRPS is the arrival rate during the phase, in requests/second of
	// simulated time. A zero rate is a silent trough.
	RateRPS float64
	// DurationNS is the phase length in simulated nanoseconds.
	DurationNS float64
	// Mix selects the tenant-popularity profile for the phase ("" = base).
	Mix string
}

// ArrivalSpec describes an open-loop arrival process.
type ArrivalSpec struct {
	Kind ArrivalKind
	// RateRPS is the mean arrival rate in requests/second (Poisson and
	// Bursty; for Bursty it is the long-run mean across on and off states).
	RateRPS float64
	// OnFrac is the Bursty duty cycle: the long-run fraction of time spent
	// in the on state (0 selects 0.25). The on-state rate is RateRPS/OnFrac.
	OnFrac float64
	// MeanBurstNS is the mean on-state duration in simulated nanoseconds
	// (0 selects 50_000 ns).
	MeanBurstNS float64
	// Phases is the repeating diurnal schedule (Diurnal only).
	Phases []Phase
}

func (s *ArrivalSpec) fill() {
	if s.Kind == Bursty {
		if s.OnFrac == 0 {
			s.OnFrac = 0.25
		}
		if s.MeanBurstNS == 0 {
			s.MeanBurstNS = 50_000
		}
	}
}

func (s ArrivalSpec) validate() error {
	switch s.Kind {
	case Poisson:
		if s.RateRPS <= 0 {
			return fmt.Errorf("workload: poisson arrivals need a positive rate, got %g", s.RateRPS)
		}
	case Bursty:
		if s.RateRPS <= 0 {
			return fmt.Errorf("workload: bursty arrivals need a positive rate, got %g", s.RateRPS)
		}
		if s.OnFrac <= 0 || s.OnFrac > 1 {
			return fmt.Errorf("workload: bursty duty cycle %g out of (0, 1]", s.OnFrac)
		}
		if s.MeanBurstNS <= 0 {
			return fmt.Errorf("workload: bursty mean burst %g ns must be positive", s.MeanBurstNS)
		}
	case Diurnal:
		if len(s.Phases) == 0 {
			return fmt.Errorf("workload: diurnal arrivals need at least one phase")
		}
		anyRate := false
		for i, p := range s.Phases {
			if p.DurationNS <= 0 {
				return fmt.Errorf("workload: diurnal phase %d has non-positive duration %g ns", i, p.DurationNS)
			}
			if p.RateRPS < 0 {
				return fmt.Errorf("workload: diurnal phase %d has negative rate %g", i, p.RateRPS)
			}
			switch p.Mix {
			case "", MixBase, MixFlat, MixPeak:
			default:
				return fmt.Errorf("workload: diurnal phase %d has unknown mix %q", i, p.Mix)
			}
			anyRate = anyRate || p.RateRPS > 0
		}
		if !anyRate {
			return fmt.Errorf("workload: diurnal schedule has no phase with a positive rate")
		}
	default:
		return fmt.Errorf("workload: unknown arrival kind %d", int(s.Kind))
	}
	return nil
}

// String renders the spec in the grammar ParseArrival accepts — a
// canonical form safe to embed in sim.CacheKey (no pointers, stable field
// order).
func (s ArrivalSpec) String() string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	switch s.Kind {
	case Poisson:
		fmt.Fprintf(&b, ":rate=%g", s.RateRPS)
	case Bursty:
		fmt.Fprintf(&b, ":rate=%g,on=%g,burst=%g", s.RateRPS, s.OnFrac, s.MeanBurstNS)
	case Diurnal:
		b.WriteString(":phases=")
		for i, p := range s.Phases {
			if i > 0 {
				b.WriteByte('/')
			}
			fmt.Fprintf(&b, "%gx%g", p.RateRPS, p.DurationNS)
			if p.Mix != "" && p.Mix != MixBase {
				b.WriteByte(':')
				b.WriteString(p.Mix)
			}
		}
	}
	return b.String()
}

// ParseArrival parses the arrival-spec grammar:
//
//	poisson:rate=<rps>
//	bursty:rate=<rps>[,on=<duty>][,burst=<ns>]
//	diurnal:phases=<rps>x<ns>[:<mix>][/<rps>x<ns>[:<mix>]...]
//
// Rates are requests per second of simulated time, durations simulated
// nanoseconds, mix one of base/flat/peak.
func ParseArrival(s string) (ArrivalSpec, error) {
	var spec ArrivalSpec
	head, rest, _ := strings.Cut(s, ":")
	switch head {
	case "poisson":
		spec.Kind = Poisson
	case "bursty":
		spec.Kind = Bursty
	case "diurnal":
		spec.Kind = Diurnal
	default:
		return spec, fmt.Errorf("workload: unknown arrival kind %q (want poisson, bursty or diurnal)", head)
	}
	if rest == "" {
		return spec, fmt.Errorf("workload: arrival spec %q needs parameters after %q", s, head+":")
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("workload: arrival spec %q: parameter %q is not key=value", s, kv)
		}
		var err error
		switch key {
		case "rate":
			spec.RateRPS, err = strconv.ParseFloat(val, 64)
		case "on":
			spec.OnFrac, err = strconv.ParseFloat(val, 64)
		case "burst":
			spec.MeanBurstNS, err = strconv.ParseFloat(val, 64)
		case "phases":
			spec.Phases, err = parsePhases(val)
		default:
			return spec, fmt.Errorf("workload: arrival spec %q: unknown parameter %q", s, key)
		}
		if err != nil {
			return spec, fmt.Errorf("workload: arrival spec %q: %v", s, err)
		}
	}
	spec.fill()
	return spec, spec.validate()
}

func parsePhases(s string) ([]Phase, error) {
	var out []Phase
	for _, part := range strings.Split(s, "/") {
		body, mix, hasMix := strings.Cut(part, ":")
		rate, dur, ok := strings.Cut(body, "x")
		if !ok {
			return nil, fmt.Errorf("phase %q is not <rate>x<durationNS>", part)
		}
		var p Phase
		var err error
		if p.RateRPS, err = strconv.ParseFloat(rate, 64); err != nil {
			return nil, fmt.Errorf("phase %q: bad rate: %v", part, err)
		}
		if p.DurationNS, err = strconv.ParseFloat(dur, 64); err != nil {
			return nil, fmt.Errorf("phase %q: bad duration: %v", part, err)
		}
		if hasMix {
			p.Mix = mix
		}
		out = append(out, p)
	}
	return out, nil
}

// process turns an ArrivalSpec into a monotone stream of arrival times in
// CPU cycles. It carries the on/off and phase state machines; all
// randomness comes from its private source, so two processes with the
// same spec and seed emit identical streams.
type process struct {
	spec        ArrivalSpec
	src         *rng.Xoshiro256
	cyclesPerNS float64
	now         float64 // current time, fractional CPU cycles

	// Bursty state.
	on       bool
	stateEnd float64
	meanOn   float64 // mean on-state duration, cycles
	meanOff  float64

	// Diurnal state.
	phase    int
	phaseEnd float64
}

func newProcess(spec ArrivalSpec, cyclesPerNS float64, seed uint64) *process {
	p := &process{spec: spec, src: rng.NewXoshiro256(seed), cyclesPerNS: cyclesPerNS}
	switch spec.Kind {
	case Bursty:
		p.on = true
		p.meanOn = spec.MeanBurstNS * cyclesPerNS
		p.meanOff = p.meanOn * (1 - spec.OnFrac) / spec.OnFrac
		p.stateEnd = p.exp(p.meanOn)
	case Diurnal:
		p.phaseEnd = spec.Phases[0].DurationNS * cyclesPerNS
	}
	return p
}

// reset rewinds the process to the state newProcess(spec, cyclesPerNS,
// seed) would produce, without allocating: the RNG restarts and the
// per-kind state machine re-initialises in construction order (Bursty
// draws its first burst length at construction, so reset replays that
// draw).
func (p *process) reset(seed uint64) {
	p.src.Seed(seed)
	p.now = 0
	p.on = false
	p.stateEnd = 0
	p.phase = 0
	p.phaseEnd = 0
	switch p.spec.Kind {
	case Bursty:
		p.on = true
		p.stateEnd = p.exp(p.meanOn)
	case Diurnal:
		p.phaseEnd = p.spec.Phases[0].DurationNS * p.cyclesPerNS
	}
}

// exp draws an exponential with the given mean (cycles).
func (p *process) exp(mean float64) float64 {
	// 1-Float64 is in (0, 1], so the log is finite.
	return -mean * math.Log(1-rng.Float64(p.src))
}

// interCycles converts a rate in requests/second into a mean interarrival
// time in CPU cycles.
func (p *process) interCycles(rateRPS float64) float64 {
	return 1e9 * p.cyclesPerNS / rateRPS
}

// next returns the next arrival time in whole CPU cycles and the active
// tenant-mix profile. Arrival times are non-decreasing.
func (p *process) next() (int64, string) {
	mix := MixBase
	switch p.spec.Kind {
	case Poisson:
		p.now += p.exp(p.interCycles(p.spec.RateRPS))
	case Bursty:
		onRate := p.spec.RateRPS / p.spec.OnFrac
		for {
			if !p.on {
				// Silent gap: jump to the next burst.
				p.now = p.stateEnd
				p.on = true
				p.stateEnd = p.now + p.exp(p.meanOn)
				continue
			}
			cand := p.now + p.exp(p.interCycles(onRate))
			if cand <= p.stateEnd {
				p.now = cand
				break
			}
			// Burst ended before the candidate arrival: enter the gap.
			p.now = p.stateEnd
			p.on = false
			p.stateEnd = p.now + p.exp(p.meanOff)
		}
	case Diurnal:
		for {
			ph := p.spec.Phases[p.phase]
			if ph.RateRPS <= 0 {
				p.nextPhase()
				continue
			}
			cand := p.now + p.exp(p.interCycles(ph.RateRPS))
			if cand <= p.phaseEnd {
				p.now = cand
				if ph.Mix != "" {
					mix = ph.Mix
				}
				break
			}
			p.nextPhase()
		}
	}
	return int64(p.now), mix
}

// nextPhase advances the diurnal schedule, wrapping at the end.
func (p *process) nextPhase() {
	p.now = p.phaseEnd
	p.phase = (p.phase + 1) % len(p.spec.Phases)
	p.phaseEnd = p.now + p.spec.Phases[p.phase].DurationNS*p.cyclesPerNS
}

// MeanRateRPS returns the schedule's long-run mean arrival rate — used by
// callers that scale request budgets to run lengths.
func (s ArrivalSpec) MeanRateRPS() float64 {
	if s.Kind != Diurnal {
		return s.RateRPS
	}
	var reqs, dur float64
	for _, p := range s.Phases {
		reqs += p.RateRPS * p.DurationNS
		dur += p.DurationNS
	}
	if dur == 0 {
		return 0
	}
	return reqs / dur
}

// mixIndex maps a mix profile name to the cohort's selection-table index.
func mixIndex(mix string) int {
	switch mix {
	case MixFlat:
		return 1
	case MixPeak:
		return 2
	default:
		return 0
	}
}
