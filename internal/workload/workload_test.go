package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
	"catsim/internal/trace"
)

func testGeomPolicy(t *testing.T) (dram.Geometry, addrmap.Policy) {
	t.Helper()
	geom := dram.Default2Channel()
	policy, err := addrmap.NewRowInterleaved(geom)
	if err != nil {
		t.Fatal(err)
	}
	return geom, policy
}

func TestParseArrivalRoundTrip(t *testing.T) {
	for _, in := range []string{
		"poisson:rate=2.8e+08",
		"bursty:rate=1e+08,on=0.25,burst=50000",
		"diurnal:phases=4.2e+08x400000:peak/2.8e+08x800000/7e+07x400000:flat",
	} {
		spec, err := ParseArrival(in)
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", in, err)
		}
		if got := spec.String(); got != in {
			t.Errorf("ParseArrival(%q).String() = %q", in, got)
		}
		again, err := ParseArrival(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", spec.String(), err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Errorf("round trip changed spec: %+v vs %+v", spec, again)
		}
	}
}

func TestParseArrivalErrors(t *testing.T) {
	for _, in := range []string{
		"steady:rate=1e8",              // unknown kind
		"poisson",                      // missing params
		"poisson:rate",                 // not key=value
		"poisson:rate=0",               // rate must be positive
		"poisson:pace=1e8",             // unknown key
		"bursty:rate=1e8,on=1.5",       // duty out of range
		"diurnal:phases=1e8x0",         // zero-length phase
		"diurnal:phases=0x1000",        // no phase with a positive rate
		"diurnal:phases=1e8x1000:warm", // unknown mix
		"diurnal:phases=1e8",           // malformed phase
	} {
		if _, err := ParseArrival(in); err == nil {
			t.Errorf("ParseArrival(%q) succeeded, want error", in)
		}
	}
}

// drainProcess draws n arrivals and returns the times.
func drainProcess(p *process, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i], _ = p.next()
	}
	return out
}

func TestProcessMonotoneAndDeterministic(t *testing.T) {
	specs := []ArrivalSpec{
		{Kind: Poisson, RateRPS: 2e8},
		{Kind: Bursty, RateRPS: 2e8, OnFrac: 0.25, MeanBurstNS: 20_000},
		{Kind: Diurnal, Phases: []Phase{
			{RateRPS: 3e8, DurationNS: 10_000, Mix: MixPeak},
			{RateRPS: 1e8, DurationNS: 20_000},
		}},
	}
	for _, spec := range specs {
		a := drainProcess(newProcess(spec, 3.2, 7), 5000)
		b := drainProcess(newProcess(spec, 3.2, 7), 5000)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different arrivals", spec.Kind)
		}
		c := drainProcess(newProcess(spec, 3.2, 8), 5000)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical arrivals", spec.Kind)
		}
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				t.Fatalf("%s: arrivals not monotone at %d: %d < %d", spec.Kind, i, a[i], a[i-1])
			}
		}
	}
}

func TestProcessMeanRates(t *testing.T) {
	const cyclesPerNS = 3.2
	// Short burst/phase periods pack hundreds of on/off and schedule
	// cycles into the measurement window, so the long-run mean converges;
	// the bursty tolerance is wider because duty-cycle variance decays
	// only with the number of bursts.
	for _, tc := range []struct {
		spec ArrivalSpec
		tol  float64
	}{
		{ArrivalSpec{Kind: Poisson, RateRPS: 2e8}, 0.05},
		{ArrivalSpec{Kind: Bursty, RateRPS: 2e8, OnFrac: 0.25, MeanBurstNS: 2_000}, 0.10},
		{ArrivalSpec{Kind: Diurnal, Phases: []Phase{
			{RateRPS: 3e8, DurationNS: 25_000},
			{RateRPS: 1e8, DurationNS: 25_000},
		}}, 0.05},
	} {
		const n = 400_000
		at := drainProcess(newProcess(tc.spec, cyclesPerNS, 42), n)
		durNS := float64(at[n-1]) / cyclesPerNS
		got := float64(n) / (durNS * 1e-9)
		want := tc.spec.MeanRateRPS()
		if math.Abs(got-want)/want > tc.tol {
			t.Errorf("%s: measured %.3g RPS, want %.3g within %g%%",
				tc.spec.Kind, got, want, tc.tol*100)
		}
	}
}

func TestBurstyHasGaps(t *testing.T) {
	// A 25% duty cycle must show interarrival gaps far beyond the
	// on-state mean — the silent periods a Poisson stream never produces.
	spec := ArrivalSpec{Kind: Bursty, RateRPS: 1e8, OnFrac: 0.25, MeanBurstNS: 10_000}
	at := drainProcess(newProcess(spec, 3.2, 1), 50_000)
	onMeanCycles := 1e9 * 3.2 / (1e8 / 0.25)
	long := 0
	for i := 1; i < len(at); i++ {
		if float64(at[i]-at[i-1]) > 20*onMeanCycles {
			long++
		}
	}
	if long == 0 {
		t.Error("bursty stream produced no long silent gaps")
	}
}

func TestDiurnalMixFollowsPhases(t *testing.T) {
	spec := ArrivalSpec{Kind: Diurnal, Phases: []Phase{
		{RateRPS: 2e8, DurationNS: 10_000, Mix: MixPeak},
		{RateRPS: 2e8, DurationNS: 10_000, Mix: MixFlat},
	}}
	p := newProcess(spec, 3.2, 5)
	seen := map[string]bool{}
	for i := 0; i < 20_000; i++ {
		_, mix := p.next()
		seen[mix] = true
	}
	if !seen[MixPeak] || !seen[MixFlat] {
		t.Errorf("diurnal phases did not surface both mixes: %v", seen)
	}
}

func TestCohortSpansPartitionFootprint(t *testing.T) {
	geom, policy := testGeomPolicy(t)
	spec := CohortSpec{Tenants: 1000, Attacker: &AttackerSpec{Fraction: 0.1}}
	c, err := NewCohort(spec, geom, policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.Parties(), 1001; got != want {
		t.Fatalf("parties = %d, want %d", got, want)
	}
	rows := int(0.5 * float64(geom.RowsPerBank))
	if got := int(c.spanHi[len(c.spanHi)-1] - c.spanLo[0]); got != rows {
		t.Errorf("spans cover %d rows, want %d", got, rows)
	}
	for k := 1; k < c.Parties(); k++ {
		if c.spanLo[k] != c.spanHi[k-1] {
			t.Fatalf("gap or overlap between spans %d and %d", k-1, k)
		}
		if c.spanHi[k] <= c.spanLo[k] {
			t.Fatalf("empty span %d", k)
		}
	}
	// Zipf sizing: tenant 0 largest, sizes non-increasing (modulo the
	// 1-row floor at the tail).
	if c.spanHi[0]-c.spanLo[0] < c.spanHi[1]-c.spanLo[1] {
		t.Error("tenant 0 smaller than tenant 1 under Zipf sizing")
	}
	// Ownership agrees with the spans, boundaries included.
	for k := 0; k < c.Parties(); k += 100 {
		if got := c.ownerOf(int(c.spanLo[k])); got != k {
			t.Errorf("ownerOf(spanLo[%d]) = %d", k, got)
		}
		if got := c.ownerOf(int(c.spanHi[k]) - 1); got != k {
			t.Errorf("ownerOf(spanHi[%d]-1) = %d", k, got)
		}
	}
	if c.ownerOf(int(c.spanLo[0])-1) != -1 || c.ownerOf(int(c.spanHi[c.Parties()-1])) != -1 {
		t.Error("rows outside the footprint found an owner")
	}
}

func TestCohortDrawStaysInFootprintAndIsDeterministic(t *testing.T) {
	geom, policy := testGeomPolicy(t)
	spec := CohortSpec{Tenants: 64}
	a, err := NewCohort(spec, geom, policy, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewCohort(spec, geom, policy, 9)
	writes := 0
	for i := 0; i < 20_000; i++ {
		ra, rb := a.Draw(), b.Draw()
		if ra != rb {
			t.Fatalf("draw %d differs between identical cohorts: %+v vs %+v", i, ra, rb)
		}
		coord := policy.Decode(ra.Addr)
		if own := a.ownerOf(coord.Row); own < 0 {
			t.Fatalf("draw %d row %d outside every span", i, coord.Row)
		}
		if ra.Write {
			writes++
		}
	}
	// WriteFrac defaults to 0.3.
	if frac := float64(writes) / 20_000; math.Abs(frac-0.3) > 0.02 {
		t.Errorf("write fraction %.3f, want ~0.3", frac)
	}
}

func TestCohortAttribution(t *testing.T) {
	geom, policy := testGeomPolicy(t)
	c, err := NewCohort(CohortSpec{Tenants: 4, FootprintFrac: 0.25}, geom, policy, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo0, hi0 := int(c.spanLo[0]), int(c.spanHi[0])
	c.OnActivate(0, lo0)
	c.OnActivate(1, hi0-1)
	c.OnActivate(0, lo0-1) // outside every span
	// A refresh range straddling tenants 0 and 1.
	c.OnRefresh(0, hi0-2, hi0+1)
	stats := c.Stats(nil)
	if stats[0].Acts != 2 || stats[1].Acts != 0 {
		t.Errorf("acts = %d/%d, want 2/0", stats[0].Acts, stats[1].Acts)
	}
	if stats[0].RowsRefreshed != 2 || stats[1].RowsRefreshed != 2 {
		t.Errorf("rows refreshed = %d/%d, want 2/2", stats[0].RowsRefreshed, stats[1].RowsRefreshed)
	}
	if acts, _ := c.UnownedActs(); acts != 1 {
		t.Errorf("unowned acts = %d, want 1", acts)
	}
}

// fakeOracle drives Stats' exposure attribution without a real run.
type fakeOracle struct{ events [][3]int } // bank, row, missed(0/1)

func (f fakeOracle) VisitExposed(fn func(bank, row int, missed bool)) {
	for _, e := range f.events {
		fn(e[0], e[1], e[2] == 1)
	}
}

func TestCohortStatsFoldOracleExposure(t *testing.T) {
	geom, policy := testGeomPolicy(t)
	c, err := NewCohort(CohortSpec{Tenants: 2, FootprintFrac: 0.25}, geom, policy, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo1 := int(c.spanLo[1])
	stats := c.Stats(fakeOracle{events: [][3]int{
		{0, lo1, 1},
		{0, lo1 + 1, 0},
		{0, 0, 1}, // outside the footprint: dropped
	}})
	if stats[1].ExposedRows != 2 || stats[1].MissedRows != 1 {
		t.Errorf("tenant 1 exposure = %d/%d, want 2 exposed / 1 missed",
			stats[1].ExposedRows, stats[1].MissedRows)
	}
	if stats[0].ExposedRows != 0 {
		t.Errorf("tenant 0 exposure = %d, want 0", stats[0].ExposedRows)
	}
}

func TestCohortAttackerDrawsHammerRows(t *testing.T) {
	geom, policy := testGeomPolicy(t)
	spec := CohortSpec{Tenants: 8, Attacker: &AttackerSpec{
		Fraction: 0.5, Mode: trace.Heavy, Pattern: trace.PatternDoubleSided,
	}}
	c, err := NewCohort(spec, geom, policy, 11)
	if err != nil {
		t.Fatal(err)
	}
	// The benign selection tables never pick the attacker party, so any
	// draw landing in its span came through the attacker path (Heavy mode
	// routes 25% of attacker traffic to its own cover footprint). With a
	// 50% attacker fraction that is ~2500 of 20000 draws.
	attacker := c.Parties() - 1
	inAttackerSpan := 0
	for i := 0; i < 20_000; i++ {
		coord := policy.Decode(c.Draw().Addr)
		if c.ownerOf(coord.Row) == attacker {
			inAttackerSpan++
		}
	}
	if inAttackerSpan < 1000 {
		t.Errorf("only %d draws in the attacker span, want the Heavy cover share (~2500)", inAttackerSpan)
	}
	// And the same spec without an attacker never touches that span.
	benign, err := NewCohort(CohortSpec{Tenants: 8}, geom, policy, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5_000; i++ {
		coord := policy.Decode(benign.Draw().Addr)
		if t2 := benign.ownerOf(coord.Row); t2 < 0 {
			t.Fatalf("benign draw %d landed outside every span", i)
		}
	}
}

func TestConfigStringCanonicalAndPure(t *testing.T) {
	cfg := Config{Name: "ol-bursty", Requests: 100,
		Arrival: ArrivalSpec{Kind: Bursty, RateRPS: 1e8},
		Cohort:  CohortSpec{Tenants: 10, Attacker: &AttackerSpec{Fraction: 0.1}},
	}
	s1 := cfg.String()
	if cfg.Sources != 0 || cfg.Cohort.ZipfS != 0 {
		t.Fatal("String mutated the config in place")
	}
	if s1 != cfg.String() {
		t.Error("String is not stable")
	}
	if strings.Contains(s1, "0x") {
		t.Errorf("String leaks a pointer: %q", s1)
	}
	other := cfg
	other.Cohort.Attacker = &AttackerSpec{Fraction: 0.2}
	if other.String() == s1 {
		t.Error("attacker change did not change the canonical form")
	}
}

func TestBuildSplitsBudgetAndRate(t *testing.T) {
	geom, policy := testGeomPolicy(t)
	cfg := Config{Sources: 3, Requests: 10,
		Arrival: ArrivalSpec{Kind: Poisson, RateRPS: 3e8},
		Cohort:  CohortSpec{Tenants: 16},
	}
	rt, err := cfg.Build(geom, policy, 3.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt.Counts, []int{4, 3, 3}) {
		t.Errorf("budgets = %v, want [4 3 3]", rt.Counts)
	}
	if got := rt.Sources[0].proc.spec.RateRPS; got != 1e8 {
		t.Errorf("per-source rate = %g, want 1e8", got)
	}
	// Sources advance independently but share the cohort.
	r0, at0 := rt.Sources[0].Next()
	if at0 < 0 || r0.Addr < 0 {
		t.Errorf("bad first arrival: %+v at %d", r0, at0)
	}
	if rt.Sources[0].cohort != rt.Sources[1].cohort {
		t.Error("sources do not share the cohort")
	}
}

func TestLookupAndValidate(t *testing.T) {
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "ol-bursty") {
		t.Errorf("Lookup error should list presets, got %v", err)
	}
	for _, name := range Names() {
		cfg, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Requests != 0 {
			t.Errorf("%s: presets leave Requests to the caller", name)
		}
		cfg.Requests = 1
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	bad := Config{Requests: 1, Arrival: ArrivalSpec{Kind: Poisson, RateRPS: 1e8},
		Cohort: CohortSpec{Tenants: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-tenant cohort validated")
	}
}
