// Package addrmap implements the physical-address-to-DRAM-coordinate mapping
// policies of the USIMM memory-system simulator that the paper's evaluation
// uses (§VI, §VIII-B):
//
//   - the baseline policy "rw:rk:bk:ch:col:offset" (row bits highest), and
//   - a parallelism-maximising policy that places channel and bank bits just
//     above the line offset, so consecutive cache lines stripe across all
//     channels and banks (the "4-channel mapping policy" study).
//
// All mappings are pure bit slicing over power-of-two geometries and are
// exactly invertible, which the tests verify exhaustively on small
// geometries and probabilistically on the full ones.
package addrmap

import (
	"fmt"
	"math/bits"

	"catsim/internal/dram"
)

// Coord locates one cache line in the memory system.
type Coord struct {
	Bank dram.BankID
	Row  int
	Col  int // cache-line index within the row
}

// Policy maps physical line addresses to DRAM coordinates and back.
type Policy interface {
	// Decode maps a physical byte address to its DRAM coordinate.
	Decode(addr int64) Coord
	// Encode is the inverse of Decode (up to line-offset truncation).
	Encode(c Coord) int64
	// Name identifies the policy in reports.
	Name() string
}

func log2(v int) uint { return uint(bits.TrailingZeros(uint(v))) }

// fields holds the bit widths shared by both policies.
type fields struct {
	geom                                             dram.Geometry
	offBits, colBits, chBits, rkBits, bkBits, rwBits uint
}

func newFields(g dram.Geometry) (fields, error) {
	if err := g.Validate(); err != nil {
		return fields{}, err
	}
	return fields{
		geom:    g,
		offBits: log2(g.LineBytes),
		colBits: log2(g.LinesPerRow()),
		chBits:  log2(g.Channels),
		rkBits:  log2(g.RanksPerCh),
		bkBits:  log2(g.BanksPerRk),
		rwBits:  log2(g.RowsPerBank),
	}, nil
}

// RowInterleaved is the paper's baseline policy rw:rk:bk:ch:col:offset.
// Row bits are the most significant, so an application streaming through a
// row stays in one bank, and the row is the coarsest locality unit.
type RowInterleaved struct{ f fields }

// NewRowInterleaved builds the baseline policy for geometry g.
func NewRowInterleaved(g dram.Geometry) (*RowInterleaved, error) {
	f, err := newFields(g)
	if err != nil {
		return nil, fmt.Errorf("addrmap: %w", err)
	}
	return &RowInterleaved{f: f}, nil
}

// Name implements Policy.
func (p *RowInterleaved) Name() string { return "rw:rk:bk:ch:col:offset" }

// Decode implements Policy.
func (p *RowInterleaved) Decode(addr int64) Coord {
	f := &p.f
	a := uint64(addr) >> f.offBits
	col := int(a & (1<<f.colBits - 1))
	a >>= f.colBits
	ch := int(a & (1<<f.chBits - 1))
	a >>= f.chBits
	bk := int(a & (1<<f.bkBits - 1))
	a >>= f.bkBits
	rk := int(a & (1<<f.rkBits - 1))
	a >>= f.rkBits
	rw := int(a & (1<<f.rwBits - 1))
	return Coord{Bank: dram.BankID{Channel: ch, Rank: rk, Bank: bk}, Row: rw, Col: col}
}

// Encode implements Policy.
func (p *RowInterleaved) Encode(c Coord) int64 {
	f := &p.f
	a := uint64(c.Row)
	a = a<<f.rkBits | uint64(c.Bank.Rank)
	a = a<<f.bkBits | uint64(c.Bank.Bank)
	a = a<<f.chBits | uint64(c.Bank.Channel)
	a = a<<f.colBits | uint64(c.Col)
	return int64(a << f.offBits)
}

// ChannelInterleaved is the parallelism-maximising policy
// rw:col:rk:bk:ch:offset: channel, bank and rank bits sit just above the
// line offset, so consecutive lines spread across every bank in the system.
type ChannelInterleaved struct{ f fields }

// NewChannelInterleaved builds the parallelism-maximising policy.
func NewChannelInterleaved(g dram.Geometry) (*ChannelInterleaved, error) {
	f, err := newFields(g)
	if err != nil {
		return nil, fmt.Errorf("addrmap: %w", err)
	}
	return &ChannelInterleaved{f: f}, nil
}

// Name implements Policy.
func (p *ChannelInterleaved) Name() string { return "rw:col:rk:bk:ch:offset" }

// Decode implements Policy.
func (p *ChannelInterleaved) Decode(addr int64) Coord {
	f := &p.f
	a := uint64(addr) >> f.offBits
	ch := int(a & (1<<f.chBits - 1))
	a >>= f.chBits
	bk := int(a & (1<<f.bkBits - 1))
	a >>= f.bkBits
	rk := int(a & (1<<f.rkBits - 1))
	a >>= f.rkBits
	col := int(a & (1<<f.colBits - 1))
	a >>= f.colBits
	rw := int(a & (1<<f.rwBits - 1))
	return Coord{Bank: dram.BankID{Channel: ch, Rank: rk, Bank: bk}, Row: rw, Col: col}
}

// Encode implements Policy.
func (p *ChannelInterleaved) Encode(c Coord) int64 {
	f := &p.f
	a := uint64(c.Row)
	a = a<<f.colBits | uint64(c.Col)
	a = a<<f.rkBits | uint64(c.Bank.Rank)
	a = a<<f.bkBits | uint64(c.Bank.Bank)
	a = a<<f.chBits | uint64(c.Bank.Channel)
	return int64(a << f.offBits)
}

// PinChannel remaps addr onto channel ch, preserving row, rank, bank and
// column under policy p. Sharded runs use it to give each core a
// channel-local view of its address stream: the remapped stream exercises
// exactly one channel's banks, so per-channel partitions own disjoint
// state. The line offset is truncated (Encode returns line-aligned
// addresses), which no decode-side consumer observes.
func PinChannel(p Policy, addr int64, ch int) int64 {
	c := p.Decode(addr)
	c.Bank.Channel = ch
	return p.Encode(c)
}
