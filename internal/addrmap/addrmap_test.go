package addrmap

import (
	"testing"
	"testing/quick"

	"catsim/internal/dram"
	"catsim/internal/rng"
)

func policies(t *testing.T, g dram.Geometry) []Policy {
	t.Helper()
	ri, err := NewRowInterleaved(g)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := NewChannelInterleaved(g)
	if err != nil {
		t.Fatal(err)
	}
	return []Policy{ri, ci}
}

func TestRoundTripExhaustiveSmallGeometry(t *testing.T) {
	g := dram.Geometry{
		Channels: 2, RanksPerCh: 2, BanksPerRk: 4,
		RowsPerBank: 16, ColBytes: 256, LineBytes: 64,
	}
	for _, p := range policies(t, g) {
		total := g.TotalBytes() / int64(g.LineBytes)
		seen := make(map[Coord]bool)
		for line := int64(0); line < total; line++ {
			addr := line * int64(g.LineBytes)
			c := p.Decode(addr)
			if seen[c] {
				t.Fatalf("%s: coordinate %+v repeated", p.Name(), c)
			}
			seen[c] = true
			if back := p.Encode(c); back != addr {
				t.Fatalf("%s: Encode(Decode(%#x)) = %#x", p.Name(), addr, back)
			}
		}
		if int64(len(seen)) != total {
			t.Fatalf("%s: mapping not a bijection", p.Name())
		}
	}
}

func TestRoundTripFullGeometry(t *testing.T) {
	g := dram.Default2Channel()
	src := rng.NewXoshiro256(5)
	for _, p := range policies(t, g) {
		for i := 0; i < 20000; i++ {
			addr := int64(src.Uint64()) & (g.TotalBytes() - 1)
			addr &^= int64(g.LineBytes - 1)
			if back := p.Encode(p.Decode(addr)); back != addr {
				t.Fatalf("%s: round trip failed for %#x -> %#x", p.Name(), addr, back)
			}
		}
	}
}

func TestCoordinatesInRange(t *testing.T) {
	g := dram.Default4Channel()
	f := func(raw uint64) bool {
		addr := int64(raw) & (g.TotalBytes()*2 - 1) // include out-of-range bits; Decode masks
		addr &^= int64(g.LineBytes - 1)
		for _, p := range policies(t, g) {
			c := p.Decode(addr)
			if c.Bank.Channel < 0 || c.Bank.Channel >= g.Channels ||
				c.Bank.Rank < 0 || c.Bank.Rank >= g.RanksPerCh ||
				c.Bank.Bank < 0 || c.Bank.Bank >= g.BanksPerRk ||
				c.Row < 0 || c.Row >= g.RowsPerBank ||
				c.Col < 0 || c.Col >= g.LinesPerRow() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelInterleavedStripesConsecutiveLines(t *testing.T) {
	g := dram.Default2Channel()
	ci, err := NewChannelInterleaved(g)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive lines must alternate channels.
	c0 := ci.Decode(0)
	c1 := ci.Decode(int64(g.LineBytes))
	if c0.Bank.Channel == c1.Bank.Channel {
		t.Error("consecutive lines landed on the same channel")
	}

	ri, err := NewRowInterleaved(g)
	if err != nil {
		t.Fatal(err)
	}
	// Under the baseline policy, lines within a row-group stay on one channel
	// until the column bits roll over.
	r0 := ri.Decode(0)
	r1 := ri.Decode(int64(g.LineBytes))
	if r0.Bank.Channel != r1.Bank.Channel {
		t.Error("baseline policy should keep consecutive lines on one channel")
	}
}

func TestRowBitsAreMostSignificant(t *testing.T) {
	g := dram.Default2Channel()
	ri, err := NewRowInterleaved(g)
	if err != nil {
		t.Fatal(err)
	}
	// Flipping the top in-range address bit must change only the row.
	base := int64(0)
	top := g.TotalBytes() >> 1
	c0, c1 := ri.Decode(base), ri.Decode(top)
	if c0.Bank != c1.Bank || c0.Col != c1.Col {
		t.Error("top address bit changed bank or column under row-interleaved policy")
	}
	if c0.Row == c1.Row {
		t.Error("top address bit did not change the row")
	}
}

func TestInvalidGeometryRejected(t *testing.T) {
	g := dram.Default2Channel()
	g.Channels = 3
	if _, err := NewRowInterleaved(g); err == nil {
		t.Error("expected validation error")
	}
	if _, err := NewChannelInterleaved(g); err == nil {
		t.Error("expected validation error")
	}
}

// TestPinChannel checks the channel-remap helper preserves every
// coordinate but the channel, lands in range, and is idempotent, under
// both policies.
func TestPinChannel(t *testing.T) {
	g := dram.Default4Channel()
	row, err := NewRowInterleaved(g)
	if err != nil {
		t.Fatal(err)
	}
	chp, err := NewChannelInterleaved(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{row, chp} {
		rng := uint64(1)
		for i := 0; i < 2000; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			addr := int64(rng % uint64(g.TotalBytes()))
			ch := int(rng>>32) % g.Channels
			pinned := PinChannel(p, addr, ch)
			got := p.Decode(pinned)
			want := p.Decode(addr)
			want.Bank.Channel = ch
			if got != want {
				t.Fatalf("%s: PinChannel(%#x, %d) decoded %+v, want %+v", p.Name(), addr, ch, got, want)
			}
			if again := PinChannel(p, pinned, ch); again != pinned {
				t.Fatalf("%s: PinChannel not idempotent: %#x -> %#x", p.Name(), pinned, again)
			}
		}
	}
}
