// Package memctrl is the event-driven memory-controller model: closed-page
// accesses over per-bank and per-channel resources with DDR3 timing,
// rank-level auto-refresh every tREFI, and on-demand victim-row refreshes
// injected by the crosstalk-mitigation schemes (which occupy the target
// bank for one row cycle per refreshed row and delay queued demand
// requests — the source of the paper's execution-time overhead).
//
// The model deliberately works at bank/channel occupancy granularity
// rather than per-command DDR cycles; DESIGN.md substitution S1 explains
// why that preserves the CMRPO and ETO behaviour the paper measures.
package memctrl

import (
	"fmt"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
)

// Stats aggregates controller activity (bus cycles and counts).
type Stats struct {
	Reads             int64
	Writes            int64
	WriteDrains       int64 // write-queue drain bursts
	ReadLatencySum    int64 // bus cycles, issue to data
	AutoRefreshes     int64
	VictimRefreshRows int64
	VictimRefreshBusy int64 // bus cycles of bank occupancy injected
}

// Sub returns the field-wise difference s - prev: the controller activity
// between two Stats() snapshots. The epoch engine samples Stats at epoch
// boundaries and uses Sub to report per-epoch reads, latency and
// victim-refresh occupancy.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Reads:             s.Reads - prev.Reads,
		Writes:            s.Writes - prev.Writes,
		WriteDrains:       s.WriteDrains - prev.WriteDrains,
		ReadLatencySum:    s.ReadLatencySum - prev.ReadLatencySum,
		AutoRefreshes:     s.AutoRefreshes - prev.AutoRefreshes,
		VictimRefreshRows: s.VictimRefreshRows - prev.VictimRefreshRows,
		VictimRefreshBusy: s.VictimRefreshBusy - prev.VictimRefreshBusy,
	}
}

// Add returns the field-wise sum s + o. The sharded engine folds
// per-partition controller stats into system totals with it.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:             s.Reads + o.Reads,
		Writes:            s.Writes + o.Writes,
		WriteDrains:       s.WriteDrains + o.WriteDrains,
		ReadLatencySum:    s.ReadLatencySum + o.ReadLatencySum,
		AutoRefreshes:     s.AutoRefreshes + o.AutoRefreshes,
		VictimRefreshRows: s.VictimRefreshRows + o.VictimRefreshRows,
		VictimRefreshBusy: s.VictimRefreshBusy + o.VictimRefreshBusy,
	}
}

// Write-queue watermarks (Table I: capacity 64). Writes are posted into a
// per-channel queue and drained in bursts once the high watermark is
// reached, down to the low watermark — USIMM's write-drain policy. Reads
// therefore only contend with writes during drain bursts.
const (
	WriteQueueCap  = 64
	writeDrainHigh = 48
	writeDrainLow  = 16
)

// Controller owns the DRAM banks of one system.
type Controller struct {
	geom      dram.Geometry
	timing    dram.Timing
	banks     []dram.Bank
	chanFree  []int64           // data-bus availability per channel
	nextRef   []int64           // next auto-refresh per rank (flattened ch*ranks+rk)
	writeQ    [][]addrmap.Coord // posted writes per channel
	rowCycles int               // bank-busy cycles per victim-refreshed row
	stats     Stats
}

// New builds a controller for the geometry and timing.
func New(geom dram.Geometry, timing dram.Timing) (*Controller, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := timing.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		geom:     geom,
		timing:   timing,
		banks:    make([]dram.Bank, geom.TotalBanks()),
		chanFree: make([]int64, geom.Channels),
		nextRef:  make([]int64, geom.Channels*geom.RanksPerCh),
	}
	c.rowCycles = timing.RowRefreshCycles()
	c.writeQ = make([][]addrmap.Coord, geom.Channels)
	for ch := range c.writeQ {
		c.writeQ[ch] = make([]addrmap.Coord, 0, WriteQueueCap)
	}
	for i := range c.nextRef {
		// Stagger rank refreshes as real controllers do.
		c.nextRef[i] = int64(timing.TREFI) * int64(i+1) / int64(len(c.nextRef)+1)
	}
	return c, nil
}

// Reset restores the controller to its just-built state for the same
// geometry and timing without allocating: idle banks, free channels,
// re-staggered rank refresh clocks, empty write queues, the default
// victim-row cost and zeroed statistics. Run contexts use it to reuse the
// controller across repeated runs.
func (c *Controller) Reset() {
	for i := range c.banks {
		c.banks[i] = dram.Bank{}
	}
	for i := range c.chanFree {
		c.chanFree[i] = 0
	}
	for i := range c.nextRef {
		c.nextRef[i] = int64(c.timing.TREFI) * int64(i+1) / int64(len(c.nextRef)+1)
	}
	for ch := range c.writeQ {
		c.writeQ[ch] = c.writeQ[ch][:0]
	}
	c.rowCycles = c.timing.RowRefreshCycles()
	c.stats = Stats{}
}

// SetVictimRowCycles overrides the bank-busy cycles charged per victim-
// refreshed row. Scaled experiment runs use it to keep refresh-stall
// fractions representative when the refresh threshold is scaled down with
// the run length (see internal/experiments).
func (c *Controller) SetVictimRowCycles(cycles int) {
	if cycles < 1 {
		cycles = 1
	}
	c.rowCycles = cycles
}

// Bank exposes a bank's state (diagnostics and tests).
func (c *Controller) Bank(flat int) *dram.Bank { return &c.banks[flat] }

// Stats returns accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// rankIndex flattens a bank's rank coordinates.
func (c *Controller) rankIndex(id dram.BankID) int {
	return id.Channel*c.geom.RanksPerCh + id.Rank
}

// applyAutoRefresh lazily blocks all banks of the rank for tRFC for every
// tREFI boundary that has passed.
func (c *Controller) applyAutoRefresh(at int64, id dram.BankID) {
	r := c.rankIndex(id)
	for c.nextRef[r] <= at {
		start := c.nextRef[r]
		for b := 0; b < c.geom.BanksPerRk; b++ {
			flat := c.geom.Flat(dram.BankID{Channel: id.Channel, Rank: id.Rank, Bank: b})
			c.banks[flat].BlockFor(start, int64(c.timing.TRFC))
		}
		c.nextRef[r] += int64(c.timing.TREFI)
		c.stats.AutoRefreshes++
	}
}

// access performs one closed-page access and returns the data-completion
// time in bus cycles.
func (c *Controller) access(at int64, coord addrmap.Coord, cas int) int64 {
	c.applyAutoRefresh(at, coord.Bank)
	flat := c.geom.Flat(coord.Bank)
	b := &c.banks[flat]
	// Victim-refresh debt drains in bank idle time first.
	if b.RefreshDebt > 0 && at > b.FreeAt {
		drained := at - b.FreeAt
		if drained > b.RefreshDebt {
			drained = b.RefreshDebt
		}
		b.FreeAt += drained
		b.RefreshDebt -= drained
		c.stats.VictimRefreshBusy += drained
	}
	start := at
	if b.FreeAt > start {
		start = b.FreeAt
	}
	// Remaining debt interleaves with demand one row refresh at a time:
	// the request waits for the row in progress, never the whole burst.
	if b.RefreshDebt > 0 {
		step := int64(c.rowCycles)
		if step > b.RefreshDebt {
			step = b.RefreshDebt
		}
		start += step
		b.RefreshDebt -= step
		c.stats.VictimRefreshBusy += step
	}
	dataAt := start + int64(c.timing.TRCD) + int64(cas)
	// Channel data-bus contention: push the access until the burst fits.
	ch := coord.Bank.Channel
	if c.chanFree[ch] > dataAt {
		delta := c.chanFree[ch] - dataAt
		start += delta
		dataAt += delta
	}
	b.FreeAt = start + int64(c.timing.TRC)
	b.Activations++
	c.chanFree[ch] = dataAt + int64(c.timing.TBurst)
	return dataAt + int64(c.timing.TBurst)
}

// Read issues a demand read at bus cycle `at` and returns its completion.
func (c *Controller) Read(at int64, coord addrmap.Coord) int64 {
	done := c.access(at, coord, c.timing.TCAS)
	c.stats.Reads++
	c.stats.ReadLatencySum += done - at
	return done
}

// Write posts a write into the channel's write queue (the caller does not
// wait). Once the queue reaches the high watermark it drains in a burst
// down to the low watermark, occupying banks and the channel data bus.
func (c *Controller) Write(at int64, coord addrmap.Coord) {
	ch := coord.Bank.Channel
	c.writeQ[ch] = append(c.writeQ[ch], coord)
	c.stats.Writes++
	if len(c.writeQ[ch]) >= writeDrainHigh {
		c.drainWrites(at, ch, writeDrainLow)
	}
}

// drainWrites applies queued writes for the channel until the queue length
// drops to target.
func (c *Controller) drainWrites(at int64, ch, target int) {
	q := c.writeQ[ch]
	if len(q) <= target {
		return
	}
	c.stats.WriteDrains++
	for _, coord := range q[:len(q)-target] {
		c.access(at, coord, c.timing.TCWD)
	}
	n := copy(q, q[len(q)-target:])
	c.writeQ[ch] = q[:n]
}

// FlushWrites drains every queued write (end of simulation).
func (c *Controller) FlushWrites(at int64) {
	for ch := range c.writeQ {
		c.drainWrites(at, ch, 0)
	}
}

// PendingWrites reports queued writes for a channel (tests).
func (c *Controller) PendingWrites(ch int) int { return len(c.writeQ[ch]) }

// VictimRefresh queues rows*rowCycles of refresh work on the bank. The
// work drains in idle time and interleaves with demand row by row (see
// access), modelling a controller that breaks the victim-refresh burst
// into individual ACT/PRE pairs rather than locking the bank for the
// whole burst.
func (c *Controller) VictimRefresh(at int64, flat int, rows int) {
	if rows <= 0 {
		return
	}
	b := &c.banks[flat]
	b.RefreshDebt += int64(rows) * int64(c.rowCycles)
	b.VictimRefreshRows += int64(rows)
	c.stats.VictimRefreshRows += int64(rows)
}

// AvgReadLatencyNS returns the mean demand-read latency.
func (c *Controller) AvgReadLatencyNS() float64 {
	if c.stats.Reads == 0 {
		return 0
	}
	return float64(c.stats.ReadLatencySum) / float64(c.stats.Reads) * c.timing.CycleNS()
}

// String summarises the controller state.
func (c *Controller) String() string {
	return fmt.Sprintf("memctrl{banks=%d reads=%d writes=%d autoref=%d victimRows=%d}",
		len(c.banks), c.stats.Reads, c.stats.Writes, c.stats.AutoRefreshes, c.stats.VictimRefreshRows)
}
