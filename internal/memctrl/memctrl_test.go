package memctrl

import (
	"reflect"
	"testing"

	"catsim/internal/addrmap"
	"catsim/internal/dram"
)

func newCtrl(t *testing.T) (*Controller, dram.Geometry, dram.Timing) {
	t.Helper()
	g, tm := dram.Default2Channel(), dram.DDR3_1600()
	c, err := New(g, tm)
	if err != nil {
		t.Fatal(err)
	}
	return c, g, tm
}

func coord(ch, rk, bk, row, col int) addrmap.Coord {
	return addrmap.Coord{Bank: dram.BankID{Channel: ch, Rank: rk, Bank: bk}, Row: row, Col: col}
}

func TestReadLatencyUncontended(t *testing.T) {
	c, _, tm := newCtrl(t)
	done := c.Read(0, coord(0, 0, 0, 10, 0))
	want := int64(tm.TRCD + tm.TCAS + tm.TBurst)
	if done != want {
		t.Errorf("read done at %d, want %d", done, want)
	}
}

func TestSameBankAccessesSerialise(t *testing.T) {
	c, _, tm := newCtrl(t)
	c.Read(0, coord(0, 0, 0, 10, 0))
	done := c.Read(1, coord(0, 0, 0, 99, 0))
	// Second access waits for tRC (closed-page row cycle).
	want := int64(tm.TRC + tm.TRCD + tm.TCAS + tm.TBurst)
	if done != want {
		t.Errorf("second read done at %d, want %d", done, want)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	c, _, tm := newCtrl(t)
	c.Read(0, coord(0, 0, 0, 10, 0))
	done := c.Read(1, coord(0, 0, 1, 10, 0))
	// Bank 1 is free; only the shared channel data bus can push it.
	max := int64(1 + tm.TRCD + tm.TCAS + 2*tm.TBurst)
	if done > max {
		t.Errorf("parallel-bank read done at %d, want <= %d", done, max)
	}
}

func TestChannelBusContention(t *testing.T) {
	c, _, tm := newCtrl(t)
	// Two simultaneous reads on different banks, same channel: the second
	// data burst must wait for the first.
	d1 := c.Read(0, coord(0, 0, 0, 1, 0))
	d2 := c.Read(0, coord(0, 0, 1, 1, 0))
	if d2 < d1+int64(tm.TBurst) {
		t.Errorf("bursts overlap on one channel: %d then %d", d1, d2)
	}
	// Different channels: no interaction.
	c2, _, _ := newCtrl(t)
	e1 := c2.Read(0, coord(0, 0, 0, 1, 0))
	e2 := c2.Read(0, coord(1, 0, 0, 1, 0))
	if e1 != e2 {
		t.Errorf("independent channels should complete together: %d vs %d", e1, e2)
	}
}

func TestVictimRefreshInterleavesWithDemand(t *testing.T) {
	c, g, tm := newCtrl(t)
	flat := g.Flat(dram.BankID{Channel: 0, Rank: 0, Bank: 0})
	const rows = 100
	c.VictimRefresh(0, flat, rows)
	// The demand read waits only for the row refresh in progress, not the
	// whole 100-row burst (per-row preemption).
	done := c.Read(0, coord(0, 0, 0, 5, 0))
	want := int64(tm.TRC) + int64(tm.TRCD+tm.TCAS+tm.TBurst)
	if done != want {
		t.Errorf("read done at %d, want %d (one row of blocking)", done, want)
	}
	if got := c.Stats().VictimRefreshRows; got != rows {
		t.Errorf("VictimRefreshRows = %d, want %d", got, rows)
	}
	// The remaining debt drains during idle time: a read far in the future
	// sees a free bank.
	done2 := c.Read(1_000_000, coord(0, 0, 0, 7, 0))
	if done2 != 1_000_000+int64(tm.TRCD+tm.TCAS+tm.TBurst) {
		t.Errorf("late read done at %d; idle drain failed", done2)
	}
	if c.Bank(flat).RefreshDebt != 0 {
		t.Errorf("debt %d not drained", c.Bank(flat).RefreshDebt)
	}
}

func TestVictimRefreshDebtConserved(t *testing.T) {
	// Every queued refresh cycle is eventually accounted as bank busy time
	// (idle drain or interleave), never lost.
	c, g, tm := newCtrl(t)
	flat := g.Flat(dram.BankID{Channel: 0, Rank: 0, Bank: 0})
	const rows = 50
	c.VictimRefresh(0, flat, rows)
	at := int64(0)
	for i := 0; i < 200 && c.Bank(flat).RefreshDebt > 0; i++ {
		at += 5 // back-to-back demand: drain happens via interleaving
		c.Read(at, coord(0, 0, 0, i, 0))
	}
	busy := c.Stats().VictimRefreshBusy
	if busy != int64(rows*tm.TRC) {
		t.Errorf("busy cycles %d, want %d", busy, rows*tm.TRC)
	}
}

func TestVictimRefreshOtherBankUnaffected(t *testing.T) {
	c, g, tm := newCtrl(t)
	c.VictimRefresh(0, g.Flat(dram.BankID{Channel: 0, Rank: 0, Bank: 0}), 1000)
	done := c.Read(0, coord(0, 0, 3, 5, 0))
	if done != int64(tm.TRCD+tm.TCAS+tm.TBurst) {
		t.Errorf("unrelated bank delayed: done at %d", done)
	}
}

func TestAutoRefreshBlocksRank(t *testing.T) {
	c, _, tm := newCtrl(t)
	// Jump past several tREFI boundaries; the access right after a
	// boundary must see residual tRFC blocking.
	at := int64(tm.TREFI) * 10
	done := c.Read(at, coord(0, 0, 0, 1, 0))
	if done < at+int64(tm.TRCD+tm.TCAS+tm.TBurst) {
		t.Errorf("done %d before minimum latency", done)
	}
	if c.Stats().AutoRefreshes == 0 {
		t.Error("no auto-refreshes applied")
	}
}

func TestAvgReadLatency(t *testing.T) {
	c, _, tm := newCtrl(t)
	c.Read(0, coord(0, 0, 0, 1, 0))
	want := float64(tm.TRCD+tm.TCAS+tm.TBurst) * tm.CycleNS()
	if got := c.AvgReadLatencyNS(); got != want {
		t.Errorf("AvgReadLatencyNS = %v, want %v", got, want)
	}
}

func TestWriteQueueDrainsAtHighWatermark(t *testing.T) {
	c, _, _ := newCtrl(t)
	// Post writes just below the high watermark: none applied yet.
	for i := 0; i < 47; i++ {
		c.Write(int64(i), coord(0, 0, i%8, i, 0))
	}
	if got := c.PendingWrites(0); got != 47 {
		t.Fatalf("pending = %d, want 47", got)
	}
	if c.Stats().WriteDrains != 0 {
		t.Fatal("drain fired early")
	}
	// The 48th write triggers a drain down to the low watermark.
	c.Write(48, coord(0, 0, 0, 99, 0))
	if got := c.PendingWrites(0); got != 16 {
		t.Errorf("pending after drain = %d, want 16", got)
	}
	if c.Stats().WriteDrains != 1 {
		t.Errorf("drains = %d, want 1", c.Stats().WriteDrains)
	}
}

func TestWriteDrainOccupiesBanks(t *testing.T) {
	c, _, tm := newCtrl(t)
	// Fill one bank's queue and force a drain; a read right after must
	// queue behind the drained writes.
	for i := 0; i < 48; i++ {
		c.Write(0, coord(0, 0, 0, i, 0))
	}
	done := c.Read(0, coord(0, 0, 0, 500, 0))
	if done <= int64(tm.TRC) {
		t.Errorf("read done at %d; expected it behind the write burst", done)
	}
}

func TestFlushWritesEmptiesQueues(t *testing.T) {
	c, _, _ := newCtrl(t)
	for i := 0; i < 10; i++ {
		c.Write(0, coord(0, 0, 0, i, 0))
		c.Write(0, coord(1, 0, 0, i, 0))
	}
	c.FlushWrites(100)
	if c.PendingWrites(0) != 0 || c.PendingWrites(1) != 0 {
		t.Error("flush left pending writes")
	}
}

func TestNewValidation(t *testing.T) {
	g := dram.Default2Channel()
	g.Channels = 3
	if _, err := New(g, dram.DDR3_1600()); err == nil {
		t.Error("expected geometry error")
	}
	tm := dram.DDR3_1600()
	tm.TRFC = 0
	if _, err := New(dram.Default2Channel(), tm); err == nil {
		t.Error("expected timing error")
	}
}

// TestStatsSubCoversEveryField guards the hand-enumerated delta: give
// every field a distinct value and check Sub against the zero snapshot
// returns it unchanged, so a future Stats field cannot silently vanish
// from the per-epoch samples.
func TestStatsSubCoversEveryField(t *testing.T) {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(i + 1))
	}
	if got := s.Sub(Stats{}); got != s {
		t.Errorf("Sub(zero) = %+v, want %+v — a field is missing from Sub", got, s)
	}
}
