// Package mitigation defines the common interface for wordline-crosstalk
// mitigation schemes and implements the baselines the paper compares
// against:
//
//   - SCA   (Static Counter Assignment, §III-B): M uniform group counters
//     per bank; when a group counter reaches T the whole group plus its two
//     adjacent rows are refreshed.
//   - PRA   (Probabilistic Row Activation, §II): on every activation the
//     memory controller refreshes the two adjacent victim rows with
//     probability p, using a hardware PRNG.
//   - Counter cache (Kim, Nair & Qureshi, CAL 2015): one exact counter per
//     row stored in reserved DRAM with an on-chip set-associative cache.
//   - CAT adapters wrapping internal/core's PRCAT and DRCAT trees.
//   - None: no mitigation (the ETO baseline).
//
// Beyond the paper's 2018 contemporaries, the package implements the
// modern tracker lineage on the internal/sketch substrate:
//
//   - CoMeT (Bostancı et al., HPCA 2024): per-bank count-min-sketch row
//     tracking with an exact recent-aggressor table.
//   - ABACuS (Olgun et al., USENIX Security 2024): one Misra-Gries summary
//     of activation counters shared across all banks, refreshing the
//     victims of a hot row ID in every bank at once.
//   - Stochastic (DSAC-style, Hong et al. 2023): per-bank stochastic
//     approximate counters — cheap, but probabilistic rather than
//     guaranteed, which sim's missed-victim metric quantifies.
//
// Schemes are driven per bank by the system simulator and report the counts
// the energy model (internal/energy) converts into CMRPO.
package mitigation

import "fmt"

// RefreshRange is an inclusive range of rows a scheme asks the memory
// controller to refresh within one bank.
type RefreshRange struct {
	Lo, Hi int
}

// Rows returns the number of rows in the range.
func (r RefreshRange) Rows() int { return r.Hi - r.Lo + 1 }

// Kind identifies a scheme family for the energy model.
type Kind int

// Scheme families.
const (
	KindNone Kind = iota
	KindSCA
	KindPRA
	KindPRCAT
	KindDRCAT
	KindCounterCache
	KindCoMeT
	KindABACuS
	KindStochastic

	kindEnd // sentinel: every valid Kind is below this
)

// kindNames is the single registry of valid kinds. Every addition here
// must be matched by an energy-model entry; the mitigation and energy
// tests iterate Kinds() so an unregistered or uncosted kind fails loudly
// instead of silently falling through.
var kindNames = [kindEnd]string{
	KindNone:         "None",
	KindSCA:          "SCA",
	KindPRA:          "PRA",
	KindPRCAT:        "PRCAT",
	KindDRCAT:        "DRCAT",
	KindCounterCache: "CounterCache",
	KindCoMeT:        "CoMeT",
	KindABACuS:       "ABACuS",
	KindStochastic:   "Stochastic",
}

// Valid reports whether k is a registered scheme family.
func (k Kind) Valid() bool {
	return k >= 0 && k < kindEnd && kindNames[k] != ""
}

// Kinds returns every registered scheme family in declaration order.
func Kinds() []Kind {
	out := make([]Kind, 0, int(kindEnd))
	for k := Kind(0); k < kindEnd; k++ {
		if k.Valid() {
			out = append(out, k)
		}
	}
	return out
}

// String returns the family name; unknown kinds render as "Kind(n)!?",
// which deliberately stands out in labels and tables.
func (k Kind) String() string {
	if k.Valid() {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)!?", int(k))
}

// Counts aggregates the scheme activity the energy model consumes.
type Counts struct {
	Activations   int64 // row activations observed
	RefreshEvents int64 // victim-refresh commands issued
	RowsRefreshed int64 // rows refreshed by those commands
	SRAMAccesses  int64 // on-chip SRAM reads+writes (counter structures)
	PRNGBits      int64 // random bits drawn (PRA)
	ExtraMemAcc   int64 // extra DRAM accesses (counter-cache misses)
}

// Sub returns the field-wise difference c - prev: the activity that
// happened between two Counts() snapshots. The epoch engine uses it to
// turn cumulative counters into per-epoch deltas.
func (c Counts) Sub(prev Counts) Counts {
	return Counts{
		Activations:   c.Activations - prev.Activations,
		RefreshEvents: c.RefreshEvents - prev.RefreshEvents,
		RowsRefreshed: c.RowsRefreshed - prev.RowsRefreshed,
		SRAMAccesses:  c.SRAMAccesses - prev.SRAMAccesses,
		PRNGBits:      c.PRNGBits - prev.PRNGBits,
		ExtraMemAcc:   c.ExtraMemAcc - prev.ExtraMemAcc,
	}
}

// Add returns the field-wise sum c + o: the merged activity of disjoint
// scheme instances (the sharded engine's per-partition fold).
func (c Counts) Add(o Counts) Counts {
	return Counts{
		Activations:   c.Activations + o.Activations,
		RefreshEvents: c.RefreshEvents + o.RefreshEvents,
		RowsRefreshed: c.RowsRefreshed + o.RowsRefreshed,
		SRAMAccesses:  c.SRAMAccesses + o.SRAMAccesses,
		PRNGBits:      c.PRNGBits + o.PRNGBits,
		ExtraMemAcc:   c.ExtraMemAcc + o.ExtraMemAcc,
	}
}

// Snapshot is an instantaneous view of a scheme's tracking state, sampled
// by the epoch engine at epoch boundaries.
type Snapshot struct {
	// Live is the number of occupied tracking entries across all banks:
	// active tree counters (CAT), valid cache tags (counter cache),
	// nonzero group counters (SCA), RAT entries (CoMeT) or summary
	// entries (ABACuS).
	Live int
	// Cap is the total entry capacity across all banks.
	Cap int
	// Depth is the deepest tree level observed so far (CAT only).
	Depth int
	// Reconfigs counts DRCAT merge+split reconfigurations so far.
	Reconfigs int64
}

// Snapshotter is optionally implemented by schemes that can report their
// tracking occupancy. Snapshot must be a pure read: sampling at an epoch
// boundary must not perturb the simulation (the engine's epoch-length
// invariance test holds every implementation to this).
type Snapshotter interface {
	Snapshot() Snapshot
}

// Scheme is one crosstalk-mitigation mechanism covering every bank of a
// system. OnActivate may return zero or more ranges to refresh; the returned
// slice is only valid until the next call. Implementations are not safe for
// concurrent use.
type Scheme interface {
	// Name is the label used in the paper's figures, e.g. "DRCAT_64".
	Name() string
	// Kind reports the scheme family for energy modelling.
	Kind() Kind
	// CountersPerBank reports M for counter-based schemes, 0 otherwise.
	CountersPerBank() int
	// OnActivate records an activation of row in bank and returns the
	// victim ranges the controller must refresh.
	OnActivate(bank, row int) []RefreshRange
	// OnIntervalBoundary signals that an auto-refresh interval elapsed
	// (every row was refreshed by the regular mechanism).
	OnIntervalBoundary()
	// Counts returns accumulated activity.
	Counts() Counts
}

// Resettable is optionally implemented by schemes that can restore their
// just-built state in place, letting a run context (sim.Context) reuse
// the allocated slabs across repeated runs instead of rebuilding. ResetRun
// rewinds every counter, table and private PRNG stream to the exact state
// the registered builder would produce for the same spec with the given
// derived seed; families without a private stream ignore the seed. It
// reports false when the in-place reset is not possible (for example an
// injected PRNG source the scheme cannot re-seed), in which case the
// caller must rebuild the scheme from its spec. A ResetRun that returns
// true must leave the scheme observationally identical to a fresh build:
// the context-reuse byte-identity test in sim locks every implementation
// to this.
type Resettable interface {
	ResetRun(seed uint64) bool
}

// BankRefresh pairs a refresh range with the bank it applies to, for
// schemes whose decisions span banks.
type BankRefresh struct {
	Bank  int
	Range RefreshRange
}

// CrossBank is implemented by schemes (ABACuS) whose shared counters
// trigger refreshes in banks other than the one being activated.
// PendingCrossBank returns the refreshes for those other banks accumulated
// by the last OnActivate; the activating bank's ranges are still returned
// by OnActivate itself. The returned slice is only valid until the next
// OnActivate, which clears it — consume it once per activation.
//
// CrossBank couples state across every bank, which makes the scheme
// incompatible with the channel-partitioned engine: implementing this
// interface commits the scheme to the sequential reference engine (its
// cross-shard refreshes are the serialized commit point), and its builder
// must therefore never declare ShardSafe. The engine rejects CrossBank
// schemes in sharded runs, and the mitigation shard-safety test locks the
// registry against the contradiction.
type CrossBank interface {
	PendingCrossBank() []BankRefresh
}

// None is the no-mitigation baseline used to measure ETO.
type None struct {
	counts Counts
}

// NewNone returns the do-nothing scheme.
func NewNone() *None { return &None{} }

// Name implements Scheme.
func (n *None) Name() string { return "None" }

// Kind implements Scheme.
func (n *None) Kind() Kind { return KindNone }

// CountersPerBank implements Scheme.
func (n *None) CountersPerBank() int { return 0 }

// OnActivate implements Scheme.
func (n *None) OnActivate(bank, row int) []RefreshRange {
	n.counts.Activations++
	return nil
}

// OnIntervalBoundary implements Scheme.
func (n *None) OnIntervalBoundary() {}

// Counts implements Scheme.
func (n *None) Counts() Counts { return n.counts }

// ResetRun implements Resettable (the baseline's only state is counts).
func (n *None) ResetRun(uint64) bool {
	n.counts = Counts{}
	return true
}

// appendVictims appends single-row refresh ranges for the two rows
// adjacent to row (clamped to the bank's rows) and accounts one refresh
// event plus the refreshed rows — the exact-victim refresh shape shared by
// the per-row trackers (CoMeT, ABACuS, DSAC).
func appendVictims(scratch []RefreshRange, row, rows int, counts *Counts) []RefreshRange {
	counts.RefreshEvents++
	if row > 0 {
		scratch = append(scratch, RefreshRange{Lo: row - 1, Hi: row - 1})
		counts.RowsRefreshed++
	}
	if row < rows-1 {
		scratch = append(scratch, RefreshRange{Lo: row + 1, Hi: row + 1})
		counts.RowsRefreshed++
	}
	return scratch
}

func clampRange(lo, hi, rows int) RefreshRange {
	if lo < 0 {
		lo = 0
	}
	if hi > rows-1 {
		hi = rows - 1
	}
	return RefreshRange{Lo: lo, Hi: hi}
}

func init() {
	Register(KindNone, Builder{
		ShardSafe: true, // stateless
		Label:     func(SchemeSpec) string { return "None" },
		Build:     func(SchemeSpec, int, int) (Scheme, error) { return NewNone(), nil },
	})
}
