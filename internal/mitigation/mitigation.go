// Package mitigation defines the common interface for wordline-crosstalk
// mitigation schemes and implements the baselines the paper compares
// against:
//
//   - SCA   (Static Counter Assignment, §III-B): M uniform group counters
//     per bank; when a group counter reaches T the whole group plus its two
//     adjacent rows are refreshed.
//   - PRA   (Probabilistic Row Activation, §II): on every activation the
//     memory controller refreshes the two adjacent victim rows with
//     probability p, using a hardware PRNG.
//   - Counter cache (Kim, Nair & Qureshi, CAL 2015): one exact counter per
//     row stored in reserved DRAM with an on-chip set-associative cache.
//   - CAT adapters wrapping internal/core's PRCAT and DRCAT trees.
//   - None: no mitigation (the ETO baseline).
//
// Schemes are driven per bank by the system simulator and report the counts
// the energy model (internal/energy) converts into CMRPO.
package mitigation

import "fmt"

// RefreshRange is an inclusive range of rows a scheme asks the memory
// controller to refresh within one bank.
type RefreshRange struct {
	Lo, Hi int
}

// Rows returns the number of rows in the range.
func (r RefreshRange) Rows() int { return r.Hi - r.Lo + 1 }

// Kind identifies a scheme family for the energy model.
type Kind int

// Scheme families.
const (
	KindNone Kind = iota
	KindSCA
	KindPRA
	KindPRCAT
	KindDRCAT
	KindCounterCache
)

// String returns the family name.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "None"
	case KindSCA:
		return "SCA"
	case KindPRA:
		return "PRA"
	case KindPRCAT:
		return "PRCAT"
	case KindDRCAT:
		return "DRCAT"
	case KindCounterCache:
		return "CounterCache"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counts aggregates the scheme activity the energy model consumes.
type Counts struct {
	Activations   int64 // row activations observed
	RefreshEvents int64 // victim-refresh commands issued
	RowsRefreshed int64 // rows refreshed by those commands
	SRAMAccesses  int64 // on-chip SRAM reads+writes (counter structures)
	PRNGBits      int64 // random bits drawn (PRA)
	ExtraMemAcc   int64 // extra DRAM accesses (counter-cache misses)
}

// Scheme is one crosstalk-mitigation mechanism covering every bank of a
// system. OnActivate may return zero or more ranges to refresh; the returned
// slice is only valid until the next call. Implementations are not safe for
// concurrent use.
type Scheme interface {
	// Name is the label used in the paper's figures, e.g. "DRCAT_64".
	Name() string
	// Kind reports the scheme family for energy modelling.
	Kind() Kind
	// CountersPerBank reports M for counter-based schemes, 0 otherwise.
	CountersPerBank() int
	// OnActivate records an activation of row in bank and returns the
	// victim ranges the controller must refresh.
	OnActivate(bank, row int) []RefreshRange
	// OnIntervalBoundary signals that an auto-refresh interval elapsed
	// (every row was refreshed by the regular mechanism).
	OnIntervalBoundary()
	// Counts returns accumulated activity.
	Counts() Counts
}

// None is the no-mitigation baseline used to measure ETO.
type None struct {
	counts Counts
}

// NewNone returns the do-nothing scheme.
func NewNone() *None { return &None{} }

// Name implements Scheme.
func (n *None) Name() string { return "None" }

// Kind implements Scheme.
func (n *None) Kind() Kind { return KindNone }

// CountersPerBank implements Scheme.
func (n *None) CountersPerBank() int { return 0 }

// OnActivate implements Scheme.
func (n *None) OnActivate(bank, row int) []RefreshRange {
	n.counts.Activations++
	return nil
}

// OnIntervalBoundary implements Scheme.
func (n *None) OnIntervalBoundary() {}

// Counts implements Scheme.
func (n *None) Counts() Counts { return n.counts }

func clampRange(lo, hi, rows int) RefreshRange {
	if lo < 0 {
		lo = 0
	}
	if hi > rows-1 {
		hi = rows - 1
	}
	return RefreshRange{Lo: lo, Hi: hi}
}
