package mitigation

// Oracle is the ground-truth crosstalk checker used by integration tests
// and failure-injection studies. It tracks, for every victim row, the
// exposure accumulated from each adjacent aggressor since the victim's last
// refresh; a deterministic scheme is sound when no exposure ever exceeds
// the refresh threshold T. Probabilistic schemes (PRA, DSAC) violate it
// with small probability by design; the missed-victim accounting below and
// the reliability model quantify that.
type Oracle struct {
	rows      int
	threshold uint32
	// exposure[bank][v][0] counts activations of v-1 since v's refresh;
	// exposure[bank][v][1] counts activations of v+1.
	exposure   [][][2]uint32
	violations int64
	// Ever-flags for the missed-victim rate: a victim row is "exposed"
	// once any adjacent aggressor activates, and "missed" once its
	// exposure exceeds T without an intervening refresh. Refreshes do not
	// clear these — they summarise the whole run.
	exposed  [][]bool
	missed   [][]bool
	exposedN int64
	missedN  int64
}

// NewOracle builds an oracle for the given geometry.
func NewOracle(banks, rowsPerBank int, threshold uint32) *Oracle {
	o := &Oracle{rows: rowsPerBank, threshold: threshold,
		exposure: make([][][2]uint32, banks),
		exposed:  make([][]bool, banks),
		missed:   make([][]bool, banks)}
	for b := range o.exposure {
		o.exposure[b] = make([][2]uint32, rowsPerBank)
		o.exposed[b] = make([]bool, rowsPerBank)
		o.missed[b] = make([]bool, rowsPerBank)
	}
	return o
}

// Activate records an aggressor activation and reports whether any victim's
// exposure exceeded T (a protection violation).
func (o *Oracle) Activate(bank, a int) bool {
	e := o.exposure[bank]
	bad := false
	if v := a + 1; v < o.rows {
		e[v][0]++
		o.noteExposed(bank, v)
		if e[v][0] > o.threshold {
			bad = true
			o.noteMissed(bank, v)
		}
	}
	if v := a - 1; v >= 0 {
		e[v][1]++
		o.noteExposed(bank, v)
		if e[v][1] > o.threshold {
			bad = true
			o.noteMissed(bank, v)
		}
	}
	if bad {
		o.violations++
	}
	return bad
}

func (o *Oracle) noteExposed(bank, v int) {
	if !o.exposed[bank][v] {
		o.exposed[bank][v] = true
		o.exposedN++
	}
}

func (o *Oracle) noteMissed(bank, v int) {
	if !o.missed[bank][v] {
		o.missed[bank][v] = true
		o.missedN++
	}
}

// Refresh resets the exposure of every victim in the range.
func (o *Oracle) Refresh(bank int, rr RefreshRange) {
	e := o.exposure[bank]
	for v := rr.Lo; v <= rr.Hi && v < o.rows; v++ {
		if v >= 0 {
			e[v] = [2]uint32{}
		}
	}
}

// RefreshAll models the burst auto-refresh of every row (interval boundary).
func (o *Oracle) RefreshAll() {
	for b := range o.exposure {
		for v := range o.exposure[b] {
			o.exposure[b][v] = [2]uint32{}
		}
	}
}

// Reset clears every exposure, ever-flag and counter, returning the
// oracle to its just-built state so a run context can reuse it across
// runs over the same geometry and threshold.
func (o *Oracle) Reset() {
	for b := range o.exposure {
		e := o.exposure[b]
		for v := range e {
			e[v] = [2]uint32{}
		}
		ex := o.exposed[b]
		for v := range ex {
			ex[v] = false
		}
		ms := o.missed[b]
		for v := range ms {
			ms[v] = false
		}
	}
	o.violations = 0
	o.exposedN = 0
	o.missedN = 0
}

// Violations returns the number of violations recorded so far.
func (o *Oracle) Violations() int64 { return o.violations }

// ExposedVictimRows returns how many distinct (bank, row) victims saw any
// aggressor exposure over the run.
func (o *Oracle) ExposedVictimRows() int64 { return o.exposedN }

// MissedVictimRows returns how many distinct (bank, row) victims had their
// exposure cross T without a refresh — the rows an attack flipped.
func (o *Oracle) MissedVictimRows() int64 { return o.missedN }

// MissedVictimRate returns MissedVictimRows over ExposedVictimRows, the
// protection-harness headline metric (0 for sound schemes, and 0 when no
// victim was ever exposed).
func (o *Oracle) MissedVictimRate() float64 {
	if o.exposedN == 0 {
		return 0
	}
	return float64(o.missedN) / float64(o.exposedN)
}

// VisitExposed calls fn for every distinct (bank, row) victim that saw any
// aggressor exposure over the run, with missed reporting whether its
// exposure ever crossed the threshold unrefreshed. Per-tenant attribution
// folds the oracle's verdict over row ownership with this.
func (o *Oracle) VisitExposed(fn func(bank, row int, missed bool)) {
	for b := range o.exposed {
		for r, ex := range o.exposed[b] {
			if ex {
				fn(b, r, o.missed[b][r])
			}
		}
	}
}

// Drive runs a scheme against the oracle for a prepared stream of (bank,
// row) activations, wiring refreshes (including cross-bank ones) back into
// the oracle. It returns the violation count (zero for sound deterministic
// schemes).
func (o *Oracle) Drive(s Scheme, stream [][2]int, intervalEvery int) int64 {
	cb, hasCB := s.(CrossBank)
	for i, br := range stream {
		ranges := s.OnActivate(br[0], br[1])
		o.Activate(br[0], br[1])
		for _, rr := range ranges {
			o.Refresh(br[0], rr)
		}
		if hasCB {
			for _, bf := range cb.PendingCrossBank() {
				o.Refresh(bf.Bank, bf.Range)
			}
		}
		if intervalEvery > 0 && (i+1)%intervalEvery == 0 {
			s.OnIntervalBoundary()
			o.RefreshAll()
		}
	}
	return o.violations
}
