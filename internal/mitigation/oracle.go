package mitigation

// Oracle is the ground-truth crosstalk checker used by integration tests
// and failure-injection studies. It tracks, for every victim row, the
// exposure accumulated from each adjacent aggressor since the victim's last
// refresh; a deterministic scheme is sound when no exposure ever exceeds
// the refresh threshold T. Probabilistic schemes (PRA) violate it with
// small probability by design; the reliability model quantifies that.
type Oracle struct {
	rows      int
	threshold uint32
	// exposure[bank][v][0] counts activations of v-1 since v's refresh;
	// exposure[bank][v][1] counts activations of v+1.
	exposure   [][][2]uint32
	violations int64
}

// NewOracle builds an oracle for the given geometry.
func NewOracle(banks, rowsPerBank int, threshold uint32) *Oracle {
	o := &Oracle{rows: rowsPerBank, threshold: threshold,
		exposure: make([][][2]uint32, banks)}
	for b := range o.exposure {
		o.exposure[b] = make([][2]uint32, rowsPerBank)
	}
	return o
}

// Activate records an aggressor activation and reports whether any victim's
// exposure exceeded T (a protection violation).
func (o *Oracle) Activate(bank, a int) bool {
	e := o.exposure[bank]
	bad := false
	if v := a + 1; v < o.rows {
		e[v][0]++
		bad = bad || e[v][0] > o.threshold
	}
	if v := a - 1; v >= 0 {
		e[v][1]++
		bad = bad || e[v][1] > o.threshold
	}
	if bad {
		o.violations++
	}
	return bad
}

// Refresh resets the exposure of every victim in the range.
func (o *Oracle) Refresh(bank int, rr RefreshRange) {
	e := o.exposure[bank]
	for v := rr.Lo; v <= rr.Hi && v < o.rows; v++ {
		if v >= 0 {
			e[v] = [2]uint32{}
		}
	}
}

// RefreshAll models the burst auto-refresh of every row (interval boundary).
func (o *Oracle) RefreshAll() {
	for b := range o.exposure {
		for v := range o.exposure[b] {
			o.exposure[b][v] = [2]uint32{}
		}
	}
}

// Violations returns the number of violations recorded so far.
func (o *Oracle) Violations() int64 { return o.violations }

// Drive runs a scheme against the oracle for a prepared stream of (bank,
// row) activations, wiring refreshes back into the oracle. It returns the
// violation count (zero for sound deterministic schemes).
func (o *Oracle) Drive(s Scheme, stream [][2]int, intervalEvery int) int64 {
	for i, br := range stream {
		ranges := s.OnActivate(br[0], br[1])
		o.Activate(br[0], br[1])
		for _, rr := range ranges {
			o.Refresh(br[0], rr)
		}
		if intervalEvery > 0 && (i+1)%intervalEvery == 0 {
			s.OnIntervalBoundary()
			o.RefreshAll()
		}
	}
	return o.violations
}
