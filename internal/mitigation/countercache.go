package mitigation

import "fmt"

// CounterCache models the leading deterministic baseline the paper improves
// on (Kim, Nair & Qureshi, "Architectural support for mitigating row
// hammering in DRAM memories", CAL 2015, the paper's [26]): one exact
// activation counter per DRAM row, stored in a reserved region of main
// memory, fronted by an on-chip set-associative counter cache per bank.
//
// Exact per-row counters refresh only the two true victim rows, but every
// counter-cache miss costs an extra DRAM access (fetch, plus write-back of
// the victim entry), which the simulator charges as memory traffic and the
// energy model charges per Table II's counter-cache curves.
type CounterCache struct {
	name      string
	banks     int
	rows      int
	threshold uint32
	sets      int
	ways      int
	// cache[bank][set*ways+way]
	tags    [][]int32 // row tagged in the slot, -1 when empty
	vals    [][]uint32
	lru     [][]int64 // last-use tick for LRU replacement
	backing [][]uint32
	tick    int64
	counts  Counts
	scratch []RefreshRange
}

// NewCounterCache builds the baseline with the given per-bank cache entry
// count (entries = sets*ways) and associativity.
func NewCounterCache(banks, rowsPerBank int, threshold uint32, entries, ways int) (*CounterCache, error) {
	if banks < 1 || rowsPerBank < 1 {
		return nil, fmt.Errorf("mitigation: need at least one bank and row")
	}
	if threshold < 1 {
		return nil, fmt.Errorf("mitigation: threshold must be positive")
	}
	if ways < 1 || entries < ways || entries%ways != 0 {
		return nil, fmt.Errorf("mitigation: %d entries not divisible into %d ways", entries, ways)
	}
	cc := &CounterCache{
		name:      fmt.Sprintf("CounterCache_%d", entries),
		banks:     banks,
		rows:      rowsPerBank,
		threshold: threshold,
		sets:      entries / ways,
		ways:      ways,
		tags:      make([][]int32, banks),
		vals:      make([][]uint32, banks),
		lru:       make([][]int64, banks),
		backing:   make([][]uint32, banks),
		scratch:   make([]RefreshRange, 0, 2),
	}
	for b := 0; b < banks; b++ {
		cc.tags[b] = make([]int32, entries)
		for i := range cc.tags[b] {
			cc.tags[b][i] = -1
		}
		cc.vals[b] = make([]uint32, entries)
		cc.lru[b] = make([]int64, entries)
		cc.backing[b] = make([]uint32, rowsPerBank)
	}
	return cc, nil
}

// Name implements Scheme.
func (cc *CounterCache) Name() string { return cc.name }

// Kind implements Scheme.
func (cc *CounterCache) Kind() Kind { return KindCounterCache }

// CountersPerBank reports the cached entries per bank (the on-chip cost).
func (cc *CounterCache) CountersPerBank() int { return cc.sets * cc.ways }

// OnActivate implements Scheme.
func (cc *CounterCache) OnActivate(bank, row int) []RefreshRange {
	cc.counts.Activations++
	cc.counts.SRAMAccesses += 2 // tag probe + data update
	cc.tick++
	set := row % cc.sets
	base := set * cc.ways
	tags := cc.tags[bank]
	slot := -1
	for w := 0; w < cc.ways; w++ {
		if tags[base+w] == int32(row) {
			slot = base + w
			break
		}
	}
	if slot < 0 {
		// Miss: write back the LRU victim and fetch this row's counter
		// from the reserved DRAM region (one extra memory access each way;
		// the paper's "misses to the cache counter can be expensive").
		cc.counts.ExtraMemAcc++
		victim := base
		for w := 1; w < cc.ways; w++ {
			if cc.lru[bank][base+w] < cc.lru[bank][victim] {
				victim = base + w
			}
		}
		if tags[victim] >= 0 {
			cc.backing[bank][tags[victim]] = cc.vals[bank][victim]
			cc.counts.ExtraMemAcc++
		}
		tags[victim] = int32(row)
		cc.vals[bank][victim] = cc.backing[bank][row]
		slot = victim
	}
	cc.lru[bank][slot] = cc.tick
	cc.vals[bank][slot]++
	if cc.vals[bank][slot] < cc.threshold {
		return nil
	}
	cc.vals[bank][slot] = 0
	cc.backing[bank][row] = 0
	// Exact per-row counting refreshes only the two true victims.
	cc.scratch = cc.scratch[:0]
	if row > 0 {
		cc.scratch = append(cc.scratch, RefreshRange{Lo: row - 1, Hi: row - 1})
	}
	if row < cc.rows-1 {
		cc.scratch = append(cc.scratch, RefreshRange{Lo: row + 1, Hi: row + 1})
	}
	cc.counts.RefreshEvents++
	for _, rr := range cc.scratch {
		cc.counts.RowsRefreshed += int64(rr.Rows())
	}
	return cc.scratch
}

// OnIntervalBoundary implements Scheme: all counters reset with the regular
// refresh sweep.
func (cc *CounterCache) OnIntervalBoundary() {
	for b := 0; b < cc.banks; b++ {
		for i := range cc.vals[b] {
			cc.vals[b][i] = 0
		}
		for i := range cc.backing[b] {
			cc.backing[b][i] = 0
		}
	}
}

// Counts implements Scheme.
func (cc *CounterCache) Counts() Counts { return cc.counts }

// ResetRun implements Resettable: empty tags, zeroed counters and LRU
// state, and a rewound tick are the full just-built state.
func (cc *CounterCache) ResetRun(uint64) bool {
	for b := 0; b < cc.banks; b++ {
		tags := cc.tags[b]
		for i := range tags {
			tags[i] = -1
		}
		vals := cc.vals[b]
		for i := range vals {
			vals[i] = 0
		}
		lru := cc.lru[b]
		for i := range lru {
			lru[i] = 0
		}
		backing := cc.backing[b]
		for i := range backing {
			backing[i] = 0
		}
	}
	cc.tick = 0
	cc.counts = Counts{}
	return true
}

// Snapshot implements Snapshotter: valid cache tags across banks.
func (cc *CounterCache) Snapshot() Snapshot {
	s := Snapshot{Cap: cc.banks * cc.sets * cc.ways}
	for b := 0; b < cc.banks; b++ {
		for _, tag := range cc.tags[b] {
			if tag >= 0 {
				s.Live++
			}
		}
	}
	return s
}

func init() {
	Register(KindCounterCache, Builder{
		Params: []ParamDef{
			{Name: "counters", Doc: "on-chip cache entries per bank"},
			{Name: "ways", Doc: "cache associativity (default 8)"},
		},
		Short:     "CC",
		ShardSafe: true, // tags, values and LRU state all indexed by bank
		Build: func(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error) {
			entries, err := spec.Params.Int("counters", 0)
			if err != nil {
				return nil, err
			}
			ways, err := spec.Params.Int("ways", 8)
			if err != nil {
				return nil, err
			}
			return NewCounterCache(banks, rowsPerBank, spec.Threshold, entries, ways)
		},
	})
}
