package mitigation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file makes scheme configuration data instead of code: a SchemeSpec
// is a serializable {Kind, Threshold, Params} value with a compact string
// form ("comet:counters=512,depth=4,seed=7") and a JSON form, and every
// scheme family registers a builder (Register) that constructs it from a
// spec for a given DRAM geometry. The experiment harness, both CLIs and
// the catsim facade all build schemes through this one registry, so a new
// scheme family — or a new configuration of an existing one — needs no
// new constructor plumbing anywhere else.

// Params holds a spec's named parameters as exact decimal strings, which
// keeps string, JSON and flag round-trips lossless (uint64 seeds do not
// survive a float64 detour).
type Params map[string]string

// Int returns the named integer parameter, or def when absent.
func (p Params) Int(name string, def int) (int, error) {
	v, ok := p[name]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad param %s=%q: want integer", name, v)
	}
	return n, nil
}

// Uint64 returns the named uint64 parameter, or def when absent.
func (p Params) Uint64(name string, def uint64) (uint64, error) {
	v, ok := p[name]
	if !ok {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad param %s=%q: want unsigned integer", name, v)
	}
	return n, nil
}

// Float returns the named float parameter, or def when absent.
func (p Params) Float(name string, def float64) (float64, error) {
	v, ok := p[name]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad param %s=%q: want number", name, v)
	}
	return f, nil
}

// SetInt stores an integer parameter.
func (p Params) SetInt(name string, v int) { p[name] = strconv.Itoa(v) }

// SetUint64 stores a uint64 parameter.
func (p Params) SetUint64(name string, v uint64) { p[name] = strconv.FormatUint(v, 10) }

// SetFloat stores a float parameter in shortest exact form.
func (p Params) SetFloat(name string, v float64) {
	p[name] = strconv.FormatFloat(v, 'g', -1, 64)
}

// SchemeSpec is a declarative, serializable description of one mitigation
// scheme configuration. The zero Threshold means "caller supplies it"
// (experiment sweeps fill it per grid cell); Build requires it.
type SchemeSpec struct {
	Kind      Kind   `json:"kind"`
	Threshold uint32 `json:"threshold,omitempty"`
	Params    Params `json:"params,omitempty"`
}

// String renders the compact spec form: the lowercase kind, then
// "threshold=" (when set) and the remaining parameters in sorted order,
// e.g. "comet:threshold=32768,counters=512,depth=4". ParseSpec inverts it.
func (s SchemeSpec) String() string {
	kind := strings.ToLower(s.Kind.String())
	var parts []string
	if s.Threshold != 0 {
		parts = append(parts, fmt.Sprintf("threshold=%d", s.Threshold))
	}
	names := make([]string, 0, len(s.Params))
	for k := range s.Params {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		parts = append(parts, k+"="+s.Params[k])
	}
	if len(parts) == 0 {
		return kind
	}
	return kind + ":" + strings.Join(parts, ",")
}

// Set implements flag.Value, so a *SchemeSpec can back a -scheme flag.
func (s *SchemeSpec) Set(str string) error {
	spec, err := ParseSpec(str)
	if err != nil {
		return err
	}
	*s = spec
	return nil
}

// SpecList is a repeatable -scheme flag: each occurrence appends one spec.
type SpecList []SchemeSpec

// String implements flag.Value.
func (l *SpecList) String() string {
	parts := make([]string, len(*l))
	for i, s := range *l {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ")
}

// Set implements flag.Value.
func (l *SpecList) Set(str string) error {
	spec, err := ParseSpec(str)
	if err != nil {
		return err
	}
	*l = append(*l, spec)
	return nil
}

// ParseSpec parses the compact spec form "kind:key=value,...". The kind is
// matched case-insensitively against the registered families (plus the
// figure-label aliases "cc" and "dsac"); parameter names are validated
// against the kind's registered builder.
func ParseSpec(str string) (SchemeSpec, error) {
	spec := SchemeSpec{}
	kindPart, paramPart, hasParams := strings.Cut(strings.TrimSpace(str), ":")
	kind, err := ParseKind(kindPart)
	if err != nil {
		return spec, err
	}
	spec.Kind = kind
	if !hasParams {
		return spec, nil
	}
	for _, kv := range strings.Split(paramPart, ",") {
		name, value, ok := strings.Cut(kv, "=")
		name = strings.TrimSpace(name)
		value = strings.TrimSpace(value)
		if !ok || name == "" || value == "" {
			return spec, fmt.Errorf("mitigation: spec %q: param %q is not name=value", str, kv)
		}
		if name == "threshold" {
			t, err := strconv.ParseUint(value, 10, 32)
			if err != nil {
				return spec, fmt.Errorf("mitigation: spec %q: bad threshold %q", str, value)
			}
			spec.Threshold = uint32(t)
			continue
		}
		if err := validParam(kind, name); err != nil {
			return spec, fmt.Errorf("mitigation: spec %q: %w", str, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			if _, uerr := strconv.ParseUint(value, 10, 64); uerr != nil {
				return spec, fmt.Errorf("mitigation: spec %q: bad param %s=%q: want number", str, name, value)
			}
		}
		if spec.Params == nil {
			spec.Params = Params{}
		}
		if _, dup := spec.Params[name]; dup {
			return spec, fmt.Errorf("mitigation: spec %q: duplicate param %q", str, name)
		}
		spec.Params[name] = value
	}
	return spec, nil
}

// ParamDef documents one accepted parameter of a scheme family.
type ParamDef struct {
	Name string
	Doc  string
}

// Builder constructs a scheme family from a spec. Params declares the
// accepted parameter names; Build may assume spec.Kind matches the
// registered kind and every param name is declared.
type Builder struct {
	Params []ParamDef
	// Short is the family's figure-label abbreviation ("CC", "DSAC");
	// empty uses the Kind name.
	Short string
	// ShardSafe declares that the family's runtime state decomposes by
	// flat bank index with no cross-bank coupling and no shared PRNG
	// stream: running one instance per channel over channel-confined
	// traffic is observationally identical to one instance over the merged
	// stream. The sharded engine partitions only shard-safe schemes;
	// everything else (PRA and DSAC share one PRNG across banks, ABACuS
	// implements CrossBank) runs on the sequential reference engine. The
	// shard-safety test locks the contract: a CrossBank implementer must
	// never be marked shard-safe.
	ShardSafe bool
	// Label renders the figure label for a spec; nil selects the default
	// "<Short>_<counters>" form. Registered next to Build so every
	// caller — sim grids, report tables, cache keys — shares one naming.
	Label func(spec SchemeSpec) string
	Build func(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error)
}

var builders = map[Kind]Builder{}

// Register installs the builder for a scheme family. Each file that
// implements a family self-registers from init(); registering an invalid
// or already-registered kind panics (a programming error, caught by the
// registry tests).
func Register(k Kind, b Builder) {
	if !k.Valid() {
		panic(fmt.Sprintf("mitigation: Register(%v): invalid kind", k))
	}
	if _, dup := builders[k]; dup {
		panic(fmt.Sprintf("mitigation: Register(%v): already registered", k))
	}
	if b.Build == nil {
		panic(fmt.Sprintf("mitigation: Register(%v): nil Build", k))
	}
	builders[k] = b
}

// BuilderFor returns the registered builder for a kind.
func BuilderFor(k Kind) (Builder, bool) {
	b, ok := builders[k]
	return b, ok
}

// ShardSafe reports whether the kind's registered builder declared its
// state bank-decomposable (see Builder.ShardSafe). Unregistered kinds are
// not shard-safe.
func ShardSafe(k Kind) bool {
	return builders[k].ShardSafe
}

// Label renders the figure label for a spec ("DRCAT_64", "CC_1024",
// "PRA_0.002", "None"): the registered family's Label override when set,
// otherwise "<Short>_<counters>". This is the single naming authority the
// experiment grids and report tables share.
func Label(spec SchemeSpec) string {
	b, ok := builders[spec.Kind]
	if ok && b.Label != nil {
		return b.Label(spec)
	}
	short := spec.Kind.String()
	if ok && b.Short != "" {
		short = b.Short
	}
	counters, err := spec.Params.Int("counters", 0)
	if err != nil {
		counters = 0
	}
	return fmt.Sprintf("%s_%d", short, counters)
}

func validParam(k Kind, name string) error {
	b, ok := builders[k]
	if !ok {
		return nil // unregistered kinds are caught by Build
	}
	names := make([]string, 0, len(b.Params)+1)
	for _, p := range b.Params {
		if p.Name == name {
			return nil
		}
		names = append(names, p.Name)
	}
	names = append(names, "threshold")
	return fmt.Errorf("unknown param %q for %s (accepted: %s)",
		name, strings.ToLower(k.String()), strings.Join(names, ", "))
}

// Build constructs the scheme a spec describes for a system with the given
// bank count and rows per bank. Every kind except None requires a
// threshold; parameter names must be declared by the kind's builder.
func Build(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error) {
	if !spec.Kind.Valid() {
		return nil, fmt.Errorf("mitigation: unknown scheme kind %v (valid: %s)", spec.Kind, kindList())
	}
	b, ok := builders[spec.Kind]
	if !ok {
		return nil, fmt.Errorf("mitigation: no builder registered for %v", spec.Kind)
	}
	for name := range spec.Params {
		if err := validParam(spec.Kind, name); err != nil {
			return nil, fmt.Errorf("mitigation: spec %q: %w", spec.String(), err)
		}
	}
	if spec.Threshold == 0 && spec.Kind != KindNone {
		return nil, fmt.Errorf("mitigation: spec %q: missing threshold", spec.String())
	}
	scheme, err := b.Build(spec, banks, rowsPerBank)
	if err != nil {
		return nil, fmt.Errorf("mitigation: spec %q: %w", spec.String(), err)
	}
	return scheme, nil
}

// ParseKind resolves a scheme family name case-insensitively, accepting
// the canonical names (Kind.String) and the figure-label aliases "cc"
// (counter cache) and "dsac" (the stochastic tracker).
func ParseKind(name string) (Kind, error) {
	switch n := strings.ToLower(strings.TrimSpace(name)); n {
	case "cc":
		return KindCounterCache, nil
	case "dsac":
		return KindStochastic, nil
	default:
		for _, k := range Kinds() {
			if strings.ToLower(k.String()) == n {
				return k, nil
			}
		}
	}
	return 0, fmt.Errorf("mitigation: unknown scheme kind %q (valid: %s)", name, kindList())
}

func kindList() string {
	var names []string
	for _, k := range Kinds() {
		names = append(names, strings.ToLower(k.String()))
	}
	return strings.Join(names, ", ")
}

// MarshalText renders the family name, making Kind JSON-friendly.
func (k Kind) MarshalText() ([]byte, error) {
	if !k.Valid() {
		return nil, fmt.Errorf("mitigation: cannot marshal invalid kind %d", int(k))
	}
	return []byte(k.String()), nil
}

// UnmarshalText parses a family name (or alias) case-insensitively.
func (k *Kind) UnmarshalText(text []byte) error {
	parsed, err := ParseKind(string(text))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}
