package mitigation

import (
	"strings"
	"testing"

	"catsim/internal/rng"
)

// Tests for the modern tracker suite (CoMeT / ABACuS / DSAC) built on
// internal/sketch.

var (
	_ Scheme    = (*CoMeT)(nil)
	_ Scheme    = (*ABACuS)(nil)
	_ Scheme    = (*Stochastic)(nil)
	_ CrossBank = (*ABACuS)(nil)
)

func newTestCoMeT(t *testing.T, banks, rows int, threshold uint32) *CoMeT {
	t.Helper()
	c, err := NewCoMeT(banks, rows, threshold, 256, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestModernSchemeMetadata(t *testing.T) {
	c := newTestCoMeT(t, 2, 1<<10, 64)
	if c.Name() != "CoMeT_256" || c.Kind() != KindCoMeT {
		t.Errorf("CoMeT metadata: %s %v", c.Name(), c.Kind())
	}
	if c.CountersPerBank() != 256+CoMeTRATEntries {
		t.Errorf("CoMeT CountersPerBank = %d", c.CountersPerBank())
	}
	a, err := NewABACuS(16, 1<<10, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "ABACuS_512" || a.Kind() != KindABACuS || a.CountersPerBank() != 32 {
		t.Errorf("ABACuS metadata: %s %v %d", a.Name(), a.Kind(), a.CountersPerBank())
	}
	s, err := NewStochastic(2, 1<<10, 32, 64, rng.NewXoshiro256(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "DSAC_32" || s.Kind() != KindStochastic || s.CountersPerBank() != 32 {
		t.Errorf("DSAC metadata: %s %v %d", s.Name(), s.Kind(), s.CountersPerBank())
	}
}

func TestModernSchemeValidation(t *testing.T) {
	if _, err := NewCoMeT(0, 1024, 64, 256, 4, 1); err == nil {
		t.Error("CoMeT: expected banks error")
	}
	if _, err := NewCoMeT(1, 1024, 1, 256, 4, 1); err == nil {
		t.Error("CoMeT: expected threshold error")
	}
	if _, err := NewCoMeT(1, 1024, 64, 255, 4, 1); err == nil {
		t.Error("CoMeT: expected divisibility error")
	}
	if _, err := NewABACuS(1, 0, 64, 64); err == nil {
		t.Error("ABACuS: expected rows error")
	}
	if _, err := NewABACuS(1, 1024, 0, 64); err == nil {
		t.Error("ABACuS: expected entries error")
	}
	if _, err := NewABACuS(1, 1024, 64, 1); err == nil {
		t.Error("ABACuS: expected threshold error")
	}
	if _, err := NewStochastic(1, 1024, 64, 64, nil); err == nil {
		t.Error("DSAC: expected source error")
	}
}

// manySidedStream builds an n-long stream that round-robins over k
// aggressor rows spaced two apart (the classic many-sided pattern) across
// the given banks.
func manySidedStream(banks, base, k, n int) [][2]int {
	out := make([][2]int, n)
	for i := range out {
		out[i] = [2]int{i % banks, base + 2*((i/banks)%k)}
	}
	return out
}

// TestModernSchemesSoundUnderAdversarialPatterns is the ISSUE-2 acceptance
// oracle proof: each new scheme must refresh every true victim row before
// its exposure crosses the threshold, under double-sided and many-sided
// hammering. DSAC is probabilistic by design, so it is exercised with a
// table large enough to hold every aggressor — the regime in which it too
// counts exactly — while its under-pressure behaviour is quantified by the
// sim-level missed-victim harness instead.
func TestModernSchemesSoundUnderAdversarialPatterns(t *testing.T) {
	const banks, rows = 2, 1 << 10
	const threshold = 64
	build := func(name string) Scheme {
		switch name {
		case "comet":
			c, err := NewCoMeT(banks, rows, threshold, 256, 4, 7)
			if err != nil {
				t.Fatal(err)
			}
			return c
		case "abacus":
			a, err := NewABACuS(banks, rows, 64, threshold)
			if err != nil {
				t.Fatal(err)
			}
			return a
		case "dsac":
			s, err := NewStochastic(banks, rows, 32, threshold, rng.NewXoshiro256(3))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		return nil
	}
	streams := map[string][][2]int{
		"uniform":      uniformStream(17, banks, rows, 1<<15),
		"single":       hammerStream(banks, rows, 1<<15, []int{777}),
		"double-sided": hammerStream(banks, rows, 1<<15, []int{500, 502}),
		"many-sided":   manySidedStream(banks, 300, 8, 1<<15),
	}
	for _, name := range []string{"comet", "abacus", "dsac"} {
		for sname, stream := range streams {
			s := build(name)
			o := NewOracle(banks, rows, threshold)
			if v := o.Drive(s, stream, 1<<13); v != 0 {
				t.Errorf("%s under %s: %d protection violations", s.Name(), sname, v)
			}
			if o.MissedVictimRows() != 0 || o.MissedVictimRate() != 0 {
				t.Errorf("%s under %s: missed victims %d (rate %v)",
					s.Name(), sname, o.MissedVictimRows(), o.MissedVictimRate())
			}
			if c := s.Counts(); c.Activations != int64(len(stream)) {
				t.Errorf("%s: %d activations counted, want %d", s.Name(), c.Activations, len(stream))
			}
		}
	}
}

func TestCoMeTRefreshesVictimsAtThreshold(t *testing.T) {
	// On an otherwise idle sketch a single hammered row counts exactly:
	// the victims must be refreshed before exposure can cross T.
	const threshold = 100
	c := newTestCoMeT(t, 1, 1<<10, threshold)
	fired := 0
	for i := 0; i < 300; i++ {
		if len(c.OnActivate(0, 500)) > 0 {
			fired++
		}
	}
	if fired < 3 {
		t.Errorf("refresh fired %d times over 300 activations at T=100, want 3", fired)
	}
	counts := c.Counts()
	if counts.RowsRefreshed < int64(2*fired) {
		t.Errorf("RowsRefreshed = %d for %d firings", counts.RowsRefreshed, fired)
	}
	if counts.SRAMAccesses == 0 {
		t.Error("no SRAM accesses accounted")
	}
}

func TestCoMeTIntervalBoundaryResets(t *testing.T) {
	c := newTestCoMeT(t, 1, 1<<10, 100)
	for i := 0; i < 99; i++ {
		c.OnActivate(0, 500)
	}
	c.OnIntervalBoundary()
	for i := 0; i < 99; i++ {
		if got := c.OnActivate(0, 500); len(got) != 0 {
			t.Fatal("refresh fired despite interval reset")
		}
	}
}

func TestABACuSRefreshesAcrossAllBanks(t *testing.T) {
	// Hammering row 500 from bank 0 only must still refresh 499/501 in
	// every bank: the counter is shared by row ID.
	const banks, rows, threshold = 4, 1 << 10, 50
	a, err := NewABACuS(banks, rows, 16, threshold)
	if err != nil {
		t.Fatal(err)
	}
	var ranges []RefreshRange
	var cross []BankRefresh
	for i := 0; i < 2*threshold; i++ {
		ranges = a.OnActivate(0, 500)
		if len(ranges) > 0 {
			cross = append([]BankRefresh(nil), a.PendingCrossBank()...)
			break
		}
	}
	if len(ranges) != 2 {
		t.Fatalf("no local refresh after %d activations", 2*threshold)
	}
	if len(cross) != 2*(banks-1) {
		t.Fatalf("cross-bank refreshes = %d, want %d", len(cross), 2*(banks-1))
	}
	seen := map[int]int{}
	for _, bf := range cross {
		if bf.Bank == 0 {
			t.Error("cross-bank list contains the activating bank")
		}
		if bf.Range.Lo != 499 && bf.Range.Lo != 501 {
			t.Errorf("cross-bank refresh of row %d, want 499/501", bf.Range.Lo)
		}
		seen[bf.Bank]++
	}
	for b := 1; b < banks; b++ {
		if seen[b] != 2 {
			t.Errorf("bank %d received %d refreshes, want 2", b, seen[b])
		}
	}
	if c := a.Counts(); c.RowsRefreshed != int64(2*banks) {
		t.Errorf("RowsRefreshed = %d, want %d", c.RowsRefreshed, 2*banks)
	}
}

func TestABACuSSharedCounterTracksMaxNotSum(t *testing.T) {
	// Alternating the same row across two banks must trigger at roughly
	// 2T total activations (max per bank = T), not at T: the SAV gates
	// the shared counter so benign all-bank traffic is not over-refreshed.
	const banks, rows, threshold = 2, 1 << 10, 50
	a, _ := NewABACuS(banks, rows, 16, threshold)
	total := 0
	for ; total < 4*threshold; total++ {
		if len(a.OnActivate(total%banks, 500)) > 0 {
			break
		}
	}
	if total < 2*(threshold-2) {
		t.Errorf("shared counter fired after %d alternating activations; counting the sum, not the max", total)
	}
}

func TestABACuSSpilloverEscapeRefreshesEverything(t *testing.T) {
	// A deliberately undersized summary flooded with distinct rows must
	// hit the spillover escape (refresh every bank wholesale) rather than
	// silently losing protection.
	const banks, rows, threshold = 2, 256, 8
	a, _ := NewABACuS(banks, rows, 2, threshold)
	o := NewOracle(banks, rows, threshold)
	stream := make([][2]int, 1<<13)
	src := rng.NewXoshiro256(5)
	for i := range stream {
		stream[i] = [2]int{rng.Intn(src, banks), rng.Intn(src, rows)}
	}
	if v := o.Drive(a, stream, 0); v != 0 {
		t.Errorf("%d violations despite spillover escape", v)
	}
	if c := a.Counts(); c.RowsRefreshed < int64(banks*rows) {
		t.Errorf("RowsRefreshed = %d; the escape should have swept at least one full system", c.RowsRefreshed)
	}
}

func TestStochasticChargesPRNGBits(t *testing.T) {
	// Under pressure (more rows than entries) every miss on the full
	// table draws randomness, which the energy model prices.
	s, _ := NewStochastic(1, 1<<12, 4, 1<<12, rng.NewXoshiro256(8))
	src := rng.NewXoshiro256(9)
	for i := 0; i < 10000; i++ {
		s.OnActivate(0, rng.Intn(src, 1<<12))
	}
	c := s.Counts()
	if c.PRNGBits == 0 {
		t.Fatal("no PRNG bits charged despite table pressure")
	}
	if c.PRNGBits%StochasticDrawBits != 0 {
		t.Errorf("PRNGBits = %d not a multiple of the draw width", c.PRNGBits)
	}
}

func TestStochasticCanMissUnderPressure(t *testing.T) {
	// The flip side of DSAC's cheapness: with far more aggressors than
	// entries, some victim must eventually cross the threshold — the
	// protection gap the FigX harness quantifies. 64 aggressors against a
	// 2-entry table at a tight threshold makes a miss all but certain.
	const banks, rows, threshold = 1, 1 << 10, 16
	s, _ := NewStochastic(banks, rows, 2, threshold, rng.NewXoshiro256(11))
	o := NewOracle(banks, rows, threshold)
	targets := make([]int, 64)
	for i := range targets {
		targets[i] = 4 * (i + 1)
	}
	o.Drive(s, hammerStream(banks, rows, 1<<15, targets), 0)
	if o.MissedVictimRows() == 0 {
		t.Error("no missed victims; the stochastic tracker should be overwhelmed here")
	}
	if o.MissedVictimRate() <= 0 || o.MissedVictimRate() > 1 {
		t.Errorf("missed-victim rate %v out of (0,1]", o.MissedVictimRate())
	}
}

func TestKindRegistry(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 9 {
		t.Fatalf("Kinds() = %v, want the 9 registered families", kinds)
	}
	for _, k := range kinds {
		if !k.Valid() {
			t.Errorf("kind %d invalid despite registry listing", int(k))
		}
		if s := k.String(); strings.Contains(s, "Kind(") {
			t.Errorf("kind %d has no name: %q", int(k), s)
		}
	}
	bogus := Kind(97)
	if bogus.Valid() {
		t.Error("Kind(97) reported valid")
	}
	if s := bogus.String(); !strings.Contains(s, "!?") {
		t.Errorf("unknown kind renders as %q; it should stand out", s)
	}
}
