package mitigation

import (
	"fmt"

	"catsim/internal/sketch"
)

// CoMeTRATEntries is the recent-aggressor-table size per bank (the paper's
// CoMeT uses a small CAM in front of the sketch; 32 entries cover every
// realistic aggressor set per refresh window).
const CoMeTRATEntries = 32

// CoMeT models count-min-sketch row tracking (Bostancı et al., HPCA 2024)
// behind the common Scheme interface: each bank tracks row activations in
// a conservative-update count-min sketch; a row whose estimate crosses the
// early threshold (T/2) graduates into a small exact recent-aggressor
// table (RAT) carrying its estimate, and its victims are refreshed when
// the exact count reaches T.
//
// Soundness: the sketch never undercounts, a graduating row carries an
// over-estimate into the RAT, and a row evicted from a full RAT has its
// victims refreshed on the way out — so no row's true activation count
// can cross T without a victim refresh. The cost of approximation shows
// up as extra refreshes (sketch collisions inflate estimates), never as
// missed victims.
type CoMeT struct {
	name      string
	banks     int
	rows      int
	threshold uint32
	insertAt  uint32
	depth     int
	cms       []*sketch.CountMin // per bank
	rat       []*sketch.MinTable // per bank
	counts    Counts
	scratch   []RefreshRange
}

// NewCoMeT builds the tracker with the given total sketch counters per
// bank spread over depth hash rows (counters must divide evenly). The
// seed derives the per-bank hash functions.
func NewCoMeT(banks, rowsPerBank int, threshold uint32, counters, depth int, seed uint64) (*CoMeT, error) {
	if banks < 1 || rowsPerBank < 1 {
		return nil, fmt.Errorf("mitigation: need at least one bank and row")
	}
	if threshold < 2 {
		return nil, fmt.Errorf("mitigation: CoMeT threshold %d too small", threshold)
	}
	if depth < 1 || counters < depth || counters%depth != 0 {
		return nil, fmt.Errorf("mitigation: CoMeT counters %d not divisible into depth %d", counters, depth)
	}
	c := &CoMeT{
		name:      fmt.Sprintf("CoMeT_%d", counters),
		banks:     banks,
		rows:      rowsPerBank,
		threshold: threshold,
		insertAt:  max32(threshold/2, 1),
		depth:     depth,
		cms:       make([]*sketch.CountMin, banks),
		rat:       make([]*sketch.MinTable, banks),
		scratch:   make([]RefreshRange, 0, 4),
	}
	for b := 0; b < banks; b++ {
		var err error
		if c.cms[b], err = sketch.NewCountMin(counters/depth, depth, seed+uint64(b)*0x9e3779b9); err != nil {
			return nil, err
		}
		if c.rat[b], err = sketch.NewMinTable(CoMeTRATEntries); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// Name implements Scheme.
func (c *CoMeT) Name() string { return c.name }

// Kind implements Scheme.
func (c *CoMeT) Kind() Kind { return KindCoMeT }

// CountersPerBank reports the sketch counters plus the RAT entries.
func (c *CoMeT) CountersPerBank() int { return c.cms[0].Counters() + CoMeTRATEntries }

// victims appends the single-row refresh ranges for row's two neighbours
// and accounts one refresh event.
func (c *CoMeT) victims(row int) {
	c.scratch = appendVictims(c.scratch, row, c.rows, &c.counts)
}

// OnActivate implements Scheme.
func (c *CoMeT) OnActivate(bank, row int) []RefreshRange {
	c.counts.Activations++
	// RAT CAM probe (2) plus, on a sketch access, depth reads + writes.
	c.counts.SRAMAccesses += 2
	c.scratch = c.scratch[:0]
	rat := c.rat[bank]
	if idx := rat.Find(int64(row)); idx >= 0 {
		if rat.Add(idx, 1) >= c.threshold {
			rat.SetCount(idx, 0)
			c.victims(row)
		}
		return c.scratch
	}
	c.counts.SRAMAccesses += int64(2 * c.depth)
	est := c.cms[bank].Update(int64(row))
	if est < c.insertAt {
		return c.scratch
	}
	// Graduate into the RAT, carrying the (over-)estimate. The evicted
	// row's victims are refreshed so its exact count may restart from the
	// (inflated) sketch estimate without losing protection.
	if evicted, _, ok := rat.Insert(int64(row), est); ok {
		c.victims(int(evicted))
	}
	if est >= c.threshold {
		rat.SetCount(rat.Find(int64(row)), 0)
		c.victims(row)
	}
	return c.scratch
}

// OnIntervalBoundary implements Scheme: every row was auto-refreshed, so
// both the sketches and the aggressor tables restart.
func (c *CoMeT) OnIntervalBoundary() {
	for b := 0; b < c.banks; b++ {
		c.cms[b].Reset()
		c.rat[b].Reset()
	}
}

// Counts implements Scheme.
func (c *CoMeT) Counts() Counts { return c.counts }

// ResetRun implements Resettable: every bank's sketch re-derives its hash
// seeds from the new run seed — the same (seed, bank) formula the builder
// uses — and the aggressor tables empty.
func (c *CoMeT) ResetRun(seed uint64) bool {
	for b := 0; b < c.banks; b++ {
		c.cms[b].Reseed(seed + uint64(b)*0x9e3779b9)
		c.rat[b].Reset()
	}
	c.counts = Counts{}
	return true
}

// Snapshot implements Snapshotter: occupied recent-aggressor-table
// entries across banks (the sketch itself is always fully allocated; the
// RAT population is the behavioural signal).
func (c *CoMeT) Snapshot() Snapshot {
	s := Snapshot{Cap: c.banks * CoMeTRATEntries}
	for _, rat := range c.rat {
		s.Live += rat.Live()
	}
	return s
}

func init() {
	Register(KindCoMeT, Builder{
		// Per-bank CMS + RAT; hash seeds derive from (seed, bank) alone and
		// no randomness is drawn at runtime, so state decomposes by bank.
		ShardSafe: true,
		Params: []ParamDef{
			{Name: "counters", Doc: "sketch counters per bank"},
			{Name: "depth", Doc: "sketch hash rows (default 4)"},
			{Name: "seed", Doc: "per-bank hash seed (default 1)"},
		},
		Build: func(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error) {
			counters, err := spec.Params.Int("counters", 0)
			if err != nil {
				return nil, err
			}
			depth, err := spec.Params.Int("depth", 4)
			if err != nil {
				return nil, err
			}
			seed, err := spec.Params.Uint64("seed", 1)
			if err != nil {
				return nil, err
			}
			return NewCoMeT(banks, rowsPerBank, spec.Threshold, counters, depth, seed)
		},
	})
}
