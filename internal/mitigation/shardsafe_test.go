package mitigation

import "testing"

// TestShardSafeContract locks the shard-safety declarations against the
// scheme implementations: a CrossBank scheme couples state across banks
// and must never be declared shard-safe, and the schemes with a shared
// runtime PRNG (PRA, DSAC) must stay off the partitioned path too — one
// source feeding every bank's decisions cannot be split per channel
// without reordering its draw sequence.
func TestShardSafeContract(t *testing.T) {
	wantSafe := map[Kind]bool{
		KindNone:         true,
		KindSCA:          true,
		KindPRCAT:        true,
		KindDRCAT:        true,
		KindCounterCache: true,
		KindCoMeT:        true,
		KindPRA:          false, // one PRNG serves all banks
		KindStochastic:   false, // one source drives every bank's table
		KindABACuS:       false, // CrossBank: shared Misra-Gries counters
	}
	for _, k := range Kinds() {
		want, known := wantSafe[k]
		if !known {
			t.Errorf("kind %v missing from the shard-safety table: classify it (and this test)", k)
			continue
		}
		if got := ShardSafe(k); got != want {
			t.Errorf("ShardSafe(%v) = %t, want %t", k, got, want)
		}
		spec := SchemeSpec{Kind: k, Threshold: 64}
		if k != KindNone {
			spec.Params = Params{}
			switch k {
			case KindPRA:
				spec.Params.SetFloat("p", 0.01)
				spec.Params.SetUint64("seed", 7)
			default:
				spec.Params.SetInt("counters", 16)
			}
		}
		scheme, err := Build(spec, 4, 1024)
		if err != nil {
			t.Fatalf("build %v: %v", k, err)
		}
		if _, cross := scheme.(CrossBank); cross && ShardSafe(k) {
			t.Errorf("%v implements CrossBank but is declared shard-safe", k)
		}
	}
}
