package mitigation

import (
	"testing"

	"catsim/internal/core"
)

// The paper's §V-A caveat, demonstrated: PRCAT's periodic reset assumes
// burst refresh (all rows refreshed at the interval boundary, LPDDR-style).
// Under DDRx *distributed* refresh, rows are refreshed in a rolling sweep
// that is out of sync with the counter reset, so "recent information about
// row accesses [is] lost when the CAT is reset": an aggressor can
// accumulate up to 2(T-1) activations against a victim between that
// victim's refreshes while each counter epoch observes fewer than T.
//
// distributedEpochs drives a scheme through epochs of distributed refresh:
// every epoch the oracle's rows are refreshed in `slots` equal chunks
// spread through the epoch, and (optionally) the scheme's interval reset
// fires at the epoch boundary — the paper's PRCAT deployment choice. The
// attacker is a burst hammer straddling the reset: it hits `row` in the
// slots after the victim's sweep slot during even epochs and in the slots
// before it during odd epochs, so each epoch's counter sees at most T-1
// activations while the victim's exposure between its own refreshes
// reaches nearly 2(T-1). A uniform hammer cannot expose this (its
// per-window count equals its per-epoch count); the burst pattern is the
// adversarial case the §V-A caveat admits.
func distributedEpochs(s Scheme, o *Oracle, rows, slots, epochs int,
	burst int, row int, resetAtEpoch bool) int64 {

	chunk := (rows + slots - 1) / slots
	victimSlot := (row + 1) / chunk // the sweep slot refreshing the victims
	for e := 0; e < epochs; e++ {
		attackSlots := slots - 1 - victimSlot // even epochs: after the victim slot
		if e%2 == 1 {
			attackSlots = victimSlot // odd epochs: before the victim slot
		}
		for slot := 0; slot < slots; slot++ {
			attack := false
			if e%2 == 0 {
				attack = slot > victimSlot
			} else {
				attack = slot < victimSlot
			}
			if attack && attackSlots > 0 {
				n := burst / attackSlots
				for i := 0; i < n; i++ {
					ranges := s.OnActivate(0, row)
					o.Activate(0, row)
					for _, rr := range ranges {
						o.Refresh(0, rr)
					}
				}
			}
			lo := slot * chunk
			hi := lo + chunk - 1
			if hi > rows-1 {
				hi = rows - 1
			}
			o.Refresh(0, RefreshRange{Lo: lo, Hi: hi})
		}
		if resetAtEpoch {
			s.OnIntervalBoundary()
		}
	}
	return o.Violations()
}

func newDistributedCAT(t *testing.T, threshold uint32) *CAT {
	t.Helper()
	c, err := NewCAT(1, core.Config{
		Rows: 1 << 10, Counters: 16, MaxLevels: 8,
		RefreshThreshold: threshold, Policy: core.PRCAT,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDistributedRefreshEpochResetIsUnsound(t *testing.T) {
	// The attack: hammer one row T-1 times per epoch. The epoch reset
	// wipes the count, so no counter ever reaches T, while the victim's
	// own refresh slot (early in the epoch) leaves it exposed to nearly
	// 2(T-1) activations across the reset boundary.
	const threshold = 128
	const rows = 1 << 10
	cat := newDistributedCAT(t, threshold)
	o := NewOracle(1, rows, threshold)
	// Hammer a mid-bank row (victims swept in slot 9 of 16): bursts land
	// after the victims' sweep slot in even epochs and before it in odd
	// epochs, straddling the counter reset.
	violations := distributedEpochs(cat, o, rows, 16, 4, threshold-1, 600, true)
	if violations == 0 {
		t.Fatal("epoch reset under distributed refresh should be unsound (the paper's §V-A caveat)")
	}
	if cat.Counts().RefreshEvents != 0 {
		t.Error("attack stayed below T per epoch; no victim refresh should have fired")
	}
}

func TestDistributedRefreshConservativeIsSound(t *testing.T) {
	// Never resetting the counters on auto-refresh is conservative: the
	// counter keeps over-approximating the victims' exposure, so the same
	// attack is caught (at the cost of extra victim refreshes).
	const threshold = 128
	const rows = 1 << 10
	cat := newDistributedCAT(t, threshold)
	o := NewOracle(1, rows, threshold)
	violations := distributedEpochs(cat, o, rows, 16, 4, threshold-1, 600, false)
	if violations != 0 {
		t.Fatalf("conservative (no-reset) mode must stay sound, got %d violations", violations)
	}
	if cat.Counts().RefreshEvents == 0 {
		t.Error("the conservative mode should pay with victim refreshes")
	}
}

func TestBurstRefreshEpochResetIsSound(t *testing.T) {
	// Reference point: with burst refresh (all rows refreshed exactly at
	// the reset), the same attack is harmless — this is the LPDDR setting
	// in which the paper's PRCAT reset is exact.
	const threshold = 128
	const rows = 1 << 10
	cat := newDistributedCAT(t, threshold)
	o := NewOracle(1, rows, threshold)
	for e := 0; e < 4; e++ {
		for i := 0; i < threshold-1; i++ {
			ranges := cat.OnActivate(0, 10)
			o.Activate(0, 10)
			for _, rr := range ranges {
				o.Refresh(0, rr)
			}
		}
		cat.OnIntervalBoundary()
		o.RefreshAll()
	}
	if v := o.Violations(); v != 0 {
		t.Fatalf("burst-refresh epochs must be sound, got %d violations", v)
	}
}
