package mitigation

import (
	"fmt"

	"catsim/internal/sketch"
)

// ABACuS models all-bank activation counters (Olgun et al., USENIX
// Security 2024): one Misra-Gries summary of row IDs shared across every
// bank, exploiting the observation that workloads (and attacks) touch the
// same row IDs in many banks. Each entry holds a row activation count
// (RAC) and a sibling activation vector (SAV) of one bit per bank; the RAC
// increments only when a bank re-activates a row whose SAV bit is already
// set, so it tracks the *maximum* per-bank activation count instead of the
// sum. When an entry's RAC reaches T-1 the row's neighbours are refreshed
// in every bank at once (the cross-bank ranges surface through the
// CrossBank interface).
//
// Soundness: for every bank b, the count of row r in b since the window
// start is at most RAC(r)+1 while tracked and at most the spillover floor
// while untracked; triggering at RAC = T-1 therefore refreshes victims
// before any single-bank exposure can exceed T. If the spillover floor
// itself climbs to T-1 (a deliberately undersized summary), every bank is
// refreshed wholesale and the window restarts — expensive, loud, and never
// silent.
type ABACuS struct {
	name      string
	banks     int
	rows      int
	threshold uint32
	mg        *sketch.MisraGries
	sav       [][]uint64 // per entry: bank bitset, len = ceil(banks/64)
	savWords  int
	counts    Counts
	scratch   []RefreshRange
	pending   []BankRefresh
}

// NewABACuS builds the shared tracker with the given total entry count
// (shared across all banks; the per-bank SRAM share is entries/banks).
func NewABACuS(banks, rowsPerBank, entries int, threshold uint32) (*ABACuS, error) {
	if banks < 1 || rowsPerBank < 1 {
		return nil, fmt.Errorf("mitigation: need at least one bank and row")
	}
	if threshold < 2 {
		return nil, fmt.Errorf("mitigation: ABACuS threshold %d too small", threshold)
	}
	mg, err := sketch.NewMisraGries(entries)
	if err != nil {
		return nil, err
	}
	a := &ABACuS{
		name:      fmt.Sprintf("ABACuS_%d", entries),
		banks:     banks,
		rows:      rowsPerBank,
		threshold: threshold,
		mg:        mg,
		sav:       make([][]uint64, entries),
		savWords:  (banks + 63) / 64,
		scratch:   make([]RefreshRange, 0, 2),
		pending:   make([]BankRefresh, 0, 2*banks),
	}
	for i := range a.sav {
		a.sav[i] = make([]uint64, a.savWords)
	}
	return a, nil
}

// Name implements Scheme.
func (a *ABACuS) Name() string { return a.name }

// Kind implements Scheme.
func (a *ABACuS) Kind() Kind { return KindABACuS }

// CountersPerBank reports each bank's share of the shared entry storage
// (at least 1, so the energy model has a positive counter count).
func (a *ABACuS) CountersPerBank() int {
	per := a.mg.Cap() / a.banks
	if per < 1 {
		per = 1
	}
	return per
}

func (a *ABACuS) savBit(idx, bank int) bool {
	return a.sav[idx][bank/64]&(1<<(bank%64)) != 0
}

func (a *ABACuS) clearSAV(idx int) {
	for w := range a.sav[idx] {
		a.sav[idx][w] = 0
	}
}

// refreshRow queues victim refreshes for row in every bank: the activating
// bank's ranges go to scratch (returned by OnActivate), the rest to the
// cross-bank pending list.
func (a *ABACuS) refreshRow(activatingBank, row int) {
	start := len(a.scratch)
	a.scratch = appendVictims(a.scratch, row, a.rows, &a.counts)
	for _, rr := range a.scratch[start:] {
		for b := 0; b < a.banks; b++ {
			if b == activatingBank {
				continue
			}
			a.pending = append(a.pending, BankRefresh{Bank: b, Range: rr})
			a.counts.RowsRefreshed++
		}
	}
}

// refreshAllBanks is the spillover escape hatch: refresh every row of
// every bank and restart the window.
func (a *ABACuS) refreshAllBanks(activatingBank int) {
	a.counts.RefreshEvents++
	all := RefreshRange{Lo: 0, Hi: a.rows - 1}
	a.scratch = append(a.scratch, all)
	for b := 0; b < a.banks; b++ {
		if b != activatingBank {
			a.pending = append(a.pending, BankRefresh{Bank: b, Range: all})
		}
	}
	a.counts.RowsRefreshed += int64(a.banks) * int64(a.rows)
	a.reset()
}

// OnActivate implements Scheme.
func (a *ABACuS) OnActivate(bank, row int) []RefreshRange {
	a.counts.Activations++
	a.counts.SRAMAccesses += 2 // CAM probe + RAC/SAV update
	a.scratch = a.scratch[:0]
	a.pending = a.pending[:0]

	idx := a.mg.Find(int64(row))
	if idx < 0 {
		var ok bool
		idx, _, ok = a.mg.Insert(int64(row))
		if ok {
			a.clearSAV(idx)
			a.sav[idx][bank/64] |= 1 << (bank % 64)
		} else if a.mg.Spillover() >= a.threshold-1 {
			// Untracked rows are only bounded by the floor; once the floor
			// nears T nothing below it is provably safe.
			a.refreshAllBanks(bank)
			return a.scratch
		}
	} else {
		if a.savBit(idx, bank) {
			a.mg.Add(idx, 1)
			a.clearSAV(idx)
		}
		a.sav[idx][bank/64] |= 1 << (bank % 64)
	}
	if idx >= 0 && a.mg.Count(idx) >= a.threshold-1 {
		a.refreshRow(bank, row)
		a.mg.SetCount(idx, a.mg.Spillover())
		a.clearSAV(idx)
	}
	return a.scratch
}

// PendingCrossBank implements CrossBank.
func (a *ABACuS) PendingCrossBank() []BankRefresh { return a.pending }

func (a *ABACuS) reset() {
	a.mg.Reset()
	for i := range a.sav {
		a.clearSAV(i)
	}
}

// OnIntervalBoundary implements Scheme.
func (a *ABACuS) OnIntervalBoundary() {
	a.reset()
}

// Counts implements Scheme.
func (a *ABACuS) Counts() Counts { return a.counts }

// ResetRun implements Resettable: the shared summary and every SAV empty
// (ABACuS draws no randomness).
func (a *ABACuS) ResetRun(uint64) bool {
	a.reset()
	a.scratch = a.scratch[:0]
	a.pending = a.pending[:0]
	a.counts = Counts{}
	return true
}

// Snapshot implements Snapshotter: occupied entries of the shared
// Misra-Gries summary.
func (a *ABACuS) Snapshot() Snapshot {
	return Snapshot{Live: a.mg.Live(), Cap: a.mg.Cap()}
}

func init() {
	Register(KindABACuS, Builder{
		Params: []ParamDef{{Name: "counters", Doc: "shared Misra-Gries entries across all banks"}},
		Build: func(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error) {
			entries, err := spec.Params.Int("counters", 0)
			if err != nil {
				return nil, err
			}
			return NewABACuS(banks, rowsPerBank, entries, spec.Threshold)
		},
	})
}
