package mitigation

import (
	"fmt"

	"catsim/internal/rng"
)

// PRA implements Probabilistic Row Activation (paper §II, §III-A): on every
// row activation the memory controller draws from a PRNG and, with
// probability p, refreshes the two rows adjacent to the accessed row ("PRA
// refreshes two victim rows but not the aggressor row"). One PRNG serves
// all banks; the paper's Table II charges it 9 random bits per activation.
type PRA struct {
	name       string
	rows       int
	p          float64
	src        rng.Source
	bitsPerAct int64
	counts     Counts
	scratch    []RefreshRange
}

// NewPRA builds a PRA instance with refresh probability p using src as the
// hardware PRNG model.
func NewPRA(rowsPerBank int, p float64, src rng.Source) (*PRA, error) {
	if rowsPerBank < 1 {
		return nil, fmt.Errorf("mitigation: need at least one row")
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("mitigation: PRA probability %v out of (0,1)", p)
	}
	if src == nil {
		return nil, fmt.Errorf("mitigation: PRA needs a PRNG source")
	}
	return &PRA{
		name:       fmt.Sprintf("PRA_%g", p),
		rows:       rowsPerBank,
		p:          p,
		src:        src,
		bitsPerAct: 9,
		scratch:    make([]RefreshRange, 0, 2),
	}, nil
}

// Name implements Scheme.
func (pr *PRA) Name() string { return pr.name }

// Kind implements Scheme.
func (pr *PRA) Kind() Kind { return KindPRA }

// CountersPerBank implements Scheme.
func (pr *PRA) CountersPerBank() int { return 0 }

// Probability returns p.
func (pr *PRA) Probability() float64 { return pr.p }

// OnActivate implements Scheme.
func (pr *PRA) OnActivate(bank, row int) []RefreshRange {
	pr.counts.Activations++
	pr.counts.PRNGBits += pr.bitsPerAct
	if rng.Float64(pr.src) >= pr.p {
		return nil
	}
	pr.scratch = pr.scratch[:0]
	if row > 0 {
		pr.scratch = append(pr.scratch, RefreshRange{Lo: row - 1, Hi: row - 1})
	}
	if row < pr.rows-1 {
		pr.scratch = append(pr.scratch, RefreshRange{Lo: row + 1, Hi: row + 1})
	}
	pr.counts.RefreshEvents++
	for _, rr := range pr.scratch {
		pr.counts.RowsRefreshed += int64(rr.Rows())
	}
	return pr.scratch
}

// OnIntervalBoundary implements Scheme (PRA keeps no state).
func (pr *PRA) OnIntervalBoundary() {}

// Counts implements Scheme.
func (pr *PRA) Counts() Counts { return pr.counts }

// ResetRun implements Resettable: the PRNG stream rewinds to the state
// the builder's rng.NewXoshiro256(seed) would produce. An injected source
// of any other type cannot be re-seeded in place, so reuse is declined.
func (pr *PRA) ResetRun(seed uint64) bool {
	x, ok := pr.src.(*rng.Xoshiro256)
	if !ok {
		return false
	}
	x.Seed(seed)
	pr.counts = Counts{}
	return true
}

// PRAProbabilityForThreshold returns the probability the paper pairs with
// each refresh threshold so that 5-year unsurvivability stays below the
// Chipkill reference of 1e-4 (Fig. 12): T=64K -> 0.001, 32K -> 0.002,
// 16K -> 0.003, 8K -> 0.005.
func PRAProbabilityForThreshold(t uint32) float64 {
	switch {
	case t >= 64*1024:
		return 0.001
	case t >= 32*1024:
		return 0.002
	case t >= 16*1024:
		return 0.003
	default:
		return 0.005
	}
}

func init() {
	Register(KindPRA, Builder{
		Params: []ParamDef{
			{Name: "p", Doc: "refresh probability per activation (default: the paper's value for the threshold)"},
			{Name: "seed", Doc: "PRNG seed (default 1)"},
		},
		// The figure label carries p, not a counter budget; an unset p
		// resolves to the paper's value for the spec's threshold.
		Label: func(spec SchemeSpec) string {
			p, err := spec.Params.Float("p", 0)
			if err != nil || p == 0 {
				p = PRAProbabilityForThreshold(spec.Threshold)
			}
			return fmt.Sprintf("PRA_%g", p)
		},
		Build: func(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error) {
			p, err := spec.Params.Float("p", 0)
			if err != nil {
				return nil, err
			}
			if p == 0 {
				p = PRAProbabilityForThreshold(spec.Threshold)
			}
			seed, err := spec.Params.Uint64("seed", 1)
			if err != nil {
				return nil, err
			}
			return NewPRA(rowsPerBank, p, rng.NewXoshiro256(seed))
		},
	})
}
