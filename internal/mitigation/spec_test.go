package mitigation

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// specFixtures returns one representative spec per registered kind; the
// round-trip test fails if a newly registered kind has no fixture here.
func specFixtures() map[Kind]SchemeSpec {
	return map[Kind]SchemeSpec{
		KindNone: {Kind: KindNone},
		KindSCA:  {Kind: KindSCA, Threshold: 32768, Params: Params{"counters": "64"}},
		KindPRA:  {Kind: KindPRA, Threshold: 16384, Params: Params{"p": "0.003", "seed": "7"}},
		KindPRCAT: {Kind: KindPRCAT, Threshold: 32768,
			Params: Params{"counters": "64", "levels": "11"}},
		KindDRCAT: {Kind: KindDRCAT, Threshold: 16384,
			Params: Params{"counters": "64", "levels": "11", "weightbits": "2", "presplit": "6"}},
		KindCounterCache: {Kind: KindCounterCache, Threshold: 16384,
			Params: Params{"counters": "1024", "ways": "8"}},
		KindCoMeT: {Kind: KindCoMeT, Threshold: 32768,
			Params: Params{"counters": "512", "depth": "4", "seed": "18446744073709551615"}},
		KindABACuS: {Kind: KindABACuS, Threshold: 32768, Params: Params{"counters": "1024"}},
		KindStochastic: {Kind: KindStochastic, Threshold: 16384,
			Params: Params{"counters": "64", "seed": "9"}},
	}
}

func TestSpecStringAndJSONRoundTripEveryKind(t *testing.T) {
	fixtures := specFixtures()
	for _, k := range Kinds() {
		spec, ok := fixtures[k]
		if !ok {
			t.Errorf("kind %v has no round-trip fixture; add one", k)
			continue
		}
		str := spec.String()
		parsed, err := ParseSpec(str)
		if err != nil {
			t.Errorf("%v: ParseSpec(%q): %v", k, str, err)
			continue
		}
		if !reflect.DeepEqual(parsed, spec) {
			t.Errorf("%v: string round trip %q -> %+v, want %+v", k, str, parsed, spec)
		}
		blob, err := json.Marshal(spec)
		if err != nil {
			t.Errorf("%v: marshal: %v", k, err)
			continue
		}
		var back SchemeSpec
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Errorf("%v: unmarshal %s: %v", k, blob, err)
			continue
		}
		if !reflect.DeepEqual(back, spec) {
			t.Errorf("%v: JSON round trip %s -> %+v, want %+v", k, blob, back, spec)
		}
	}
}

func TestSpecBuildEveryKind(t *testing.T) {
	for k, spec := range specFixtures() {
		s, err := Build(spec, 4, 1<<14)
		if err != nil {
			t.Errorf("%v: Build(%q): %v", k, spec.String(), err)
			continue
		}
		if s.Kind() != k {
			t.Errorf("%v: built scheme reports kind %v", k, s.Kind())
		}
	}
}

func TestSpecStringForm(t *testing.T) {
	spec := SchemeSpec{Kind: KindCoMeT, Threshold: 32768,
		Params: Params{"depth": "4", "counters": "512"}}
	// threshold first, then params sorted.
	if got, want := spec.String(), "comet:threshold=32768,counters=512,depth=4"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := (SchemeSpec{Kind: KindNone}).String(), "none"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string
	}{
		{"bogus:counters=1", "unknown scheme kind"},
		{"", "unknown scheme kind"},
		{"sca:bogus=1", `unknown param "bogus"`},
		{"sca:counters=abc", "want number"},
		{"sca:counters=1,counters=2", "duplicate param"},
		{"sca:counters", "not name=value"},
		{"sca:threshold=notanum", "bad threshold"},
		{"comet:threshold=99999999999", "bad threshold"}, // > uint32
	}
	for _, c := range cases {
		_, err := ParseSpec(c.in)
		if err == nil {
			t.Errorf("ParseSpec(%q): expected error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseSpec(%q) error %q, want it to mention %q", c.in, err, c.wantErr)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	// Missing threshold (every kind but None requires one).
	spec, err := ParseSpec("sca:counters=64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(spec, 4, 1024); err == nil || !strings.Contains(err.Error(), "missing threshold") {
		t.Errorf("Build without threshold: %v, want missing-threshold error", err)
	}
	// Unknown kind.
	if _, err := Build(SchemeSpec{Kind: Kind(99), Threshold: 1024}, 4, 1024); err == nil ||
		!strings.Contains(err.Error(), "unknown scheme kind") {
		t.Errorf("Build with invalid kind: %v", err)
	}
	// Bad param value smuggled past parse (hand-built spec).
	bad := SchemeSpec{Kind: KindSCA, Threshold: 1024, Params: Params{"counters": "abc"}}
	if _, err := Build(bad, 4, 1024); err == nil || !strings.Contains(err.Error(), "want integer") {
		t.Errorf("Build with bad param: %v", err)
	}
	// Unknown param name on a hand-built spec.
	unk := SchemeSpec{Kind: KindSCA, Threshold: 1024, Params: Params{"depth": "4"}}
	if _, err := Build(unk, 4, 1024); err == nil || !strings.Contains(err.Error(), "unknown param") {
		t.Errorf("Build with unknown param: %v", err)
	}
	// Builder-level validation still fires (CoMeT counters %% depth != 0).
	comet := SchemeSpec{Kind: KindCoMeT, Threshold: 1024,
		Params: Params{"counters": "10", "depth": "4"}}
	if _, err := Build(comet, 4, 1024); err == nil {
		t.Error("Build with indivisible CoMeT counters should fail")
	}
}

func TestParseKindAliases(t *testing.T) {
	cases := map[string]Kind{
		"cc": KindCounterCache, "CC": KindCounterCache,
		"dsac": KindStochastic, "DSAC": KindStochastic,
		"CoMeT": KindCoMeT, "comet": KindCoMeT,
		"abacus": KindABACuS, "DRCAT": KindDRCAT, "none": KindNone,
	}
	for in, want := range cases {
		k, err := ParseKind(in)
		if err != nil || k != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, k, err, want)
		}
	}
	if _, err := ParseKind("nope"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Errorf("ParseKind(nope) should list valid kinds, got %v", err)
	}
}

func TestSpecFlagValue(t *testing.T) {
	var list SpecList
	if err := list.Set("comet:counters=512,depth=4"); err != nil {
		t.Fatal(err)
	}
	if err := list.Set("drcat:counters=64"); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Kind != KindCoMeT || list[1].Kind != KindDRCAT {
		t.Fatalf("SpecList = %+v", list)
	}
	if err := list.Set("sca:bogus=1"); err == nil {
		t.Error("SpecList.Set must reject bad specs")
	}
	var single SchemeSpec
	if err := single.Set("abacus:threshold=32768,counters=1024"); err != nil {
		t.Fatal(err)
	}
	if single.Kind != KindABACuS || single.Threshold != 32768 {
		t.Fatalf("SchemeSpec.Set = %+v", single)
	}
}

func TestEveryKindHasBuilder(t *testing.T) {
	for _, k := range Kinds() {
		if _, ok := BuilderFor(k); !ok {
			t.Errorf("kind %v has no registered builder", k)
		}
	}
}

// TestLabelEveryKind locks the figure labels the tables and cache keys
// are built from, now that naming lives in the builder registry next to
// construction (the sim package's historical per-kind switch is gone).
func TestLabelEveryKind(t *testing.T) {
	want := map[Kind]string{
		KindNone:         "None",
		KindSCA:          "SCA_64",
		KindPRA:          "PRA_0.003",
		KindPRCAT:        "PRCAT_64",
		KindDRCAT:        "DRCAT_64",
		KindCounterCache: "CC_1024",
		KindCoMeT:        "CoMeT_512",
		KindABACuS:       "ABACuS_1024",
		KindStochastic:   "DSAC_64",
	}
	fixtures := specFixtures()
	for _, k := range Kinds() {
		got := Label(fixtures[k])
		if got != want[k] {
			t.Errorf("Label(%v) = %q, want %q", k, got, want[k])
		}
	}
	// PRA with no explicit p derives the paper's probability from the
	// spec's threshold.
	if got := Label(SchemeSpec{Kind: KindPRA, Threshold: 32768}); got != "PRA_0.002" {
		t.Errorf("threshold-derived PRA label = %q, want PRA_0.002", got)
	}
}
